package bips_test

import (
	"testing"
	"time"

	"bips"
)

// historyDeployment builds a deployment with alice stationary and bob
// walking, runs it for d of simulated time, and returns the service.
func historyDeployment(t *testing.T, d time.Duration, opts ...bips.Option) *bips.Service {
	t.Helper()
	svc, err := bips.New(append([]bips.Option{bips.WithSeed(7)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	svc.MustRegister("alice", "pw")
	svc.MustRegister("bob", "pw")
	if _, err := svc.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddWalkingUser("bob", "pw", "Library"); err != nil {
		t.Fatal(err)
	}
	svc.Start()
	svc.Run(d)
	return svc
}

// TestLocateAtAnswersHistory: the historical query agrees with the
// current one at the present and stays answerable across the past the
// history retains.
func TestLocateAtAnswersHistory(t *testing.T) {
	svc := historyDeployment(t, 3*time.Minute)
	now := svc.Now()

	// LocateAt(now) answers the run in force now. When the walker is
	// momentarily outside every cell Locate fails but the historical
	// query still knows the last piconet — assert consistency with
	// whichever the present offers.
	atNow, err := svc.LocateAt("alice", "bob", now)
	if err != nil {
		t.Fatal(err)
	}
	if cur, err := svc.Locate("alice", "bob"); err == nil {
		if atNow.Room != cur.Room || atNow.RoomName != cur.RoomName {
			t.Fatalf("LocateAt(now) = %+v, Locate = %+v", atNow, cur)
		}
	}

	// The stationary user never moves: every instant after her first
	// fix answers the same room.
	first, err := svc.Trajectory("alice", "alice", 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].RoomName != "Lobby" {
		t.Fatalf("stationary trajectory = %+v, want one Lobby visit", first)
	}
	loc, err := svc.LocateAt("bob", "alice", first[0].At+time.Second)
	if err != nil || loc.RoomName != "Lobby" {
		t.Fatalf("LocateAt(stationary) = %+v, %v", loc, err)
	}

	// Before any fix existed, the query fails like an unknown device.
	if _, err := svc.LocateAt("alice", "bob", 0); err == nil {
		t.Fatal("LocateAt(0) answered before the first fix")
	}
}

// TestTrajectoryIsOrderedAndConsistent: the walker's trajectory is
// time-ordered, starts at or before the window, and its last visit
// matches LocateAt of the window end.
func TestTrajectoryIsOrderedAndConsistent(t *testing.T) {
	svc := historyDeployment(t, 5*time.Minute)
	now := svc.Now()

	visits, err := svc.Trajectory("alice", "bob", 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) == 0 {
		t.Fatal("five simulated minutes produced no trajectory for the walker")
	}
	for i := 1; i < len(visits); i++ {
		if visits[i].At < visits[i-1].At {
			t.Fatalf("trajectory not time-ordered at %d: %+v", i, visits)
		}
	}
	last := visits[len(visits)-1]
	loc, err := svc.LocateAt("alice", "bob", now)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Room != last.Room {
		t.Fatalf("LocateAt(now) room %d != trajectory's last room %d", loc.Room, last.Room)
	}

	// A sub-window is a contiguous slice of the full trajectory.
	if len(visits) >= 2 {
		sub, err := svc.Trajectory("alice", "bob", visits[1].At, now)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) == 0 || sub[0].Room != visits[1].Room {
			t.Fatalf("sub-window %+v does not start at the covering run %+v", sub, visits[1])
		}
	}
}

// TestWithHistoryLimitZeroDisables: a deployment without history still
// locates but cannot answer the historical queries.
func TestWithHistoryLimitZeroDisables(t *testing.T) {
	svc := historyDeployment(t, time.Minute, bips.WithHistoryLimit(0))
	if _, err := svc.Locate("alice", "bob"); err != nil {
		t.Fatalf("Locate without history: %v", err)
	}
	if _, err := svc.LocateAt("alice", "bob", svc.Now()); err == nil {
		t.Fatal("LocateAt answered with history disabled")
	}
	visits, err := svc.Trajectory("alice", "bob", 0, svc.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 0 {
		t.Fatalf("Trajectory with history disabled = %+v", visits)
	}
}

// TestWithDataDirSurvivesRestart: a deployment closed cleanly and
// rebuilt over the same data directory answers the historical queries
// identically — the public-API face of the storage engine's recovery.
func TestWithDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := historyDeployment(t, 4*time.Minute, bips.WithDataDir(dir))
	now1 := svc1.Now()

	want, err := svc1.Trajectory("alice", "bob", 0, now1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no history to carry across the restart")
	}
	svc1.Stop()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new deployment over the same directory: same device-address
	// allocation order, fresh registry, recovered location state.
	svc2, err := bips.New(bips.WithSeed(7), bips.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	svc2.MustRegister("alice", "pw")
	svc2.MustRegister("bob", "pw")
	if _, err := svc2.AddStationaryUser("alice", "pw", "Lobby"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.AddStationaryUser("bob", "pw", "Library"); err != nil {
		t.Fatal(err)
	}

	got, err := svc2.Trajectory("alice", "bob", 0, now1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered trajectory has %d visits, want %d:\n got %+v\nwant %+v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Room != want[i].Room || got[i].RoomName != want[i].RoomName {
			t.Fatalf("recovered visit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Point queries answer from the recovered runs too.
	loc, err := svc2.LocateAt("alice", "bob", now1)
	if err != nil || loc.Room != want[len(want)-1].Room {
		t.Fatalf("recovered LocateAt = %+v, %v; want room %d", loc, err, want[len(want)-1].Room)
	}
}
