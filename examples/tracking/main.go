// Tracking: the paper's motivating scenario — students, visitors and staff
// walking around an academic department while BIPS tracks them room by
// room. Instead of polling Locate and diffing, this example subscribes to
// the service's event stream: every login and every presence delta the
// workstations push into the central location database arrives as a typed
// event with its simulated timestamp — handovers between cells, departures
// out of coverage, all driven by the paper's delta-update design.
package main

import (
	"fmt"
	"log"
	"time"

	"bips"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	svc, err := bips.New(bips.WithSeed(42))
	if err != nil {
		return err
	}

	sub := svc.Subscribe()
	defer sub.Close()

	people := []struct{ name, start string }{
		{"professor", "Office A"},
		{"student1", "Library"},
		{"student2", "Lab 1"},
		{"visitor", "Lobby"},
	}
	for _, p := range people {
		svc.MustRegister(p.name, "pw")
		if _, err := svc.AddWalkingUser(p.name, "pw", p.start); err != nil {
			return err
		}
	}

	svc.Start()
	defer svc.Stop()

	fmt.Println("t        event         person      cell")
	fmt.Println("---------------------------------------------")
	for i := 0; i < 20; i++ {
		svc.Run(15 * time.Second)
		drain(sub)
	}

	fmt.Println("\nEvery line above is one presence delta: workstations report")
	fmt.Println("only new presences and new absences, the paper's load-reduction")
	fmt.Println("design (Section 2). The location database fans them out to")
	fmt.Println("subscribers as typed events with simulated timestamps.")
	return nil
}

// drain prints the events buffered during the last Run slice.
func drain(sub *bips.Subscription) {
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			cell := e.RoomName
			if cell == "" {
				cell = "-"
			}
			fmt.Printf("%-8s %-13s %-11s %s\n",
				e.At.Truncate(time.Second), e.Type, e.User, cell)
		default:
			return
		}
	}
}
