// Tracking: the paper's motivating scenario — students, visitors and staff
// walking around an academic department while BIPS tracks them room by
// room. Shows handovers between cells, departures, and the delta-update
// statistics of the central location database.
package main

import (
	"fmt"
	"log"
	"time"

	"bips"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	svc, err := bips.New(bips.Config{Seed: 42})
	if err != nil {
		return err
	}

	people := []struct{ name, start string }{
		{"professor", "Office A"},
		{"student1", "Library"},
		{"student2", "Lab 1"},
		{"visitor", "Lobby"},
	}
	for _, p := range people {
		svc.MustRegister(p.name, "pw")
		if _, err := svc.AddWalkingUser(p.name, "pw", p.start); err != nil {
			return err
		}
	}

	svc.Start()
	defer svc.Stop()

	fmt.Println("t        person      cell")
	fmt.Println("--------------------------------")
	last := map[string]string{}
	for i := 0; i < 20; i++ {
		svc.Run(15 * time.Second)
		for _, p := range people {
			cell := "(out of coverage)"
			if loc, err := svc.Locate("professor", p.name); err == nil {
				cell = loc.RoomName
			}
			if cell != last[p.name] {
				fmt.Printf("%-8s %-11s %s\n",
					svc.Now().Truncate(time.Second), p.name, cell)
				last[p.name] = cell
			}
		}
	}

	fmt.Println("\nThe tracking above is driven purely by presence deltas:")
	fmt.Println("workstations report only new presences and new absences,")
	fmt.Println("the paper's load-reduction design (Section 2).")
	return nil
}
