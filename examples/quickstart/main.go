// Quickstart: the smallest complete BIPS deployment — register two users,
// place them in rooms, track them, and ask the headline query: "what is
// the shortest path I have to follow to reach the other user?"
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"bips"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Functional options configure the deployment; with no options New
	// uses the built-in academic department, seed 0, and the paper's
	// 3.84 s / 15.4 s scheduling policy.
	svc, err := bips.New(bips.WithSeed(1))
	if err != nil {
		return err
	}
	fmt.Println("Building rooms:", strings.Join(svc.Rooms(), ", "))

	// Off-line registration (Section 2 of the paper).
	svc.MustRegister("alice", "wonderland")
	svc.MustRegister("bob", "builder")

	// Each user logs in, binding userid <-> BD_ADDR.
	aliceDev, err := svc.AddStationaryUser("alice", "wonderland", "Lobby")
	if err != nil {
		return err
	}
	bobDev, err := svc.AddStationaryUser("bob", "builder", "Seminar Room")
	if err != nil {
		return err
	}
	fmt.Printf("alice's handheld: %s\nbob's handheld:   %s\n", aliceDev, bobDev)

	// Start tracking and let the workstations run a few operational
	// cycles (3.84s discovery slot per 15.4s cycle, the paper's policy).
	svc.Start()
	defer svc.Stop()
	svc.Run(90 * time.Second)

	loc, err := svc.Locate("alice", "bob")
	if err != nil {
		return fmt.Errorf("locate bob: %w", err)
	}
	fmt.Printf("\nBIPS locates bob in %q (seen %v ago)\n", loc.RoomName, loc.Age.Truncate(time.Second))

	path, err := svc.PathTo("alice", "bob")
	if err != nil {
		return fmt.Errorf("path to bob: %w", err)
	}
	fmt.Printf("alice's shortest path to bob (%.0f m):\n  %s\n",
		path.Meters, strings.Join(path.RoomNames, " -> "))

	// Snapshot is the batch form of Locate: every logged-in user with a
	// known fix, at one consistent simulated instant.
	fmt.Println("\nsnapshot of everyone BIPS is tracking:")
	for _, u := range svc.Snapshot() {
		fmt.Printf("  %-6s %s  in %q (seen %v ago)\n",
			u.User, u.Device, u.RoomName, u.Age.Truncate(time.Second))
	}
	return nil
}
