// Navigation: the shortest-path service in isolation — build a custom
// building topology, precompute all pairs off-line (the paper's startup
// procedure), and answer path queries between every pair of rooms.
package main

import (
	"fmt"
	"log"
	"strings"

	"bips/internal/building"
	"bips/internal/radio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small two-floor wing: ids 1-4 on the ground floor, 5-8 above,
	// stairs connecting 2-6 (weights in meters; explicit where the
	// walking distance differs from the Euclidean one).
	rooms := []building.Room{
		{ID: 1, Name: "Entrance", Center: radio.Point{X: 0, Y: 0}, Station: building.StationAddr(1)},
		{ID: 2, Name: "Hall", Center: radio.Point{X: 15, Y: 0}, Station: building.StationAddr(2)},
		{ID: 3, Name: "Archive", Center: radio.Point{X: 30, Y: 0}, Station: building.StationAddr(3)},
		{ID: 4, Name: "Workshop", Center: radio.Point{X: 45, Y: 0}, Station: building.StationAddr(4)},
		{ID: 5, Name: "Reading Room", Center: radio.Point{X: 0, Y: 20}, Station: building.StationAddr(5)},
		{ID: 6, Name: "Stairs Landing", Center: radio.Point{X: 15, Y: 20}, Station: building.StationAddr(6)},
		{ID: 7, Name: "Server Room", Center: radio.Point{X: 30, Y: 20}, Station: building.StationAddr(7)},
		{ID: 8, Name: "Roof Lab", Center: radio.Point{X: 45, Y: 20}, Station: building.StationAddr(8)},
	}
	corridors := []building.Corridor{
		{A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4},
		{A: 5, B: 6}, {A: 6, B: 7}, {A: 7, B: 8},
		// The staircase is longer than the straight-line distance.
		{A: 2, B: 6, Distance: 28},
	}
	bld, err := building.New(rooms, corridors)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %d rooms, %d corridors, connected=%v\n",
		bld.NumRooms(), bld.Graph().NumEdges(), bld.Graph().Connected())

	// All shortest paths were precomputed at construction; queries are
	// table lookups (the paper: "the computation of the shortest path
	// has no impact on BIPS online activities").
	fmt.Println("\nfrom Entrance to every room:")
	for _, r := range bld.Rooms() {
		p, err := bld.ShortestPath(1, r.ID)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s %5.1f m  %s\n",
			r.Name, float64(p.Total), strings.Join(bld.PathNames(p), " -> "))
	}

	// The staircase detour shows up in cross-floor paths.
	p, err := bld.ShortestPath(4, 8)
	if err != nil {
		return err
	}
	fmt.Printf("\nWorkshop -> Roof Lab (%.1f m): %s\n",
		float64(p.Total), strings.Join(bld.PathNames(p), " -> "))
	return nil
}
