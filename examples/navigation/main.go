// Navigation: the shortest-path service in isolation — describe a custom
// building with the public FloorPlan builder, compile it into a deployment
// (all pairs precomputed off-line, the paper's startup procedure), and
// answer path queries between every pair of rooms with PathBetween. No
// internal packages, no tracking: pure topology.
package main

import (
	"fmt"
	"log"
	"strings"

	"bips"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small two-floor wing: four rooms on the ground floor, four
	// above, a staircase connecting Hall and Stairs Landing. Distances
	// default to the Euclidean separation; the staircase is longer than
	// the straight line, so it gets an explicit walking distance.
	plan := bips.NewFloorPlan("two-floor-wing").
		AddRoom("Entrance", 0, 0).
		AddRoom("Hall", 15, 0).
		AddRoom("Archive", 30, 0).
		AddRoom("Workshop", 45, 0).
		AddRoom("Reading Room", 0, 20).
		AddRoom("Stairs Landing", 15, 20).
		AddRoom("Server Room", 30, 20).
		AddRoom("Roof Lab", 45, 20).
		Connect("Entrance", "Hall").
		Connect("Hall", "Archive").
		Connect("Archive", "Workshop").
		Connect("Reading Room", "Stairs Landing").
		Connect("Stairs Landing", "Server Room").
		Connect("Server Room", "Roof Lab").
		ConnectDistance("Hall", "Stairs Landing", 28)
	if err := plan.Validate(); err != nil {
		return err
	}

	svc, err := bips.New(bips.WithBuilding(plan))
	if err != nil {
		return err
	}
	fmt.Printf("floor plan %q: %d rooms, %d corridors\n",
		plan.Name, len(plan.Rooms), len(plan.Corridors))

	// All shortest paths were precomputed at New; PathBetween is a
	// table lookup (the paper: "the computation of the shortest path
	// has no impact on BIPS online activities").
	fmt.Println("\nfrom Entrance to every room:")
	for _, room := range svc.Rooms() {
		p, err := svc.PathBetween("Entrance", room)
		if err != nil {
			return err
		}
		fmt.Printf("  %-15s %5.1f m  %s\n",
			room, p.Meters, strings.Join(p.RoomNames, " -> "))
	}

	// The staircase detour shows up in cross-floor paths.
	p, err := svc.PathBetween("Workshop", "Roof Lab")
	if err != nil {
		return err
	}
	fmt.Printf("\nWorkshop -> Roof Lab (%.1f m): %s\n",
		p.Meters, strings.Join(p.RoomNames, " -> "))
	return nil
}
