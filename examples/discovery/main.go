// Discovery: the paper's Section 4 experiments in miniature — run a batch
// of single-slave inquiry trials (the Table 1 measurement) and one
// multi-slave swarm (a Figure 2 data point), printing the raw discovery
// times. Useful for getting a feel for Bluetooth 1.1 inquiry dynamics:
// trains, scan windows, backoff, and response collisions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bips"
	"bips/internal/inquiry"
	"bips/internal/sim"
	"bips/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	fmt.Println("-- 20 single-slave inquiry trials (Table 1 workload) --")
	fmt.Println("trial  train      discovery")
	var same, diff stats.Summary
	for i := 0; i < 20; i++ {
		r := inquiry.RunTrial(rng, inquiry.TrialConfig{})
		label := "different"
		if r.SameTrain {
			label = "same"
			same.Add(r.Time.Seconds())
		} else {
			diff.Add(r.Time.Seconds())
		}
		fmt.Printf("%5d  %-9s  %v\n", i+1, label, r.Time)
	}
	fmt.Printf("same-train mean: %.2fs   different-train mean: %.2fs\n",
		same.Mean(), diff.Mean())
	fmt.Println("(paper: 1.60s and 4.13s — the different-train penalty is the")
	fmt.Println(" 2.56s the master spends repeating the wrong train)")

	fmt.Println("\n-- one 10-slave swarm under the 1s/5s duty cycle (Figure 2) --")
	res, err := inquiry.RunSwarm(rng, inquiry.SwarmConfig{
		Slaves: 10,
		Cycle:  inquiry.DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
	})
	if err != nil {
		return err
	}
	for i, t := range res.Times {
		fmt.Printf("slave %2d discovered at %v\n", i+1, t)
	}
	fmt.Printf("discovered by 1s: %.0f%%   by 6s: %.0f%%   collisions: %d\n",
		100*res.DiscoveredBy(sim.TicksPerSecond),
		100*res.DiscoveredBy(6*sim.TicksPerSecond),
		res.Collisions)

	// These dynamics are what the production schedule is derived from.
	pol := bips.PaperPolicy()
	fmt.Printf("\n(Section 5 derives the deployment policy from them: a %.2fs slot\n"+
		" per %.1fs cycle, ~%.0f%% per-slot coverage, %.0f%% tracking load —\n"+
		" select it with bips.WithPolicy(bips.PaperPolicy()))\n",
		pol.DiscoverySlot.Seconds(), pol.Cycle.Seconds(),
		pol.ExpectedCoverage*100, pol.Load*100)
	return nil
}
