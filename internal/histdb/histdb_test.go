package histdb

import (
	"fmt"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

func visits(pairs ...int) []Visit {
	if len(pairs)%2 != 0 {
		panic("visits wants (piconet, at) pairs")
	}
	out := make([]Visit, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Visit{Piconet: graph.NodeID(pairs[i]), At: sim.Tick(pairs[i+1])})
	}
	return out
}

func eqVisits(a, b []Visit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLogLimitZero: limit 0 disables recording entirely.
func TestLogLimitZero(t *testing.T) {
	var l Log
	for i := 0; i < 10; i++ {
		l.Append(Visit{Piconet: graph.NodeID(i), At: sim.Tick(i)}, 0)
	}
	if l.Len() != 0 {
		t.Fatalf("limit=0 recorded %d visits", l.Len())
	}
	if _, ok := l.At(5); ok {
		t.Fatal("At on empty log reported a visit")
	}
	if got := l.Range(0, 100); got != nil {
		t.Fatalf("Range on empty log = %v", got)
	}
}

// TestLogLimitOne: limit 1 keeps exactly the newest visit.
func TestLogLimitOne(t *testing.T) {
	var l Log
	for i := 0; i < 5; i++ {
		l.Append(Visit{Piconet: graph.NodeID(i), At: sim.Tick(10 * i)}, 1)
		if l.Len() != 1 {
			t.Fatalf("after append %d: len = %d, want 1", i, l.Len())
		}
		v, ok := l.At(sim.Tick(10 * i))
		if !ok || v.Piconet != graph.NodeID(i) {
			t.Fatalf("after append %d: At = %v, %v", i, v, ok)
		}
	}
	// The evicted runs are gone: a query before the surviving run fails.
	if _, ok := l.At(39); ok {
		t.Fatal("At(39) answered from an evicted run")
	}
}

// TestLogExactBoundaryEviction: the limit+1-th append evicts exactly the
// oldest visit and nothing else.
func TestLogExactBoundaryEviction(t *testing.T) {
	const limit = 4
	var l Log
	for i := 0; i < limit; i++ {
		l.Append(Visit{Piconet: graph.NodeID(i), At: sim.Tick(i)}, limit)
	}
	if l.Len() != limit {
		t.Fatalf("at boundary: len = %d, want %d", l.Len(), limit)
	}
	if got, want := l.Visits(), visits(0, 0, 1, 1, 2, 2, 3, 3); !eqVisits(got, want) {
		t.Fatalf("at boundary: %v, want %v", got, want)
	}
	// One past the boundary: oldest out, rest intact, order preserved.
	l.Append(Visit{Piconet: 4, At: 4}, limit)
	if got, want := l.Visits(), visits(1, 1, 2, 2, 3, 3, 4, 4); !eqVisits(got, want) {
		t.Fatalf("past boundary: %v, want %v", got, want)
	}
	if l.Len() != limit {
		t.Fatalf("past boundary: len = %d, want %d", l.Len(), limit)
	}
}

// TestLogIdempotentAppend: re-appending the newest visit is a no-op (the
// property WAL replay over a restored snapshot relies on).
func TestLogIdempotentAppend(t *testing.T) {
	var l Log
	v := Visit{Piconet: 7, At: 100}
	l.Append(v, 8)
	l.Append(v, 8)
	l.Append(v, 8)
	if l.Len() != 1 {
		t.Fatalf("idempotent append recorded %d visits", l.Len())
	}
	// A different visit at the same tick is a real event.
	l.Append(Visit{Piconet: 8, At: 100}, 8)
	if l.Len() != 2 {
		t.Fatalf("distinct visit at same tick not recorded: len %d", l.Len())
	}
}

// TestLogOutOfOrderClamped: a visit arriving with an older tick than
// the newest recorded one is clamped, never breaking the At ordering
// the binary searches rely on.
func TestLogOutOfOrderClamped(t *testing.T) {
	var l Log
	l.Append(Visit{Piconet: 1, At: 100}, 8)
	l.Append(Visit{Piconet: 2, At: 50}, 8) // late arrival: clamped to 100
	got := l.Visits()
	if len(got) != 2 || got[1] != (Visit{Piconet: 2, At: 100}) {
		t.Fatalf("out-of-order append = %v, want second visit clamped to At 100", got)
	}
	// The invariant holds, so the searches stay well-defined.
	if v, ok := l.At(100); !ok || v.Piconet != 2 {
		t.Fatalf("At(100) = %v, %v; want the clamped (latest-arrival) run", v, ok)
	}
	if _, ok := l.At(99); ok {
		t.Fatal("At(99) answered from before the first run")
	}
	// A clamped duplicate of the newest visit is still idempotent.
	l.Append(Visit{Piconet: 2, At: 60}, 8)
	if l.Len() != 2 {
		t.Fatalf("clamped duplicate recorded: %v", l.Visits())
	}
}

// TestLogAt covers the binary search: exact hits, between-runs, before
// the first run, and after the last.
func TestLogAt(t *testing.T) {
	var l Log
	for _, v := range visits(1, 10, 2, 20, 3, 30) {
		l.Append(v, 16)
	}
	cases := []struct {
		t    sim.Tick
		room graph.NodeID
		ok   bool
	}{
		{5, 0, false}, // before any run
		{10, 1, true}, // exact start
		{15, 1, true}, // mid-run
		{20, 2, true},
		{29, 2, true},
		{30, 3, true},
		{1000, 3, true}, // the last run extends forever
	}
	for _, c := range cases {
		v, ok := l.At(c.t)
		if ok != c.ok || (ok && v.Piconet != c.room) {
			t.Errorf("At(%d) = %v, %v; want room %d, %v", c.t, v, ok, c.room, c.ok)
		}
	}
}

// TestLogRange covers trajectory windows, including the run-containing-
// from rule and inverted windows.
func TestLogRange(t *testing.T) {
	var l Log
	for _, v := range visits(1, 10, 2, 20, 3, 30, 4, 40) {
		l.Append(v, 16)
	}
	cases := []struct {
		from, to sim.Tick
		want     []Visit
	}{
		{0, 5, nil},                           // before history
		{0, 10, visits(1, 10)},                // window ends on first run start
		{15, 35, visits(1, 10, 2, 20, 3, 30)}, // run containing 15 included
		{20, 30, visits(2, 20, 3, 30)},
		{45, 100, visits(4, 40)}, // only the covering run
		{35, 20, nil},            // inverted window
	}
	for _, c := range cases {
		got := l.Range(c.from, c.to)
		if !eqVisits(got, c.want) {
			t.Errorf("Range(%d, %d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestIndex exercises the per-device map layer: isolation between
// devices, Drop, Devices, and limit plumbing.
func TestIndex(t *testing.T) {
	ix := New(2)
	a, b := baseband.BDAddr(1), baseband.BDAddr(2)
	ix.Append(a, 1, 10)
	ix.Append(a, 2, 20)
	ix.Append(a, 3, 30) // evicts (1, 10)
	ix.Append(b, 9, 15)

	if got := ix.Visits(a); !eqVisits(got, visits(2, 20, 3, 30)) {
		t.Fatalf("Visits(a) = %v", got)
	}
	if v, ok := ix.At(b, 100); !ok || v.Piconet != 9 {
		t.Fatalf("At(b, 100) = %v, %v", v, ok)
	}
	if got := ix.Range(b, 0, 14); got != nil {
		t.Fatalf("Range(b) before history = %v", got)
	}
	if n := len(ix.Devices()); n != 2 {
		t.Fatalf("Devices = %d, want 2", n)
	}
	ix.Drop(a)
	if got := ix.Visits(a); got != nil {
		t.Fatalf("after Drop Visits(a) = %v", got)
	}
	if _, ok := ix.At(a, 100); ok {
		t.Fatal("after Drop At(a) still answers")
	}
	if n := len(ix.Devices()); n != 1 {
		t.Fatalf("after Drop Devices = %d, want 1", n)
	}
}

// TestIndexDisabled: a zero-limit index records nothing and allocates no
// logs.
func TestIndexDisabled(t *testing.T) {
	ix := New(0)
	ix.Append(1, 1, 1)
	if len(ix.Devices()) != 0 {
		t.Fatal("disabled index recorded history")
	}
	ixNeg := New(-5)
	if ixNeg.Limit() != 0 {
		t.Fatalf("negative limit not clamped: %d", ixNeg.Limit())
	}
}

func ExampleLog_Range() {
	var l Log
	l.Append(Visit{Piconet: 1, At: 100}, 16)
	l.Append(Visit{Piconet: 4, At: 200}, 16)
	l.Append(Visit{Piconet: 2, At: 300}, 16)
	for _, v := range l.Range(150, 250) {
		fmt.Printf("room %d from tick %d\n", v.Piconet, v.At)
	}
	// Output:
	// room 1 from tick 100
	// room 4 from tick 200
}
