// Package histdb is the spatio-temporal history index of the BIPS
// location database. The paper's MAP relation is explicitly historical —
// Section 2's example query selects a device's piconet *over time* — so
// alongside the current fix the database keeps, per device, a
// time-ordered log of presence runs.
//
// # Fix runs
//
// The workstation delta protocol only reports changes, so each recorded
// visit is the start of a run: the device entered the piconet at the
// visit's tick and stayed there until the next visit's tick (or until
// now, for the last one). Answering "where was the device at time t" is
// therefore a binary search for the last visit at-or-before t, and a
// trajectory over [from, to] is the run containing from plus every run
// starting inside the window.
//
// The index is not synchronized: in locdb every shard owns one Index and
// protects it with the shard lock, which is exactly the locking the rest
// of the shard state uses.
package histdb

import (
	"sort"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// Visit is the start of one presence run: the device entered Piconet at
// tick At (and stayed until the next visit of the same device).
type Visit struct {
	Piconet graph.NodeID `json:"piconet"`
	At      sim.Tick     `json:"at"`
}

// Log is one device's visit history, append-only in time order and
// bounded: appending past the limit evicts the oldest visit.
type Log struct {
	visits []Visit
}

// Len returns the number of recorded visits.
func (l *Log) Len() int { return len(l.visits) }

// Append records a visit. limit bounds the log length (limit <= 0
// disables recording entirely). Appending a visit identical to the
// newest recorded one is a no-op, which makes replaying a write-ahead
// log over an already-restored state idempotent.
//
// The binary searches of At and Range require non-decreasing At order,
// but arrival order is what the database actually stores (two
// workstations' reports for one device can reach the server out of
// tick order): a visit carrying an older tick than the newest recorded
// one is clamped to that tick, preserving both the arrival history and
// the search invariant. WAL replay sees the same arrival order, so
// recovery reproduces the same clamped log.
func (l *Log) Append(v Visit, limit int) {
	if limit <= 0 {
		return
	}
	if n := len(l.visits); n > 0 {
		if v.At < l.visits[n-1].At {
			v.At = l.visits[n-1].At
		}
		if l.visits[n-1] == v {
			return
		}
	}
	l.visits = append(l.visits, v)
	if len(l.visits) > limit {
		// Exact-boundary eviction: drop just enough from the front.
		l.visits = l.visits[len(l.visits)-limit:]
	}
}

// At answers the historical point query: the visit whose run covers tick
// t, i.e. the last visit with At <= t. ok is false when the log is empty
// or every recorded visit is later than t (the run containing t was
// evicted or never recorded).
func (l *Log) At(t sim.Tick) (Visit, bool) {
	i := l.searchAfter(t)
	if i == 0 {
		return Visit{}, false
	}
	return l.visits[i-1], true
}

// searchAfter returns the index of the first visit with At > t (== Len
// when no visit is later than t). Visits are in non-decreasing At order.
func (l *Log) searchAfter(t sim.Tick) int {
	return sort.Search(len(l.visits), func(i int) bool { return l.visits[i].At > t })
}

// Range answers the trajectory query: every visit whose run overlaps
// [from, to] — the visit covering from (when recorded) followed by all
// visits with from < At <= to, oldest first. from > to yields nil. The
// returned slice is freshly allocated.
func (l *Log) Range(from, to sim.Tick) []Visit {
	if from > to {
		return nil
	}
	lo := l.searchAfter(from)
	if lo > 0 {
		lo-- // include the run containing from
	}
	hi := l.searchAfter(to)
	if lo >= hi {
		return nil
	}
	out := make([]Visit, hi-lo)
	copy(out, l.visits[lo:hi])
	return out
}

// Visits returns a copy of the full log, oldest first.
func (l *Log) Visits() []Visit {
	out := make([]Visit, len(l.visits))
	copy(out, l.visits)
	return out
}

// Index holds the visit logs of many devices under one history limit.
type Index struct {
	limit int
	logs  map[baseband.BDAddr]*Log
}

// New returns an empty index keeping at most limit visits per device
// (limit <= 0 disables history recording).
func New(limit int) *Index {
	if limit < 0 {
		limit = 0
	}
	return &Index{limit: limit, logs: make(map[baseband.BDAddr]*Log)}
}

// Limit returns the per-device history bound (0 = history disabled).
func (ix *Index) Limit() int { return ix.limit }

// Append records that dev entered piconet at tick at.
func (ix *Index) Append(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) {
	if ix.limit <= 0 {
		return
	}
	l := ix.logs[dev]
	if l == nil {
		l = &Log{}
		ix.logs[dev] = l
	}
	l.Append(Visit{Piconet: piconet, At: at}, ix.limit)
}

// At answers the point-in-time query for one device.
func (ix *Index) At(dev baseband.BDAddr, t sim.Tick) (Visit, bool) {
	l := ix.logs[dev]
	if l == nil {
		return Visit{}, false
	}
	return l.At(t)
}

// Range answers the trajectory query for one device.
func (ix *Index) Range(dev baseband.BDAddr, from, to sim.Tick) []Visit {
	l := ix.logs[dev]
	if l == nil {
		return nil
	}
	return l.Range(from, to)
}

// Visits returns a copy of the device's full log, oldest first.
func (ix *Index) Visits(dev baseband.BDAddr) []Visit {
	l := ix.logs[dev]
	if l == nil {
		return nil
	}
	return l.Visits()
}

// Len returns the number of visits recorded for the device.
func (ix *Index) Len(dev baseband.BDAddr) int {
	l := ix.logs[dev]
	if l == nil {
		return 0
	}
	return l.Len()
}

// Drop erases the device's history (logout).
func (ix *Index) Drop(dev baseband.BDAddr) { delete(ix.logs, dev) }

// Devices returns every device with recorded history, unordered.
func (ix *Index) Devices() []baseband.BDAddr {
	out := make([]baseband.BDAddr, 0, len(ix.logs))
	for dev := range ix.logs {
		out = append(out, dev)
	}
	return out
}
