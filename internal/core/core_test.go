package core

import (
	"errors"
	"math"
	"testing"

	"bips/internal/baseband"
	"bips/internal/device"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/registry"
	"bips/internal/sim"
)

const pw = "pw"

func newSystem(t *testing.T, seed int64) *System {
	t.Helper()
	s, err := NewSystem(SystemConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []registry.UserID{"alice", "bob"} {
		if err := s.RegisterUser(u, string(u), pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewSystemDefaults(t *testing.T) {
	s := newSystem(t, 1)
	if s.Building.NumRooms() != 10 {
		t.Errorf("rooms = %d", s.Building.NumRooms())
	}
	if _, ok := s.Workstation(1); !ok {
		t.Error("workstation for room 1 missing")
	}
	if _, ok := s.Workstation(99); ok {
		t.Error("workstation for bogus room present")
	}
}

func TestStationaryUserIsTrackedAndLocated(t *testing.T) {
	s := newSystem(t, 2)
	lobby, _ := s.Building.Room(1)
	dev := baseband.BDAddr(0xB1)
	if _, err := s.AddMobile(device.Config{Addr: dev, Start: lobby.Center}); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", pw, dev, nil); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	// Two operational cycles are ample for discovery + enrollment.
	s.Run(90 * sim.TicksPerSecond)

	loc, err := s.Locate("alice", "bob")
	if err != nil {
		t.Fatalf("Locate: %v (db stats %+v)", err, s.Server.DB().Stats())
	}
	if loc.Room != 1 || loc.RoomName != "Lobby" {
		t.Errorf("located in %d (%s), want Lobby", loc.Room, loc.RoomName)
	}
}

func TestPathBetweenTwoUsers(t *testing.T) {
	s := newSystem(t, 3)
	lobby, _ := s.Building.Room(1)
	cafeteria, _ := s.Building.Room(10)
	devA, devB := baseband.BDAddr(0xA1), baseband.BDAddr(0xB1)
	if _, err := s.AddMobile(device.Config{Addr: devA, Start: lobby.Center}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddMobile(device.Config{Addr: devB, Start: cafeteria.Center}); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("alice", pw, devA, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", pw, devB, nil); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	s.Run(90 * sim.TicksPerSecond)

	res, err := s.PathTo("alice", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMeters != 60 {
		t.Errorf("path total = %v, want 60", res.TotalMeters)
	}
	if res.Names[0] != "Lobby" || res.Names[len(res.Names)-1] != "Cafeteria" {
		t.Errorf("names = %v", res.Names)
	}
}

func TestWalkingUserHandsOverBetweenCells(t *testing.T) {
	s := newSystem(t, 4)
	// Walk along the north corridor between room 1 (x=0) and room 5
	// (x=48): the device must eventually be seen by a room other than
	// the one it started in.
	w, err := mobility.NewWalker(mobility.WalkerConfig{
		Bounds: mobility.Rect{MinX: 0, MinY: -2, MaxX: 48, MaxY: 2},
		Start:  radio.Point{X: 0, Y: 0},
	}, s.Kernel.Rand())
	if err != nil {
		t.Fatal(err)
	}
	dev := baseband.BDAddr(0xB1)
	if _, err := s.AddMobile(device.Config{Addr: dev, Walker: w}); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", pw, dev, nil); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		s.Run(10 * sim.TicksPerSecond)
		if loc, err := s.Locate("alice", "bob"); err == nil {
			seen[int(loc.Room)] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("handover never observed; rooms seen = %v (db %+v)",
			seen, s.Server.DB().Stats())
	}
}

func TestLogoutStopsTracking(t *testing.T) {
	s := newSystem(t, 5)
	lobby, _ := s.Building.Room(1)
	dev := baseband.BDAddr(0xB1)
	if _, err := s.AddMobile(device.Config{Addr: dev, Start: lobby.Center}); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", pw, dev, nil); err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()
	s.Run(90 * sim.TicksPerSecond)
	if _, err := s.Locate("alice", "bob"); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	if err := s.Logout("bob", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Locate("alice", "bob"); err == nil {
		t.Error("logged-out user still locatable")
	}
}

func TestDuplicateMobileRejected(t *testing.T) {
	s := newSystem(t, 6)
	if _, err := s.AddMobile(device.Config{Addr: 0xB1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddMobile(device.Config{Addr: 0xB1}); err == nil {
		t.Error("duplicate device accepted")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (sim.Tick, int) {
		s := newSystem(t, 42)
		lobby, _ := s.Building.Room(1)
		dev := baseband.BDAddr(0xB1)
		if _, err := s.AddMobile(device.Config{Addr: dev, Start: lobby.Center}); err != nil {
			t.Fatal(err)
		}
		if err := s.Login("bob", pw, dev, nil); err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer s.Stop()
		s.Run(90 * sim.TicksPerSecond)
		loc, err := s.Locate("alice", "bob")
		if err != nil {
			t.Fatal(err)
		}
		ws, _ := s.Workstation(1)
		return loc.At, ws.Stats().Discoveries
	}
	at1, d1 := run()
	at2, d2 := run()
	if at1 != at2 || d1 != d2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", at1, d1, at2, d2)
	}
}

func TestPolicyServiceBudget(t *testing.T) {
	p := PaperPolicy()
	// The paper: "the master will dedicate a continuous slot of 3.84s
	// for device discovery and the remaining 11.56s for serving the
	// slaves".
	got := p.ServiceSlot().Seconds()
	if math.Abs(got-11.54) > 0.1 {
		t.Errorf("service slot = %.2fs, want ~11.56s", got)
	}
	if p.PerSlaveService(0) != p.ServiceSlot() {
		t.Error("PerSlaveService(0) should return the whole slot")
	}
	if share := p.PerSlaveService(7); share != p.ServiceSlot()/7 {
		t.Errorf("share of 7 = %v", share)
	}
	// Clamped at the 7-active-slave limit.
	if p.PerSlaveService(20) != p.PerSlaveService(7) {
		t.Error("share not clamped at 7 slaves")
	}
	bad := Policy{DiscoverySlot: 100, Cycle: 50}
	if bad.ServiceSlot() != 0 {
		t.Error("inverted policy should have zero service slot")
	}
}

func TestDerivePolicy(t *testing.T) {
	p := PaperPolicy()
	if got := p.DiscoverySlot.Seconds(); math.Abs(got-3.84) > 1e-9 {
		t.Errorf("slot = %vs, want 3.84s", got)
	}
	if got := p.Cycle.Seconds(); math.Abs(got-15.3846) > 0.01 {
		t.Errorf("cycle = %vs, want ~15.4s", got)
	}
	if math.Abs(p.ExpectedCoverage-0.95) > 1e-9 {
		t.Errorf("coverage = %v, want 0.95", p.ExpectedCoverage)
	}
	if p.Load < 0.24 || p.Load > 0.26 {
		t.Errorf("load = %v, want ~24%%", p.Load)
	}
	if err := p.DutyCycle().Validate(); err != nil {
		t.Errorf("policy duty cycle invalid: %v", err)
	}
	if _, err := DerivePolicy(-0.1, 0.9); !errors.Is(err, ErrBadPolicyInput) {
		t.Errorf("bad input error = %v", err)
	}
	if _, err := DerivePolicy(0.5, 1.5); !errors.Is(err, ErrBadPolicyInput) {
		t.Errorf("bad input error = %v", err)
	}
}
