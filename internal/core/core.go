// Package core assembles the complete BIPS system of the paper: a building
// full of workstation cells (one Bluetooth master per significant room), a
// central server holding the user registry and location database, the
// navigation service with precomputed shortest paths, and the mobile
// devices walking between cells — all driven by one deterministic
// discrete-event kernel.
//
// It also contains the Section 5 scheduling-policy derivation: how long the
// discovery slot must be (3.84 s), how long the operational cycle is (the
// 15.4 s mean cell-crossing time), what fraction of devices a slot catches
// (~95%), and the resulting tracking load (~24%).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bips/internal/analytics"
	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/device"
	"bips/internal/graph"
	"bips/internal/hci"
	"bips/internal/inquiry"
	"bips/internal/locdb"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/storage"
	"bips/internal/wire"
	"bips/internal/workstation"
)

// SystemConfig configures a simulated BIPS deployment.
type SystemConfig struct {
	// Seed drives all randomness. Same seed, same run.
	Seed int64
	// Building is the deployment topology; nil selects the academic
	// department preset.
	Building *building.Building
	// Cycle is the workstation operational cycle; the zero value
	// selects the paper's 3.84 s / 15.4 s policy.
	Cycle inquiry.DutyCycle
	// CoverageRadius overrides the 10 m default when non-zero.
	CoverageRadius float64
	// Shards is the location-database shard count; 0 selects
	// locdb.DefaultShards.
	Shards int
	// HistoryLimit bounds the per-device movement history; 0 selects
	// locdb.DefaultHistoryLimit, negative disables history (and with it
	// the LocateAt/Trajectory query surface).
	HistoryLimit int
	// DataDir, when non-empty, backs the location database with the
	// durable storage engine (WAL + snapshots) rooted at the directory,
	// so a deployment can be closed and reopened without losing
	// presence state or history.
	DataDir string
	// SnapshotInterval is the durable backend's checkpoint period; 0
	// selects storage.DefaultSnapshotInterval. Ignored without DataDir.
	SnapshotInterval time.Duration
	// AnalyticsSealInterval is the analytics engine's background
	// sealing period in wall-clock time: how often closed presence
	// runs are compacted into immutable segments. Zero selects
	// analytics.DefaultSealInterval; negative disables the background
	// sealer (segments are then cut only at Close).
	AnalyticsSealInterval time.Duration
	// AnalyticsRetention bounds the analytics history in simulated
	// time: after a seal, segments whose newest run ended more than
	// this long before the newest observed tick are deleted. Zero
	// keeps everything.
	AnalyticsRetention time.Duration
}

// System is a fully wired BIPS deployment.
//
// Locking contract: the discrete-event kernel is single-threaded, so every
// operation that advances or mutates it (Run, Start, Stop, AddMobile,
// Login, Logout) takes mu for writing, while the read-only queries (Now,
// Locate, PathTo, LocateAll) take it for reading and may therefore run
// from many goroutines concurrently with one stepping goroutine. Run
// releases the write lock between bounded step chunks so readers are never
// starved for a whole simulated run. Direct access to the exported Kernel
// and Medium fields is NOT synchronized; treat them as construction-time
// wiring unless the system is quiescent. Building is immutable and always
// safe. Server delegates to the registry and location database, which
// carry their own locks.
type System struct {
	Kernel   *sim.Kernel
	Medium   *radio.Medium
	Building *building.Building
	Server   *server.Server

	// mu splits the step path (write) from the query path (read).
	mu sync.RWMutex

	cfg          SystemConfig
	rng          *rand.Rand
	controllers  map[graph.NodeID]*hci.HCI
	workstations map[graph.NodeID]*workstation.Workstation
	mobiles      map[baseband.BDAddr]*device.Mobile
	running      bool
	// store is the location backend behind Server, retained so Close
	// can release it (flush + final checkpoint for a durable backend).
	store locdb.Store
	// analytics, when non-nil, is the system-owned engine behind the
	// Contacts/Occupancy/Dwell queries, closed alongside the store.
	// When nil the server runs its own memory-only engine instead.
	analytics *analytics.Engine
}

// NewSystem wires a deployment: one workstation (HCI + discovery schedule)
// per room, all reporting presence deltas in-process to the central server.
func NewSystem(cfg SystemConfig) (*System, error) {
	bld := cfg.Building
	if bld == nil {
		var err error
		bld, err = building.AcademicDepartment()
		if err != nil {
			return nil, err
		}
	}
	if cfg.Cycle == (inquiry.DutyCycle{}) {
		cfg.Cycle = workstation.PaperCycle()
	}
	if err := cfg.Cycle.Validate(); err != nil {
		return nil, err
	}

	s := &System{
		Kernel:       sim.NewKernel(cfg.Seed),
		Medium:       radio.NewMedium(),
		Building:     bld,
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed + 1)),
		controllers:  make(map[graph.NodeID]*hci.HCI),
		workstations: make(map[graph.NodeID]*workstation.Workstation),
		mobiles:      make(map[baseband.BDAddr]*device.Mobile),
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = locdb.DefaultShards
	}
	historyLimit := cfg.HistoryLimit
	if historyLimit == 0 {
		historyLimit = locdb.DefaultHistoryLimit
	}
	var db locdb.Store
	if cfg.DataDir != "" {
		durable, err := storage.Open(storage.Options{
			Dir:              cfg.DataDir,
			Shards:           shards,
			HistoryLimit:     historyLimit,
			SnapshotInterval: cfg.SnapshotInterval,
		})
		if err != nil {
			return nil, err
		}
		db = durable
	} else {
		if historyLimit < 0 {
			historyLimit = 0
		}
		mem, err := locdb.NewSharded(shards, historyLimit)
		if err != nil {
			return nil, err
		}
		db = mem
	}
	s.store = db
	// A durable deployment (or one asking for retention / a custom seal
	// cadence) gets a system-owned analytics engine; segments live next
	// to the WAL so a reopened deployment keeps its sealed history.
	// Otherwise the server builds its own memory-only engine.
	// The in-process facade consumes its event stream synchronously with
	// the simulated clock (bips.Service.Subscribe documents events as
	// emitted as the simulation produces them), so the simulation's
	// server keeps fan-out delivery inline rather than staged.
	serverOpts := []server.Option{server.WithSyncFanout()}
	if cfg.DataDir != "" || cfg.AnalyticsSealInterval != 0 || cfg.AnalyticsRetention != 0 {
		aopts := analytics.Options{
			HistoryLimit: historyLimit,
			SealInterval: cfg.AnalyticsSealInterval,
			Retain:       sim.FromDuration(cfg.AnalyticsRetention),
		}
		if cfg.DataDir != "" {
			aopts.Dir = filepath.Join(cfg.DataDir, "analytics")
		}
		eng, err := analytics.Open(aopts)
		if err != nil {
			db.Close()
			return nil, err
		}
		s.analytics = eng
		serverOpts = append(serverOpts, server.WithAnalytics(eng))
	}
	s.Server = server.New(registry.New(), db, bld, serverOpts...)

	for _, room := range bld.Rooms() {
		room := room
		s.Medium.Place(radio.Station{
			Addr:   room.Station,
			Pos:    room.Center,
			Radius: cfg.CoverageRadius,
		})
		ctrl := hci.New(s.Kernel, hci.Config{Addr: room.Station}, s.Medium)
		rep := workstation.ReporterFunc(func(p wire.Presence) error {
			return s.Server.ApplyPresence(p)
		})
		ws, err := workstation.New(s.Kernel, ctrl, workstation.Config{
			Room:  room.ID,
			Cycle: cfg.Cycle,
		}, rep)
		if err != nil {
			return nil, fmt.Errorf("room %d: %w", room.ID, err)
		}
		s.controllers[room.ID] = ctrl
		s.workstations[room.ID] = ws
	}
	return s, nil
}

// Workstation returns the workstation covering the room.
func (s *System) Workstation(room graph.NodeID) (*workstation.Workstation, bool) {
	ws, ok := s.workstations[room]
	return ws, ok
}

// Cycle returns the workstation duty cycle the system was built with.
func (s *System) Cycle() inquiry.DutyCycle { return s.cfg.Cycle }

// RegisterUser runs the off-line registration procedure.
func (s *System) RegisterUser(id registry.UserID, name, password string, rights ...registry.Right) error {
	return s.Server.Registry().Register(id, name, password, rights...)
}

// NewWalker builds a random-waypoint walker under the system lock:
// walker construction draws its first waypoint from the kernel RNG, which
// must not race with the step path.
func (s *System) NewWalker(cfg mobility.WalkerConfig) (*mobility.Walker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mobility.NewWalker(cfg, s.Kernel.Rand())
}

// AddMobile creates a handheld, registers its radio with every cell, and
// returns it. The device answers inquiries from any workstation whose
// coverage disc contains it.
func (s *System) AddMobile(cfg device.Config) (*device.Mobile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.mobiles[cfg.Addr]; dup {
		return nil, fmt.Errorf("core: device %v already added", cfg.Addr)
	}
	// Devices must keep answering inquiries after enrollment so that
	// neighbouring cells can pick them up when they walk over.
	cfg.KeepResponding = true
	m, err := device.New(s.Kernel, s.Medium, cfg, s.rng)
	if err != nil {
		return nil, err
	}
	for _, ctrl := range s.controllers {
		ctrl.AttachDevice(m.Radio())
	}
	s.mobiles[cfg.Addr] = m
	return m, nil
}

// Login binds a registered user to a device address. A non-nil notify
// runs under the system lock immediately after a successful bind, with
// the simulated bind time — before the step path can reveal the device —
// so callers can publish causally ordered notifications.
func (s *System) Login(id registry.UserID, password string, dev baseband.BDAddr, notify func(at sim.Tick)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.Server.Login(wire.Login{
		User:     string(id),
		Password: password,
		Device:   wire.FormatAddr(dev),
	})
	if err != nil {
		return err
	}
	if notify != nil {
		notify(s.Kernel.Now())
	}
	return nil
}

// Logout releases the binding and stops tracking the device. notify runs
// like Login's: under the lock, after success, before further deltas.
func (s *System) Logout(id registry.UserID, notify func(at sim.Tick)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.Server.Logout(wire.Logout{User: string(id)}); err != nil {
		return err
	}
	if notify != nil {
		notify(s.Kernel.Now())
	}
	return nil
}

// Locate answers "where is user X" on behalf of the querier. It is safe to
// call from any goroutine, including while Run is stepping.
func (s *System) Locate(querier, target registry.UserID) (wire.LocateResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Locate(wire.Locate{Querier: string(querier), Target: string(target)})
}

// PathTo answers the headline query: the shortest path the querier must
// walk to reach the target user. Safe for concurrent use like Locate.
func (s *System) PathTo(querier, target registry.UserID) (wire.PathResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Path(wire.PathQuery{Querier: string(querier), Target: string(target)})
}

// LocateAt answers the historical spatio-temporal query: where was the
// target at tick at. Safe for concurrent use like Locate.
func (s *System) LocateAt(querier, target registry.UserID, at sim.Tick) (wire.LocateResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.LocateAt(wire.LocateAt{Querier: string(querier), Target: string(target), At: at})
}

// Trajectory answers the time-window spatio-temporal query: the
// target's presence runs overlapping [from, to]. Safe for concurrent
// use like Locate.
func (s *System) Trajectory(querier, target registry.UserID, from, to sim.Tick) (wire.TrajectoryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Trajectory(wire.TrajectoryQuery{
		Querier: string(querier), Target: string(target), From: from, To: to,
	})
}

// Contacts answers the contact-tracing query on behalf of querier: who
// shared a room with target during [from, to), for at least minOverlap
// ticks in total. Safe for concurrent use like Locate.
func (s *System) Contacts(querier, target registry.UserID, from, to, minOverlap sim.Tick) (wire.ContactsResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Contacts(wire.ContactsQuery{
		Querier: string(querier), Target: string(target),
		From: from, To: to, MinOverlap: minOverlap,
	})
}

// Occupancy answers the occupancy time-series query on behalf of
// querier: distinct devices present in the room set per bucket of
// [from, to). Safe for concurrent use like Locate.
func (s *System) Occupancy(querier registry.UserID, rooms []graph.NodeID, from, to, bucket sim.Tick) (wire.OccupancyResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Occupancy(wire.OccupancyQuery{
		Querier: string(querier), Rooms: rooms,
		From: from, To: to, Bucket: bucket,
	})
}

// DwellRoom answers the per-room dwell-time distribution over [from,
// to) on behalf of querier. Safe for concurrent use like Locate.
func (s *System) DwellRoom(querier registry.UserID, room graph.NodeID, from, to sim.Tick) (wire.DwellResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Dwell(wire.DwellQuery{
		Querier: string(querier), Kind: wire.DwellRoom, Room: room, From: from, To: to,
	})
}

// DwellOf answers the per-user dwell-time distribution over [from, to)
// on behalf of querier. Safe for concurrent use like Locate.
func (s *System) DwellOf(querier, target registry.UserID, from, to sim.Tick) (wire.DwellResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Server.Dwell(wire.DwellQuery{
		Querier: string(querier), Kind: wire.DwellDevice, Target: string(target), From: from, To: to,
	})
}

// Close releases the location backend: for a durable store it flushes
// the WAL and writes the final checkpoint, so a subsequent deployment
// over the same data directory recovers this one's state. Stop the
// workstations first; Close does not stop the simulation.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.store.Close()
	if s.analytics != nil {
		if aerr := s.analytics.Close(); aerr != nil && err == nil {
			err = aerr
		}
	}
	return err
}

// UserLocation is one entry of a LocateAll batch answer.
type UserLocation struct {
	User     registry.UserID
	Device   baseband.BDAddr
	Room     graph.NodeID
	RoomName string
	// At is the simulated tick the presence was recorded.
	At sim.Tick
}

// LocateAll returns the position of every logged-in user with a known
// fix, in ascending user order, together with the simulated time the
// batch was taken at. It is an administrative snapshot: no per-user
// access checks are applied. Safe for concurrent use like Locate.
//
// It reads the location database through the per-shard snapshot path
// (locdb.DB.All), so repeated snapshot polling on a quiescent building is
// lock-free instead of taking one read lock per online user.
func (s *System) LocateAll() ([]UserLocation, sim.Tick) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg, db := s.Server.Registry(), s.Server.DB()
	fixes := db.All()
	out := make([]UserLocation, 0, len(fixes))
	for _, fix := range fixes {
		id, err := reg.UserOf(fix.Device)
		if err != nil {
			// A fix can outlive its binding only transiently; skip it
			// like the anonymous devices the server never tracks.
			continue
		}
		name := ""
		if r, ok := s.Building.Room(fix.Piconet); ok {
			name = r.Name
		}
		out = append(out, UserLocation{
			User: id, Device: fix.Device,
			Room: fix.Piconet, RoomName: name, At: fix.At,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out, s.Kernel.Now()
}

// Start begins every workstation's operational cycle.
func (s *System) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	// Deterministic start order.
	ids := make([]graph.NodeID, 0, len(s.workstations))
	for id := range s.workstations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.workstations[id].Start()
	}
}

// Stop halts all workstations.
func (s *System) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.running = false
	for _, ws := range s.workstations {
		ws.Stop()
	}
}

// runChunk bounds how long Run holds the write lock: one simulated second
// of events per acquisition, so concurrent readers interleave with long
// runs instead of waiting for the whole duration.
const runChunk = sim.TicksPerSecond

// Run advances the simulation by d ticks. It is intended for a single
// stepping goroutine; queries may run concurrently from any number of
// other goroutines. Chunking does not change the event order, so results
// are identical with or without concurrent readers.
func (s *System) Run(d sim.Tick) {
	s.mu.Lock()
	target := s.Kernel.Now() + d
	for {
		now := s.Kernel.Now()
		if now >= target {
			s.mu.Unlock()
			return
		}
		limit := target
		if c := now + runChunk; c < target {
			limit = c
		}
		s.Kernel.RunUntil(limit)
		// Release briefly so pending readers get a turn.
		s.mu.Unlock()
		s.mu.Lock()
	}
}

// Now returns the current simulated time. Safe for concurrent use.
func (s *System) Now() sim.Tick {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Kernel.Now()
}

// --- Section 5: scheduling-policy derivation ------------------------------

// Policy is the derived master scheduling policy.
type Policy struct {
	// DiscoverySlot is the continuous inquiry slot per cycle.
	DiscoverySlot sim.Tick
	// Cycle is the operational cycle length (mean cell-crossing time).
	Cycle sim.Tick
	// ExpectedCoverage is the expected fraction of slaves discovered in
	// one slot.
	ExpectedCoverage float64
	// Load is DiscoverySlot / Cycle, the tracking load.
	Load float64
}

// DutyCycle converts the policy into a schedulable duty cycle.
func (p Policy) DutyCycle() inquiry.DutyCycle {
	return inquiry.DutyCycle{Inquiry: p.DiscoverySlot, Period: p.Cycle}
}

// ServiceSlot is the time per cycle left for serving the slaves'
// applications: the paper's "remaining 11.56 s" after the 3.84 s
// discovery slot.
func (p Policy) ServiceSlot() sim.Tick {
	if p.Cycle < p.DiscoverySlot {
		return 0
	}
	return p.Cycle - p.DiscoverySlot
}

// PerSlaveService returns the round-robin service share of each of n
// enrolled slaves per cycle. n is clamped to the Bluetooth limit of 7
// active slaves; n <= 0 returns the whole service slot.
func (p Policy) PerSlaveService(n int) sim.Tick {
	if n <= 0 {
		return p.ServiceSlot()
	}
	if n > 7 {
		n = 7
	}
	return p.ServiceSlot() / sim.Tick(n)
}

// ErrBadPolicyInput reports out-of-range derivation parameters.
var ErrBadPolicyInput = errors.New("core: policy parameters out of range")

// DerivePolicy reproduces the paper's Section 5 argument. The master
// cannot choose the slaves' starting train, so with probability
// sameTrainFrac (~0.5) a slave listens on the master's first train and is
// discovered while the master dwells on it (2.56 s); the remaining slaves
// need the second train, of which the first 1.28 s discovers
// secondTrainFrac (~0.9, from the Figure 2 simulation with <= 10 slaves).
// Hence a slot of 2.56 s + 1.28 s = 3.84 s and an expected coverage of
// sameTrainFrac + (1-sameTrainFrac)*secondTrainFrac (~95%). The cycle is
// the mean cell-crossing time of a walking user (20 m / 1.3 m/s = 15.4 s).
func DerivePolicy(sameTrainFrac, secondTrainFrac float64) (Policy, error) {
	if sameTrainFrac < 0 || sameTrainFrac > 1 || secondTrainFrac < 0 || secondTrainFrac > 1 {
		return Policy{}, fmt.Errorf("%w: %v, %v", ErrBadPolicyInput, sameTrainFrac, secondTrainFrac)
	}
	slot := baseband.TrainDwellTicks + baseband.TrainDwellTicks/2
	cycle := mobility.PaperCrossingEstimate()
	p := Policy{
		DiscoverySlot:    slot,
		Cycle:            cycle,
		ExpectedCoverage: sameTrainFrac + (1-sameTrainFrac)*secondTrainFrac,
		Load:             float64(slot) / float64(cycle),
	}
	return p, nil
}

// PaperPolicy returns the policy with the paper's numbers: a 50/50 train
// split and 90% second-train discovery, giving the 3.84 s slot, ~95%
// coverage and ~24% load.
func PaperPolicy() Policy {
	p, err := DerivePolicy(0.5, 0.9)
	if err != nil {
		// Unreachable: constants are in range.
		return Policy{}
	}
	return p
}
