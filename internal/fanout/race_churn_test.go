package fanout

import (
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// deviceLog records one stable subscriber's view of a single device so
// the test can check completeness and ordering after the storm.
type deviceLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *deviceLog) deliver(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// TestChurnUnderConcurrentIngest is the fan-out tree's adversarial
// concurrency test (run the package under -race). Writer goroutines
// apply locdb batches — the real ingest path, wired to the tree exactly
// as the server wires it — while churner goroutines subscribe and
// cancel volatile filters of every kind as fast as they can. The
// guarantee under test: subscribers registered before the traffic
// started lose no matching events and observe them in per-device
// order, no matter how violently the subscription set churns around
// them.
func TestChurnUnderConcurrentIngest(t *testing.T) {
	const (
		writers        = 4
		devsPerWriter  = 4
		movesPerDevice = 100
		churners       = 4
		rooms          = 7 // rooms 1..7
	)

	db, err := locdb.NewSharded(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree := New()
	db.Subscribe(tree.Publish)

	// Stable subscribers, registered before any traffic: one per-device
	// log plus a global all-filter log that must see the union.
	logs := make(map[baseband.BDAddr]*deviceLog)
	var global deviceLog
	for w := 0; w < writers; w++ {
		for d := 0; d < devsPerWriter; d++ {
			dev := baseband.BDAddr(1 + w*devsPerWriter + d)
			l := &deviceLog{}
			logs[dev] = l
			tree.Subscribe(Filter{Kind: KindDevice, Device: dev}, l.deliver)
		}
	}
	tree.Subscribe(Filter{Kind: KindAll}, global.deliver)

	// Churners hammer Subscribe/Cancel with every filter kind while the
	// writers run. Their deliveries are discarded; they exist to shake
	// the registration path under the delivery path's feet.
	done := make(chan struct{})
	var churn sync.WaitGroup
	for c := 0; c < churners; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			filters := []Filter{
				{Kind: KindAll},
				{Kind: KindDevice, Device: baseband.BDAddr(1 + c)},
				{Kind: KindRoom, Room: graph.NodeID(1 + c%rooms)},
				{Kind: KindZone, Device: baseband.BDAddr(1 + c), Zone: []graph.NodeID{1, 2, 3}},
				{Kind: KindOccupancy, Room: graph.NodeID(1 + c%rooms), Threshold: 2},
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				sub := tree.Subscribe(filters[i%len(filters)], func(Event) {})
				sub.Cancel()
			}
		}(c)
	}

	// Writers: each owns a disjoint device set and walks every device
	// through a strictly increasing sequence of room changes, batched
	// through the same ApplyBatch the ingest sessions use, then retires
	// it with a final absence.
	var ingest sync.WaitGroup
	for w := 0; w < writers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			for move := 0; move < movesPerDevice; move++ {
				batch := make([]locdb.Mutation, 0, devsPerWriter)
				for d := 0; d < devsPerWriter; d++ {
					batch = append(batch, locdb.Mutation{
						Op:  locdb.MutPresence,
						Dev: baseband.BDAddr(1 + w*devsPerWriter + d),
						// Consecutive moves always differ mod rooms, so
						// every mutation is a real room change.
						Piconet: graph.NodeID(1 + (move+d)%rooms),
						At:      sim.Tick(1000 * (move + 1)),
					})
				}
				db.ApplyBatch(batch)
			}
			final := make([]locdb.Mutation, 0, devsPerWriter)
			for d := 0; d < devsPerWriter; d++ {
				dev := baseband.BDAddr(1 + w*devsPerWriter + d)
				final = append(final, locdb.Mutation{
					Op: locdb.MutAbsence, Dev: dev,
					Piconet: graph.NodeID(1 + (movesPerDevice-1+d)%rooms),
					At:      sim.Tick(1000 * (movesPerDevice + 1)),
				})
			}
			db.ApplyBatch(final)
		}(w)
	}

	ingest.Wait()
	close(done)
	churn.Wait()

	// Every device produced exactly movesPerDevice enters and
	// movesPerDevice leaves (each handover pairs a leave with the next
	// enter; the final absence closes the last visit). A dropped or
	// duplicated delivery shows up as a count mismatch; a reordered one
	// breaks the enter/leave alternation or the At monotonicity.
	for dev, l := range logs {
		checkDeviceStream(t, dev, l.events, movesPerDevice)
	}
	// The all-filter log must hold the same union, interleaved.
	perDev := make(map[baseband.BDAddr][]Event)
	for _, e := range global.events {
		perDev[e.Device] = append(perDev[e.Device], e)
	}
	if len(perDev) != writers*devsPerWriter {
		t.Fatalf("all-filter saw %d devices, want %d", len(perDev), writers*devsPerWriter)
	}
	for dev, events := range perDev {
		checkDeviceStream(t, dev, events, movesPerDevice)
	}
}

// checkDeviceStream asserts one device's event history is complete and
// well-formed: enter/leave strictly alternating starting with an enter,
// non-decreasing timestamps, and exactly moves of each kind.
func checkDeviceStream(t *testing.T, dev baseband.BDAddr, events []Event, moves int) {
	t.Helper()
	var enters, leaves int
	var lastAt sim.Tick
	for i, e := range events {
		switch e.Kind {
		case Enter:
			enters++
			if i%2 != 0 {
				t.Fatalf("device %d: event %d is an enter out of turn", dev, i)
			}
		case Leave:
			leaves++
			if i%2 != 1 {
				t.Fatalf("device %d: event %d is a leave out of turn", dev, i)
			}
		default:
			t.Fatalf("device %d: unexpected kind %q", dev, e.Kind)
		}
		if e.At < lastAt {
			t.Fatalf("device %d: event %d went back in time (%d after %d)", dev, i, e.At, lastAt)
		}
		lastAt = e.At
	}
	if enters != moves || leaves != moves {
		t.Fatalf("device %d: %d enters / %d leaves, want %d / %d",
			dev, enters, leaves, moves, moves)
	}
}
