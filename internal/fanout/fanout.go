// Package fanout implements the shared subscription index behind the
// BIPS push-notification surface: the paper's service vision is
// proximity and presence *notification* ("alert when device X enters
// floor 2"), and this package is the piece that makes notification
// cheap at campus scale.
//
// A Tree holds every live subscription — per-device, per-room, geofence
// zone, occupancy threshold, or catch-all — in per-key indexes
// (device→subscribers, room→subscribers, threshold watchers). The
// location database's delta stream is fed in through Publish (one
// delta) or PublishBatch (one whole ingest frame); each delta is
// routed through the indexes so the cost of a presence change scales
// with the number of *matching* subscribers, not the total number
// registered. A hundred thousand idle subscriptions on untouched rooms
// and devices cost a delta nothing but the index lookups that miss
// them.
//
// The tree keeps its own device→room map, fed by the same deltas (and
// seeded from a restored backend via Seed), so it can derive the
// leave half of a handover, maintain per-room occupancy counts, and
// initialize a zone subscription's inside/outside state — all without
// querying the database on the hot path.
//
// # Staged pipeline: batch → match → deliver
//
// The tree is built for concurrent shard flushes. Its state is split
// the same way locdb splits its shards:
//
//   - The device-keyed state — device and zone subscriptions plus the
//     device→room view — lives in independently locked shards, keyed
//     by the same mixed hash locdb uses, so frames flushed from
//     different locdb shards touch disjoint tree shards and do not
//     contend.
//   - The room-keyed subscription index is sharded the same way by
//     room id.
//   - The derived occupancy state (per-room counts plus threshold
//     watchers and their edge-trigger state) sits behind its own lock,
//     because one room's count is fed by devices on many shards.
//   - Catch-all subscriptions are published as an immutable id-sorted
//     list behind an atomic pointer, so matching them costs one load.
//
// PublishBatch regroups a frame by tree shard with a pooled counting
// sort (the write path's ApplyBatch, mirrored), locks each touched
// shard once, and routes the shard's run of deltas while holding it —
// one lock acquisition and one state sweep per shard per frame instead
// of per event.
//
// By default matching does not run the subscriber callbacks: matched
// (event, subscriber) pairs are enqueued on a bounded in-order
// delivery ring drained by one delivery goroutine, so the mutating
// goroutine's publish cost is index routing plus an enqueue, never
// subscriber work. A full ring briefly blocks the publisher
// (backpressure) rather than dropping — events are bounded by the
// per-connection buffers downstream (internal/server's drop
// accounting), not lost here. Config{Sync: true} removes the stage and
// runs callbacks inline on the publishing goroutine, which in-process
// consumers (the simulation facade) use to keep events synchronous
// with the simulated clock.
//
// # Delivery contract
//
// Once Subscribe returns, every later Publish that matches is
// delivered to the callback, and after Cancel returns no further
// callback runs — the guarantee connection teardown and the race
// tests lean on. Events of one device are delivered in publish order,
// and the matching subscribers of one event are invoked in
// subscription order. Callbacks run one at a time (on the delivery
// goroutine by default, on the publishing goroutine in Sync mode),
// MUST NOT block (hand off to a buffered channel and drop on
// overflow, as internal/server does) and must not call back into the
// Tree.
package fanout

import (
	"sort"
	"sync"
	"sync/atomic"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// DefaultShards is the device/room index shard count, matching
// locdb.DefaultShards so a default deployment maps one locdb shard
// flush onto a disjoint set of tree shards.
const DefaultShards = 16

// DefaultRing is the delivery ring capacity in matched (event,
// subscriber) pairs. When the delivery goroutine falls this far behind
// the publishers, they block until it catches up.
const DefaultRing = 4096

// Config configures a Tree.
type Config struct {
	// Shards is the device/room index shard count; 0 selects
	// DefaultShards.
	Shards int
	// Ring is the delivery ring capacity; 0 selects DefaultRing.
	// Ignored in Sync mode.
	Ring int
	// Sync disables the delivery stage: callbacks run inline on the
	// publishing goroutine, in the same order the ring would deliver
	// them. For consumers that need events synchronous with the
	// mutation that caused them (the in-process simulation facade).
	Sync bool
}

// Kind selects what a Filter matches.
type Kind string

// Filter kinds.
const (
	// KindAll matches every enter/leave event of every device.
	KindAll Kind = "all"
	// KindDevice matches one device's enter/leave events.
	KindDevice Kind = "device"
	// KindRoom matches one room's enter/leave events.
	KindRoom Kind = "room"
	// KindZone matches one device crossing into or out of a room set
	// (the geofence predicate device-enters-zone).
	KindZone Kind = "zone"
	// KindOccupancy matches one room's occupant count crossing a
	// threshold (the geofence predicate room-occupancy-crosses-K),
	// edge-triggered relative to the count at subscribe time.
	KindOccupancy Kind = "occupancy"
)

// Filter selects the events a subscription delivers. Device is used by
// KindDevice and KindZone, Room by KindRoom and KindOccupancy, Zone by
// KindZone, Threshold (>= 1) by KindOccupancy.
type Filter struct {
	Kind      Kind
	Device    baseband.BDAddr
	Room      graph.NodeID
	Zone      []graph.NodeID
	Threshold int
}

// EventKind classifies a delivered event.
type EventKind string

// Delivered event kinds.
const (
	Enter         EventKind = "enter"
	Leave         EventKind = "leave"
	ZoneEnter     EventKind = "zone-enter"
	ZoneExit      EventKind = "zone-exit"
	OccupancyRise EventKind = "occupancy-rise"
	OccupancyFall EventKind = "occupancy-fall"
)

// Event is one matched notification. Device is zero for occupancy
// events; Occupancy is set only for occupancy events (the new count).
type Event struct {
	Kind      EventKind
	Device    baseband.BDAddr
	Room      graph.NodeID
	At        sim.Tick
	Occupancy int
}

// sub is one registered subscription with its routing state. The
// edge-trigger fields are guarded by the lock of the index holding the
// sub (inZone by the device shard, above by the occupancy lock); gate
// serializes callback invocations against Cancel, which is what makes
// "after Cancel returns no further callback runs" hold even with a
// delivery stage between matching and the callback.
type sub struct {
	id      uint64
	filter  Filter
	deliver func(Event)

	// zone is the zone filter's room set; inZone is the edge-trigger
	// state (was the device inside after the last delta).
	zone   map[graph.NodeID]bool
	inZone bool
	// above is the occupancy filter's edge-trigger state.
	above bool

	gate      sync.Mutex
	cancelled bool
}

// Subscription is a handle returned by Subscribe; Cancel unregisters.
type Subscription struct {
	tree *Tree
	s    *sub
	once sync.Once
}

// Cancel unregisters the subscription. After it returns, the callback
// will not be invoked again — queued ring entries for it are skipped.
// It is idempotent.
func (s *Subscription) Cancel() {
	s.once.Do(func() { s.tree.remove(s.s) })
}

// Stats is a snapshot of the tree's activity.
type Stats struct {
	// Subscriptions is the current number of live subscriptions.
	Subscriptions int
	// Published counts deltas fed through Publish/PublishBatch.
	Published int64
	// Delivered counts callback invocations (events matched and
	// handed to subscribers).
	Delivered int64
	// Backlog is the number of matched pairs sitting in the delivery
	// ring (always 0 for a Sync tree).
	Backlog int
}

// treeShard is one independently locked partition of the device-keyed
// state: the device/zone subscription index and the device→room view.
// Every device hashes to exactly one shard — locdb's hash, so a locdb
// shard flush lands on a stable subset of tree shards.
type treeShard struct {
	mu       sync.Mutex
	byDevice map[baseband.BDAddr]map[uint64]*sub // device + zone subs
	devRoom  map[baseband.BDAddr]graph.NodeID

	// Per-shard match/deliver scratch (guarded by mu): routing runs
	// per delta on the hot path and must not allocate per event.
	matched []*sub
	deliv   []delivery
	ids     []uint64
}

// roomShard is one partition of the room subscription index. Publish
// only ever takes a room shard lock briefly, inside a device shard's
// critical section, to collect matches (lock order: device shard →
// room shard).
type roomShard struct {
	mu     sync.Mutex
	byRoom map[graph.NodeID]map[uint64]*sub
}

// occState is the derived occupancy state: per-room counts plus the
// threshold watchers and their edge state. One room's count is fed by
// devices on every shard, so it sits behind its own lock (acquired
// after the device shard's, before the ring's); updating a count and
// firing its crossings is one critical section, which keeps the
// rise/fall sequence per room consistent across concurrent flushes.
type occState struct {
	mu        sync.Mutex
	occupancy map[graph.NodeID]int
	watchers  map[graph.NodeID]map[uint64]*sub
	ids       []uint64
	deliv     []delivery
}

// publishScratch is PublishBatch's pooled regrouping storage, the
// fan-out analogue of locdb's batchScratch.
type publishScratch struct {
	idx    []int32
	counts []int32
	order  []locdb.Event
}

// Tree is the shared subscription index. All methods are safe for
// concurrent use.
type Tree struct {
	shards []*treeShard
	rooms  []*roomShard
	occ    occState

	allMu   sync.Mutex
	all     map[uint64]*sub
	allList atomic.Pointer[[]*sub] // immutable, id-sorted

	nextID    atomic.Uint64
	subCount  atomic.Int64
	published atomic.Int64
	delivered atomic.Int64

	// ring is the delivery stage; nil for a Sync tree.
	ring    *deliveryRing
	scratch sync.Pool
}

// New returns an empty synchronous tree: callbacks run inline on the
// publishing goroutine. Serving deployments use NewWithConfig to put
// the delivery stage between matching and the callbacks.
func New() *Tree { return NewWithConfig(Config{Sync: true}) }

// NewWithConfig returns an empty tree. Unless cfg.Sync is set it owns
// a delivery goroutine; Close releases it.
func NewWithConfig(cfg Config) *Tree {
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = DefaultShards
	}
	t := &Tree{
		shards: make([]*treeShard, nShards),
		rooms:  make([]*roomShard, nShards),
		all:    make(map[uint64]*sub),
	}
	for i := range t.shards {
		t.shards[i] = &treeShard{
			byDevice: make(map[baseband.BDAddr]map[uint64]*sub),
			devRoom:  make(map[baseband.BDAddr]graph.NodeID),
		}
		t.rooms[i] = &roomShard{byRoom: make(map[graph.NodeID]map[uint64]*sub)}
	}
	t.occ.occupancy = make(map[graph.NodeID]int)
	t.occ.watchers = make(map[graph.NodeID]map[uint64]*sub)
	if !cfg.Sync {
		ringSize := cfg.Ring
		if ringSize < 1 {
			ringSize = DefaultRing
		}
		t.ring = newDeliveryRing(ringSize)
		go t.ring.run(t)
	}
	return t
}

// shardIndex mixes v (splitmix64 finalizer) before reduction, exactly
// like locdb's shard mapping, so sequentially allocated addresses
// spread over all shards and a locdb shard's devices land on a stable
// tree-shard subset.
func shardIndex(v uint64, n int) int {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % uint64(n))
}

func (t *Tree) shardOf(dev baseband.BDAddr) *treeShard {
	return t.shards[shardIndex(uint64(dev), len(t.shards))]
}

func (t *Tree) roomOf(room graph.NodeID) *roomShard {
	return t.rooms[shardIndex(uint64(room), len(t.rooms))]
}

// Close stops the delivery stage after draining everything already
// enqueued. A Sync tree's Close is a no-op. Publishes racing or
// following Close fall back to inline delivery, so no event is lost;
// quiesce publishers first if delivery-order matters at shutdown.
func (t *Tree) Close() {
	if t.ring != nil {
		t.ring.close()
	}
}

// Flush blocks until every matched pair enqueued before the call has
// been handed to its callback (or skipped as cancelled). A Sync tree's
// Flush is a no-op. Tests and benchmarks use it as the delivery
// barrier.
func (t *Tree) Flush() {
	if t.ring != nil {
		t.ring.flush()
	}
}

// Seed primes the tree's device→room view from a restored backend's
// current fixes (locdb.Store.All). Call it once, after wiring the tree
// to the store's subscription stream but before any traffic flows;
// without it a durable server would restart with every room apparently
// empty until each device moves.
func (t *Tree) Seed(fixes []locdb.Fix) {
	for _, f := range fixes {
		sh := t.shardOf(f.Device)
		sh.mu.Lock()
		if _, ok := sh.devRoom[f.Device]; ok {
			sh.mu.Unlock()
			continue
		}
		sh.devRoom[f.Device] = f.Piconet
		sh.mu.Unlock()
		t.occ.mu.Lock()
		t.occ.occupancy[f.Piconet]++
		t.occ.mu.Unlock()
	}
}

// Subscribe registers a filter with a delivery callback (see the
// package comment for the callback contract). Zone and occupancy
// filters capture their initial inside/above state from the tree's
// current view, so they fire only on crossings that happen after
// registration.
func (t *Tree) Subscribe(f Filter, deliver func(Event)) *Subscription {
	s := &sub{id: t.nextID.Add(1), filter: f, deliver: deliver}
	switch f.Kind {
	case KindDevice:
		sh := t.shardOf(f.Device)
		sh.mu.Lock()
		addIdx(sh.byDevice, f.Device, s)
		sh.mu.Unlock()
	case KindZone:
		s.zone = make(map[graph.NodeID]bool, len(f.Zone))
		for _, r := range f.Zone {
			s.zone[r] = true
		}
		sh := t.shardOf(f.Device)
		sh.mu.Lock()
		if room, ok := sh.devRoom[f.Device]; ok {
			s.inZone = s.zone[room]
		}
		addIdx(sh.byDevice, f.Device, s)
		sh.mu.Unlock()
	case KindRoom:
		rs := t.roomOf(f.Room)
		rs.mu.Lock()
		addIdx(rs.byRoom, f.Room, s)
		rs.mu.Unlock()
	case KindOccupancy:
		t.occ.mu.Lock()
		s.above = t.occ.occupancy[f.Room] >= f.Threshold
		addIdx(t.occ.watchers, f.Room, s)
		t.occ.mu.Unlock()
	default: // KindAll
		t.allMu.Lock()
		t.all[s.id] = s
		t.rebuildAllLocked()
		t.allMu.Unlock()
	}
	t.subCount.Add(1)
	return &Subscription{tree: t, s: s}
}

// rebuildAllLocked republishes the id-sorted catch-all list. The
// caller holds allMu.
func (t *Tree) rebuildAllLocked() {
	list := make([]*sub, 0, len(t.all))
	for _, s := range t.all {
		list = append(list, s)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	t.allList.Store(&list)
}

func addIdx[K comparable](idx map[K]map[uint64]*sub, key K, s *sub) {
	m := idx[key]
	if m == nil {
		m = make(map[uint64]*sub)
		idx[key] = m
	}
	m[s.id] = s
}

func delIdx[K comparable](idx map[K]map[uint64]*sub, key K, s *sub) {
	m := idx[key]
	delete(m, s.id)
	if len(m) == 0 {
		delete(idx, key)
	}
}

// remove unregisters the sub from its index, then closes its gate:
// once the gate reopens with cancelled set, any invocation still in
// flight has finished and no queued ring entry will run it again.
func (t *Tree) remove(s *sub) {
	switch s.filter.Kind {
	case KindDevice, KindZone:
		sh := t.shardOf(s.filter.Device)
		sh.mu.Lock()
		delIdx(sh.byDevice, s.filter.Device, s)
		sh.mu.Unlock()
	case KindRoom:
		rs := t.roomOf(s.filter.Room)
		rs.mu.Lock()
		delIdx(rs.byRoom, s.filter.Room, s)
		rs.mu.Unlock()
	case KindOccupancy:
		t.occ.mu.Lock()
		delIdx(t.occ.watchers, s.filter.Room, s)
		t.occ.mu.Unlock()
	default:
		t.allMu.Lock()
		delete(t.all, s.id)
		t.rebuildAllLocked()
		t.allMu.Unlock()
	}
	s.gate.Lock()
	s.cancelled = true
	s.gate.Unlock()
	t.subCount.Add(-1)
}

// Stats returns a snapshot of the tree's activity counters.
func (t *Tree) Stats() Stats {
	st := Stats{
		Subscriptions: int(t.subCount.Load()),
		Published:     t.published.Load(),
		Delivered:     t.delivered.Load(),
	}
	if t.ring != nil {
		st.Backlog = t.ring.backlog()
	}
	return st
}

// Occupancy returns the tree's current occupant count for the room.
func (t *Tree) Occupancy(room graph.NodeID) int {
	t.occ.mu.Lock()
	defer t.occ.mu.Unlock()
	return t.occ.occupancy[room]
}

// OnEvent implements locdb.Sink: one delta from the single-mutation
// paths.
func (t *Tree) OnEvent(ev locdb.Event) { t.Publish(ev) }

// OnEvents implements locdb.Sink: one whole ApplyBatch frame.
func (t *Tree) OnEvents(evs []locdb.Event) { t.PublishBatch(evs) }

// Publish routes one location-database delta through the indexes. It
// may be called concurrently from many connection handlers; only
// writers touching devices of the same tree shard serialize.
//
// A presence delta whose device was already elsewhere is expanded into
// the implied leave of the old room followed by the enter of the new
// one; zone filters evaluate the handover as one crossing, so moving
// between two rooms inside the zone emits nothing. Deltas that
// disagree with the tree's own device view (possible when two writers
// race on one device and their post-commit notifications arrive out of
// order) are dropped rather than double-counted.
func (t *Tree) Publish(ev locdb.Event) {
	sh := t.shardOf(ev.Device)
	sh.mu.Lock()
	t.publishLocked(sh, ev)
	sh.mu.Unlock()
}

// PublishBatch routes one whole mutation frame: the frame is regrouped
// by tree shard with a pooled counting sort (stable, so per-device
// order follows the frame order), then each touched shard is locked
// once and its run of deltas routed inside that one critical section.
// The slice is not retained.
func (t *Tree) PublishBatch(evs []locdb.Event) {
	switch len(evs) {
	case 0:
		return
	case 1:
		t.Publish(evs[0])
		return
	}
	sc, _ := t.scratch.Get().(*publishScratch)
	if sc == nil {
		sc = &publishScratch{}
	}
	n := len(t.shards)
	if cap(sc.counts) < n {
		sc.counts = make([]int32, n)
	}
	counts := sc.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	if cap(sc.idx) < len(evs) {
		sc.idx = make([]int32, len(evs))
	}
	idx := sc.idx[:len(evs)]
	for i := range evs {
		j := int32(shardIndex(uint64(evs[i].Device), n))
		idx[i] = j
		counts[j]++
	}
	if cap(sc.order) < len(evs) {
		sc.order = make([]locdb.Event, len(evs))
	}
	order := sc.order[:len(evs)]
	sum := int32(0)
	for j := range counts {
		c := counts[j]
		counts[j] = sum
		sum += c
	}
	for i := range evs {
		j := idx[i]
		order[counts[j]] = evs[i]
		counts[j]++
	}
	// counts[j] is now the end offset of shard j's run in order.
	start := int32(0)
	for j := 0; j < n; j++ {
		end := counts[j]
		if end == start {
			continue
		}
		sh := t.shards[j]
		sh.mu.Lock()
		for _, ev := range order[start:end] {
			t.publishLocked(sh, ev)
		}
		sh.mu.Unlock()
		start = end
	}
	t.scratch.Put(sc)
}

// publishLocked routes one delta. The caller holds sh.mu, the shard
// owning ev.Device; everything the delta touches is either in this
// shard or behind a lock acquired after it (room shard, occupancy,
// ring), so per-device event order is fixed here, under one lock.
func (t *Tree) publishLocked(sh *treeShard, ev locdb.Event) {
	t.published.Add(1)
	dev := ev.Device
	old, had := sh.devRoom[dev]
	if ev.Present {
		if had && old == ev.Piconet {
			return
		}
		if had {
			t.emitLocked(sh, Event{Kind: Leave, Device: dev, Room: old, At: ev.At})
			t.occShift(old, -1, ev.At)
		}
		sh.devRoom[dev] = ev.Piconet
		t.emitLocked(sh, Event{Kind: Enter, Device: dev, Room: ev.Piconet, At: ev.At})
		t.occShift(ev.Piconet, +1, ev.At)
		t.zoneCrossingsLocked(sh, dev, ev.Piconet, true, ev.At)
		return
	}
	if !had || old != ev.Piconet {
		return
	}
	delete(sh.devRoom, dev)
	t.emitLocked(sh, Event{Kind: Leave, Device: dev, Room: old, At: ev.At})
	t.occShift(old, -1, ev.At)
	t.zoneCrossingsLocked(sh, dev, old, false, ev.At)
}

// emitLocked matches one enter/leave event against the catch-all list,
// the device index of the caller's shard, and the room index, then
// hands the matches — in subscription order — to the delivery stage
// (or invokes them inline on a Sync tree). The caller holds sh.mu.
func (t *Tree) emitLocked(sh *treeShard, e Event) {
	matched := sh.matched[:0]
	if all := t.allList.Load(); all != nil {
		matched = append(matched, *all...)
	}
	for _, s := range sh.byDevice[e.Device] {
		if s.filter.Kind == KindDevice {
			matched = append(matched, s)
		}
	}
	rs := t.roomOf(e.Room)
	rs.mu.Lock()
	for _, s := range rs.byRoom[e.Room] {
		matched = append(matched, s)
	}
	rs.mu.Unlock()
	sh.matched = matched
	if len(matched) == 0 {
		return
	}
	sortSubsByID(matched)
	if t.ring == nil {
		for _, s := range matched {
			t.invoke(s, e)
		}
		return
	}
	deliv := sh.deliv[:0]
	for _, s := range matched {
		deliv = append(deliv, delivery{s: s, e: e})
	}
	sh.deliv = deliv
	t.ring.enqueue(t, deliv)
}

// occShift applies one occupant-count change and fires the room's
// threshold watchers whose edge state flipped with the new count. The
// count mutation and the crossing evaluation are one critical section
// under the occupancy lock, so concurrent flushes from different
// shards see a consistent rise/fall sequence per room.
func (t *Tree) occShift(room graph.NodeID, delta int, at sim.Tick) {
	o := &t.occ
	o.mu.Lock()
	n := o.occupancy[room] + delta
	if n > 0 {
		o.occupancy[room] = n
	} else {
		delete(o.occupancy, room)
		n = 0
	}
	watchers := o.watchers[room]
	if len(watchers) == 0 {
		o.mu.Unlock()
		return
	}
	ids := o.ids[:0]
	for id := range watchers {
		ids = append(ids, id)
	}
	o.ids = ids
	sortIDs(ids)
	deliv := o.deliv[:0]
	for _, id := range ids {
		s := watchers[id]
		above := n >= s.filter.Threshold
		if above == s.above {
			continue
		}
		s.above = above
		kind := OccupancyRise
		if !above {
			kind = OccupancyFall
		}
		e := Event{Kind: kind, Room: room, At: at, Occupancy: n}
		if t.ring == nil {
			t.invoke(s, e)
		} else {
			deliv = append(deliv, delivery{s: s, e: e})
		}
	}
	o.deliv = deliv
	if t.ring != nil && len(deliv) > 0 {
		t.ring.enqueue(t, deliv)
	}
	o.mu.Unlock()
}

// zoneCrossingsLocked fires the device's zone watchers whose
// inside/outside state changed with the delta's final position. room
// is the device's new room when present is true and its last known
// room otherwise; an absent device is outside every zone regardless of
// room. The caller holds sh.mu, which guards the watchers' inZone
// state.
func (t *Tree) zoneCrossingsLocked(sh *treeShard, dev baseband.BDAddr, room graph.NodeID, present bool, at sim.Tick) {
	watchers := sh.byDevice[dev]
	if len(watchers) == 0 {
		return
	}
	ids := sh.ids[:0]
	for id, s := range watchers {
		if s.filter.Kind == KindZone {
			ids = append(ids, id)
		}
	}
	sh.ids = ids
	if len(ids) == 0 {
		return
	}
	sortIDs(ids)
	deliv := sh.deliv[:0]
	for _, id := range ids {
		s := watchers[id]
		in := present && s.zone[room]
		if in == s.inZone {
			continue
		}
		s.inZone = in
		kind := ZoneEnter
		if !in {
			kind = ZoneExit
		}
		e := Event{Kind: kind, Device: dev, Room: room, At: at}
		if t.ring == nil {
			t.invoke(s, e)
		} else {
			deliv = append(deliv, delivery{s: s, e: e})
		}
	}
	sh.deliv = deliv
	if t.ring != nil && len(deliv) > 0 {
		t.ring.enqueue(t, deliv)
	}
}

// sortSubsByID is an insertion sort: the hot matching path sorts a
// small, nearly sorted list (the catch-all prefix is pre-sorted) per
// event, and sort.Slice would charge it two allocations per call for
// the closure and the interface header.
func sortSubsByID(subs []*sub) {
	for i := 1; i < len(subs); i++ {
		s := subs[i]
		j := i - 1
		for j >= 0 && subs[j].id > s.id {
			subs[j+1] = subs[j]
			j--
		}
		subs[j+1] = s
	}
}

// sortIDs is the same allocation-free insertion sort for watcher ids.
func sortIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
}

// invoke runs one callback behind the sub's gate; a sub cancelled
// while queued is skipped, and a Cancel racing an invocation blocks
// until the callback returns — the Cancel half of the delivery
// contract.
func (t *Tree) invoke(s *sub, e Event) {
	s.gate.Lock()
	if !s.cancelled {
		s.deliver(e)
		t.delivered.Add(1)
	}
	s.gate.Unlock()
}
