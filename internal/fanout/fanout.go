// Package fanout implements the shared subscription index behind the
// BIPS push-notification surface: the paper's service vision is
// proximity and presence *notification* ("alert when device X enters
// floor 2"), and this package is the piece that makes notification
// cheap at campus scale.
//
// A Tree holds every live subscription — per-device, per-room, geofence
// zone, occupancy threshold, or catch-all — in per-key indexes
// (device→subscribers, room→subscribers, threshold watchers). The
// location database's delta stream is fed in once, through Publish;
// each delta is routed through the indexes so the cost of a presence
// change scales with the number of *matching* subscribers, not the
// total number registered. A hundred thousand idle subscriptions on
// untouched rooms and devices cost a delta nothing but the index
// lookups that miss them.
//
// The tree keeps its own device→room map, fed by the same deltas (and
// seeded from a restored backend via Seed), so it can derive the
// leave half of a handover, maintain per-room occupancy counts, and
// initialize a zone subscription's inside/outside state — all without
// querying the database on the hot path.
//
// # Delivery contract
//
// Registration and delivery are serialized under one mutex: once
// Subscribe returns, every later Publish that matches is delivered to
// the callback, and after Cancel returns no further callback runs —
// the guarantee connection teardown and the race tests lean on.
// Callbacks therefore run synchronously on the publishing goroutine
// while the tree is locked and MUST NOT block (hand off to a buffered
// channel and drop on overflow, as internal/server does) and must not
// call back into the Tree.
package fanout

import (
	"sort"
	"sync"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// Kind selects what a Filter matches.
type Kind string

// Filter kinds.
const (
	// KindAll matches every enter/leave event of every device.
	KindAll Kind = "all"
	// KindDevice matches one device's enter/leave events.
	KindDevice Kind = "device"
	// KindRoom matches one room's enter/leave events.
	KindRoom Kind = "room"
	// KindZone matches one device crossing into or out of a room set
	// (the geofence predicate device-enters-zone).
	KindZone Kind = "zone"
	// KindOccupancy matches one room's occupant count crossing a
	// threshold (the geofence predicate room-occupancy-crosses-K),
	// edge-triggered relative to the count at subscribe time.
	KindOccupancy Kind = "occupancy"
)

// Filter selects the events a subscription delivers. Device is used by
// KindDevice and KindZone, Room by KindRoom and KindOccupancy, Zone by
// KindZone, Threshold (>= 1) by KindOccupancy.
type Filter struct {
	Kind      Kind
	Device    baseband.BDAddr
	Room      graph.NodeID
	Zone      []graph.NodeID
	Threshold int
}

// EventKind classifies a delivered event.
type EventKind string

// Delivered event kinds.
const (
	Enter         EventKind = "enter"
	Leave         EventKind = "leave"
	ZoneEnter     EventKind = "zone-enter"
	ZoneExit      EventKind = "zone-exit"
	OccupancyRise EventKind = "occupancy-rise"
	OccupancyFall EventKind = "occupancy-fall"
)

// Event is one matched notification. Device is zero for occupancy
// events; Occupancy is set only for occupancy events (the new count).
type Event struct {
	Kind      EventKind
	Device    baseband.BDAddr
	Room      graph.NodeID
	At        sim.Tick
	Occupancy int
}

// sub is one registered subscription with its routing state.
type sub struct {
	id      uint64
	filter  Filter
	deliver func(Event)

	// zone is the zone filter's room set; inZone is the edge-trigger
	// state (was the device inside after the last delta).
	zone   map[graph.NodeID]bool
	inZone bool
	// above is the occupancy filter's edge-trigger state.
	above bool
}

// Subscription is a handle returned by Subscribe; Cancel unregisters.
type Subscription struct {
	tree *Tree
	s    *sub
	once sync.Once
}

// Cancel unregisters the subscription. After it returns, the callback
// will not be invoked again. It is idempotent.
func (s *Subscription) Cancel() {
	s.once.Do(func() { s.tree.remove(s.s) })
}

// Stats is a snapshot of the tree's activity.
type Stats struct {
	// Subscriptions is the current number of live subscriptions.
	Subscriptions int
	// Published counts deltas fed through Publish.
	Published int64
	// Delivered counts callback invocations (events matched and
	// handed to subscribers).
	Delivered int64
}

// Tree is the shared subscription index. All methods are safe for
// concurrent use.
type Tree struct {
	mu     sync.Mutex
	nextID uint64

	all       map[uint64]*sub
	byDevice  map[baseband.BDAddr]map[uint64]*sub // device + zone subs
	byRoom    map[graph.NodeID]map[uint64]*sub
	occByRoom map[graph.NodeID]map[uint64]*sub

	// devRoom and occupancy are the tree's own view of the world,
	// derived from the delta stream (and Seed): which room each present
	// device is in and how many devices each room holds.
	devRoom   map[baseband.BDAddr]graph.NodeID
	occupancy map[graph.NodeID]int

	subCount  int
	published int64
	delivered int64

	// matched is the scratch slice emit reuses between calls (guarded
	// by mu): emit runs per delta on the hot path and must not allocate
	// per event.
	matched []*sub
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{
		all:       make(map[uint64]*sub),
		byDevice:  make(map[baseband.BDAddr]map[uint64]*sub),
		byRoom:    make(map[graph.NodeID]map[uint64]*sub),
		occByRoom: make(map[graph.NodeID]map[uint64]*sub),
		devRoom:   make(map[baseband.BDAddr]graph.NodeID),
		occupancy: make(map[graph.NodeID]int),
	}
}

// Seed primes the tree's device→room view from a restored backend's
// current fixes (locdb.Store.All). Call it once, after wiring Publish
// to the store's subscription stream but before any traffic flows;
// without it a durable server would restart with every room apparently
// empty until each device moves.
func (t *Tree) Seed(fixes []locdb.Fix) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range fixes {
		if _, ok := t.devRoom[f.Device]; ok {
			continue
		}
		t.devRoom[f.Device] = f.Piconet
		t.occupancy[f.Piconet]++
	}
}

// Subscribe registers a filter with a delivery callback (see the
// package comment for the callback contract). Zone and occupancy
// filters capture their initial inside/above state from the tree's
// current view, so they fire only on crossings that happen after
// registration.
func (t *Tree) Subscribe(f Filter, deliver func(Event)) *Subscription {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &sub{id: t.nextID, filter: f, deliver: deliver}
	t.nextID++
	switch f.Kind {
	case KindDevice:
		addIdx(t.byDevice, f.Device, s)
	case KindRoom:
		addIdx(t.byRoom, f.Room, s)
	case KindZone:
		s.zone = make(map[graph.NodeID]bool, len(f.Zone))
		for _, r := range f.Zone {
			s.zone[r] = true
		}
		if room, ok := t.devRoom[f.Device]; ok {
			s.inZone = s.zone[room]
		}
		addIdx(t.byDevice, f.Device, s)
	case KindOccupancy:
		s.above = t.occupancy[f.Room] >= f.Threshold
		addIdx(t.occByRoom, f.Room, s)
	default: // KindAll
		t.all[s.id] = s
	}
	t.subCount++
	return &Subscription{tree: t, s: s}
}

func addIdx[K comparable](idx map[K]map[uint64]*sub, key K, s *sub) {
	m := idx[key]
	if m == nil {
		m = make(map[uint64]*sub)
		idx[key] = m
	}
	m[s.id] = s
}

func delIdx[K comparable](idx map[K]map[uint64]*sub, key K, s *sub) {
	m := idx[key]
	delete(m, s.id)
	if len(m) == 0 {
		delete(idx, key)
	}
}

func (t *Tree) remove(s *sub) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch s.filter.Kind {
	case KindDevice, KindZone:
		delIdx(t.byDevice, s.filter.Device, s)
	case KindRoom:
		delIdx(t.byRoom, s.filter.Room, s)
	case KindOccupancy:
		delIdx(t.occByRoom, s.filter.Room, s)
	default:
		delete(t.all, s.id)
	}
	t.subCount--
}

// Stats returns a snapshot of the tree's activity counters.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Subscriptions: t.subCount, Published: t.published, Delivered: t.delivered}
}

// Occupancy returns the tree's current occupant count for the room.
func (t *Tree) Occupancy(room graph.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.occupancy[room]
}

// Publish routes one location-database delta through the indexes. It
// is wired to locdb.Store.Subscribe, so it may be called concurrently
// from many connection handlers; the tree lock serializes them.
//
// A presence delta whose device was already elsewhere is expanded into
// the implied leave of the old room followed by the enter of the new
// one; zone filters evaluate the handover as one crossing, so moving
// between two rooms inside the zone emits nothing. Deltas that
// disagree with the tree's own device view (possible when two writers
// race on one device and their post-commit notifications arrive out of
// order) are dropped rather than double-counted.
func (t *Tree) Publish(ev locdb.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.published++
	dev := ev.Device
	old, had := t.devRoom[dev]
	if ev.Present {
		if had && old == ev.Piconet {
			return
		}
		if had {
			t.dropOccupant(old)
			t.emit(Event{Kind: Leave, Device: dev, Room: old, At: ev.At})
			t.occCrossings(old, ev.At)
		}
		t.devRoom[dev] = ev.Piconet
		t.occupancy[ev.Piconet]++
		t.emit(Event{Kind: Enter, Device: dev, Room: ev.Piconet, At: ev.At})
		t.occCrossings(ev.Piconet, ev.At)
		t.zoneCrossings(dev, ev.Piconet, true, ev.At)
		return
	}
	if !had || old != ev.Piconet {
		return
	}
	delete(t.devRoom, dev)
	t.dropOccupant(old)
	t.emit(Event{Kind: Leave, Device: dev, Room: old, At: ev.At})
	t.occCrossings(old, ev.At)
	t.zoneCrossings(dev, old, false, ev.At)
}

func (t *Tree) dropOccupant(room graph.NodeID) {
	t.occupancy[room]--
	if t.occupancy[room] <= 0 {
		delete(t.occupancy, room)
	}
}

// emit delivers one enter/leave event to the catch-all, device and
// room subscribers that match, in subscription order.
func (t *Tree) emit(e Event) {
	matched := t.matched[:0]
	for _, s := range t.all {
		matched = append(matched, s)
	}
	for _, s := range t.byDevice[e.Device] {
		if s.filter.Kind == KindDevice {
			matched = append(matched, s)
		}
	}
	for _, s := range t.byRoom[e.Room] {
		matched = append(matched, s)
	}
	t.matched = matched
	if len(matched) == 0 {
		return
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].id < matched[j].id })
	for _, s := range matched {
		s.deliver(e)
		t.delivered++
	}
}

// occCrossings fires the room's threshold watchers whose edge state
// changed with the new count.
func (t *Tree) occCrossings(room graph.NodeID, at sim.Tick) {
	watchers := t.occByRoom[room]
	if len(watchers) == 0 {
		return
	}
	n := t.occupancy[room]
	ids := make([]uint64, 0, len(watchers))
	for id := range watchers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := watchers[id]
		above := n >= s.filter.Threshold
		if above == s.above {
			continue
		}
		s.above = above
		kind := OccupancyRise
		if !above {
			kind = OccupancyFall
		}
		s.deliver(Event{Kind: kind, Room: room, At: at, Occupancy: n})
		t.delivered++
	}
}

// zoneCrossings fires the device's zone watchers whose inside/outside
// state changed with the delta's final position. room is the device's
// new room when present is true and its last known room otherwise; an
// absent device is outside every zone regardless of room.
func (t *Tree) zoneCrossings(dev baseband.BDAddr, room graph.NodeID, present bool, at sim.Tick) {
	watchers := t.byDevice[dev]
	if len(watchers) == 0 {
		return
	}
	ids := make([]uint64, 0, len(watchers))
	for id := range watchers {
		if watchers[id].filter.Kind == KindZone {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := watchers[id]
		in := present && s.zone[room]
		if in == s.inZone {
			continue
		}
		s.inZone = in
		kind := ZoneEnter
		if !in {
			kind = ZoneExit
		}
		s.deliver(Event{Kind: kind, Device: dev, Room: room, At: at})
		t.delivered++
	}
}
