package fanout

import (
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// collector is a test subscriber callback recording its deliveries.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) deliver(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func present(dev baseband.BDAddr, room graph.NodeID, at sim.Tick) locdb.Event {
	return locdb.Event{Fix: locdb.Fix{Device: dev, Piconet: room, At: at}, Present: true}
}

func absent(dev baseband.BDAddr, room graph.NodeID, at sim.Tick) locdb.Event {
	return locdb.Event{Fix: locdb.Fix{Device: dev, Piconet: room, At: at}, Present: false}
}

func kinds(events []Event) []EventKind {
	out := make([]EventKind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

func wantKinds(t *testing.T, got []Event, want ...EventKind) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d events %v, want kinds %v", len(got), kinds(got), want)
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("event %d kind = %q, want %q (all: %v)", i, got[i].Kind, k, kinds(got))
		}
	}
}

func TestAllFilterSeesHandoverAsLeaveThenEnter(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindAll}, c.deliver)

	tree.Publish(present(1, 10, 100))
	tree.Publish(present(1, 11, 200)) // handover 10 -> 11
	tree.Publish(absent(1, 11, 300))

	got := c.snapshot()
	wantKinds(t, got, Enter, Leave, Enter, Leave)
	if got[1].Room != 10 || got[2].Room != 11 {
		t.Fatalf("handover rooms = %d then %d, want 10 then 11", got[1].Room, got[2].Room)
	}
	if got[1].At != 200 || got[2].At != 200 {
		t.Fatalf("handover halves carry At %d/%d, want the delta's 200", got[1].At, got[2].At)
	}
}

func TestDuplicatePresenceEmitsNothing(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindAll}, c.deliver)
	tree.Publish(present(1, 10, 100))
	tree.Publish(present(1, 10, 150))
	wantKinds(t, c.snapshot(), Enter)
}

func TestStaleAbsenceIgnored(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindAll}, c.deliver)
	tree.Publish(present(1, 10, 100))
	tree.Publish(present(1, 11, 200))
	// The old cell's absence arrives after the handover already moved
	// the device: it must not erase the newer fix.
	tree.Publish(absent(1, 10, 210))
	wantKinds(t, c.snapshot(), Enter, Leave, Enter)
	if tree.Occupancy(11) != 1 {
		t.Fatalf("occupancy(11) = %d, want 1", tree.Occupancy(11))
	}
}

func TestDeviceFilterMatchesOnlyItsDevice(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindDevice, Device: 7}, c.deliver)
	tree.Publish(present(1, 10, 100))
	tree.Publish(present(7, 10, 110))
	tree.Publish(absent(7, 10, 120))
	tree.Publish(absent(1, 10, 130))
	got := c.snapshot()
	wantKinds(t, got, Enter, Leave)
	for _, e := range got {
		if e.Device != 7 {
			t.Fatalf("device filter delivered event for device %d", e.Device)
		}
	}
}

func TestRoomFilterMatchesOnlyItsRoom(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindRoom, Room: 10}, c.deliver)
	tree.Publish(present(1, 10, 100))
	tree.Publish(present(1, 11, 200)) // leave 10 matches, enter 11 does not
	tree.Publish(absent(1, 11, 300))
	got := c.snapshot()
	wantKinds(t, got, Enter, Leave)
	for _, e := range got {
		if e.Room != 10 {
			t.Fatalf("room filter delivered event for room %d", e.Room)
		}
	}
}

func TestZoneCrossings(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindZone, Device: 1, Zone: []graph.NodeID{10, 11}}, c.deliver)

	tree.Publish(present(1, 9, 50))   // outside: nothing
	tree.Publish(present(1, 10, 100)) // crossed in
	tree.Publish(present(1, 11, 200)) // intra-zone handover: nothing
	tree.Publish(present(1, 12, 300)) // crossed out
	tree.Publish(present(1, 10, 400)) // back in
	tree.Publish(absent(1, 10, 500))  // vanished: out

	got := c.snapshot()
	wantKinds(t, got, ZoneEnter, ZoneExit, ZoneEnter, ZoneExit)
	if got[1].Room != 12 {
		t.Fatalf("zone-exit by handover carries room %d, want the outside room 12", got[1].Room)
	}
	if got[3].Room != 10 {
		t.Fatalf("zone-exit by absence carries room %d, want the last room 10", got[3].Room)
	}
}

func TestZoneSubscribeInsideFiresOnlyOnExit(t *testing.T) {
	tree := New()
	tree.Publish(present(1, 10, 50))
	var c collector
	// The device is already inside: registration must not fire a
	// spurious zone-enter; the first crossing is the exit.
	tree.Subscribe(Filter{Kind: KindZone, Device: 1, Zone: []graph.NodeID{10}}, c.deliver)
	tree.Publish(present(1, 11, 100))
	wantKinds(t, c.snapshot(), ZoneExit)
}

func TestOccupancyCrossings(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindOccupancy, Room: 10, Threshold: 2}, c.deliver)

	tree.Publish(present(1, 10, 100)) // count 1: below
	tree.Publish(present(2, 10, 200)) // count 2: rise
	tree.Publish(present(3, 10, 300)) // count 3: no edge
	tree.Publish(absent(2, 10, 400))  // count 2: no edge (still >= 2)
	tree.Publish(absent(3, 10, 500))  // count 1: fall
	tree.Publish(present(4, 10, 600)) // count 2: rise again

	got := c.snapshot()
	wantKinds(t, got, OccupancyRise, OccupancyFall, OccupancyRise)
	if got[0].Occupancy != 2 || got[1].Occupancy != 1 || got[2].Occupancy != 2 {
		t.Fatalf("occupancy counts = %d,%d,%d want 2,1,2",
			got[0].Occupancy, got[1].Occupancy, got[2].Occupancy)
	}
	if got[0].Device != 0 {
		t.Fatalf("occupancy event carries device %d, want none", got[0].Device)
	}
}

func TestOccupancySubscribeAboveFiresOnlyOnFall(t *testing.T) {
	tree := New()
	tree.Publish(present(1, 10, 50))
	tree.Publish(present(2, 10, 60))
	var c collector
	tree.Subscribe(Filter{Kind: KindOccupancy, Room: 10, Threshold: 2}, c.deliver)
	tree.Publish(present(3, 10, 100)) // 3: already above, no edge
	tree.Publish(absent(3, 10, 200))  // 2: still above
	tree.Publish(absent(2, 10, 300))  // 1: fall
	wantKinds(t, c.snapshot(), OccupancyFall)
}

func TestOccupancyTracksHandover(t *testing.T) {
	tree := New()
	var c10, c11 collector
	tree.Subscribe(Filter{Kind: KindOccupancy, Room: 10, Threshold: 1}, c10.deliver)
	tree.Subscribe(Filter{Kind: KindOccupancy, Room: 11, Threshold: 1}, c11.deliver)
	tree.Publish(present(1, 10, 100))
	tree.Publish(present(1, 11, 200)) // handover moves the occupant
	wantKinds(t, c10.snapshot(), OccupancyRise, OccupancyFall)
	wantKinds(t, c11.snapshot(), OccupancyRise)
	if tree.Occupancy(10) != 0 || tree.Occupancy(11) != 1 {
		t.Fatalf("occupancy after handover = %d/%d, want 0/1", tree.Occupancy(10), tree.Occupancy(11))
	}
}

func TestSeedPrimesViewWithoutEvents(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindAll}, c.deliver)
	tree.Seed([]locdb.Fix{
		{Device: 1, Piconet: 10, At: 50},
		{Device: 2, Piconet: 10, At: 60},
	})
	if got := c.snapshot(); len(got) != 0 {
		t.Fatalf("Seed emitted %d events, want 0", len(got))
	}
	if tree.Occupancy(10) != 2 {
		t.Fatalf("seeded occupancy = %d, want 2", tree.Occupancy(10))
	}
	// A seeded device handing over emits the leave half correctly.
	tree.Publish(present(1, 11, 100))
	wantKinds(t, c.snapshot(), Leave, Enter)
}

func TestCancelStopsDeliveryAndIsIdempotent(t *testing.T) {
	tree := New()
	var c collector
	sub := tree.Subscribe(Filter{Kind: KindAll}, c.deliver)
	tree.Publish(present(1, 10, 100))
	sub.Cancel()
	sub.Cancel()
	tree.Publish(present(1, 11, 200))
	wantKinds(t, c.snapshot(), Enter)
	if n := tree.Stats().Subscriptions; n != 0 {
		t.Fatalf("subscriptions after cancel = %d, want 0", n)
	}
}

func TestStatsCount(t *testing.T) {
	tree := New()
	var c collector
	tree.Subscribe(Filter{Kind: KindAll}, c.deliver)
	tree.Subscribe(Filter{Kind: KindRoom, Room: 10}, c.deliver)
	tree.Publish(present(1, 10, 100))
	st := tree.Stats()
	if st.Subscriptions != 2 {
		t.Fatalf("Subscriptions = %d, want 2", st.Subscriptions)
	}
	if st.Published != 1 {
		t.Fatalf("Published = %d, want 1", st.Published)
	}
	if st.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2 (all + room)", st.Delivered)
	}
}

func TestDeliveryOrderFollowsRegistration(t *testing.T) {
	tree := New()
	var order []int
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		i := i
		tree.Subscribe(Filter{Kind: KindAll}, func(Event) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	tree.Publish(present(1, 10, 100))
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order = %v, want registration order", order)
		}
	}
}
