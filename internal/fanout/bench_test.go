package fanout

import (
	"fmt"
	"sync/atomic"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// benchFrame mirrors the ingest pipeline's batch size: locdb.ApplyBatch
// frames of 64 deltas are what PublishBatch sees in production.
const benchFrame = 64

// benchTree builds a tree with a realistic subscriber population: two
// catch-alls, a device watcher per hot device, and a room watcher per
// room — every event matches several subscribers, so the number charges
// the matching and delivery machinery, not an empty index sweep.
func benchTree(cfg Config, devs, rooms int, delivered *atomic.Int64) *Tree {
	t := NewWithConfig(cfg)
	cb := func(Event) { delivered.Add(1) }
	t.Subscribe(Filter{Kind: KindAll}, cb)
	t.Subscribe(Filter{Kind: KindAll}, cb)
	for d := 0; d < devs; d++ {
		t.Subscribe(Filter{Kind: KindDevice, Device: baseband.BDAddr(1 + d)}, cb)
	}
	for r := 0; r < rooms; r++ {
		t.Subscribe(Filter{Kind: KindRoom, Room: graph.NodeID(1 + r)}, cb)
	}
	return t
}

// benchEvents builds one reusable frame of real room changes: every
// device hops to the next room each frame, so every delta produces an
// enter (and, after the first frame, the paired handover leave).
func benchEvents(evs []locdb.Event, devs, rooms, round int) {
	for i := range evs {
		evs[i] = locdb.Event{
			Fix: locdb.Fix{
				Device:  baseband.BDAddr(1 + (round*len(evs)+i)%devs),
				Piconet: graph.NodeID(1 + (round+i)%rooms),
				At:      sim.Tick(1 + round),
			},
			Present: true,
		}
	}
}

// BenchmarkFanoutPublishBatch measures the write-path cost of feeding
// the subscription index, per event, across the two delivery modes and
// the two publish shapes:
//
//   - sync: callbacks run inline on the publishing goroutine — the
//     event cost includes every subscriber's callback (the pre-staged
//     design's behavior).
//   - staged: matching and enqueue only; callbacks run on the delivery
//     goroutine, off the measured path (Flush outside the loop bounds
//     the backlog drain).
//   - single: one Publish per event (the un-batched contract).
//   - batch64: one PublishBatch per 64-event frame (the ApplyBatch
//     sink contract): one shard lock and one scratch regroup per frame.
func BenchmarkFanoutPublishBatch(b *testing.B) {
	const devs, rooms = 256, 16
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{Sync: true}},
		{"staged", Config{}},
	} {
		for _, shape := range []string{"single", "batch64"} {
			b.Run(fmt.Sprintf("%s/%s", mode.name, shape), func(b *testing.B) {
				var delivered atomic.Int64
				tree := benchTree(mode.cfg, devs, rooms, &delivered)
				defer tree.Close()
				evs := make([]locdb.Event, benchFrame)
				// Warm the device→room view so the steady state is
				// handovers, not first entries.
				benchEvents(evs, devs, rooms, 0)
				tree.PublishBatch(evs)
				tree.Flush()
				b.ResetTimer()
				round := 1
				if shape == "single" {
					for n := 0; n < b.N; n += benchFrame {
						benchEvents(evs, devs, rooms, round)
						round++
						for _, ev := range evs {
							tree.Publish(ev)
						}
					}
				} else {
					for n := 0; n < b.N; n += benchFrame {
						benchEvents(evs, devs, rooms, round)
						round++
						tree.PublishBatch(evs)
					}
				}
				tree.Flush()
				b.StopTimer()
				if delivered.Load() == 0 {
					b.Fatal("no deliveries")
				}
			})
		}
	}
}
