package fanout

import (
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// orderLog is one shared, globally ordered record of every callback
// invocation across several subscribers: the delivery goroutine invokes
// callbacks one at a time, so the append order IS the delivery order,
// and the test can assert subscription-order exactly, not just
// per-subscriber.
type orderLog struct {
	mu     sync.Mutex
	subIDs []int
	events []Event
}

func (l *orderLog) recorder(subIdx int) func(Event) {
	return func(e Event) {
		l.mu.Lock()
		l.subIDs = append(l.subIDs, subIdx)
		l.events = append(l.events, e)
		l.mu.Unlock()
	}
}

// TestStagedOrderUnderConcurrentBatches pins the staged tree's ordering
// contract under -race: writer goroutines flush ApplyBatch frames from
// disjoint locdb shards concurrently — the real ingest wiring, through
// the batch sink — while K catch-all subscribers record every delivery
// into one globally ordered log. The ring is kept deliberately small so
// publishers regularly hit backpressure. Asserted exactly, not
// statistically:
//
//   - subscription order: every matched event reaches the K subscribers
//     as one contiguous block of identical events in ascending
//     subscription order;
//   - per-device order: each device's stream (as any one subscriber saw
//     it) is the complete alternating enter/leave history with
//     non-decreasing ticks;
//   - no lost events: a bounded ring may block publishers but never
//     drops, so the counts come out exact.
func TestStagedOrderUnderConcurrentBatches(t *testing.T) {
	const (
		writers        = 4
		devsPerWriter  = 4
		movesPerDevice = 150
		rooms          = 7 // rooms 1..7
		subscribers    = 3
	)

	db, err := locdb.NewSharded(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny ring forces the enqueue path to block and wrap constantly.
	tree := NewWithConfig(Config{Ring: 64})
	t.Cleanup(tree.Close)
	db.SubscribeSink(tree)

	var log orderLog
	for k := 0; k < subscribers; k++ {
		tree.Subscribe(Filter{Kind: KindAll}, log.recorder(k))
	}

	var ingest sync.WaitGroup
	for w := 0; w < writers; w++ {
		ingest.Add(1)
		go func(w int) {
			defer ingest.Done()
			for move := 0; move < movesPerDevice; move++ {
				batch := make([]locdb.Mutation, 0, devsPerWriter)
				for d := 0; d < devsPerWriter; d++ {
					batch = append(batch, locdb.Mutation{
						Op:  locdb.MutPresence,
						Dev: baseband.BDAddr(1 + w*devsPerWriter + d),
						// Consecutive moves always differ mod rooms, so
						// every mutation is a real room change.
						Piconet: graph.NodeID(1 + (move+d)%rooms),
						At:      sim.Tick(1000 * (move + 1)),
					})
				}
				db.ApplyBatch(batch)
			}
			final := make([]locdb.Mutation, 0, devsPerWriter)
			for d := 0; d < devsPerWriter; d++ {
				dev := baseband.BDAddr(1 + w*devsPerWriter + d)
				final = append(final, locdb.Mutation{
					Op: locdb.MutAbsence, Dev: dev,
					Piconet: graph.NodeID(1 + (movesPerDevice-1+d)%rooms),
					At:      sim.Tick(1000 * (movesPerDevice + 1)),
				})
			}
			db.ApplyBatch(final)
		}(w)
	}
	ingest.Wait()
	// Everything is published; Flush is the delivery barrier.
	tree.Flush()

	// Subscription order, asserted exactly: the log must consist of
	// blocks of `subscribers` identical events delivered in ascending
	// subscriber order.
	if len(log.events)%subscribers != 0 {
		t.Fatalf("delivery log length %d is not a multiple of %d subscribers", len(log.events), subscribers)
	}
	for i := 0; i < len(log.events); i += subscribers {
		for k := 0; k < subscribers; k++ {
			if log.subIDs[i+k] != k {
				t.Fatalf("delivery block at %d: position %d went to subscriber %d, want %d",
					i, k, log.subIDs[i+k], k)
			}
			if log.events[i+k] != log.events[i] {
				t.Fatalf("delivery block at %d: subscriber %d saw %+v, subscriber 0 saw %+v",
					i, k, log.events[i+k], log.events[i])
			}
		}
	}

	// Per-device order and completeness, from subscriber 0's view.
	perDev := make(map[baseband.BDAddr][]Event)
	for i := 0; i < len(log.events); i += subscribers {
		e := log.events[i]
		perDev[e.Device] = append(perDev[e.Device], e)
	}
	if len(perDev) != writers*devsPerWriter {
		t.Fatalf("saw %d devices, want %d", len(perDev), writers*devsPerWriter)
	}
	for dev, events := range perDev {
		checkDeviceStream(t, dev, events, movesPerDevice)
	}

	if bl := tree.Stats().Backlog; bl != 0 {
		t.Fatalf("backlog after Flush = %d, want 0", bl)
	}
}

// TestStagedCancelStopsDelivery pins the Cancel half of the delivery
// contract on the staged tree: entries already matched and queued for a
// subscription when Cancel returns are skipped, never delivered late.
func TestStagedCancelStopsDelivery(t *testing.T) {
	tree := NewWithConfig(Config{})
	t.Cleanup(tree.Close)

	var mu sync.Mutex
	var got []Event
	sub := tree.Subscribe(Filter{Kind: KindAll}, func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})

	tree.Publish(present(1, 5, 1))
	tree.Flush()
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("delivered %d events before cancel, want 1", n)
	}

	// Queue events and cancel before the delivery stage can possibly
	// have drained them all; none may arrive after Cancel returns.
	for i := 0; i < 1000; i++ {
		tree.Publish(present(1, graph.NodeID(5+i%2), sim.Tick(2+i)))
	}
	sub.Cancel()
	mu.Lock()
	afterCancel := len(got)
	mu.Unlock()
	tree.Flush()
	mu.Lock()
	final := len(got)
	mu.Unlock()
	if final != afterCancel {
		t.Fatalf("%d events delivered after Cancel returned", final-afterCancel)
	}
}

// TestStagedCloseDrains pins Close's drain guarantee: everything
// published before Close is delivered, not abandoned in the ring.
func TestStagedCloseDrains(t *testing.T) {
	tree := NewWithConfig(Config{Ring: 32})
	var mu sync.Mutex
	count := 0
	tree.Subscribe(Filter{Kind: KindAll}, func(Event) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const events = 500
	for i := 0; i < events; i++ {
		ev := present(baseband.BDAddr(1+i%8), graph.NodeID(1+i%7), sim.Tick(1+i))
		ev.Present = i%2 == 0
		tree.Publish(ev)
	}
	published := tree.Stats().Published
	tree.Close()
	mu.Lock()
	got := count
	mu.Unlock()
	if int64(got) != tree.Stats().Delivered {
		t.Fatalf("callback ran %d times, Delivered reports %d", got, tree.Stats().Delivered)
	}
	if published != int64(events) {
		t.Fatalf("published = %d, want %d", published, events)
	}
	// Handover expansion means delivered >= the matching enters/leaves;
	// the exact invariant here is just "nothing queued was dropped".
	if bl := tree.Stats().Backlog; bl != 0 {
		t.Fatalf("backlog after Close = %d, want 0", bl)
	}
}
