package fanout

import "sync"

// delivery is one matched (subscriber, event) pair queued for the
// delivery stage.
type delivery struct {
	s *sub
	e Event
}

// deliveryRing is the bounded in-order queue between matching and the
// subscriber callbacks: publishers enqueue matched pairs while holding
// their index locks (so queue order equals match order), one consumer
// goroutine drains them and runs the callbacks. A full ring blocks the
// enqueuing publisher until the consumer frees space — backpressure,
// never loss. The consumer takes no tree locks, so it always makes
// progress against blocked publishers.
type deliveryRing struct {
	// enqMu serializes whole enqueue calls. One matched batch (one
	// event's subscriber block) must land contiguously even when the
	// ring fills mid-copy and the publisher has to wait — notFull.Wait
	// releases mu, and without the outer lock another publisher could
	// splice its block into the gap, breaking subscription-order
	// delivery.
	enqMu    sync.Mutex
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	idle     sync.Cond

	buf  []delivery
	head int // index of the oldest queued entry
	n    int // queued entries

	// pending counts entries enqueued but not yet invoked — it stays
	// nonzero while the consumer is mid-chunk, which is what lets
	// flush wait for in-flight callbacks, not just an empty buffer.
	pending int

	closed bool
	done   chan struct{}
}

func newDeliveryRing(size int) *deliveryRing {
	r := &deliveryRing{
		buf:  make([]delivery, size),
		done: make(chan struct{}),
	}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	r.idle.L = &r.mu
	return r
}

// enqueue appends the pairs in order, blocking while the ring is full.
// batch is the caller's scratch and is copied before return. If the
// ring has been closed the pairs are invoked inline instead, so a
// publish racing Close still delivers.
func (r *deliveryRing) enqueue(t *Tree, batch []delivery) {
	r.enqMu.Lock()
	defer r.enqMu.Unlock()
	r.mu.Lock()
	for len(batch) > 0 {
		for r.n == len(r.buf) && !r.closed {
			r.notFull.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			for _, d := range batch {
				t.invoke(d.s, d.e)
			}
			return
		}
		free := len(r.buf) - r.n
		k := len(batch)
		if k > free {
			k = free
		}
		tail := (r.head + r.n) % len(r.buf)
		copied := copy(r.buf[tail:], batch[:k])
		if copied < k {
			copy(r.buf, batch[copied:k])
		}
		r.n += k
		r.pending += k
		batch = batch[k:]
		r.notEmpty.Signal()
	}
	r.mu.Unlock()
}

// chunk bounds how many entries the consumer pops per lock
// acquisition, so a deep backlog cannot starve publishers of the ring
// lock for its whole length.
const chunk = 256

// run is the delivery goroutine: pop a chunk, release the lock, run
// the callbacks, account them as no-longer-pending. On close it drains
// whatever is queued before signalling done.
func (r *deliveryRing) run(t *Tree) {
	var local [chunk]delivery
	r.mu.Lock()
	for {
		for r.n == 0 && !r.closed {
			r.notEmpty.Wait()
		}
		if r.n == 0 && r.closed {
			r.mu.Unlock()
			close(r.done)
			return
		}
		k := r.n
		if k > chunk {
			k = chunk
		}
		for i := 0; i < k; i++ {
			j := (r.head + i) % len(r.buf)
			local[i] = r.buf[j]
			r.buf[j] = delivery{} // drop the *sub reference
		}
		r.head = (r.head + k) % len(r.buf)
		r.n -= k
		r.notFull.Broadcast()
		r.mu.Unlock()
		for i := 0; i < k; i++ {
			t.invoke(local[i].s, local[i].e)
			local[i] = delivery{}
		}
		r.mu.Lock()
		r.pending -= k
		if r.pending == 0 {
			r.idle.Broadcast()
		}
	}
}

// flush blocks until every entry enqueued before the call has been
// handed to invoke. Entries enqueued concurrently with flush may or
// may not be waited for.
func (r *deliveryRing) flush() {
	r.mu.Lock()
	for r.pending > 0 {
		r.idle.Wait()
	}
	r.mu.Unlock()
}

// close stops the consumer after it drains everything queued, then
// waits for it to exit. Idempotent.
func (r *deliveryRing) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.notEmpty.Broadcast()
	r.notFull.Broadcast()
	r.mu.Unlock()
	<-r.done
}

func (r *deliveryRing) backlog() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}
