// Package registry implements the off-line BIPS user registration
// procedure and the login service of Section 2: registering a user
// associates a name with a userid, a password and a set of access rights;
// logging in binds the userid one-to-one to the Bluetooth device address
// (BD_ADDR) of the user's handheld, and from that moment until logout BIPS
// tracks the device.
package registry

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bips/internal/baseband"
)

// UserID identifies a registered BIPS user.
type UserID string

// Right is an access right a user may hold.
type Right string

// The rights BIPS checks before answering queries.
const (
	// RightLocate allows querying other users' positions.
	RightLocate Right = "locate"
	// RightTrackable marks the user as visible to locate queries.
	RightTrackable Right = "trackable"
	// RightAdmin allows registering and deleting users.
	RightAdmin Right = "admin"
)

// Errors reported by the registry.
var (
	ErrExists        = errors.New("registry: user already registered")
	ErrUnknownUser   = errors.New("registry: unknown user")
	ErrBadPassword   = errors.New("registry: wrong password")
	ErrNotLoggedIn   = errors.New("registry: user not logged in")
	ErrDeviceInUse   = errors.New("registry: device already bound to another user")
	ErrAlreadyOnline = errors.New("registry: user already logged in")
	ErrBadDevice     = errors.New("registry: invalid device address")
	ErrDenied        = errors.New("registry: access denied")
	ErrEmptyUserID   = errors.New("registry: empty userid")
)

type account struct {
	name   string
	salt   [16]byte
	hash   [32]byte
	rights map[Right]bool
}

// Registry is the BIPS user database plus the live userid <-> BD_ADDR
// binding table. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	accounts map[UserID]*account
	byUser   map[UserID]baseband.BDAddr
	byDev    map[baseband.BDAddr]UserID
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		accounts: make(map[UserID]*account),
		byUser:   make(map[UserID]baseband.BDAddr),
		byDev:    make(map[baseband.BDAddr]UserID),
	}
}

func hashPassword(salt [16]byte, password string) [32]byte {
	h := sha256.New()
	h.Write(salt[:])
	h.Write([]byte(password))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Register performs the off-line registration procedure: it associates a
// user name with a userid and stores the salted password hash and rights.
func (r *Registry) Register(id UserID, name, password string, rights ...Right) error {
	if id == "" {
		return ErrEmptyUserID
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.accounts[id]; ok {
		return fmt.Errorf("%w: %s", ErrExists, id)
	}
	acct := &account{name: name, rights: make(map[Right]bool, len(rights))}
	if _, err := rand.Read(acct.salt[:]); err != nil {
		return fmt.Errorf("registry: salt: %w", err)
	}
	acct.hash = hashPassword(acct.salt, password)
	for _, right := range rights {
		acct.rights[right] = true
	}
	r.accounts[id] = acct
	return nil
}

// Remove deletes a user, logging it out first if needed.
func (r *Registry) Remove(id UserID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.accounts[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, id)
	}
	if dev, ok := r.byUser[id]; ok {
		delete(r.byDev, dev)
		delete(r.byUser, id)
	}
	delete(r.accounts, id)
	return nil
}

// Name returns the registered display name.
func (r *Registry) Name(id UserID) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	acct, ok := r.accounts[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownUser, id)
	}
	return acct.name, nil
}

// HasRight reports whether the user holds the right.
func (r *Registry) HasRight(id UserID, right Right) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	acct, ok := r.accounts[id]
	return ok && acct.rights[right]
}

// Grant adds a right to a user.
func (r *Registry) Grant(id UserID, right Right) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	acct, ok := r.accounts[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, id)
	}
	acct.rights[right] = true
	return nil
}

// Revoke removes a right from a user.
func (r *Registry) Revoke(id UserID, right Right) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	acct, ok := r.accounts[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, id)
	}
	delete(acct.rights, right)
	return nil
}

// Login authenticates the user and establishes the one-to-one userid <->
// BD_ADDR correspondence. A user may be bound to at most one device and a
// device to at most one user.
func (r *Registry) Login(id UserID, password string, dev baseband.BDAddr) error {
	if !dev.Valid() {
		return fmt.Errorf("%w: %v", ErrBadDevice, dev)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	acct, ok := r.accounts[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownUser, id)
	}
	want := hashPassword(acct.salt, password)
	if subtle.ConstantTimeCompare(want[:], acct.hash[:]) != 1 {
		return fmt.Errorf("%w: %s", ErrBadPassword, id)
	}
	if _, online := r.byUser[id]; online {
		return fmt.Errorf("%w: %s", ErrAlreadyOnline, id)
	}
	if owner, bound := r.byDev[dev]; bound {
		return fmt.Errorf("%w: %v owned by %s", ErrDeviceInUse, dev, owner)
	}
	r.byUser[id] = dev
	r.byDev[dev] = id
	return nil
}

// Logout removes the user's device binding; BIPS stops tracking the user.
func (r *Registry) Logout(id UserID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	dev, ok := r.byUser[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotLoggedIn, id)
	}
	delete(r.byUser, id)
	delete(r.byDev, dev)
	return nil
}

// DeviceOf returns the device currently bound to the user.
func (r *Registry) DeviceOf(id UserID) (baseband.BDAddr, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dev, ok := r.byUser[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotLoggedIn, id)
	}
	return dev, nil
}

// UserOf returns the user currently bound to the device.
func (r *Registry) UserOf(dev baseband.BDAddr) (UserID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byDev[dev]
	if !ok {
		return "", fmt.Errorf("%w: device %v", ErrNotLoggedIn, dev)
	}
	return id, nil
}

// Online returns the logged-in userids in ascending order.
func (r *Registry) Online() []UserID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]UserID, 0, len(r.byUser))
	for id := range r.byUser {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Authorize checks the paper's pre-query conditions: the querying user may
// locate others, and the target is logged in and trackable. It returns the
// target's device address on success.
func (r *Registry) Authorize(querier, target UserID) (baseband.BDAddr, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	q, ok := r.accounts[querier]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownUser, querier)
	}
	if !q.rights[RightLocate] {
		return 0, fmt.Errorf("%w: %s lacks %q", ErrDenied, querier, RightLocate)
	}
	tgt, ok := r.accounts[target]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownUser, target)
	}
	if !tgt.rights[RightTrackable] {
		return 0, fmt.Errorf("%w: %s is not trackable", ErrDenied, target)
	}
	dev, online := r.byUser[target]
	if !online {
		return 0, fmt.Errorf("%w: %s", ErrNotLoggedIn, target)
	}
	return dev, nil
}
