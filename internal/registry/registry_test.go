package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"bips/internal/baseband"
)

const (
	alice = UserID("alice")
	bob   = UserID("bob")
	pw    = "secret"
)

var (
	devA = baseband.BDAddr(0x001122334455)
	devB = baseband.BDAddr(0x0011223344AA)
)

func fresh(t *testing.T) *Registry {
	t.Helper()
	r := New()
	if err := r.Register(alice, "Alice", pw, RightLocate, RightTrackable); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(bob, "Bob", pw, RightLocate, RightTrackable); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register("", "x", pw); !errors.Is(err, ErrEmptyUserID) {
		t.Errorf("empty id error = %v", err)
	}
	if err := r.Register(alice, "Alice", pw); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(alice, "Alice2", pw); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestName(t *testing.T) {
	r := fresh(t)
	name, err := r.Name(alice)
	if err != nil || name != "Alice" {
		t.Errorf("Name = %q, %v", name, err)
	}
	if _, err := r.Name("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user error = %v", err)
	}
}

func TestLoginHappyPath(t *testing.T) {
	r := fresh(t)
	if err := r.Login(alice, pw, devA); err != nil {
		t.Fatal(err)
	}
	dev, err := r.DeviceOf(alice)
	if err != nil || dev != devA {
		t.Errorf("DeviceOf = %v, %v", dev, err)
	}
	id, err := r.UserOf(devA)
	if err != nil || id != alice {
		t.Errorf("UserOf = %v, %v", id, err)
	}
}

func TestLoginFailures(t *testing.T) {
	r := fresh(t)
	tests := []struct {
		name string
		do   func() error
		want error
	}{
		{"unknown user", func() error { return r.Login("ghost", pw, devA) }, ErrUnknownUser},
		{"wrong password", func() error { return r.Login(alice, "nope", devA) }, ErrBadPassword},
		{"invalid device", func() error { return r.Login(alice, pw, 0) }, ErrBadDevice},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.do(); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestLoginBindingIsOneToOne(t *testing.T) {
	r := fresh(t)
	if err := r.Login(alice, pw, devA); err != nil {
		t.Fatal(err)
	}
	if err := r.Login(alice, pw, devB); !errors.Is(err, ErrAlreadyOnline) {
		t.Errorf("double login error = %v", err)
	}
	if err := r.Login(bob, pw, devA); !errors.Is(err, ErrDeviceInUse) {
		t.Errorf("device reuse error = %v", err)
	}
	if err := r.Login(bob, pw, devB); err != nil {
		t.Errorf("independent login failed: %v", err)
	}
}

func TestLogout(t *testing.T) {
	r := fresh(t)
	if err := r.Logout(alice); !errors.Is(err, ErrNotLoggedIn) {
		t.Errorf("logout while offline error = %v", err)
	}
	if err := r.Login(alice, pw, devA); err != nil {
		t.Fatal(err)
	}
	if err := r.Logout(alice); err != nil {
		t.Fatal(err)
	}
	if _, err := r.DeviceOf(alice); !errors.Is(err, ErrNotLoggedIn) {
		t.Errorf("DeviceOf after logout error = %v", err)
	}
	// Device is free again.
	if err := r.Login(bob, pw, devA); err != nil {
		t.Errorf("device not released: %v", err)
	}
}

func TestOnline(t *testing.T) {
	r := fresh(t)
	if got := r.Online(); len(got) != 0 {
		t.Errorf("Online = %v on fresh registry", got)
	}
	if err := r.Login(bob, pw, devB); err != nil {
		t.Fatal(err)
	}
	if err := r.Login(alice, pw, devA); err != nil {
		t.Fatal(err)
	}
	got := r.Online()
	if len(got) != 2 || got[0] != alice || got[1] != bob {
		t.Errorf("Online = %v, want [alice bob]", got)
	}
}

func TestRights(t *testing.T) {
	r := New()
	if err := r.Register("u", "U", pw); err != nil {
		t.Fatal(err)
	}
	if r.HasRight("u", RightLocate) {
		t.Error("unexpected right on fresh account")
	}
	if err := r.Grant("u", RightLocate); err != nil {
		t.Fatal(err)
	}
	if !r.HasRight("u", RightLocate) {
		t.Error("granted right not visible")
	}
	if err := r.Revoke("u", RightLocate); err != nil {
		t.Fatal(err)
	}
	if r.HasRight("u", RightLocate) {
		t.Error("revoked right still visible")
	}
	if err := r.Grant("ghost", RightLocate); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("grant unknown error = %v", err)
	}
	if err := r.Revoke("ghost", RightLocate); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("revoke unknown error = %v", err)
	}
}

func TestAuthorize(t *testing.T) {
	r := fresh(t)
	if err := r.Login(bob, pw, devB); err != nil {
		t.Fatal(err)
	}
	dev, err := r.Authorize(alice, bob)
	if err != nil || dev != devB {
		t.Errorf("Authorize = %v, %v", dev, err)
	}

	// Querier without locate right.
	if err := r.Register("nosy", "N", pw); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize("nosy", bob); !errors.Is(err, ErrDenied) {
		t.Errorf("no-locate error = %v", err)
	}

	// Target not trackable.
	if err := r.Revoke(bob, RightTrackable); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize(alice, bob); !errors.Is(err, ErrDenied) {
		t.Errorf("untrackable error = %v", err)
	}
	if err := r.Grant(bob, RightTrackable); err != nil {
		t.Fatal(err)
	}

	// Target offline.
	if err := r.Logout(bob); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authorize(alice, bob); !errors.Is(err, ErrNotLoggedIn) {
		t.Errorf("offline target error = %v", err)
	}

	// Unknown users.
	if _, err := r.Authorize("ghost", bob); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown querier error = %v", err)
	}
	if _, err := r.Authorize(alice, "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown target error = %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := fresh(t)
	if err := r.Login(alice, pw, devA); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(alice); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Name(alice); !errors.Is(err, ErrUnknownUser) {
		t.Error("removed user still present")
	}
	// Device binding cleaned up.
	if err := r.Login(bob, pw, devA); err != nil {
		t.Errorf("device not released on remove: %v", err)
	}
	if err := r.Remove("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("remove unknown error = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := UserID(fmt.Sprintf("user%d", i))
			dev := baseband.BDAddr(0x10000 + i)
			if err := r.Register(id, "n", pw, RightLocate, RightTrackable); err != nil {
				t.Error(err)
				return
			}
			if err := r.Login(id, pw, dev); err != nil {
				t.Error(err)
				return
			}
			if _, err := r.UserOf(dev); err != nil {
				t.Error(err)
			}
			r.Online()
			if err := r.Logout(id); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Online()); got != 0 {
		t.Errorf("Online after all logouts = %d", got)
	}
}

func TestPasswordsAreSalted(t *testing.T) {
	// Two accounts with the same password must have different hashes;
	// indirectly verified by logging both in successfully and by the
	// registry not exposing hashes at all. Check login still works.
	r := New()
	if err := r.Register("a", "A", pw); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", "B", pw); err != nil {
		t.Fatal(err)
	}
	if err := r.Login("a", pw, devA); err != nil {
		t.Error(err)
	}
	if err := r.Login("b", pw, devB); err != nil {
		t.Error(err)
	}
}
