// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) and its Section 5 analysis:
//
//   - Table1: average device-discovery time over 500 inquiry trials,
//     classified by whether master and slave started on the same train.
//   - Fig2: discovery probability vs. time for 2..20 slaves under the
//     1 s / 5 s master duty cycle with train A only.
//   - Policy: the 3.84 s discovery slot, ~95% expected coverage, 15.4 s
//     operational cycle and ~24% tracking load of Section 5, cross-checked
//     by simulation.
//
// Plus the ablations DESIGN.md calls out: collision handling on/off, slave
// scan-interval sensitivity, and the discovery-slot length sweep.
//
// Every experiment is a sweep of independent Monte-Carlo trials executed on
// a runner.Pool: trial i draws all its randomness from a stream derived
// from (root seed, i), and results are folded into running aggregates in
// index order. Results are therefore bit-identical at any worker count.
// The RunXxx functions are convenience wrappers over the RunXxxOn variants
// using a GOMAXPROCS-sized pool and no cancellation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"bips/internal/inquiry"
	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/runner"
	"bips/internal/sim"
	"bips/internal/stats"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Label   string
	Cases   int
	AvgSecs float64
	CI95    float64
}

// Table1Result is the regenerated Table 1.
type Table1Result struct {
	Same, Different, Mixed Table1Row
}

// PaperTable1 holds the paper's measured values for comparison.
var PaperTable1 = Table1Result{
	Same:      Table1Row{Label: "Same", Cases: 236, AvgSecs: 1.6028},
	Different: Table1Row{Label: "Different", Cases: 264, AvgSecs: 4.1320},
	Mixed:     Table1Row{Label: "Mixed", Cases: 500, AvgSecs: 2.865},
}

// RunTable1 regenerates Table 1 with the given number of trials (the paper
// uses 500).
func RunTable1(seed int64, trials int) Table1Result {
	r, err := RunTable1On(context.Background(), runner.NewPool(), seed, trials)
	if err != nil {
		// Unreachable without cancellation: trials never fail.
		panic(err)
	}
	return r
}

// RunTable1On regenerates Table 1 on the given pool. Trial i's master
// train, slave phases and backoffs are drawn from the stream derived from
// (seed, i); summaries accumulate in trial order, so the result is
// identical at any worker count.
func RunTable1On(ctx context.Context, p *runner.Pool, seed int64, trials int) (Table1Result, error) {
	if trials <= 0 {
		trials = 500
	}
	var same, diff, mixed stats.Summary
	var sameN, diffN int
	err := runner.Run(ctx, p, seed, trials,
		func(i int, rng *rand.Rand) (inquiry.TrialResult, error) {
			return inquiry.RunTrial(rng, inquiry.TrialConfig{}), nil
		},
		func(i int, r inquiry.TrialResult) error {
			secs := r.Time.Seconds()
			mixed.Add(secs)
			if r.SameTrain {
				same.Add(secs)
				sameN++
			} else {
				diff.Add(secs)
				diffN++
			}
			return nil
		})
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		Same:      Table1Row{Label: "Same", Cases: sameN, AvgSecs: same.Mean(), CI95: same.CI95()},
		Different: Table1Row{Label: "Different", Cases: diffN, AvgSecs: diff.Mean(), CI95: diff.CI95()},
		Mixed:     Table1Row{Label: "Mixed", Cases: trials, AvgSecs: mixed.Mean(), CI95: mixed.CI95()},
	}, nil
}

// Render writes the regenerated table next to the paper's values.
func (r Table1Result) Render(w io.Writer) error {
	tb := stats.NewTable("Starting Train", "Case No.", "Taverage", "Paper Taverage")
	for _, pair := range []struct {
		got, paper Table1Row
	}{
		{r.Same, PaperTable1.Same},
		{r.Different, PaperTable1.Different},
		{r.Mixed, PaperTable1.Mixed},
	} {
		tb.AddRow(
			pair.got.Label,
			fmt.Sprintf("%d", pair.got.Cases),
			fmt.Sprintf("%.4fs ± %.4f", pair.got.AvgSecs, pair.got.CI95),
			fmt.Sprintf("%.4fs", pair.paper.AvgSecs),
		)
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

// Fig2Config parameterises the Figure 2 regeneration.
type Fig2Config struct {
	// Populations lists the slave counts; nil means the paper's
	// {2,4,6,8,10,15,20}.
	Populations []int
	// Runs is the number of independent runs averaged per population
	// (the paper's figure averages simulation runs). Default 40.
	Runs int
	// Horizon is the x-axis extent. Default 14 s.
	Horizon sim.Tick
	// Points is the number of CDF sample points per curve. Default 57
	// (every 0.25 s over 14 s).
	Points int
	// Collision toggles the authors' collision handling (ablation).
	Collision radio.CollisionPolicy
}

func (c Fig2Config) withDefaults() Fig2Config {
	if len(c.Populations) == 0 {
		c.Populations = []int{2, 4, 6, 8, 10, 15, 20}
	}
	if c.Runs <= 0 {
		c.Runs = 40
	}
	if c.Horizon == 0 {
		c.Horizon = 14 * sim.TicksPerSecond
	}
	if c.Points < 2 {
		c.Points = 57
	}
	return c
}

// Fig2Curve is one population's discovery-probability series.
type Fig2Curve struct {
	Slaves int
	// Points are (time-seconds, probability) pairs.
	Points [][2]float64
	// At1s, At6s and At11s sample the curve at the paper's talking
	// points (end of inquiry phases one, two and three).
	At1s, At6s, At11s float64
	// Collisions is the mean number of destroyed response slots.
	Collisions float64
}

// Fig2Result is the regenerated Figure 2.
type Fig2Result struct {
	Curves []Fig2Curve
}

// RunFig2 regenerates the Figure 2 simulation: master alternating 1 s of
// inquiry (train A only) with 4 s of connection management; slaves always
// in inquiry scan starting on train A frequencies.
func RunFig2(seed int64, cfg Fig2Config) (Fig2Result, error) {
	return RunFig2On(context.Background(), runner.NewPool(), seed, cfg)
}

// RunFig2On regenerates Figure 2 on the given pool. The sweep is the flat
// cross product population × run, so parallelism spans populations: slow
// 20-slave runs overlap with fast 2-slave runs.
func RunFig2On(ctx context.Context, p *runner.Pool, seed int64, cfg Fig2Config) (Fig2Result, error) {
	cfg = cfg.withDefaults()
	cycle := inquiry.DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond}
	var out Fig2Result

	// Per-population accumulation; trial index i maps to population
	// i/cfg.Runs, run i%cfg.Runs. Because consumption is in index order, a
	// population's runs arrive contiguously and in order.
	var samples []float64
	total := 0
	var collisions stats.Summary
	flush := func(n int) {
		cdf := stats.NewCDF(samples, total)
		out.Curves = append(out.Curves, Fig2Curve{
			Slaves:     n,
			Points:     cdf.Points(0, cfg.Horizon.Seconds(), cfg.Points),
			At1s:       cdf.At(1.0),
			At6s:       cdf.At(6.0),
			At11s:      cdf.At(11.0),
			Collisions: collisions.Mean(),
		})
		samples = samples[:0]
		total = 0
		collisions = stats.Summary{}
	}
	err := runner.Run(ctx, p, seed, len(cfg.Populations)*cfg.Runs,
		func(i int, rng *rand.Rand) (inquiry.SwarmResult, error) {
			return inquiry.RunSwarm(rng, inquiry.SwarmConfig{
				Slaves:    cfg.Populations[i/cfg.Runs],
				Cycle:     cycle,
				Horizon:   cfg.Horizon,
				Collision: cfg.Collision,
			})
		},
		func(i int, res inquiry.SwarmResult) error {
			for _, t := range res.Times {
				samples = append(samples, t.Seconds())
			}
			total += res.Slaves
			collisions.Add(float64(res.Collisions))
			if (i+1)%cfg.Runs == 0 {
				flush(cfg.Populations[i/cfg.Runs])
			}
			return nil
		})
	if err != nil {
		return Fig2Result{}, err
	}
	return out, nil
}

// Render writes the sampled curves as a table plus the headline fractions.
func (r Fig2Result) Render(w io.Writer) error {
	tb := stats.NewTable("Slaves", "P(1s)", "P(6s)", "P(11s)", "Collisions/run")
	for _, c := range r.Curves {
		tb.AddRow(
			fmt.Sprintf("%d", c.Slaves),
			fmt.Sprintf("%.3f", c.At1s),
			fmt.Sprintf("%.3f", c.At6s),
			fmt.Sprintf("%.3f", c.At11s),
			fmt.Sprintf("%.1f", c.Collisions),
		)
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nPaper: ~90%% of <=10 slaves in the first 1s phase; "+
		"100%% by cycle 2; 15-20 slaves within 2 cycles.\n")
	return err
}

// Series renders the full (t, P) series of every curve, one line per
// sample point, the machine-readable form of the figure.
func (r Fig2Result) Series(w io.Writer) error {
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if _, err := fmt.Fprintf(w, "%d\t%.3f\t%.4f\n", c.Slaves, p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// PolicyResult is the regenerated Section 5 analysis.
type PolicyResult struct {
	// SlotSecs, CycleSecs, Coverage and Load are the derived policy.
	SlotSecs  float64
	CycleSecs float64
	Coverage  float64
	Load      float64
	// MeasuredCoverage is the simulated fraction of 20 slaves (mixed
	// trains, standard alternation) discovered within one 3.84 s slot.
	MeasuredCoverage float64
	// MeasuredCrossingSecs is the simulated mean cell residence time.
	MeasuredCrossingSecs float64
}

// PaperPolicyNumbers are the paper's Section 5 claims.
var PaperPolicyNumbers = PolicyResult{
	SlotSecs:  3.84,
	CycleSecs: 15.4,
	Coverage:  0.95,
	Load:      0.24,
}

// RunPolicy regenerates the Section 5 analysis and cross-checks it by
// simulation: 20 slaves with random train phases, master running one
// 3.84 s slot with standard train alternation.
func RunPolicy(seed int64, runs int) (PolicyResult, error) {
	return RunPolicyOn(context.Background(), runner.NewPool(), seed, runs)
}

// RunPolicyOn regenerates the Section 5 analysis on the given pool.
func RunPolicyOn(ctx context.Context, p *runner.Pool, seed int64, runs int) (PolicyResult, error) {
	if runs <= 0 {
		runs = 40
	}

	slot := sim.FromSeconds(3.84)
	var coverage stats.Summary
	f := false
	err := runner.Run(ctx, p, seed, runs,
		func(i int, rng *rand.Rand) (inquiry.SwarmResult, error) {
			return inquiry.RunSwarm(rng, inquiry.SwarmConfig{
				Slaves:  20,
				Cycle:   inquiry.DutyCycle{Inquiry: slot, Period: 20 * sim.TicksPerSecond},
				Horizon: slot, // one slot only
				Policy:  inquiry.TrainsAlternate,
				// Random listening trains: the realistic Section 5
				// situation ("the starting trains cannot be defined
				// by the programmer").
				TrainAScanOnly: &f,
			})
		},
		func(i int, res inquiry.SwarmResult) error {
			coverage.Add(res.DiscoveredBy(slot))
			return nil
		})
	if err != nil {
		return PolicyResult{}, err
	}

	// The crossing measurement gets the stream one past the sweep's last
	// trial, keeping it independent of the coverage runs.
	crossing, err := mobility.MeasureCrossing(runner.NewRand(seed, runs),
		radio.DefaultCoverageRadiusMeters, 1.3, 1.3, 100000)
	if err != nil {
		return PolicyResult{}, err
	}

	cycle := mobility.PaperCrossingEstimate()
	return PolicyResult{
		SlotSecs:             slot.Seconds(),
		CycleSecs:            cycle.Seconds(),
		Coverage:             0.5 + 0.5*0.9,
		Load:                 slot.Seconds() / cycle.Seconds(),
		MeasuredCoverage:     coverage.Mean(),
		MeasuredCrossingSecs: crossing.Seconds(),
	}, nil
}

// Render writes the policy analysis next to the paper's numbers.
func (r PolicyResult) Render(w io.Writer) error {
	tb := stats.NewTable("Quantity", "Derived", "Measured", "Paper")
	tb.AddRow("Discovery slot", fmt.Sprintf("%.2fs", r.SlotSecs), "-", "3.84s")
	tb.AddRow("Coverage of 20 slaves", fmt.Sprintf("%.0f%%", r.Coverage*100),
		fmt.Sprintf("%.0f%%", r.MeasuredCoverage*100), "95%")
	tb.AddRow("Operational cycle", fmt.Sprintf("%.1fs", r.CycleSecs),
		fmt.Sprintf("%.1fs (chord mean)", r.MeasuredCrossingSecs), "15.4s")
	tb.AddRow("Tracking load", fmt.Sprintf("%.0f%%", r.Load*100), "-", "24%")
	_, err := io.WriteString(w, tb.String())
	return err
}
