package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/radio"
	"bips/internal/runner"
	"bips/internal/sim"
	"bips/internal/stats"
)

// CollisionAblationRow compares discovery with and without the authors'
// collision handling for one population.
type CollisionAblationRow struct {
	Slaves             int
	WithAt1s, NoneAt1s float64
	WithColl, NoneColl float64
	WithAt6s, NoneAt6s float64
}

// CollisionAblation is the abl-collision experiment of DESIGN.md.
type CollisionAblation struct {
	Rows []CollisionAblationRow
}

// RunCollisionAblation reruns the Figure 2 workload for the given
// populations under both collision policies.
func RunCollisionAblation(seed int64, populations []int, runs int) (CollisionAblation, error) {
	return RunCollisionAblationOn(context.Background(), runner.NewPool(), seed, populations, runs)
}

// RunCollisionAblationOn reruns the collision ablation on the given pool.
func RunCollisionAblationOn(ctx context.Context, p *runner.Pool, seed int64, populations []int, runs int) (CollisionAblation, error) {
	if len(populations) == 0 {
		populations = []int{10, 20}
	}
	if runs <= 0 {
		runs = 30
	}
	measure := func(seed int64, n int, pol radio.CollisionPolicy) (at1, at6, coll float64, err error) {
		var s1, s6, sc stats.Summary
		err = runner.Run(ctx, p, seed, runs,
			func(i int, rng *rand.Rand) (inquiry.SwarmResult, error) {
				return inquiry.RunSwarm(rng, inquiry.SwarmConfig{
					Slaves:    n,
					Cycle:     inquiry.DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
					Collision: pol,
				})
			},
			func(i int, res inquiry.SwarmResult) error {
				s1.Add(res.DiscoveredBy(sim.TicksPerSecond))
				s6.Add(res.DiscoveredBy(6 * sim.TicksPerSecond))
				sc.Add(float64(res.Collisions))
				return nil
			})
		if err != nil {
			return 0, 0, 0, err
		}
		return s1.Mean(), s6.Mean(), sc.Mean(), nil
	}
	var out CollisionAblation
	for i, n := range populations {
		// Same per-population seed for both policies: run j under
		// "destroy all" and run j under "none" share the derived stream
		// (seed+i, j), so the comparison is strictly paired.
		pseed := seed + int64(i)
		w1, w6, wc, err := measure(pseed, n, radio.CollideDestroyAll)
		if err != nil {
			return CollisionAblation{}, err
		}
		n1, n6, nc, err := measure(pseed, n, radio.CollideNone)
		if err != nil {
			return CollisionAblation{}, err
		}
		out.Rows = append(out.Rows, CollisionAblationRow{
			Slaves:   n,
			WithAt1s: w1, NoneAt1s: n1,
			WithAt6s: w6, NoneAt6s: n6,
			WithColl: wc, NoneColl: nc,
		})
	}
	return out, nil
}

// Render writes the ablation table.
func (a CollisionAblation) Render(w io.Writer) error {
	tb := stats.NewTable("Slaves", "P(1s) with", "P(1s) without", "P(6s) with", "P(6s) without", "Collisions/run")
	for _, r := range a.Rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Slaves),
			fmt.Sprintf("%.3f", r.WithAt1s),
			fmt.Sprintf("%.3f", r.NoneAt1s),
			fmt.Sprintf("%.3f", r.WithAt6s),
			fmt.Sprintf("%.3f", r.NoneAt6s),
			fmt.Sprintf("%.1f", r.WithColl),
		)
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

// ScanAblationRow is one slave scan configuration's Table 1 outcome.
type ScanAblationRow struct {
	Label        string
	IntervalSecs float64
	WindowMillis float64
	Mode         inquiry.ScanMode
	MeanSecs     float64
	CI95         float64
}

// ScanAblation is the abl-scan experiment: Table 1 sensitivity to the
// slave's scan parameters.
type ScanAblation struct {
	Rows []ScanAblationRow
}

// RunScanAblation reruns the Table 1 trial under several slave scan
// configurations.
func RunScanAblation(seed int64, trials int) ScanAblation {
	a, err := RunScanAblationOn(context.Background(), runner.NewPool(), seed, trials)
	if err != nil {
		// Unreachable without cancellation: trials never fail.
		panic(err)
	}
	return a
}

// RunScanAblationOn reruns the scan ablation on the given pool.
func RunScanAblationOn(ctx context.Context, p *runner.Pool, seed int64, trials int) (ScanAblation, error) {
	if trials <= 0 {
		trials = 200
	}
	configs := []struct {
		label    string
		mode     inquiry.ScanMode
		interval sim.Tick
		window   sim.Tick
	}{
		{"alternating 1.28s/11.25ms (paper)", inquiry.ScanAlternating, 0, 0},
		{"alternating 0.64s/11.25ms", inquiry.ScanAlternating, baseband.TInquiryScanTicks / 2, 0},
		{"alternating 2.56s/11.25ms", inquiry.ScanAlternating, 2 * baseband.TInquiryScanTicks, 0},
		{"alternating 1.28s/22.5ms", inquiry.ScanAlternating, 0, 2 * baseband.TwInquiryScanTicks},
		{"inquiry-only 1.28s/11.25ms", inquiry.ScanInquiryOnly, 0, 0},
		{"continuous", inquiry.ScanContinuous, 0, 0},
	}
	var out ScanAblation
	for i, c := range configs {
		var s stats.Summary
		err := runner.Run(ctx, p, seed+int64(i), trials,
			func(j int, rng *rand.Rand) (inquiry.TrialResult, error) {
				return inquiry.RunTrial(rng, inquiry.TrialConfig{
					Mode:     c.mode,
					Interval: c.interval,
					Window:   c.window,
				}), nil
			},
			func(j int, r inquiry.TrialResult) error {
				s.Add(r.Time.Seconds())
				return nil
			})
		if err != nil {
			return ScanAblation{}, err
		}
		interval := c.interval
		if interval == 0 {
			interval = baseband.TInquiryScanTicks
		}
		window := c.window
		if window == 0 {
			window = baseband.TwInquiryScanTicks
		}
		out.Rows = append(out.Rows, ScanAblationRow{
			Label:        c.label,
			IntervalSecs: interval.Seconds(),
			WindowMillis: window.Seconds() * 1000,
			Mode:         c.mode,
			MeanSecs:     s.Mean(),
			CI95:         s.CI95(),
		})
	}
	return out, nil
}

// Render writes the scan ablation table.
func (a ScanAblation) Render(w io.Writer) error {
	tb := stats.NewTable("Slave scan configuration", "Mean discovery", "95% CI")
	for _, r := range a.Rows {
		tb.AddRow(r.Label,
			fmt.Sprintf("%.3fs", r.MeanSecs),
			fmt.Sprintf("±%.3f", r.CI95))
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

// DutyAblationRow is one discovery-slot length's coverage of 20 slaves.
type DutyAblationRow struct {
	SlotSecs float64
	Coverage float64
	Load     float64
}

// DutyAblation is the abl-duty experiment: sweeping the discovery-slot
// length around the paper's 3.84 s operating point.
type DutyAblation struct {
	CycleSecs float64
	Rows      []DutyAblationRow
}

// RunDutyAblation measures, for each slot length, the fraction of 20
// randomly phased slaves discovered within one slot under standard train
// alternation (the Section 5 situation).
func RunDutyAblation(seed int64, runs int) (DutyAblation, error) {
	return RunDutyAblationOn(context.Background(), runner.NewPool(), seed, runs)
}

// RunDutyAblationOn reruns the discovery-slot sweep on the given pool.
func RunDutyAblationOn(ctx context.Context, p *runner.Pool, seed int64, runs int) (DutyAblation, error) {
	if runs <= 0 {
		runs = 30
	}
	slots := []float64{1.0, 1.28, 2.56, 3.84, 5.12}
	cycle := 15.4
	f := false
	var out DutyAblation
	out.CycleSecs = cycle
	for i, slotSecs := range slots {
		slot := sim.FromSeconds(slotSecs)
		var cov stats.Summary
		err := runner.Run(ctx, p, seed+int64(i), runs,
			func(j int, rng *rand.Rand) (inquiry.SwarmResult, error) {
				return inquiry.RunSwarm(rng, inquiry.SwarmConfig{
					Slaves:         20,
					Cycle:          inquiry.DutyCycle{Inquiry: slot, Period: slot + sim.TicksPerSecond},
					Horizon:        slot,
					Policy:         inquiry.TrainsAlternate,
					TrainAScanOnly: &f,
				})
			},
			func(j int, res inquiry.SwarmResult) error {
				cov.Add(res.DiscoveredBy(slot))
				return nil
			})
		if err != nil {
			return DutyAblation{}, err
		}
		out.Rows = append(out.Rows, DutyAblationRow{
			SlotSecs: slotSecs,
			Coverage: cov.Mean(),
			Load:     slotSecs / cycle,
		})
	}
	return out, nil
}

// Render writes the duty ablation table.
func (a DutyAblation) Render(w io.Writer) error {
	tb := stats.NewTable("Slot", "Coverage of 20 slaves", "Load @15.4s cycle")
	for _, r := range a.Rows {
		tb.AddRow(
			fmt.Sprintf("%.2fs", r.SlotSecs),
			fmt.Sprintf("%.0f%%", r.Coverage*100),
			fmt.Sprintf("%.0f%%", r.Load*100),
		)
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nPaper operating point: 3.84s slot -> ~95%% coverage at ~24%% load.\n")
	return err
}
