package experiments

import (
	"context"
	"reflect"

	"bips/internal/runner"
	"strings"
	"testing"
)

func TestTable1MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := RunTable1(2003, 500)
	if r.Same.Cases+r.Different.Cases != 500 {
		t.Fatalf("cases = %d + %d, want 500", r.Same.Cases, r.Different.Cases)
	}
	// ~50/50 split.
	if r.Same.Cases < 200 || r.Same.Cases > 300 {
		t.Errorf("same-train cases = %d, want ~250", r.Same.Cases)
	}
	// Means within 25% of the paper's measurements.
	within := func(got, want, tol float64) bool {
		return got > want*(1-tol) && got < want*(1+tol)
	}
	if !within(r.Same.AvgSecs, PaperTable1.Same.AvgSecs, 0.25) {
		t.Errorf("same mean = %.3f, paper %.3f", r.Same.AvgSecs, PaperTable1.Same.AvgSecs)
	}
	if !within(r.Different.AvgSecs, PaperTable1.Different.AvgSecs, 0.25) {
		t.Errorf("different mean = %.3f, paper %.3f", r.Different.AvgSecs, PaperTable1.Different.AvgSecs)
	}
	if !within(r.Mixed.AvgSecs, PaperTable1.Mixed.AvgSecs, 0.25) {
		t.Errorf("mixed mean = %.3f, paper %.3f", r.Mixed.AvgSecs, PaperTable1.Mixed.AvgSecs)
	}
	// Ordering: same < mixed < different.
	if !(r.Same.AvgSecs < r.Mixed.AvgSecs && r.Mixed.AvgSecs < r.Different.AvgSecs) {
		t.Errorf("ordering violated: %.3f / %.3f / %.3f",
			r.Same.AvgSecs, r.Mixed.AvgSecs, r.Different.AvgSecs)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Same", "Different", "Mixed", "1.6028"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTable1DefaultTrials(t *testing.T) {
	r := RunTable1(1, -1)
	if r.Mixed.Cases != 500 {
		t.Errorf("default trials = %d, want 500", r.Mixed.Cases)
	}
}

func TestFig2MatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := RunFig2(42, Fig2Config{Runs: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 7 {
		t.Fatalf("curves = %d, want 7", len(r.Curves))
	}
	byN := map[int]Fig2Curve{}
	for _, c := range r.Curves {
		byN[c.Slaves] = c
	}
	// Paper: ~90% of 10 slaves inside the first 1s phase.
	if c := byN[10]; c.At1s < 0.75 {
		t.Errorf("10 slaves P(1s) = %.2f, want >= 0.75 (paper ~0.9)", c.At1s)
	}
	// 100% by the second cycle for <=10 slaves.
	for _, n := range []int{2, 4, 6, 8, 10} {
		if c := byN[n]; c.At6s < 0.95 {
			t.Errorf("%d slaves P(6s) = %.2f, want ~1.0", n, c.At6s)
		}
	}
	// 15-20 slaves all discovered within 2 cycles.
	for _, n := range []int{15, 20} {
		if c := byN[n]; c.At6s < 0.93 {
			t.Errorf("%d slaves P(6s) = %.2f, want >= 0.93", n, c.At6s)
		}
		if c := byN[n]; c.At11s < 0.98 {
			t.Errorf("%d slaves P(11s) = %.2f, want ~1.0", n, c.At11s)
		}
	}
	// Monotone in population at 1s: more slaves, slower discovery.
	if byN[2].At1s < byN[20].At1s {
		t.Errorf("P(1s) not decreasing in population: %v vs %v",
			byN[2].At1s, byN[20].At1s)
	}
	// Curves are monotone in time.
	for _, c := range r.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i][1] < c.Points[i-1][1] {
				t.Fatalf("curve %d not monotone at %v", c.Slaves, c.Points[i])
			}
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Slaves") {
		t.Error("render missing header")
	}
	sb.Reset()
	if err := r.Series(&sb); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(sb.String()), "\n")) < 7*10 {
		t.Error("series output too short")
	}
}

func TestPolicyMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r, err := RunPolicy(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotSecs != 3.84 {
		t.Errorf("slot = %v", r.SlotSecs)
	}
	if r.Coverage != 0.95 {
		t.Errorf("derived coverage = %v", r.Coverage)
	}
	if r.MeasuredCoverage < 0.85 || r.MeasuredCoverage > 1.0 {
		t.Errorf("measured coverage = %.3f, want ~0.95", r.MeasuredCoverage)
	}
	if r.CycleSecs < 15.3 || r.CycleSecs > 15.5 {
		t.Errorf("cycle = %.2f, want ~15.4", r.CycleSecs)
	}
	if r.Load < 0.24 || r.Load > 0.26 {
		t.Errorf("load = %.3f, want ~0.25", r.Load)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Tracking load") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestCollisionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	a, err := RunCollisionAblation(1, []int{10, 20}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 2 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	for _, r := range a.Rows {
		// Removing collisions can only help early discovery.
		if r.NoneAt1s < r.WithAt1s-0.05 {
			t.Errorf("%d slaves: collision-free slower (%.2f < %.2f)",
				r.Slaves, r.NoneAt1s, r.WithAt1s)
		}
		if r.WithColl == 0 {
			t.Errorf("%d slaves: no collisions recorded under destroy-all", r.Slaves)
		}
		if r.NoneColl != 0 {
			t.Errorf("%d slaves: collisions recorded under none policy", r.Slaves)
		}
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Collisions/run") {
		t.Error("render missing column")
	}
}

func TestScanAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	a := RunScanAblation(1, 120)
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	byLabel := map[string]ScanAblationRow{}
	for _, r := range a.Rows {
		byLabel[r.Label] = r
	}
	paper := byLabel["alternating 1.28s/11.25ms (paper)"]
	cont := byLabel["continuous"]
	slow := byLabel["alternating 2.56s/11.25ms"]
	// Continuous scanning is the fastest; doubling the interval slows
	// discovery.
	if cont.MeanSecs >= paper.MeanSecs {
		t.Errorf("continuous (%.2fs) not faster than paper (%.2fs)",
			cont.MeanSecs, paper.MeanSecs)
	}
	if slow.MeanSecs <= paper.MeanSecs {
		t.Errorf("2.56s interval (%.2fs) not slower than paper (%.2fs)",
			slow.MeanSecs, paper.MeanSecs)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Mean discovery") {
		t.Error("render missing column")
	}
}

func TestDutyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	a, err := RunDutyAblation(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 5 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Coverage grows with the slot length; the 3.84 s point is near the
	// paper's 95%.
	for i := 1; i < len(a.Rows); i++ {
		if a.Rows[i].Coverage < a.Rows[i-1].Coverage-0.05 {
			t.Errorf("coverage not increasing: %.2f@%.2fs -> %.2f@%.2fs",
				a.Rows[i-1].Coverage, a.Rows[i-1].SlotSecs,
				a.Rows[i].Coverage, a.Rows[i].SlotSecs)
		}
	}
	var at384 float64
	for _, r := range a.Rows {
		if r.SlotSecs == 3.84 {
			at384 = r.Coverage
		}
	}
	if at384 < 0.85 {
		t.Errorf("coverage at 3.84s = %.2f, want ~0.95", at384)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "operating point") {
		t.Error("render missing note")
	}
}

// TestDeterministicAcrossWorkerCounts is the engine's core guarantee: the
// same root seed produces byte-identical results at any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	serial := runner.NewPool(runner.WithWorkers(1))
	wide := runner.NewPool(runner.WithWorkers(8))

	t1a, err := RunTable1On(ctx, serial, 2003, 160)
	if err != nil {
		t.Fatal(err)
	}
	t1b, err := RunTable1On(ctx, wide, 2003, 160)
	if err != nil {
		t.Fatal(err)
	}
	if t1a != t1b {
		t.Errorf("Table1 differs across worker counts:\n1: %+v\n8: %+v", t1a, t1b)
	}

	f2a, err := RunFig2On(ctx, serial, 42, Fig2Config{Populations: []int{2, 10}, Runs: 6})
	if err != nil {
		t.Fatal(err)
	}
	f2b, err := RunFig2On(ctx, wide, 42, Fig2Config{Populations: []int{2, 10}, Runs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f2a, f2b) {
		t.Errorf("Fig2 differs across worker counts:\n1: %+v\n8: %+v", f2a, f2b)
	}

	pa, err := RunPolicyOn(ctx, serial, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := RunPolicyOn(ctx, wide, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Errorf("Policy differs across worker counts:\n1: %+v\n8: %+v", pa, pb)
	}
}

// TestTable1Cancellation checks a sweep stops cleanly mid-flight.
func TestTable1Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTable1On(ctx, runner.NewPool(runner.WithWorkers(4)), 1, 500); err == nil {
		t.Fatal("cancelled sweep reported success")
	}
}
