// Package page models the Bluetooth page and connection-setup procedure of
// the paper's Section 3.2: after discovering a device, the master pages it
// explicitly; the slave listens for page messages during its page-scan
// windows (default T_page_scan = 1.28 s, T_w_page_scan = 11.25 ms, the same
// values as inquiry scan); after the page handshake the two devices freeze
// the hop-selection clock input and enter the connection state.
//
// Unlike inquiry, paging is directed: the master learned the slave's
// address and clock from the FHS response, so its page train covers the
// slave's listening frequency almost immediately. The dominant latency is
// therefore page-scan window alignment, which is what this model captures
// at half-slot resolution; the multi-slot handshake (slave ID response,
// master FHS, slave ACK, POLL/NULL) is modelled with its fixed slot cost.
package page

import (
	"errors"
	"fmt"

	"bips/internal/baseband"
	"bips/internal/radio"
	"bips/internal/sim"
)

// HandshakeSlots is the fixed cost of the page handshake once the slave
// hears a page ID in a scan window: slave ID response, master FHS, slave
// ACK, and the first POLL/NULL exchange in the new piconet.
const HandshakeSlots = 6

// Errors reported by the pager.
var (
	// ErrPageTimeout is delivered when the page gives up (the
	// pageTimeout of the standard, default 5.12 s).
	ErrPageTimeout = errors.New("page: timeout")
	// ErrBusy is returned when the pager is already paging.
	ErrBusy = errors.New("page: pager busy")
	// ErrNotReachable is delivered when the target is outside coverage.
	ErrNotReachable = errors.New("page: target not reachable")
)

// DefaultPageTimeout is the standard pageTimeout: 5.12 s.
const DefaultPageTimeout = 2 * baseband.TrainDwellTicks

// Scanner is the slave side: a device listening for page messages in
// periodic page-scan windows.
type Scanner struct {
	// Addr is the device address.
	Addr baseband.BDAddr
	// ClockOffset is the device's native clock phase.
	ClockOffset sim.Tick
	// Interval is T_page_scan. Zero means the 1.28 s default.
	Interval sim.Tick
	// Window is T_w_page_scan. Zero means the 11.25 ms default.
	Window sim.Tick
	// AlternatesWithInquiry marks a device that interleaves inquiry-scan
	// and page-scan windows (the paper's slave programming): only every
	// other window is a page-scan window.
	AlternatesWithInquiry bool
	// Connectable gates whether the device answers pages at all.
	Connectable bool
}

func (s Scanner) interval() sim.Tick {
	if s.Interval > 0 {
		return s.Interval
	}
	return baseband.TPageScanTicks
}

func (s Scanner) window() sim.Tick {
	if s.Window > 0 {
		return s.Window
	}
	return baseband.TwPageScanTicks
}

// scanOpen reports whether a page-scan window is open at tick now.
func (s Scanner) scanOpen(now sim.Tick) bool {
	if !s.Connectable {
		return false
	}
	clk := (s.ClockOffset + now) % (1 << 28)
	pos := clk % s.interval()
	if pos >= s.window() {
		return false
	}
	if s.AlternatesWithInquiry {
		// Odd windows are page-scan when windows alternate (even
		// ones are inquiry-scan; see inquiry.ScanAlternating).
		k := clk / s.interval()
		return k%2 == 1
	}
	return true
}

// NextOpen returns the first tick >= from at which a page-scan window is
// open, or (0, false) if the scanner never opens (not connectable).
func (s Scanner) NextOpen(from sim.Tick) (sim.Tick, bool) {
	if !s.Connectable {
		return 0, false
	}
	// Scan tick-by-tick within one period worth of windows; the
	// structure is periodic with period interval (or 2*interval when
	// alternating), so the search is bounded.
	limit := from + 2*s.interval() + s.window()
	for t := from; t <= limit; t++ {
		if s.scanOpen(t) {
			return t, true
		}
	}
	return 0, false
}

// Result is the outcome of a page attempt.
type Result struct {
	Target baseband.BDAddr
	// ConnectedAt is the tick the connection entered the connection
	// state (valid when Err is nil).
	ConnectedAt sim.Tick
	// Err is nil on success.
	Err error
}

// Pager is the master side: it pages one target at a time.
type Pager struct {
	kernel *sim.Kernel
	addr   baseband.BDAddr
	medium *radio.Medium

	busy  bool
	pages int
	fails int
}

// NewPager returns a pager for the master with the given address. medium
// may be nil (all targets reachable).
func NewPager(k *sim.Kernel, addr baseband.BDAddr, medium *radio.Medium) *Pager {
	return &Pager{kernel: k, addr: addr, medium: medium}
}

// Busy reports whether a page is in progress.
func (p *Pager) Busy() bool { return p.busy }

// Pages returns the number of page attempts started.
func (p *Pager) Pages() int { return p.pages }

// Failures returns the number of failed page attempts.
func (p *Pager) Failures() int { return p.fails }

// Page starts paging the scanner. done is invoked exactly once, at the
// connection instant or at the timeout. A zero timeout means
// DefaultPageTimeout. Only one page may be in flight per pager, matching a
// single-radio master.
func (p *Pager) Page(target Scanner, timeout sim.Tick, done func(Result)) error {
	if p.busy {
		return ErrBusy
	}
	if timeout <= 0 {
		timeout = DefaultPageTimeout
	}
	p.busy = true
	p.pages++
	start := p.kernel.Now()

	finish := func(r Result) {
		p.busy = false
		if r.Err != nil {
			p.fails++
		}
		done(r)
	}

	if p.medium != nil && !p.medium.InRange(p.addr, target.Addr) {
		// The page train burns the full timeout before giving up on
		// an unreachable device.
		p.kernel.Schedule(timeout, func(*sim.Kernel) {
			finish(Result{Target: target.Addr, Err: fmt.Errorf("%w: %v", ErrNotReachable, target.Addr)})
		})
		return nil
	}

	open, ok := target.NextOpen(start)
	if !ok || open-start > timeout {
		p.kernel.Schedule(timeout, func(*sim.Kernel) {
			finish(Result{Target: target.Addr, Err: fmt.Errorf("%w: %v after %v", ErrPageTimeout, target.Addr, timeout)})
		})
		return nil
	}
	connectAt := open + HandshakeSlots*baseband.SlotTicks
	p.kernel.Schedule(connectAt-start, func(k *sim.Kernel) {
		if p.medium != nil && !p.medium.InRange(p.addr, target.Addr) {
			// Walked out of coverage mid-handshake.
			finish(Result{Target: target.Addr, Err: fmt.Errorf("%w: %v", ErrNotReachable, target.Addr)})
			return
		}
		finish(Result{Target: target.Addr, ConnectedAt: k.Now()})
	})
	return nil
}
