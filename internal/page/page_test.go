package page

import (
	"errors"
	"testing"

	"bips/internal/baseband"
	"bips/internal/radio"
	"bips/internal/sim"
)

func connectable(offset sim.Tick) Scanner {
	return Scanner{Addr: 2, ClockOffset: offset, Connectable: true}
}

func TestScannerWindows(t *testing.T) {
	s := connectable(0)
	if !s.scanOpen(0) {
		t.Error("window should be open at phase 0")
	}
	if s.scanOpen(baseband.TwPageScanTicks) {
		t.Error("window should close after Tw")
	}
	if !s.scanOpen(baseband.TPageScanTicks + 1) {
		t.Error("next window should open after one interval")
	}
}

func TestScannerNotConnectable(t *testing.T) {
	s := Scanner{Addr: 2}
	if s.scanOpen(0) {
		t.Error("non-connectable scanner has open window")
	}
	if _, ok := s.NextOpen(0); ok {
		t.Error("non-connectable scanner reports NextOpen")
	}
}

func TestScannerAlternating(t *testing.T) {
	s := Scanner{Addr: 2, Connectable: true, AlternatesWithInquiry: true}
	// Window 0 (even) is inquiry scan: closed for paging.
	if s.scanOpen(0) {
		t.Error("even window open for paging in alternating mode")
	}
	// Window 1 (odd) is page scan.
	if !s.scanOpen(baseband.TPageScanTicks) {
		t.Error("odd window closed for paging in alternating mode")
	}
	open, ok := s.NextOpen(0)
	if !ok || open != baseband.TPageScanTicks {
		t.Errorf("NextOpen = %v,%v, want %v", open, ok, baseband.TPageScanTicks)
	}
}

func TestNextOpenInsideWindow(t *testing.T) {
	s := connectable(0)
	open, ok := s.NextOpen(5)
	if !ok || open != 5 {
		t.Errorf("NextOpen inside window = %v,%v, want 5", open, ok)
	}
	open, ok = s.NextOpen(baseband.TwPageScanTicks)
	if !ok || open != baseband.TPageScanTicks {
		t.Errorf("NextOpen after window = %v,%v, want next interval", open, ok)
	}
}

func TestPageSucceeds(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPager(k, 1, nil)
	var got Result
	called := 0
	err := p.Page(connectable(100), 0, func(r Result) { got = r; called++ })
	if err != nil {
		t.Fatal(err)
	}
	if !p.Busy() {
		t.Error("pager not busy during page")
	}
	k.RunUntil(10 * sim.TicksPerSecond)
	if called != 1 {
		t.Fatalf("done called %d times", called)
	}
	if got.Err != nil {
		t.Fatalf("page failed: %v", got.Err)
	}
	if p.Busy() {
		t.Error("pager busy after completion")
	}
	// Connection happens at the scan window plus handshake cost. With
	// ClockOffset=100 the first window starts when clk%4096==0, i.e.
	// tick 3996.
	wantOpen := sim.Tick(4096 - 100)
	want := wantOpen + HandshakeSlots*baseband.SlotTicks
	if got.ConnectedAt != want {
		t.Errorf("ConnectedAt = %v, want %v", got.ConnectedAt, want)
	}
	if p.Pages() != 1 || p.Failures() != 0 {
		t.Errorf("counters = %d/%d", p.Pages(), p.Failures())
	}
}

func TestPageBusy(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPager(k, 1, nil)
	if err := p.Page(connectable(0), 0, func(Result) {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Page(connectable(0), 0, func(Result) {}); !errors.Is(err, ErrBusy) {
		t.Errorf("second page error = %v, want ErrBusy", err)
	}
}

func TestPageTimeoutNonConnectable(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPager(k, 1, nil)
	var got Result
	if err := p.Page(Scanner{Addr: 2}, 100, func(r Result) { got = r }); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(10 * sim.TicksPerSecond)
	if !errors.Is(got.Err, ErrPageTimeout) {
		t.Errorf("error = %v, want ErrPageTimeout", got.Err)
	}
	if p.Failures() != 1 {
		t.Errorf("failures = %d", p.Failures())
	}
	if k.Now() < 100 {
		t.Error("timeout fired early")
	}
}

func TestPageOutOfRange(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 2, Pos: radio.Point{X: 99, Y: 0}})
	p := NewPager(k, 1, med)
	var got Result
	if err := p.Page(connectable(0), 50, func(r Result) { got = r }); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.TicksPerSecond)
	if !errors.Is(got.Err, ErrNotReachable) {
		t.Errorf("error = %v, want ErrNotReachable", got.Err)
	}
}

func TestPageTargetWalksAwayMidHandshake(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 2, Pos: radio.Point{X: 5, Y: 0}})
	p := NewPager(k, 1, med)
	var got Result
	if err := p.Page(connectable(0), 0, func(r Result) { got = r }); err != nil {
		t.Fatal(err)
	}
	// Move out of range before the handshake completes.
	med.Move(2, radio.Point{X: 99, Y: 0})
	k.RunUntil(10 * sim.TicksPerSecond)
	if !errors.Is(got.Err, ErrNotReachable) {
		t.Errorf("error = %v, want ErrNotReachable", got.Err)
	}
}

func TestPageDefaultTimeoutIs512s(t *testing.T) {
	if DefaultPageTimeout.Seconds() != 5.12 {
		t.Errorf("DefaultPageTimeout = %v, want 5.12s", DefaultPageTimeout.Seconds())
	}
}

func TestPagerSequentialPages(t *testing.T) {
	k := sim.NewKernel(1)
	p := NewPager(k, 1, nil)
	completed := 0
	var pageNext func(n int)
	pageNext = func(n int) {
		if n == 0 {
			return
		}
		err := p.Page(connectable(sim.Tick(n*37)), 0, func(r Result) {
			if r.Err != nil {
				t.Errorf("page %d failed: %v", n, r.Err)
			}
			completed++
			pageNext(n - 1)
		})
		if err != nil {
			t.Errorf("page %d: %v", n, err)
		}
	}
	pageNext(5)
	k.RunUntil(60 * sim.TicksPerSecond)
	if completed != 5 {
		t.Errorf("completed = %d, want 5", completed)
	}
	if p.Pages() != 5 {
		t.Errorf("pages = %d, want 5", p.Pages())
	}
}
