// Package graph implements the weighted undirected graph that models the
// BIPS building topology, Dijkstra's shortest-path algorithm, and the
// off-line all-pairs precomputation the paper performs so that online
// navigation queries are table lookups ("the static nature of BIPS wired
// network allows us to compute off-line all the shortest paths").
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a graph node (a BIPS workstation/room).
type NodeID int

// Weight is an edge weight: a positive distance between two workstations.
type Weight float64

// Errors reported by graph operations.
var (
	// ErrUnknownNode is returned when an operation names a node that
	// was never added.
	ErrUnknownNode = errors.New("graph: unknown node")
	// ErrBadWeight is returned for non-positive or non-finite weights.
	ErrBadWeight = errors.New("graph: edge weight must be positive and finite")
	// ErrSelfLoop is returned when adding an edge from a node to
	// itself.
	ErrSelfLoop = errors.New("graph: self loops are not allowed")
	// ErrNoPath is returned when two nodes are not connected.
	ErrNoPath = errors.New("graph: no path between nodes")
)

type edge struct {
	to NodeID
	w  Weight
}

// Graph is a weighted undirected graph. The zero value is an empty graph
// ready for use.
type Graph struct {
	adj map[NodeID][]edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID][]edge)}
}

// AddNode adds an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id NodeID) {
	if g.adj == nil {
		g.adj = make(map[NodeID][]edge)
	}
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = nil
	}
}

// HasNode reports whether id is in the graph.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.adj[id]
	return ok
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// Nodes returns all node ids in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddEdge adds an undirected edge between a and b with weight w, creating
// the nodes if needed. Re-adding an existing edge updates its weight.
func (g *Graph) AddEdge(a, b NodeID, w Weight) error {
	if a == b {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, a)
	}
	if w <= 0 || math.IsInf(float64(w), 0) || math.IsNaN(float64(w)) {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	g.AddNode(a)
	g.AddNode(b)
	g.setDirected(a, b, w)
	g.setDirected(b, a, w)
	return nil
}

func (g *Graph) setDirected(from, to NodeID, w Weight) {
	for i, e := range g.adj[from] {
		if e.to == to {
			g.adj[from][i].w = w
			return
		}
	}
	g.adj[from] = append(g.adj[from], edge{to: to, w: w})
}

// EdgeWeight returns the weight of the edge between a and b.
func (g *Graph) EdgeWeight(a, b NodeID) (Weight, bool) {
	for _, e := range g.adj[a] {
		if e.to == b {
			return e.w, true
		}
	}
	return 0, false
}

// Neighbors returns the neighbours of id in ascending order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	es := g.adj[id]
	out := make([]NodeID, 0, len(es))
	for _, e := range es {
		out = append(out, e.to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether the graph is connected (the paper requires a
// connected building topology). The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	var start NodeID
	for id := range g.adj {
		start = id
		break
	}
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[n] {
			if !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return len(seen) == len(g.adj)
}

// Path is a shortest path: the node sequence and its total weight.
type Path struct {
	Nodes []NodeID
	Total Weight
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node  NodeID
	dist  Weight
	index int
}

type pq []*pqItem

func (q pq) Len() int { return len(q) }

func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}

func (q pq) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *pq) Push(x any) {
	it, ok := x.(*pqItem)
	if !ok {
		return
	}
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Dijkstra computes shortest distances and predecessor pointers from src to
// every reachable node.
func (g *Graph) Dijkstra(src NodeID) (dist map[NodeID]Weight, prev map[NodeID]NodeID, err error) {
	if !g.HasNode(src) {
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	dist = map[NodeID]Weight{src: 0}
	prev = make(map[NodeID]NodeID)
	done := make(map[NodeID]bool)
	q := &pq{}
	heap.Push(q, &pqItem{node: src, dist: 0})
	for q.Len() > 0 {
		it, ok := heap.Pop(q).(*pqItem)
		if !ok {
			break
		}
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.w
			if d, seen := dist[e.to]; !seen || nd < d {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(q, &pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, prev, nil
}

// ShortestPath returns the shortest path from src to dst.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, error) {
	if !g.HasNode(dst) {
		return Path{}, fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}
	dist, prev, err := g.Dijkstra(src)
	if err != nil {
		return Path{}, err
	}
	d, ok := dist[dst]
	if !ok {
		return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
	}
	return Path{Nodes: reconstruct(prev, src, dst), Total: d}, nil
}

func reconstruct(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for n := dst; ; {
		rev = append(rev, n)
		if n == src {
			break
		}
		n = prev[n]
	}
	nodes := make([]NodeID, len(rev))
	for i, n := range rev {
		nodes[len(rev)-1-i] = n
	}
	return nodes
}

// AllPairs holds precomputed shortest paths between every pair of nodes.
// BIPS computes this off-line at startup so that online path queries never
// run Dijkstra.
type AllPairs struct {
	dist map[NodeID]map[NodeID]Weight
	prev map[NodeID]map[NodeID]NodeID
}

// ComputeAllPairs runs Dijkstra from every node. It returns an error if the
// graph is not connected, because the paper's navigation service requires a
// connected building.
func (g *Graph) ComputeAllPairs() (*AllPairs, error) {
	if !g.Connected() {
		return nil, errors.New("graph: building topology must be connected")
	}
	ap := &AllPairs{
		dist: make(map[NodeID]map[NodeID]Weight, len(g.adj)),
		prev: make(map[NodeID]map[NodeID]NodeID, len(g.adj)),
	}
	for _, src := range g.Nodes() {
		dist, prev, err := g.Dijkstra(src)
		if err != nil {
			return nil, err
		}
		ap.dist[src] = dist
		ap.prev[src] = prev
	}
	return ap, nil
}

// Distance returns the precomputed shortest distance from src to dst.
func (ap *AllPairs) Distance(src, dst NodeID) (Weight, error) {
	row, ok := ap.dist[src]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	d, ok := row[dst]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}
	return d, nil
}

// Path returns the precomputed shortest path from src to dst as a node
// sequence.
func (ap *AllPairs) Path(src, dst NodeID) (Path, error) {
	d, err := ap.Distance(src, dst)
	if err != nil {
		return Path{}, err
	}
	return Path{Nodes: reconstruct(ap.prev[src], src, dst), Total: d}, nil
}
