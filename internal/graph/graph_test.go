package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds a path graph 0-1-2-...-n with unit weights.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	tests := []struct {
		name    string
		a, b    NodeID
		w       Weight
		wantErr error
	}{
		{name: "valid", a: 1, b: 2, w: 3},
		{name: "self loop", a: 1, b: 1, w: 1, wantErr: ErrSelfLoop},
		{name: "zero weight", a: 1, b: 2, w: 0, wantErr: ErrBadWeight},
		{name: "negative weight", a: 1, b: 2, w: -1, wantErr: ErrBadWeight},
		{name: "inf weight", a: 1, b: 2, w: Weight(math.Inf(1)), wantErr: ErrBadWeight},
		{name: "nan weight", a: 1, b: 2, w: Weight(math.NaN()), wantErr: ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.a, tt.b, tt.w)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("AddEdge error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestEdgeIsUndirected(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	w12, ok12 := g.EdgeWeight(1, 2)
	w21, ok21 := g.EdgeWeight(2, 1)
	if !ok12 || !ok21 || w12 != 5 || w21 != 5 {
		t.Errorf("edge weights = %v/%v (%v/%v), want 5/5", w12, w21, ok12, ok21)
	}
}

func TestAddEdgeUpdatesWeight(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(2, 1); w != 7 {
		t.Errorf("updated weight = %v, want 7", w)
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	g.AddNode(5)
	g.AddNode(1)
	g.AddNode(3)
	got := g.Nodes()
	want := []NodeID{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
	if !g.HasNode(3) || g.HasNode(2) {
		t.Error("HasNode misreports")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	for _, b := range []NodeID{9, 2, 7} {
		if err := g.AddEdge(1, b, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Neighbors(1)
	want := []NodeID{2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
}

func TestConnected(t *testing.T) {
	g := New()
	if !g.Connected() {
		t.Error("empty graph should be connected")
	}
	g.AddNode(1)
	if !g.Connected() {
		t.Error("single node should be connected")
	}
	g.AddNode(2)
	if g.Connected() {
		t.Error("two isolated nodes reported connected")
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("connected pair reported disconnected")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := line(t, 5)
	p, err := g.ShortestPath(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 5 {
		t.Errorf("Total = %v, want 5", p.Total)
	}
	if len(p.Nodes) != 6 || p.Nodes[0] != 0 || p.Nodes[5] != 5 {
		t.Errorf("Nodes = %v", p.Nodes)
	}
}

func TestShortestPathPrefersLightRoute(t *testing.T) {
	// Triangle: direct edge 1-3 weight 10, detour via 2 weight 2+3=5.
	g := New()
	for _, e := range []struct {
		a, b NodeID
		w    Weight
	}{{1, 3, 10}, {1, 2, 2}, {2, 3, 3}} {
		if err := g.AddEdge(e.a, e.b, e.w); err != nil {
			t.Fatal(err)
		}
	}
	p, err := g.ShortestPath(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 5 {
		t.Errorf("Total = %v, want 5 (detour)", p.Total)
	}
	want := []NodeID{1, 2, 3}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", p.Nodes, want)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := line(t, 3)
	p, err := g.ShortestPath(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 0 || len(p.Nodes) != 1 || p.Nodes[0] != 1 {
		t.Errorf("self path = %+v", p)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := line(t, 3)
	g.AddNode(99) // isolated
	if _, err := g.ShortestPath(0, 42); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dst error = %v", err)
	}
	if _, err := g.ShortestPath(42, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown src error = %v", err)
	}
	if _, err := g.ShortestPath(0, 99); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable error = %v", err)
	}
}

func TestAllPairsMatchesDijkstra(t *testing.T) {
	// Random connected graph; the precomputed table must agree with
	// per-query Dijkstra for every pair.
	rng := rand.New(rand.NewSource(11))
	g := New()
	const n = 20
	for i := 1; i < n; i++ {
		// Spanning tree plus extra edges.
		if err := g.AddEdge(NodeID(rng.Intn(i)), NodeID(i), Weight(1+rng.Float64()*9)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			if err := g.AddEdge(a, b, Weight(1+rng.Float64()*9)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ap, err := g.ComputeAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range g.Nodes() {
		for _, dst := range g.Nodes() {
			want, err := g.ShortestPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := ap.Distance(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(float64(gotD-want.Total)) > 1e-9 {
				t.Errorf("Distance(%d,%d) = %v, want %v", src, dst, gotD, want.Total)
			}
			gotP, err := ap.Path(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(float64(gotP.Total-want.Total)) > 1e-9 {
				t.Errorf("Path(%d,%d).Total = %v, want %v", src, dst, gotP.Total, want.Total)
			}
			if gotP.Nodes[0] != src || gotP.Nodes[len(gotP.Nodes)-1] != dst {
				t.Errorf("Path(%d,%d) endpoints wrong: %v", src, dst, gotP.Nodes)
			}
		}
	}
}

func TestComputeAllPairsRequiresConnected(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(2)
	if _, err := g.ComputeAllPairs(); err == nil {
		t.Error("ComputeAllPairs on disconnected graph should fail")
	}
}

func TestAllPairsUnknownNodes(t *testing.T) {
	g := line(t, 2)
	ap, err := g.ComputeAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Distance(0, 42); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Distance(0,42) error = %v", err)
	}
	if _, err := ap.Distance(42, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Distance(42,0) error = %v", err)
	}
	if _, err := ap.Path(42, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Path(42,0) error = %v", err)
	}
}

// Property: a shortest path's nodes are adjacent in the graph and its edge
// weights sum to Total; triangle inequality holds via intermediate nodes.
func TestShortestPathProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 5 + rng.Intn(15)
		for i := 1; i < n; i++ {
			if err := g.AddEdge(NodeID(rng.Intn(i)), NodeID(i), Weight(1+rng.Float64()*4)); err != nil {
				return false
			}
		}
		for i := 0; i < n/2; i++ {
			a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if a != b {
				if err := g.AddEdge(a, b, Weight(1+rng.Float64()*4)); err != nil {
					return false
				}
			}
		}
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		p, err := g.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		var sum Weight
		for i := 1; i < len(p.Nodes); i++ {
			w, ok := g.EdgeWeight(p.Nodes[i-1], p.Nodes[i])
			if !ok {
				return false
			}
			sum += w
		}
		if math.Abs(float64(sum-p.Total)) > 1e-9 {
			return false
		}
		// Triangle inequality: d(src,dst) <= d(src,m) + d(m,dst).
		m := NodeID(rng.Intn(n))
		pm1, err1 := g.ShortestPath(src, m)
		pm2, err2 := g.ShortestPath(m, dst)
		if err1 != nil || err2 != nil {
			return false
		}
		return p.Total <= pm1.Total+pm2.Total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestZeroValueGraphUsable(t *testing.T) {
	var g Graph
	g.AddNode(1)
	if !g.HasNode(1) {
		t.Error("zero-value graph did not accept node")
	}
}
