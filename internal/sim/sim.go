// Package sim provides a deterministic discrete-event simulation kernel.
//
// All Bluetooth baseband activity in this repository is scheduled on a
// virtual clock whose unit is the Bluetooth half slot (312.5 microseconds,
// the native clock period of a Bluetooth 1.1 radio). The kernel is a plain
// binary-heap event queue: events are (tick, sequence, callback) triples and
// run strictly in (tick, sequence) order, so two simulations constructed
// with the same seed replay identically.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Tick is a point in virtual time measured in Bluetooth half slots
// (312.5 microseconds each) since the start of the simulation.
type Tick int64

// TickDuration is the real-time length of one simulation tick: one
// Bluetooth native clock period.
const TickDuration = 312500 * time.Nanosecond

// Common Bluetooth timing quantities expressed in ticks.
const (
	// TicksPerSlot is the number of ticks in one 625 microsecond slot.
	TicksPerSlot Tick = 2
	// TicksPerSecond is the number of ticks in one second (3.2 kHz clock).
	TicksPerSecond Tick = 3200
)

// Duration converts a tick count to a time.Duration.
func (t Tick) Duration() time.Duration {
	return time.Duration(int64(t)) * TickDuration
}

// Seconds returns the tick count as floating-point seconds.
func (t Tick) Seconds() float64 {
	return float64(t) / float64(TicksPerSecond)
}

// String formats the tick as seconds with millisecond precision.
func (t Tick) String() string {
	return fmt.Sprintf("%.4fs", t.Seconds())
}

// FromDuration converts a real duration to the nearest tick count.
func FromDuration(d time.Duration) Tick {
	return Tick((d + TickDuration/2) / TickDuration)
}

// FromSeconds converts seconds to ticks, rounding to nearest.
func FromSeconds(s float64) Tick {
	return Tick(s*float64(TicksPerSecond) + 0.5)
}

// Event is a scheduled callback. The callback receives the kernel so it can
// schedule follow-up events.
type Event func(k *Kernel)

type scheduled struct {
	at    Tick
	seq   uint64
	fn    Event
	index int
	dead  bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ s *scheduled }

// Cancel prevents the event from running. Cancelling an already-run or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.s != nil {
		h.s.dead = true
	}
}

// Cancelled reports whether the event was cancelled or has already run.
func (h Handle) Cancelled() bool {
	return h.s == nil || h.s.dead
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	s, ok := x.(*scheduled)
	if !ok {
		return
	}
	s.index = len(*h)
	*h = append(*h, s)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// ErrPastEvent is returned by ScheduleAt when the requested tick is in the
// simulated past.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Tick
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Identical seeds and identical schedules replay identically.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Tick { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (k *Kernel) Pending() int { return len(k.queue) }

// ScheduleAt schedules fn to run at the absolute tick at.
func (k *Kernel) ScheduleAt(at Tick, fn Event) (Handle, error) {
	if at < k.now {
		return Handle{}, fmt.Errorf("%w: now=%d at=%d", ErrPastEvent, k.now, at)
	}
	s := &scheduled{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, s)
	return Handle{s: s}, nil
}

// Schedule schedules fn to run delay ticks from now. A non-positive delay
// runs fn after all events already scheduled for the current tick.
func (k *Kernel) Schedule(delay Tick, fn Event) Handle {
	if delay < 0 {
		delay = 0
	}
	h, err := k.ScheduleAt(k.now+delay, fn)
	if err != nil {
		// Unreachable: now+delay >= now by construction.
		return Handle{}
	}
	return h
}

// Stop makes the current Run call return after the in-flight event
// completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step runs the single earliest pending event. It reports whether an event
// ran (false when the queue is empty).
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		next, ok := heap.Pop(&k.queue).(*scheduled)
		if !ok {
			return false
		}
		if next.dead {
			continue
		}
		k.now = next.at
		next.dead = true
		next.fn(k)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event lies strictly after limit. The clock is left at
// the tick of the last executed event (or at limit if the queue emptied
// earlier than limit with time still to cover).
func (k *Kernel) RunUntil(limit Tick) {
	k.stopped = false
	for !k.stopped {
		// Discard cancelled events at the head.
		for len(k.queue) > 0 && k.queue[0].dead {
			heap.Pop(&k.queue)
		}
		if len(k.queue) == 0 || k.queue[0].at > limit {
			break
		}
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// Ticker invokes fn every period ticks starting at the next multiple of
// period, until the returned stop function is called. It is a convenience
// used by pollers and schedulers.
func (k *Kernel) Ticker(period Tick, fn Event) (stop func()) {
	if period <= 0 {
		period = 1
	}
	var h Handle
	stopped := false
	var tick Event
	tick = func(kk *Kernel) {
		if stopped {
			return
		}
		fn(kk)
		if !stopped {
			h = kk.Schedule(period, tick)
		}
	}
	h = k.Schedule(period, tick)
	return func() {
		stopped = true
		h.Cancel()
	}
}
