package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestTickConversions(t *testing.T) {
	tests := []struct {
		name string
		tick Tick
		want time.Duration
	}{
		{name: "zero", tick: 0, want: 0},
		{name: "one half slot", tick: 1, want: 312500 * time.Nanosecond},
		{name: "one slot", tick: TicksPerSlot, want: 625 * time.Microsecond},
		{name: "one second", tick: TicksPerSecond, want: time.Second},
		{name: "inquiry train", tick: 32, want: 10 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tick.Duration(); got != tt.want {
				t.Errorf("Duration() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFromDurationRoundTrip(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want Tick
	}{
		{d: 0, want: 0},
		{d: 312500 * time.Nanosecond, want: 1},
		{d: 625 * time.Microsecond, want: 2},
		{d: 1280 * time.Millisecond, want: 4096},
		{d: 11250 * time.Microsecond, want: 36},
		{d: 10240 * time.Millisecond, want: 32768},
	}
	for _, tt := range tests {
		if got := FromDuration(tt.d); got != tt.want {
			t.Errorf("FromDuration(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.28); got != 4096 {
		t.Errorf("FromSeconds(1.28) = %d, want 4096", got)
	}
	if got := FromSeconds(2.56); got != 8192 {
		t.Errorf("FromSeconds(2.56) = %d, want 8192", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %d, want 0", got)
	}
}

func TestSecondsInverse(t *testing.T) {
	f := func(n uint32) bool {
		tick := Tick(n % 10_000_000)
		return FromSeconds(tick.Seconds()) == tick
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelRunsEventsInOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30, func(*Kernel) { order = append(order, 3) })
	k.Schedule(10, func(*Kernel) { order = append(order, 1) })
	k.Schedule(20, func(*Kernel) { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestKernelSameTickFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func(*Kernel) { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-tick events ran out of order: %v", order)
		}
	}
}

func TestKernelClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var at Tick
	k.Schedule(100, func(kk *Kernel) { at = kk.Now() })
	k.Run()
	if at != 100 {
		t.Errorf("event saw Now() = %d, want 100", at)
	}
	if k.Now() != 100 {
		t.Errorf("final Now() = %d, want 100", k.Now())
	}
}

func TestScheduleAtPastFails(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(50, func(*Kernel) {})
	k.Run()
	if _, err := k.ScheduleAt(10, func(*Kernel) {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("ScheduleAt(past) error = %v, want ErrPastEvent", err)
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	h := k.Schedule(10, func(*Kernel) { ran = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Error("handle not reported cancelled")
	}
	k.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestCancelIdempotent(t *testing.T) {
	k := NewKernel(1)
	h := k.Schedule(10, func(*Kernel) {})
	h.Cancel()
	h.Cancel() // must not panic
	var zero Handle
	zero.Cancel() // zero handle must not panic
	if !zero.Cancelled() {
		t.Error("zero handle should report cancelled")
	}
	k.Run()
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := NewKernel(1)
	var ran []Tick
	for _, at := range []Tick{10, 20, 30, 40} {
		at := at
		k.Schedule(at, func(kk *Kernel) { ran = append(ran, kk.Now()) })
	}
	k.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2 (only those <= 25)", len(ran))
	}
	if k.Now() != 25 {
		t.Errorf("Now() = %d after RunUntil(25), want 25", k.Now())
	}
	k.RunUntil(100)
	if len(ran) != 4 {
		t.Errorf("ran %d events after second RunUntil, want 4", len(ran))
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(500)
	if k.Now() != 500 {
		t.Errorf("Now() = %d, want 500", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Schedule(10, func(kk *Kernel) {
		count++
		kk.Stop()
	})
	k.Schedule(20, func(*Kernel) { count++ })
	k.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (Stop should halt the run)", count)
	}
	// A later Run resumes from where the previous left off.
	k.Run()
	if count != 2 {
		t.Errorf("count = %d after resume, want 2", count)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel(1)
	depth := 0
	var recur Event
	recur = func(kk *Kernel) {
		depth++
		if depth < 5 {
			kk.Schedule(10, recur)
		}
	}
	k.Schedule(10, recur)
	k.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if k.Now() != 50 {
		t.Errorf("Now() = %d, want 50", k.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Schedule(10, func(kk *Kernel) {
		kk.Schedule(-5, func(*Kernel) { ran = true })
	})
	k.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	var fires []Tick
	var stop func()
	stop = k.Ticker(100, func(kk *Kernel) {
		fires = append(fires, kk.Now())
		if len(fires) == 3 {
			stop()
		}
	})
	k.RunUntil(10_000)
	if len(fires) != 3 {
		t.Fatalf("ticker fired %d times, want 3", len(fires))
	}
	for i, at := range fires {
		want := Tick(100 * (i + 1))
		if at != want {
			t.Errorf("fire %d at %d, want %d", i, at, want)
		}
	}
}

func TestTickerStopBeforeFirstFire(t *testing.T) {
	k := NewKernel(1)
	fired := false
	stop := k.Ticker(100, func(*Kernel) { fired = true })
	stop()
	k.RunUntil(1000)
	if fired {
		t.Error("ticker fired after immediate stop")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(seed)
		var draws []int64
		k.Ticker(7, func(kk *Kernel) {
			draws = append(draws, kk.Rand().Int63n(1000))
		})
		k.RunUntil(700)
		return draws
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws (suspicious)")
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel(1)
	if k.Pending() != 0 {
		t.Errorf("Pending() = %d on fresh kernel, want 0", k.Pending())
	}
	k.Schedule(10, func(*Kernel) {})
	k.Schedule(20, func(*Kernel) {})
	if k.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", k.Pending())
	}
}

// Property: RunUntil never leaves the clock beyond the limit and never runs
// an event scheduled after the limit.
func TestRunUntilProperty(t *testing.T) {
	f := func(seed int64, rawDelays []uint16, rawLimit uint16) bool {
		k := NewKernel(seed)
		limit := Tick(rawLimit)
		violation := false
		for _, d := range rawDelays {
			k.Schedule(Tick(d), func(kk *Kernel) {
				if kk.Now() > limit {
					violation = true
				}
			})
		}
		k.RunUntil(limit)
		return !violation && k.Now() == limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
