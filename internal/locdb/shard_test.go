package locdb

import (
	"fmt"
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// TestShardIndexStable: a device must always map to the same shard for a
// fixed shard count — the whole design rests on it.
func TestShardIndexStable(t *testing.T) {
	for n := 1; n <= 64; n *= 2 {
		for v := uint64(0); v < 1000; v += 37 {
			a, b := shardIndex(v, n), shardIndex(v, n)
			if a != b {
				t.Fatalf("shardIndex(%d, %d) unstable: %d vs %d", v, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("shardIndex(%d, %d) = %d out of range", v, n, a)
			}
		}
	}
}

// TestShardDistribution: sequentially allocated device addresses (the
// simulator's allocation pattern) must spread over all shards, not cluster
// on a few.
func TestShardDistribution(t *testing.T) {
	const n = 16
	const devices = 16 * 200
	counts := make([]int, n)
	base := uint64(0xB000_0000_0001)
	for i := 0; i < devices; i++ {
		counts[shardIndex(base+uint64(i), n)]++
	}
	mean := devices / n
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d holds %d devices, want within [%d, %d] of mean %d",
				i, c, mean/2, mean*2, mean)
		}
	}
}

// TestShardedEquivalence: a sharded database and a single-shard database
// fed the same operation sequence must answer every query identically.
func TestShardedEquivalence(t *testing.T) {
	single, err := NewSharded(1, DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(8, DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	dbs := []*DB{single, sharded}

	const devices = 100
	const rooms = 7
	for step := 0; step < 1000; step++ {
		dev := baseband.BDAddr(0xB000_0000_0001 + uint64(step*31%devices))
		room := graph.NodeID(step * 17 % rooms)
		at := sim.Tick(step)
		switch step % 5 {
		case 0, 1, 2:
			for _, db := range dbs {
				db.SetPresence(dev, room, at)
			}
		case 3:
			for _, db := range dbs {
				db.SetAbsence(dev, room, at)
			}
		case 4:
			if step%20 == 4 {
				for _, db := range dbs {
					db.Drop(dev)
				}
			}
		}
	}

	if g, w := sharded.Present(), single.Present(); g != w {
		t.Fatalf("Present: sharded %d, single %d", g, w)
	}
	for i := 0; i < devices; i++ {
		dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i))
		f1, err1 := single.Locate(dev)
		f2, err2 := sharded.Locate(dev)
		if (err1 == nil) != (err2 == nil) || f1 != f2 {
			t.Fatalf("Locate(%v): single (%v, %v) vs sharded (%v, %v)", dev, f1, err1, f2, err2)
		}
		h1, h2 := single.History(dev), sharded.History(dev)
		if len(h1) != len(h2) {
			t.Fatalf("History(%v): single %d entries, sharded %d", dev, len(h1), len(h2))
		}
		for j := range h1 {
			if h1[j] != h2[j] {
				t.Fatalf("History(%v)[%d]: %v vs %v", dev, j, h1[j], h2[j])
			}
		}
	}
	for r := graph.NodeID(0); r < rooms; r++ {
		o1, o2 := single.Occupants(r), sharded.Occupants(r)
		if len(o1) != len(o2) {
			t.Fatalf("Occupants(%d): single %v, sharded %v", r, o1, o2)
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("Occupants(%d)[%d]: %v vs %v", r, j, o1[j], o2[j])
			}
		}
	}
	a1, a2 := single.All(), sharded.All()
	if len(a1) != len(a2) {
		t.Fatalf("All: single %d fixes, sharded %d", len(a1), len(a2))
	}
	for j := range a1 {
		if a1[j] != a2[j] {
			t.Fatalf("All[%d]: %v vs %v", j, a1[j], a2[j])
		}
	}
}

// TestAllSnapshotPath: All must reflect mutations immediately (the cached
// snapshot is invalidated by the version counter) and must return sorted,
// immutable results.
func TestAllSnapshotPath(t *testing.T) {
	db := New()
	if got := db.All(); len(got) != 0 {
		t.Fatalf("All on empty db = %v", got)
	}
	for i := 0; i < 50; i++ {
		db.SetPresence(baseband.BDAddr(1000+i), graph.NodeID(i%5), sim.Tick(i))
		all := db.All()
		if len(all) != i+1 {
			t.Fatalf("after %d inserts All has %d fixes", i+1, len(all))
		}
		for j := 1; j < len(all); j++ {
			if all[j-1].Device >= all[j].Device {
				t.Fatalf("All not sorted at %d: %v >= %v", j, all[j-1].Device, all[j].Device)
			}
		}
	}
	// Two consecutive calls on a quiescent shard must agree (and the
	// second exercises the lock-free cached path).
	a, b := db.All(), db.All()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("quiescent All disagreed at %d: %v vs %v", j, a[j], b[j])
		}
	}
	db.SetAbsence(baseband.BDAddr(1000), graph.NodeID(0), 100)
	if got := len(db.All()); got != 49 {
		t.Fatalf("after absence All has %d fixes, want 49", got)
	}
}

// TestNewShardedValidation rejects out-of-range shard counts.
func TestNewShardedValidation(t *testing.T) {
	for _, n := range []int{0, -1, MaxShards + 1} {
		if _, err := NewSharded(n, 10); err == nil {
			t.Errorf("NewSharded(%d) accepted", n)
		}
	}
	db, err := NewSharded(3, 10)
	if err != nil || db.NumShards() != 3 {
		t.Fatalf("NewSharded(3) = %v, %v", db, err)
	}
}

// TestShardedConcurrentHammer drives writers and readers across shards
// under the race detector and checks final-state invariants.
func TestShardedConcurrentHammer(t *testing.T) {
	db, err := NewSharded(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				dev := baseband.BDAddr(0xC000_0000_0000 + uint64(w)<<16 + uint64(i%50))
				room := graph.NodeID(i % 9)
				db.SetPresence(dev, room, sim.Tick(i))
				if i%3 == 0 {
					db.Locate(dev)
				}
				if i%7 == 0 {
					db.All()
				}
				if i%11 == 0 {
					db.Occupants(room)
				}
			}
		}()
	}
	wg.Wait()
	// Every worker's 50 distinct devices must have exactly one fix.
	if got, want := db.Present(), workers*50; got != want {
		t.Fatalf("Present = %d, want %d", got, want)
	}
	if got, want := len(db.All()), workers*50; got != want {
		t.Fatalf("len(All) = %d, want %d", got, want)
	}
	st := db.Stats()
	if st.Updates == 0 || st.Queries == 0 {
		t.Fatalf("stats counters not advancing: %+v", st)
	}
	if st.Shards != 8 || st.Present != workers*50 {
		t.Fatalf("stats snapshot wrong: %+v", st)
	}
}

// TestOccupantsAcrossShards: one room's devices hash to many shards; the
// merged view must contain all of them exactly once.
func TestOccupantsAcrossShards(t *testing.T) {
	db, err := NewSharded(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	const room = graph.NodeID(3)
	want := map[baseband.BDAddr]bool{}
	for i := 0; i < 200; i++ {
		dev := baseband.BDAddr(0xD000_0000_0000 + uint64(i))
		db.SetPresence(dev, room, sim.Tick(i))
		want[dev] = true
	}
	got := db.Occupants(room)
	if len(got) != len(want) {
		t.Fatalf("Occupants returned %d devices, want %d", len(got), len(want))
	}
	seen := map[baseband.BDAddr]bool{}
	for _, dev := range got {
		if seen[dev] {
			t.Fatalf("duplicate occupant %v", dev)
		}
		seen[dev] = true
		if !want[dev] {
			t.Fatalf("unexpected occupant %v", dev)
		}
	}
}

func ExampleNewSharded() {
	db, _ := NewSharded(4, DefaultHistoryLimit)
	db.SetPresence(0xB00000000001, 7, 100)
	fix, _ := db.Locate(0xB00000000001)
	fmt.Printf("shards=%d room=%d\n", db.NumShards(), fix.Piconet)
	// Output: shards=4 room=7
}
