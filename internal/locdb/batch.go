package locdb

import (
	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// MutOp tags one batched mutation.
type MutOp uint8

// Batchable mutations. Drop (logout) is deliberately absent: it is a
// control-plane operation, not part of the workstation delta stream.
const (
	MutPresence MutOp = iota + 1
	MutAbsence
)

// Mutation is one presence/absence delta of a batch, the storage-layer
// form of a wire.Presence that has already passed business validation.
type Mutation struct {
	Op      MutOp
	Dev     baseband.BDAddr
	Piconet graph.NodeID
	At      sim.Tick
}

// shardBatch groups a batch's mutations by destination shard, in first-
// touch order, preserving the batch's relative order within each shard
// (which is all that matters: every stored fact is per-device, and a
// device always maps to one shard).
type shardBatch struct {
	idx  int
	muts []Mutation
}

// ApplyBatch applies a batch of mutations, acquiring each destination
// shard's lock exactly once — the write-path analogue of the read path's
// batch snapshot. For a frame of B deltas spread over S shards it costs
// S lock acquisitions instead of B, and a journaling backend sees the
// whole batch appended inside those S critical sections, so the WAL
// group-commits it as one coalesced write.
//
// Per-device ordering follows the batch order; the delta semantics of
// SetPresence/SetAbsence apply per mutation (no-ops and stale absences
// are skipped). Subscribers are notified after all shard locks are
// released, in per-shard application order — with concurrent writers on
// other shards this interleaving is no weaker than the one they already
// observe. It returns the number of mutations that changed state.
func (db *DB) ApplyBatch(muts []Mutation) int {
	if len(muts) == 0 {
		return 0
	}
	// Group by shard. The number of distinct shards touched is small
	// (bounded by both the batch and the shard count), so a linear scan
	// over the group list beats allocating a per-shard table.
	groups := make([]shardBatch, 0, 8)
	for _, m := range muts {
		idx := db.shardIdxOf(m.Dev)
		found := false
		for gi := range groups {
			if groups[gi].idx == idx {
				groups[gi].muts = append(groups[gi].muts, m)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, shardBatch{idx: idx, muts: []Mutation{m}})
		}
	}

	applied := 0
	events := make([]Event, 0, len(muts))
	for _, g := range groups {
		sh := db.shards[g.idx]
		sh.mu.Lock()
		for _, m := range g.muts {
			var (
				ev      Event
				changed bool
			)
			switch m.Op {
			case MutPresence:
				ev, changed = db.setPresenceLocked(sh, g.idx, m.Dev, m.Piconet, m.At)
			case MutAbsence:
				ev, changed = db.setAbsenceLocked(sh, g.idx, m.Dev, m.Piconet, m.At)
			}
			if changed {
				applied++
				events = append(events, ev)
			}
		}
		sh.mu.Unlock()
	}
	for _, ev := range events {
		db.notify(ev)
	}
	return applied
}
