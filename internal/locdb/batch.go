package locdb

import (
	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// MutOp tags one batched mutation.
type MutOp uint8

// Batchable mutations. Drop (logout) is deliberately absent: it is a
// control-plane operation, not part of the workstation delta stream.
const (
	MutPresence MutOp = iota + 1
	MutAbsence
)

// Mutation is one presence/absence delta of a batch, the storage-layer
// form of a wire.Presence that has already passed business validation.
type Mutation struct {
	Op      MutOp
	Dev     baseband.BDAddr
	Piconet graph.NodeID
	At      sim.Tick
}

// batchScratch is ApplyBatch's reusable grouping storage, pooled on the
// DB so a steady stream of ingest frames does not allocate a fresh set
// of group slices per frame. Everything in it is value-typed, so
// returning it to the pool retains no references.
type batchScratch struct {
	idx    []int32    // per-mutation destination shard
	counts []int32    // per-shard offsets during the counting sort
	order  []Mutation // mutations regrouped by shard, batch order within
	events []Event
}

// ApplyBatch applies a batch of mutations, acquiring each destination
// shard's lock exactly once — the write-path analogue of the read path's
// batch snapshot. For a frame of B deltas spread over S shards it costs
// S lock acquisitions instead of B, and a journaling backend sees the
// whole batch appended inside those S critical sections, so the WAL
// group-commits it as one coalesced write.
//
// Per-device ordering follows the batch order; the delta semantics of
// SetPresence/SetAbsence apply per mutation (no-ops and stale absences
// are skipped). Subscribers are notified after all shard locks are
// released, in per-shard application order — with concurrent writers on
// other shards this interleaving is no weaker than the one they already
// observe. It returns the number of mutations that changed state.
func (db *DB) ApplyBatch(muts []Mutation) int {
	if len(muts) == 0 {
		return 0
	}
	sc, _ := db.batchPool.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	// Group by shard with a stable counting sort into pooled scratch:
	// one pass to bucket-count, one to scatter. Stability preserves the
	// batch's relative order within each shard, which is all that
	// matters — every stored fact is per-device, and a device always
	// maps to one shard.
	n := len(db.shards)
	if cap(sc.counts) < n {
		sc.counts = make([]int32, n)
	}
	counts := sc.counts[:n]
	for i := range counts {
		counts[i] = 0
	}
	if cap(sc.idx) < len(muts) {
		sc.idx = make([]int32, len(muts))
	}
	idx := sc.idx[:len(muts)]
	for i := range muts {
		j := int32(db.shardIdxOf(muts[i].Dev))
		idx[i] = j
		counts[j]++
	}
	if cap(sc.order) < len(muts) {
		sc.order = make([]Mutation, len(muts))
	}
	order := sc.order[:len(muts)]
	sum := int32(0)
	for j := range counts {
		c := counts[j]
		counts[j] = sum
		sum += c
	}
	for i := range muts {
		j := idx[i]
		order[counts[j]] = muts[i]
		counts[j]++
	}
	// counts[j] is now the end offset of shard j's run in order.

	applied := 0
	events := sc.events[:0]
	start := int32(0)
	for j := 0; j < n; j++ {
		end := counts[j]
		if end == start {
			continue
		}
		sh := db.shards[j]
		sh.mu.Lock()
		for _, m := range order[start:end] {
			var (
				ev      Event
				changed bool
			)
			switch m.Op {
			case MutPresence:
				ev, changed = db.setPresenceLocked(sh, j, m.Dev, m.Piconet, m.At)
			case MutAbsence:
				ev, changed = db.setAbsenceLocked(sh, j, m.Dev, m.Piconet, m.At)
			}
			if changed {
				applied++
				events = append(events, ev)
			}
		}
		sh.mu.Unlock()
		start = end
	}
	// The whole frame reaches every subscriber as one OnEvents call:
	// batch-aware sinks (fan-out tree, analytics hot tier) amortize
	// their own locking and state sweeps over the frame, mirroring how
	// the journal above group-commits it as one WAL write.
	db.notifyBatch(events)
	sc.events = events[:0]
	db.batchPool.Put(sc)
	return applied
}
