package locdb

import (
	"errors"
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

const (
	dev1 = baseband.BDAddr(0xB1)
	dev2 = baseband.BDAddr(0xB2)
)

func TestLocateUnknown(t *testing.T) {
	db := New()
	if _, err := db.Locate(dev1); !errors.Is(err, ErrNotPresent) {
		t.Errorf("Locate(unknown) error = %v, want ErrNotPresent", err)
	}
}

func TestPresenceLifecycle(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 3, 100)
	fix, err := db.Locate(dev1)
	if err != nil {
		t.Fatal(err)
	}
	if fix.Piconet != 3 || fix.At != 100 || fix.Device != dev1 {
		t.Errorf("fix = %+v", fix)
	}
	// Handover to another piconet.
	db.SetPresence(dev1, 5, 200)
	fix, err = db.Locate(dev1)
	if err != nil {
		t.Fatal(err)
	}
	if fix.Piconet != 5 {
		t.Errorf("piconet after handover = %d, want 5", fix.Piconet)
	}
	if occ := db.Occupants(3); len(occ) != 0 {
		t.Errorf("old piconet still occupied: %v", occ)
	}
	// Absence.
	db.SetAbsence(dev1, 5, 300)
	if _, err := db.Locate(dev1); !errors.Is(err, ErrNotPresent) {
		t.Errorf("Locate after absence error = %v", err)
	}
}

func TestDeltaSemantics(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 3, 100)
	db.SetPresence(dev1, 3, 200) // unchanged: must not count as update
	db.SetPresence(dev1, 3, 300)
	if got := db.Stats().Updates; got != 1 {
		t.Errorf("Updates = %d, want 1 (delta semantics)", got)
	}
	if h := db.History(dev1); len(h) != 1 {
		t.Errorf("history length = %d, want 1", len(h))
	}
	// The stored fix keeps the original timestamp.
	fix, err := db.Locate(dev1)
	if err != nil {
		t.Fatal(err)
	}
	if fix.At != 100 {
		t.Errorf("fix.At = %v, want 100", fix.At)
	}
}

func TestStaleAbsenceIgnored(t *testing.T) {
	// Device moved 3 -> 5; a late absence report from piconet 3 must
	// not erase the newer presence in 5.
	db := New()
	db.SetPresence(dev1, 3, 100)
	db.SetPresence(dev1, 5, 200)
	db.SetAbsence(dev1, 3, 250)
	fix, err := db.Locate(dev1)
	if err != nil {
		t.Fatalf("stale absence erased presence: %v", err)
	}
	if fix.Piconet != 5 {
		t.Errorf("piconet = %d, want 5", fix.Piconet)
	}
	// Absence for a device never present is a no-op.
	db.SetAbsence(dev2, 3, 100)
}

func TestOccupants(t *testing.T) {
	db := New()
	db.SetPresence(dev2, 3, 100)
	db.SetPresence(dev1, 3, 110)
	got := db.Occupants(3)
	if len(got) != 2 || got[0] != dev1 || got[1] != dev2 {
		t.Errorf("Occupants = %v, want sorted [dev1 dev2]", got)
	}
	if got := db.Occupants(99); len(got) != 0 {
		t.Errorf("Occupants(empty) = %v", got)
	}
	if db.Present() != 2 {
		t.Errorf("Present = %d, want 2", db.Present())
	}
}

func TestHistoryBounded(t *testing.T) {
	db := NewWithHistory(4)
	for i := 0; i < 10; i++ {
		db.SetPresence(dev1, graph.NodeID(i), sim.Tick(i*100))
	}
	h := db.History(dev1)
	if len(h) != 4 {
		t.Fatalf("history length = %d, want 4", len(h))
	}
	if h[0].Piconet != 6 || h[3].Piconet != 9 {
		t.Errorf("history window = %+v, want piconets 6..9", h)
	}
}

func TestHistoryDisabled(t *testing.T) {
	db := NewWithHistory(0)
	db.SetPresence(dev1, 1, 10)
	if h := db.History(dev1); len(h) != 0 {
		t.Errorf("history with limit 0 = %v", h)
	}
	db2 := NewWithHistory(-5)
	db2.SetPresence(dev1, 1, 10)
	if h := db2.History(dev1); len(h) != 0 {
		t.Errorf("negative limit should disable history, got %v", h)
	}
}

func TestHistoryCopyIsolated(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 1, 10)
	h := db.History(dev1)
	h[0].Piconet = 42
	if db.History(dev1)[0].Piconet != 1 {
		t.Error("History exposed internal state")
	}
}

func TestDrop(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 3, 100)
	db.Drop(dev1)
	if _, err := db.Locate(dev1); err == nil {
		t.Error("dropped device still present")
	}
	if len(db.History(dev1)) != 0 {
		t.Error("dropped device kept history")
	}
	if len(db.Occupants(3)) != 0 {
		t.Error("dropped device still occupies piconet")
	}
	db.Drop(dev2) // unknown: no-op
}

func TestSubscribe(t *testing.T) {
	db := New()
	var events []Event
	cancel := db.Subscribe(func(e Event) { events = append(events, e) })
	db.SetPresence(dev1, 3, 100)
	db.SetPresence(dev1, 3, 150) // delta no-op: no event
	db.SetPresence(dev1, 5, 200)
	db.SetAbsence(dev1, 5, 300)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if !events[0].Present || events[0].Piconet != 3 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if !events[1].Present || events[1].Piconet != 5 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Present || events[2].Piconet != 5 {
		t.Errorf("event 2 = %+v", events[2])
	}
	cancel()
	db.SetPresence(dev2, 1, 400)
	if len(events) != 3 {
		t.Error("event delivered after cancel")
	}
}

// TestSubscribeHandoverCarriesPrev: a handover event announces the old
// piconet, so stream consumers (the fan-out tree, occupancy counters)
// can derive the implied departure without tracking device state.
func TestSubscribeHandoverCarriesPrev(t *testing.T) {
	db := New()
	var events []Event
	db.Subscribe(func(e Event) { events = append(events, e) })
	db.SetPresence(dev1, 3, 100)
	db.SetPresence(dev1, 5, 200)
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].HasPrev {
		t.Errorf("first appearance claims a previous piconet: %+v", events[0])
	}
	if !events[1].HasPrev || events[1].Prev != 3 {
		t.Errorf("handover event = %+v, want Prev 3", events[1])
	}
}

// TestDropEmitsFinalAbsence: a logout of a still-present device is
// announced as an absence from its last room — otherwise event-stream
// consumers would count the occupant forever.
func TestDropEmitsFinalAbsence(t *testing.T) {
	db := New()
	var events []Event
	db.Subscribe(func(e Event) { events = append(events, e) })
	db.SetPresence(dev1, 3, 100)
	db.Drop(dev1)
	if len(events) != 2 {
		t.Fatalf("events = %d, want presence + final absence", len(events))
	}
	last := events[1]
	if last.Present || last.Piconet != 3 || last.Device != dev1 {
		t.Errorf("drop event = %+v, want absence from piconet 3", last)
	}
	if !last.Dropped {
		t.Errorf("drop event = %+v, want Dropped flag", last)
	}
	// A device with history but no current fix still announces the drop
	// (history-derived indexes must forget it), but carries no room.
	db.SetPresence(dev2, 1, 200)
	db.SetAbsence(dev2, 1, 300)
	n := len(events)
	db.Drop(dev2)
	if len(events) != n+1 {
		t.Fatalf("drop of an absent device emitted %d events, want 1", len(events)-n)
	}
	ev := events[n]
	if ev.Present || !ev.Dropped || ev.Device != dev2 || ev.Piconet != 0 {
		t.Errorf("history-only drop event = %+v, want bare Dropped absence", ev)
	}
	// A device with no state at all really does go quietly.
	n = len(events)
	db.Drop(baseband.BDAddr(0xDEAD))
	if len(events) != n {
		t.Errorf("drop of an unknown device emitted %d extra events", len(events)-n)
	}
}

func TestLocateAt(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 3, 100)
	db.SetPresence(dev1, 5, 200)
	db.SetPresence(dev1, 7, 300)
	tests := []struct {
		at      sim.Tick
		want    graph.NodeID
		wantErr bool
	}{
		{at: 50, wantErr: true},
		{at: 100, want: 3},
		{at: 150, want: 3},
		{at: 200, want: 5},
		{at: 299, want: 5},
		{at: 300, want: 7},
		{at: 10_000, want: 7},
	}
	for _, tt := range tests {
		fix, err := db.LocateAt(dev1, tt.at)
		if (err != nil) != tt.wantErr {
			t.Errorf("LocateAt(%v) error = %v, wantErr %v", tt.at, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && fix.Piconet != tt.want {
			t.Errorf("LocateAt(%v) = %d, want %d", tt.at, fix.Piconet, tt.want)
		}
	}
	if _, err := db.LocateAt(dev2, 500); !errors.Is(err, ErrNotPresent) {
		t.Errorf("unknown device error = %v", err)
	}
}

func TestLocateAtRespectsHistoryLimit(t *testing.T) {
	db := NewWithHistory(2)
	db.SetPresence(dev1, 1, 100)
	db.SetPresence(dev1, 2, 200)
	db.SetPresence(dev1, 3, 300)
	// The fix at t=100 has been evicted.
	if _, err := db.LocateAt(dev1, 150); err == nil {
		t.Error("evicted history still answered")
	}
	if fix, err := db.LocateAt(dev1, 250); err != nil || fix.Piconet != 2 {
		t.Errorf("LocateAt(250) = %+v, %v", fix, err)
	}
}

func TestStatsCounters(t *testing.T) {
	db := New()
	db.SetPresence(dev1, 1, 10)
	db.SetPresence(dev1, 2, 20)
	db.SetAbsence(dev1, 2, 30)
	if _, err := db.Locate(dev1); err == nil {
		t.Fatal("expected not present")
	}
	s := db.Stats()
	if s.Updates != 2 || s.Absences != 1 || s.Queries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConcurrentUpdatesAndQueries(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := baseband.BDAddr(0x100 + i)
			for j := 0; j < 100; j++ {
				db.SetPresence(dev, graph.NodeID(j%5), sim.Tick(j))
				if _, err := db.Locate(dev); err != nil {
					t.Errorf("Locate during churn: %v", err)
					return
				}
				db.Occupants(graph.NodeID(j % 5))
			}
			db.SetAbsence(dev, graph.NodeID(99), 1000) // stale, ignored
		}()
	}
	wg.Wait()
	if db.Present() != 16 {
		t.Errorf("Present = %d, want 16", db.Present())
	}
}
