package locdb

import (
	"fmt"
	"sort"

	"bips/internal/baseband"
)

// DeviceDump is one device's complete stored state, the unit of the
// snapshot format written by internal/storage. Present distinguishes a
// device with a current fix from one that only has history left (it was
// reported absent but its past runs are still queryable).
type DeviceDump struct {
	Device  baseband.BDAddr `json:"device"`
	Present bool            `json:"present"`
	// Current is the device's current fix; meaningful only when Present.
	Current Fix `json:"current,omitempty"`
	// History is the recorded movement history, oldest first.
	History []Fix `json:"history,omitempty"`
}

// Dump captures the state of every device with a current fix or recorded
// history, in ascending device order. Each shard is dumped under its read
// lock, so the cut is per-shard consistent (the same consistency every
// cross-shard view of this database provides); a quiesced database dumps
// an exact global cut.
func (db *DB) Dump() []DeviceDump {
	var out []DeviceDump
	for _, sh := range db.shards {
		sh.mu.RLock()
		out = append(out, dumpShardLocked(sh)...)
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// SortDumps orders device dumps the way Dump does, for callers that
// assemble a dump shard by shard (CheckpointShard).
func SortDumps(dumps []DeviceDump) {
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].Device < dumps[j].Device })
}

// dumpShardLocked builds one shard's device dumps. Caller holds the
// shard lock (read or write).
func dumpShardLocked(sh *shard) []DeviceDump {
	seen := make(map[baseband.BDAddr]bool, len(sh.current))
	for dev := range sh.current {
		seen[dev] = true
	}
	for _, dev := range sh.hist.Devices() {
		seen[dev] = true
	}
	out := make([]DeviceDump, 0, len(seen))
	for dev := range seen {
		d := DeviceDump{Device: dev}
		if fix, ok := sh.current[dev]; ok {
			d.Present = true
			d.Current = fix
		}
		for _, v := range sh.hist.Visits(dev) {
			d.History = append(d.History, Fix{Device: dev, Piconet: v.Piconet, At: v.At})
		}
		out = append(out, d)
	}
	return out
}

// Restore loads dumped device states into the database, bypassing the
// delta semantics: history entries are installed verbatim (subject to
// this database's own history limit) and the current fix, when present,
// is placed without generating events. It is meant for recovery into a
// freshly created database; restoring a device that already has state
// fails.
func (db *DB) Restore(dumps []DeviceDump) error {
	for _, d := range dumps {
		sh := db.shardOf(d.Device)
		sh.mu.Lock()
		if _, dup := sh.current[d.Device]; dup || sh.hist.Len(d.Device) > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("locdb: restore: device %v already has state", d.Device)
		}
		for _, f := range d.History {
			sh.hist.Append(d.Device, f.Piconet, f.At)
		}
		if d.Present {
			fix := d.Current
			fix.Device = d.Device
			sh.current[d.Device] = fix
			occ := sh.occupants[fix.Piconet]
			if occ == nil {
				occ = make(map[baseband.BDAddr]bool)
				sh.occupants[fix.Piconet] = occ
			}
			occ[d.Device] = true
		}
		sh.version.Add(1)
		sh.mu.Unlock()
	}
	return nil
}
