package locdb

import (
	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// JournalOp tags one journaled mutation.
type JournalOp uint8

// Journal operations, in the order a write-ahead log records them.
const (
	JournalPresence JournalOp = iota + 1
	JournalAbsence
	JournalDrop
)

// Journal observes every state-changing mutation of a DB from inside
// the owning shard's write lock — the hook a durable backend uses to
// keep a write-ahead log in exact per-device order with the memory
// state, without adding any locking of its own to the delta hot path.
//
// Record must be fast and must not call back into the DB (the shard
// lock is held). Implementations typically append to a per-shard buffer
// that a background flusher drains through WithShard/CheckpointShard.
type Journal interface {
	Record(shard int, op JournalOp, dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick)
}

// SetJournal installs the journal hook. It must be called before the
// database sees concurrent use (a backend wires it at construction);
// passing nil detaches the hook.
func (db *DB) SetJournal(j Journal) { db.journal = j }

// WithShard runs fn while holding shard i's write lock. A journal's
// flusher uses it to drain the per-shard record buffer in a critical
// section ordered against every mutation of that shard.
func (db *DB) WithShard(i int, fn func()) {
	sh := db.shards[i]
	sh.mu.Lock()
	fn()
	sh.mu.Unlock()
}

// CheckpointShard atomically drains and dumps one shard: it runs drain
// under the shard's write lock and builds the shard's device dump in
// the same critical section, so the returned dump reflects exactly the
// mutations whose journal records drain collected (and every earlier
// one). Checkpointing shard by shard keeps the rest of the database
// fully available while a snapshot is taken.
func (db *DB) CheckpointShard(i int, drain func()) []DeviceDump {
	sh := db.shards[i]
	sh.mu.Lock()
	if drain != nil {
		drain()
	}
	dump := dumpShardLocked(sh)
	sh.mu.Unlock()
	return dump
}
