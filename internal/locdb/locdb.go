// Package locdb implements the BIPS central location database of Section 2:
// it stores, for every tracked device, the piconet (room) it was last seen
// in. Workstations reveal presences at fixed intervals and, to reduce
// computational and communication load, update the database only when they
// detect a new presence or a new absence. The database answers the paper's
// spatio-temporal query ("select the target actual piconet of the mobile
// device BD_ADDR1 ...") and keeps a bounded movement history per device in
// a time-indexed histdb.Index, so the historical forms of the query —
// LocateAt (point in time) and Trajectory (time window) — are binary
// searches over presence runs rather than scans.
//
// The DB here is the in-memory storage engine; the Store interface
// (store.go) is what the serving layer programs against, and
// internal/storage provides the durable backend (write-ahead log +
// snapshots) that wraps this one.
//
// # Sharding
//
// At campus scale one mutex around one map is the serving bottleneck: every
// workstation delta and every Locate contends on it. The database is
// therefore split into N independently locked shards, keyed by a mixed hash
// of the device address. Operations on one device touch exactly one shard,
// so presence deltas and queries for different devices proceed in parallel;
// cross-shard views (Occupants, Present, All, Stats) visit the shards one
// at a time and are therefore not a single atomic cut across devices —
// each shard is internally consistent, which is exactly the consistency the
// paper's delta protocol provides anyway (workstation reports race with
// queries by design).
//
// The batch read path is additionally lock-free in the steady state: each
// shard keeps an immutable snapshot of its current fixes, rebuilt only when
// the shard has changed since the last snapshot and published through an
// atomic pointer, so All on a quiescent shard costs two atomic loads and no
// lock acquisition.
package locdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/histdb"
	"bips/internal/sim"
)

// DefaultHistoryLimit bounds the per-device movement history.
const DefaultHistoryLimit = 128

// DefaultShards is the shard count used by New. It is sized for a
// many-core server; WithShards / NewSharded override it.
const DefaultShards = 16

// MaxShards bounds the shard count to something sane.
const MaxShards = 4096

// Errors reported by the database.
var (
	// ErrNotPresent is returned when a device has no known position.
	ErrNotPresent = errors.New("locdb: device not present in any piconet")
	// ErrBadShards is returned for an out-of-range shard count.
	ErrBadShards = errors.New("locdb: shard count out of range")
)

// Fix is one location fact: a device was present in a piconet at a time.
type Fix struct {
	Device  baseband.BDAddr `json:"device"`
	Piconet graph.NodeID    `json:"piconet"`
	// At is the simulation/wall tick the presence was revealed.
	At sim.Tick `json:"at"`
}

// Event is a presence change streamed to subscribers.
type Event struct {
	Fix
	// Present is true for a new presence, false for a new absence.
	Present bool `json:"present"`
	// Prev is the piconet the device was in immediately before this
	// change, when it had one (HasPrev). A handover directly into a
	// neighboring cell carries the old room here, so subscribers can
	// derive the implied departure — and keep per-room aggregates like
	// occupancy counts — without tracking device state themselves.
	Prev    graph.NodeID `json:"prev,omitempty"`
	HasPrev bool         `json:"hasPrev,omitempty"`
	// Dropped marks the final event of a Drop (logout): unlike a plain
	// absence, the device's history was erased too, so derived stores
	// that index the movement history (not just the current fix) must
	// forget the device entirely. A Drop of a device that was already
	// absent but still had history carries only the device address.
	Dropped bool `json:"dropped,omitempty"`
}

// shardSnap is an immutable snapshot of one shard's current fixes,
// published through shard.snap. version is the shard version it was built
// at; when it still equals the shard's live version the snapshot is
// current and readable without the shard lock.
type shardSnap struct {
	version uint64
	fixes   []Fix
}

// shard is one independently locked partition of the database. Every
// device hashes to exactly one shard, which holds its current fix, its
// history, and its room's occupant entry for that device.
type shard struct {
	mu        sync.RWMutex
	current   map[baseband.BDAddr]Fix
	occupants map[graph.NodeID]map[baseband.BDAddr]bool
	hist      *histdb.Index

	// version counts mutations; snap caches the last built snapshot.
	version atomic.Uint64
	snap    atomic.Pointer[shardSnap]

	// Activity counters live per shard so the hot paths never touch a
	// cache line shared across shards; Stats sums them.
	updates  atomic.Int64
	absences atomic.Int64
	queries  atomic.Int64
}

func newShard(historyLimit int) *shard {
	s := &shard{
		current:   make(map[baseband.BDAddr]Fix),
		occupants: make(map[graph.NodeID]map[baseband.BDAddr]bool),
		hist:      histdb.New(historyLimit),
	}
	s.snap.Store(&shardSnap{})
	return s
}

// snapshot returns the shard's current fixes paired with the shard
// version they were built at. In the steady state (no mutation since
// the last call) it is lock-free: two atomic loads, no mutex. After a
// mutation it rebuilds under the read lock and publishes the result for
// subsequent callers. The returned snapshot is immutable.
func (sh *shard) snapshot() *shardSnap {
	v := sh.version.Load()
	if s := sh.snap.Load(); s.version == v {
		return s
	}
	sh.mu.RLock()
	// Re-read under the lock: the version observed here is consistent
	// with the map contents because mutators bump it while holding mu.
	v = sh.version.Load()
	fixes := make([]Fix, 0, len(sh.current))
	for _, f := range sh.current {
		fixes = append(fixes, f)
	}
	sh.mu.RUnlock()
	sort.Slice(fixes, func(i, j int) bool { return fixes[i].Device < fixes[j].Device })
	s := &shardSnap{version: v, fixes: fixes}
	sh.snap.Store(s)
	return s
}

// DB is the central location database. It is safe for concurrent use: in
// the live system every workstation connection updates it concurrently
// with user queries, and the shards keep those updates from serializing
// behind one lock.
type DB struct {
	shards       []*shard
	historyLimit int

	// journal, when installed, records every state change under the
	// owning shard's lock (see journal.go). nil for a pure in-memory
	// database.
	journal Journal

	subsMu  sync.RWMutex
	subs    map[int]Sink
	nextSub int
	// subsList is the subscription-ordered sink list notify iterates,
	// rebuilt on (un)subscribe and read through one atomic load so the
	// per-delta hot path allocates nothing.
	subsList atomic.Pointer[[]Sink]

	// Merged-snapshot cache: allCur is the last full merge (with the
	// per-shard versions it was built from), allRing keeps the most
	// recent builds so AllSince can serve deltas against a base a client
	// still holds. See snapshot.go.
	allMu     sync.Mutex
	allCur    atomic.Pointer[allSnap]
	allRing   [snapRingSize]*allSnap
	allRingAt int
	allToken  uint64

	// batchPool recycles ApplyBatch's grouping scratch (see batch.go).
	batchPool sync.Pool

	// snapshotQueries counts All calls (the hot per-device counters are
	// per shard).
	snapshotQueries atomic.Int64
}

// New returns an empty database with DefaultShards shards and the default
// history limit.
func New() *DB {
	db, err := NewSharded(DefaultShards, DefaultHistoryLimit)
	if err != nil {
		// Unreachable: the defaults are in range.
		panic(err)
	}
	return db
}

// NewWithHistory returns an empty database keeping at most limit history
// entries per device (0 disables history).
func NewWithHistory(limit int) *DB {
	db, err := NewSharded(DefaultShards, limit)
	if err != nil {
		panic(err)
	}
	return db
}

// NewSharded returns an empty database split into the given number of
// shards, keeping at most limit history entries per device (negative
// limits are clamped to 0, which disables history). shards must be in
// [1, MaxShards]; a single shard reproduces the original global-mutex
// behavior exactly.
func NewSharded(shards, limit int) (*DB, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("%w: %d (want 1..%d)", ErrBadShards, shards, MaxShards)
	}
	if limit < 0 {
		limit = 0
	}
	db := &DB{
		shards:       make([]*shard, shards),
		historyLimit: limit,
		subs:         make(map[int]Sink),
	}
	for i := range db.shards {
		db.shards[i] = newShard(limit)
	}
	return db, nil
}

// NumShards returns the shard count the database was built with.
func (db *DB) NumShards() int { return len(db.shards) }

// HistoryLimit returns the per-device history bound the database was
// built with (0 = history disabled).
func (db *DB) HistoryLimit() int { return db.historyLimit }

// Close implements Store. The in-memory backend holds no external
// resources, so it is a no-op.
func (db *DB) Close() error { return nil }

// shardOf maps a device to its shard. The address bits are mixed
// (splitmix64 finalizer) before reduction so that sequentially allocated
// addresses — the common case for the simulator's device pool — spread
// over all shards instead of clustering.
func (db *DB) shardOf(dev baseband.BDAddr) *shard {
	return db.shards[shardIndex(uint64(dev), len(db.shards))]
}

// shardIdxOf maps a device to its shard index.
func (db *DB) shardIdxOf(dev baseband.BDAddr) int {
	return shardIndex(uint64(dev), len(db.shards))
}

// shardIndex is the pure mapping function, exposed to tests.
func shardIndex(v uint64, n int) int {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % uint64(n))
}

// setPresenceLocked applies one presence delta to its shard. The caller
// holds sh.mu; the returned bool reports whether state changed (delta
// semantics: re-reporting an unchanged piconet is a no-op). On a change
// the returned event carries the previous piconet, when there was one,
// so subscribers see the handover as one fact.
func (db *DB) setPresenceLocked(sh *shard, idx int, dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) (Event, bool) {
	prev, had := sh.current[dev]
	if had && prev.Piconet == piconet {
		return Event{}, false
	}
	if had {
		delete(sh.occupants[prev.Piconet], dev)
	}
	sh.current[dev] = Fix{Device: dev, Piconet: piconet, At: at}
	occ := sh.occupants[piconet]
	if occ == nil {
		occ = make(map[baseband.BDAddr]bool)
		sh.occupants[piconet] = occ
	}
	occ[dev] = true
	sh.hist.Append(dev, piconet, at)
	if db.journal != nil {
		db.journal.Record(idx, JournalPresence, dev, piconet, at)
	}
	sh.version.Add(1)
	sh.updates.Add(1)
	ev := Event{Fix: Fix{Device: dev, Piconet: piconet, At: at}, Present: true}
	if had {
		ev.Prev, ev.HasPrev = prev.Piconet, true
	}
	return ev, true
}

// setAbsenceLocked applies one absence delta to its shard. The caller
// holds sh.mu; an absence from a piconet the device is no longer in is
// ignored (false), so out-of-order reports cannot erase a newer fix.
func (db *DB) setAbsenceLocked(sh *shard, idx int, dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) (Event, bool) {
	cur, ok := sh.current[dev]
	if !ok || cur.Piconet != piconet {
		return Event{}, false
	}
	delete(sh.current, dev)
	delete(sh.occupants[piconet], dev)
	if db.journal != nil {
		db.journal.Record(idx, JournalAbsence, dev, piconet, at)
	}
	sh.version.Add(1)
	sh.absences.Add(1)
	return Event{Fix: Fix{Device: dev, Piconet: piconet, At: at}, Present: false}, true
}

// SetPresence records that the device is present in the piconet at the
// given time. It implements the delta semantics: re-reporting an unchanged
// piconet is a cheap no-op, reported by the false return.
func (db *DB) SetPresence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool {
	idx := db.shardIdxOf(dev)
	sh := db.shards[idx]
	sh.mu.Lock()
	ev, changed := db.setPresenceLocked(sh, idx, dev, piconet, at)
	sh.mu.Unlock()
	if !changed {
		return false
	}
	db.notify(ev)
	return true
}

// SetAbsence records that the device left the given piconet at the given
// time. An absence reported by a piconet the device is no longer in (the
// device was already handed over) is ignored, so out-of-order reports from
// two workstations cannot erase a newer presence; the false return
// reports the ignore.
func (db *DB) SetAbsence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool {
	idx := db.shardIdxOf(dev)
	sh := db.shards[idx]
	sh.mu.Lock()
	ev, changed := db.setAbsenceLocked(sh, idx, dev, piconet, at)
	sh.mu.Unlock()
	if !changed {
		return false
	}
	db.notify(ev)
	return true
}

// Drop removes every trace of a device (logout). It returns whether the
// device had any state to remove. Any drop that removed state is
// announced to subscribers as a final Dropped absence event — from the
// device's room when it still had a current fix, or carrying just the
// device address when only history remained — so per-room views
// (occupancy, room watchers) and history-derived indexes built from the
// event stream stay consistent across logouts.
func (db *DB) Drop(dev baseband.BDAddr) bool {
	idx := db.shardIdxOf(dev)
	sh := db.shards[idx]
	sh.mu.Lock()
	changed := false
	ev := Event{Fix: Fix{Device: dev}, Present: false, Dropped: true}
	if cur, ok := sh.current[dev]; ok {
		delete(sh.occupants[cur.Piconet], dev)
		sh.version.Add(1)
		changed = true
		ev.Fix = cur
	}
	if sh.hist.Len(dev) > 0 {
		changed = true
	}
	delete(sh.current, dev)
	sh.hist.Drop(dev)
	if changed && db.journal != nil {
		db.journal.Record(idx, JournalDrop, dev, 0, 0)
	}
	sh.mu.Unlock()
	if changed {
		db.notify(ev)
	}
	return changed
}

// Locate answers the paper's spatio-temporal query: the actual piconet of
// the device.
func (db *DB) Locate(dev baseband.BDAddr) (Fix, error) {
	sh := db.shardOf(dev)
	sh.queries.Add(1)
	sh.mu.RLock()
	fix, ok := sh.current[dev]
	sh.mu.RUnlock()
	if !ok {
		return Fix{}, fmt.Errorf("%w: %v", ErrNotPresent, dev)
	}
	return fix, nil
}

// LocateAt answers the historical form of the spatio-temporal query: the
// piconet the device was last reported in at or before tick at. It
// consults the bounded movement history, so it can only see as far back as
// the history limit allows.
func (db *DB) LocateAt(dev baseband.BDAddr, at sim.Tick) (Fix, error) {
	sh := db.shardOf(dev)
	sh.queries.Add(1)
	sh.mu.RLock()
	v, ok := sh.hist.At(dev, at)
	sh.mu.RUnlock()
	if !ok {
		return Fix{}, fmt.Errorf("%w: %v at %v", ErrNotPresent, dev, at)
	}
	return Fix{Device: dev, Piconet: v.Piconet, At: v.At}, nil
}

// Trajectory answers the time-window form of the spatio-temporal query:
// every presence run overlapping [from, to], oldest first — the fix in
// force at from (when the bounded history still records it) followed by
// every move up to and including to. An empty window, an unknown device
// or a window before the recorded history all yield an empty trajectory.
func (db *DB) Trajectory(dev baseband.BDAddr, from, to sim.Tick) []Fix {
	sh := db.shardOf(dev)
	sh.queries.Add(1)
	sh.mu.RLock()
	visits := sh.hist.Range(dev, from, to)
	sh.mu.RUnlock()
	if len(visits) == 0 {
		return nil
	}
	out := make([]Fix, len(visits))
	for i, v := range visits {
		out[i] = Fix{Device: dev, Piconet: v.Piconet, At: v.At}
	}
	return out
}

// Occupants returns the devices currently present in the piconet, in
// ascending address order. Devices of one room live on many shards, so the
// view is assembled shard by shard; it is consistent per shard but not one
// atomic cut across all of them.
func (db *DB) Occupants(piconet graph.NodeID) []baseband.BDAddr {
	var out []baseband.BDAddr
	for _, sh := range db.shards {
		sh.mu.RLock()
		for dev := range sh.occupants[piconet] {
			out = append(out, dev)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every current fix, in ascending device order. The merged
// view is cached against a per-shard version vector: on a quiescent
// database the call is a handful of atomic loads and ZERO allocation —
// no O(devices) rebuild per call — and after mutations exactly one
// caller pays the re-merge (see snapshot.go). The returned slice is
// shared and immutable: callers must not modify it.
func (db *DB) All() []Fix {
	db.snapshotQueries.Add(1)
	return db.allSnapshot().fixes
}

// History returns the device's recorded movement history, oldest first.
func (db *DB) History(dev baseband.BDAddr) []Fix {
	sh := db.shardOf(dev)
	sh.mu.RLock()
	visits := sh.hist.Visits(dev)
	sh.mu.RUnlock()
	if len(visits) == 0 {
		return []Fix{}
	}
	out := make([]Fix, len(visits))
	for i, v := range visits {
		out[i] = Fix{Device: dev, Piconet: v.Piconet, At: v.At}
	}
	return out
}

// Present returns the number of devices with a known position.
func (db *DB) Present() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n += len(sh.current)
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports database activity counters.
type Stats struct {
	Updates  int64 `json:"updates"`
	Absences int64 `json:"absences"`
	Queries  int64 `json:"queries"`
	Present  int   `json:"present"`
	Shards   int   `json:"shards"`
}

// Stats returns a snapshot of the activity counters. Queries counts both
// per-device Locate calls and full-database All snapshots.
func (db *DB) Stats() Stats {
	st := Stats{
		Queries: db.snapshotQueries.Load(),
		Present: db.Present(),
		Shards:  len(db.shards),
	}
	for _, sh := range db.shards {
		st.Updates += sh.updates.Load()
		st.Absences += sh.absences.Load()
		st.Queries += sh.queries.Load()
	}
	return st
}

// Sink consumes the delta stream. OnEvent carries one delta from the
// single-mutation paths (SetPresence, SetAbsence, Drop); OnEvents
// carries a whole ApplyBatch frame in one call, so a frame-aware
// consumer (the fan-out tree, the analytics hot tier) pays its
// per-delivery overhead — lock acquisitions, state sweeps — once per
// frame instead of once per delta. The slice handed to OnEvents is
// owned by the database and recycled after the call returns: consumers
// must not retain it.
//
// Both methods run synchronously on the mutating goroutine, after the
// shard locks are released, and must not mutate the database
// re-entrantly in a way that assumes ordering against other updaters:
// with concurrent writers on different shards, deliveries for
// different devices may interleave (the single-threaded simulator
// never hits this; a multi-connection server does).
type Sink interface {
	OnEvent(Event)
	OnEvents([]Event)
}

// funcSink adapts a per-event callback to the Sink interface for the
// plain Subscribe path; frames are unrolled one event at a time.
type funcSink struct{ fn func(Event) }

func (s funcSink) OnEvent(ev Event) { s.fn(ev) }
func (s funcSink) OnEvents(evs []Event) {
	for _, ev := range evs {
		s.fn(ev)
	}
}

// Subscribe registers fn to be called on every presence change. It
// returns an unsubscribe function. The callback contract is Sink's:
// fn runs synchronously on the updating goroutine after the shard lock
// is released. Frame-aware consumers use SubscribeSink instead.
func (db *DB) Subscribe(fn func(Event)) (cancel func()) {
	return db.SubscribeSink(funcSink{fn})
}

// SubscribeSink registers a batch-capable consumer of the delta
// stream: single mutations arrive through OnEvent, whole ApplyBatch
// frames through one OnEvents call. Sinks and plain Subscribe
// callbacks share one subscription order. It returns an unsubscribe
// function.
func (db *DB) SubscribeSink(s Sink) (cancel func()) {
	db.subsMu.Lock()
	defer db.subsMu.Unlock()
	id := db.nextSub
	db.nextSub++
	db.subs[id] = s
	db.rebuildSubsLocked()
	return func() {
		db.subsMu.Lock()
		defer db.subsMu.Unlock()
		delete(db.subs, id)
		db.rebuildSubsLocked()
	}
}

// rebuildSubsLocked republishes the subscription-ordered sink list.
// The caller holds subsMu.
func (db *DB) rebuildSubsLocked() {
	ids := make([]int, 0, len(db.subs))
	for id := range db.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	sinks := make([]Sink, 0, len(ids))
	for _, id := range ids {
		sinks = append(sinks, db.subs[id])
	}
	db.subsList.Store(&sinks)
}

// notify delivers one event to all subscribers in subscription order.
// The sink list is prebuilt, so a delta with no subscribers — and the
// common case of a stable subscriber set — costs one atomic load and
// no allocation.
func (db *DB) notify(ev Event) {
	sinks := db.subsList.Load()
	if sinks == nil {
		return
	}
	for _, s := range *sinks {
		s.OnEvent(ev)
	}
}

// notifyBatch delivers a whole mutation frame to all subscribers in
// subscription order, one OnEvents call per sink. The events slice is
// recycled by the caller after the call; sinks must not retain it.
func (db *DB) notifyBatch(evs []Event) {
	if len(evs) == 0 {
		return
	}
	sinks := db.subsList.Load()
	if sinks == nil {
		return
	}
	for _, s := range *sinks {
		s.OnEvents(evs)
	}
}
