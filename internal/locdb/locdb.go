// Package locdb implements the BIPS central location database of Section 2:
// it stores, for every tracked device, the piconet (room) it was last seen
// in. Workstations reveal presences at fixed intervals and, to reduce
// computational and communication load, update the database only when they
// detect a new presence or a new absence. The database answers the paper's
// spatio-temporal query ("select the target actual piconet of the mobile
// device BD_ADDR1 ...") and keeps a bounded movement history per device.
package locdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// DefaultHistoryLimit bounds the per-device movement history.
const DefaultHistoryLimit = 128

// Errors reported by the database.
var (
	// ErrNotPresent is returned when a device has no known position.
	ErrNotPresent = errors.New("locdb: device not present in any piconet")
)

// Fix is one location fact: a device was present in a piconet at a time.
type Fix struct {
	Device  baseband.BDAddr `json:"device"`
	Piconet graph.NodeID    `json:"piconet"`
	// At is the simulation/wall tick the presence was revealed.
	At sim.Tick `json:"at"`
}

// Event is a presence change streamed to subscribers.
type Event struct {
	Fix
	// Present is true for a new presence, false for a new absence.
	Present bool `json:"present"`
}

// DB is the central location database. It is safe for concurrent use: in
// the live system every workstation connection updates it concurrently with
// user queries.
type DB struct {
	mu           sync.RWMutex
	current      map[baseband.BDAddr]Fix
	occupants    map[graph.NodeID]map[baseband.BDAddr]bool
	history      map[baseband.BDAddr][]Fix
	historyLimit int
	subs         map[int]func(Event)
	nextSub      int

	updates  int64
	queries  int64
	absences int64
}

// New returns an empty database with the default history limit.
func New() *DB {
	return NewWithHistory(DefaultHistoryLimit)
}

// NewWithHistory returns an empty database keeping at most limit history
// entries per device (0 disables history).
func NewWithHistory(limit int) *DB {
	if limit < 0 {
		limit = 0
	}
	return &DB{
		current:      make(map[baseband.BDAddr]Fix),
		occupants:    make(map[graph.NodeID]map[baseband.BDAddr]bool),
		history:      make(map[baseband.BDAddr][]Fix),
		historyLimit: limit,
		subs:         make(map[int]func(Event)),
	}
}

// SetPresence records that the device is present in the piconet at the
// given time. It implements the delta semantics: re-reporting an unchanged
// piconet is a cheap no-op.
func (db *DB) SetPresence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) {
	db.mu.Lock()
	prev, had := db.current[dev]
	if had && prev.Piconet == piconet {
		db.mu.Unlock()
		return
	}
	fix := Fix{Device: dev, Piconet: piconet, At: at}
	if had {
		delete(db.occupants[prev.Piconet], dev)
	}
	db.current[dev] = fix
	occ := db.occupants[piconet]
	if occ == nil {
		occ = make(map[baseband.BDAddr]bool)
		db.occupants[piconet] = occ
	}
	occ[dev] = true
	if db.historyLimit > 0 {
		h := append(db.history[dev], fix)
		if len(h) > db.historyLimit {
			h = h[len(h)-db.historyLimit:]
		}
		db.history[dev] = h
	}
	db.updates++
	subs := db.snapshotSubs()
	db.mu.Unlock()
	for _, fn := range subs {
		fn(Event{Fix: fix, Present: true})
	}
}

// SetAbsence records that the device left the given piconet at the given
// time. An absence reported by a piconet the device is no longer in (the
// device was already handed over) is ignored, so out-of-order reports from
// two workstations cannot erase a newer presence.
func (db *DB) SetAbsence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) {
	db.mu.Lock()
	cur, ok := db.current[dev]
	if !ok || cur.Piconet != piconet {
		db.mu.Unlock()
		return
	}
	delete(db.current, dev)
	delete(db.occupants[piconet], dev)
	db.absences++
	subs := db.snapshotSubs()
	db.mu.Unlock()
	fix := Fix{Device: dev, Piconet: piconet, At: at}
	for _, fn := range subs {
		fn(Event{Fix: fix, Present: false})
	}
}

// Drop removes every trace of a device (logout).
func (db *DB) Drop(dev baseband.BDAddr) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if cur, ok := db.current[dev]; ok {
		delete(db.occupants[cur.Piconet], dev)
	}
	delete(db.current, dev)
	delete(db.history, dev)
}

// Locate answers the paper's spatio-temporal query: the actual piconet of
// the device.
func (db *DB) Locate(dev baseband.BDAddr) (Fix, error) {
	db.mu.Lock()
	db.queries++
	fix, ok := db.current[dev]
	db.mu.Unlock()
	if !ok {
		return Fix{}, fmt.Errorf("%w: %v", ErrNotPresent, dev)
	}
	return fix, nil
}

// LocateAt answers the historical form of the spatio-temporal query: the
// piconet the device was last reported in at or before tick at. It
// consults the bounded movement history, so it can only see as far back as
// the history limit allows.
func (db *DB) LocateAt(dev baseband.BDAddr, at sim.Tick) (Fix, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := db.history[dev]
	// History is append-only in time order: binary search for the last
	// fix with Fix.At <= at.
	lo, hi := 0, len(h)
	for lo < hi {
		mid := (lo + hi) / 2
		if h[mid].At <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Fix{}, fmt.Errorf("%w: %v at %v", ErrNotPresent, dev, at)
	}
	return h[lo-1], nil
}

// Occupants returns the devices currently present in the piconet, in
// ascending address order.
func (db *DB) Occupants(piconet graph.NodeID) []baseband.BDAddr {
	db.mu.RLock()
	defer db.mu.RUnlock()
	occ := db.occupants[piconet]
	out := make([]baseband.BDAddr, 0, len(occ))
	for dev := range occ {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// History returns the device's recorded movement history, oldest first.
func (db *DB) History(dev baseband.BDAddr) []Fix {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := db.history[dev]
	out := make([]Fix, len(h))
	copy(out, h)
	return out
}

// Present returns the number of devices with a known position.
func (db *DB) Present() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.current)
}

// Stats reports database activity counters.
type Stats struct {
	Updates  int64 `json:"updates"`
	Absences int64 `json:"absences"`
	Queries  int64 `json:"queries"`
}

// Stats returns a snapshot of the activity counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{Updates: db.updates, Absences: db.absences, Queries: db.queries}
}

// Subscribe registers fn to be called on every presence change. It returns
// an unsubscribe function. Callbacks run synchronously on the updating
// goroutine and must not call back into the database.
func (db *DB) Subscribe(fn func(Event)) (cancel func()) {
	db.mu.Lock()
	defer db.mu.Unlock()
	id := db.nextSub
	db.nextSub++
	db.subs[id] = fn
	return func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		delete(db.subs, id)
	}
}

// snapshotSubs must be called with db.mu held.
func (db *DB) snapshotSubs() []func(Event) {
	out := make([]func(Event), 0, len(db.subs))
	ids := make([]int, 0, len(db.subs))
	for id := range db.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, db.subs[id])
	}
	return out
}
