package locdb

// SetSnapTokenForTest jumps the merged-snapshot token counter so tests
// can exercise the wrap-around (the counter must skip zero, which is
// the "no base" sentinel). The next rebuild issues v+1.
func (db *DB) SetSnapTokenForTest(v uint64) {
	db.allMu.Lock()
	db.allToken = v
	db.allMu.Unlock()
}

// SnapRingSizeForTest exposes the delta ring depth for eviction tests.
const SnapRingSizeForTest = snapRingSize
