package locdb

import (
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// historyMoves walks one device through n distinct rooms at ticks
// 10, 20, 30, ...
func historyMoves(db *DB, dev baseband.BDAddr, n int) {
	for i := 0; i < n; i++ {
		db.SetPresence(dev, graph.NodeID(i), sim.Tick(10*(i+1)))
	}
}

// TestHistoryLimitZero: limit 0 disables history — LocateAt and
// Trajectory answer nothing even though Locate works.
func TestHistoryLimitZero(t *testing.T) {
	db := NewWithHistory(0)
	dev := baseband.BDAddr(0xA1)
	historyMoves(db, dev, 5)
	if _, err := db.Locate(dev); err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if got := db.History(dev); len(got) != 0 {
		t.Fatalf("History with limit 0 = %v", got)
	}
	if _, err := db.LocateAt(dev, 50); err == nil {
		t.Fatal("LocateAt answered with history disabled")
	}
	if got := db.Trajectory(dev, 0, 100); got != nil {
		t.Fatalf("Trajectory with limit 0 = %v", got)
	}
}

// TestHistoryLimitOne: limit 1 keeps only the newest run; older point
// queries fail because their runs were evicted.
func TestHistoryLimitOne(t *testing.T) {
	db := NewWithHistory(1)
	dev := baseband.BDAddr(0xA2)
	historyMoves(db, dev, 3) // rooms 0@10, 1@20, 2@30; only 2@30 survives
	h := db.History(dev)
	if len(h) != 1 || h[0].Piconet != 2 || h[0].At != 30 {
		t.Fatalf("History = %v, want [room 2 @ 30]", h)
	}
	if _, err := db.LocateAt(dev, 25); err == nil {
		t.Fatal("LocateAt(25) answered from an evicted run")
	}
	fix, err := db.LocateAt(dev, 30)
	if err != nil || fix.Piconet != 2 {
		t.Fatalf("LocateAt(30) = %v, %v", fix, err)
	}
	if got := db.Trajectory(dev, 0, 100); len(got) != 1 || got[0].Piconet != 2 {
		t.Fatalf("Trajectory = %v", got)
	}
}

// TestHistoryExactBoundaryEviction: filling history to exactly the limit
// evicts nothing; the next move evicts exactly the oldest run.
func TestHistoryExactBoundaryEviction(t *testing.T) {
	const limit = 4
	db := NewWithHistory(limit)
	dev := baseband.BDAddr(0xA3)
	historyMoves(db, dev, limit)
	h := db.History(dev)
	if len(h) != limit || h[0].Piconet != 0 || h[limit-1].Piconet != limit-1 {
		t.Fatalf("at boundary History = %v", h)
	}
	// The limit+1-th move: room 0's run is evicted, the rest shift.
	db.SetPresence(dev, graph.NodeID(limit), sim.Tick(10*(limit+1)))
	h = db.History(dev)
	if len(h) != limit || h[0].Piconet != 1 || h[limit-1].Piconet != graph.NodeID(limit) {
		t.Fatalf("past boundary History = %v", h)
	}
	if _, err := db.LocateAt(dev, 10); err == nil {
		t.Fatal("LocateAt(10) answered from the evicted oldest run")
	}
	if fix, err := db.LocateAt(dev, 20); err != nil || fix.Piconet != 1 {
		t.Fatalf("LocateAt(20) = %v, %v", fix, err)
	}
}

// TestHistoryShardParity: a single-shard and a many-shard database fed
// the same sequence answer every history query identically — the
// sharding must be invisible to the spatio-temporal query surface.
func TestHistoryShardParity(t *testing.T) {
	mk := func(shards int) *DB {
		db, err := NewSharded(shards, 3)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	single, sharded := mk(1), mk(16)
	const devices = 40
	const rooms = 7
	for step := 0; step < 600; step++ {
		dev := baseband.BDAddr(0xA000 + uint64(step*13%devices))
		room := graph.NodeID(step * 5 % rooms)
		at := sim.Tick(step)
		switch step % 7 {
		case 6:
			single.SetAbsence(dev, room, at)
			sharded.SetAbsence(dev, room, at)
		default:
			single.SetPresence(dev, room, at)
			sharded.SetPresence(dev, room, at)
		}
	}
	for i := 0; i < devices; i++ {
		dev := baseband.BDAddr(0xA000 + uint64(i))
		for _, at := range []sim.Tick{0, 100, 300, 599, 10_000} {
			f1, err1 := single.LocateAt(dev, at)
			f2, err2 := sharded.LocateAt(dev, at)
			if (err1 == nil) != (err2 == nil) || f1 != f2 {
				t.Fatalf("LocateAt(%v, %d): single (%v, %v) vs sharded (%v, %v)",
					dev, at, f1, err1, f2, err2)
			}
		}
		windows := [][2]sim.Tick{{0, 599}, {100, 200}, {550, 10_000}, {200, 100}}
		for _, w := range windows {
			t1 := single.Trajectory(dev, w[0], w[1])
			t2 := sharded.Trajectory(dev, w[0], w[1])
			if len(t1) != len(t2) {
				t.Fatalf("Trajectory(%v, %v): single %v vs sharded %v", dev, w, t1, t2)
			}
			for j := range t1 {
				if t1[j] != t2[j] {
					t.Fatalf("Trajectory(%v, %v)[%d]: %v vs %v", dev, w, j, t1[j], t2[j])
				}
			}
		}
	}
}

// TestMutationChangeReports: the delta semantics are visible in the
// boolean returns — exactly the reports a durable WAL must persist.
func TestMutationChangeReports(t *testing.T) {
	db := New()
	dev := baseband.BDAddr(0xA4)
	if !db.SetPresence(dev, 1, 10) {
		t.Fatal("first presence reported unchanged")
	}
	if db.SetPresence(dev, 1, 20) {
		t.Fatal("re-reported presence claimed a change")
	}
	if !db.SetPresence(dev, 2, 30) {
		t.Fatal("move reported unchanged")
	}
	if db.SetAbsence(dev, 1, 40) {
		t.Fatal("stale absence (old room) claimed a change")
	}
	if !db.SetAbsence(dev, 2, 40) {
		t.Fatal("real absence reported unchanged")
	}
	if db.SetAbsence(dev, 2, 50) {
		t.Fatal("absence of an absent device claimed a change")
	}
	if !db.Drop(dev) {
		t.Fatal("drop of a device with history reported no change")
	}
	if db.Drop(dev) {
		t.Fatal("drop of an unknown device claimed a change")
	}
}

// TestDumpRestoreRoundTrip: Restore(Dump()) into a fresh database
// reproduces every queryable fact, including history of absent devices.
func TestDumpRestoreRoundTrip(t *testing.T) {
	src, err := NewSharded(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		dev := baseband.BDAddr(0xB000 + uint64(i))
		historyMoves(src, dev, 1+i%6)
		if i%5 == 0 {
			// Leave some devices absent-with-history.
			fix, _ := src.Locate(dev)
			src.SetAbsence(dev, fix.Piconet, 1000)
		}
	}

	dst, err := NewSharded(3, 4) // different shard count on purpose
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(src.Dump()); err != nil {
		t.Fatal(err)
	}

	if g, w := dst.Present(), src.Present(); g != w {
		t.Fatalf("Present: restored %d, source %d", g, w)
	}
	for i := 0; i < 30; i++ {
		dev := baseband.BDAddr(0xB000 + uint64(i))
		f1, err1 := src.Locate(dev)
		f2, err2 := dst.Locate(dev)
		if (err1 == nil) != (err2 == nil) || f1 != f2 {
			t.Fatalf("Locate(%v): source (%v, %v) vs restored (%v, %v)", dev, f1, err1, f2, err2)
		}
		h1, h2 := src.History(dev), dst.History(dev)
		if len(h1) != len(h2) {
			t.Fatalf("History(%v): source %v vs restored %v", dev, h1, h2)
		}
		for j := range h1 {
			if h1[j] != h2[j] {
				t.Fatalf("History(%v)[%d]: %v vs %v", dev, j, h1[j], h2[j])
			}
		}
	}
	a1, a2 := src.All(), dst.All()
	if len(a1) != len(a2) {
		t.Fatalf("All: source %d, restored %d", len(a1), len(a2))
	}
	for j := range a1 {
		if a1[j] != a2[j] {
			t.Fatalf("All[%d]: %v vs %v", j, a1[j], a2[j])
		}
	}

	// Restoring on top of existing state must fail loudly.
	if err := dst.Restore(src.Dump()); err == nil {
		t.Fatal("double restore silently accepted")
	}
}
