package locdb

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// randomMutations builds a deterministic mixed workload: presences,
// moves, re-reports (no-ops) and absences over a pool of devices.
func randomMutations(n int, devices int, rooms int, seed int64) []Mutation {
	rng := rand.New(rand.NewSource(seed))
	muts := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		m := Mutation{
			Dev:     baseband.BDAddr(0xB000 + uint64(rng.Intn(devices))),
			Piconet: graph.NodeID(1 + rng.Intn(rooms)),
			At:      sim.Tick(i + 1),
			Op:      MutPresence,
		}
		if rng.Intn(5) == 0 {
			m.Op = MutAbsence
		}
		muts = append(muts, m)
	}
	return muts
}

func applySequentially(db *DB, muts []Mutation) int {
	applied := 0
	for _, m := range muts {
		var changed bool
		switch m.Op {
		case MutPresence:
			changed = db.SetPresence(m.Dev, m.Piconet, m.At)
		case MutAbsence:
			changed = db.SetAbsence(m.Dev, m.Piconet, m.At)
		}
		if changed {
			applied++
		}
	}
	return applied
}

func dumpJSON(t *testing.T, db *DB) string {
	t.Helper()
	all := db.All()
	type devHist struct {
		Fix  Fix
		Hist []Fix
	}
	out := make([]devHist, 0, len(all))
	for _, f := range all {
		out = append(out, devHist{Fix: f, Hist: db.History(f.Device)})
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestApplyBatchMatchesSequential: one ApplyBatch call must leave the
// database in exactly the state (fixes, occupants, history, counters)
// that applying the same mutations one at a time would.
func TestApplyBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 4, DefaultShards} {
		muts := randomMutations(500, 20, 8, 42)

		seq, err := NewSharded(shards, DefaultHistoryLimit)
		if err != nil {
			t.Fatal(err)
		}
		wantApplied := applySequentially(seq, muts)

		bat, err := NewSharded(shards, DefaultHistoryLimit)
		if err != nil {
			t.Fatal(err)
		}
		gotApplied := bat.ApplyBatch(muts)

		if gotApplied != wantApplied {
			t.Errorf("shards=%d: ApplyBatch applied %d, sequential %d", shards, gotApplied, wantApplied)
		}
		if got, want := dumpJSON(t, bat), dumpJSON(t, seq); got != want {
			t.Errorf("shards=%d: batch state diverges from sequential state\nbatch: %s\nseq:   %s", shards, got, want)
		}
		ss, bs := seq.Stats(), bat.Stats()
		if ss.Updates != bs.Updates || ss.Absences != bs.Absences || ss.Present != bs.Present {
			t.Errorf("shards=%d: stats diverge: batch %+v, sequential %+v", shards, bs, ss)
		}
	}
}

// TestApplyBatchChunkedMatchesWhole: splitting a stream into arbitrary
// frames must not change the outcome (frame boundaries are transport
// artifacts, not semantics).
func TestApplyBatchChunkedMatchesWhole(t *testing.T) {
	muts := randomMutations(300, 10, 6, 7)
	whole := New()
	whole.ApplyBatch(muts)

	chunked := New()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < len(muts); {
		n := 1 + rng.Intn(64)
		if i+n > len(muts) {
			n = len(muts) - i
		}
		chunked.ApplyBatch(muts[i : i+n])
		i += n
	}
	if got, want := dumpJSON(t, chunked), dumpJSON(t, whole); got != want {
		t.Errorf("chunked application diverges from whole-batch application")
	}
}

func TestApplyBatchEmptyAndOps(t *testing.T) {
	db := New()
	if got := db.ApplyBatch(nil); got != 0 {
		t.Errorf("ApplyBatch(nil) = %d, want 0", got)
	}
	dev := baseband.BDAddr(0xB1)
	// Presence, duplicate presence (no-op), absence, stale absence.
	got := db.ApplyBatch([]Mutation{
		{Op: MutPresence, Dev: dev, Piconet: 1, At: 1},
		{Op: MutPresence, Dev: dev, Piconet: 1, At: 2},
		{Op: MutAbsence, Dev: dev, Piconet: 1, At: 3},
		{Op: MutAbsence, Dev: dev, Piconet: 1, At: 4},
	})
	if got != 2 {
		t.Errorf("applied = %d, want 2 (no-op and stale absence skipped)", got)
	}
	if db.Present() != 0 {
		t.Errorf("device still present after absence")
	}
}

// TestApplyBatchEvents: subscribers see one event per state-changing
// mutation, after the shard locks are released (a subscriber may call
// back into the DB).
func TestApplyBatchEvents(t *testing.T) {
	db := New()
	var mu sync.Mutex
	var events []Event
	cancel := db.Subscribe(func(ev Event) {
		db.Present() // must not deadlock: locks are released during notify
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer cancel()

	devA, devB := baseband.BDAddr(0xA1), baseband.BDAddr(0xA2)
	db.ApplyBatch([]Mutation{
		{Op: MutPresence, Dev: devA, Piconet: 1, At: 1},
		{Op: MutPresence, Dev: devA, Piconet: 1, At: 2}, // no-op, no event
		{Op: MutPresence, Dev: devB, Piconet: 2, At: 3},
		{Op: MutAbsence, Dev: devA, Piconet: 1, At: 4},
	})
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	// Per-device order is preserved regardless of shard grouping.
	var aEvents []Event
	for _, ev := range events {
		if ev.Device == devA {
			aEvents = append(aEvents, ev)
		}
	}
	want := []Event{
		{Fix: Fix{Device: devA, Piconet: 1, At: 1}, Present: true},
		{Fix: Fix{Device: devA, Piconet: 1, At: 4}, Present: false},
	}
	if !reflect.DeepEqual(aEvents, want) {
		t.Errorf("device A events = %+v, want %+v", aEvents, want)
	}
}

// recordingJournal captures the journal stream for coalescing checks.
type recordingJournal struct {
	mu   sync.Mutex
	recs []JournalOp
}

func (j *recordingJournal) Record(shard int, op JournalOp, dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) {
	j.mu.Lock()
	j.recs = append(j.recs, op)
	j.mu.Unlock()
}

// TestApplyBatchJournals: every state-changing mutation of a batch
// reaches the journal hook (inside the shard lock), no-ops do not.
func TestApplyBatchJournals(t *testing.T) {
	db := New()
	j := &recordingJournal{}
	db.SetJournal(j)
	dev := baseband.BDAddr(0xC1)
	applied := db.ApplyBatch([]Mutation{
		{Op: MutPresence, Dev: dev, Piconet: 1, At: 1},
		{Op: MutPresence, Dev: dev, Piconet: 1, At: 2}, // no-op
		{Op: MutPresence, Dev: dev, Piconet: 2, At: 3},
		{Op: MutAbsence, Dev: dev, Piconet: 2, At: 4},
	})
	if applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	want := []JournalOp{JournalPresence, JournalPresence, JournalAbsence}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !reflect.DeepEqual(j.recs, want) {
		t.Errorf("journal stream = %v, want %v", j.recs, want)
	}
}

// BenchmarkApplyBatch measures the write path per delta: batched (one
// lock acquisition per shard per frame) versus one-at-a-time.
func BenchmarkApplyBatch(b *testing.B) {
	const frame = 256
	for _, mode := range []string{"single", "batched"} {
		b.Run(mode, func(b *testing.B) {
			db := New()
			muts := randomMutations(frame, 64, 8, 1)
			b.ResetTimer()
			if mode == "single" {
				for i := 0; i < b.N; i++ {
					m := muts[i%frame]
					m.At = sim.Tick(i)
					db.SetPresence(m.Dev, m.Piconet, m.At)
				}
			} else {
				buf := make([]Mutation, frame)
				for i := 0; i < b.N; i += frame {
					copy(buf, muts)
					for k := range buf {
						buf[k].At = sim.Tick(i + k)
						buf[k].Op = MutPresence
					}
					db.ApplyBatch(buf)
				}
			}
		})
	}
}
