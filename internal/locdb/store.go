package locdb

import (
	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// Store is the pluggable storage engine behind the BIPS location
// service. The in-memory sharded DB of this package is the canonical
// implementation; internal/storage wraps it with a durable write-ahead
// log plus snapshots so a central server can restart without losing
// presence state or history. The serving layer (internal/server) and the
// simulator core both program against this interface, never against a
// concrete backend.
//
// Mutations report whether they changed state: the delta protocol makes
// re-reported presences cheap no-ops, and a durable backend uses the
// report to keep the WAL an exact delta stream instead of logging every
// redundant workstation report.
type Store interface {
	// SetPresence records that dev is present in piconet at tick at.
	SetPresence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool
	// SetAbsence records that dev left piconet at tick at.
	SetAbsence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool
	// Drop removes every trace of the device (logout).
	Drop(dev baseband.BDAddr) bool
	// ApplyBatch applies a validated batch of presence/absence
	// mutations with one lock acquisition per touched shard, returning
	// how many changed state. It is the ingest pipeline's write path; a
	// journaling backend group-commits the whole batch as one coalesced
	// WAL write.
	ApplyBatch(muts []Mutation) int

	// Locate returns the device's current fix.
	Locate(dev baseband.BDAddr) (Fix, error)
	// LocateAt returns the fix whose presence run covers tick at.
	LocateAt(dev baseband.BDAddr, at sim.Tick) (Fix, error)
	// Trajectory returns the fixes whose runs overlap [from, to],
	// oldest first.
	Trajectory(dev baseband.BDAddr, from, to sim.Tick) []Fix
	// History returns the device's full recorded history, oldest first.
	History(dev baseband.BDAddr) []Fix
	// Occupants returns the devices currently in the piconet, ascending.
	Occupants(piconet graph.NodeID) []baseband.BDAddr
	// All returns every current fix, in ascending device order. The
	// returned slice is a shared immutable snapshot: callers must not
	// modify it.
	All() []Fix
	// AllSince returns the changes since the snapshot identified by
	// base (zero or unknown base: a Full snapshot). Slices in the
	// returned delta are shared and immutable.
	AllSince(base SnapToken) AllDelta
	// SnapshotToken returns the token identifying the current full
	// snapshot, for use as a later AllSince base.
	SnapshotToken() SnapToken
	// Present returns the number of devices with a known position.
	Present() int
	// Dump returns every device's full state (current fix plus recorded
	// history), ascending by device. It is the seed for derived indexes
	// (the analytics engine rebuilds its hot interval store from it) and
	// the snapshot source for durable backends.
	Dump() []DeviceDump
	// HistoryLimit reports the per-device history bound, so derived
	// indexes can mirror the same eviction policy.
	HistoryLimit() int

	// Stats returns the activity counters.
	Stats() Stats
	// NumShards reports the backend's shard count.
	NumShards() int
	// Subscribe registers fn for every presence change; the returned
	// function unsubscribes.
	Subscribe(fn func(Event)) (cancel func())
	// SubscribeSink registers a batch-capable consumer: single deltas
	// arrive through OnEvent, whole ApplyBatch frames through one
	// OnEvents call (see Sink for the delivery contract).
	SubscribeSink(s Sink) (cancel func())

	// Close releases backend resources (files, goroutines). The
	// in-memory backend's Close is a no-op.
	Close() error
}

// DB implements Store.
var _ Store = (*DB)(nil)
