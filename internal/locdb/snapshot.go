package locdb

import (
	"sort"

	"bips/internal/baseband"
)

// Incremental merged snapshots.
//
// All() used to re-merge every shard on every call: with a few thousand
// devices that is tens of kilobytes of garbage per status poll, and the
// wire snapshot endpoints poll constantly. The cache below makes the
// quiescent case free and the changed case pay-once:
//
//   - Each shard already maintains a version counter bumped under its
//     write lock. A merged snapshot records the version vector it was
//     built from; the cache is valid exactly while every shard still
//     reports that version. Checking is len(shards) atomic loads.
//   - On mismatch, one caller (serialized by allMu) re-merges the
//     per-shard snapshots and publishes the result. Concurrent callers
//     that lose the race reuse the fresh build.
//   - The last snapRingSize builds are retained in a ring so AllSince
//     can answer "what changed since the snapshot you already hold"
//     with a small delta instead of a full retransmit.
//
// Snapshots are immutable once published and shared between callers:
// neither the fixes slice of All nor the Fixes of a Full delta may be
// modified by the recipient.

// snapRingSize is how many recent merged snapshots are retained for
// delta serving. A client that polls at all regularly is at most one or
// two builds behind; older bases fall back to a full snapshot.
const snapRingSize = 4

// SnapToken identifies a published merged snapshot. Tokens are issued
// from a monotonic counter and are never zero: zero is the "no base"
// token, which always yields a full snapshot. The counter skips zero on
// wrap, so a token never aliases "no base" even after 2^64 builds.
type SnapToken uint64

// AllDelta is the answer to AllSince: the state changes between a base
// snapshot and the current one.
//
// If Full is set the base was unknown (zero, evicted from the ring, or
// from another process) and Fixes holds the complete current state with
// Removed empty. Otherwise Fixes holds devices whose fix appeared or
// changed since the base and Removed the devices dropped since the
// base; applying "upsert Fixes, delete Removed" to the base state
// yields the current state exactly. A delta with Token equal to the
// base means nothing changed.
type AllDelta struct {
	Token   SnapToken
	Full    bool
	Fixes   []Fix
	Removed []baseband.BDAddr
}

// allSnap is one published merged snapshot: the device-sorted fixes and
// the per-shard version vector they were built from.
type allSnap struct {
	token SnapToken
	vers  []uint64
	fixes []Fix
}

// upToDate reports whether s still reflects every shard's current
// version. Lock-free: one atomic load per shard.
func (db *DB) upToDate(s *allSnap) bool {
	for i := range db.shards {
		if db.shards[i].version.Load() != s.vers[i] {
			return false
		}
	}
	return true
}

// allSnapshot returns the current merged snapshot, rebuilding it only
// if some shard changed since the last build.
func (db *DB) allSnapshot() *allSnap {
	if s := db.allCur.Load(); s != nil && db.upToDate(s) {
		return s
	}
	return db.rebuildAll()
}

// rebuildAll re-merges the shards and publishes the result. allMu
// serializes rebuilds so a burst of snapshot queries after one mutation
// pays for a single merge.
func (db *DB) rebuildAll() *allSnap {
	db.allMu.Lock()
	defer db.allMu.Unlock()
	// A concurrent caller may have rebuilt while we waited for the lock.
	if s := db.allCur.Load(); s != nil && db.upToDate(s) {
		return s
	}
	vers := make([]uint64, len(db.shards))
	var fixes []Fix
	for i := range db.shards {
		ss := db.shards[i].snapshot()
		vers[i] = ss.version
		fixes = append(fixes, ss.fixes...)
	}
	sort.Slice(fixes, func(i, j int) bool { return fixes[i].Device < fixes[j].Device })
	db.allToken++
	if db.allToken == 0 { // skip the "no base" token on wrap
		db.allToken = 1
		// Tokens restart, so drop every retained base: a stale ring
		// entry could otherwise alias a reissued token and serve a
		// delta against the wrong snapshot. Pre-wrap pollers get one
		// Full refresh instead.
		for i := range db.allRing {
			db.allRing[i] = nil
		}
	}
	s := &allSnap{token: SnapToken(db.allToken), vers: vers, fixes: fixes}
	db.allCur.Store(s)
	db.allRing[db.allRingAt] = s
	db.allRingAt = (db.allRingAt + 1) % snapRingSize
	return s
}

// SnapshotToken returns the token of the current merged snapshot,
// building one if necessary. All()'s slice and SnapshotToken's token
// taken back-to-back may disagree under concurrent writes; AllSince
// with a zero base returns both atomically.
func (db *DB) SnapshotToken() SnapToken {
	return db.allSnapshot().token
}

// AllSince returns the changes between the snapshot identified by base
// and the current state. A zero or unknown base yields a Full delta.
// When nothing changed (base is still current) the returned delta
// carries the same token and no fixes — and the call performs no
// allocation, so idle pollers are free. The slices in the returned
// delta are shared and immutable.
func (db *DB) AllSince(base SnapToken) AllDelta {
	db.snapshotQueries.Add(1)
	cur := db.allSnapshot()
	if cur.token == base {
		return AllDelta{Token: base}
	}
	var old *allSnap
	if base != 0 {
		db.allMu.Lock()
		for _, s := range db.allRing {
			if s != nil && s.token == base {
				old = s
				break
			}
		}
		db.allMu.Unlock()
	}
	if old == nil {
		return AllDelta{Token: cur.token, Full: true, Fixes: cur.fixes}
	}
	changed, removed := diffFixes(old.fixes, cur.fixes)
	return AllDelta{Token: cur.token, Fixes: changed, Removed: removed}
}

// diffFixes computes the delta from old to cur, both sorted ascending
// by device: fixes that appeared or changed, and devices that vanished.
// One linear merge pass, no maps.
func diffFixes(old, cur []Fix) (changed []Fix, removed []baseband.BDAddr) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i].Device == cur[j].Device:
			if old[i] != cur[j] {
				changed = append(changed, cur[j])
			}
			i++
			j++
		case old[i].Device < cur[j].Device:
			removed = append(removed, old[i].Device)
			i++
		default:
			changed = append(changed, cur[j])
			j++
		}
	}
	for ; i < len(old); i++ {
		removed = append(removed, old[i].Device)
	}
	for ; j < len(cur); j++ {
		changed = append(changed, cur[j])
	}
	return changed, removed
}
