package locdb

import (
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// The BenchmarkLocdb pair measures the campus-scale serving mix — mostly
// Locate queries with a steady trickle of presence deltas, from many
// goroutines at once — against a single-mutex database and a sharded one.
// Run with:
//
//	go test -bench BenchmarkLocdb -cpu 4,8 ./internal/locdb
//
// On >= 4 cores the sharded variant should win clearly: the single mutex
// serializes every delta against every query, while shards only collide
// when two operations hash to the same shard.

func benchmarkLocdb(b *testing.B, shards int) {
	db, err := NewSharded(shards, DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	const devices = 1024
	const rooms = 32
	for i := 0; i < devices; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i)), graph.NodeID(i%rooms), 0)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i*2654435761)%devices)
			if i%2 == 0 {
				// A workstation delta: move the device to another room.
				// Deltas are half the campus-scale mix — every room's
				// workstation reports every cycle — and each one takes
				// the write lock, so this is where the single mutex
				// serializes the whole building. The room formula
				// advances on every revisit of a device so the delta is
				// a real move (map + history mutation), not the
				// unchanged-piconet no-op.
				room := graph.NodeID((i + i/devices) % rooms)
				db.SetPresence(dev, room, sim.Tick(i))
			} else {
				db.Locate(dev)
			}
		}
	})
}

func BenchmarkLocdbSingleMutex(b *testing.B) { benchmarkLocdb(b, 1) }
func BenchmarkLocdbSharded(b *testing.B)     { benchmarkLocdb(b, 16) }

// BenchmarkLocdbSnapshotAll measures the full-database read used by
// administrative snapshot queries. On a quiescent database this is the
// cached merged snapshot: a version-vector check and a shared slice,
// zero allocation — not an O(devices) rebuild per call.
func BenchmarkLocdbSnapshotAll(b *testing.B) {
	db := New()
	for i := 0; i < 1024; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i)), graph.NodeID(i%32), 0)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if got := db.All(); len(got) != 1024 {
				b.Fatalf("All returned %d fixes", len(got))
			}
		}
	})
}

// BenchmarkLocdbSnapshotAllChurn measures All under write churn: every
// iteration moves one device and re-reads, so each call pays the full
// re-merge. This is the bound the cache does NOT help with, kept honest
// next to the quiescent number above.
func BenchmarkLocdbSnapshotAllChurn(b *testing.B) {
	db := New()
	for i := 0; i < 1024; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i)), graph.NodeID(i%32), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i%1024)), graph.NodeID((i+i/1024)%32), sim.Tick(i+1))
		if got := db.All(); len(got) != 1024 {
			b.Fatalf("All returned %d fixes", len(got))
		}
	}
}

// BenchmarkLocdbAllSince measures the incremental snapshot poll: one
// device moves between polls, so each delta re-merges once and then
// diffs two sorted slices to a single changed fix.
func BenchmarkLocdbAllSince(b *testing.B) {
	db := New()
	for i := 0; i < 1024; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i)), graph.NodeID(i%32), 0)
	}
	base := db.SnapshotToken()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i%1024)), graph.NodeID((i+i/1024)%32), sim.Tick(i+1))
		d := db.AllSince(base)
		if d.Full {
			b.Fatalf("base %d evicted from ring after a single rebuild", base)
		}
		base = d.Token
	}
}
