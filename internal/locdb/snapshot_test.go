package locdb_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// deltaClient mirrors server state by applying AllSince deltas, the way
// a remote snapshot poller would.
type deltaClient struct {
	token locdb.SnapToken
	state map[baseband.BDAddr]locdb.Fix
}

func newDeltaClient() *deltaClient {
	return &deltaClient{state: make(map[baseband.BDAddr]locdb.Fix)}
}

func (c *deltaClient) poll(t *testing.T, db *locdb.DB) {
	t.Helper()
	d := db.AllSince(c.token)
	if d.Full {
		if len(d.Removed) != 0 {
			t.Fatalf("full delta carries Removed entries: %v", d.Removed)
		}
		c.state = make(map[baseband.BDAddr]locdb.Fix, len(d.Fixes))
	}
	for _, f := range d.Fixes {
		c.state[f.Device] = f
	}
	for _, dev := range d.Removed {
		if _, ok := c.state[dev]; !ok {
			t.Fatalf("delta removes device %#x the client never had", uint64(dev))
		}
		delete(c.state, dev)
	}
	c.token = d.Token
}

// fixes returns the client state in All() order.
func (c *deltaClient) fixes() []locdb.Fix {
	out := make([]locdb.Fix, 0, len(c.state))
	for _, f := range c.state {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

func checkConverged(t *testing.T, db *locdb.DB, c *deltaClient) {
	t.Helper()
	want := db.All()
	got := c.fixes()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("delta-applied state diverged from full snapshot:\n got %v\nwant %v", got, want)
	}
}

// TestAllSinceParity drives a random mutation script and checks that a
// client applying incremental deltas converges to byte-identical state
// with the full All() rebuild after every poll.
func TestAllSinceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB1B5))
	db, err := locdb.NewSharded(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	client := newDeltaClient()
	const devices = 64
	for step := 0; step < 400; step++ {
		// Mutate: a mix of direct sets, batches, and drops.
		switch rng.Intn(4) {
		case 0: // single presence
			db.SetPresence(baseband.BDAddr(1+rng.Intn(devices)), graph.NodeID(rng.Intn(8)), sim.Tick(step))
		case 1: // single absence
			db.SetAbsence(baseband.BDAddr(1+rng.Intn(devices)), graph.NodeID(rng.Intn(8)), sim.Tick(step))
		case 2: // batch
			n := 1 + rng.Intn(12)
			muts := make([]locdb.Mutation, 0, n)
			for k := 0; k < n; k++ {
				op := locdb.MutPresence
				if rng.Intn(3) == 0 {
					op = locdb.MutAbsence
				}
				muts = append(muts, locdb.Mutation{
					Op:      op,
					Dev:     baseband.BDAddr(1 + rng.Intn(devices)),
					Piconet: graph.NodeID(rng.Intn(8)),
					At:      sim.Tick(step),
				})
			}
			db.ApplyBatch(muts)
		case 3: // drop
			db.Drop(baseband.BDAddr(1 + rng.Intn(devices)))
		}
		// Poll sometimes (so several mutations can pile into one delta),
		// and always verify on the polls we do make.
		if rng.Intn(3) == 0 {
			client.poll(t, db)
			checkConverged(t, db, client)
		}
	}
	client.poll(t, db)
	checkConverged(t, db, client)
}

// TestAllSinceUnchanged checks the idle-poller contract: polling with a
// current base returns the same token, no data, and performs no
// allocation. Same for All() on a quiescent database.
func TestAllSinceUnchanged(t *testing.T) {
	db, err := locdb.NewSharded(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.SetPresence(baseband.BDAddr(1+i), graph.NodeID(i%4), sim.Tick(i))
	}

	base := db.SnapshotToken()
	d := db.AllSince(base)
	if d.Token != base || d.Full || len(d.Fixes) != 0 || len(d.Removed) != 0 {
		t.Fatalf("unchanged poll returned %+v, want empty delta with token %d", d, base)
	}

	if allocs := testing.AllocsPerRun(100, func() { db.All() }); allocs != 0 {
		t.Errorf("All() on quiescent db allocates %.1f objects/call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { db.AllSince(base) }); allocs != 0 {
		t.Errorf("AllSince(current) allocates %.1f objects/call, want 0", allocs)
	}

	// The quiescent snapshot is shared: both calls must return the same
	// backing array rather than rebuilding.
	a, b := db.All(), db.All()
	if len(a) != 0 && &a[0] != &b[0] {
		t.Error("quiescent All() calls returned different backing arrays")
	}
}

// TestAllSinceRingEviction checks that a base pushed out of the
// retained ring falls back to a Full snapshot rather than a bogus
// delta.
func TestAllSinceRingEviction(t *testing.T) {
	db, err := locdb.NewSharded(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.SetPresence(1, 0, 1)
	base := db.SnapshotToken()

	// Force more rebuilds than the ring retains.
	for i := 0; i < locdb.SnapRingSizeForTest+2; i++ {
		db.SetPresence(baseband.BDAddr(10+i), 1, sim.Tick(10+i))
		db.All()
	}

	d := db.AllSince(base)
	if !d.Full {
		t.Fatalf("evicted base should force Full delta, got %+v", d)
	}
	if want := db.All(); !reflect.DeepEqual(d.Fixes, want) {
		t.Fatalf("full delta fixes = %v, want %v", d.Fixes, want)
	}
}

// TestAllSinceTokenWrap drives the token counter across the uint64 wrap
// and checks that (a) zero is skipped — a wrapped token never aliases
// the "no base" sentinel — and (b) delta application stays correct
// across the wrap.
func TestAllSinceTokenWrap(t *testing.T) {
	db, err := locdb.NewSharded(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.SetPresence(1, 0, 1)
	client := newDeltaClient()
	client.poll(t, db)
	checkConverged(t, db, client)

	db.SetSnapTokenForTest(math.MaxUint64 - 1)
	for i := 0; i < 3; i++ {
		db.SetPresence(baseband.BDAddr(2+i), 1, sim.Tick(2+i))
		client.poll(t, db)
		if client.token == 0 {
			t.Fatal("token counter issued the reserved zero token on wrap")
		}
		checkConverged(t, db, client)
	}
	if client.token >= locdb.SnapToken(math.MaxUint64-1) {
		t.Fatalf("token %d did not wrap", client.token)
	}
}
