// Package device models a mobile BIPS user's handheld: the Bluetooth slave
// radio behaviour of the paper's experiments (inquiry-scan windows
// alternating with page-scan windows, per Section 4.1) plus motion over the
// floor plan. A Mobile keeps its position on the shared radio medium up to
// date as its walker moves, which is how workstations' coverage discs gain
// and lose it.
package device

import (
	"fmt"
	"math/rand"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/mobility"
	"bips/internal/page"
	"bips/internal/piconet"
	"bips/internal/radio"
	"bips/internal/sim"
)

// DefaultPositionUpdate is how often a moving device refreshes its position
// on the medium.
const DefaultPositionUpdate = sim.Tick(1600) // 0.5 s

// Config configures a mobile device.
type Config struct {
	// Addr is the device BD_ADDR. Required.
	Addr baseband.BDAddr
	// Walker animates the device. Nil means the device is stationary at
	// Start.
	Walker *mobility.Walker
	// Start is the initial position (used when Walker is nil; otherwise
	// the walker's own position wins).
	Start radio.Point
	// PositionUpdate overrides DefaultPositionUpdate when non-zero.
	PositionUpdate sim.Tick
	// KeepResponding keeps the device answering inquiries after
	// enrollment (used by multi-cell tracking, where neighbour cells
	// must still discover it).
	KeepResponding bool
}

// Mobile is one handheld in the simulation world.
type Mobile struct {
	cfg    Config
	kernel *sim.Kernel
	medium *radio.Medium
	dev    piconet.Device
	stop   func()
}

// New creates the device, registers it on the medium and, if it has a
// walker, starts position updates. rng seeds the radio phases.
func New(k *sim.Kernel, medium *radio.Medium, cfg Config, rng *rand.Rand) (*Mobile, error) {
	if !cfg.Addr.Valid() {
		return nil, fmt.Errorf("device: invalid address %v", cfg.Addr)
	}
	if cfg.PositionUpdate == 0 {
		cfg.PositionUpdate = DefaultPositionUpdate
	}
	offset := sim.Tick(rng.Int63n(int64(2 * baseband.TInquiryScanTicks)))
	m := &Mobile{
		cfg:    cfg,
		kernel: k,
		medium: medium,
		dev: piconet.Device{
			Slave: inquiry.NewSlave(inquiry.SlaveConfig{
				Addr:           cfg.Addr,
				ClockOffset:    offset,
				ScanPhase:      baseband.FreqIndex(rng.Intn(baseband.NumInquiryFreqs)),
				Mode:           inquiry.ScanAlternating,
				KeepResponding: cfg.KeepResponding,
			}),
			Scanner: page.Scanner{
				Addr:                  cfg.Addr,
				ClockOffset:           offset,
				AlternatesWithInquiry: true,
				Connectable:           true,
			},
		},
	}
	pos := cfg.Start
	if cfg.Walker != nil {
		pos = cfg.Walker.At(k.Now())
	}
	medium.Place(radio.Station{Addr: cfg.Addr, Pos: pos})
	if cfg.Walker != nil {
		m.stop = k.Ticker(cfg.PositionUpdate, m.tick)
	}
	return m, nil
}

func (m *Mobile) tick(k *sim.Kernel) {
	m.medium.Move(m.cfg.Addr, m.cfg.Walker.At(k.Now()))
}

// Addr returns the device address.
func (m *Mobile) Addr() baseband.BDAddr { return m.cfg.Addr }

// Radio returns the device's radio roles for attachment to controllers.
func (m *Mobile) Radio() piconet.Device { return m.dev }

// Position returns the device's current position on the medium.
func (m *Mobile) Position() (radio.Point, bool) {
	return m.medium.Position(m.cfg.Addr)
}

// Remove stops position updates and removes the device from the medium
// (the user powered the handheld off or left the building).
func (m *Mobile) Remove() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
	m.medium.Remove(m.cfg.Addr)
}
