package device

import (
	"math/rand"
	"testing"

	"bips/internal/mobility"
	"bips/internal/radio"
	"bips/internal/sim"
)

func TestNewValidation(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	rng := rand.New(rand.NewSource(1))
	if _, err := New(k, med, Config{Addr: 0}, rng); err == nil {
		t.Error("zero address accepted")
	}
}

func TestStationaryDevice(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	rng := rand.New(rand.NewSource(1))
	m, err := New(k, med, Config{Addr: 0xB1, Start: radio.Point{X: 3, Y: 4}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := m.Position()
	if !ok || pos != (radio.Point{X: 3, Y: 4}) {
		t.Errorf("position = %v, %v", pos, ok)
	}
	k.RunUntil(60 * sim.TicksPerSecond)
	if pos, _ := m.Position(); pos != (radio.Point{X: 3, Y: 4}) {
		t.Errorf("stationary device moved to %v", pos)
	}
	if m.Addr() != 0xB1 {
		t.Errorf("Addr = %v", m.Addr())
	}
	if m.Radio().Addr() != 0xB1 {
		t.Errorf("radio addr = %v", m.Radio().Addr())
	}
}

func TestWalkingDeviceUpdatesMedium(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	rng := rand.New(rand.NewSource(2))
	w, err := mobility.NewWalker(mobility.WalkerConfig{
		Bounds: mobility.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, med, Config{Addr: 0xB1, Walker: w}, rng)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := m.Position()
	k.RunUntil(120 * sim.TicksPerSecond)
	end, ok := m.Position()
	if !ok {
		t.Fatal("device vanished from medium")
	}
	if start.Dist(end) < 0.5 {
		t.Errorf("device did not move: %v -> %v", start, end)
	}
}

func TestRemove(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	rng := rand.New(rand.NewSource(3))
	w, err := mobility.NewWalker(mobility.WalkerConfig{
		Bounds: mobility.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(k, med, Config{Addr: 0xB1, Walker: w}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.Remove()
	if _, ok := m.Position(); ok {
		t.Error("removed device still on medium")
	}
	// Ticker must be stopped: no panic, no re-registration.
	k.RunUntil(30 * sim.TicksPerSecond)
	if _, ok := med.Position(0xB1); ok {
		t.Error("removed device reappeared on medium")
	}
}

func TestRadioRolesConfigured(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	rng := rand.New(rand.NewSource(4))
	m, err := New(k, med, Config{Addr: 0xB1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dev := m.Radio()
	if dev.Slave == nil {
		t.Fatal("no inquiry slave")
	}
	if !dev.Scanner.Connectable || !dev.Scanner.AlternatesWithInquiry {
		t.Errorf("scanner = %+v, want connectable alternating", dev.Scanner)
	}
}
