package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

type rwBuffer struct {
	bytes.Buffer
}

func TestFrameRoundTrip(t *testing.T) {
	var buf rwBuffer
	c := NewFrameCodec(&buf)
	want, err := MarshalBody(MsgLocate, 42, Locate{Querier: "a", Target: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	// Check the raw header while it is observable.
	raw := buf.Bytes()
	if raw[0] != FrameMagic || raw[1] != FrameVersion {
		t.Fatalf("header = % x", raw[:FrameHeaderLen])
	}
	if n := binary.BigEndian.Uint32(raw[2:]); int(n) != len(raw)-FrameHeaderLen {
		t.Fatalf("length prefix %d, payload %d", n, len(raw)-FrameHeaderLen)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Seq != want.Seq || string(got.Body) != string(want.Body) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestFrameRecvMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  func() []byte
	}{
		{"bad magic", func() []byte {
			return []byte{0x7B, FrameVersion, 0, 0, 0, 0}
		}},
		{"bad version", func() []byte {
			return []byte{FrameMagic, 0x99, 0, 0, 0, 0}
		}},
		{"oversized length", func() []byte {
			b := []byte{FrameMagic, FrameVersion, 0, 0, 0, 0}
			binary.BigEndian.PutUint32(b[2:], MaxFramePayload+1)
			return b
		}},
		{"truncated header", func() []byte {
			return []byte{FrameMagic, FrameVersion, 0}
		}},
		{"truncated payload", func() []byte {
			b := []byte{FrameMagic, FrameVersion, 0, 0, 0, 10}
			return append(b, "half"...)
		}},
		{"payload not json", func() []byte {
			b := []byte{FrameMagic, FrameVersion, 0, 0, 0, 4}
			return append(b, "!!!!"...)
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := NewFrameCodec(&rwBuffer{Buffer: *bytes.NewBuffer(tt.raw())})
			_, err := c.Recv()
			if !errors.Is(err, ErrMalformed) {
				t.Errorf("Recv error = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestFrameRecvCleanEOF(t *testing.T) {
	c := NewFrameCodec(&rwBuffer{})
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("Recv on empty stream = %v, want io.EOF", err)
	}
}

func TestFrameSendOversized(t *testing.T) {
	var buf rwBuffer
	c := NewFrameCodec(&buf)
	huge := Envelope{Type: MsgHello, Body: []byte(`"` + strings.Repeat("x", MaxFramePayload) + `"`)}
	if err := c.Send(huge); err == nil {
		t.Error("oversized send accepted")
	}
}

func TestFrameConcurrentSend(t *testing.T) {
	a, b := net.Pipe()
	sender := NewFrameCodec(a)
	receiver := NewFrameCodec(b)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env, err := MarshalBody(MsgHello, uint64(i), Hello{Station: "s"})
			if err != nil {
				t.Error(err)
				return
			}
			if err := sender.Send(env); err != nil {
				t.Error(err)
			}
		}()
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		env, err := receiver.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if seen[env.Seq] {
			t.Fatalf("seq %d received twice (frame interleaving corruption)", env.Seq)
		}
		seen[env.Seq] = true
	}
	wg.Wait()
	a.Close()
	b.Close()
}

func TestServerTransportSniff(t *testing.T) {
	t.Run("v2", func(t *testing.T) {
		var buf rwBuffer
		if err := NewFrameCodec(&buf).Send(Envelope{Type: MsgRooms, Seq: 1}); err != nil {
			t.Fatal(err)
		}
		tr, err := ServerTransport(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.(*FrameCodec); !ok {
			t.Fatalf("transport = %T, want *FrameCodec", tr)
		}
		env, err := tr.Recv()
		if err != nil || env.Type != MsgRooms {
			t.Fatalf("Recv = %+v, %v", env, err)
		}
	})
	t.Run("v1", func(t *testing.T) {
		var buf rwBuffer
		if err := NewCodec(&buf).Send(Envelope{Type: MsgRooms, Seq: 1}); err != nil {
			t.Fatal(err)
		}
		tr, err := ServerTransport(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.(*Codec); !ok {
			t.Fatalf("transport = %T, want *Codec", tr)
		}
		env, err := tr.Recv()
		if err != nil || env.Type != MsgRooms {
			t.Fatalf("Recv = %+v, %v", env, err)
		}
	})
	t.Run("unknown byte", func(t *testing.T) {
		buf := rwBuffer{Buffer: *bytes.NewBufferString("GET / HTTP/1.1\r\n")}
		tr, err := ServerTransport(&buf)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed", err)
		}
		if tr == nil {
			t.Fatal("no best-effort transport returned")
		}
	})
	t.Run("empty stream", func(t *testing.T) {
		tr, err := ServerTransport(&rwBuffer{})
		if !errors.Is(err, io.EOF) || tr != nil {
			t.Fatalf("= %v, %v; want nil, EOF", tr, err)
		}
	})
}

// TestClientOverBothTransports runs the same client logic over v1 and v2
// transports against a trivial echo-style peer.
func TestClientOverBothTransports(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			a, b := net.Pipe()
			defer a.Close()
			defer b.Close()
			// Peer: answer every request with MsgOK of the same seq.
			go func() {
				tr, err := ServerTransport(b)
				if err != nil {
					return
				}
				for {
					env, err := tr.Recv()
					if err != nil {
						return
					}
					resp, _ := MarshalBody(MsgOK, env.Seq, struct{}{})
					if err := tr.Send(resp); err != nil {
						return
					}
				}
			}()
			var client *Client
			if v2 {
				client = NewClient(NewFrameCodec(a))
			} else {
				client = NewClient(NewCodec(a))
			}
			for i := 0; i < 5; i++ {
				if err := client.Call(MsgHello, Hello{Station: "s", Room: 1}, nil); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
