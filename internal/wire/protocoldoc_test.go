package wire

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// declaredMsgTypes parses wire.go and returns every constant of type
// MsgType with its wire string, so the registry and the documentation are
// checked against the source of truth rather than a hand-maintained list.
func declaredMsgTypes(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "wire.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	consts := make(map[string]string) // const name -> wire string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "MsgType" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Fatalf("MsgType const %s is not a string literal", name.Name)
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatal(err)
				}
				consts[name.Name] = s
			}
		}
	}
	if len(consts) == 0 {
		t.Fatal("found no MsgType constants in wire.go")
	}
	return consts
}

// TestAllMsgTypesComplete: the AllMsgTypes registry must contain exactly
// the MsgType constants declared in wire.go.
func TestAllMsgTypesComplete(t *testing.T) {
	declared := declaredMsgTypes(t)
	inRegistry := make(map[MsgType]bool, len(AllMsgTypes))
	for _, mt := range AllMsgTypes {
		if inRegistry[mt] {
			t.Errorf("AllMsgTypes lists %q twice", mt)
		}
		inRegistry[mt] = true
	}
	for name, s := range declared {
		if !inRegistry[MsgType(s)] {
			t.Errorf("constant %s (%q) missing from AllMsgTypes", name, s)
		}
	}
	if len(AllMsgTypes) != len(declared) {
		t.Errorf("AllMsgTypes has %d entries, wire.go declares %d MsgType constants",
			len(AllMsgTypes), len(declared))
	}
}

// TestProtocolDocCoversAllMsgTypes: docs/PROTOCOL.md must document every
// message type that exists in the implementation — both by wire string in
// the registry table and at least once in running text. Adding a MsgType
// without specifying it is a CI failure by design.
func TestProtocolDocCoversAllMsgTypes(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol spec: %v", err)
	}
	doc := string(raw)
	declared := declaredMsgTypes(t)
	for name, s := range declared {
		// The registry table (section 4) lists each wire string in
		// backticks at the start of a row.
		row := fmt.Sprintf("| `%s` |", s)
		if !strings.Contains(doc, row) {
			t.Errorf("docs/PROTOCOL.md registry table has no row %q for constant %s", row, name)
		}
	}
	// The framing constants must match the spec's stated values.
	if FrameMagic != 0xB2 {
		t.Errorf("FrameMagic = 0x%02X; update docs/PROTOCOL.md section 1.2", FrameMagic)
	}
	if !strings.Contains(doc, "`0xB2`") {
		t.Error("docs/PROTOCOL.md does not document the frame magic 0xB2")
	}
	if MaxFramePayload != 1<<20 {
		t.Errorf("MaxFramePayload = %d; update docs/PROTOCOL.md sections 1.2 and 7", MaxFramePayload)
	}
}
