// Package wire defines the LAN protocol between BIPS workstations, mobile
// clients and the central server: newline-delimited JSON envelopes carrying
// typed request/response bodies over any io.ReadWriter (TCP in the live
// system, net.Pipe in tests and simulations).
//
// Every request envelope carries a sequence number; the peer answers with
// an envelope of the matching sequence number whose type is either the
// request-specific response type or MsgError.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// MsgType tags an envelope.
type MsgType string

// Protocol message types.
const (
	// MsgHello announces a workstation to the server.
	MsgHello MsgType = "hello"
	// MsgPresence reports a presence or absence delta.
	MsgPresence MsgType = "presence"
	// MsgLogin binds a userid to a device.
	MsgLogin MsgType = "login"
	// MsgLogout releases the binding.
	MsgLogout MsgType = "logout"
	// MsgLocate asks for a user's current piconet.
	MsgLocate MsgType = "locate"
	// MsgPath asks for the shortest path to a user.
	MsgPath MsgType = "path"
	// MsgRooms asks for the server's floor plan.
	MsgRooms MsgType = "rooms"
	// MsgOK is the empty success response.
	MsgOK MsgType = "ok"
	// MsgLocateResult answers MsgLocate.
	MsgLocateResult MsgType = "locate.result"
	// MsgPathResult answers MsgPath.
	MsgPathResult MsgType = "path.result"
	// MsgRoomsResult answers MsgRooms.
	MsgRoomsResult MsgType = "rooms.result"
	// MsgError is the failure response.
	MsgError MsgType = "error"
)

// Envelope frames every message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Seq  uint64          `json:"seq"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello announces a workstation and the room it covers.
type Hello struct {
	Station string       `json:"station"`
	Room    graph.NodeID `json:"room"`
}

// Presence is a presence/absence delta from a workstation.
type Presence struct {
	Device  string       `json:"device"`
	Room    graph.NodeID `json:"room"`
	At      sim.Tick     `json:"at"`
	Present bool         `json:"present"`
}

// Login is a mobile client's login request.
type Login struct {
	User     string `json:"user"`
	Password string `json:"password"`
	Device   string `json:"device"`
}

// Logout releases a user's binding.
type Logout struct {
	User string `json:"user"`
}

// Locate asks where a target user is.
type Locate struct {
	Querier string `json:"querier"`
	Target  string `json:"target"`
}

// LocateResult answers Locate.
type LocateResult struct {
	Room     graph.NodeID `json:"room"`
	RoomName string       `json:"roomName"`
	At       sim.Tick     `json:"at"`
}

// PathQuery asks for the shortest path from the querier to the target.
type PathQuery struct {
	Querier string `json:"querier"`
	Target  string `json:"target"`
}

// PathResult answers PathQuery.
type PathResult struct {
	Rooms       []graph.NodeID `json:"rooms"`
	Names       []string       `json:"names"`
	TotalMeters float64        `json:"totalMeters"`
}

// RoomsQuery asks for the server's room list; it has no parameters.
type RoomsQuery struct{}

// RoomInfo describes one room of the server's building.
type RoomInfo struct {
	ID   graph.NodeID `json:"id"`
	Name string       `json:"name"`
	// X, Y are the workstation's floor coordinates in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// RoomsResult answers RoomsQuery with the rooms in ascending id order.
type RoomsResult struct {
	Rooms []RoomInfo `json:"rooms"`
}

// Error is the failure response body.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Message) }

// Error codes.
const (
	CodeDenied     = "denied"
	CodeNotFound   = "not-found"
	CodeBadRequest = "bad-request"
	CodeAuth       = "auth"
	CodeInternal   = "internal"
)

// FormatAddr renders a device address for the wire.
func FormatAddr(a baseband.BDAddr) string { return a.String() }

// ParseAddr parses a wire device address.
func ParseAddr(s string) (baseband.BDAddr, error) { return baseband.ParseBDAddr(s) }

// MarshalBody encodes a typed body into an envelope.
func MarshalBody(t MsgType, seq uint64, body any) (Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("wire: marshal %s: %w", t, err)
	}
	return Envelope{Type: t, Seq: seq, Body: raw}, nil
}

// UnmarshalBody decodes an envelope body into out.
func UnmarshalBody(env Envelope, out any) error {
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("wire: unmarshal %s: %w", env.Type, err)
	}
	return nil
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("wire: connection closed")

// Codec reads and writes envelopes over a stream, one JSON document per
// line. Send and Recv are each safe for one concurrent caller; Send may be
// called from multiple goroutines.
type Codec struct {
	writeMu sync.Mutex
	w       *bufio.Writer
	r       *bufio.Reader
	closer  io.Closer
	closed  bool
}

// NewCodec wraps a stream. If rw implements io.Closer, Close closes it.
func NewCodec(rw io.ReadWriter) *Codec {
	c := &Codec{
		w: bufio.NewWriter(rw),
		r: bufio.NewReader(rw),
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// Send writes one envelope.
func (c *Codec) Send(env Envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(raw); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv reads one envelope, blocking until a full line arrives.
func (c *Codec) Recv() (Envelope, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		if len(line) == 0 {
			return Envelope{}, err
		}
		// A final unterminated line is still decoded.
	}
	var env Envelope
	if uerr := json.Unmarshal(line, &env); uerr != nil {
		return Envelope{}, fmt.Errorf("wire: decode: %w", uerr)
	}
	return env, nil
}

// Close closes the underlying stream when it is closable.
func (c *Codec) Close() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// Client is a synchronous RPC client over a Codec. A single receive loop
// dispatches responses to waiting callers by sequence number, so multiple
// goroutines may issue calls concurrently.
type Client struct {
	codec *Codec

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan Envelope
	err     error
	done    chan struct{}
}

// NewClient starts the receive loop over the codec.
func NewClient(codec *Codec) *Client {
	c := &Client{
		codec:   codec,
		pending: make(map[uint64]chan Envelope),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

func (c *Client) recvLoop() {
	defer close(c.done)
	for {
		env, err := c.codec.Recv()
		if err != nil {
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Seq]
		if ok {
			delete(c.pending, env.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

// Call sends a request and waits for the matching response. A MsgError
// response is converted into a *Error return value.
func (c *Client) Call(t MsgType, body any, out any) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan Envelope, 1)
	c.pending[seq] = ch
	c.mu.Unlock()

	env, err := MarshalBody(t, seq, body)
	if err != nil {
		c.drop(seq)
		return err
	}
	if err := c.codec.Send(env); err != nil {
		c.drop(seq)
		return err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	if resp.Type == MsgError {
		var werr Error
		if err := UnmarshalBody(resp, &werr); err != nil {
			return err
		}
		return &werr
	}
	if out != nil {
		return UnmarshalBody(resp, out)
	}
	return nil
}

func (c *Client) drop(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, seq)
}

// Close tears down the connection and unblocks pending calls.
func (c *Client) Close() error {
	err := c.codec.Close()
	<-c.done
	return err
}
