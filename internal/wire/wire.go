// Package wire defines the LAN protocol between BIPS workstations, mobile
// clients and the central server, in two wire versions over any
// io.ReadWriter (TCP in the live system, net.Pipe in tests and
// simulations):
//
//   - v1: newline-delimited JSON envelopes (Codec) — one document per
//     line, human-debuggable with netcat.
//   - v2: length-prefixed frames (FrameCodec, see frame.go) carrying the
//     same JSON envelopes — cheaper to parse, sized up front, and safe to
//     pipeline aggressively.
//
// A server sniffs the version from the first byte (ServerTransport), so v1
// clients keep working unchanged against a v2 server.
//
// Every request envelope carries a sequence number — the correlation id.
// The peer answers with an envelope of the matching sequence number whose
// type is either the request-specific response type or MsgError. Requests
// may be pipelined: a client may send many requests before reading any
// response, and a v2 server may answer them out of order; the correlation
// id is what ties each response to its request. See docs/PROTOCOL.md for
// the full specification.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// MsgType tags an envelope.
type MsgType string

// Protocol message types.
const (
	// MsgHello announces a workstation to the server.
	MsgHello MsgType = "hello"
	// MsgPresence reports a presence or absence delta.
	MsgPresence MsgType = "presence"
	// MsgLogin binds a userid to a device.
	MsgLogin MsgType = "login"
	// MsgLogout releases the binding.
	MsgLogout MsgType = "logout"
	// MsgLocate asks for a user's current piconet.
	MsgLocate MsgType = "locate"
	// MsgLocateAt asks for a user's piconet at a past instant (the
	// paper's spatio-temporal query over the historical MAP relation).
	MsgLocateAt MsgType = "locate.at"
	// MsgTrajectory asks for a user's movement history over a time
	// window.
	MsgTrajectory MsgType = "trajectory"
	// MsgPath asks for the shortest path to a user.
	MsgPath MsgType = "path"
	// MsgRooms asks for the server's floor plan.
	MsgRooms MsgType = "rooms"
	// MsgBatch carries several requests in one envelope; the response is
	// a MsgBatchResult with one response per request, in order.
	MsgBatch MsgType = "batch"
	// MsgStats asks for the server's metrics snapshot.
	MsgStats MsgType = "stats"
	// MsgIngestHello opens (or resumes) a workstation ingest session;
	// the response is a MsgIngestAck carrying the session's cumulative
	// ack, which tells a reconnecting station where to resume.
	MsgIngestHello MsgType = "ingest.hello"
	// MsgPresenceBatch carries one sequenced frame of presence deltas on
	// an ingest session; the response is a MsgIngestAck.
	MsgPresenceBatch MsgType = "presence.batch"
	// MsgContacts asks which devices shared a room with a target user's
	// device inside a time window (contact tracing); the response is a
	// MsgContactsResult.
	MsgContacts MsgType = "contacts"
	// MsgOccupancy asks for a distinct-device occupancy time series
	// over a room set; the response is a MsgOccupancyResult.
	MsgOccupancy MsgType = "occupancy"
	// MsgDwell asks for a dwell-time distribution, per room or per user
	// device; the response is a MsgDwellResult.
	MsgDwell MsgType = "dwell"
	// MsgSubscribe registers a push-notification subscription on this
	// connection; the response is a MsgOK, after which matching MsgEvent
	// envelopes are pushed until unsubscribe or disconnect.
	MsgSubscribe MsgType = "subscribe"
	// MsgUnsubscribe cancels a subscription by id; the response is a
	// MsgOK.
	MsgUnsubscribe MsgType = "unsubscribe"
	// MsgOK is the empty success response.
	MsgOK MsgType = "ok"
	// MsgLocateResult answers MsgLocate and MsgLocateAt.
	MsgLocateResult MsgType = "locate.result"
	// MsgTrajectoryResult answers MsgTrajectory.
	MsgTrajectoryResult MsgType = "trajectory.result"
	// MsgPathResult answers MsgPath.
	MsgPathResult MsgType = "path.result"
	// MsgRoomsResult answers MsgRooms.
	MsgRoomsResult MsgType = "rooms.result"
	// MsgBatchResult answers MsgBatch.
	MsgBatchResult MsgType = "batch.result"
	// MsgStatsResult answers MsgStats.
	MsgStatsResult MsgType = "stats.result"
	// MsgIngestAck answers MsgIngestHello and MsgPresenceBatch with the
	// session's cumulative ack.
	MsgIngestAck MsgType = "ingest.ack"
	// MsgContactsResult answers MsgContacts.
	MsgContactsResult MsgType = "contacts.result"
	// MsgOccupancyResult answers MsgOccupancy.
	MsgOccupancyResult MsgType = "occupancy.result"
	// MsgDwellResult answers MsgDwell.
	MsgDwellResult MsgType = "dwell.result"
	// MsgEvent is a server push notification on a subscription. It is
	// not a response: its correlation id is always 0 and it may arrive
	// between any two responses on the connection.
	MsgEvent MsgType = "event"
	// MsgError is the failure response.
	MsgError MsgType = "error"
)

// AllMsgTypes lists every message type of the protocol, requests first,
// then responses. It is the registry docs/PROTOCOL.md is checked against
// (see protocoldoc_test.go); keep it in sync with the constant block
// above — a test parses this file's AST and fails if a MsgType constant is
// missing here.
var AllMsgTypes = []MsgType{
	MsgHello, MsgPresence, MsgLogin, MsgLogout, MsgLocate, MsgLocateAt,
	MsgTrajectory, MsgPath, MsgRooms, MsgBatch, MsgStats,
	MsgIngestHello, MsgPresenceBatch, MsgContacts, MsgOccupancy,
	MsgDwell, MsgSubscribe, MsgUnsubscribe,
	MsgOK, MsgLocateResult, MsgTrajectoryResult, MsgPathResult,
	MsgRoomsResult, MsgBatchResult, MsgStatsResult, MsgIngestAck,
	MsgContactsResult, MsgOccupancyResult, MsgDwellResult,
	MsgEvent, MsgError,
}

// Envelope frames every message.
type Envelope struct {
	Type MsgType         `json:"type"`
	Seq  uint64          `json:"seq"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Hello announces a workstation and the room it covers.
type Hello struct {
	Station string       `json:"station"`
	Room    graph.NodeID `json:"room"`
}

// Presence is a presence/absence delta from a workstation.
type Presence struct {
	Device  string       `json:"device"`
	Room    graph.NodeID `json:"room"`
	At      sim.Tick     `json:"at"`
	Present bool         `json:"present"`
}

// Login is a mobile client's login request.
type Login struct {
	User     string `json:"user"`
	Password string `json:"password"`
	Device   string `json:"device"`
}

// Logout releases a user's binding.
type Logout struct {
	User string `json:"user"`
}

// Locate asks where a target user is.
type Locate struct {
	Querier string `json:"querier"`
	Target  string `json:"target"`
}

// LocateResult answers Locate and LocateAt.
type LocateResult struct {
	Room     graph.NodeID `json:"room"`
	RoomName string       `json:"roomName"`
	At       sim.Tick     `json:"at"`
}

// LocateAt asks where a target user was at a past simulation tick. The
// server answers with the presence run covering the tick: the last fix
// recorded at or before it, as far back as the bounded per-device
// history reaches.
type LocateAt struct {
	Querier string   `json:"querier"`
	Target  string   `json:"target"`
	At      sim.Tick `json:"at"`
}

// TrajectoryQuery asks for a target user's movement over [from, to].
type TrajectoryQuery struct {
	Querier string   `json:"querier"`
	Target  string   `json:"target"`
	From    sim.Tick `json:"from"`
	To      sim.Tick `json:"to"`
}

// TrajectoryStep is one presence run of a trajectory: the user entered
// the room at tick At and stayed until the next step's At (or past the
// window's end, for the last step).
type TrajectoryStep struct {
	Room     graph.NodeID `json:"room"`
	RoomName string       `json:"roomName"`
	At       sim.Tick     `json:"at"`
}

// TrajectoryResult answers TrajectoryQuery, oldest step first. Steps is
// empty when the window is before the recorded history (or empty).
type TrajectoryResult struct {
	Steps []TrajectoryStep `json:"steps"`
}

// PathQuery asks for the shortest path from the querier to the target.
type PathQuery struct {
	Querier string `json:"querier"`
	Target  string `json:"target"`
}

// PathResult answers PathQuery.
type PathResult struct {
	Rooms       []graph.NodeID `json:"rooms"`
	Names       []string       `json:"names"`
	TotalMeters float64        `json:"totalMeters"`
}

// RoomsQuery asks for the server's room list; it has no parameters.
type RoomsQuery struct{}

// RoomInfo describes one room of the server's building.
type RoomInfo struct {
	ID   graph.NodeID `json:"id"`
	Name string       `json:"name"`
	// X, Y are the workstation's floor coordinates in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// RoomsResult answers RoomsQuery with the rooms in ascending id order.
type RoomsResult struct {
	Rooms []RoomInfo `json:"rooms"`
}

// Batch carries several requests in one envelope. Each inner envelope is
// a complete request whose Seq is private to the batch: the server echoes
// it in the matching inner response but correlates only on the outer
// envelope's Seq. Requests are executed sequentially in order; an inner
// failure produces an inner MsgError and does not abort the rest. Nesting
// a MsgBatch inside a Batch is rejected.
type Batch struct {
	Requests []Envelope `json:"requests"`
}

// Add marshals a typed request into the batch. The inner Seq is the
// request's position, so responses can be read back by index.
func (b *Batch) Add(t MsgType, body any) error {
	env, err := MarshalBody(t, uint64(len(b.Requests)), body)
	if err != nil {
		return err
	}
	b.Requests = append(b.Requests, env)
	return nil
}

// BatchResult answers Batch with one response per request, same order.
type BatchResult struct {
	Responses []Envelope `json:"responses"`
}

// Decode unmarshals response i into out (out may be nil for MsgOK
// responses). An inner MsgError becomes a *Error return value, like
// Client.Call.
func (br *BatchResult) Decode(i int, out any) error {
	if i < 0 || i >= len(br.Responses) {
		return fmt.Errorf("wire: batch response %d of %d", i, len(br.Responses))
	}
	resp := br.Responses[i]
	if resp.Type == MsgError {
		var werr Error
		if err := UnmarshalBody(resp, &werr); err != nil {
			return err
		}
		return &werr
	}
	if out != nil {
		return UnmarshalBody(resp, out)
	}
	return nil
}

// StatsQuery asks for the server's metrics snapshot; it has no parameters.
type StatsQuery struct{}

// HistogramStats is the wire form of one latency histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// StatsResult answers StatsQuery: a flat counter map (dotted names, e.g.
// "server.requests.locate" or "locdb.updates") and the request-latency
// histograms in seconds.
type StatsResult struct {
	Counters   map[string]int64          `json:"counters"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// PrintStats renders a StatsResult for terminal consumption: counters in
// sorted order (zero counters elided), then histograms with their
// percentiles in milliseconds. Shared by bips-query -stats and
// bips-loadgen -stats.
func PrintStats(w io.Writer, res StatsResult) {
	names := make([]string, 0, len(res.Counters))
	for name := range res.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if res.Counters[name] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-32s %d\n", name, res.Counters[name])
	}
	hnames := make([]string, 0, len(res.Histograms))
	for name := range res.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	ms := func(s float64) float64 { return s * 1000 }
	for _, name := range hnames {
		h := res.Histograms[name]
		fmt.Fprintf(w, "%-32s count=%d p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms\n",
			name, h.Count, ms(h.P50), ms(h.P90), ms(h.P99), ms(h.Max))
	}
}

// Error is the failure response body.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Message) }

// Error codes.
const (
	CodeDenied     = "denied"
	CodeNotFound   = "not-found"
	CodeBadRequest = "bad-request"
	CodeAuth       = "auth"
	CodeInternal   = "internal"
	// CodeSlowConsumer reports that the connection's subscription event
	// buffer overflowed past the server's drop limit; the server sends
	// it best-effort and disconnects.
	CodeSlowConsumer = "slow-consumer"
)

// FormatAddr renders a device address for the wire.
func FormatAddr(a baseband.BDAddr) string { return a.String() }

// ParseAddr parses a wire device address.
func ParseAddr(s string) (baseband.BDAddr, error) { return baseband.ParseBDAddr(s) }

// MarshalBody encodes a typed body into an envelope.
func MarshalBody(t MsgType, seq uint64, body any) (Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Envelope{}, fmt.Errorf("wire: marshal %s: %w", t, err)
	}
	return Envelope{Type: t, Seq: seq, Body: raw}, nil
}

// UnmarshalBody decodes an envelope body into out.
func UnmarshalBody(env Envelope, out any) error {
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("wire: unmarshal %s: %w", env.Type, err)
	}
	return nil
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("wire: connection closed")

// Codec reads and writes envelopes over a stream, one JSON document per
// line. Send and Recv are each safe for one concurrent caller; Send may be
// called from multiple goroutines.
type Codec struct {
	writeMu sync.Mutex
	w       *bufio.Writer
	r       *bufio.Reader
	closer  io.Closer
	closed  bool
}

// NewCodec wraps a stream. If rw implements io.Closer, Close closes it.
func NewCodec(rw io.ReadWriter) *Codec {
	return newCodec(rw, bufio.NewReader(rw), 0)
}

// NewCodecBuffered is NewCodec with an explicit write-buffer size: how
// many bytes SendPayloadNoFlush can stage before the buffer flushes
// itself. Sizes <= 0 select the bufio default.
func NewCodecBuffered(rw io.ReadWriter, wbuf int) *Codec {
	return newCodec(rw, bufio.NewReader(rw), wbuf)
}

// newCodec builds a Codec over an already-buffered reader, so the
// server-side version sniffer can hand over the reader it peeked into.
// wbuf sizes the write buffer (<= 0: the bufio default).
func newCodec(rw io.ReadWriter, r *bufio.Reader, wbuf int) *Codec {
	c := &Codec{
		w: bufio.NewWriterSize(rw, wbuf),
		r: r,
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// Send writes one envelope.
func (c *Codec) Send(env Envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(raw); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv reads one envelope, blocking until a full line arrives.
func (c *Codec) Recv() (Envelope, error) {
	env, _, err := c.RecvBuf(nil)
	return env, err
}

// Close closes the underlying stream when it is closable.
func (c *Codec) Close() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// Client is a synchronous RPC client over a Transport (v1 Codec or v2
// FrameCodec). A single receive loop dispatches responses to waiting
// callers by sequence number, so multiple goroutines may issue calls
// concurrently — each in-flight call is one pipelined request on the
// shared connection, and out-of-order completion by the server is handled
// transparently.
type Client struct {
	codec Transport

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan callDone
	push    func(Envelope)
	err     error
	done    chan struct{}

	// sendMu guards writers: how many goroutines are currently staging
	// a request on a BatchSender transport. Concurrent pipelined calls
	// group-commit — each stages its frame without flushing and the
	// last one out issues the single Flush — so a burst of requests
	// from many workers leaves in one write(2). A lone caller sees
	// writers drop to zero on every call, i.e. flush-per-send.
	sendMu  sync.Mutex
	writers int
}

// callDone hands a response from the receive loop to the waiting
// caller. buf is the pooled receive buffer the envelope's Body aliases
// (nil on the allocating Transport fallback); the receiver owns it and
// releases it after decoding.
type callDone struct {
	env Envelope
	buf *Buf
}

// doneChanPool recycles the per-call completion channels; a channel is
// repooled only by a caller that provably still owned it (received on
// it, or removed it from pending before the receive loop could).
var doneChanPool = sync.Pool{
	New: func() any { return make(chan callDone, 1) },
}

// NewClient starts the receive loop over the codec.
func NewClient(codec Transport) *Client {
	c := &Client{
		codec:   codec,
		pending: make(map[uint64]chan callDone),
		done:    make(chan struct{}),
	}
	go c.recvLoop()
	return c
}

// SetPushHandler registers fn for server-push envelopes (MsgEvent):
// envelopes that are notifications, not responses, and therefore match
// no pending call. fn runs on the receive loop goroutine, so it must
// not block for long — a stalled handler delays every in-flight
// response on the connection. The envelope's Body may alias a pooled
// receive buffer that is released when fn returns: decode or copy it
// inside the handler, never retain it. Without a handler, push
// envelopes are silently discarded (the pre-subscription behavior).
func (c *Client) SetPushHandler(fn func(Envelope)) {
	c.mu.Lock()
	c.push = fn
	c.mu.Unlock()
}

// Done is closed when the receive loop ends — the server closed the
// connection, the transport failed, or Close was called. Err reports
// why. Event-stream consumers (bips-query subscribe) block on it.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the receive-loop failure, nil while the connection is
// healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Client) recvLoop() {
	defer close(c.done)
	br, fast := c.codec.(BufRecver)
	for {
		var env Envelope
		var buf *Buf
		var err error
		if fast {
			buf = GetBuf()
			env, buf.B, err = br.RecvBuf(buf.B)
		} else {
			env, err = c.codec.Recv()
		}
		if err != nil {
			if buf != nil {
				buf.Release()
			}
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		if env.Type == MsgEvent {
			c.mu.Lock()
			fn := c.push
			c.mu.Unlock()
			if fn != nil {
				fn(env)
			}
			if buf != nil {
				buf.Release()
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Seq]
		if ok {
			delete(c.pending, env.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- callDone{env: env, buf: buf}
		} else if buf != nil {
			buf.Release()
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

// Call sends a request and waits for the matching response. A MsgError
// response is converted into a *Error return value. Bodies that
// implement Appender are encoded straight into a pooled send buffer
// when the transport supports it (pass a pointer to skip even the
// interface-boxing allocation); responses whose out implements
// BodyDecoder are decoded without the encoding/json round trip.
func (c *Client) Call(t MsgType, body any, out any) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := doneChanPool.Get().(chan callDone)
	c.pending[seq] = ch
	c.mu.Unlock()

	if err := c.send(t, seq, body); err != nil {
		c.drop(seq, ch)
		return err
	}
	resp, ok := <-ch
	if !ok {
		// fail() closed the channel; a closed channel is never repooled.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	doneChanPool.Put(ch)
	err := decodeResp(resp.env, out)
	if resp.buf != nil {
		resp.buf.Release()
	}
	return err
}

// send writes the request, preferring the pooled append path. On a
// BatchSender transport the request is staged without flushing and the
// last concurrent sender out flushes for everyone (group commit); the
// flush always runs on the final decrement even after a staging error,
// so a frame another caller staged is never stranded in the buffer.
func (c *Client) send(t MsgType, seq uint64, body any) error {
	bs, batch := c.codec.(BatchSender)
	if !batch {
		return c.sendNow(t, seq, body)
	}
	c.sendMu.Lock()
	c.writers++
	c.sendMu.Unlock()
	err := c.stage(bs, t, seq, body)
	c.sendMu.Lock()
	c.writers--
	last := c.writers == 0
	c.sendMu.Unlock()
	if last {
		if ferr := bs.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// stage encodes the request into the transport's write buffer without
// flushing. Appender bodies on this package's own codecs encode in
// place — no pooled buffer, no copy; everything else goes through a
// pooled buffer and SendPayloadNoFlush.
func (c *Client) stage(bs BatchSender, t MsgType, seq uint64, body any) error {
	if a, ok := body.(Appender); ok {
		switch cc := bs.(type) {
		case *FrameCodec:
			return cc.sendAppendNoFlush(t, seq, a)
		case *Codec:
			return cc.sendAppendNoFlush(t, seq, a)
		}
	}
	buf := GetBuf()
	defer buf.Release()
	if a, ok := body.(Appender); ok {
		buf.B = AppendEnvelope(buf.B, t, seq, a)
	} else {
		env, err := MarshalBody(t, seq, body)
		if err != nil {
			return err
		}
		buf.B = AppendEnvelopeRaw(buf.B, env)
	}
	return bs.SendPayloadNoFlush(buf.B)
}

// sendNow is the flush-per-send path for foreign transports that
// implement none of the batching interfaces.
func (c *Client) sendNow(t MsgType, seq uint64, body any) error {
	if a, ok := body.(Appender); ok {
		if as, ok := c.codec.(AppendSender); ok {
			return as.SendAppend(t, seq, a)
		}
	}
	env, err := MarshalBody(t, seq, body)
	if err != nil {
		return err
	}
	if ps, ok := c.codec.(PayloadSender); ok {
		buf := GetBuf()
		defer buf.Release()
		buf.B = AppendEnvelopeRaw(buf.B, env)
		return ps.SendPayload(buf.B)
	}
	return c.codec.Send(env)
}

// decodeResp decodes a response envelope into out; env.Body may alias
// a pooled buffer, so everything is copied out before the caller
// releases it (both UnmarshalBody and DecodeBody copy).
func decodeResp(env Envelope, out any) error {
	if env.Type == MsgError {
		var werr Error
		if err := UnmarshalBody(env, &werr); err != nil {
			return err
		}
		return &werr
	}
	if out == nil {
		return nil
	}
	if d, ok := out.(BodyDecoder); ok && d.DecodeBody(env.Body) {
		return nil
	}
	return UnmarshalBody(env, out)
}

// drop abandons a pending call after a send failure. The channel is
// repooled only when the call was still pending — otherwise the receive
// loop owns it and may still deliver into its buffered slot.
func (c *Client) drop(seq uint64, ch chan callDone) {
	c.mu.Lock()
	_, mine := c.pending[seq]
	delete(c.pending, seq)
	c.mu.Unlock()
	if mine {
		doneChanPool.Put(ch)
	}
}

// Close tears down the connection and unblocks pending calls.
func (c *Client) Close() error {
	err := c.codec.Close()
	<-c.done
	return err
}
