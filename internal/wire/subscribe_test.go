package wire

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"bips/internal/graph"
)

func validSubscribe() Subscribe {
	return Subscribe{
		ID:      "lab-door",
		Querier: "alice",
		Filter:  SubFilter{Kind: FilterRoom, Room: 4},
	}
}

func TestSubscribeValidate(t *testing.T) {
	ok := validSubscribe()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid subscribe rejected: %v", err)
	}
	// Every filter kind has a valid shape.
	valid := map[string]SubFilter{
		"all":       {Kind: FilterAll},
		"device":    {Kind: FilterDevice, Target: "bob"},
		"room":      {Kind: FilterRoom, Room: 2},
		"zone":      {Kind: FilterZone, Target: "bob", Rooms: []graph.NodeID{1, 2, 3}},
		"occupancy": {Kind: FilterOccupancy, Room: 2, Threshold: 3},
	}
	for name, f := range valid {
		s := validSubscribe()
		s.Filter = f
		if err := s.Validate(); err != nil {
			t.Errorf("%s filter rejected: %v", name, err)
		}
	}

	cases := map[string]func(*Subscribe){
		"empty id":         func(s *Subscribe) { s.ID = "" },
		"oversized id":     func(s *Subscribe) { s.ID = strings.Repeat("x", MaxSubIDLen+1) },
		"empty querier":    func(s *Subscribe) { s.Querier = "" },
		"unknown kind":     func(s *Subscribe) { s.Filter.Kind = "proximity" },
		"empty kind":       func(s *Subscribe) { s.Filter.Kind = "" },
		"device no target": func(s *Subscribe) { s.Filter = SubFilter{Kind: FilterDevice} },
		"zone no target":   func(s *Subscribe) { s.Filter = SubFilter{Kind: FilterZone, Rooms: []graph.NodeID{1}} },
		"zone no rooms":    func(s *Subscribe) { s.Filter = SubFilter{Kind: FilterZone, Target: "bob"} },
		"zone oversized": func(s *Subscribe) {
			s.Filter = SubFilter{Kind: FilterZone, Target: "bob", Rooms: make([]graph.NodeID, MaxZoneRooms+1)}
		},
		"occupancy zero":     func(s *Subscribe) { s.Filter = SubFilter{Kind: FilterOccupancy, Room: 2} },
		"occupancy negative": func(s *Subscribe) { s.Filter = SubFilter{Kind: FilterOccupancy, Room: 2, Threshold: -1} },
	}
	for name, mutate := range cases {
		s := validSubscribe()
		mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		// Invalid requests must classify as malformed so the server
		// answers a bad-request MsgError instead of closing silently.
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestUnsubscribeValidate(t *testing.T) {
	if err := (&Unsubscribe{ID: "lab-door"}).Validate(); err != nil {
		t.Fatalf("valid unsubscribe rejected: %v", err)
	}
	for name, u := range map[string]Unsubscribe{
		"empty id":     {},
		"oversized id": {ID: strings.Repeat("x", MaxSubIDLen+1)},
	} {
		err := u.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestSubscribeFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	codec := NewFrameCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})

	env, err := MarshalBody(MsgSubscribe, 7, validSubscribe())
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(env); err != nil {
		t.Fatal(err)
	}
	got, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgSubscribe || got.Seq != 7 {
		t.Fatalf("roundtrip envelope = %+v", got)
	}
	var s Subscribe
	if err := UnmarshalBody(got, &s); err != nil {
		t.Fatal(err)
	}
	want := validSubscribe()
	if s.ID != want.ID || s.Querier != want.Querier || s.Filter.Kind != want.Filter.Kind || s.Filter.Room != want.Filter.Room {
		t.Fatalf("roundtrip subscribe = %+v, want %+v", s, want)
	}
}

func TestEventFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	codec := NewFrameCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})

	want := Event{
		Sub: "lab-door", Kind: EventEnter,
		Device: "00:00:B0:00:00:02", User: "bob",
		Room: 4, RoomName: "Lab 2", At: 480000,
	}
	// Push envelopes always carry correlation id 0: nothing correlates.
	env, err := MarshalBody(MsgEvent, 0, want)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(env); err != nil {
		t.Fatal(err)
	}
	got, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgEvent || got.Seq != 0 {
		t.Fatalf("roundtrip envelope = %+v", got)
	}
	var e Event
	if err := UnmarshalBody(got, &e); err != nil {
		t.Fatal(err)
	}
	if e != want {
		t.Fatalf("roundtrip event = %+v, want %+v", e, want)
	}
}

// TestProtocolDocSubscribeHexExample: the worked hex example of
// docs/PROTOCOL.md section 9 must be the codec's actual output, byte
// for byte — if the framing or the JSON encoding of the subscription
// messages changes, the spec must change with it.
func TestProtocolDocSubscribeHexExample(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol spec: %v", err)
	}
	doc := string(raw)

	frameHex := func(env Envelope) string {
		var buf bytes.Buffer
		c := NewFrameCodec(struct {
			io.Reader
			io.Writer
		}{&buf, &buf})
		if err := c.Send(env); err != nil {
			t.Fatal(err)
		}
		return hex.Dump(buf.Bytes())
	}

	req, err := MarshalBody(MsgSubscribe, 7, validSubscribe())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := MarshalBody(MsgOK, 7, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	push, err := MarshalBody(MsgEvent, 0, Event{
		Sub: "lab-door", Kind: EventEnter,
		Device: "00:00:B0:00:00:02", User: "bob",
		Room: 4, RoomName: "Lab 2", At: 480000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, dump := range map[string]string{
		"subscribe request": frameHex(req),
		"ok response":       frameHex(resp),
		"event push":        frameHex(push),
	} {
		for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
			if !strings.Contains(doc, line) {
				t.Errorf("docs/PROTOCOL.md section 9 is missing the %s hex line:\n%s", name, line)
			}
		}
	}
}

// FuzzSubscribeDecode throws arbitrary bytes at the subscribe body
// decoder: it must never panic, and anything it accepts and Validate
// passes must survive a marshal/unmarshal roundtrip unchanged.
func FuzzSubscribeDecode(f *testing.F) {
	seed, err := json.Marshal(validSubscribe())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"a","querier":"q","filter":{"kind":"all"}}`))
	f.Add([]byte(`{"id":"a","querier":"q","filter":{"kind":"zone","target":"t","rooms":[1,2]}}`))
	f.Add([]byte(`{"id":"a","querier":"q","filter":{"kind":"occupancy","room":9,"threshold":-3}}`))
	f.Add([]byte(`{"filter":{"rooms":[0]}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s Subscribe
		if err := json.Unmarshal(raw, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		re, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal of accepted subscribe failed: %v", err)
		}
		var s2 Subscribe
		if err := json.Unmarshal(re, &s2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if s2.ID != s.ID || s2.Querier != s.Querier || s2.Filter.Kind != s.Filter.Kind ||
			s2.Filter.Target != s.Filter.Target || s2.Filter.Room != s.Filter.Room ||
			s2.Filter.Threshold != s.Filter.Threshold || len(s2.Filter.Rooms) != len(s.Filter.Rooms) {
			t.Fatalf("roundtrip changed subscribe: %+v vs %+v", s, s2)
		}
		if err := s2.Validate(); err != nil {
			t.Fatalf("roundtrip broke validity: %v", err)
		}
	})
}

// FuzzEventDecode throws arbitrary bytes at the event body decoder —
// the message clients decode from the wire, so a hostile server must
// not be able to panic a subscriber — and checks accepted events
// roundtrip unchanged.
func FuzzEventDecode(f *testing.F) {
	seed, err := json.Marshal(Event{
		Sub: "s", Kind: EventEnter, Device: "00:00:B0:00:00:01",
		User: "alice", Room: 3, RoomName: "Lab", At: 100,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"sub":"s","kind":"occupancy-rise","room":2,"at":1,"occupancy":5}`))
	f.Add([]byte(`{"kind":"zone-exit","at":-1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return
		}
		re, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal of decoded event failed: %v", err)
		}
		var e2 Event
		if err := json.Unmarshal(re, &e2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if e2 != e {
			t.Fatalf("roundtrip changed event: %+v vs %+v", e, e2)
		}
	})
}
