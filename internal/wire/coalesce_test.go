package wire

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
)

// coalescable is the union of everything a flush-coalescing writer may
// call on a codec. Both Codec and FrameCodec satisfy it; the unexported
// sendAppendNoFlush is reachable here because this test lives in
// package wire.
type coalescable interface {
	Send(Envelope) error
	AppendSender
	BatchSender
	sendAppendNoFlush(t MsgType, seq uint64, body Appender) error
}

// coalesceOp is one step of a differential byte-stream run.
type coalesceOp struct {
	kind    int // 0 Send, 1 SendPayload, 2 SendAppend, 3 Flush
	env     Envelope
	payload []byte
	body    Appender
	seq     uint64
}

// coalescePlan builds a deterministic interleaving of envelope sends,
// raw payload sends, append-encoded sends and explicit flushes. Payload
// sizes range past any write-buffer size used by the tests so the
// coalesced run also exercises bufio's self-flush spill.
func coalescePlan(seed int64, n int) []coalesceOp {
	rng := rand.New(rand.NewSource(seed))
	plan := make([]coalesceOp, 0, n)
	for i := 0; i < n; i++ {
		op := coalesceOp{kind: rng.Intn(4), seq: uint64(i + 1)}
		switch op.kind {
		case 0:
			op.env = Envelope{
				Type: MsgLocate,
				Seq:  op.seq,
				Body: []byte(fmt.Sprintf(`{"querier":"alice","target":"u%d"}`, i)),
			}
		case 1:
			pad := bytes.Repeat([]byte{'x'}, rng.Intn(200))
			op.payload = AppendEnvelope(nil, MsgEvent, op.seq, rawPad(pad))
		case 2:
			op.body = Locate{Querier: "alice", Target: fmt.Sprintf("user-%d", rng.Intn(1000))}
		}
		plan = append(plan, op)
	}
	return plan
}

// rawPad is a throwaway Appender whose body is a JSON string of pad.
type rawPad []byte

func (p rawPad) AppendTo(buf []byte) []byte {
	return appendJSONString(buf, string(p))
}

// runCoalescePlan executes plan against c. In coalesced mode payload
// and append sends stage without flushing, exactly as the server's
// writer loop drives them; envelope Sends and explicit Flush ops behave
// identically in both modes.
func runCoalescePlan(t *testing.T, c coalescable, plan []coalesceOp, coalesce bool) {
	t.Helper()
	for i, op := range plan {
		var err error
		switch op.kind {
		case 0:
			err = c.Send(op.env)
		case 1:
			if coalesce {
				err = c.SendPayloadNoFlush(op.payload)
			} else {
				err = c.SendPayload(op.payload)
			}
		case 2:
			if coalesce {
				err = c.sendAppendNoFlush(MsgLocate, op.seq, op.body)
			} else {
				err = c.SendAppend(MsgLocate, op.seq, op.body)
			}
		case 3:
			err = c.Flush()
		}
		if err != nil {
			t.Fatalf("op %d (kind %d, coalesce=%v): %v", i, op.kind, coalesce, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("final flush (coalesce=%v): %v", coalesce, err)
	}
}

// TestCoalescedStreamByteIdentical is the differential test for flush
// coalescing: an interleaved sequence of Send / SendPayload /
// SendAppend operations must put byte-for-byte the same stream on the
// wire whether every send flushes or the sends stage and flush lazily.
// Coalescing may only change TCP segmentation, never content — see
// docs/PROTOCOL.md.
func TestCoalescedStreamByteIdentical(t *testing.T) {
	codecs := []struct {
		name string
		mk   func(rw io.ReadWriter, wbuf int) coalescable
	}{
		{"v2", func(rw io.ReadWriter, wbuf int) coalescable { return NewFrameCodecBuffered(rw, wbuf) }},
		{"v1", func(rw io.ReadWriter, wbuf int) coalescable { return NewCodecBuffered(rw, wbuf) }},
	}
	// 64 B forces mid-plan self-flushes; 64 KiB holds everything staged
	// until the explicit flushes.
	for _, wbuf := range []int{64, 64 << 10} {
		for _, tc := range codecs {
			t.Run(fmt.Sprintf("%s/wbuf=%d", tc.name, wbuf), func(t *testing.T) {
				plan := coalescePlan(7, 300)
				var eager, lazy bytes.Buffer
				runCoalescePlan(t, tc.mk(&eager, wbuf), plan, false)
				runCoalescePlan(t, tc.mk(&lazy, wbuf), plan, true)
				a, b := eager.Bytes(), lazy.Bytes()
				if bytes.Equal(a, b) {
					return
				}
				i := 0
				for i < len(a) && i < len(b) && a[i] == b[i] {
					i++
				}
				t.Fatalf("streams diverge at byte %d: eager %d bytes, lazy %d bytes\neager[%d:]: %.80q\nlazy[%d:]:  %.80q",
					i, len(a), len(b), i, a[i:], i, b[i:])
			})
		}
	}
}

// TestClientGroupCommitConcurrent hammers the Client's group-commit
// staging from many goroutines over one connection: every request must
// still arrive intact (frames stay atomic under concurrent staging) and
// every call must complete with its own response.
func TestClientGroupCommitConcurrent(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		tr, err := ServerTransport(srvConn)
		if err != nil {
			return
		}
		for {
			env, err := tr.Recv()
			if err != nil {
				return
			}
			res := Envelope{Type: MsgLocateResult, Seq: env.Seq, Body: []byte(`{"room":1,"roomName":"r","at":0}`)}
			if err := tr.Send(res); err != nil {
				return
			}
		}
	}()

	client := NewClient(NewFrameCodec(cliConn))
	const workers, calls = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var res LocateResult
				q := Locate{Querier: "alice", Target: fmt.Sprintf("w%d-c%d", w, i)}
				if err := client.Call(MsgLocate, q, &res); err != nil {
					errs <- fmt.Errorf("worker %d call %d: %w", w, i, err)
					return
				}
				if res.Room != 1 {
					errs <- fmt.Errorf("worker %d call %d: room = %d, want 1", w, i, res.Room)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	client.Close()
	srvConn.Close()
	<-serveDone
}
