// Zero-allocation encode/decode path for the hot message types.
//
// The encoding/json round trip dominates the serving-tier allocation
// profile (BENCH_PR4.json: 46 allocs per pipelined locate), so the hot
// types carry hand-rolled append-style encoders (AppendTo) and strict
// decoders (DecodeBody) that are verified byte-identical to
// encoding/json by differential and fuzz tests (append_test.go). The
// rules that keep this safe:
//
//   - AppendTo output MUST equal json.Marshal output byte for byte —
//     including encoding/json's HTML escaping of '<', '>', '&' — so v1
//     and v2 frames are indistinguishable from the marshaled form and
//     docs/PROTOCOL.md's hex examples stay valid.
//   - DecodeBody accepts exactly the canonical encoding this package
//     produces and reports false on anything else; callers MUST fall
//     back to UnmarshalBody so foreign-but-valid JSON keeps working.
//   - Pooled buffers (Buf) have a single owner at any instant. The
//     owner — and only the owner — calls Release exactly once, after
//     which the buffer and any Envelope.Body aliasing it are invalid.
//     See docs/ARCHITECTURE.md, "Buffer ownership and release rules".
package wire

import (
	"encoding/json"
	"strconv"
	"sync"
	"unicode/utf8"

	"bips/internal/graph"
	"bips/internal/sim"
)

// Appender is implemented by message bodies that can encode themselves
// by appending their canonical JSON to buf, byte-identical to
// json.Marshal, without allocating (beyond growing buf).
type Appender interface {
	AppendTo(buf []byte) []byte
}

// BodyDecoder is implemented by message bodies that can decode the
// canonical encoding this package produces without allocating
// intermediate state. DecodeBody reports false when body is not in
// canonical form — the caller must then fall back to UnmarshalBody,
// which accepts any valid JSON. On false the receiver may be partially
// overwritten.
type BodyDecoder interface {
	DecodeBody(body []byte) bool
}

// Buf is a pooled frame buffer. Get one with GetBuf, append into B
// (always through the returned slice: B = append(B, ...)), and Release
// it when — and only when — you are its current owner and are done with
// every view into it. Ownership transfers are explicit and linear:
// reader → handler for request buffers, handler → writer for response
// buffers. Double release or use after release corrupts the pool; the
// -race aliasing tests exist to catch exactly that.
type Buf struct {
	B []byte
}

// maxPooledBuf bounds what Release returns to the pool, so one huge
// frame (a 4096-delta presence batch) does not pin megabytes forever.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, 512)} },
}

// GetBuf returns an empty pooled buffer. The caller becomes its owner.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool. After Release the buffer, and
// every byte slice or Envelope.Body that aliased it, must not be
// touched.
func (b *Buf) Release() {
	if cap(b.B) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, replicating
// encoding/json's escaping exactly: HTML escaping on ('<', '>', '&'
// become \u003c, \u003e, \u0026), short escapes for quote, backslash,
// newline, carriage return and tab, \u00xx for other control bytes,
// U+2028/U+2029 escaped, and each invalid UTF-8 byte encoded as the
// replacement-character escape \ufffd.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\':
				buf = append(buf, '\\', '\\')
			case '"':
				buf = append(buf, '\\', '"')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}

// AppendEnvelope appends the canonical encoding of an envelope carrying
// body. A nil body yields an envelope without a body key, exactly like
// marshaling an Envelope with an empty Body (omitempty). Pass body as a
// pointer so the interface conversion does not allocate.
func AppendEnvelope(buf []byte, t MsgType, seq uint64, body Appender) []byte {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, string(t))
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, seq, 10)
	if body != nil {
		buf = append(buf, `,"body":`...)
		buf = body.AppendTo(buf)
	}
	return append(buf, '}')
}

// AppendEnvelopePrefix appends everything of the canonical envelope
// encoding up to and including `,"body":`. The caller appends the body
// value with the concrete type's AppendTo and a closing '}' — the
// spelled-out form of AppendEnvelope for hot paths where boxing the
// body into the Appender interface would force a stack-allocated
// response onto the heap.
func AppendEnvelopePrefix(buf []byte, t MsgType, seq uint64) []byte {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, string(t))
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, seq, 10)
	return append(buf, `,"body":`...)
}

// AppendEnvelopeRaw appends the canonical encoding of an envelope whose
// body is already-encoded JSON (or absent when empty), byte-identical
// to json.Marshal of the same Envelope when env.Body is compact.
func AppendEnvelopeRaw(buf []byte, env Envelope) []byte {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, string(env.Type))
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, env.Seq, 10)
	if len(env.Body) > 0 {
		buf = append(buf, `,"body":`...)
		buf = append(buf, env.Body...)
	}
	return append(buf, '}')
}

// EmptyBody is the Appender for bodies with no fields — the MsgOK
// response.
type EmptyBody struct{}

// AppendTo implements Appender.
func (EmptyBody) AppendTo(buf []byte) []byte { return append(buf, '{', '}') }

// AppendTo implements Appender.
func (q Locate) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"querier":`...)
	buf = appendJSONString(buf, q.Querier)
	buf = append(buf, `,"target":`...)
	buf = appendJSONString(buf, q.Target)
	return append(buf, '}')
}

// AppendTo implements Appender.
func (q LocateAt) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"querier":`...)
	buf = appendJSONString(buf, q.Querier)
	buf = append(buf, `,"target":`...)
	buf = appendJSONString(buf, q.Target)
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, int64(q.At), 10)
	return append(buf, '}')
}

// AppendTo implements Appender.
func (r LocateResult) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"room":`...)
	buf = strconv.AppendInt(buf, int64(r.Room), 10)
	buf = append(buf, `,"roomName":`...)
	buf = appendJSONString(buf, r.RoomName)
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, int64(r.At), 10)
	return append(buf, '}')
}

// AppendTo implements Appender.
func (p Presence) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"device":`...)
	buf = appendJSONString(buf, p.Device)
	buf = append(buf, `,"room":`...)
	buf = strconv.AppendInt(buf, int64(p.Room), 10)
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, int64(p.At), 10)
	buf = append(buf, `,"present":`...)
	if p.Present {
		buf = append(buf, `true`...)
	} else {
		buf = append(buf, `false`...)
	}
	return append(buf, '}')
}

// AppendTo implements Appender.
func (b PresenceBatch) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"session":`...)
	buf = appendJSONString(buf, b.Session)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, b.Seq, 10)
	buf = append(buf, `,"deltas":`...)
	if b.Deltas == nil {
		buf = append(buf, `null`...)
	} else {
		buf = append(buf, '[')
		for i := range b.Deltas {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = b.Deltas[i].AppendTo(buf)
		}
		buf = append(buf, ']')
	}
	return append(buf, '}')
}

// AppendTo implements Appender.
func (h IngestHello) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"session":`...)
	buf = appendJSONString(buf, h.Session)
	buf = append(buf, `,"station":`...)
	buf = appendJSONString(buf, h.Station)
	buf = append(buf, `,"room":`...)
	buf = strconv.AppendInt(buf, int64(h.Room), 10)
	return append(buf, '}')
}

// AppendTo implements Appender.
func (a IngestAck) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"acked":`...)
	buf = strconv.AppendUint(buf, a.Acked, 10)
	buf = append(buf, `,"applied":`...)
	buf = strconv.AppendInt(buf, int64(a.Applied), 10)
	if a.Rejected != 0 {
		buf = append(buf, `,"rejected":`...)
		buf = strconv.AppendInt(buf, int64(a.Rejected), 10)
	}
	if a.Duplicate {
		buf = append(buf, `,"duplicate":true`...)
	}
	return append(buf, '}')
}

// AppendTo implements Appender.
func (e Event) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"sub":`...)
	buf = appendJSONString(buf, e.Sub)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind)
	if e.Device != "" {
		buf = append(buf, `,"device":`...)
		buf = appendJSONString(buf, e.Device)
	}
	if e.User != "" {
		buf = append(buf, `,"user":`...)
		buf = appendJSONString(buf, e.User)
	}
	buf = append(buf, `,"room":`...)
	buf = strconv.AppendInt(buf, int64(e.Room), 10)
	if e.RoomName != "" {
		buf = append(buf, `,"roomName":`...)
		buf = appendJSONString(buf, e.RoomName)
	}
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	if e.Occupancy != 0 {
		buf = append(buf, `,"occupancy":`...)
		buf = strconv.AppendInt(buf, int64(e.Occupancy), 10)
	}
	return append(buf, '}')
}

// AppendTo implements Appender.
func (e Error) AppendTo(buf []byte) []byte {
	buf = append(buf, `{"code":`...)
	buf = appendJSONString(buf, e.Code)
	buf = append(buf, `,"message":`...)
	buf = appendJSONString(buf, e.Message)
	return append(buf, '}')
}

// DecodeEnvelope parses one frame payload into an Envelope. Canonical
// payloads (the encoding this package itself produces) are parsed
// without allocating: the MsgType is interned and Body ALIASES payload
// — it is valid exactly as long as payload is, which for pooled receive
// buffers means until Release. Anything non-canonical falls back to
// json.Unmarshal, which copies. A payload that is not a JSON envelope
// at all yields ErrMalformed.
func DecodeEnvelope(payload []byte) (Envelope, error) {
	if env, ok := decodeEnvelopeFast(payload); ok {
		return env, nil
	}
	var env Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// decodeEnvelopeFast parses exactly the canonical envelope encoding:
// {"type":"...","seq":N} or {"type":"...","seq":N,"body":...} with an
// escape-free known type, no surrounding whitespace, and a valid JSON
// body. ok is false on any deviation.
func decodeEnvelopeFast(p []byte) (env Envelope, ok bool) {
	// Tolerate the v1 line terminator so both codecs can share this.
	for len(p) > 0 && (p[len(p)-1] == '\n' || p[len(p)-1] == '\r') {
		p = p[:len(p)-1]
	}
	const pre = `{"type":"`
	if len(p) < len(pre)+2 || string(p[:len(pre)]) != pre {
		return Envelope{}, false
	}
	i := len(pre)
	j := i
	for j < len(p) && p[j] != '"' {
		if p[j] == '\\' {
			return Envelope{}, false
		}
		j++
	}
	if j >= len(p) {
		return Envelope{}, false
	}
	t, ok := internMsgType(p[i:j])
	if !ok {
		return Envelope{}, false
	}
	env.Type = t
	i = j + 1
	const seqKey = `,"seq":`
	if len(p)-i < len(seqKey)+2 || string(p[i:i+len(seqKey)]) != seqKey {
		return Envelope{}, false
	}
	i += len(seqKey)
	if p[i] < '0' || p[i] > '9' {
		return Envelope{}, false
	}
	// JSON forbids leading zeros: "00" or "01" is not a number.
	if p[i] == '0' && i+1 < len(p) && p[i+1] >= '0' && p[i+1] <= '9' {
		return Envelope{}, false
	}
	var seq uint64
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		d := uint64(p[i] - '0')
		if seq > (^uint64(0)-d)/10 {
			return Envelope{}, false
		}
		seq = seq*10 + d
		i++
	}
	env.Seq = seq
	if i == len(p)-1 && p[i] == '}' {
		return env, true
	}
	const bodyKey = `,"body":`
	if len(p)-i < len(bodyKey)+2 || string(p[i:i+len(bodyKey)]) != bodyKey {
		return Envelope{}, false
	}
	i += len(bodyKey)
	if p[len(p)-1] != '}' {
		return Envelope{}, false
	}
	body := p[i : len(p)-1]
	// canonicalJSONValue is a cheap certain-yes scan over the dense
	// encoding this package emits; json.Valid is the authority for
	// everything it is unsure about, so the accepted set is identical.
	if len(body) == 0 || (!canonicalJSONValue(body) && !json.Valid(body)) {
		return Envelope{}, false
	}
	env.Body = json.RawMessage(body)
	return env, true
}

// canonicalJSONValue reports whether b is certainly one complete JSON
// value in the dense canonical encoding this package emits: no
// whitespace, escape-free strings, exact number grammar. A true result
// implies json.Valid(b); false means only "not certainly canonical" —
// valid-but-foreign JSON (escapes, whitespace, deep nesting) also
// reports false, and the caller must let json.Valid decide. It exists
// because json.Valid's byte-at-a-time state machine dominated the frame
// decode profile, and nearly every frame on the wire is canonical.
func canonicalJSONValue(b []byte) bool {
	i, ok := scanCanonicalValue(b, 0, 0)
	return ok && i == len(b)
}

// maxCanonicalDepth bounds scanCanonicalValue's recursion; deeper
// nesting falls back to json.Valid's iterative scanner.
const maxCanonicalDepth = 64

// scanCanonicalValue scans one canonical JSON value starting at b[i]
// and returns the index just past it. ok is false whenever the input
// is not certainly canonical.
func scanCanonicalValue(b []byte, i, depth int) (int, bool) {
	if depth > maxCanonicalDepth || i >= len(b) {
		return 0, false
	}
	switch c := b[i]; {
	case c == '{':
		i++
		if i < len(b) && b[i] == '}' {
			return i + 1, true
		}
		for {
			var ok bool
			i, ok = scanCanonicalString(b, i)
			if !ok || i >= len(b) || b[i] != ':' {
				return 0, false
			}
			i, ok = scanCanonicalValue(b, i+1, depth+1)
			if !ok || i >= len(b) {
				return 0, false
			}
			switch b[i] {
			case ',':
				i++
			case '}':
				return i + 1, true
			default:
				return 0, false
			}
		}
	case c == '[':
		i++
		if i < len(b) && b[i] == ']' {
			return i + 1, true
		}
		for {
			var ok bool
			i, ok = scanCanonicalValue(b, i, depth+1)
			if !ok || i >= len(b) {
				return 0, false
			}
			switch b[i] {
			case ',':
				i++
			case ']':
				return i + 1, true
			default:
				return 0, false
			}
		}
	case c == '"':
		return scanCanonicalString(b, i)
	case c == 't':
		return scanCanonicalLit(b, i, "true")
	case c == 'f':
		return scanCanonicalLit(b, i, "false")
	case c == 'n':
		return scanCanonicalLit(b, i, "null")
	case c == '-' || ('0' <= c && c <= '9'):
		return scanCanonicalNumber(b, i)
	}
	return 0, false
}

// scanCanonicalString scans an escape-free JSON string at b[i]. A
// backslash is not an error, just uncertainty — the fallback handles
// escapes. Control bytes below 0x20 are invalid unescaped either way.
func scanCanonicalString(b []byte, i int) (int, bool) {
	if i >= len(b) || b[i] != '"' {
		return 0, false
	}
	for i++; i < len(b); i++ {
		switch c := b[i]; {
		case c == '"':
			return i + 1, true
		case c == '\\' || c < 0x20:
			return 0, false
		}
	}
	return 0, false
}

func scanCanonicalLit(b []byte, i int, lit string) (int, bool) {
	if len(b)-i < len(lit) || string(b[i:i+len(lit)]) != lit {
		return 0, false
	}
	return i + len(lit), true
}

// scanCanonicalNumber scans exactly the JSON number grammar:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
func scanCanonicalNumber(b []byte, i int) (int, bool) {
	if b[i] == '-' {
		if i++; i >= len(b) {
			return 0, false
		}
	}
	switch {
	case b[i] == '0':
		i++
	case '1' <= b[i] && b[i] <= '9':
		for i++; i < len(b) && '0' <= b[i] && b[i] <= '9'; i++ {
		}
	default:
		return 0, false
	}
	if i < len(b) && b[i] == '.' {
		if i++; i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for ; i < len(b) && '0' <= b[i] && b[i] <= '9'; i++ {
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		if i++; i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, false
		}
		for ; i < len(b) && '0' <= b[i] && b[i] <= '9'; i++ {
		}
	}
	return i, true
}

// internMsgType maps an escape-free wire type name onto the shared
// MsgType constant so a decoded envelope does not allocate a fresh
// string per frame. Unknown names report false and force the
// json.Unmarshal fallback, which preserves the decode-anything
// tolerance for foreign or future peers.
func internMsgType(b []byte) (MsgType, bool) {
	switch string(b) {
	case string(MsgHello):
		return MsgHello, true
	case string(MsgPresence):
		return MsgPresence, true
	case string(MsgLogin):
		return MsgLogin, true
	case string(MsgLogout):
		return MsgLogout, true
	case string(MsgLocate):
		return MsgLocate, true
	case string(MsgLocateAt):
		return MsgLocateAt, true
	case string(MsgTrajectory):
		return MsgTrajectory, true
	case string(MsgPath):
		return MsgPath, true
	case string(MsgRooms):
		return MsgRooms, true
	case string(MsgBatch):
		return MsgBatch, true
	case string(MsgStats):
		return MsgStats, true
	case string(MsgIngestHello):
		return MsgIngestHello, true
	case string(MsgPresenceBatch):
		return MsgPresenceBatch, true
	case string(MsgContacts):
		return MsgContacts, true
	case string(MsgOccupancy):
		return MsgOccupancy, true
	case string(MsgDwell):
		return MsgDwell, true
	case string(MsgSubscribe):
		return MsgSubscribe, true
	case string(MsgUnsubscribe):
		return MsgUnsubscribe, true
	case string(MsgOK):
		return MsgOK, true
	case string(MsgLocateResult):
		return MsgLocateResult, true
	case string(MsgTrajectoryResult):
		return MsgTrajectoryResult, true
	case string(MsgPathResult):
		return MsgPathResult, true
	case string(MsgRoomsResult):
		return MsgRoomsResult, true
	case string(MsgBatchResult):
		return MsgBatchResult, true
	case string(MsgStatsResult):
		return MsgStatsResult, true
	case string(MsgIngestAck):
		return MsgIngestAck, true
	case string(MsgContactsResult):
		return MsgContactsResult, true
	case string(MsgOccupancyResult):
		return MsgOccupancyResult, true
	case string(MsgDwellResult):
		return MsgDwellResult, true
	case string(MsgEvent):
		return MsgEvent, true
	case string(MsgError):
		return MsgError, true
	}
	return "", false
}

// expectLit matches lit at p[i:] and returns the index past it.
func expectLit(p []byte, i int, lit string) (int, bool) {
	if len(p)-i < len(lit) || string(p[i:i+len(lit)]) != lit {
		return i, false
	}
	return i + len(lit), true
}

// scanPlainString parses a JSON string at p[i:] whose content has no
// escapes (the common case for ids and room names); the returned slice
// aliases p.
func scanPlainString(p []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(p) || p[i] != '"' {
		return nil, i, false
	}
	i++
	j := i
	for j < len(p) && p[j] != '"' {
		if p[j] == '\\' || p[j] < 0x20 {
			return nil, i, false
		}
		j++
	}
	if j >= len(p) {
		return nil, i, false
	}
	return p[i:j], j + 1, true
}

// scanInt parses an optionally-negative decimal integer at p[i:].
func scanInt(p []byte, i int) (v int64, next int, ok bool) {
	neg := false
	if i < len(p) && p[i] == '-' {
		neg = true
		i++
	}
	if i >= len(p) || p[i] < '0' || p[i] > '9' {
		return 0, i, false
	}
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		d := int64(p[i] - '0')
		if v > (1<<62)/10 {
			return 0, i, false
		}
		v = v*10 + d
		i++
	}
	if neg {
		v = -v
	}
	return v, i, true
}

// scanUint parses a decimal unsigned integer at p[i:].
func scanUint(p []byte, i int) (v uint64, next int, ok bool) {
	if i >= len(p) || p[i] < '0' || p[i] > '9' {
		return 0, i, false
	}
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		d := uint64(p[i] - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, i, false
		}
		v = v*10 + d
		i++
	}
	return v, i, true
}

// DecodeBody implements BodyDecoder.
func (q *Locate) DecodeBody(body []byte) bool {
	i, ok := expectLit(body, 0, `{"querier":`)
	if !ok {
		return false
	}
	qr, i, ok := scanPlainString(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"target":`)
	if !ok {
		return false
	}
	tg, i, ok := scanPlainString(body, i)
	if !ok || i != len(body)-1 || body[i] != '}' {
		return false
	}
	q.Querier = string(qr)
	q.Target = string(tg)
	return true
}

// DecodeBody implements BodyDecoder.
func (q *LocateAt) DecodeBody(body []byte) bool {
	i, ok := expectLit(body, 0, `{"querier":`)
	if !ok {
		return false
	}
	qr, i, ok := scanPlainString(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"target":`)
	if !ok {
		return false
	}
	tg, i, ok := scanPlainString(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"at":`)
	if !ok {
		return false
	}
	at, i, ok := scanInt(body, i)
	if !ok || i != len(body)-1 || body[i] != '}' {
		return false
	}
	q.Querier = string(qr)
	q.Target = string(tg)
	q.At = sim.Tick(at)
	return true
}

// DecodeBody implements BodyDecoder.
func (r *LocateResult) DecodeBody(body []byte) bool {
	i, ok := expectLit(body, 0, `{"room":`)
	if !ok {
		return false
	}
	room, i, ok := scanInt(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"roomName":`)
	if !ok {
		return false
	}
	name, i, ok := scanPlainString(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"at":`)
	if !ok {
		return false
	}
	at, i, ok := scanInt(body, i)
	if !ok || i != len(body)-1 || body[i] != '}' {
		return false
	}
	r.Room = graph.NodeID(room)
	r.RoomName = string(name)
	r.At = sim.Tick(at)
	return true
}

// DecodeBody implements BodyDecoder.
func (a *IngestAck) DecodeBody(body []byte) bool {
	*a = IngestAck{}
	i, ok := expectLit(body, 0, `{"acked":`)
	if !ok {
		return false
	}
	acked, i, ok := scanUint(body, i)
	if !ok {
		return false
	}
	i, ok = expectLit(body, i, `,"applied":`)
	if !ok {
		return false
	}
	applied, i, ok := scanInt(body, i)
	if !ok {
		return false
	}
	a.Acked = acked
	a.Applied = int(applied)
	if j, ok := expectLit(body, i, `,"rejected":`); ok {
		rej, k, ok := scanInt(body, j)
		if !ok {
			return false
		}
		a.Rejected = int(rej)
		i = k
	}
	if j, ok := expectLit(body, i, `,"duplicate":true`); ok {
		a.Duplicate = true
		i = j
	}
	return i == len(body)-1 && body[i] == '}'
}
