// Subscription messages: the push-notification surface of the protocol.
//
// A client registers a subscription with MsgSubscribe, naming a
// client-chosen id (connection-scoped, like ingest session ids) and a
// filter; the server answers MsgOK and from then on pushes MsgEvent
// envelopes — correlation id 0, since no request correlates — whenever
// the filter matches a presence change. MsgUnsubscribe cancels by id.
// Subscriptions live and die with their connection; they are never
// shared across connections or resumed. See docs/PROTOCOL.md section 9
// for the delivery contract and the slow-consumer policy.
package wire

import (
	"fmt"

	"bips/internal/graph"
	"bips/internal/sim"
)

// MaxSubIDLen bounds a subscription id so a hostile client cannot make
// the server index arbitrarily large keys.
const MaxSubIDLen = 128

// MaxZoneRooms bounds the room set of a zone filter.
const MaxZoneRooms = 64

// Subscription filter kinds.
const (
	// FilterAll matches every presence change (enter/leave events for
	// all tracked devices).
	FilterAll = "all"
	// FilterDevice matches one user's device: Target is the userid, and
	// the subscriber needs the same access Locate requires.
	FilterDevice = "device"
	// FilterRoom matches one room: every device entering or leaving it.
	FilterRoom = "room"
	// FilterZone is the geofence predicate device-enters-zone: Target's
	// device crossing into or out of the room set Rooms.
	FilterZone = "zone"
	// FilterOccupancy is the geofence predicate
	// room-occupancy-crosses-K: Room's occupant count crossing
	// Threshold, edge-triggered in both directions.
	FilterOccupancy = "occupancy"
)

// SubFilter selects which presence changes a subscription delivers.
// Which fields matter depends on Kind; Validate enforces the shape.
type SubFilter struct {
	Kind string `json:"kind"`
	// Target is the tracked userid for device and zone filters.
	Target string `json:"target,omitempty"`
	// Room is the watched room for room and occupancy filters.
	Room graph.NodeID `json:"room,omitempty"`
	// Rooms is the zone's room set for zone filters.
	Rooms []graph.NodeID `json:"rooms,omitempty"`
	// Threshold is the occupancy edge (>= 1) for occupancy filters.
	Threshold int `json:"threshold,omitempty"`
}

// Subscribe registers a push subscription on this connection. ID is
// client-chosen and scoped to the connection; re-using a live id is an
// error (unsubscribe first). Querier is the userid on whose behalf the
// subscription runs — it must be logged in, hold the locate right, and
// for device/zone filters pass the same per-target access check as
// Locate.
type Subscribe struct {
	ID      string    `json:"id"`
	Querier string    `json:"querier"`
	Filter  SubFilter `json:"filter"`
}

// Validate checks the request's protocol shape: a bounded non-empty id,
// a querier, a known filter kind, and the kind's required fields. Access
// checks and room existence are the server's business validation.
func (s *Subscribe) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("%w: subscribe without id", ErrMalformed)
	}
	if len(s.ID) > MaxSubIDLen {
		return fmt.Errorf("%w: subscription id of %d bytes exceeds %d", ErrMalformed, len(s.ID), MaxSubIDLen)
	}
	if s.Querier == "" {
		return fmt.Errorf("%w: subscribe without querier", ErrMalformed)
	}
	switch s.Filter.Kind {
	case FilterAll, FilterRoom:
		// No further shape: room existence is business validation.
	case FilterDevice:
		if s.Filter.Target == "" {
			return fmt.Errorf("%w: device filter without target user", ErrMalformed)
		}
	case FilterZone:
		if s.Filter.Target == "" {
			return fmt.Errorf("%w: zone filter without target user", ErrMalformed)
		}
		if len(s.Filter.Rooms) == 0 {
			return fmt.Errorf("%w: zone filter without rooms", ErrMalformed)
		}
		if len(s.Filter.Rooms) > MaxZoneRooms {
			return fmt.Errorf("%w: zone of %d rooms exceeds %d", ErrMalformed, len(s.Filter.Rooms), MaxZoneRooms)
		}
	case FilterOccupancy:
		if s.Filter.Threshold < 1 {
			return fmt.Errorf("%w: occupancy filter needs threshold >= 1", ErrMalformed)
		}
	default:
		return fmt.Errorf("%w: unknown filter kind %q", ErrMalformed, s.Filter.Kind)
	}
	return nil
}

// Unsubscribe cancels the subscription with the given id on this
// connection; the response is MsgOK. An unknown id is a not-found
// error.
type Unsubscribe struct {
	ID string `json:"id"`
}

// Validate checks the request's protocol shape.
func (u *Unsubscribe) Validate() error {
	if u.ID == "" {
		return fmt.Errorf("%w: unsubscribe without id", ErrMalformed)
	}
	if len(u.ID) > MaxSubIDLen {
		return fmt.Errorf("%w: subscription id of %d bytes exceeds %d", ErrMalformed, len(u.ID), MaxSubIDLen)
	}
	return nil
}

// Event kinds pushed on a subscription.
const (
	// EventEnter: a device was revealed present in Room.
	EventEnter = "enter"
	// EventLeave: a device left Room (absence, handover away, or
	// logout).
	EventLeave = "leave"
	// EventZoneEnter / EventZoneExit: the zone filter's target crossed
	// into / out of the geofence.
	EventZoneEnter = "zone-enter"
	EventZoneExit  = "zone-exit"
	// EventOccupancyRise / EventOccupancyFall: Room's occupant count
	// crossed the filter's threshold upward / downward; Occupancy
	// carries the new count.
	EventOccupancyRise = "occupancy-rise"
	EventOccupancyFall = "occupancy-fall"
)

// Event is one push notification. Sub names the subscription it
// matched; the envelope's correlation id is always 0. Device and User
// are set for enter/leave (and zone) events when the device is bound to
// a user; Occupancy is set for occupancy events.
type Event struct {
	Sub       string       `json:"sub"`
	Kind      string       `json:"kind"`
	Device    string       `json:"device,omitempty"`
	User      string       `json:"user,omitempty"`
	Room      graph.NodeID `json:"room"`
	RoomName  string       `json:"roomName,omitempty"`
	At        sim.Tick     `json:"at"`
	Occupancy int          `json:"occupancy,omitempty"`
}
