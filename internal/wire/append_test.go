// Differential tests for the zero-allocation encode/decode path: every
// AppendTo encoder, the envelope appenders and the fast decoders are
// checked byte-for-byte against encoding/json — first over a curated
// table (including every type in AllMsgTypes, extending the
// PROTOCOL.md hex-example conformance pattern to the whole registry),
// then by fuzzing. Any divergence is a wire-compatibility bug: v1/v2
// frames must be indistinguishable from the json.Marshal form.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"

	"bips/internal/graph"
	"bips/internal/sim"
)

// trickyStrings exercises every escaping branch of appendJSONString.
var trickyStrings = []string{
	"",
	"alice",
	`quote " backslash \ done`,
	"newline\ntab\tret\rnull\x00bell\x07",
	"html <b>&amp;</b> escaping",
	"unicode: café 日本語 \U0001f600",
	"line sep \u2028 para sep \u2029 end",
	"invalid utf8: \xff\xfe mid \xc3(",
	"del \x7f kept",
	"ends with control \x1f",
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal(%#v): %v", v, err)
	}
	return raw
}

func TestAppendJSONStringMatchesJSON(t *testing.T) {
	for _, s := range trickyStrings {
		got := appendJSONString(nil, s)
		want := mustJSON(t, s)
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

// appenderSamples returns Appender bodies covering every implementation
// and its omitempty branches.
func appenderSamples() []Appender {
	return []Appender{
		EmptyBody{},
		Locate{},
		Locate{Querier: "alice", Target: "bob"},
		Locate{Querier: trickyStrings[4], Target: trickyStrings[6]},
		LocateAt{Querier: "alice", Target: "bob", At: -7},
		LocateAt{Querier: "a", Target: "b", At: 1 << 40},
		LocateResult{},
		LocateResult{Room: 6, RoomName: "Lab <6>", At: 42},
		LocateResult{Room: -1, RoomName: trickyStrings[7], At: 9},
		Presence{},
		Presence{Device: "00:11:22:33:44:55", Room: 3, At: 17, Present: true},
		Presence{Device: "x", Room: -2, At: -1, Present: false},
		PresenceBatch{},
		PresenceBatch{Session: "s1", Seq: 9, Deltas: []Presence{}},
		PresenceBatch{Session: "s&<>", Seq: 1 << 60, Deltas: []Presence{
			{Device: "00:11:22:33:44:55", Room: 1, At: 2, Present: true},
			{Device: "AA:BB:CC:DD:EE:FF", Room: 2, At: 3, Present: false},
		}},
		IngestHello{},
		IngestHello{Session: "s", Station: "ws-1", Room: 4},
		IngestAck{},
		IngestAck{Acked: 12, Applied: 64},
		IngestAck{Acked: 12, Applied: 0, Rejected: 3},
		IngestAck{Acked: 12, Applied: 1, Duplicate: true},
		IngestAck{Acked: ^uint64(0), Applied: 2, Rejected: 1, Duplicate: true},
		Event{},
		Event{Sub: "s1", Kind: EventEnter, Device: "00:11:22:33:44:55", User: "bob", Room: 6, RoomName: "Lab", At: 5},
		Event{Sub: "s2", Kind: EventOccupancyRise, Room: 2, At: 9, Occupancy: 4},
		Event{Sub: "s3", Kind: EventLeave, User: trickyStrings[5], Room: 0, At: -3},
		Error{},
		Error{Code: CodeDenied, Message: "alice may not locate <bob> & co"},
	}
}

func TestAppendersMatchJSON(t *testing.T) {
	for _, body := range appenderSamples() {
		got := body.AppendTo(nil)
		want := mustJSON(t, body)
		if !bytes.Equal(got, want) {
			t.Errorf("%T.AppendTo\n got %s\nwant %s", body, got, want)
		}
	}
}

// TestAppendEnvelopeAllTypes checks the envelope appenders against
// json.Marshal for every message type of the protocol registry, with
// and without a body.
func TestAppendEnvelopeAllTypes(t *testing.T) {
	for i, mt := range AllMsgTypes {
		seq := uint64(i * 7)
		for _, body := range []json.RawMessage{nil, json.RawMessage(`{"x":1}`)} {
			env := Envelope{Type: mt, Seq: seq, Body: body}
			want := mustJSON(t, env)
			got := AppendEnvelopeRaw(nil, env)
			if !bytes.Equal(got, want) {
				t.Errorf("AppendEnvelopeRaw(%s)\n got %s\nwant %s", mt, got, want)
			}
			// The canonical form must round-trip through the fast
			// decoder to an identical envelope.
			dec, err := DecodeEnvelope(got)
			if err != nil {
				t.Errorf("DecodeEnvelope(%s): %v", got, err)
			} else if dec.Type != mt || dec.Seq != seq || !bytes.Equal(dec.Body, body) {
				t.Errorf("DecodeEnvelope(%s) = %+v, want type=%s seq=%d body=%s", got, dec, mt, seq, body)
			}
		}
	}
}

func TestAppendEnvelopeTypedBody(t *testing.T) {
	for _, body := range appenderSamples() {
		raw := mustJSON(t, body)
		env := Envelope{Type: MsgLocate, Seq: 3, Body: raw}
		want := mustJSON(t, env)
		got := AppendEnvelope(nil, MsgLocate, 3, body)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendEnvelope(%T)\n got %s\nwant %s", body, got, want)
		}
	}
	// nil body == empty Body (omitempty).
	want := mustJSON(t, Envelope{Type: MsgRooms, Seq: 5})
	if got := AppendEnvelope(nil, MsgRooms, 5, nil); !bytes.Equal(got, want) {
		t.Errorf("AppendEnvelope(nil body)\n got %s\nwant %s", got, want)
	}
}

// TestSendAppendFramesIdentical proves the pooled append send path puts
// exactly the same bytes on the wire as Transport.Send, for both wire
// versions.
func TestSendAppendFramesIdentical(t *testing.T) {
	bodies := appenderSamples()
	for _, version := range []string{"v1", "v2"} {
		var legacy, fast bytes.Buffer
		var legacyT, fastT Transport
		var legacyA AppendSender
		if version == "v1" {
			legacyT, fastT = NewCodec(rwOnly{&legacy}), NewCodec(rwOnly{&fast})
		} else {
			legacyT, fastT = NewFrameCodec(rwOnly{&legacy}), NewFrameCodec(rwOnly{&fast})
		}
		legacyA = fastT.(AppendSender)
		for i, body := range bodies {
			env, err := MarshalBody(MsgEvent, uint64(i), body)
			if err != nil {
				t.Fatal(err)
			}
			if err := legacyT.Send(env); err != nil {
				t.Fatal(err)
			}
			if err := legacyA.SendAppend(MsgEvent, uint64(i), body); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(legacy.Bytes(), fast.Bytes()) {
			t.Errorf("%s: SendAppend stream differs from Send stream", version)
		}
		_ = legacyT
	}
}

// rwOnly hides any other methods of the underlying buffer.
type rwOnly struct{ rw io.ReadWriter }

func (r rwOnly) Read(p []byte) (int, error)  { return r.rw.Read(p) }
func (r rwOnly) Write(p []byte) (int, error) { return r.rw.Write(p) }

// TestDecodeEnvelopeForeignForms: non-canonical but valid JSON must
// fall back to full parsing, never error, and decode identically to
// json.Unmarshal.
func TestDecodeEnvelopeForeignForms(t *testing.T) {
	payloads := []string{
		`{"type":"locate","seq":1,"body":{"querier":"a","target":"b"}}`,
		`{ "type":"locate", "seq":1 }`,
		`{"seq":2,"type":"locate"}`,
		`{"type":"locate","seq":3,"body":{"querier":"a"},"extra":true}`,
		`{"type":"locate","seq":4}`,
		`{"type":"someday.new.type","seq":5,"body":[1,2,3]}`,
		`{"type":"locate","seq":18446744073709551615}`,
		`{"type":"ok","seq":6,"body":null}`,
		"{\"type\":\"ok\",\"seq\":7}\n",
		"{\"type\":\"ok\",\"seq\":8}\r\n",
	}
	for _, p := range payloads {
		var want Envelope
		if err := json.Unmarshal([]byte(p), &want); err != nil {
			t.Fatalf("bad test payload %q: %v", p, err)
		}
		got, err := DecodeEnvelope([]byte(p))
		if err != nil {
			t.Errorf("DecodeEnvelope(%q): %v", p, err)
			continue
		}
		if got.Type != want.Type || got.Seq != want.Seq || !jsonBodyEqual(got.Body, want.Body) {
			t.Errorf("DecodeEnvelope(%q) = %+v, want %+v", p, got, want)
		}
	}
	for _, bad := range []string{"", "nonsense", `{"type":`, "\xb2\x02"} {
		if _, err := DecodeEnvelope([]byte(bad)); err == nil {
			t.Errorf("DecodeEnvelope(%q): expected error", bad)
		}
	}
}

func jsonBodyEqual(a, b json.RawMessage) bool {
	if len(a) == 0 || len(b) == 0 {
		return len(a) == 0 && len(b) == 0
	}
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return false
	}
	return reflect.DeepEqual(av, bv)
}

// TestDecodeBodyFast checks every BodyDecoder against the canonical
// encoding (must succeed and match json.Unmarshal) and against
// non-canonical input (must report false, forcing the fallback).
func TestDecodeBodyFast(t *testing.T) {
	check := func(body Appender, dst, want BodyDecoder) {
		t.Helper()
		raw := mustJSON(t, body)
		if !dst.DecodeBody(raw) {
			t.Errorf("%T.DecodeBody(%s): not accepted", dst, raw)
			return
		}
		if err := json.Unmarshal(raw, want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dst, want) {
			t.Errorf("%T.DecodeBody(%s) = %+v, want %+v", dst, raw, dst, want)
		}
	}
	check(Locate{Querier: "alice", Target: "bob"}, &Locate{}, &Locate{})
	check(Locate{}, &Locate{}, &Locate{})
	check(LocateAt{Querier: "a", Target: "b", At: -9}, &LocateAt{}, &LocateAt{})
	check(LocateResult{Room: 6, RoomName: "Lab 6", At: 42}, &LocateResult{}, &LocateResult{})
	check(IngestAck{Acked: 3, Applied: 2}, &IngestAck{}, &IngestAck{})
	check(IngestAck{Acked: 3, Applied: 2, Rejected: 1, Duplicate: true}, &IngestAck{}, &IngestAck{})

	// Escaped strings are valid JSON but not the escape-free canonical
	// fast path; the decoder must hand them to the fallback, and the
	// fallback must agree with the original value.
	esc := Locate{Querier: "ali\tce", Target: "b<b>"}
	raw := mustJSON(t, esc)
	var dec Locate
	if dec.DecodeBody(raw) {
		if !reflect.DeepEqual(dec, esc) {
			t.Errorf("DecodeBody accepted %s but decoded %+v", raw, dec)
		}
	}
	if err := json.Unmarshal(raw, &dec); err != nil || dec != esc {
		t.Errorf("fallback: %+v err %v", dec, err)
	}

	for _, bad := range []string{
		``, `{}`, `null`, `{"target":"b","querier":"a"}`,
		`{"querier":"a","target":"b","x":1}`, `{"querier":"a","target":"b"`,
	} {
		var q Locate
		if q.DecodeBody([]byte(bad)) {
			t.Errorf("Locate.DecodeBody(%q): accepted non-canonical input", bad)
		}
	}
}

// TestCallFastPathEndToEnd runs typed fast-path calls through a real
// client/server pair of codecs and checks the decoded values, for both
// pointer (zero-boxing) and value bodies.
func TestCallFastPathEndToEnd(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer cliConn.Close()
	defer srvConn.Close()
	client := NewClient(NewFrameCodec(cliConn))
	defer client.Close()

	go func() {
		tr, err := ServerTransport(srvConn)
		if err != nil {
			return
		}
		br := tr.(BufRecver)
		ps := tr.(PayloadSender)
		var buf []byte
		for {
			env, b, err := br.RecvBuf(buf)
			buf = b
			if err != nil {
				return
			}
			var q Locate
			if !q.DecodeBody(env.Body) {
				if err := UnmarshalBody(env, &q); err != nil {
					return
				}
			}
			res := LocateResult{Room: 6, RoomName: "Lab " + q.Target, At: 42}
			out := AppendEnvelope(nil, MsgLocateResult, env.Seq, &res)
			if err := ps.SendPayload(out); err != nil {
				return
			}
		}
	}()

	req := Locate{Querier: "alice", Target: "bob"}
	var res LocateResult
	if err := client.Call(MsgLocate, &req, &res); err != nil {
		t.Fatal(err)
	}
	if res.Room != 6 || res.RoomName != "Lab bob" || res.At != 42 {
		t.Fatalf("fast-path result: %+v", res)
	}
	res = LocateResult{}
	if err := client.Call(MsgLocate, Locate{Querier: "alice", Target: "eve"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.RoomName != "Lab eve" {
		t.Fatalf("value-body result: %+v", res)
	}
}

// FuzzAppendJSONString fuzzes the escaper against encoding/json.
func FuzzAppendJSONString(f *testing.F) {
	for _, s := range trickyStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q)\n got %s\nwant %s", s, got, want)
		}
	})
}

// FuzzAppendersMatchJSON fuzzes the hot-type encoders end to end: the
// appended bytes must equal json.Marshal, and the fast body decoders
// must round-trip them.
func FuzzAppendersMatchJSON(f *testing.F) {
	f.Add("alice", "bob", int64(42), "Lab 6", uint64(7), true)
	f.Add("", "", int64(-1), "<&>", uint64(0), false)
	f.Fuzz(func(t *testing.T, a, b string, n int64, name string, u uint64, flag bool) {
		at, room := sim.Tick(n), graph.NodeID(int(n%4096))
		bodies := []Appender{
			Locate{Querier: a, Target: b},
			LocateAt{Querier: a, Target: b, At: at},
			LocateResult{Room: room, RoomName: name, At: at},
			Presence{Device: a, Room: room, At: at, Present: flag},
			IngestAck{Acked: u, Applied: int(n % 1000), Rejected: int(u % 3), Duplicate: flag},
			Event{Sub: a, Kind: b, Device: name, Room: room, At: at, Occupancy: int(u % 5)},
			Error{Code: a, Message: b},
			PresenceBatch{Session: a, Seq: u, Deltas: []Presence{{Device: b, Room: room, At: at, Present: flag}}},
		}
		for _, body := range bodies {
			got := body.AppendTo(nil)
			want, err := json.Marshal(body)
			if err != nil {
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%T.AppendTo\n got %s\nwant %s", body, got, want)
			}
			env := AppendEnvelope(nil, MsgEvent, u, body)
			wantEnv, err := json.Marshal(Envelope{Type: MsgEvent, Seq: u, Body: want})
			if err != nil {
				continue
			}
			if !bytes.Equal(env, wantEnv) {
				t.Errorf("AppendEnvelope(%T)\n got %s\nwant %s", body, env, wantEnv)
			}
		}
		// Fast decode of the canonical Locate encoding must agree with
		// encoding/json whenever it claims success.
		raw := Locate{Querier: a, Target: b}.AppendTo(nil)
		var fast, slow Locate
		if fast.DecodeBody(raw) {
			if err := json.Unmarshal(raw, &slow); err != nil || fast != slow {
				t.Errorf("DecodeBody(%s) = %+v, json = %+v (err %v)", raw, fast, slow, err)
			}
		}
	})
}

// TestCanonicalJSONValueSound: a true from the canonical scanner must
// imply json.Valid — it may only ever shortcut the yes answer, never
// widen it — and it must actually fire (return true) for the dense
// encodings this package emits, or the fast path silently regresses to
// the json.Valid state machine.
func TestCanonicalJSONValueSound(t *testing.T) {
	certain := []string{
		`{}`, `[]`, `"x"`, `0`, `-1`, `12.5`, `1e9`, `-0.5E+3`, `true`, `false`, `null`,
		`{"querier":"alice","target":"bob"}`,
		`{"room":6,"roomName":"Lab 6","at":42}`,
		`[1,2,3]`, `{"a":[{"b":null}],"c":""}`,
	}
	for _, s := range certain {
		if !canonicalJSONValue([]byte(s)) {
			t.Errorf("canonicalJSONValue(%q) = false, want certain yes", s)
		}
	}
	uncertain := []string{
		// Invalid JSON: must never be certainly canonical.
		``, `{`, `}`, `{]`, `{"a"}`, `{"a":}`, `{"a":1,}`, `[1,]`, `[,1]`,
		`01`, `1.`, `.5`, `1e`, `1e+`, `--1`, `+1`, `tru`, `nul`, `"unterminated`,
		`"ctl` + "\x01" + `"`, `{"a":1}}`, `{"a":1}{"b":2}`, `1 2`, `nonsense`,
		// Valid but foreign JSON: false is correct (fallback decides).
		` {}`, `{ "a":1}`, `{"a": 1}`, `"esc\n"`, "[1,\n2]",
	}
	for _, s := range uncertain {
		if canonicalJSONValue([]byte(s)) && !json.Valid([]byte(s)) {
			t.Errorf("canonicalJSONValue(%q) = true on input json.Valid rejects", s)
		}
		if canonicalJSONValue([]byte(s)) {
			t.Errorf("canonicalJSONValue(%q) = true, want uncertain", s)
		}
	}
}

// FuzzDecodeEnvelope feeds arbitrary payloads to the fast decoder: it
// must accept exactly what json.Unmarshal accepts (modulo body
// normalization) and agree on the decoded envelope.
func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte(`{"type":"locate","seq":1,"body":{"querier":"a","target":"b"}}`))
	f.Add([]byte(`{"type":"ok","seq":0}`))
	f.Add([]byte(`{"type":"event","seq":18446744073709551615,"body":[]}`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var want Envelope
		werr := json.Unmarshal(payload, &want)
		got, gerr := DecodeEnvelope(payload)
		if werr != nil {
			if gerr == nil {
				t.Errorf("DecodeEnvelope(%q) accepted what json rejects", payload)
			}
			return
		}
		if gerr != nil {
			t.Errorf("DecodeEnvelope(%q) rejected valid envelope: %v", payload, gerr)
			return
		}
		if got.Type != want.Type || got.Seq != want.Seq || !jsonBodyEqual(got.Body, want.Body) {
			t.Errorf("DecodeEnvelope(%q) = %+v, want %+v", payload, got, want)
		}
	})
}

func ExampleAppendEnvelope() {
	res := LocateResult{Room: 6, RoomName: "Lab 6", At: 42}
	fmt.Printf("%s\n", AppendEnvelope(nil, MsgLocateResult, 9, &res))
	// Output: {"type":"locate.result","seq":9,"body":{"room":6,"roomName":"Lab 6","at":42}}
}
