package wire

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func validBatch() PresenceBatch {
	return PresenceBatch{
		Session: "station-1",
		Seq:     1,
		Deltas: []Presence{
			{Device: "00:00:B0:00:00:01", Room: 3, At: 100, Present: true},
			{Device: "00:00:B0:00:00:02", Room: 3, At: 120, Present: false},
		},
	}
}

func TestPresenceBatchValidate(t *testing.T) {
	ok := validBatch()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}

	cases := map[string]func(*PresenceBatch){
		"empty session":  func(b *PresenceBatch) { b.Session = "" },
		"zero seq":       func(b *PresenceBatch) { b.Seq = 0 },
		"no deltas":      func(b *PresenceBatch) { b.Deltas = nil },
		"oversized":      func(b *PresenceBatch) { b.Deltas = make([]Presence, MaxBatchDeltas+1) },
		"empty + no seq": func(b *PresenceBatch) { b.Seq = 0; b.Deltas = nil },
	}
	for name, mutate := range cases {
		b := validBatch()
		mutate(&b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		// Invalid frames must classify as malformed so the server
		// answers a bad-request MsgError instead of closing silently.
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestPresenceBatchFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	codec := NewFrameCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})

	env, err := MarshalBody(MsgPresenceBatch, 42, validBatch())
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(env); err != nil {
		t.Fatal(err)
	}
	got, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPresenceBatch || got.Seq != 42 {
		t.Fatalf("roundtrip envelope = %+v", got)
	}
	var b PresenceBatch
	if err := UnmarshalBody(got, &b); err != nil {
		t.Fatal(err)
	}
	want := validBatch()
	if b.Session != want.Session || b.Seq != want.Seq || len(b.Deltas) != len(want.Deltas) {
		t.Fatalf("roundtrip batch = %+v, want %+v", b, want)
	}
	for i := range b.Deltas {
		if b.Deltas[i] != want.Deltas[i] {
			t.Fatalf("delta %d = %+v, want %+v", i, b.Deltas[i], want.Deltas[i])
		}
	}
}

// TestProtocolDocIngestHexExample: the worked hex example of
// docs/PROTOCOL.md section 8.3 must be the codec's actual output,
// byte for byte — if the framing or the JSON encoding of the ingest
// messages changes, the spec must change with it.
func TestProtocolDocIngestHexExample(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol spec: %v", err)
	}
	doc := string(raw)

	frameHex := func(env Envelope) string {
		var buf bytes.Buffer
		c := NewFrameCodec(struct {
			io.Reader
			io.Writer
		}{&buf, &buf})
		if err := c.Send(env); err != nil {
			t.Fatal(err)
		}
		return hex.Dump(buf.Bytes())
	}

	req, err := MarshalBody(MsgPresenceBatch, 9, PresenceBatch{
		Session: "st-6",
		Seq:     4,
		Deltas: []Presence{
			{Device: "00:00:B0:00:00:01", Room: 6, At: 240000, Present: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := MarshalBody(MsgIngestAck, 9, IngestAck{Acked: 4, Applied: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, dump := range map[string]string{
		"presence.batch request": frameHex(req),
		"ingest.ack response":    frameHex(resp),
	} {
		for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
			if !strings.Contains(doc, line) {
				t.Errorf("docs/PROTOCOL.md section 8.3 is missing the %s hex line:\n%s", name, line)
			}
		}
	}
}

// FuzzPresenceBatchDecode throws arbitrary bytes at the batch body
// decoder: it must never panic, and anything it accepts and Validate
// passes must survive a marshal/unmarshal roundtrip unchanged.
func FuzzPresenceBatchDecode(f *testing.F) {
	seed, err := json.Marshal(validBatch())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"session":"s","seq":1,"deltas":[]}`))
	f.Add([]byte(`{"session":"s","seq":18446744073709551615,"deltas":[{}]}`))
	f.Add([]byte(`{"seq":-1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var b PresenceBatch
		if err := json.Unmarshal(raw, &b); err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			return
		}
		re, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("marshal of accepted batch failed: %v", err)
		}
		var b2 PresenceBatch
		if err := json.Unmarshal(re, &b2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if b2.Session != b.Session || b2.Seq != b.Seq || len(b2.Deltas) != len(b.Deltas) {
			t.Fatalf("roundtrip changed batch: %+v vs %+v", b, b2)
		}
		if err := b2.Validate(); err != nil {
			t.Fatalf("roundtrip broke validity: %v", err)
		}
	})
}

// FuzzFrameCodecRecv feeds arbitrary byte streams to the v2 frame
// reader: every outcome must be a decoded envelope or a classified
// error (ErrMalformed or a transport error) — never a panic or a huge
// allocation.
func FuzzFrameCodecRecv(f *testing.F) {
	var buf bytes.Buffer
	c := NewFrameCodec(struct {
		io.Reader
		io.Writer
	}{&buf, &buf})
	env, _ := MarshalBody(MsgPresenceBatch, 7, validBatch())
	if err := c.Send(env); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{FrameMagic, FrameVersion, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{FrameMagic, 0x00, 0, 0, 0, 0})
	f.Add([]byte("{\"type\":\"presence.batch\"}\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		codec := NewFrameCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(raw), io.Discard})
		for i := 0; i < 4; i++ {
			if _, err := codec.Recv(); err != nil {
				return
			}
		}
	})
}
