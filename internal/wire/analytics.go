// Analytics messages: the history-analytics query surface of the
// protocol — contact tracing, occupancy time series and dwell-time
// distributions, served by the server's room → presence-interval index.
// All windows are half-open [from, to) in simulation ticks. See
// docs/PROTOCOL.md section 10.
package wire

import (
	"fmt"

	"bips/internal/graph"
	"bips/internal/sim"
)

// MaxOccupancyRooms bounds the room set (zone) of one occupancy query.
const MaxOccupancyRooms = 64

// MaxOccupancyBuckets bounds the series length of one occupancy query,
// so a hostile client cannot make the server materialize an arbitrarily
// long answer.
const MaxOccupancyBuckets = 2048

// Dwell query kinds.
const (
	// DwellRoom asks for the dwell-time distribution of one room: one
	// sample per presence run of any device in it.
	DwellRoom = "room"
	// DwellDevice asks for the dwell-time distribution of one user's
	// device across every room it visited.
	DwellDevice = "device"
)

// ContactsQuery asks which devices shared a room with the target user's
// device inside the window, and for how long. The querier needs the
// same per-target access Locate requires.
type ContactsQuery struct {
	Querier string   `json:"querier"`
	Target  string   `json:"target"`
	From    sim.Tick `json:"from"`
	To      sim.Tick `json:"to"`
	// MinOverlap drops contacts below this many ticks of total
	// co-location; the server always requires at least 1.
	MinOverlap sim.Tick `json:"minOverlap,omitempty"`
}

// Validate checks the request's protocol shape.
func (q *ContactsQuery) Validate() error {
	if q.Querier == "" {
		return fmt.Errorf("%w: contacts without querier", ErrMalformed)
	}
	if q.Target == "" {
		return fmt.Errorf("%w: contacts without target user", ErrMalformed)
	}
	if q.To < q.From {
		return fmt.Errorf("%w: contacts window [%d, %d) is inverted", ErrMalformed, q.From, q.To)
	}
	if q.MinOverlap < 0 {
		return fmt.Errorf("%w: negative minOverlap %d", ErrMalformed, q.MinOverlap)
	}
	return nil
}

// Contact is one contact-trace answer: a device that shared rooms with
// the target, strongest (longest overlap) first. User is set when the
// device is bound to a user.
type Contact struct {
	User    string         `json:"user,omitempty"`
	Device  string         `json:"device"`
	Overlap sim.Tick       `json:"overlap"`
	Rooms   []graph.NodeID `json:"rooms"`
	First   sim.Tick       `json:"first"`
	Last    sim.Tick       `json:"last"`
}

// ContactsResult answers ContactsQuery, capped at the server's contact
// limit.
type ContactsResult struct {
	Contacts []Contact `json:"contacts"`
}

// OccupancyQuery asks for a distinct-device occupancy time series over
// the union of Rooms (a zone), bucketed at Bucket ticks. The querier
// needs the locate right.
type OccupancyQuery struct {
	Querier string         `json:"querier"`
	Rooms   []graph.NodeID `json:"rooms"`
	From    sim.Tick       `json:"from"`
	To      sim.Tick       `json:"to"`
	Bucket  sim.Tick       `json:"bucket"`
}

// Validate checks the request's protocol shape, including the series
// length bound.
func (q *OccupancyQuery) Validate() error {
	if q.Querier == "" {
		return fmt.Errorf("%w: occupancy without querier", ErrMalformed)
	}
	if len(q.Rooms) == 0 {
		return fmt.Errorf("%w: occupancy without rooms", ErrMalformed)
	}
	if len(q.Rooms) > MaxOccupancyRooms {
		return fmt.Errorf("%w: occupancy zone of %d rooms exceeds %d", ErrMalformed, len(q.Rooms), MaxOccupancyRooms)
	}
	if q.To <= q.From {
		return fmt.Errorf("%w: occupancy window [%d, %d) is empty", ErrMalformed, q.From, q.To)
	}
	if q.Bucket < 1 {
		return fmt.Errorf("%w: occupancy bucket %d, want >= 1", ErrMalformed, q.Bucket)
	}
	if nb := (int64(q.To-q.From) + int64(q.Bucket) - 1) / int64(q.Bucket); nb > MaxOccupancyBuckets {
		return fmt.Errorf("%w: occupancy series of %d buckets exceeds %d", ErrMalformed, nb, MaxOccupancyBuckets)
	}
	return nil
}

// OccupancyPoint is one bucket of the series: the number of distinct
// devices present at some instant of [At, At+bucket).
type OccupancyPoint struct {
	At    sim.Tick `json:"at"`
	Count int      `json:"count"`
}

// OccupancyResult answers OccupancyQuery, one point per bucket, oldest
// first. The final bucket may cover less than a full bucket width.
type OccupancyResult struct {
	Buckets []OccupancyPoint `json:"buckets"`
}

// DwellQuery asks for a dwell-time distribution: per room (Kind
// DwellRoom, the querier needs the locate right) or per user device
// (Kind DwellDevice, the querier needs the same per-target access
// Locate requires).
type DwellQuery struct {
	Querier string `json:"querier"`
	Kind    string `json:"kind"`
	// Target is the userid for device-kind queries.
	Target string `json:"target,omitempty"`
	// Room is the watched room for room-kind queries.
	Room graph.NodeID `json:"room,omitempty"`
	From sim.Tick     `json:"from"`
	To   sim.Tick     `json:"to"`
}

// Validate checks the request's protocol shape.
func (q *DwellQuery) Validate() error {
	if q.Querier == "" {
		return fmt.Errorf("%w: dwell without querier", ErrMalformed)
	}
	switch q.Kind {
	case DwellRoom:
		// Room existence is business validation.
	case DwellDevice:
		if q.Target == "" {
			return fmt.Errorf("%w: device dwell without target user", ErrMalformed)
		}
	default:
		return fmt.Errorf("%w: unknown dwell kind %q", ErrMalformed, q.Kind)
	}
	if q.To < q.From {
		return fmt.Errorf("%w: dwell window [%d, %d) is inverted", ErrMalformed, q.From, q.To)
	}
	return nil
}

// DwellResult answers DwellQuery: summary statistics of the dwell
// distribution, durations in ticks. All fields are zero when no run
// fell inside the window.
type DwellResult struct {
	Samples int      `json:"samples"`
	Mean    float64  `json:"mean"`
	Stddev  float64  `json:"stddev"`
	Min     sim.Tick `json:"min"`
	Max     sim.Tick `json:"max"`
	P50     sim.Tick `json:"p50"`
	P90     sim.Tick `json:"p90"`
	P99     sim.Tick `json:"p99"`
}
