// Wire protocol v2: length-prefixed framing over persistent connections.
//
// Version 1 frames each envelope as one JSON document per newline. That is
// easy to debug but forces the reader to scan for the delimiter and makes
// it impossible to pre-allocate, and — because the first byte of every v1
// message is '{' — it leaves the whole remaining byte space free for a v2
// magic. A v2 frame is
//
//	offset 0 : magic   0xB2  (never '{', so a server can sniff the version)
//	offset 1 : version 0x02
//	offset 2 : payload length, big-endian uint32 (max MaxFramePayload)
//	offset 6 : payload — one JSON-encoded Envelope
//
// Envelopes themselves are identical in both versions: the Seq field is the
// correlation id that lets a server complete pipelined requests out of
// order. See docs/PROTOCOL.md for the full specification and a worked hex
// example.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame constants for protocol v2.
const (
	// FrameMagic is the first byte of every v2 frame. JSON (v1) messages
	// always start with '{' (0x7B), so one peeked byte decides the
	// version.
	FrameMagic = 0xB2
	// FrameVersion is the protocol revision carried in byte 1.
	FrameVersion = 0x02
	// FrameHeaderLen is the fixed header size: magic + version + length.
	FrameHeaderLen = 6
	// MaxFramePayload bounds a single frame's payload so a corrupt or
	// hostile length prefix cannot make the reader allocate gigabytes.
	MaxFramePayload = 1 << 20
)

// ErrMalformed reports bytes that could not be parsed as a protocol
// message — as opposed to transport errors like a closed connection. A
// server that sees it can still answer MsgError before closing; a plain
// I/O error means the peer is gone.
var ErrMalformed = errors.New("wire: malformed message")

// Transport reads and writes envelopes over some byte stream. Codec (v1
// newline-JSON) and FrameCodec (v2 length-prefixed) both implement it;
// Client and the server's connection loop work against the interface so
// the two versions interoperate transparently.
type Transport interface {
	Send(Envelope) error
	Recv() (Envelope, error)
	Close() error
}

// FrameCodec is the v2 transport: length-prefixed frames over a
// persistent connection. Send is safe for concurrent callers; Recv is for
// one reader goroutine.
type FrameCodec struct {
	writeMu sync.Mutex
	w       *bufio.Writer
	// hdr is the send-side header scratch, guarded by writeMu. A local
	// array would escape through bufio's io.Writer plumbing and cost an
	// allocation per frame.
	hdr    [FrameHeaderLen]byte
	r      *bufio.Reader
	closer io.Closer
	closed bool
}

// NewFrameCodec wraps a stream in the v2 framing. If rw implements
// io.Closer, Close closes it.
func NewFrameCodec(rw io.ReadWriter) *FrameCodec {
	return newFrameCodec(rw, bufio.NewReader(rw), 0)
}

// NewFrameCodecBuffered is NewFrameCodec with an explicit write-buffer
// size: how many bytes SendPayloadNoFlush can stage before the buffer
// flushes itself. Sizes <= 0 select the bufio default.
func NewFrameCodecBuffered(rw io.ReadWriter, wbuf int) *FrameCodec {
	return newFrameCodec(rw, bufio.NewReader(rw), wbuf)
}

// newFrameCodec builds a FrameCodec over an already-buffered reader, so
// the server-side sniffer can hand over the reader it peeked into. wbuf
// sizes the write buffer (<= 0: the bufio default).
func newFrameCodec(rw io.ReadWriter, r *bufio.Reader, wbuf int) *FrameCodec {
	c := &FrameCodec{
		w: bufio.NewWriterSize(rw, wbuf),
		r: r,
	}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// Send writes one envelope as a single frame.
func (c *FrameCodec) Send(env Envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFramePayload)
	}
	var hdr [FrameHeaderLen]byte
	hdr[0] = FrameMagic
	hdr[1] = FrameVersion
	binary.BigEndian.PutUint32(hdr[2:], uint32(len(payload)))
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv reads one frame. A header that cannot be a valid frame (bad magic,
// unknown version, oversized payload) is reported as ErrMalformed; clean
// EOF between frames is io.EOF.
func (c *FrameCodec) Recv() (Envelope, error) {
	env, _, err := c.RecvBuf(nil)
	return env, err
}

// Close closes the underlying stream when it is closable.
func (c *FrameCodec) Close() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// ServerTransport sniffs which protocol version the peer speaks and
// returns the matching transport: the first byte of a v2 connection is
// FrameMagic, of a v1 connection '{'. This is the whole negotiation — a
// v1 client needs no changes to keep working against a v2 server. Any
// other first byte yields ErrMalformed together with a best-effort v1
// transport the caller can use to answer MsgError before closing.
func ServerTransport(rw io.ReadWriter) (Transport, error) {
	return ServerTransportBuffered(rw, 0)
}

// ServerTransportBuffered is ServerTransport with an explicit
// write-buffer size: how many bytes a flush-coalescing writer can stage
// with SendPayloadNoFlush before bufio flushes on its own. Sizes <= 0
// select the bufio default (4 KiB).
func ServerTransportBuffered(rw io.ReadWriter, wbuf int) (Transport, error) {
	br := bufio.NewReader(rw)
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	switch first[0] {
	case FrameMagic:
		return newFrameCodec(rw, br, wbuf), nil
	case '{':
		return newCodec(rw, br, wbuf), nil
	default:
		return newCodec(rw, br, wbuf), fmt.Errorf("%w: unknown protocol byte 0x%02X", ErrMalformed, first[0])
	}
}
