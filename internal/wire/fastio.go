// Pooled-buffer transport fast paths shared by both wire versions.
//
// The Transport interface moves one Envelope per call and allocates per
// message (marshal on send, payload + decoded body on receive). The
// three optional interfaces below are the allocation-free variants the
// server and Client use when the concrete codec supports them — and
// both Codec (v1) and FrameCodec (v2) do, so in practice every
// connection built by ServerTransport or NewClient runs on this path.
// The Transport methods remain as the compatibility surface for
// foreign transports and tests.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// AppendSender sends an envelope built by append-style encoding: the
// type, correlation id and an Appender body, encoded into a pooled
// buffer that never escapes the call.
type AppendSender interface {
	SendAppend(t MsgType, seq uint64, body Appender) error
}

// PayloadSender sends one already-encoded envelope payload (the JSON
// document, without any framing). The codec adds its own framing: the
// v2 header or the v1 newline. The payload is not retained after the
// call returns, so the caller may release or reuse its buffer
// immediately.
type PayloadSender interface {
	SendPayload(payload []byte) error
}

// BufRecver receives one envelope into a caller-owned buffer: buf is
// reused when its capacity suffices (pass buf[:0] of a pooled Buf) and
// the returned slice replaces it. The returned Envelope's Body ALIASES
// the returned buffer — it is valid only until the caller reuses or
// releases the buffer. The returned buffer is valid even on error so a
// pooled caller never loses it.
type BufRecver interface {
	RecvBuf(buf []byte) (Envelope, []byte, error)
}

// BatchSender is PayloadSender with flushing as an explicit policy
// instead of a side effect of every send: SendPayloadNoFlush stages one
// framed payload in the write buffer and Flush pushes everything staged
// onto the stream in a single write. A caller that drains a queue of
// frames stages each one and flushes once when the queue goes idle, so
// a burst of N frames costs one write(2) instead of N. The payload is
// copied into the write buffer before SendPayloadNoFlush returns, so
// the caller may release or reuse it immediately — same contract as
// SendPayload. Frames stay atomic under concurrent senders, and a
// Flush (explicit, or the implicit one inside SendPayload/Send) pushes
// out whatever any sender has staged. Both Codec and FrameCodec
// implement it; plain Send/SendPayload keep their flush-per-send
// behavior for foreign transports and v1 clients that depend on it.
type BatchSender interface {
	PayloadSender
	// SendPayloadNoFlush stages one framed payload without flushing.
	SendPayloadNoFlush(payload []byte) error
	// Flush writes everything staged onto the underlying stream.
	Flush() error
	// Buffered reports how many bytes are currently staged. The write
	// buffer flushes itself when full, so this is bounded by the
	// buffer size the transport was built with.
	Buffered() int
}

// Compile-time proof that both codecs support every fast path.
var (
	_ BatchSender  = (*Codec)(nil)
	_ BatchSender  = (*FrameCodec)(nil)
	_ AppendSender = (*Codec)(nil)
	_ AppendSender = (*FrameCodec)(nil)
	_ BufRecver    = (*Codec)(nil)
	_ BufRecver    = (*FrameCodec)(nil)
)

// sendPayload stages one v2 frame and optionally flushes.
func (c *FrameCodec) sendPayload(payload []byte, flush bool) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFramePayload)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.hdr[0] = FrameMagic
	c.hdr[1] = FrameVersion
	binary.BigEndian.PutUint32(c.hdr[2:], uint32(len(payload)))
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if !flush {
		return nil
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// SendPayload implements PayloadSender for v2: header + payload, flushed.
func (c *FrameCodec) SendPayload(payload []byte) error {
	return c.sendPayload(payload, true)
}

// SendPayloadNoFlush implements BatchSender for v2: the frame is staged
// in the write buffer and leaves only on Flush (or when the buffer
// fills).
func (c *FrameCodec) SendPayloadNoFlush(payload []byte) error {
	return c.sendPayload(payload, false)
}

// Flush implements BatchSender for v2.
func (c *FrameCodec) Flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Buffered implements BatchSender for v2.
func (c *FrameCodec) Buffered() int {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.w.Buffered()
}

// SendAppend implements AppendSender for v2.
func (c *FrameCodec) SendAppend(t MsgType, seq uint64, body Appender) error {
	buf := GetBuf()
	defer buf.Release()
	buf.B = AppendEnvelope(buf.B, t, seq, body)
	return c.SendPayload(buf.B)
}

// sendAppendNoFlush stages one append-encoded frame without flushing,
// encoding straight into the write buffer's free space: header
// placeholder, envelope, then the length backfilled. When the envelope
// fits (the common case) the closing Write degenerates to a self-copy
// and the frame costs no pooled buffer and no memmove; when append had
// to reallocate, Write copies — and may flush earlier staged frames,
// which is the write buffer's documented spill behavior.
func (c *FrameCodec) sendAppendNoFlush(t MsgType, seq uint64, body Appender) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	scratch := c.w.AvailableBuffer()
	scratch = append(scratch, c.hdr[:]...) // placeholder; backfilled below
	scratch = AppendEnvelope(scratch, t, seq, body)
	payload := len(scratch) - FrameHeaderLen
	if payload > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds %d", payload, MaxFramePayload)
	}
	scratch[0] = FrameMagic
	scratch[1] = FrameVersion
	binary.BigEndian.PutUint32(scratch[2:], uint32(payload))
	if _, err := c.w.Write(scratch); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// RecvBuf implements BufRecver for v2. The header is parsed in place
// via Peek — a local array read through io.ReadFull would escape into
// the io.Reader interface and cost an allocation per frame.
func (c *FrameCodec) RecvBuf(buf []byte) (Envelope, []byte, error) {
	hdr, err := c.r.Peek(FrameHeaderLen)
	if err != nil {
		// Mirror io.ReadFull: nothing read passes the error through
		// (io.EOF on clean close); a torn header is a framing error.
		if len(hdr) == 0 || !errors.Is(err, io.EOF) {
			return Envelope{}, buf, err
		}
		return Envelope{}, buf, fmt.Errorf("%w: truncated frame header", ErrMalformed)
	}
	magic, version := hdr[0], hdr[1]
	n := binary.BigEndian.Uint32(hdr[2:])
	// The peeked slice dies at the next reader call, so consume the
	// header (always fully buffered after a successful Peek) before
	// validating, exactly where io.ReadFull left the stream.
	if _, err := c.r.Discard(FrameHeaderLen); err != nil {
		return Envelope{}, buf, err
	}
	if magic != FrameMagic {
		return Envelope{}, buf, fmt.Errorf("%w: bad frame magic 0x%02X", ErrMalformed, magic)
	}
	if version != FrameVersion {
		return Envelope{}, buf, fmt.Errorf("%w: unsupported frame version 0x%02X", ErrMalformed, version)
	}
	if n > MaxFramePayload {
		return Envelope{}, buf, fmt.Errorf("%w: frame payload %d exceeds %d", ErrMalformed, n, MaxFramePayload)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Envelope{}, buf, fmt.Errorf("%w: truncated frame payload", ErrMalformed)
		}
		return Envelope{}, buf, err
	}
	env, err := DecodeEnvelope(buf)
	if err != nil {
		return Envelope{}, buf, fmt.Errorf("%w: frame payload: %v", ErrMalformed, err)
	}
	return env, buf, nil
}

// sendPayload stages one v1 line and optionally flushes.
func (c *Codec) sendPayload(payload []byte, flush bool) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if !flush {
		return nil
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// SendPayload implements PayloadSender for v1: payload + newline, flushed.
func (c *Codec) SendPayload(payload []byte) error {
	return c.sendPayload(payload, true)
}

// SendPayloadNoFlush implements BatchSender for v1: the line is staged
// in the write buffer and leaves only on Flush (or when the buffer
// fills).
func (c *Codec) SendPayloadNoFlush(payload []byte) error {
	return c.sendPayload(payload, false)
}

// Flush implements BatchSender for v1.
func (c *Codec) Flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Buffered implements BatchSender for v1.
func (c *Codec) Buffered() int {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.w.Buffered()
}

// SendAppend implements AppendSender for v1.
func (c *Codec) SendAppend(t MsgType, seq uint64, body Appender) error {
	buf := GetBuf()
	defer buf.Release()
	buf.B = AppendEnvelope(buf.B, t, seq, body)
	return c.SendPayload(buf.B)
}

// sendAppendNoFlush stages one append-encoded line without flushing,
// encoding straight into the write buffer's free space — the v1 twin of
// FrameCodec.sendAppendNoFlush, with the newline in place of a header.
func (c *Codec) sendAppendNoFlush(t MsgType, seq uint64, body Appender) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	scratch := AppendEnvelope(c.w.AvailableBuffer(), t, seq, body)
	scratch = append(scratch, '\n')
	if _, err := c.w.Write(scratch); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// RecvBuf implements BufRecver for v1: one line, accumulated into buf
// without the per-message allocation of bufio.ReadBytes. A final
// unterminated line is still decoded, matching Recv.
func (c *Codec) RecvBuf(buf []byte) (Envelope, []byte, error) {
	buf = buf[:0]
	for {
		frag, err := c.r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		if len(buf) == 0 {
			return Envelope{}, buf, err
		}
		break
	}
	env, err := DecodeEnvelope(buf)
	if err != nil {
		return Envelope{}, buf, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return env, buf, nil
}
