// Pooled-buffer transport fast paths shared by both wire versions.
//
// The Transport interface moves one Envelope per call and allocates per
// message (marshal on send, payload + decoded body on receive). The
// three optional interfaces below are the allocation-free variants the
// server and Client use when the concrete codec supports them — and
// both Codec (v1) and FrameCodec (v2) do, so in practice every
// connection built by ServerTransport or NewClient runs on this path.
// The Transport methods remain as the compatibility surface for
// foreign transports and tests.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// AppendSender sends an envelope built by append-style encoding: the
// type, correlation id and an Appender body, encoded into a pooled
// buffer that never escapes the call.
type AppendSender interface {
	SendAppend(t MsgType, seq uint64, body Appender) error
}

// PayloadSender sends one already-encoded envelope payload (the JSON
// document, without any framing). The codec adds its own framing: the
// v2 header or the v1 newline. The payload is not retained after the
// call returns, so the caller may release or reuse its buffer
// immediately.
type PayloadSender interface {
	SendPayload(payload []byte) error
}

// BufRecver receives one envelope into a caller-owned buffer: buf is
// reused when its capacity suffices (pass buf[:0] of a pooled Buf) and
// the returned slice replaces it. The returned Envelope's Body ALIASES
// the returned buffer — it is valid only until the caller reuses or
// releases the buffer. The returned buffer is valid even on error so a
// pooled caller never loses it.
type BufRecver interface {
	RecvBuf(buf []byte) (Envelope, []byte, error)
}

// SendPayload implements PayloadSender for v2: header + payload.
func (c *FrameCodec) SendPayload(payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: frame payload %d exceeds %d", len(payload), MaxFramePayload)
	}
	var hdr [FrameHeaderLen]byte
	hdr[0] = FrameMagic
	hdr[1] = FrameVersion
	binary.BigEndian.PutUint32(hdr[2:], uint32(len(payload)))
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// SendAppend implements AppendSender for v2.
func (c *FrameCodec) SendAppend(t MsgType, seq uint64, body Appender) error {
	buf := GetBuf()
	defer buf.Release()
	buf.B = AppendEnvelope(buf.B, t, seq, body)
	return c.SendPayload(buf.B)
}

// RecvBuf implements BufRecver for v2.
func (c *FrameCodec) RecvBuf(buf []byte) (Envelope, []byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Envelope{}, buf, fmt.Errorf("%w: truncated frame header", ErrMalformed)
		}
		return Envelope{}, buf, err
	}
	if hdr[0] != FrameMagic {
		return Envelope{}, buf, fmt.Errorf("%w: bad frame magic 0x%02X", ErrMalformed, hdr[0])
	}
	if hdr[1] != FrameVersion {
		return Envelope{}, buf, fmt.Errorf("%w: unsupported frame version 0x%02X", ErrMalformed, hdr[1])
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > MaxFramePayload {
		return Envelope{}, buf, fmt.Errorf("%w: frame payload %d exceeds %d", ErrMalformed, n, MaxFramePayload)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(c.r, buf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Envelope{}, buf, fmt.Errorf("%w: truncated frame payload", ErrMalformed)
		}
		return Envelope{}, buf, err
	}
	env, err := DecodeEnvelope(buf)
	if err != nil {
		return Envelope{}, buf, fmt.Errorf("%w: frame payload: %v", ErrMalformed, err)
	}
	return env, buf, nil
}

// SendPayload implements PayloadSender for v1: payload + newline.
func (c *Codec) SendPayload(payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// SendAppend implements AppendSender for v1.
func (c *Codec) SendAppend(t MsgType, seq uint64, body Appender) error {
	buf := GetBuf()
	defer buf.Release()
	buf.B = AppendEnvelope(buf.B, t, seq, body)
	return c.SendPayload(buf.B)
}

// RecvBuf implements BufRecver for v1: one line, accumulated into buf
// without the per-message allocation of bufio.ReadBytes. A final
// unterminated line is still decoded, matching Recv.
func (c *Codec) RecvBuf(buf []byte) (Envelope, []byte, error) {
	buf = buf[:0]
	for {
		frag, err := c.r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		if len(buf) == 0 {
			return Envelope{}, buf, err
		}
		break
	}
	env, err := DecodeEnvelope(buf)
	if err != nil {
		return Envelope{}, buf, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return env, buf, nil
}
