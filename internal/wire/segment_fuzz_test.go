package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"testing"
)

// chunkedReader serves data in segments that end at the given cut
// positions, simulating a sender whose flush boundaries land anywhere —
// including inside a frame header. Each Read returns at most one
// segment, so the reader sees the same short-read pattern a socket
// would produce.
type chunkedReader struct {
	data []byte
	cuts []int
	off  int
}

func (r *chunkedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	end := len(r.data)
	for _, c := range r.cuts {
		if c > r.off && c < end {
			end = c
			break
		}
	}
	n := copy(p, r.data[r.off:end])
	r.off += n
	return n, nil
}

// readWriter pairs a reader with a discarding writer so the read-only
// fixtures satisfy the codec constructors.
type readWriter struct {
	io.Reader
	io.Writer
}

func newChunkedTransport(data []byte, cuts []int) *FrameCodec {
	return NewFrameCodec(readWriter{&chunkedReader{data: data, cuts: cuts}, io.Discard})
}

// buildFrameStream encodes envelopes whose bodies are derived from raw
// fuzz bytes (JSON-escaped by the encoder, so any input is valid) and
// returns both the wire bytes and the decoded reference envelopes.
func buildFrameStream(payloads [][]byte) ([]byte, []Envelope) {
	var stream []byte
	var want []Envelope
	for i, p := range payloads {
		seq := uint64(i + 1)
		body := Locate{Querier: string(p), Target: fmt.Sprintf("t%d", i)}
		payload := AppendEnvelope(nil, MsgLocate, seq, body)
		var hdr [FrameHeaderLen]byte
		hdr[0] = FrameMagic
		hdr[1] = FrameVersion
		hdr[2] = byte(len(payload) >> 24)
		hdr[3] = byte(len(payload) >> 16)
		hdr[4] = byte(len(payload) >> 8)
		hdr[5] = byte(len(payload))
		stream = append(stream, hdr[:]...)
		stream = append(stream, payload...)
		// Body is left empty in the reference: the differential check
		// below compares segmented against unsegmented decoding.
		want = append(want, Envelope{Type: MsgLocate, Seq: seq})
	}
	return stream, want
}

// recvAll drains every frame from c, copying bodies out of the reused
// receive buffer.
func recvAll(c *FrameCodec) ([]Envelope, error) {
	var got []Envelope
	var buf []byte
	for {
		var env Envelope
		var err error
		env, buf, err = c.RecvBuf(buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return got, nil
			}
			return got, err
		}
		env.Body = append([]byte(nil), env.Body...)
		got = append(got, env)
	}
}

// FuzzFrameReadSegmentation checks that the frame reader is agnostic to
// where the sender's flush boundaries fall: the same frame stream must
// decode to the same envelopes no matter how it is segmented — even
// when a segment ends inside the six-byte frame header. The cuts come
// from the fuzzer, so it hunts exactly for the split the header-peek
// path might mishandle.
func FuzzFrameReadSegmentation(f *testing.F) {
	f.Add([]byte("alice"), []byte{3, 7, 1})
	f.Add([]byte(`quo"te\and`+"\n"), []byte{1, 1, 1, 1, 1, 1})
	f.Add([]byte{}, []byte{0xFF, 2})
	f.Fuzz(func(t *testing.T, seed []byte, cutBytes []byte) {
		// A handful of frames with fuzz-derived bodies: first raw, then
		// shifted variants so frame lengths differ.
		payloads := [][]byte{seed}
		for i := 1; i < 4; i++ {
			p := append(bytes.Repeat([]byte{byte('a' + i)}, i), seed...)
			payloads = append(payloads, p)
		}
		stream, want := buildFrameStream(payloads)

		// Reference: one unbroken read.
		wantGot, err := recvAll(newChunkedTransport(stream, nil))
		if err != nil {
			t.Fatalf("unsegmented stream failed: %v", err)
		}
		if len(wantGot) != len(want) {
			t.Fatalf("unsegmented stream: %d envelopes, want %d", len(wantGot), len(want))
		}

		// Fuzz-chosen cuts: each byte is a delta to the next boundary.
		var cuts []int
		pos := 0
		for _, d := range cutBytes {
			pos += int(d)
			if pos >= len(stream) {
				break
			}
			cuts = append(cuts, pos)
		}
		sort.Ints(cuts)
		got, err := recvAll(newChunkedTransport(stream, cuts))
		if err != nil {
			t.Fatalf("segmented stream (cuts %v) failed: %v", cuts, err)
		}
		if len(got) != len(wantGot) {
			t.Fatalf("segmented stream (cuts %v): %d envelopes, want %d", cuts, len(got), len(wantGot))
		}
		for i := range got {
			if got[i].Type != wantGot[i].Type || got[i].Seq != wantGot[i].Seq || !bytes.Equal(got[i].Body, wantGot[i].Body) {
				t.Fatalf("segmented envelope %d = %+v, want %+v (cuts %v)", i, got[i], wantGot[i], cuts)
			}
		}
	})
}

// TestFrameHeaderSplitAtEveryByte walks a single cut across every
// position of a two-frame stream — in particular each of the six header
// bytes of both frames — and requires identical decoding each time.
func TestFrameHeaderSplitAtEveryByte(t *testing.T) {
	stream, want := buildFrameStream([][]byte{[]byte("alice"), []byte("bob")})
	for cut := 1; cut < len(stream); cut++ {
		got, err := recvAll(newChunkedTransport(stream, []int{cut}))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(got) != len(want) {
			t.Fatalf("cut at %d: %d envelopes, want %d", cut, len(got), len(want))
		}
		for i := range got {
			if got[i].Type != want[i].Type || got[i].Seq != want[i].Seq {
				t.Fatalf("cut at %d: envelope %d = %+v, want %+v", cut, i, got[i], want[i])
			}
		}
	}
}

// TestFrameTruncatedInsideHeader confirms a stream that ends mid-header
// is reported as a framing error, not silently dropped or misread.
func TestFrameTruncatedInsideHeader(t *testing.T) {
	stream, _ := buildFrameStream([][]byte{[]byte("alice")})
	for cut := 1; cut < FrameHeaderLen; cut++ {
		c := newChunkedTransport(stream[:cut], nil)
		_, _, err := c.RecvBuf(nil)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncated header (%d bytes): err = %v, want ErrMalformed", cut, err)
		}
	}
}
