package wire

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"bips/internal/graph"
)

func validContacts() ContactsQuery {
	return ContactsQuery{Querier: "alice", Target: "bob", From: 0, To: 480000, MinOverlap: 6000}
}

func validOccupancy() OccupancyQuery {
	return OccupancyQuery{Querier: "alice", Rooms: []graph.NodeID{4, 5}, From: 0, To: 480000, Bucket: 60000}
}

func validDwell() DwellQuery {
	return DwellQuery{Querier: "alice", Kind: DwellRoom, Room: 4, From: 0, To: 480000}
}

func TestContactsQueryValidate(t *testing.T) {
	ok := validContacts()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid contacts rejected: %v", err)
	}
	// An empty window and a zero minOverlap are well-formed shapes.
	empty := ContactsQuery{Querier: "a", Target: "b", From: 100, To: 100}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty-window contacts rejected: %v", err)
	}
	cases := map[string]func(*ContactsQuery){
		"empty querier":       func(q *ContactsQuery) { q.Querier = "" },
		"empty target":        func(q *ContactsQuery) { q.Target = "" },
		"inverted window":     func(q *ContactsQuery) { q.From, q.To = q.To, q.From },
		"negative minOverlap": func(q *ContactsQuery) { q.MinOverlap = -1 },
	}
	for name, mutate := range cases {
		q := validContacts()
		mutate(&q)
		err := q.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestOccupancyQueryValidate(t *testing.T) {
	ok := validOccupancy()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid occupancy rejected: %v", err)
	}
	// The widest admissible series is exactly MaxOccupancyBuckets long.
	edge := OccupancyQuery{Querier: "a", Rooms: []graph.NodeID{1}, From: 0, To: MaxOccupancyBuckets, Bucket: 1}
	if err := edge.Validate(); err != nil {
		t.Fatalf("edge-size occupancy rejected: %v", err)
	}
	cases := map[string]func(*OccupancyQuery){
		"empty querier": func(q *OccupancyQuery) { q.Querier = "" },
		"no rooms":      func(q *OccupancyQuery) { q.Rooms = nil },
		"oversized zone": func(q *OccupancyQuery) {
			q.Rooms = make([]graph.NodeID, MaxOccupancyRooms+1)
		},
		"empty window":     func(q *OccupancyQuery) { q.To = q.From },
		"inverted window":  func(q *OccupancyQuery) { q.From, q.To = q.To, q.From },
		"zero bucket":      func(q *OccupancyQuery) { q.Bucket = 0 },
		"negative bucket":  func(q *OccupancyQuery) { q.Bucket = -60 },
		"too many buckets": func(q *OccupancyQuery) { q.Bucket = 1; q.From = 0; q.To = MaxOccupancyBuckets + 1 },
	}
	for name, mutate := range cases {
		q := validOccupancy()
		mutate(&q)
		err := q.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestDwellQueryValidate(t *testing.T) {
	okDwell := validDwell()
	if err := okDwell.Validate(); err != nil {
		t.Fatalf("valid room dwell rejected: %v", err)
	}
	dev := DwellQuery{Querier: "alice", Kind: DwellDevice, Target: "bob", From: 0, To: 100}
	if err := dev.Validate(); err != nil {
		t.Fatalf("valid device dwell rejected: %v", err)
	}
	cases := map[string]func(*DwellQuery){
		"empty querier":    func(q *DwellQuery) { q.Querier = "" },
		"unknown kind":     func(q *DwellQuery) { q.Kind = "zone" },
		"empty kind":       func(q *DwellQuery) { q.Kind = "" },
		"device no target": func(q *DwellQuery) { q.Kind = DwellDevice; q.Target = "" },
		"inverted window":  func(q *DwellQuery) { q.From, q.To = 10, 5 },
	}
	for name, mutate := range cases {
		q := validDwell()
		mutate(&q)
		err := q.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), ErrMalformed.Error()) {
			t.Errorf("%s: error %q does not wrap ErrMalformed", name, err)
		}
	}
}

func TestAnalyticsFrameRoundtrips(t *testing.T) {
	roundtrip := func(tp MsgType, seq uint64, body, out any) Envelope {
		t.Helper()
		var buf bytes.Buffer
		codec := NewFrameCodec(struct {
			io.Reader
			io.Writer
		}{&buf, &buf})
		env, err := MarshalBody(tp, seq, body)
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.Send(env); err != nil {
			t.Fatal(err)
		}
		got, err := codec.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != tp || got.Seq != seq {
			t.Fatalf("roundtrip envelope = %+v", got)
		}
		if err := UnmarshalBody(got, out); err != nil {
			t.Fatal(err)
		}
		return got
	}

	var cq ContactsQuery
	roundtrip(MsgContacts, 7, validContacts(), &cq)
	if cq != validContacts() {
		t.Fatalf("roundtrip contacts = %+v", cq)
	}
	var cr ContactsResult
	wantCR := ContactsResult{Contacts: []Contact{{
		User: "bob", Device: "00:00:B0:00:00:02", Overlap: 90000,
		Rooms: []graph.NodeID{4, 6}, First: 60000, Last: 300000,
	}}}
	roundtrip(MsgContactsResult, 7, wantCR, &cr)
	if len(cr.Contacts) != 1 || cr.Contacts[0].Device != "00:00:B0:00:00:02" ||
		cr.Contacts[0].Overlap != 90000 || len(cr.Contacts[0].Rooms) != 2 {
		t.Fatalf("roundtrip contacts result = %+v", cr)
	}

	var oq OccupancyQuery
	roundtrip(MsgOccupancy, 8, validOccupancy(), &oq)
	if oq.Querier != "alice" || len(oq.Rooms) != 2 || oq.Bucket != 60000 {
		t.Fatalf("roundtrip occupancy = %+v", oq)
	}
	var or OccupancyResult
	roundtrip(MsgOccupancyResult, 8, OccupancyResult{
		Buckets: []OccupancyPoint{{At: 0, Count: 3}, {At: 60000, Count: 1}},
	}, &or)
	if len(or.Buckets) != 2 || or.Buckets[0].Count != 3 {
		t.Fatalf("roundtrip occupancy result = %+v", or)
	}

	var dq DwellQuery
	roundtrip(MsgDwell, 9, validDwell(), &dq)
	if dq != validDwell() {
		t.Fatalf("roundtrip dwell = %+v", dq)
	}
	var dr DwellResult
	wantDR := DwellResult{Samples: 4, Mean: 120.5, Stddev: 8.25, Min: 100, Max: 140, P50: 120, P90: 138, P99: 140}
	roundtrip(MsgDwellResult, 9, wantDR, &dr)
	if dr != wantDR {
		t.Fatalf("roundtrip dwell result = %+v, want %+v", dr, wantDR)
	}
}

// TestProtocolDocContactsHexExample: the worked hex example of
// docs/PROTOCOL.md section 10 must be the codec's actual output, byte
// for byte — if the framing or the JSON encoding of the analytics
// messages changes, the spec must change with it.
func TestProtocolDocContactsHexExample(t *testing.T) {
	raw, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading protocol spec: %v", err)
	}
	doc := string(raw)

	frameHex := func(env Envelope) string {
		var buf bytes.Buffer
		c := NewFrameCodec(struct {
			io.Reader
			io.Writer
		}{&buf, &buf})
		if err := c.Send(env); err != nil {
			t.Fatal(err)
		}
		return hex.Dump(buf.Bytes())
	}

	req, err := MarshalBody(MsgContacts, 7, validContacts())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := MarshalBody(MsgContactsResult, 7, ContactsResult{Contacts: []Contact{{
		User: "bob", Device: "00:00:B0:00:00:02", Overlap: 90000,
		Rooms: []graph.NodeID{4, 6}, First: 60000, Last: 300000,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for name, dump := range map[string]string{
		"contacts request":         frameHex(req),
		"contacts.result response": frameHex(resp),
	} {
		for _, line := range strings.Split(strings.TrimRight(dump, "\n"), "\n") {
			if !strings.Contains(doc, line) {
				t.Errorf("docs/PROTOCOL.md section 10 is missing the %s hex line:\n%s", name, line)
			}
		}
	}
}

// FuzzContactsQueryDecode throws arbitrary bytes at the contacts body
// decoder: it must never panic, and anything it accepts and Validate
// passes must survive a marshal/unmarshal roundtrip unchanged.
func FuzzContactsQueryDecode(f *testing.F) {
	seed, err := json.Marshal(validContacts())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"querier":"a","target":"b","from":0,"to":10}`))
	f.Add([]byte(`{"querier":"a","target":"b","from":10,"to":0}`))
	f.Add([]byte(`{"querier":"a","target":"b","minOverlap":-5}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var q ContactsQuery
		if err := json.Unmarshal(raw, &q); err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			return
		}
		re, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("marshal of accepted contacts failed: %v", err)
		}
		var q2 ContactsQuery
		if err := json.Unmarshal(re, &q2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if q2 != q {
			t.Fatalf("roundtrip changed contacts: %+v vs %+v", q, q2)
		}
		if err := q2.Validate(); err != nil {
			t.Fatalf("roundtrip broke validity: %v", err)
		}
	})
}

// FuzzOccupancyQueryDecode: same contract for the occupancy decoder,
// including the bucket-count bound surviving the roundtrip.
func FuzzOccupancyQueryDecode(f *testing.F) {
	seed, err := json.Marshal(validOccupancy())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"querier":"a","rooms":[1],"from":0,"to":100,"bucket":1}`))
	f.Add([]byte(`{"querier":"a","rooms":[1],"from":0,"to":100,"bucket":0}`))
	f.Add([]byte(`{"querier":"a","rooms":[],"from":0,"to":100,"bucket":10}`))
	f.Add([]byte(`{"querier":"a","rooms":[1],"from":0,"to":9007199254740993,"bucket":1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var q OccupancyQuery
		if err := json.Unmarshal(raw, &q); err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			return
		}
		re, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("marshal of accepted occupancy failed: %v", err)
		}
		var q2 OccupancyQuery
		if err := json.Unmarshal(re, &q2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if q2.Querier != q.Querier || len(q2.Rooms) != len(q.Rooms) ||
			q2.From != q.From || q2.To != q.To || q2.Bucket != q.Bucket {
			t.Fatalf("roundtrip changed occupancy: %+v vs %+v", q, q2)
		}
		if err := q2.Validate(); err != nil {
			t.Fatalf("roundtrip broke validity: %v", err)
		}
	})
}

// FuzzDwellQueryDecode: same contract for the dwell decoder.
func FuzzDwellQueryDecode(f *testing.F) {
	seed, err := json.Marshal(validDwell())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"querier":"a","kind":"device","target":"b","from":0,"to":100}`))
	f.Add([]byte(`{"querier":"a","kind":"room","room":4,"from":100,"to":100}`))
	f.Add([]byte(`{"querier":"a","kind":"zone","room":4}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var q DwellQuery
		if err := json.Unmarshal(raw, &q); err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			return
		}
		re, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("marshal of accepted dwell failed: %v", err)
		}
		var q2 DwellQuery
		if err := json.Unmarshal(re, &q2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if q2 != q {
			t.Fatalf("roundtrip changed dwell: %+v vs %+v", q, q2)
		}
		if err := q2.Validate(); err != nil {
			t.Fatalf("roundtrip broke validity: %v", err)
		}
	})
}
