// Ingest session messages: the sequenced, batched write path from
// workstations to the central server.
//
// A workstation opens a session with MsgIngestHello, then streams
// MsgPresenceBatch frames carrying monotonically increasing per-session
// sequence numbers. The server answers every frame (and the hello) with
// MsgIngestAck carrying the session's cumulative ack: every frame with
// Seq <= Acked has been applied exactly once. A frame at Acked+1 is
// applied; a frame at or below Acked is a duplicate and acknowledged
// without re-applying — which is what makes reconnect-and-resend (and a
// restarted deterministic station replaying its stream from the start)
// idempotent. See docs/PROTOCOL.md section 8 for the full state machine.
package wire

import (
	"fmt"

	"bips/internal/graph"
)

// MaxBatchDeltas bounds the deltas of a single PresenceBatch frame so a
// hostile or buggy station cannot make the server buffer or apply an
// arbitrarily large frame under one session lock. It is far above any
// sane flush policy (stations default to 64) while keeping a full frame
// comfortably inside MaxFramePayload.
const MaxBatchDeltas = 4096

// IngestHello opens or resumes an ingest session. Session is a
// station-chosen stable identifier (bips-station defaults to its
// BD_ADDR); re-sending the hello for a known session never loses
// progress — the ack tells the station where to resume.
type IngestHello struct {
	Session string       `json:"session"`
	Station string       `json:"station"`
	Room    graph.NodeID `json:"room"`
}

// PresenceBatch is one sequenced frame of presence deltas on an ingest
// session. Seq is the session frame sequence number (1, 2, 3, ... —
// independent of the envelope correlation id), assigned by the station
// when the frame is cut and never reused for different content.
type PresenceBatch struct {
	Session string     `json:"session"`
	Seq     uint64     `json:"seq"`
	Deltas  []Presence `json:"deltas"`
}

// Validate checks the frame's protocol invariants: a non-empty session,
// a non-zero sequence number, and 1..MaxBatchDeltas deltas. It does not
// validate the deltas themselves (rooms, addresses) — that is the
// server's per-delta business validation.
func (b *PresenceBatch) Validate() error {
	if b.Session == "" {
		return fmt.Errorf("%w: presence.batch without session", ErrMalformed)
	}
	if b.Seq == 0 {
		return fmt.Errorf("%w: presence.batch sequence 0 (frames start at 1)", ErrMalformed)
	}
	if len(b.Deltas) == 0 {
		return fmt.Errorf("%w: empty presence.batch", ErrMalformed)
	}
	if len(b.Deltas) > MaxBatchDeltas {
		return fmt.Errorf("%w: presence.batch of %d deltas exceeds %d", ErrMalformed, len(b.Deltas), MaxBatchDeltas)
	}
	return nil
}

// IngestAck answers IngestHello and PresenceBatch. Acked is the
// session's cumulative ack: every frame with Seq <= Acked is applied.
// Applied is the number of deltas this request actually applied to the
// location database (0 for a hello, a duplicate frame, or a frame of
// pure no-op deltas); Rejected counts deltas the server refused on
// per-delta validation (bad address, unknown room) — they are skipped,
// not retried, and do not block the ack; Duplicate reports that the
// frame was at or below the cumulative ack and was skipped whole.
type IngestAck struct {
	Acked     uint64 `json:"acked"`
	Applied   int    `json:"applied"`
	Rejected  int    `json:"rejected,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
}
