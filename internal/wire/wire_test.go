package wire

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"bips/internal/baseband"
)

func TestAddrRoundTrip(t *testing.T) {
	a := baseband.BDAddr(0x001122334455)
	s := FormatAddr(a)
	got, err := ParseAddr(s)
	if err != nil || got != a {
		t.Errorf("round trip = %v, %v", got, err)
	}
	if _, err := ParseAddr("nonsense"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodec(a), NewCodec(b)

	go func() {
		env, err := MarshalBody(MsgLocate, 7, Locate{Querier: "alice", Target: "bob"})
		if err != nil {
			t.Error(err)
			return
		}
		if err := ca.Send(env); err != nil {
			t.Error(err)
		}
	}()
	env, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgLocate || env.Seq != 7 {
		t.Errorf("envelope = %+v", env)
	}
	var body Locate
	if err := UnmarshalBody(env, &body); err != nil {
		t.Fatal(err)
	}
	if body.Querier != "alice" || body.Target != "bob" {
		t.Errorf("body = %+v", body)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{strings.NewReader("this is not json\n"), io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Error("garbage line decoded")
	}
}

func TestCodecUnterminatedFinalLine(t *testing.T) {
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{strings.NewReader(`{"type":"ok","seq":1}`), io.Discard})
	env, err := c.Recv()
	if err != nil {
		t.Fatalf("unterminated final line rejected: %v", err)
	}
	if env.Type != MsgOK || env.Seq != 1 {
		t.Errorf("envelope = %+v", env)
	}
}

func TestCodecSendAfterClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewCodec(a)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if err := c.Send(Envelope{Type: MsgOK}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

// echoServer answers every request with an OK (or error) envelope of the
// same sequence number.
func echoServer(t *testing.T, conn net.Conn, respond func(Envelope) Envelope) {
	t.Helper()
	codec := NewCodec(conn)
	go func() {
		for {
			env, err := codec.Recv()
			if err != nil {
				return
			}
			if err := codec.Send(respond(env)); err != nil {
				return
			}
		}
	}()
}

func TestClientCall(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b, func(req Envelope) Envelope {
		resp, err := MarshalBody(MsgLocateResult, req.Seq, LocateResult{Room: 4, RoomName: "Lab 1"})
		if err != nil {
			t.Error(err)
		}
		return resp
	})
	client := NewClient(NewCodec(a))
	defer client.Close()

	var res LocateResult
	if err := client.Call(MsgLocate, Locate{Querier: "a", Target: "b"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Room != 4 || res.RoomName != "Lab 1" {
		t.Errorf("result = %+v", res)
	}
}

func TestClientErrorResponse(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b, func(req Envelope) Envelope {
		resp, err := MarshalBody(MsgError, req.Seq, Error{Code: CodeDenied, Message: "no"})
		if err != nil {
			t.Error(err)
		}
		return resp
	})
	client := NewClient(NewCodec(a))
	defer client.Close()

	err := client.Call(MsgLocate, Locate{}, nil)
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("error = %v, want *wire.Error", err)
	}
	if werr.Code != CodeDenied {
		t.Errorf("code = %q", werr.Code)
	}
	if !strings.Contains(werr.Error(), "denied") {
		t.Errorf("Error() = %q", werr.Error())
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	a, b := net.Pipe()
	echoServer(t, b, func(req Envelope) Envelope {
		// Answer with the request body so callers can verify their
		// own response.
		return Envelope{Type: MsgOK, Seq: req.Seq, Body: req.Body}
	})
	client := NewClient(NewCodec(a))
	defer client.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := strings.Repeat("x", i+1)
			var out Logout
			if err := client.Call(MsgLogout, Logout{User: user}, &out); err != nil {
				t.Error(err)
				return
			}
			if out.User != user {
				t.Errorf("response mismatch: %q != %q", out.User, user)
			}
		}()
	}
	wg.Wait()
}

func TestClientPeerDisconnectUnblocksCalls(t *testing.T) {
	a, b := net.Pipe()
	client := NewClient(NewCodec(a))
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		done <- client.Call(MsgLocate, Locate{}, nil)
	}()
	// Give the call a moment to register, then kill the peer.
	b.Close()
	if err := <-done; err == nil {
		t.Error("call succeeded after peer disconnect")
	}
	// Subsequent calls fail fast.
	if err := client.Call(MsgLocate, Locate{}, nil); err == nil {
		t.Error("call after failure succeeded")
	}
}

func TestEnvelopeJSONShape(t *testing.T) {
	env, err := MarshalBody(MsgPresence, 3, Presence{
		Device: "AA:BB:CC:DD:EE:FF", Room: 2, At: 100, Present: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Presence
	if err := UnmarshalBody(env, &p); err != nil {
		t.Fatal(err)
	}
	if p.Device != "AA:BB:CC:DD:EE:FF" || p.Room != 2 || p.At != 100 || !p.Present {
		t.Errorf("presence = %+v", p)
	}
}
