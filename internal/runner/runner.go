// Package runner executes Monte-Carlo trials on a worker pool with
// deterministic per-trial randomness.
//
// Every experiment in this repository is a sweep of independent trials
// (Table 1's 500 inquiry trials, Figure 2's per-population runs, the
// ablations). The runner gives each trial its own rand.Rand whose seed is
// derived from the sweep's root seed and the trial index by a splittable
// mixing function (splitmix64), so the stream a trial sees depends only on
// (root seed, index) — never on which worker ran it or in what order.
// Results are handed to a single consumer in strict index order. Together
// these make every aggregate bit-identical at any worker count:
//
//	workers=1 and workers=8 produce byte-for-byte the same tables.
//
// Memory stays flat at millions of trials: the consumer streams results
// into running aggregates (see internal/stats), and the reorder window
// that restores index order is bounded, applying backpressure to the
// dispatcher instead of buffering the whole sweep.
package runner

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
)

// errIncomplete guards against a sweep ending without error, cancellation
// or full coverage; it indicates a runner bug, not a caller mistake.
var errIncomplete = errors.New("runner: sweep ended before all trials were consumed")

// golden is 2^64/phi, the splitmix64 sequence increment.
const golden = 0x9E3779B97F4A7C15

// TrialSeed derives the RNG seed of one trial from the sweep's root seed
// and the trial index using the splitmix64 output function. Distinct
// (root, trial) pairs map to well-separated seeds, so per-trial streams
// are independent for all practical purposes.
func TrialSeed(root int64, trial int) int64 {
	z := uint64(root) + (uint64(trial)+1)*golden
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewRand returns the dedicated random stream of one trial.
func NewRand(root int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(root, trial)))
}

// Pool is a reusable trial executor. The zero value is not valid; use
// NewPool. A Pool carries no per-sweep state and may be shared by
// consecutive sweeps.
type Pool struct {
	workers  int
	progress func(done, total int)
}

// Option configures a Pool.
type Option func(*Pool)

// WithWorkers overrides the worker count (default GOMAXPROCS). Values
// below 1 are ignored.
func WithWorkers(n int) Option {
	return func(p *Pool) {
		if n >= 1 {
			p.workers = n
		}
	}
}

// WithProgress installs a progress callback, invoked from the consumer
// goroutine roughly every 5% of the sweep and once at completion with
// done == total. The callback must not block for long: it is on the
// result-draining path.
func WithProgress(fn func(done, total int)) Option {
	return func(p *Pool) { p.progress = fn }
}

// NewPool builds a Pool sized by GOMAXPROCS unless overridden.
func NewPool(opts ...Option) *Pool {
	p := &Pool{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// item carries one trial's outcome to the sequencer.
type item[T any] struct {
	i   int
	v   T
	err error
}

// Run executes trials 0..trials-1 on the pool. Each trial i runs
// trial(i, rng) with rng = NewRand(seed, i) on some worker; consume(i, v)
// then runs on the caller's goroutine in strict index order. The first
// error — from a trial (lowest index wins), from consume, or ctx — cancels
// the sweep and is returned. On cancellation consume is never called again,
// so aggregates reflect an index prefix of the sweep.
func Run[T any](ctx context.Context, p *Pool, seed int64, trials int,
	trial func(i int, rng *rand.Rand) (T, error),
	consume func(i int, v T) error) error {

	if trials <= 0 {
		return nil
	}
	workers := p.workers
	if workers > trials {
		workers = trials
	}

	every := trials / 20
	if every < 1 {
		every = 1
	}
	tick := func(done int) {
		if p.progress != nil && (done%every == 0 || done == trials) {
			p.progress(done, trials)
		}
	}

	if workers <= 1 {
		for i := 0; i < trials; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := trial(i, NewRand(seed, i))
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
			tick(i + 1)
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The reorder window: at most `window` trials are dispatched but not
	// yet consumed, which bounds both the results channel and the pending
	// map regardless of sweep length.
	window := 4 * workers
	sem := make(chan struct{}, window)
	indices := make(chan int)
	results := make(chan item[T], window)

	go func() { // dispatcher
		defer close(indices)
		for i := 0; i < trials; i++ {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				v, err := trial(i, NewRand(seed, i))
				select {
				case results <- item[T]{i: i, v: v, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Sequencer: restore index order, stream into consume.
	pending := make(map[int]item[T], window)
	next := 0
	var sweepErr error
	fail := func(err error) {
		if sweepErr == nil {
			sweepErr = err
			cancel()
		}
	}
	for it := range results {
		pending[it.i] = it
		for sweepErr == nil {
			nit, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-sem
			if nit.err != nil {
				fail(nit.err)
				break
			}
			if err := consume(next, nit.v); err != nil {
				fail(err)
				break
			}
			next++
			tick(next)
		}
	}
	if sweepErr != nil {
		return sweepErr
	}
	if next < trials {
		// Workers stopped early: external cancellation.
		if err := ctx.Err(); err != nil {
			return err
		}
		return errIncomplete
	}
	return nil
}
