package runner

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"bips/internal/stats"
)

// aggregate runs a toy Monte-Carlo sweep (each trial draws a handful of
// floats from its stream) and returns the order-sensitive running summary.
func aggregate(t *testing.T, workers, trials int, seed int64) (stats.Summary, []int) {
	t.Helper()
	var s stats.Summary
	var order []int
	err := Run(context.Background(), NewPool(WithWorkers(workers)), seed, trials,
		func(i int, rng *rand.Rand) (float64, error) {
			x := 0.0
			for k := 0; k < 5; k++ {
				x += rng.Float64()
			}
			return x, nil
		},
		func(i int, v float64) error {
			s.Add(v)
			order = append(order, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return s, order
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const trials = 500
	ref, refOrder := aggregate(t, 1, trials, 2003)
	for _, workers := range []int{2, 4, 8} {
		got, order := aggregate(t, workers, trials, 2003)
		// Mean and variance are float-order sensitive; exact equality
		// proves both the per-trial streams and the consume order are
		// independent of the worker count.
		if got != ref {
			t.Errorf("workers=%d: summary %+v != serial %+v", workers, got, ref)
		}
		if len(order) != len(refOrder) {
			t.Fatalf("workers=%d: consumed %d trials, want %d", workers, len(order), len(refOrder))
		}
		for i := range order {
			if order[i] != i {
				t.Fatalf("workers=%d: consume order broken at %d: got index %d", workers, i, order[i])
			}
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, _ := aggregate(t, 4, 200, 1)
	b, _ := aggregate(t, 4, 200, 2)
	if a.Mean() == b.Mean() {
		t.Error("different root seeds produced identical aggregates")
	}
}

func TestRunCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var consumed atomic.Int32
	err := Run(ctx, NewPool(WithWorkers(4)), 1, 10000,
		func(i int, rng *rand.Rand) (int, error) {
			time.Sleep(time.Microsecond)
			return i, nil
		},
		func(i int, v int) error {
			if consumed.Add(1) == 50 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := consumed.Load(); n >= 10000 || n < 50 {
		t.Errorf("consumed %d trials, want partial prefix >= 50", n)
	}
}

func TestRunTrialError(t *testing.T) {
	boom := errors.New("boom")
	var last int
	err := Run(context.Background(), NewPool(WithWorkers(4)), 1, 1000,
		func(i int, rng *rand.Rand) (int, error) {
			if i == 137 {
				return 0, boom
			}
			return i, nil
		},
		func(i int, v int) error {
			last = i
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// In-order consumption: everything before the failing trial, nothing at
	// or after it.
	if last >= 137 {
		t.Errorf("consumed index %d at or past the failing trial", last)
	}
}

func TestRunConsumeError(t *testing.T) {
	stop := errors.New("stop")
	err := Run(context.Background(), NewPool(WithWorkers(4)), 1, 1000,
		func(i int, rng *rand.Rand) (int, error) { return i, nil },
		func(i int, v int) error {
			if i == 10 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
}

func TestRunZeroTrials(t *testing.T) {
	called := false
	err := Run(context.Background(), NewPool(), 1, 0,
		func(i int, rng *rand.Rand) (int, error) { return 0, nil },
		func(i int, v int) error { called = true; return nil })
	if err != nil || called {
		t.Errorf("zero trials: err=%v called=%v", err, called)
	}
}

func TestRunProgress(t *testing.T) {
	var calls int
	var lastDone, lastTotal int
	p := NewPool(WithWorkers(3), WithProgress(func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	}))
	if err := Run(context.Background(), p, 1, 100,
		func(i int, rng *rand.Rand) (int, error) { return i, nil },
		func(i int, v int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastDone != 100 || lastTotal != 100 {
		t.Errorf("final progress = %d/%d, want 100/100", lastDone, lastTotal)
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := make(map[int64]int, 20000)
	for _, root := range []int64{0, 1, 2003, -7} {
		for i := 0; i < 5000; i++ {
			s := TrialSeed(root, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: %d (prev entry %d)", s, prev)
			}
			seen[s] = i
		}
	}
}

func TestNewRandIndependentOfWorkerState(t *testing.T) {
	a := NewRand(42, 7).Int63()
	b := NewRand(42, 7).Int63()
	if a != b {
		t.Error("NewRand not reproducible")
	}
	if NewRand(42, 8).Int63() == a {
		t.Error("adjacent trials share a stream")
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool().Workers() < 1 {
		t.Error("default pool has no workers")
	}
	if got := NewPool(WithWorkers(0)).Workers(); got < 1 {
		t.Errorf("WithWorkers(0) accepted: %d", got)
	}
	if got := NewPool(WithWorkers(6)).Workers(); got != 6 {
		t.Errorf("WithWorkers(6) = %d", got)
	}
}
