package building

import (
	"errors"
	"math"
	"testing"

	"bips/internal/radio"
)

func TestNewValidation(t *testing.T) {
	room := func(id RoomID, x float64) Room {
		return Room{ID: id, Name: "r", Center: radio.Point{X: x}, Station: StationAddr(int(id))}
	}
	tests := []struct {
		name      string
		rooms     []Room
		corridors []Corridor
		wantErr   error
	}{
		{name: "empty", wantErr: ErrNoRooms},
		{
			name:    "duplicate room",
			rooms:   []Room{room(1, 0), room(1, 5)},
			wantErr: ErrDuplicateRoom,
		},
		{
			name:      "unknown corridor end",
			rooms:     []Room{room(1, 0), room(2, 5)},
			corridors: []Corridor{{A: 1, B: 9}},
			wantErr:   ErrUnknownRoom,
		},
		{
			name:  "disconnected",
			rooms: []Room{room(1, 0), room(2, 5)},
			// no corridors: all-pairs precompute must fail
			wantErr: errors.New("graph: building topology must be connected"),
		},
		{
			name:      "valid",
			rooms:     []Room{room(1, 0), room(2, 5)},
			corridors: []Corridor{{A: 1, B: 2}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.rooms, tt.corridors)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("New() error = %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("New() succeeded, want error")
			}
			var sentinel error
			switch {
			case errors.Is(tt.wantErr, ErrNoRooms),
				errors.Is(tt.wantErr, ErrDuplicateRoom),
				errors.Is(tt.wantErr, ErrUnknownRoom):
				sentinel = tt.wantErr
			}
			if sentinel != nil && !errors.Is(err, sentinel) {
				t.Errorf("New() error = %v, want %v", err, sentinel)
			}
		})
	}
}

func TestCorridorDefaultDistance(t *testing.T) {
	rooms := []Room{
		{ID: 1, Name: "a", Center: radio.Point{X: 0, Y: 0}},
		{ID: 2, Name: "b", Center: radio.Point{X: 3, Y: 4}},
	}
	b, err := New(rooms, []Corridor{{A: 1, B: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Distance(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-9 {
		t.Errorf("default corridor distance = %v, want Euclidean 5", d)
	}
}

func TestExplicitCorridorDistance(t *testing.T) {
	rooms := []Room{
		{ID: 1, Name: "a", Center: radio.Point{X: 0, Y: 0}},
		{ID: 2, Name: "b", Center: radio.Point{X: 3, Y: 4}},
	}
	b, err := New(rooms, []Corridor{{A: 1, B: 2, Distance: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := b.Distance(1, 2); d != 9 {
		t.Errorf("explicit corridor distance = %v, want 9", d)
	}
}

func TestAcademicDepartment(t *testing.T) {
	b, err := AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRooms() != 10 {
		t.Fatalf("NumRooms = %d, want 10", b.NumRooms())
	}
	if !b.Graph().Connected() {
		t.Fatal("preset topology not connected")
	}
	// Every room has a workstation and is resolvable by station addr.
	for _, r := range b.Rooms() {
		if !r.Station.Valid() {
			t.Errorf("room %d has invalid station addr", r.ID)
		}
		id, ok := b.RoomOfStation(r.Station)
		if !ok || id != r.ID {
			t.Errorf("RoomOfStation(%v) = %d,%v, want %d", r.Station, id, ok, r.ID)
		}
	}
}

func TestAcademicDepartmentPaths(t *testing.T) {
	b, err := AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	// Lobby (1) to Cafeteria (10): must route through a stairwell.
	p, err := b.ShortestPath(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) < 3 {
		t.Errorf("path 1->10 suspiciously short: %v", p.Nodes)
	}
	if p.Nodes[0] != 1 || p.Nodes[len(p.Nodes)-1] != 10 {
		t.Errorf("path endpoints wrong: %v", p.Nodes)
	}
	// The direct cross at room 5-10 plus corridor must not beat going
	// 1-6 then south corridor: both are 4*12+12 = 60m; any shortest
	// path must be exactly 60.
	if math.Abs(float64(p.Total)-60) > 1e-9 {
		t.Errorf("path 1->10 length = %v, want 60", p.Total)
	}
	names := b.PathNames(p)
	if len(names) != len(p.Nodes) {
		t.Errorf("PathNames length %d != %d", len(names), len(p.Nodes))
	}
	if names[0] != "Lobby" || names[len(names)-1] != "Cafeteria" {
		t.Errorf("path names = %v", names)
	}
}

func TestRoomLookup(t *testing.T) {
	b, err := AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	r, ok := b.Room(6)
	if !ok || r.Name != "Library" {
		t.Errorf("Room(6) = %+v, %v; want Library", r, ok)
	}
	if _, ok := b.Room(99); ok {
		t.Error("Room(99) found")
	}
	if _, ok := b.RoomOfStation(0xDEAD); ok {
		t.Error("RoomOfStation(bogus) found")
	}
}

func TestPathNamesUnknownRoom(t *testing.T) {
	b, err := AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.ShortestPath(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Nodes = append(p.Nodes, 999)
	names := b.PathNames(p)
	if names[len(names)-1] != "room-999" {
		t.Errorf("unknown room rendered as %q", names[len(names)-1])
	}
}

func TestStationAddrDistinctAndValid(t *testing.T) {
	seen := map[string]bool{}
	for i := 1; i <= 50; i++ {
		a := StationAddr(i)
		if !a.Valid() {
			t.Fatalf("StationAddr(%d) invalid", i)
		}
		s := a.String()
		if seen[s] {
			t.Fatalf("StationAddr(%d) duplicates %s", i, s)
		}
		seen[s] = true
	}
}
