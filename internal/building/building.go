// Package building models the static part of a BIPS deployment: the rooms
// of a building, the workstation (Bluetooth master) placed in each
// significant room, and the weighted undirected topology graph the
// navigation service runs on. It includes the floor-plan preset used by the
// examples and experiments: an academic department of the kind the paper's
// introduction motivates.
package building

import (
	"errors"
	"fmt"
	"sort"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/radio"
)

// RoomID identifies a room; it doubles as the navigation graph node id.
type RoomID = graph.NodeID

// Room is a significant room hosting one BIPS workstation.
type Room struct {
	ID   RoomID
	Name string
	// Center is the workstation position on the floor plan, in meters.
	Center radio.Point
	// Station is the BD_ADDR of the room's workstation radio.
	Station baseband.BDAddr
}

// Corridor is a physical path between two adjacent rooms.
type Corridor struct {
	A, B RoomID
	// Distance is the walking distance in meters; it becomes the edge
	// weight. Zero means "use the Euclidean distance between centers".
	Distance float64
}

// Errors reported by topology construction.
var (
	ErrDuplicateRoom = errors.New("building: duplicate room id")
	ErrUnknownRoom   = errors.New("building: unknown room id")
	ErrNoRooms       = errors.New("building: topology has no rooms")
)

// Building is an immutable validated building topology with precomputed
// shortest paths.
type Building struct {
	rooms     map[RoomID]Room
	order     []RoomID
	g         *graph.Graph
	paths     *graph.AllPairs
	byStation map[baseband.BDAddr]RoomID
}

// New validates the rooms and corridors, builds the navigation graph and
// precomputes all shortest paths off-line (the paper's startup procedure).
func New(rooms []Room, corridors []Corridor) (*Building, error) {
	if len(rooms) == 0 {
		return nil, ErrNoRooms
	}
	b := &Building{
		rooms:     make(map[RoomID]Room, len(rooms)),
		g:         graph.New(),
		byStation: make(map[baseband.BDAddr]RoomID, len(rooms)),
	}
	for _, r := range rooms {
		if _, dup := b.rooms[r.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateRoom, r.ID)
		}
		b.rooms[r.ID] = r
		b.order = append(b.order, r.ID)
		b.g.AddNode(r.ID)
		if r.Station != 0 {
			b.byStation[r.Station] = r.ID
		}
	}
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	for _, c := range corridors {
		ra, okA := b.rooms[c.A]
		rb, okB := b.rooms[c.B]
		if !okA {
			return nil, fmt.Errorf("%w: corridor end %d", ErrUnknownRoom, c.A)
		}
		if !okB {
			return nil, fmt.Errorf("%w: corridor end %d", ErrUnknownRoom, c.B)
		}
		d := c.Distance
		if d == 0 {
			d = ra.Center.Dist(rb.Center)
		}
		if err := b.g.AddEdge(c.A, c.B, graph.Weight(d)); err != nil {
			return nil, fmt.Errorf("corridor %d-%d: %w", c.A, c.B, err)
		}
	}
	paths, err := b.g.ComputeAllPairs()
	if err != nil {
		return nil, err
	}
	b.paths = paths
	return b, nil
}

// Rooms returns the rooms in ascending id order.
func (b *Building) Rooms() []Room {
	out := make([]Room, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, b.rooms[id])
	}
	return out
}

// Room returns the room with the given id.
func (b *Building) Room(id RoomID) (Room, bool) {
	r, ok := b.rooms[id]
	return r, ok
}

// RoomOfStation maps a workstation radio address to its room.
func (b *Building) RoomOfStation(addr baseband.BDAddr) (RoomID, bool) {
	id, ok := b.byStation[addr]
	return id, ok
}

// NumRooms returns the number of rooms.
func (b *Building) NumRooms() int { return len(b.rooms) }

// Bounds returns the bounding box of the room centers. Callers sizing
// mobility areas should add their own margin.
func (b *Building) Bounds() (min, max radio.Point) {
	first := true
	for _, r := range b.rooms {
		if first {
			min, max = r.Center, r.Center
			first = false
			continue
		}
		if r.Center.X < min.X {
			min.X = r.Center.X
		}
		if r.Center.Y < min.Y {
			min.Y = r.Center.Y
		}
		if r.Center.X > max.X {
			max.X = r.Center.X
		}
		if r.Center.Y > max.Y {
			max.Y = r.Center.Y
		}
	}
	return min, max
}

// Graph returns the navigation graph (callers must not mutate it).
func (b *Building) Graph() *graph.Graph { return b.g }

// ShortestPath returns the precomputed shortest path between two rooms.
func (b *Building) ShortestPath(from, to RoomID) (graph.Path, error) {
	return b.paths.Path(from, to)
}

// Distance returns the precomputed walking distance between two rooms.
func (b *Building) Distance(from, to RoomID) (float64, error) {
	d, err := b.paths.Distance(from, to)
	return float64(d), err
}

// PathNames renders a path as the corresponding room names, the form shown
// on the mobile user's handheld.
func (b *Building) PathNames(p graph.Path) []string {
	out := make([]string, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		if r, ok := b.rooms[n]; ok {
			out = append(out, r.Name)
		} else {
			out = append(out, fmt.Sprintf("room-%d", n))
		}
	}
	return out
}

// StationAddr returns a deterministic workstation BD_ADDR for room i,
// used by the presets and tests.
func StationAddr(i int) baseband.BDAddr {
	return baseband.BDAddr(0xA0_0000_0000_00 + uint64(i)) //nolint:gofmt
}

// AcademicDepartment returns the floor-plan preset used throughout the
// examples: a two-corridor academic department with offices, labs, a
// library, a seminar room and a lobby — the environment the paper's
// introduction motivates (students, visitors, professors, staff). Rooms are
// placed on a 12 m grid so adjacent cells (10 m radius) do not overlap in
// their centers' rooms.
func AcademicDepartment() (*Building, error) {
	names := []string{
		"Lobby", "Office A", "Office B", "Lab 1", "Lab 2",
		"Library", "Seminar Room", "Office C", "Office D", "Cafeteria",
	}
	rooms := make([]Room, 0, len(names))
	for i, name := range names {
		// Two rows of five rooms along parallel corridors.
		col := i % 5
		row := i / 5
		rooms = append(rooms, Room{
			ID:      RoomID(i + 1),
			Name:    name,
			Center:  radio.Point{X: float64(col) * 12, Y: float64(row) * 12},
			Station: StationAddr(i + 1),
		})
	}
	corridors := []Corridor{
		// North corridor: 1-2-3-4-5.
		{A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4}, {A: 4, B: 5},
		// South corridor: 6-7-8-9-10.
		{A: 6, B: 7}, {A: 7, B: 8}, {A: 8, B: 9}, {A: 9, B: 10},
		// Cross links (stairwells) at both ends and the middle.
		{A: 1, B: 6}, {A: 3, B: 8}, {A: 5, B: 10},
	}
	return New(rooms, corridors)
}
