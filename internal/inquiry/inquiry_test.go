package inquiry

import (
	"math/rand"
	"testing"

	"bips/internal/baseband"
	"bips/internal/radio"
	"bips/internal/sim"
)

func TestContinuousSlaveDiscoveredFast(t *testing.T) {
	// A continuously scanning slave on the master's train must be
	// discovered within roughly one backoff (< 0.7 s) plus slack.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		k := sim.NewKernel(rng.Int63())
		m := NewMaster(k, MasterConfig{Addr: 1, StartTrain: baseband.TrainA, Policy: TrainFixed}, nil)
		s := NewSlave(SlaveConfig{
			Addr:      2,
			Mode:      ScanContinuous,
			ScanPhase: baseband.FreqIndex(rng.Intn(baseband.TrainSize)),
		})
		m.AddSlave(s)
		var at sim.Tick = -1
		m.OnDiscovered = func(_ baseband.BDAddr, tick sim.Tick) { at = tick; k.Stop() }
		m.StartInquiry()
		k.RunUntil(5 * sim.TicksPerSecond)
		if at < 0 {
			t.Fatalf("iteration %d: slave never discovered", i)
		}
		if at > sim.FromSeconds(0.8) {
			t.Errorf("iteration %d: discovery took %v, want < 0.8s", i, at)
		}
	}
}

func TestSlaveOnOtherTrainNotDiscoveredUnderFixedPolicy(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMaster(k, MasterConfig{Addr: 1, StartTrain: baseband.TrainA, Policy: TrainFixed}, nil)
	// Slave listens only on train B indices; its scan frequency drifts
	// one index per 1.28 s, so within ~10 s it can enter train A. Keep
	// the horizon below the drift boundary.
	s := NewSlave(SlaveConfig{Addr: 2, Mode: ScanContinuous, ScanPhase: 16, ClockOffset: 0})
	m.AddSlave(s)
	m.OnDiscovered = func(baseband.BDAddr, sim.Tick) {
		t.Error("train-B slave discovered by fixed-train-A master")
	}
	m.StartInquiry()
	k.RunUntil(2 * sim.TicksPerSecond)
}

func TestTrainSwitchEnablesDiscovery(t *testing.T) {
	// With alternating trains the same train-B slave is found shortly
	// after the 2.56 s switch.
	k := sim.NewKernel(1)
	m := NewMaster(k, MasterConfig{Addr: 1, StartTrain: baseband.TrainA, Policy: TrainsAlternate}, nil)
	s := NewSlave(SlaveConfig{Addr: 2, Mode: ScanContinuous, ScanPhase: 16})
	m.AddSlave(s)
	var at sim.Tick = -1
	m.OnDiscovered = func(_ baseband.BDAddr, tick sim.Tick) { at = tick; k.Stop() }
	m.StartInquiry()
	k.RunUntil(10 * sim.TicksPerSecond)
	if at < 0 {
		t.Fatal("slave never discovered")
	}
	if at < baseband.TrainDwellTicks {
		t.Errorf("train-B slave discovered at %v, before the 2.56s train switch", at)
	}
	if at > baseband.TrainDwellTicks+sim.TicksPerSecond {
		t.Errorf("discovery at %v, want within 1s of the train switch", at)
	}
}

func TestStopInquiryHaltsTransmission(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMaster(k, MasterConfig{Addr: 1}, nil)
	m.AddSlave(NewSlave(SlaveConfig{Addr: 2, Mode: ScanContinuous, ScanPhase: 0}))
	m.StartInquiry()
	k.RunUntil(sim.FromSeconds(0.01))
	m.StopInquiry()
	sent := m.IDsSent()
	if sent == 0 {
		t.Fatal("no IDs sent during inquiry phase")
	}
	k.RunUntil(sim.TicksPerSecond)
	if m.IDsSent() != sent {
		t.Errorf("IDs sent after StopInquiry: %d -> %d", sent, m.IDsSent())
	}
	if m.Inquiring() {
		t.Error("master still reports inquiring")
	}
}

func TestStartInquiryIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMaster(k, MasterConfig{Addr: 1}, nil)
	m.StartInquiry()
	m.StartInquiry() // no-op, must not double the transmit rate
	k.RunUntil(sim.TicksPerSecond)
	m.StopInquiry()
	m.StopInquiry() // no-op
	// One second of inquiry = 800 transmit slots * 2 IDs.
	if got := m.IDsSent(); got < 1500 || got > 1700 {
		t.Errorf("IDs sent in 1s = %d, want ~1600", got)
	}
}

func TestMediumGatesDiscovery(t *testing.T) {
	k := sim.NewKernel(1)
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 2, Pos: radio.Point{X: 50, Y: 0}}) // out of range
	m := NewMaster(k, MasterConfig{Addr: 1, Policy: TrainFixed}, med)
	m.AddSlave(NewSlave(SlaveConfig{Addr: 2, Mode: ScanContinuous, ScanPhase: 0}))
	m.StartInquiry()
	k.RunUntil(3 * sim.TicksPerSecond)
	if len(m.Discovered()) != 0 {
		t.Fatal("out-of-range slave discovered")
	}
	// Walk into range: discovery proceeds.
	med.Move(2, radio.Point{X: 5, Y: 0})
	k.RunUntil(6 * sim.TicksPerSecond)
	m.StopInquiry()
	if len(m.Discovered()) != 1 {
		t.Error("in-range slave not discovered")
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	a := RunTrial(rand.New(rand.NewSource(99)), TrialConfig{})
	b := RunTrial(rand.New(rand.NewSource(99)), TrialConfig{})
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
	c := RunTrial(rand.New(rand.NewSource(100)), TrialConfig{})
	if a == c {
		t.Error("different seeds produced identical trials (suspicious)")
	}
}

func TestRunTrialAlwaysDiscovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		r := RunTrial(rng, TrialConfig{})
		if !r.Discovered {
			t.Fatalf("trial %d timed out: %+v", i, r)
		}
		if r.Responses < 1 || r.Backoffs < 1 {
			t.Errorf("trial %d: backoffs=%d responses=%d, want >=1 each",
				i, r.Backoffs, r.Responses)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	// The paper's Table 1: same-train mean 1.60s, different-train mean
	// 4.13s, mixed 2.87s, with a ~50/50 train split over 500 trials.
	// We require the shape with generous tolerances.
	rng := rand.New(rand.NewSource(2003))
	const trials = 500
	var sameSum, diffSum sim.Tick
	var sameN, diffN int
	for i := 0; i < trials; i++ {
		r := RunTrial(rng, TrialConfig{})
		if !r.Discovered {
			t.Fatalf("trial %d timed out", i)
		}
		if r.SameTrain {
			sameSum += r.Time
			sameN++
		} else {
			diffSum += r.Time
			diffN++
		}
	}
	if sameN < trials/3 || diffN < trials/3 {
		t.Fatalf("train split %d/%d, want roughly even", sameN, diffN)
	}
	sameMean := sameSum.Seconds() / float64(sameN)
	diffMean := diffSum.Seconds() / float64(diffN)
	if sameMean < 1.0 || sameMean > 2.2 {
		t.Errorf("same-train mean = %.3fs, want ~1.6s", sameMean)
	}
	if diffMean < 3.3 || diffMean > 5.0 {
		t.Errorf("different-train mean = %.3fs, want ~4.1s", diffMean)
	}
	if diffMean <= sameMean {
		t.Error("different-train should be slower than same-train")
	}
	ratio := diffMean / sameMean
	if ratio < 1.8 || ratio > 3.5 {
		t.Errorf("diff/same ratio = %.2f, want ~2.6", ratio)
	}
}

func TestDutyCycleValidate(t *testing.T) {
	tests := []struct {
		name    string
		cycle   DutyCycle
		wantErr bool
	}{
		{name: "paper fig2", cycle: DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond}},
		{name: "full duty", cycle: DutyCycle{Inquiry: 10, Period: 10}},
		{name: "zero inquiry", cycle: DutyCycle{Inquiry: 0, Period: 10}, wantErr: true},
		{name: "zero period", cycle: DutyCycle{Inquiry: 10, Period: 0}, wantErr: true},
		{name: "inquiry > period", cycle: DutyCycle{Inquiry: 20, Period: 10}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cycle.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDutyCycleLoad(t *testing.T) {
	d := DutyCycle{Inquiry: sim.FromSeconds(3.84), Period: sim.FromSeconds(15.4)}
	if got := d.Load(); got < 0.24 || got > 0.26 {
		t.Errorf("Load() = %.3f, want ~0.249 (the paper's ~24%%)", got)
	}
	if (DutyCycle{}).Load() != 0 {
		t.Error("zero cycle load should be 0")
	}
}

func TestRunSwarmValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RunSwarm(rng, SwarmConfig{Slaves: 0}); err == nil {
		t.Error("RunSwarm with 0 slaves should fail")
	}
	if _, err := RunSwarm(rng, SwarmConfig{
		Slaves: 1,
		Cycle:  DutyCycle{Inquiry: 10, Period: 5},
	}); err == nil {
		t.Error("RunSwarm with bad cycle should fail")
	}
}

func TestFig2ShapeTenSlaves(t *testing.T) {
	// Paper: with 10 slaves the master discovers ~90% in the first 1s
	// inquiry phase and 100% by the second cycle (t=6s).
	rng := rand.New(rand.NewSource(42))
	const runs = 20
	var frac1, frac6 float64
	for i := 0; i < runs; i++ {
		res, err := RunSwarm(rng, SwarmConfig{
			Slaves: 10,
			Cycle:  DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		frac1 += res.DiscoveredBy(sim.TicksPerSecond)
		frac6 += res.DiscoveredBy(6 * sim.TicksPerSecond)
	}
	frac1 /= runs
	frac6 /= runs
	if frac1 < 0.70 {
		t.Errorf("10 slaves discovered by 1s = %.2f, want >= 0.70 (paper ~0.9)", frac1)
	}
	if frac6 < 0.97 {
		t.Errorf("10 slaves discovered by 6s = %.2f, want ~1.0", frac6)
	}
}

func TestFig2TwentySlavesTwoCycles(t *testing.T) {
	// Paper: 15-20 slaves are all discovered within 2 cycles.
	rng := rand.New(rand.NewSource(43))
	const runs = 10
	var frac float64
	for i := 0; i < runs; i++ {
		res, err := RunSwarm(rng, SwarmConfig{
			Slaves: 20,
			Cycle:  DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		frac += res.DiscoveredBy(10 * sim.TicksPerSecond)
	}
	frac /= runs
	if frac < 0.95 {
		t.Errorf("20 slaves discovered within 2 cycles = %.2f, want >= 0.95", frac)
	}
}

func TestCollisionsOccurWithManySlaves(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	res, err := RunSwarm(rng, SwarmConfig{Slaves: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Error("20 contending slaves produced no collisions")
	}
}

func TestCollisionAblation(t *testing.T) {
	// Without collision destruction, early discovery can only be equal
	// or faster.
	runAt1s := func(policy radio.CollisionPolicy, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var frac float64
		const runs = 15
		for i := 0; i < runs; i++ {
			res, err := RunSwarm(rng, SwarmConfig{
				Slaves:    20,
				Collision: policy,
				Cycle:     DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			frac += res.DiscoveredBy(sim.TicksPerSecond)
		}
		return frac / runs
	}
	with := runAt1s(radio.CollideDestroyAll, 7)
	without := runAt1s(radio.CollideNone, 7)
	if without < with-0.05 {
		t.Errorf("collision-free discovery (%.2f) slower than with collisions (%.2f)", without, with)
	}
}

func TestSwarmDiscoveryOnlyDuringInquiryPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	res, err := RunSwarm(rng, SwarmConfig{
		Slaves: 10,
		Cycle:  DutyCycle{Inquiry: sim.TicksPerSecond, Period: 5 * sim.TicksPerSecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range res.Times {
		inCycle := dt % (5 * sim.TicksPerSecond)
		// Responses arrive at most 2 ticks after the phase closes.
		if inCycle > sim.TicksPerSecond+2 {
			t.Errorf("discovery at %v is outside the 1s inquiry phase (offset %v)", dt, inCycle)
		}
	}
}

func TestDiscoveryOrderMatchesTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	k := sim.NewKernel(rng.Int63())
	m := NewMaster(k, MasterConfig{Addr: 1, Policy: TrainFixed}, nil)
	for i := 0; i < 5; i++ {
		m.AddSlave(NewSlave(SlaveConfig{
			Addr:      baseband.BDAddr(10 + i),
			Mode:      ScanContinuous,
			ScanPhase: baseband.FreqIndex(rng.Intn(16)),
		}))
	}
	m.StartInquiry()
	k.RunUntil(10 * sim.TicksPerSecond)
	m.StopInquiry()
	disc := m.Discovered()
	order := m.DiscoveryOrder()
	if len(order) != len(disc) {
		t.Fatalf("order len %d != map len %d", len(order), len(disc))
	}
	for i := 1; i < len(order); i++ {
		if disc[order[i-1]] > disc[order[i]] {
			t.Errorf("discovery order not sorted by time at %d", i)
		}
	}
}

func TestScanModeAndPolicyStrings(t *testing.T) {
	if ScanAlternating.String() != "alternating" ||
		ScanInquiryOnly.String() != "inquiry-only" ||
		ScanContinuous.String() != "continuous" {
		t.Error("unexpected scan mode names")
	}
	if TrainsAlternate.String() != "alternate" || TrainFixed.String() != "fixed" {
		t.Error("unexpected policy names")
	}
	if ScanMode(0).String() != "ScanMode(0)" || TrainPolicy(0).String() != "TrainPolicy(0)" {
		t.Error("unexpected zero-value names")
	}
}
