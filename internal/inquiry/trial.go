package inquiry

import (
	"errors"
	"fmt"
	"math/rand"

	"bips/internal/baseband"
	"bips/internal/radio"
	"bips/internal/sim"
)

// TrialConfig parameterises one Table 1-style discovery trial: a master
// fully dedicated to inquiry (always in the inquiry state) discovering a
// single slave. Timing fields default to the Bluetooth 1.1 values used in
// the paper.
type TrialConfig struct {
	// Mode is the slave scan schedule. The paper's reported experiment
	// alternates inquiry scan and page scan. Default ScanAlternating.
	Mode ScanMode
	// Interval and Window override the slave scan timing when non-zero.
	Interval sim.Tick
	Window   sim.Tick
	// Timeout bounds the trial. Default 60 s.
	Timeout sim.Tick
	// Collision selects the response-collision rule (irrelevant with a
	// single slave, exposed for completeness).
	Collision radio.CollisionPolicy
}

func (c TrialConfig) withDefaults() TrialConfig {
	if c.Mode == 0 {
		c.Mode = ScanAlternating
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * sim.TicksPerSecond
	}
	return c
}

// TrialResult is the outcome of one discovery trial.
type TrialResult struct {
	// Discovered reports whether the slave responded before Timeout.
	Discovered bool
	// Time is the interval from inquiry entry to FHS reception, the
	// quantity the paper measures with ftime().
	Time sim.Tick
	// SameTrain reports whether the master's starting train equalled
	// the train of the slave's listening frequency at inquiry entry
	// (the paper's row classification).
	SameTrain bool
	// Backoffs and Responses count the slave's protocol actions.
	Backoffs  int
	Responses int
}

// ErrNotDiscovered is reported (via TrialResult.Discovered) when a trial
// times out; exported for tests that force pathological configurations.
var ErrNotDiscovered = errors.New("inquiry: slave not discovered within timeout")

// RunTrial executes one discovery trial with randomness drawn from rng:
// the master's starting train, the slave's clock phase and scan-sequence
// phase, and all backoff draws.
func RunTrial(rng *rand.Rand, cfg TrialConfig) TrialResult {
	cfg = cfg.withDefaults()
	k := sim.NewKernel(rng.Int63())

	startTrain := baseband.TrainA
	if rng.Intn(2) == 1 {
		startTrain = baseband.TrainB
	}
	m := NewMaster(k, MasterConfig{
		Addr:       0xAA0000000001,
		StartTrain: startTrain,
		Policy:     TrainsAlternate,
		Collision:  cfg.Collision,
	}, nil)

	interval := cfg.Interval
	if interval == 0 {
		interval = baseband.TInquiryScanTicks
	}
	// The clock phase is uniform over two intervals so that the parity
	// of the alternating inquiry/page windows is also random.
	s := NewSlave(SlaveConfig{
		Addr:        0xBB0000000001,
		ClockOffset: sim.Tick(rng.Int63n(int64(2 * interval))),
		ScanPhase:   baseband.FreqIndex(rng.Intn(baseband.NumInquiryFreqs)),
		Mode:        cfg.Mode,
		Interval:    cfg.Interval,
		Window:      cfg.Window,
	})
	m.AddSlave(s)

	sameTrain := s.ListenTrain(0) == startTrain

	var result TrialResult
	result.SameTrain = sameTrain
	m.OnDiscovered = func(_ baseband.BDAddr, at sim.Tick) {
		result.Discovered = true
		result.Time = at
		k.Stop()
	}
	m.StartInquiry()
	k.RunUntil(cfg.Timeout)
	m.StopInquiry()
	result.Backoffs = s.Backoffs
	result.Responses = s.Responses
	if !result.Discovered {
		result.Time = cfg.Timeout
	}
	return result
}

// DutyCycle describes a master operational cycle: Inquiry ticks of device
// discovery at the start of every Period. The paper's Figure 2 uses
// 1 s / 5 s; its Section 5 policy uses 3.84 s / 15.4 s.
type DutyCycle struct {
	Inquiry sim.Tick
	Period  sim.Tick
}

// Validate checks the cycle is well formed.
func (d DutyCycle) Validate() error {
	if d.Inquiry <= 0 || d.Period <= 0 {
		return fmt.Errorf("inquiry: duty cycle %v: phases must be positive", d)
	}
	if d.Inquiry > d.Period {
		return fmt.Errorf("inquiry: duty cycle %v: inquiry exceeds period", d)
	}
	return nil
}

// Load returns the fraction of the cycle spent in device discovery.
func (d DutyCycle) Load() float64 {
	if d.Period == 0 {
		return 0
	}
	return float64(d.Inquiry) / float64(d.Period)
}

// String formats the cycle as "inquiry/period".
func (d DutyCycle) String() string {
	return fmt.Sprintf("%v/%v", d.Inquiry, d.Period)
}

// SwarmConfig parameterises a multi-slave discovery simulation (Figure 2).
type SwarmConfig struct {
	// Slaves is the piconet population in the master's coverage area.
	Slaves int
	// Cycle is the master duty cycle. The zero value means the master
	// is continuously in inquiry.
	Cycle DutyCycle
	// Horizon is the simulated time. Default 14 s (Figure 2's x-axis).
	Horizon sim.Tick
	// StartTrain is the master's (fixed or starting) train. Default A.
	StartTrain baseband.Train
	// Policy selects fixed-train (Figure 2) or alternating trains.
	// Default TrainFixed.
	Policy TrainPolicy
	// Collision selects the response-collision rule. Default
	// CollideDestroyAll.
	Collision radio.CollisionPolicy
	// SlaveMode is the slave scan schedule. Default ScanContinuous
	// ("slaves are always in inquiry scan mode").
	SlaveMode ScanMode
	// Discipline is the slave response rule. Default Immediate, the
	// BlueHoc behaviour the paper simulated.
	Discipline Discipline
	// BackoffSlots overrides the backoff range when non-zero.
	BackoffSlots int
	// TrainAScanOnly restricts slave scan phases to train A indices,
	// matching "they start listening on frequencies of train A".
	// Default true when Policy is TrainFixed.
	TrainAScanOnly *bool
}

func (c SwarmConfig) withDefaults() SwarmConfig {
	if c.Horizon == 0 {
		c.Horizon = 14 * sim.TicksPerSecond
	}
	if c.StartTrain == 0 {
		c.StartTrain = baseband.TrainA
	}
	if c.Policy == 0 {
		c.Policy = TrainFixed
	}
	if c.Collision == 0 {
		c.Collision = radio.CollideDestroyAll
	}
	if c.SlaveMode == 0 {
		c.SlaveMode = ScanContinuous
	}
	if c.Discipline == 0 {
		c.Discipline = Immediate
	}
	if c.TrainAScanOnly == nil {
		v := c.Policy == TrainFixed
		c.TrainAScanOnly = &v
	}
	return c
}

// SwarmResult is the outcome of one multi-slave simulation.
type SwarmResult struct {
	// Times holds, for each discovered slave, the first-response time.
	Times []sim.Tick
	// Slaves is the population size.
	Slaves int
	// Collisions counts destroyed response half slots.
	Collisions int
	// IDsSent counts transmitted ID packets.
	IDsSent int64
}

// DiscoveredBy returns the fraction of the population discovered at or
// before t.
func (r SwarmResult) DiscoveredBy(t sim.Tick) float64 {
	if r.Slaves == 0 {
		return 0
	}
	n := 0
	for _, dt := range r.Times {
		if dt <= t {
			n++
		}
	}
	return float64(n) / float64(r.Slaves)
}

// AllDiscovered reports whether every slave was discovered within the
// horizon.
func (r SwarmResult) AllDiscovered() bool { return len(r.Times) == r.Slaves }

// RunSwarm executes one multi-slave discovery simulation.
func RunSwarm(rng *rand.Rand, cfg SwarmConfig) (SwarmResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Slaves <= 0 {
		return SwarmResult{}, fmt.Errorf("inquiry: swarm needs at least one slave, got %d", cfg.Slaves)
	}
	if cfg.Cycle != (DutyCycle{}) {
		if err := cfg.Cycle.Validate(); err != nil {
			return SwarmResult{}, err
		}
	}

	k := sim.NewKernel(rng.Int63())
	m := NewMaster(k, MasterConfig{
		Addr:       0xAA0000000001,
		StartTrain: cfg.StartTrain,
		Policy:     cfg.Policy,
		Collision:  cfg.Collision,
	}, nil)

	phaseSpan := baseband.NumInquiryFreqs
	if *cfg.TrainAScanOnly {
		phaseSpan = baseband.TrainSize
	}
	for i := 0; i < cfg.Slaves; i++ {
		m.AddSlave(NewSlave(SlaveConfig{
			Addr:           baseband.BDAddr(0xBB0000000001 + uint64(i)),
			ClockOffset:    sim.Tick(rng.Int63n(int64(2 * baseband.TInquiryScanTicks))),
			ScanPhase:      baseband.FreqIndex(rng.Intn(phaseSpan)),
			Mode:           cfg.SlaveMode,
			Discipline:     cfg.Discipline,
			BackoffSlots:   cfg.BackoffSlots,
			FrozenScanFreq: *cfg.TrainAScanOnly,
		}))
	}

	if cfg.Cycle == (DutyCycle{}) {
		m.StartInquiry()
	} else {
		scheduleCycle(k, m, cfg.Cycle, cfg.Horizon)
	}
	k.RunUntil(cfg.Horizon)
	m.StopInquiry()

	return SwarmResult{
		Times:      m.SortedDiscoveryTimes(),
		Slaves:     cfg.Slaves,
		Collisions: m.Collisions(),
		IDsSent:    m.IDsSent(),
	}, nil
}

// scheduleCycle arms start/stop events realising the duty cycle over the
// horizon.
func scheduleCycle(k *sim.Kernel, m *Master, cycle DutyCycle, horizon sim.Tick) {
	for start := sim.Tick(0); start <= horizon; start += cycle.Period {
		start := start
		if _, err := k.ScheduleAt(start, func(*sim.Kernel) { m.StartInquiry() }); err != nil {
			continue
		}
		stopAt := start + cycle.Inquiry
		if stopAt <= horizon {
			if _, err := k.ScheduleAt(stopAt, func(*sim.Kernel) { m.StopInquiry() }); err != nil {
				continue
			}
		}
	}
}
