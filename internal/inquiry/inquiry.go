// Package inquiry implements the Bluetooth 1.1 device-discovery procedure
// at half-slot resolution: the master's inquiry state machine (train
// transmission with switching every 2.56 s, response reception) and the
// slave's inquiry-scan state machine (periodic scan windows, optionally
// alternating with page-scan windows, the random 0..1023-slot backoff, and
// the FHS inquiry response).
//
// This package is the substrate for the paper's Section 4 experiments: the
// single-slave discovery-time measurements of Table 1 and the multi-slave
// discovery-probability simulation of Figure 2, including the
// response-collision handling the authors added to BlueHoc.
package inquiry

import (
	"fmt"
	"sort"

	"bips/internal/baseband"
	"bips/internal/radio"
	"bips/internal/sim"
)

// TrainPolicy selects which trains an inquiring master transmits.
type TrainPolicy int

// Train policies.
const (
	// TrainsAlternate is the standard behaviour: start on StartTrain,
	// switch every 2.56 s (N_inquiry repetitions).
	TrainsAlternate TrainPolicy = iota + 1
	// TrainFixed transmits only StartTrain, the configuration of the
	// paper's Figure 2 simulation ("using only train A").
	TrainFixed
)

// String names the policy.
func (p TrainPolicy) String() string {
	switch p {
	case TrainsAlternate:
		return "alternate"
	case TrainFixed:
		return "fixed"
	default:
		return fmt.Sprintf("TrainPolicy(%d)", int(p))
	}
}

// ScanMode selects how a slave schedules its scan windows.
type ScanMode int

// Scan modes.
const (
	// ScanAlternating alternates inquiry-scan and page-scan windows,
	// the slave programming of the paper's Table 1 experiment: only
	// every other window can hear inquiry IDs.
	ScanAlternating ScanMode = iota + 1
	// ScanInquiryOnly opens every window as an inquiry-scan window.
	ScanInquiryOnly
	// ScanContinuous listens for inquiry IDs all the time, the slave
	// configuration of the paper's Figure 2 simulation ("slaves are
	// always in inquiry scan mode").
	ScanContinuous
)

// String names the mode.
func (m ScanMode) String() string {
	switch m {
	case ScanAlternating:
		return "alternating"
	case ScanInquiryOnly:
		return "inquiry-only"
	case ScanContinuous:
		return "continuous"
	default:
		return fmt.Sprintf("ScanMode(%d)", int(m))
	}
}

// Discipline selects the inquiry-response rule a slave follows.
type Discipline int

// Response disciplines.
const (
	// BackoffFirst is the Bluetooth 1.1 rule: on the first ID heard the
	// slave draws a random backoff, goes deaf, and answers the next
	// matching ID after the backoff with an FHS. This matches the
	// paper's hardware measurements (Table 1: mean same-train delay
	// ~ half a scan interval + half a backoff ~ 1.6 s).
	BackoffFirst Discipline = iota + 1
	// Immediate is the Bluetooth 1.0b rule modelled by BlueHoc, the
	// simulator behind the paper's Figure 2: the slave answers the
	// first ID heard immediately and backs off *afterwards*. Slaves
	// sharing a scan frequency therefore collide deterministically at
	// the start of an inquiry phase, which is why the authors had to
	// add collision handling to BlueHoc.
	Immediate
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case BackoffFirst:
		return "backoff-first"
	case Immediate:
		return "immediate"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// slaveState is the discovery-side state of a slave.
type slaveState int

const (
	// stateScanning: normal operation; listening only inside open
	// inquiry-scan windows.
	stateScanning slaveState = iota + 1
	// stateBackoff: heard an ID, deaf until the random backoff expires.
	stateBackoff
	// stateRespondListen: backoff expired, listening continuously; the
	// next matching ID triggers the FHS response.
	stateRespondListen
	// stateDone: the master received this slave's FHS; the slave will
	// shortly be paged and stops scanning.
	stateDone
)

// SlaveConfig configures one scanning slave.
type SlaveConfig struct {
	// Addr is the device address. Required.
	Addr baseband.BDAddr
	// ClockOffset is the device's free-running native clock phase,
	// which determines where its scan windows fall. Draw it uniformly
	// in [0, Interval) for a realistic population.
	ClockOffset sim.Tick
	// ScanPhase is the starting index in the 32-frequency inquiry scan
	// sequence (advances one index every 1.28 s).
	ScanPhase baseband.FreqIndex
	// FrozenScanFreq pins the listening frequency to ScanPhase instead
	// of letting it drift one index per 1.28 s. The paper's Figure 2
	// scenario keeps its slaves on train A frequencies for the whole
	// simulation, which requires this.
	FrozenScanFreq bool
	// Mode selects the scan schedule. Default ScanAlternating.
	Mode ScanMode
	// Interval is the scan interval T_inquiry_scan. Default 1.28 s.
	Interval sim.Tick
	// Window is the scan window T_w_inquiry_scan. Default 11.25 ms.
	Window sim.Tick
	// Discipline is the response rule. Default BackoffFirst (BT 1.1).
	Discipline Discipline
	// BackoffSlots is the exclusive upper bound of the uniform random
	// backoff in slots. Defaults: 1024 (BT 1.1) under BackoffFirst,
	// 2048 under Immediate (the BlueHoc post-response backoff).
	BackoffSlots int
	// KeepResponding, if true, keeps the slave discoverable after a
	// successful response (the master will see duplicate results). The
	// default (false) models the BIPS behaviour: a discovered device is
	// paged and enrolled, leaving the discoverable population.
	KeepResponding bool
}

func (c SlaveConfig) withDefaults() SlaveConfig {
	if c.Mode == 0 {
		c.Mode = ScanAlternating
	}
	if c.Interval == 0 {
		c.Interval = baseband.TInquiryScanTicks
	}
	if c.Window == 0 {
		c.Window = baseband.TwInquiryScanTicks
	}
	if c.Discipline == 0 {
		c.Discipline = BackoffFirst
	}
	if c.BackoffSlots == 0 {
		switch c.Discipline {
		case Immediate:
			c.BackoffSlots = 2 * baseband.MaxBackoffSlots
		default:
			c.BackoffSlots = baseband.MaxBackoffSlots
		}
	}
	return c
}

// Slave is a scanning device attached to a Master.
type Slave struct {
	cfg      SlaveConfig
	clock    baseband.Clock
	state    slaveState
	deafTill sim.Tick // backoff expiry when state == stateBackoff
	// Responses counts FHS packets this slave transmitted.
	Responses int
	// Backoffs counts backoff periods entered.
	Backoffs int
}

// NewSlave returns a slave in the scanning state.
func NewSlave(cfg SlaveConfig) *Slave {
	cfg = cfg.withDefaults()
	return &Slave{
		cfg:   cfg,
		clock: baseband.Clock{Offset: cfg.ClockOffset},
		state: stateScanning,
	}
}

// Addr returns the slave's device address.
func (s *Slave) Addr() baseband.BDAddr { return s.cfg.Addr }

// Done reports whether the slave has been discovered and stopped scanning.
func (s *Slave) Done() bool { return s.state == stateDone }

// ListenTrain returns the train of the frequency the slave's scan sequence
// points at the given time. The paper classifies Table 1 trials by whether
// this train equals the master's starting train.
func (s *Slave) ListenTrain(now sim.Tick) baseband.Train {
	return s.scanFreq(now).Train()
}

func (s *Slave) scanFreq(now sim.Tick) baseband.FreqIndex {
	if s.cfg.FrozenScanFreq {
		return s.cfg.ScanPhase
	}
	return baseband.ScanFreq(s.clock.At(now), s.cfg.ScanPhase)
}

// windowOpen reports whether an inquiry-scan window is open at now,
// ignoring backoff state.
func (s *Slave) windowOpen(now sim.Tick) bool {
	if s.cfg.Mode == ScanContinuous {
		return true
	}
	clk := s.clock.At(now)
	pos := clk % s.cfg.Interval
	if pos >= s.cfg.Window {
		return false
	}
	if s.cfg.Mode == ScanAlternating {
		// Window k is an inquiry-scan window iff k is even; odd
		// windows are page-scan windows (deaf to inquiry IDs).
		k := clk / s.cfg.Interval
		return k%2 == 0
	}
	return true
}

// hearing reports whether the slave can hear an inquiry ID on freq at now.
func (s *Slave) hearing(now sim.Tick, freq baseband.FreqIndex) bool {
	if s.scanFreq(now) != freq {
		return false
	}
	switch s.state {
	case stateScanning:
		return s.windowOpen(now)
	case stateRespondListen:
		return true
	default:
		return false
	}
}

// Master runs the inquiry procedure and collects responses. It is driven by
// a sim.Kernel; StartInquiry/StopInquiry gate transmission (the piconet
// scheduler alternates them to realise the paper's duty cycles).
type Master struct {
	// OnDiscovered, if non-nil, is invoked when a slave's FHS response
	// is received for the first time.
	OnDiscovered func(addr baseband.BDAddr, at sim.Tick)

	kernel  *sim.Kernel
	cfg     MasterConfig
	medium  *radio.Medium
	slaves  []*Slave
	bucket  *radio.ResponseBucket
	active  bool
	startAt sim.Tick // when the current inquiry phase began
	stopTx  func()

	discovered map[baseband.BDAddr]sim.Tick
	order      []baseband.BDAddr
	collisions int
	idsSent    int64
}

// MasterConfig configures an inquiring master.
type MasterConfig struct {
	// Addr is the master's device address.
	Addr baseband.BDAddr
	// StartTrain is the train transmitted first in each inquiry phase.
	// Default TrainA.
	StartTrain baseband.Train
	// Policy selects standard alternation or fixed-train transmission.
	// Default TrainsAlternate.
	Policy TrainPolicy
	// Collision selects the response-collision rule. Default
	// CollideDestroyAll (the authors' BlueHoc extension).
	Collision radio.CollisionPolicy
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.StartTrain == 0 {
		c.StartTrain = baseband.TrainA
	}
	if c.Policy == 0 {
		c.Policy = TrainsAlternate
	}
	if c.Collision == 0 {
		c.Collision = radio.CollideDestroyAll
	}
	return c
}

// NewMaster returns a master bound to the kernel. medium may be nil, in
// which case every attached slave is considered in range.
func NewMaster(k *sim.Kernel, cfg MasterConfig, medium *radio.Medium) *Master {
	cfg = cfg.withDefaults()
	return &Master{
		kernel:     k,
		cfg:        cfg,
		medium:     medium,
		bucket:     radio.NewResponseBucket(cfg.Collision),
		discovered: make(map[baseband.BDAddr]sim.Tick),
	}
}

// Addr returns the master's device address.
func (m *Master) Addr() baseband.BDAddr { return m.cfg.Addr }

// AddSlave attaches a slave to this master's channel.
func (m *Master) AddSlave(s *Slave) { m.slaves = append(m.slaves, s) }

// Inquiring reports whether an inquiry phase is in progress.
func (m *Master) Inquiring() bool { return m.active }

// Collisions returns the number of response half slots destroyed by
// collisions so far.
func (m *Master) Collisions() int { return m.collisions }

// IDsSent returns the number of ID packets transmitted so far.
func (m *Master) IDsSent() int64 { return m.idsSent }

// Discovered returns the first-response time of every discovered slave.
func (m *Master) Discovered() map[baseband.BDAddr]sim.Tick {
	out := make(map[baseband.BDAddr]sim.Tick, len(m.discovered))
	for a, t := range m.discovered {
		out[a] = t
	}
	return out
}

// DiscoveryOrder returns discovered addresses in discovery order.
func (m *Master) DiscoveryOrder() []baseband.BDAddr {
	out := make([]baseband.BDAddr, len(m.order))
	copy(out, m.order)
	return out
}

// CurrentTrain returns the train the master transmits at the given time, or
// (0, false) if not inquiring.
func (m *Master) CurrentTrain(now sim.Tick) (baseband.Train, bool) {
	if !m.active {
		return 0, false
	}
	if m.cfg.Policy == TrainFixed {
		return m.cfg.StartTrain, true
	}
	return baseband.CurrentTrain(now-m.startAt, m.cfg.StartTrain), true
}

// StartInquiry enters the inquiry state: the master begins broadcasting ID
// packets on its starting train. Starting an already-inquiring master is a
// no-op.
func (m *Master) StartInquiry() {
	if m.active {
		return
	}
	m.active = true
	m.startAt = m.kernel.Now()
	// Transmit slots are the even slots of the inquiry phase: one
	// transmit event every 2 slots (4 ticks), beginning immediately.
	m.txEvent(m.kernel)
	m.stopTx = m.kernel.Ticker(2*baseband.SlotTicks, m.txEvent)
}

// StopInquiry leaves the inquiry state. In-flight responses that would
// arrive after the stop are discarded (the master is no longer listening on
// the inquiry response hops).
func (m *Master) StopInquiry() {
	if !m.active {
		return
	}
	m.active = false
	if m.stopTx != nil {
		m.stopTx()
		m.stopTx = nil
	}
}

// txEvent runs at each transmit slot: the master sends two ID packets, one
// per half slot, on the next two frequencies of its current train.
func (m *Master) txEvent(k *sim.Kernel) {
	if !m.active {
		return
	}
	now := k.Now()
	elapsed := now - m.startAt
	train := m.cfg.StartTrain
	if m.cfg.Policy == TrainsAlternate {
		train = baseband.CurrentTrain(elapsed, m.cfg.StartTrain)
	}
	f1, f2 := baseband.TrainFreqPair(train, elapsed)
	m.idsSent += 2
	// The ID on f1 occupies half slot `now`, the ID on f2 half slot
	// now+1. A slave's FHS response arrives one slot (2 ticks) after
	// the ID it answers, landing in the master's listen slot.
	m.deliverID(now, f1, now+2)
	m.deliverID(now+1, f2, now+3)
}

// deliverID offers an ID packet transmitted at tick txAt on freq to every
// attached slave; responses arrive at respAt.
func (m *Master) deliverID(txAt sim.Tick, freq baseband.FreqIndex, respAt sim.Tick) {
	for _, s := range m.slaves {
		if s.state == stateDone && !s.cfg.KeepResponding {
			continue
		}
		if m.medium != nil {
			if !m.medium.InRange(m.cfg.Addr, s.cfg.Addr) || m.medium.Lost() {
				continue
			}
		}
		if !s.hearing(txAt, freq) {
			// A slave whose backoff expires is handled lazily:
			// promote it before the next hearing check. Under
			// BackoffFirst the slave listens continuously after
			// the backoff (respond-listen); under Immediate it
			// simply resumes scanning.
			if s.state == stateBackoff && txAt >= s.deafTill {
				if s.cfg.Discipline == Immediate {
					s.state = stateScanning
				} else {
					s.state = stateRespondListen
				}
				if !s.hearing(txAt, freq) {
					continue
				}
			} else {
				continue
			}
		}
		switch {
		case s.state == stateScanning && s.cfg.Discipline == BackoffFirst:
			// BT 1.1: first ID heard, draw the backoff and go
			// deaf until it expires.
			m.backoff(s, txAt)
		case s.state == stateRespondListen,
			s.state == stateScanning && s.cfg.Discipline == Immediate:
			// Answer with an FHS one slot later. Under the
			// BlueHoc (BT 1.0b) discipline the backoff follows
			// the response instead of preceding it.
			s.Responses++
			if s.cfg.Discipline == Immediate {
				m.backoff(s, txAt)
			} else {
				s.state = stateScanning
			}
			if m.medium != nil && m.medium.Lost() {
				continue
			}
			m.bucket.Submit(radio.Response{
				From: s.cfg.Addr,
				Freq: baseband.RespondFreq(freq),
				At:   respAt,
			})
			m.kernel.Schedule(respAt-m.kernel.Now(), m.rxEvent)
		}
	}
}

// backoff puts the slave into the deaf backoff state starting at txAt.
func (m *Master) backoff(s *Slave, txAt sim.Tick) {
	slots := m.kernel.Rand().Int63n(int64(s.cfg.BackoffSlots))
	s.state = stateBackoff
	s.deafTill = txAt + sim.Tick(slots)*baseband.SlotTicks
	s.Backoffs++
}

// rxEvent drains the response bucket for the current half slot.
func (m *Master) rxEvent(k *sim.Kernel) {
	now := k.Now()
	delivered, collided := m.bucket.Drain(now)
	if len(collided) > 0 {
		m.collisions++
	}
	if !m.active {
		// Master left inquiry between the ID and the response; it
		// is no longer listening on the response hop.
		return
	}
	for _, r := range delivered {
		if _, seen := m.discovered[r.From]; !seen {
			m.discovered[r.From] = now
			m.order = append(m.order, r.From)
			if m.OnDiscovered != nil {
				m.OnDiscovered(r.From, now)
			}
		}
		m.markDone(r.From)
	}
}

// Forget removes the device from the discovered set and, if its slave had
// stopped scanning after a successful response, makes it discoverable
// again. The BIPS workstation calls this when a device departs its cell so
// that a returning device is re-discovered and re-enrolled.
func (m *Master) Forget(addr baseband.BDAddr) {
	if _, ok := m.discovered[addr]; ok {
		delete(m.discovered, addr)
		for i, a := range m.order {
			if a == addr {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	for _, s := range m.slaves {
		if s.cfg.Addr == addr && s.state == stateDone {
			s.state = stateScanning
		}
	}
}

func (m *Master) markDone(addr baseband.BDAddr) {
	for _, s := range m.slaves {
		if s.cfg.Addr == addr && !s.cfg.KeepResponding {
			s.state = stateDone
		}
	}
}

// SortedDiscoveryTimes returns the discovery times in ascending order,
// which is the empirical CDF input for Figure 2.
func (m *Master) SortedDiscoveryTimes() []sim.Tick {
	out := make([]sim.Tick, 0, len(m.discovered))
	for _, t := range m.discovered {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
