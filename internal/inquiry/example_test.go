package inquiry_test

import (
	"fmt"
	"math/rand"

	"bips/internal/inquiry"
)

// ExampleTrialConfig runs one Table 1-style discovery trial: a master
// dedicated to inquiry discovering a single slave that alternates inquiry
// scan and page scan (the zero TrialConfig is the paper's configuration).
// The trial is a pure function of (config, rng): the same stream replays
// identically, which is what lets the experiment runner parallelise
// sweeps without changing their results.
func ExampleTrialConfig() {
	rng := rand.New(rand.NewSource(2003))
	r := inquiry.RunTrial(rng, inquiry.TrialConfig{})
	fmt.Printf("discovered=%t sameTrain=%t time=%s\n", r.Discovered, r.SameTrain, r.Time)
	// Output:
	// discovered=true sameTrain=true time=3.6419s
}
