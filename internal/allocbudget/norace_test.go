//go:build !race

package allocbudget

const raceEnabled = false
