// Package allocbudget pins per-operation allocation ceilings for the
// serving hot paths: request dispatch, the pipelined connection round
// trip, the batched write path, ingest frame apply, fan-out event push,
// and the cached full snapshot. The budgets live in one table in the
// test file; CI runs the suite as a required job, so a change that
// regresses a hot path's allocation count fails the build instead of
// quietly eroding the zero-alloc work. Under the race detector the
// paths are still exercised but the numeric ceilings are not asserted —
// race instrumentation adds allocations of its own.
package allocbudget
