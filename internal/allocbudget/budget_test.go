package allocbudget

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/fanout"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
)

// budgets is THE allocation table: every hot-path ceiling in one place,
// asserted by the subtests below. The numbers are the measured steady
// state of the pooled-buffer serving path (see docs/OPERATIONS.md §4),
// not aspirations — raise one only with a benchmark run in hand
// explaining where the new allocations come from.
var budgets = map[string]float64{
	// DispatchBytes for a MsgLocate: fast body decode, registry
	// authorization, sharded lookup, append-encode into the caller's
	// buffer. The remaining allocations are the two result strings
	// (device address, room name) and error-path-free interface
	// plumbing in the registry.
	"dispatch_locate": 4,
	// Full client round trip over net.Pipe through ServeConn's inline
	// reader path: pooled receive buffer on each side, pooled response
	// buffer, pooled completion channel — what is left is the pending-
	// map entry and the result decode.
	"serve_conn_round_trip": 9,
	// One locdb.ApplyBatch call with a reused 64-mutation frame: the
	// per-shard group headers amortize, history ring entries reuse
	// their storage in steady state.
	"locdb_apply_batch": 4,
	// One ingest frame (64 deltas) through Pipeline.Apply: batch
	// validation, mutation build, ApplyBatch, ack.
	"ingest_apply": 8,
	// One presence change pushed through locdb notify, the fan-out
	// tree, the connection pusher (pooled pre-encoded frame), and
	// received by a raw frame codec into a reused buffer.
	"fanout_event_push": 8,
	// One 64-event ApplyBatch frame through the staged fan-out tree's
	// batch sink — counting-sort regroup from pooled scratch, per-shard
	// matching, ring enqueue, delivery-goroutine drain (AllocsPerRun
	// counts every goroutine's mallocs). Steady state is fully pooled.
	"fanout_publish_batch": 0,
	// Full snapshot of a quiescent database: version-vector check and
	// a shared cached slice. Anything above zero means the cache
	// stopped being a cache.
	"locdb_all_unchanged": 0,
	// Incremental poll with a current base: same contract as above.
	"locdb_all_since_current": 0,
}

const pw = "pw"

// check measures op and asserts its table ceiling. Under -race the
// path is exercised (the aliasing coverage is the point there) but the
// number is only logged: detector bookkeeping allocates.
func check(t *testing.T, name string, runs int, op func()) {
	t.Helper()
	ceiling, ok := budgets[name]
	if !ok {
		t.Fatalf("no budget table entry for %q", name)
	}
	got := testing.AllocsPerRun(runs, op)
	if raceEnabled {
		t.Logf("%s: %.2f allocs/op (race build, budget %.0f not asserted)", name, got, ceiling)
		return
	}
	if got > ceiling {
		t.Errorf("%s: %.2f allocs/op exceeds budget %.0f", name, got, ceiling)
	} else {
		t.Logf("%s: %.2f allocs/op (budget %.0f)", name, got, ceiling)
	}
}

// newHotServer builds a server with devs logged-in users (w0..wN, each
// on its own device) ready for the hot-path fixtures.
func newHotServer(t testing.TB, devs int) *server.Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(locdb.DefaultShards, locdb.DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(reg, db, bld)
	s.Logf = nil
	for i := 0; i < devs; i++ {
		name := fmt.Sprintf("w%d", i)
		if err := reg.Register(registry.UserID(name), name, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
		if err := s.Login(wire.Login{User: name, Password: pw, Device: dev(i).String()}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func dev(i int) baseband.BDAddr {
	return baseband.BDAddr(0xA110_0000_0000 + uint64(i+1))
}

func TestDispatchLocateBudget(t *testing.T) {
	s := newHotServer(t, 2)
	if err := s.ApplyPresence(wire.Presence{Device: dev(1).String(), Room: 6, At: 1, Present: true}); err != nil {
		t.Fatal(err)
	}
	env, err := wire.MarshalBody(wire.MsgLocate, 1, wire.Locate{Querier: "w0", Target: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	check(t, "dispatch_locate", 200, func() {
		buf = s.DispatchBytes(env, buf[:0])
		if len(buf) == 0 {
			t.Fatal("empty response")
		}
	})
}

func TestServeConnRoundTripBudget(t *testing.T) {
	s := newHotServer(t, 2)
	if err := s.ApplyPresence(wire.Presence{Device: dev(1).String(), Room: 6, At: 1, Present: true}); err != nil {
		t.Fatal(err)
	}
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	req := wire.Locate{Querier: "w0", Target: "w1"}
	var res wire.LocateResult
	check(t, "serve_conn_round_trip", 200, func() {
		if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
			t.Fatal(err)
		}
	})
}

func TestApplyBatchBudget(t *testing.T) {
	db, err := locdb.NewSharded(locdb.DefaultShards, locdb.DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const frame = 64
	muts := make([]locdb.Mutation, frame)
	tick := sim.Tick(0)
	check(t, "locdb_apply_batch", 200, func() {
		tick++
		for i := range muts {
			muts[i] = locdb.Mutation{
				Op:      locdb.MutPresence,
				Dev:     dev(i),
				Piconet: graph.NodeID(int(tick) % 8),
				At:      tick,
			}
		}
		db.ApplyBatch(muts)
	})
}

func TestIngestApplyBudget(t *testing.T) {
	s := newHotServer(t, 64)
	pl := s.Ingest()
	if _, err := pl.Hello(wire.IngestHello{Session: "budget", Station: "S", Room: 1}); err != nil {
		t.Fatal(err)
	}
	const frame = 64
	addrs := make([]string, frame)
	for i := range addrs {
		addrs[i] = dev(i).String()
	}
	deltas := make([]wire.Presence, frame)
	seq := uint64(0)
	tick := sim.Tick(0)
	check(t, "ingest_apply", 200, func() {
		seq++
		tick++
		for i := range deltas {
			deltas[i] = wire.Presence{
				Device:  addrs[i],
				Room:    graph.NodeID(1 + int(tick)%7),
				At:      tick,
				Present: true,
			}
		}
		if _, err := pl.Apply(wire.PresenceBatch{Session: "budget", Seq: seq, Deltas: deltas}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFanoutEventPushBudget(t *testing.T) {
	s := newHotServer(t, 2)
	if err := s.ApplyPresence(wire.Presence{Device: dev(1).String(), Room: 6, At: 1, Present: true}); err != nil {
		t.Fatal(err)
	}
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	codec := wire.NewFrameCodec(cliConn)
	defer codec.Close()

	sub, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{
		ID: "track", Querier: "w0",
		Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "w1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(sub); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	ack, buf, err := codec.RecvBuf(buf)
	if err != nil || ack.Type != wire.MsgOK {
		t.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	tick := sim.Tick(1)
	present := false
	check(t, "fanout_event_push", 200, func() {
		tick++
		// Alternate leave/enter: exactly one event per mutation.
		if err := s.ApplyPresence(wire.Presence{
			Device: dev(1).String(), Room: 6, At: tick, Present: present,
		}); err != nil {
			t.Fatal(err)
		}
		present = !present
		var env wire.Envelope
		env, buf, err = codec.RecvBuf(buf)
		if err != nil || env.Type != wire.MsgEvent {
			t.Fatalf("push = %+v, %v", env, err)
		}
	})
}

func TestFanoutPublishBatchBudget(t *testing.T) {
	const (
		frame = 64
		devs  = 128
		rooms = 8
	)
	tree := fanout.NewWithConfig(fanout.Config{})
	defer tree.Close()
	var delivered atomic.Int64
	cb := func(fanout.Event) { delivered.Add(1) }
	tree.Subscribe(fanout.Filter{Kind: fanout.KindAll}, cb)
	tree.Subscribe(fanout.Filter{Kind: fanout.KindDevice, Device: dev(3)}, cb)
	tree.Subscribe(fanout.Filter{Kind: fanout.KindRoom, Room: 5}, cb)

	evs := make([]locdb.Event, frame)
	round := 0
	fill := func() {
		round++
		for i := range evs {
			evs[i] = locdb.Event{
				Fix: locdb.Fix{
					Device: dev((round*frame + i) % devs),
					// Consecutive rounds always differ mod rooms, so every
					// event is a real room change (enter + handover leave).
					Piconet: graph.NodeID(1 + (round+i)%rooms),
					At:      sim.Tick(round),
				},
				Present: true,
			}
		}
	}
	// Warm the device→room view and the scratch/ring pools.
	fill()
	tree.PublishBatch(evs)
	tree.Flush()

	check(t, "fanout_publish_batch", 200, func() {
		fill()
		tree.PublishBatch(evs)
		// Flush inside the op: the delivery goroutine's work is part of
		// the budget, and the barrier keeps the backlog from growing
		// across runs.
		tree.Flush()
	})
	if delivered.Load() == 0 {
		t.Fatal("no deliveries")
	}
}

func TestSnapshotBudgets(t *testing.T) {
	db, err := locdb.NewSharded(locdb.DefaultShards, locdb.DefaultHistoryLimit)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 512; i++ {
		db.SetPresence(dev(i), graph.NodeID(i%8), 1)
	}
	if got := len(db.All()); got != 512 {
		t.Fatalf("All returned %d fixes", got)
	}
	check(t, "locdb_all_unchanged", 500, func() {
		if len(db.All()) != 512 {
			t.Fatal("snapshot shrank")
		}
	})
	base := db.SnapshotToken()
	check(t, "locdb_all_since_current", 500, func() {
		d := db.AllSince(base)
		if d.Token != base || d.Full {
			t.Fatalf("delta = %+v", d)
		}
	})
}
