//go:build race

package allocbudget

// raceEnabled is true in -race builds, where the detector's own
// bookkeeping allocates and the numeric budgets do not hold.
const raceEnabled = true
