// Package metrics is a small, dependency-free counter and histogram
// registry for the serving layer. It exists so the server can answer the
// wire protocol's MsgStats query and so the load generator can report
// latency percentiles without pulling in an external metrics stack.
//
// Counters and histograms are lock-free on the hot path (atomic adds);
// the registry map itself is only locked on first registration and on
// snapshot. Histograms use fixed exponential buckets from 1 µs to ~67 s,
// which spans everything from an in-process dispatch to a wedged disk.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram bucket layout: bucket i counts observations in
// (bound[i-1], bound[i]], with bound[i] = smallestBound * 2^i.
const (
	numBuckets    = 27
	smallestBound = 1e-6 // 1 µs
)

// bucketBound returns the inclusive upper bound of bucket i in seconds.
func bucketBound(i int) float64 {
	return smallestBound * float64(uint64(1)<<uint(i))
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v float64) int {
	if v <= smallestBound {
		return 0
	}
	i := int(math.Ceil(math.Log2(v / smallestBound)))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Histogram accumulates float64 observations (by convention: seconds)
// into exponential buckets. All methods are safe for concurrent use and
// the observe path is lock-free.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
	once    sync.Once
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.min.store(math.Inf(1))
		h.max.store(math.Inf(-1))
	})
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.init()
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// atomicFloat is a float64 with atomic add/min/max via CAS on the bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	Buckets [numBuckets]int64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the bucket reads; the snapshot is internally consistent
// enough for reporting (Count is re-derived from the bucket copies).
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.init()
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.load()
	s.Min = h.min.load()
	s.Max = h.max.load()
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets. The
// estimate is the upper bound of the bucket containing the q-th
// observation, clamped to the observed Min/Max — exact enough for p50/p99
// reporting with exponential buckets.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			b := bucketBound(i)
			if b > s.Max {
				b = s.Max
			}
			if b < s.Min {
				b = s.Min
			}
			return b
		}
	}
	return s.Max
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Registry is a named collection of counters and histograms.
type Registry struct {
	mu    sync.RWMutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should look the counter up once and keep the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.ctrs[name]; c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ctrs))
	for name := range r.ctrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
