package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("Counter not idempotent")
	}
	if got := r.Snapshot().Counters["reqs"]; got != 5 {
		t.Fatalf("snapshot counter = %d", got)
	}
}

func TestBucketMapping(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1e-9, 0},
		{1e-6, 0},
		{2e-6, 1},
		{2.1e-6, 2},
		{1e-3, bucketFor(1e-3)},
		{1e9, numBuckets - 1},
	}
	for _, c := range cases {
		got := bucketFor(c.v)
		if got != c.want {
			t.Errorf("bucketFor(%g) = %d, want %d", c.v, got, c.want)
		}
		if c.v > 0 && c.v <= bucketBound(numBuckets-1) && c.v > bucketBound(got) {
			t.Errorf("bucketFor(%g) = %d but bound %g < v", c.v, got, bucketBound(got))
		}
	}
	// Bounds are increasing.
	for i := 1; i < numBuckets; i++ {
		if bucketBound(i) <= bucketBound(i-1) {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1ms x90, 100ms x9, 1s x1.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.100)
	}
	h.Observe(1.0)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Sum-(0.09+0.9+1.0)) > 1e-9 {
		t.Fatalf("Sum = %g", s.Sum)
	}
	if s.Min != 0.001 || s.Max != 1.0 {
		t.Fatalf("Min/Max = %g/%g", s.Min, s.Max)
	}
	// p50 must land in the 1ms bucket region, p99+ near the tail.
	if p := s.Quantile(0.5); p > 0.01 {
		t.Errorf("p50 = %g, want ~1ms", p)
	}
	if p := s.Quantile(0.95); p < 0.05 || p > 0.3 {
		t.Errorf("p95 = %g, want ~100ms", p)
	}
	if p := s.Quantile(1.0); p != 1.0 {
		t.Errorf("p100 = %g, want clamped to max 1.0", p)
	}
	if m := s.Mean(); math.Abs(m-0.0199) > 1e-4 {
		t.Errorf("Mean = %g", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(250 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || math.Abs(s.Sum-0.25) > 1e-9 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const each = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("lat")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != workers*each {
		t.Fatalf("counter = %d", s.Counters["n"])
	}
	hs := s.Histograms["lat"]
	if hs.Count != workers*each {
		t.Fatalf("histogram count = %d", hs.Count)
	}
	if math.Abs(hs.Sum-float64(workers*each)*0.001) > 1e-6 {
		t.Fatalf("histogram sum = %g", hs.Sum)
	}
}
