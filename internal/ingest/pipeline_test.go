package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/locdb"
	"bips/internal/sim"
	"bips/internal/wire"
)

// testResolver accepts every delta for device addresses that parse,
// tracks everything, and rejects the literal device "reject".
func testResolver(p wire.Presence) (locdb.Mutation, bool, error) {
	if p.Device == "reject" {
		return locdb.Mutation{}, false, errors.New("bad device")
	}
	if p.Device == "untracked" {
		return locdb.Mutation{}, false, nil
	}
	dev, err := wire.ParseAddr(p.Device)
	if err != nil {
		return locdb.Mutation{}, false, err
	}
	op := locdb.MutPresence
	if !p.Present {
		op = locdb.MutAbsence
	}
	return locdb.Mutation{Op: op, Dev: dev, Piconet: p.Room, At: p.At}, true, nil
}

func devAddr(i int) string {
	return baseband.BDAddr(0xD000_0000_0000 + uint64(i)).String()
}

func frame(session string, seq uint64, n int, base int) wire.PresenceBatch {
	b := wire.PresenceBatch{Session: session, Seq: seq}
	for i := 0; i < n; i++ {
		b.Deltas = append(b.Deltas, wire.Presence{
			Device: devAddr(base + i), Room: 1, At: sim.Tick(int(seq)*1000 + i), Present: true,
		})
	}
	return b
}

func TestPipelineHelloApplyResume(t *testing.T) {
	db := locdb.New()
	pl := NewPipeline(db, testResolver)

	ack, err := pl.Hello(wire.IngestHello{Session: "s1", Station: "st", Room: 1})
	if err != nil || ack.Acked != 0 {
		t.Fatalf("hello: ack=%+v err=%v", ack, err)
	}
	ack, err = pl.Apply(frame("s1", 1, 3, 0))
	if err != nil || ack.Acked != 1 || ack.Applied != 3 {
		t.Fatalf("frame 1: ack=%+v err=%v", ack, err)
	}
	ack, err = pl.Apply(frame("s1", 2, 2, 10))
	if err != nil || ack.Acked != 2 || ack.Applied != 2 {
		t.Fatalf("frame 2: ack=%+v err=%v", ack, err)
	}
	if db.Present() != 5 {
		t.Fatalf("Present = %d, want 5", db.Present())
	}

	// Duplicate replay: acknowledged, not re-applied.
	before := db.Stats().Updates
	ack, err = pl.Apply(frame("s1", 1, 3, 0))
	if err != nil || !ack.Duplicate || ack.Acked != 2 || ack.Applied != 0 {
		t.Fatalf("duplicate frame: ack=%+v err=%v", ack, err)
	}
	if after := db.Stats().Updates; after != before {
		t.Fatalf("duplicate frame re-applied: updates %d -> %d", before, after)
	}

	// Resume: re-hello reports the cumulative ack.
	ack, err = pl.Hello(wire.IngestHello{Session: "s1", Station: "st", Room: 1})
	if err != nil || ack.Acked != 2 {
		t.Fatalf("resume hello: ack=%+v err=%v", ack, err)
	}
	if got := pl.Stats()["resumes"]; got != 1 {
		t.Fatalf("resumes = %d, want 1", got)
	}
}

func TestPipelineErrors(t *testing.T) {
	pl := NewPipeline(locdb.New(), testResolver, WithGapWait(20*time.Millisecond))
	if _, err := pl.Hello(wire.IngestHello{Session: "s"}); err != nil {
		t.Fatal(err)
	}

	// Unknown session.
	if _, err := pl.Apply(frame("ghost", 1, 1, 0)); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown session error = %v", err)
	}
	// Malformed frames: empty, zero seq, oversized, no session.
	for name, b := range map[string]wire.PresenceBatch{
		"empty":     {Session: "s", Seq: 1},
		"zero seq":  frameWithSeq("s", 0),
		"oversized": {Session: "s", Seq: 1, Deltas: make([]wire.Presence, wire.MaxBatchDeltas+1)},
		"anonymous": frameWithSeq("", 1),
	} {
		if _, err := pl.Apply(b); !errors.Is(err, wire.ErrMalformed) {
			t.Errorf("%s: error = %v, want ErrMalformed", name, err)
		}
	}
	// Far-future frame: immediate gap error.
	if _, err := pl.Apply(frame("s", DefaultGapWindow+2, 1, 0)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("far-future frame error = %v", err)
	}
	// Near-future frame whose predecessor never arrives: gap after the
	// bounded wait, not a hang and not silence.
	start := time.Now()
	if _, err := pl.Apply(frame("s", 2, 1, 0)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("orphan frame error = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("gap wait did not respect the configured bound")
	}
	if got := pl.Stats()["seq_gaps"]; got != 2 {
		t.Fatalf("seq_gaps = %d, want 2", got)
	}
}

func frameWithSeq(session string, seq uint64) wire.PresenceBatch {
	f := frame("x", seq, 1, 0)
	f.Session = session
	return f
}

// TestPipelineReorderWindow: a frame arriving ahead of its predecessor
// (handler-scheduling race) parks briefly and applies in order.
func TestPipelineReorderWindow(t *testing.T) {
	db := locdb.New()
	pl := NewPipeline(db, testResolver, WithGapWait(2*time.Second))
	if _, err := pl.Hello(wire.IngestHello{Session: "s"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	acks := make([]wire.IngestAck, 3)
	// Frame 3 and 2 start before frame 1; all must apply, in order.
	for i := 3; i >= 1; i-- {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			acks[i-1], errs[i-1] = pl.Apply(frame("s", uint64(i), 2, i*10))
		}()
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
	}
	if acks[2].Acked != 3 {
		t.Fatalf("final ack = %+v, want acked 3", acks[2])
	}
	if db.Present() != 6 {
		t.Fatalf("Present = %d, want 6", db.Present())
	}
}

func TestPipelineRejectedAndUntrackedDeltas(t *testing.T) {
	db := locdb.New()
	pl := NewPipeline(db, testResolver)
	if _, err := pl.Hello(wire.IngestHello{Session: "s"}); err != nil {
		t.Fatal(err)
	}
	b := wire.PresenceBatch{Session: "s", Seq: 1, Deltas: []wire.Presence{
		{Device: devAddr(1), Room: 1, At: 1, Present: true},
		{Device: "reject", Room: 1, At: 2, Present: true},
		{Device: "untracked", Room: 1, At: 3, Present: true},
		{Device: devAddr(2), Room: 1, At: 4, Present: true},
	}}
	ack, err := pl.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	// One bad delta is skipped and counted; it does not wedge the
	// session: the ack still advances and the good deltas apply.
	if ack.Acked != 1 || ack.Applied != 2 || ack.Rejected != 1 {
		t.Fatalf("ack = %+v, want acked=1 applied=2 rejected=1", ack)
	}
	if got := pl.Stats()["rejected_deltas"]; got != 1 {
		t.Fatalf("rejected_deltas = %d, want 1", got)
	}
}

func TestPipelineSessionLimit(t *testing.T) {
	pl := NewPipeline(locdb.New(), testResolver, WithMaxSessions(2))
	for i := 0; i < 2; i++ {
		if _, err := pl.Hello(wire.IngestHello{Session: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The table is full of *fresh* sessions (idle < DefaultIdleEvictAfter):
	// nothing may be evicted, the newcomer is rejected.
	if _, err := pl.Hello(wire.IngestHello{Session: "one-too-many"}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("session-limit error = %v", err)
	}
	// Re-hello of a known session is not a new session.
	if _, err := pl.Hello(wire.IngestHello{Session: "s0"}); err != nil {
		t.Fatalf("re-hello rejected: %v", err)
	}
}

// TestPipelineIdleEviction: a full table admits a new session by
// evicting the longest-idle one (abandoned load-generator sessions
// must not permanently exhaust the table), and the evicted station can
// come back as a fresh session.
func TestPipelineIdleEviction(t *testing.T) {
	pl := NewPipeline(locdb.New(), testResolver,
		WithMaxSessions(2), WithIdleEvictAfter(time.Nanosecond))
	if _, err := pl.Hello(wire.IngestHello{Session: "old"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := pl.Hello(wire.IngestHello{Session: "mid"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := pl.Hello(wire.IngestHello{Session: "new"}); err != nil {
		t.Fatalf("full table with idle sessions rejected a newcomer: %v", err)
	}
	if _, ok := pl.Acked("old"); ok {
		t.Error("longest-idle session survived the eviction")
	}
	if _, ok := pl.Acked("mid"); !ok {
		t.Error("younger session was evicted instead of the longest-idle one")
	}
	if got := pl.Stats()["evicted_sessions"]; got != 1 {
		t.Errorf("evicted_sessions = %d, want 1", got)
	}
	// The evicted station re-hellos as a fresh session (ack 0 — its
	// client rebases, see the protocol's session-loss rule).
	time.Sleep(2 * time.Millisecond)
	ack, err := pl.Hello(wire.IngestHello{Session: "old"})
	if err != nil || ack.Acked != 0 {
		t.Fatalf("evicted session re-hello: ack=%+v err=%v", ack, err)
	}
}
