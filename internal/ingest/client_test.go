package ingest_test

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/ingest"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
)

const pw = "pw"

// startServerOn runs a real TCP server with n logged-in devices on the
// given listener.
func startServerOn(t *testing.T, devs int, l net.Listener) *server.Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	s := server.New(reg, locdb.New(), bld)
	s.Logf = nil
	for i := 0; i < devs; i++ {
		name := fmt.Sprintf("u%d", i)
		if err := reg.Register(registry.UserID(name), name, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
		if err := s.Login(wire.Login{User: name, Password: pw, Device: testDev(i).String()}); err != nil {
			t.Fatal(err)
		}
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s
}

// startServer runs a real TCP server with n logged-in devices.
func startServer(t *testing.T, devs int) (*server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return startServerOn(t, devs, l), l.Addr().String()
}

func testDev(i int) baseband.BDAddr {
	return baseband.BDAddr(0xC100_0000_0000 + uint64(i+1))
}

// testStream is a deterministic presence-delta stream over devs
// devices and the academic building's rooms.
func testStream(n, devs int) []wire.Presence {
	out := make([]wire.Presence, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, wire.Presence{
			Device:  testDev(i % devs).String(),
			Room:    graph.NodeID(1 + (i/devs)%7),
			At:      sim.Tick(i + 1),
			Present: i%13 != 0,
		})
	}
	return out
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func dbState(t *testing.T, s *server.Server, devs int) string {
	t.Helper()
	type state struct {
		All  []locdb.Fix
		Hist [][]locdb.Fix
	}
	st := state{All: s.DB().All()}
	for i := 0; i < devs; i++ {
		st.Hist = append(st.Hist, s.DB().History(testDev(i)))
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func newTestClient(t *testing.T, addr, session string) *ingest.Client {
	t.Helper()
	c, err := ingest.NewClient(ingest.ClientConfig{
		Addr:       addr,
		Session:    session,
		Station:    "S",
		Room:       1,
		MaxBatch:   16,
		MaxDelay:   -1, // deterministic frame boundaries: caller flushes
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientStreamsAndDrains: the happy path end to end.
func TestClientStreamsAndDrains(t *testing.T) {
	const devs = 8
	s, addr := startServer(t, devs)
	c := newTestClient(t, addr, "happy")
	for _, p := range testStream(400, devs) {
		if err := c.Report(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DeltasAcked != 400 || st.UnackedFrames != 0 || st.PendingDeltas != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	if got := s.DB().Stats().Updates; got == 0 {
		t.Fatal("no deltas reached the server")
	}
}

// TestClientSurvivesConnectionDrops is the TCP-drop chaos test of the
// acceptance criteria: the connection is severed repeatedly mid-stream;
// the client reconnects, resumes from the server's cumulative ack, and
// the final location database is byte-identical to an uninterrupted
// run — no lost deltas, no duplicates.
func TestClientSurvivesConnectionDrops(t *testing.T) {
	const devs = 8
	const n = 2000
	stream := testStream(n, devs)

	// Reference: uninterrupted run.
	refSrv, refAddr := startServer(t, devs)
	ref := newTestClient(t, refAddr, "station-1")
	for i, p := range stream {
		if err := ref.Report(p); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			ref.Flush()
		}
	}
	if err := ref.Drain(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Chaos run: same stream, connection severed every few hundred
	// deltas. (Frame boundaries need not match the reference run — the
	// comparison is about which deltas were applied, in order.) Each
	// kill waits for some delivery first so the drop path is really
	// exercised, and pauses briefly so the sender is mid-stream when
	// the next deltas arrive.
	chaosSrv, chaosAddr := startServer(t, devs)
	chaos := newTestClient(t, chaosAddr, "station-1")
	for i, p := range stream {
		if err := chaos.Report(p); err != nil {
			t.Fatal(err)
		}
		if i%37 == 0 {
			chaos.Flush()
		}
		if i%300 == 299 {
			waitFor(t, 10*time.Second, func() bool { return chaos.Stats().DeltasAcked > 0 })
			chaos.KillConn()
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := chaos.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := chaos.Stats()
	if st.Reconnects == 0 {
		t.Error("chaos run never reconnected — the test did not exercise the drop path")
	}
	if st.DeltasAcked != n {
		t.Errorf("DeltasAcked = %d, want %d", st.DeltasAcked, n)
	}

	if got, want := dbState(t, chaosSrv, devs), dbState(t, refSrv, devs); got != want {
		t.Errorf("state after connection drops diverges from uninterrupted run\nchaos: %s\nref:   %s", got, want)
	}
	// The server saw retransmissions but applied nothing twice.
	if dup := chaosSrv.Ingest().Stats()["duplicate_frames"]; dup > 0 {
		t.Logf("server deduplicated %d replayed frames", dup)
	}
	refUpdates := refSrv.DB().Stats()
	chaosUpdates := chaosSrv.DB().Stats()
	if refUpdates.Updates != chaosUpdates.Updates || refUpdates.Absences != chaosUpdates.Absences {
		t.Errorf("activity counters diverge: chaos %+v, ref %+v", chaosUpdates, refUpdates)
	}
}

// TestClientResumesAcrossRestart models a SIGKILLed station: the first
// client dies (hard Close, unacked frames lost from its memory), a
// fresh client with the same session id deterministically regenerates
// the same stream from the start, and resume-by-cumulative-ack skips
// everything already applied — the result matches an uninterrupted run.
func TestClientResumesAcrossRestart(t *testing.T) {
	const devs = 6
	const n = 900
	stream := testStream(n, devs)
	flush := func(c *ingest.Client, i int) {
		if i%29 == 0 {
			c.Flush()
		}
	}

	refSrv, refAddr := startServer(t, devs)
	ref := newTestClient(t, refAddr, "station-7")
	for i, p := range stream {
		if err := ref.Report(p); err != nil {
			t.Fatal(err)
		}
		flush(ref, i)
	}
	if err := ref.Drain(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	srv, addr := startServer(t, devs)
	// First life: stream part of the deltas. Only the deterministic cut
	// points (frame full, i%29 flush) seal frames — a SIGKILLed station
	// never gets to flush its tail, and the cut points must reproduce
	// identically in the second life for resume-by-sequence to be
	// sound. The background sender delivers what was cut; once the
	// server has real progress, the station "dies" with its buffered
	// tail.
	first := newTestClient(t, addr, "station-7")
	for i, p := range stream[:600] {
		if err := first.Report(p); err != nil {
			t.Fatal(err)
		}
		flush(first, i)
	}
	waitFor(t, 15*time.Second, func() bool {
		acked, _ := srv.Ingest().Acked("station-7")
		return acked > 0
	})
	first.Close() // SIGKILL: buffered state is gone

	acked, ok := srv.Ingest().Acked("station-7")
	if !ok || acked == 0 {
		t.Fatalf("server session state missing after first life: acked=%d ok=%v", acked, ok)
	}

	// Second life: same seed -> same stream from the start, same flush
	// boundaries -> same frames. The resume ack retires the regenerated
	// prefix without sending it.
	second := newTestClient(t, addr, "station-7")
	for i, p := range stream {
		if err := second.Report(p); err != nil {
			t.Fatal(err)
		}
		flush(second, i)
	}
	if err := second.Drain(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Resume engaged: the second life did not resend the frames the
	// first life already delivered (the reference run sent every frame).
	refFrames := ref.Stats().FramesSent
	if st := second.Stats(); st.FramesSent >= refFrames {
		t.Errorf("restarted client sent %d frames, reference sent %d — resume did not skip the acked prefix",
			st.FramesSent, refFrames)
	}

	if got, want := dbState(t, srv, devs), dbState(t, refSrv, devs); got != want {
		t.Errorf("state after restart+resume diverges from uninterrupted run\nrestart: %s\nref:     %s", got, want)
	}
}

// TestClientRebasesOnSessionLoss: the server process is replaced by a
// fresh one on the same address — its session table (memory-only) is
// gone while the client still holds a backlog. The client must detect
// the ack regression on re-hello, rebase its unacked frames onto the
// new server's position, and deliver them instead of wedging on a
// sequence gap.
func TestClientRebasesOnSessionLoss(t *testing.T) {
	const devs = 4
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	s1 := startServerOn(t, devs, l1)

	c := newTestClient(t, addr, "station-9")
	stream := testStream(200, devs)
	for _, p := range stream[:100] {
		if err := c.Report(p); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := c.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if acked := c.Stats().Acked; acked == 0 {
		t.Fatal("no progress before session loss")
	}

	// Replace the server: the old one goes away (killing the client's
	// connection with it), a fresh one binds the same address.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	s2 := startServerOn(t, devs, l2)

	// Stream the rest; the client reconnects, sees acked=0 < its own
	// ack, rebases, and delivers the tail onto the fresh server.
	for _, p := range stream[100:] {
		if err := c.Report(p); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := c.Drain(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s2.DB().Stats().Updates + s2.DB().Stats().Absences; got == 0 {
		t.Fatal("no deltas reached the replacement server")
	}
	if acked, ok := s2.Ingest().Acked("station-9"); !ok || acked == 0 {
		t.Fatalf("replacement server session acked = %d ok=%v", acked, ok)
	}
}
