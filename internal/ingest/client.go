package ingest

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bips/internal/graph"
	"bips/internal/wire"
)

// Client defaults.
const (
	// DefaultMaxDelay bounds how long a buffered delta waits for its
	// frame to fill before a partial frame is flushed anyway.
	DefaultMaxDelay = 50 * time.Millisecond
	// DefaultDialTimeout bounds one connection attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultMinBackoff / DefaultMaxBackoff bound the exponential
	// reconnect backoff.
	DefaultMinBackoff = 100 * time.Millisecond
	DefaultMaxBackoff = 5 * time.Second
)

// ClientConfig parameterizes a streaming ingest client.
type ClientConfig struct {
	// Addr is the central server's TCP address.
	Addr string
	// Session is the stable session identifier; reusing it across
	// restarts is what makes the stream resumable. Required.
	Session string
	// Station and Room identify the reporting cell in the hello.
	Station string
	Room    graph.NodeID
	// MaxBatch is the frame size (deltas per frame); 0 selects
	// DefaultMaxBatch.
	MaxBatch int
	// MaxDelay flushes a partial frame after this wall-clock delay;
	// 0 selects DefaultMaxDelay, negative disables the timer (the
	// caller flushes explicitly — e.g. a workstation cutting frames on
	// simulation time, which keeps frame boundaries deterministic).
	MaxDelay time.Duration
	// DialTimeout bounds one connection attempt; 0 selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff; 0 selects the
	// defaults.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Logf reports connection-level events; nil is silent.
	Logf func(format string, args ...any)
}

func (c *ClientConfig) fill() error {
	if c.Addr == "" {
		return errors.New("ingest: no server address")
	}
	if c.Session == "" {
		return errors.New("ingest: no session id")
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = DefaultMinBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.MaxBackoff < c.MinBackoff {
		c.MaxBackoff = c.MinBackoff
	}
	return nil
}

// ClientStats snapshots a client's activity.
type ClientStats struct {
	// FramesSent counts frame transmissions (retransmissions included).
	FramesSent int64
	// DeltasAcked counts deltas in frames covered by the cumulative ack.
	DeltasAcked int64
	// Acked is the cumulative ack high-water mark.
	Acked uint64
	// SkippedFrames counts regenerated frames retired without sending
	// (the server had already applied them in a previous life).
	SkippedFrames int64
	// Reconnects counts successful connections after the first.
	Reconnects int64
	// WireErrors counts MsgError responses (protocol violations — a
	// healthy station never sees one).
	WireErrors int64
	// PendingDeltas and UnackedFrames describe the current backlog.
	PendingDeltas int64
	UnackedFrames int64
}

// Client is the station side of an ingest session: it buffers deltas
// into sequenced frames and streams them to the server, reconnecting
// with exponential backoff and resuming from the server's cumulative
// ack after any interruption — a severed TCP connection, a restarted
// server connection handler, or its own process restart (same Session).
//
// Report/ReportBatch never touch the network: they buffer under a
// mutex and return immediately, so a partition back-pressures into
// memory instead of stalling the reporting workstation. A single sender
// goroutine owns all I/O. Client implements workstation.Reporter and
// workstation.BatchReporter.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	b      *Batcher
	stats  ClientStats
	closed bool
	drain  *sync.Cond

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	connMu sync.Mutex
	wc     *wire.Client
	dialed bool // a connection has succeeded at least once
}

// NewClient validates the config and starts the sender goroutine. The
// first connection is made lazily, when there is something to send.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:  cfg,
		b:    NewBatcher(cfg.MaxBatch),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.drain = sync.NewCond(&c.mu)
	go c.sendLoop()
	return c, nil
}

// Report buffers one delta (workstation.Reporter). It never blocks on
// the network and never fails while the client is open.
func (c *Client) Report(p wire.Presence) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("ingest: client closed")
	}
	if c.b.Add(p) {
		c.b.Cut()
	}
	c.mu.Unlock()
	c.wake()
	return nil
}

// ReportBatch seals an externally assembled batch straight into
// sequenced frames (workstation.BatchReporter). One call is one frame
// (or several, if the batch exceeds the frame size) — callers that cut
// on deterministic boundaries get deterministic frames.
func (c *Client) ReportBatch(deltas []wire.Presence) error {
	if len(deltas) == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("ingest: client closed")
	}
	c.b.CutFrame(deltas)
	c.mu.Unlock()
	c.wake()
	return nil
}

// Flush seals any buffered deltas into frames and kicks the sender.
func (c *Client) Flush() {
	c.mu.Lock()
	c.b.CutAll()
	c.mu.Unlock()
	c.wake()
}

// Drain flushes and then blocks until every frame is acked or the
// timeout expires.
func (c *Client) Drain(timeout time.Duration) error {
	c.Flush()
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.drain.Broadcast()
		c.mu.Unlock()
	})
	defer wake.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.backlogLocked() > 0 {
		if c.closed {
			return errors.New("ingest: client closed with frames unacked")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest: drain timed out with %d frames unacked", c.b.Unacked())
		}
		c.drain.Wait()
	}
	return nil
}

// backlogLocked counts undelivered work. Caller holds c.mu.
func (c *Client) backlogLocked() int { return c.b.Pending() + c.b.UnackedDeltas() }

// Close stops the sender and closes the connection. It does not wait
// for unacked frames — call Drain first for a graceful shutdown. The
// session itself survives on the server; a new Client with the same
// Session resumes it.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.drain.Broadcast()
	c.mu.Unlock()
	close(c.stop)
	c.closeConn()
	<-c.done
	return nil
}

// KillConn severs the current connection without stopping the client —
// a fault-injection hook for chaos tests and drills. The sender
// reconnects with backoff and resumes from the server's ack.
func (c *Client) KillConn() { c.closeConn() }

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Acked = c.b.Acked()
	st.SkippedFrames = c.b.Skipped()
	st.PendingDeltas = int64(c.b.Pending())
	st.UnackedFrames = int64(c.b.Unacked())
	return st
}

func (c *Client) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// sendLoop is the single I/O owner: cut frames are sent stop-and-wait
// (one frame in flight — frames are large, so the pipe stays busy), the
// ack retires them, transport failures reconnect with backoff and
// resume from the server's cumulative ack.
func (c *Client) sendLoop() {
	defer close(c.done)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if c.cfg.MaxDelay > 0 {
		ticker = time.NewTicker(c.cfg.MaxDelay)
		tick = ticker.C
		defer ticker.Stop()
	}
	backoff := c.cfg.MinBackoff
	for {
		c.mu.Lock()
		frame, ok := c.b.Next()
		c.mu.Unlock()
		if !ok {
			select {
			case <-c.stop:
				return
			case <-c.kick:
			case <-tick:
				c.mu.Lock()
				c.b.CutAll()
				c.mu.Unlock()
			}
			continue
		}

		wc, err := c.ensureConn()
		if err != nil {
			c.logf("ingest: connect %s: %v (retrying in %v)", c.cfg.Addr, err, backoff)
			if !c.sleep(backoff) {
				return
			}
			backoff = nextBackoff(backoff, c.cfg.MaxBackoff)
			continue
		}
		backoff = c.cfg.MinBackoff

		// Re-fetch the head frame: the hello inside ensureConn may have
		// retired it (resume ack) or renumbered the backlog (rebase
		// after a server that lost the session) — the copy fetched
		// before connecting could carry a stale sequence number.
		c.mu.Lock()
		frame, ok = c.b.Next()
		c.mu.Unlock()
		if !ok {
			continue
		}

		var ack wire.IngestAck
		callErr := wc.Call(wire.MsgPresenceBatch, wire.PresenceBatch{
			Session: c.cfg.Session,
			Seq:     frame.Seq,
			Deltas:  frame.Deltas,
		}, &ack)
		c.mu.Lock()
		c.stats.FramesSent++
		c.mu.Unlock()
		if callErr == nil {
			c.ackFrames(ack.Acked)
			if ack.Rejected > 0 {
				c.logf("ingest: server rejected %d deltas of frame %d", ack.Rejected, frame.Seq)
			}
			continue
		}
		var werr *wire.Error
		if errors.As(callErr, &werr) {
			// The server answered: a protocol violation (sequence gap
			// after a desync, session-table pressure, ...). Re-hello
			// resynchronizes the ack; backoff keeps a persistent
			// rejection from spinning.
			c.mu.Lock()
			c.stats.WireErrors++
			c.mu.Unlock()
			c.logf("ingest: frame %d rejected: %v (re-syncing)", frame.Seq, werr)
		} else {
			c.logf("ingest: send frame %d: %v (reconnecting)", frame.Seq, callErr)
		}
		c.closeConn()
		if !c.sleep(backoff) {
			return
		}
		backoff = nextBackoff(backoff, c.cfg.MaxBackoff)
	}
}

// ackFrames records a cumulative ack and credits the retired deltas.
func (c *Client) ackFrames(acked uint64) {
	c.mu.Lock()
	before := c.b.UnackedDeltas()
	c.b.Ack(acked)
	c.stats.DeltasAcked += int64(before - c.b.UnackedDeltas())
	if c.backlogLocked() == 0 {
		c.drain.Broadcast()
	}
	c.mu.Unlock()
}

// ensureConn returns the live connection, dialing and re-helloing when
// there is none. On resume, the server's cumulative ack retires every
// frame it already applied — including frames a restarted station
// regenerated but never sent.
func (c *Client) ensureConn() (*wire.Client, error) {
	c.connMu.Lock()
	if c.wc != nil {
		wc := c.wc
		c.connMu.Unlock()
		return wc, nil
	}
	reconnect := c.dialed
	c.connMu.Unlock()

	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	wc := wire.NewClient(wire.NewFrameCodec(conn))
	var ack wire.IngestAck
	if err := wc.Call(wire.MsgIngestHello, wire.IngestHello{
		Session: c.cfg.Session,
		Station: c.cfg.Station,
		Room:    c.cfg.Room,
	}, &ack); err != nil {
		wc.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if regressed := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		if ack.Acked < c.b.Acked() {
			// The server lost the session (restart); renumber the
			// backlog onto its position and replay — idempotent.
			c.b.Rebase(ack.Acked)
			return true
		}
		return false
	}(); regressed {
		c.logf("ingest: session %q rebased to server ack %d (server lost session state)", c.cfg.Session, ack.Acked)
	} else {
		c.ackFrames(ack.Acked)
	}

	c.connMu.Lock()
	c.wc = wc
	c.dialed = true
	c.connMu.Unlock()
	if reconnect {
		c.mu.Lock()
		c.stats.Reconnects++
		c.mu.Unlock()
		c.logf("ingest: reconnected to %s, session %q resumed at ack %d", c.cfg.Addr, c.cfg.Session, ack.Acked)
	}
	return wc, nil
}

// closeConn tears down the current connection (idempotent).
func (c *Client) closeConn() {
	c.connMu.Lock()
	wc := c.wc
	c.wc = nil
	c.connMu.Unlock()
	if wc != nil {
		_ = wc.Close()
	}
}

// sleep waits d, interruptible by Close; false means the client closed.
func (c *Client) sleep(d time.Duration) bool {
	select {
	case <-c.stop:
		return false
	case <-time.After(d):
		return true
	}
}

func nextBackoff(cur, max time.Duration) time.Duration {
	next := cur * 2
	if next > max {
		next = max
	}
	return next
}
