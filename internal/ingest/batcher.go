package ingest

import (
	"bips/internal/wire"
)

// DefaultMaxBatch is the default frame size: large enough to amortize a
// round trip over many deltas, small enough that a frame flushes well
// within one workstation inquiry cycle under campus load.
const DefaultMaxBatch = 64

// Frame is one cut, sequenced batch of deltas. Once cut, a frame's
// (Seq, Deltas) pair never changes — re-sending it after a reconnect
// re-sends exactly the same content, which is what makes the server's
// duplicate detection by sequence number sound.
type Frame struct {
	Seq    uint64
	Deltas []wire.Presence
}

// Batcher is the pure client-side state machine of an ingest session:
// it buffers deltas, cuts them into sequenced frames, and tracks the
// unacked window for resume. It does no I/O and keeps no clock — the
// Client (wall time) and the workstation's flush ticks (simulation
// time) drive it — and it is not safe for concurrent use on its own;
// Client wraps it with a lock.
type Batcher struct {
	maxBatch int
	nextSeq  uint64
	acked    uint64
	pending  []wire.Presence
	unacked  []Frame
	skipped  int64
}

// NewBatcher returns an empty batcher cutting frames of at most
// maxBatch deltas (0 or negative selects DefaultMaxBatch; values beyond
// wire.MaxBatchDeltas are clamped to it).
func NewBatcher(maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	if maxBatch > wire.MaxBatchDeltas {
		maxBatch = wire.MaxBatchDeltas
	}
	return &Batcher{maxBatch: maxBatch, nextSeq: 1}
}

// Add buffers one delta and reports whether the pending buffer reached
// the frame size (time to Cut).
func (b *Batcher) Add(p wire.Presence) (full bool) {
	b.pending = append(b.pending, p)
	return len(b.pending) >= b.maxBatch
}

// Cut seals up to one frame's worth of pending deltas into the next
// sequenced frame and moves it onto the unacked queue, leaving any
// excess pending (call again to keep cutting). It returns false when
// nothing is pending.
func (b *Batcher) Cut() (Frame, bool) {
	if len(b.pending) == 0 {
		return Frame{}, false
	}
	n := len(b.pending)
	if n > b.maxBatch {
		n = b.maxBatch
	}
	f := Frame{Seq: b.nextSeq, Deltas: b.pending[:n:n]}
	b.nextSeq++
	b.pending = b.pending[n:]
	if len(b.pending) == 0 {
		b.pending = nil
	}
	b.unacked = append(b.unacked, f)
	return f, true
}

// CutAll drains the whole pending buffer into frames.
func (b *Batcher) CutAll() {
	for {
		if _, ok := b.Cut(); !ok {
			return
		}
	}
}

// CutFrame seals an externally assembled batch (e.g. a workstation
// flush) directly into the next sequenced frame, bypassing the pending
// buffer. Deltas beyond the frame size are split into multiple frames;
// the returned slice lists every frame cut, in order.
func (b *Batcher) CutFrame(deltas []wire.Presence) []Frame {
	var out []Frame
	for len(deltas) > 0 {
		n := len(deltas)
		if n > b.maxBatch {
			n = b.maxBatch
		}
		f := Frame{Seq: b.nextSeq, Deltas: append([]wire.Presence(nil), deltas[:n]...)}
		b.nextSeq++
		b.unacked = append(b.unacked, f)
		out = append(out, f)
		deltas = deltas[n:]
	}
	return out
}

// Next returns the oldest frame that still needs sending: the first
// unacked frame with Seq > Acked. Frames at or below the ack (applied
// by the server in a previous life of this station) are dropped without
// ever being sent.
func (b *Batcher) Next() (Frame, bool) {
	for len(b.unacked) > 0 && b.unacked[0].Seq <= b.acked {
		b.unacked = b.unacked[1:]
		b.skipped++
	}
	if len(b.unacked) == 0 {
		return Frame{}, false
	}
	return b.unacked[0], true
}

// Ack records the server's cumulative ack, dropping every frame at or
// below it. Regressions are ignored (acks are cumulative). An ack
// learned from a (re)hello works the same way and doubles as the
// resume point: it may run ahead of every frame cut so far (a
// restarted station deterministically regenerating its stream), in
// which case the regenerated frames are retired by Next when they are
// eventually cut, without ever being sent.
func (b *Batcher) Ack(acked uint64) {
	if acked <= b.acked {
		return
	}
	b.acked = acked
	for len(b.unacked) > 0 && b.unacked[0].Seq <= acked {
		b.unacked = b.unacked[1:]
	}
}

// Rebase renumbers the unacked frames to follow acked and rewinds the
// sequence counter — the recovery path for a server that lost its
// session table (a restart: the location state recovers from the WAL,
// the in-memory acks do not). The renumbered frames replay on top of
// the recovered state; frames that were applied but whose ack was lost
// re-apply as no-ops (the delta semantics make replay idempotent), so
// rebasing loses nothing and duplicates nothing.
func (b *Batcher) Rebase(acked uint64) {
	b.acked = acked
	seq := acked
	for i := range b.unacked {
		seq++
		b.unacked[i].Seq = seq
	}
	b.nextSeq = seq + 1
}

// Acked returns the highest cumulative ack seen.
func (b *Batcher) Acked() uint64 { return b.acked }

// Skipped counts frames retired by Next without being sent — frames a
// restarted station regenerated that the server had already applied.
func (b *Batcher) Skipped() int64 { return b.skipped }

// Pending returns the number of buffered-but-uncut deltas.
func (b *Batcher) Pending() int { return len(b.pending) }

// Unacked returns the number of cut frames not yet acked (including
// ones Next would drop as pre-acked).
func (b *Batcher) Unacked() int { return len(b.unacked) }

// UnackedDeltas counts the deltas in unacked frames still to send.
func (b *Batcher) UnackedDeltas() int {
	n := 0
	for _, f := range b.unacked {
		if f.Seq > b.acked {
			n += len(f.Deltas)
		}
	}
	return n
}
