// Package ingest is the BIPS streaming ingestion subsystem: the
// sessioned, batched, resumable write path that carries presence deltas
// from every workstation cell to the central server's location store.
//
// The paper's architecture is write-heavy at its core — each significant
// room continuously reveals presences and pushes only the deltas — and
// the links carrying those deltas (Bluetooth-backed stations on a campus
// LAN) drop, partition and restart. The subsystem therefore treats the
// many cells feeding one server as a sessioned many-to-one channel with
// explicit sequencing rather than fire-and-forget RPCs:
//
//   - A station opens a session (wire.IngestHello) identified by a
//     stable, station-chosen id, and streams wire.PresenceBatch frames
//     carrying monotonically increasing per-session sequence numbers.
//   - The server acknowledges cumulatively (wire.IngestAck.Acked = N
//     means frames 1..N are applied exactly once). A frame at or below
//     the ack is a duplicate and is acknowledged without re-applying;
//     re-sending after a reconnect is therefore always safe.
//   - On reconnect (or restart) the station re-sends the hello, learns
//     the cumulative ack, drops everything already applied and resumes
//     from the first unacked frame — no lost deltas, no duplicates.
//
// Three pieces implement this: Pipeline (server side: the session table
// plus the grouped apply through locdb's batch-mutation API), Batcher
// (client side: the pure buffering/sequencing state machine), and
// Client (client side: a reconnecting wall-clock stream with backoff,
// used by cmd/bips-station). internal/workstation cuts deterministic
// frames with its simulation-time flush policy and feeds any
// BatchReporter, typically a Client. See docs/PROTOCOL.md section 8 for
// the wire contract.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/wire"
)

// Pipeline defaults.
const (
	// DefaultGapWindow is how many frames past the cumulative ack a
	// pipelining station may run ahead: a frame within the window waits
	// (briefly) for its predecessors; one beyond it is rejected
	// outright. It matches the server's default per-connection pipeline
	// depth so a well-behaved station can keep a full pipe.
	DefaultGapWindow = 64
	// DefaultGapWait bounds how long an out-of-order frame waits for
	// its predecessors before the server answers a sequence-gap error.
	// On one connection frames arrive in order, so the wait only
	// resolves handler-scheduling races — it is never a steady state.
	DefaultGapWait = 3 * time.Second
	// DefaultMaxSessions bounds the session table (sessions are small
	// but live until evicted).
	DefaultMaxSessions = 65536
	// DefaultIdleEvictAfter is how long a session must have been idle
	// before a full table may evict it to admit a new one. Short-lived
	// clients (load generators) leave sessions behind by design; this
	// keeps them from permanently exhausting the table, while a table
	// full of *active* stations still rejects newcomers rather than
	// evicting live streams. An evicted station that comes back simply
	// resumes from ack 0 (rebase) — a replay, not data loss.
	DefaultIdleEvictAfter = 10 * time.Minute
)

// Pipeline errors, mapped onto wire error codes by the serving layer.
var (
	// ErrUnknownSession reports a batch for a session no hello opened.
	ErrUnknownSession = errors.New("ingest: unknown session (send ingest.hello first)")
	// ErrSeqGap reports a frame too far past the cumulative ack, or one
	// whose predecessors never arrived.
	ErrSeqGap = errors.New("ingest: sequence gap")
	// ErrSessionLimit reports an exhausted session table.
	ErrSessionLimit = errors.New("ingest: too many sessions")
)

// Resolver validates one delta and translates it into a storage
// mutation. The serving layer supplies it (it owns the building and the
// registry): ok=false skips the delta silently (an untracked device —
// not an error, BIPS only tracks logged-in users); a non-nil error
// marks the delta rejected — it is skipped and counted, but does not
// block the frame (a stale station must not be able to wedge its
// session behind one bad delta).
type Resolver func(p wire.Presence) (m locdb.Mutation, ok bool, err error)

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithGapWindow overrides DefaultGapWindow (values below 1 clamp to 1).
func WithGapWindow(n uint64) Option {
	return func(pl *Pipeline) {
		if n < 1 {
			n = 1
		}
		pl.gapWindow = n
	}
}

// WithGapWait overrides DefaultGapWait.
func WithGapWait(d time.Duration) Option {
	return func(pl *Pipeline) { pl.gapWait = d }
}

// WithMaxSessions overrides DefaultMaxSessions.
func WithMaxSessions(n int) Option {
	return func(pl *Pipeline) { pl.maxSessions = n }
}

// WithIdleEvictAfter overrides DefaultIdleEvictAfter (<= 0 disables
// eviction: a full table always rejects new sessions).
func WithIdleEvictAfter(d time.Duration) Option {
	return func(pl *Pipeline) { pl.idleEvictAfter = d }
}

// session is one station's ingest state. Its lock serializes frame
// application for the session (different sessions apply concurrently);
// cond wakes frames parked in the reorder window.
type session struct {
	mu   sync.Mutex
	cond *sync.Cond

	station string
	room    graph.NodeID
	acked   uint64

	frames     int64
	deltas     int64
	applied    int64
	duplicates int64

	// lastActive (unix nanos, atomic so the eviction scan needs no
	// session lock) is touched on every hello and frame.
	lastActive atomic.Int64
}

// Pipeline is the server-side ingest apply path: the session table and
// the grouped write-through to the location store.
type Pipeline struct {
	db      locdb.Store
	resolve Resolver

	gapWindow      uint64
	gapWait        time.Duration
	maxSessions    int
	idleEvictAfter time.Duration

	mu       sync.Mutex
	sessions map[string]*session

	statsMu   sync.Mutex
	resumes   int64
	gaps      int64
	rejects   int64
	evictions int64
}

// NewPipeline builds a pipeline over the location store. resolve must
// be non-nil.
func NewPipeline(db locdb.Store, resolve Resolver, opts ...Option) *Pipeline {
	pl := &Pipeline{
		db:             db,
		resolve:        resolve,
		gapWindow:      DefaultGapWindow,
		gapWait:        DefaultGapWait,
		maxSessions:    DefaultMaxSessions,
		idleEvictAfter: DefaultIdleEvictAfter,
		sessions:       make(map[string]*session),
	}
	for _, opt := range opts {
		opt(pl)
	}
	return pl
}

// Hello opens or resumes a session and returns its cumulative ack. The
// caller has already validated the room against the building. Reopening
// a known session keeps its progress (that is the resume contract) and
// refreshes the station metadata.
func (pl *Pipeline) Hello(h wire.IngestHello) (wire.IngestAck, error) {
	if h.Session == "" {
		return wire.IngestAck{}, fmt.Errorf("%w: ingest.hello without session", wire.ErrMalformed)
	}
	pl.mu.Lock()
	s, ok := pl.sessions[h.Session]
	if !ok {
		if len(pl.sessions) >= pl.maxSessions && !pl.evictIdleLocked() {
			pl.mu.Unlock()
			return wire.IngestAck{}, fmt.Errorf("%w (%d)", ErrSessionLimit, pl.maxSessions)
		}
		s = &session{}
		s.cond = sync.NewCond(&s.mu)
		pl.sessions[h.Session] = s
	}
	pl.mu.Unlock()

	s.lastActive.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.station = h.Station
	s.room = h.Room
	acked := s.acked
	s.mu.Unlock()
	if ok && acked > 0 {
		pl.statsMu.Lock()
		pl.resumes++
		pl.statsMu.Unlock()
	}
	return wire.IngestAck{Acked: acked}, nil
}

// Apply applies one frame under the session's sequencing contract and
// returns the session's cumulative ack.
//
//   - Seq <= acked: duplicate; acknowledged without re-applying.
//   - Seq == acked+1: validated as a unit, then applied through the
//     store's batch-mutation API (one lock acquisition per shard).
//   - acked+1 < Seq <= acked+window: parked until its predecessors
//     arrive (frames on one connection arrive in order, so this only
//     absorbs handler-scheduling races), bounded by the gap wait.
//   - beyond the window, or the wait expires: ErrSeqGap.
func (pl *Pipeline) Apply(b wire.PresenceBatch) (wire.IngestAck, error) {
	if err := b.Validate(); err != nil {
		return wire.IngestAck{}, err
	}
	pl.mu.Lock()
	s, ok := pl.sessions[b.Session]
	pl.mu.Unlock()
	if !ok {
		return wire.IngestAck{}, fmt.Errorf("%w: %q", ErrUnknownSession, b.Session)
	}

	s.lastActive.Store(time.Now().UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Seq > s.acked+1 {
		if err := pl.waitForPredecessors(s, b.Seq); err != nil {
			return wire.IngestAck{}, err
		}
	}
	s.frames++
	s.deltas += int64(len(b.Deltas))
	if b.Seq <= s.acked {
		s.duplicates++
		return wire.IngestAck{Acked: s.acked, Duplicate: true}, nil
	}

	// b.Seq == s.acked+1: resolve every delta, then apply the frame
	// through the store's batch-mutation API. Invalid deltas are
	// skipped and counted (never retried — the frame content is
	// immutable, so retrying cannot fix them), untracked devices are
	// skipped silently, and the ack advances regardless: one bad delta
	// must not wedge the session.
	muts := make([]locdb.Mutation, 0, len(b.Deltas))
	rejected := 0
	for _, p := range b.Deltas {
		m, track, err := pl.resolve(p)
		if err != nil {
			rejected++
			continue
		}
		if track {
			muts = append(muts, m)
		}
	}
	applied := pl.db.ApplyBatch(muts)
	s.applied += int64(applied)
	s.acked = b.Seq
	s.cond.Broadcast()
	if rejected > 0 {
		pl.statsMu.Lock()
		pl.rejects += int64(rejected)
		pl.statsMu.Unlock()
	}
	return wire.IngestAck{Acked: s.acked, Applied: applied, Rejected: rejected}, nil
}

// waitForPredecessors parks a frame inside the reorder window until the
// session's ack catches up to seq-1. Caller holds s.mu; returns with
// s.mu held.
func (pl *Pipeline) waitForPredecessors(s *session, seq uint64) error {
	gap := func() error {
		pl.statsMu.Lock()
		pl.gaps++
		pl.statsMu.Unlock()
		return fmt.Errorf("%w: frame %d but session acked %d (window %d)",
			ErrSeqGap, seq, s.acked, pl.gapWindow)
	}
	if seq > s.acked+pl.gapWindow {
		return gap()
	}
	deadline := time.Now().Add(pl.gapWait)
	wake := time.AfterFunc(pl.gapWait, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake.Stop()
	for seq > s.acked+1 {
		if time.Now().After(deadline) {
			return gap()
		}
		s.cond.Wait()
	}
	return nil
}

// evictIdleLocked frees one slot in a full session table by deleting
// the longest-idle session, provided it has been idle for at least
// idleEvictAfter — abandoned sessions (a load generator's, a
// decommissioned station's) age out while live streams are never
// evicted. Returns whether a slot was freed. Caller holds pl.mu.
func (pl *Pipeline) evictIdleLocked() bool {
	if pl.idleEvictAfter <= 0 {
		return false
	}
	var oldestID string
	oldest := int64(0)
	for id, s := range pl.sessions {
		if at := s.lastActive.Load(); oldestID == "" || at < oldest {
			oldestID, oldest = id, at
		}
	}
	if oldestID == "" || time.Since(time.Unix(0, oldest)) < pl.idleEvictAfter {
		return false
	}
	delete(pl.sessions, oldestID)
	pl.statsMu.Lock()
	pl.evictions++
	pl.statsMu.Unlock()
	return true
}

// Sessions returns the number of open sessions.
func (pl *Pipeline) Sessions() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.sessions)
}

// Acked returns a session's cumulative ack (0, false for an unknown
// session). Chaos tooling and tests use it to observe resume state.
func (pl *Pipeline) Acked(sessionID string) (uint64, bool) {
	pl.mu.Lock()
	s, ok := pl.sessions[sessionID]
	pl.mu.Unlock()
	if !ok {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked, true
}

// Stats snapshots the pipeline's counters for the serving layer's
// MsgStats merge (flat map, "ingest." prefix added by the caller).
func (pl *Pipeline) Stats() map[string]int64 {
	pl.mu.Lock()
	sessions := make([]*session, 0, len(pl.sessions))
	for _, s := range pl.sessions {
		sessions = append(sessions, s)
	}
	pl.mu.Unlock()
	var frames, deltas, applied, duplicates int64
	for _, s := range sessions {
		s.mu.Lock()
		frames += s.frames
		deltas += s.deltas
		applied += s.applied
		duplicates += s.duplicates
		s.mu.Unlock()
	}
	pl.statsMu.Lock()
	resumes, gaps, rejects, evictions := pl.resumes, pl.gaps, pl.rejects, pl.evictions
	pl.statsMu.Unlock()
	return map[string]int64{
		"sessions":         int64(len(sessions)),
		"frames":           frames,
		"deltas":           deltas,
		"applied":          applied,
		"duplicate_frames": duplicates,
		"resumes":          resumes,
		"seq_gaps":         gaps,
		"rejected_deltas":  rejects,
		"evicted_sessions": evictions,
	}
}
