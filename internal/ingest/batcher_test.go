package ingest

import (
	"fmt"
	"testing"

	"bips/internal/wire"
)

func delta(i int) wire.Presence {
	return wire.Presence{Device: fmt.Sprintf("00:00:00:00:00:%02X", i%256), Room: 1, At: 1, Present: true}
}

func TestBatcherCutAndAck(t *testing.T) {
	b := NewBatcher(3)
	if _, ok := b.Cut(); ok {
		t.Fatal("Cut on empty batcher returned a frame")
	}
	if full := b.Add(delta(1)); full {
		t.Fatal("full after 1 of 3")
	}
	b.Add(delta(2))
	if full := b.Add(delta(3)); !full {
		t.Fatal("not full after 3 of 3")
	}
	f, ok := b.Cut()
	if !ok || f.Seq != 1 || len(f.Deltas) != 3 {
		t.Fatalf("first frame = %+v, ok=%v", f, ok)
	}
	b.Add(delta(4))
	f2, _ := b.Cut()
	if f2.Seq != 2 || len(f2.Deltas) != 1 {
		t.Fatalf("second frame = %+v", f2)
	}

	if got, _ := b.Next(); got.Seq != 1 {
		t.Fatalf("Next = frame %d, want 1", got.Seq)
	}
	b.Ack(1)
	if got, _ := b.Next(); got.Seq != 2 {
		t.Fatalf("after ack 1, Next = frame %d, want 2", got.Seq)
	}
	b.Ack(2)
	if _, ok := b.Next(); ok {
		t.Fatal("frames remain after full ack")
	}
	// Ack regression is ignored.
	b.Ack(1)
	if b.Acked() != 2 {
		t.Fatalf("acked = %d after regression, want 2", b.Acked())
	}
}

func TestBatcherCutFrameSplits(t *testing.T) {
	b := NewBatcher(4)
	deltas := make([]wire.Presence, 10)
	for i := range deltas {
		deltas[i] = delta(i)
	}
	frames := b.CutFrame(deltas)
	if len(frames) != 3 {
		t.Fatalf("CutFrame(10 deltas, max 4) cut %d frames, want 3", len(frames))
	}
	sizes := []int{4, 4, 2}
	for i, f := range frames {
		if f.Seq != uint64(i+1) || len(f.Deltas) != sizes[i] {
			t.Fatalf("frame %d = seq %d size %d, want seq %d size %d", i, f.Seq, len(f.Deltas), i+1, sizes[i])
		}
	}
	if b.UnackedDeltas() != 10 {
		t.Fatalf("UnackedDeltas = %d, want 10", b.UnackedDeltas())
	}
}

// TestBatcherResumeSkipsRegenerated: a restarted station resumes at the
// server's ack; frames it regenerates below the ack are retired by Next
// without ever being sent.
func TestBatcherResumeSkipsRegenerated(t *testing.T) {
	b := NewBatcher(2)
	b.Ack(3) // resume: server already applied frames 1..3 in a previous life
	for i := 0; i < 8; i++ {
		b.Add(delta(i))
	}
	b.CutAll()
	f, ok := b.Next()
	if !ok || f.Seq != 4 {
		t.Fatalf("Next = %+v ok=%v, want frame 4 (1..3 skipped)", f, ok)
	}
	if b.Skipped() != 3 {
		t.Fatalf("Skipped = %d, want 3", b.Skipped())
	}
}

// TestBatcherRebase: when the server lost the session, the backlog is
// renumbered onto the server's position and replays from there.
func TestBatcherRebase(t *testing.T) {
	b := NewBatcher(1)
	for i := 0; i < 6; i++ {
		b.Add(delta(i))
		b.Cut()
	}
	b.Ack(4) // frames 1..4 delivered; 5, 6 in the backlog
	b.Rebase(0)
	f, ok := b.Next()
	if !ok || f.Seq != 1 {
		t.Fatalf("after rebase Next = %+v, want renumbered frame 1", f)
	}
	b.Ack(1)
	f, _ = b.Next()
	if f.Seq != 2 {
		t.Fatalf("second rebased frame = %d, want 2", f.Seq)
	}
	b.Add(delta(9))
	b.Cut()
	f2, _ := b.Next()
	_ = f2
	b.Ack(2)
	f3, ok := b.Next()
	if !ok || f3.Seq != 3 {
		t.Fatalf("frame cut after rebase = seq %d ok=%v, want 3", f3.Seq, ok)
	}
}

func TestBatcherClampsToWireLimit(t *testing.T) {
	b := NewBatcher(wire.MaxBatchDeltas * 10)
	if b.maxBatch != wire.MaxBatchDeltas {
		t.Fatalf("maxBatch = %d, want clamp to %d", b.maxBatch, wire.MaxBatchDeltas)
	}
}
