// Package storage is the durable backend of the BIPS location database:
// an in-memory locdb.DB for serving, an append-only write-ahead log for
// durability, and periodic snapshots for bounded recovery time. It turns
// the central server from a process that forgets the whole campus on
// restart into one that recovers identical presence state and history
// from disk.
//
// # Data layout
//
// A data directory holds numbered WAL segments (wal-<seq>.log) and
// checkpoints (snap-<seq>.json). A checkpoint at sequence N captures the
// complete device state after every record of segments 1..N; recovery
// loads the newest readable checkpoint and replays only the segments
// after it. Taking a checkpoint drains every pending record into the
// closing segment before rotating the WAL, so segments and checkpoints
// never overlap, and compaction simply deletes what the new checkpoint
// covers.
//
// # Write path
//
// The store journals through locdb's Journal hook: every mutation that
// actually changed state (the delta protocol's no-ops never reach the
// hook) appends one fixed-size record to a per-shard buffer while the
// mutating goroutine still holds the shard lock. The delta hot path
// therefore pays one bounds-checked slice append — no extra mutex, no
// encoding, no syscall. A background flusher drains the shard buffers
// every FlushInterval, encodes them, and writes one batch with a single
// write syscall (the group commit). The cost is a bounded durability
// window: on a crash (SIGKILL, power loss) the records of the last
// unflushed interval are lost; the recovered state is a consistent,
// slightly older cut. Sync provides a barrier for callers that need
// stronger guarantees.
//
// Per-device ordering between the memory store and the WAL holds by
// construction: a device's records are appended to its shard's buffer
// inside the same critical section that mutates the shard, so replay
// converges on exactly the state the memory store held (cross-device
// interleaving is immaterial — every stored fact is per-device). Replay
// is additionally idempotent (re-applying a presence the state already
// reflects is a no-op, in history too), which makes recovery insensitive
// to the exact flush boundary.
package storage

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// Defaults for Options.
const (
	// DefaultFlushInterval is the WAL group-commit interval: the upper
	// bound on how much recent history a crash can lose. 10 ms matches
	// the periodic commit-log mode of production stores (for comparison,
	// Cassandra's commitlog_sync_period default); it amortizes the
	// write syscall over large batches while keeping the loss window
	// well under one workstation inquiry cycle.
	DefaultFlushInterval = 10 * time.Millisecond
	// DefaultSnapshotInterval bounds recovery time: at most one
	// interval's worth of WAL is ever replayed on restart.
	DefaultSnapshotInterval = 30 * time.Second
)

// Options configures Open.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// Shards is the in-memory store's shard count; 0 selects
	// locdb.DefaultShards.
	Shards int
	// HistoryLimit bounds per-device history; 0 selects
	// locdb.DefaultHistoryLimit, negative disables history.
	HistoryLimit int
	// SnapshotInterval is the automatic checkpoint period; 0 selects
	// DefaultSnapshotInterval, negative disables automatic checkpoints
	// (Close still writes a final one).
	SnapshotInterval time.Duration
	// FlushInterval is the WAL group-commit period; 0 selects
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// Fsync additionally fsyncs every group commit. It shrinks the
	// crash-loss window from FlushInterval to a single commit at a
	// large throughput cost; rotation, Sync and Close always fsync.
	Fsync bool
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return errors.New("storage: no data directory")
	}
	if o.Shards == 0 {
		o.Shards = locdb.DefaultShards
	}
	if o.HistoryLimit == 0 {
		o.HistoryLimit = locdb.DefaultHistoryLimit
	}
	if o.HistoryLimit < 0 {
		o.HistoryLimit = 0
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = DefaultSnapshotInterval
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	return nil
}

// Durable is the durable locdb.Store: an in-memory DB whose journal
// hook writes through (asynchronously, group-committed) to a WAL.
type Durable struct {
	mem *locdb.DB
	wal *wal
	dir string

	// closed stops the journal hook after Close/crash. Mutations still
	// reach the memory store; they are simply no longer made durable.
	closed atomic.Bool

	// bufs[i] is shard i's pending-record buffer. It is only ever
	// touched under shard i's lock: appends come from the journal hook
	// (mutators hold the lock), drains go through WithShard /
	// CheckpointShard. spares[i] recycles the previously flushed
	// buffer so the steady state allocates nothing.
	bufs   [][]record
	spares [][]record

	// walMu serializes every file-side operation (flush, sync,
	// checkpoint, close) so a drained batch can never cross a segment
	// rotation — the invariant that keeps snapshots and segments
	// non-overlapping. Lock order: walMu before shard locks.
	walMu sync.Mutex

	// snapMu serializes checkpoints (periodic loop, Snapshot, Close).
	snapMu sync.Mutex

	snapshots    atomic.Int64
	lastSnapSeq  atomic.Uint64
	flushedRecs  atomic.Int64
	lostRecs     atomic.Int64
	replayedRecs int64
	restoredDevs int64
	failOnce     sync.Once

	// Logf reports WAL failures; defaults to log.Printf.
	Logf func(format string, args ...any)

	// unlock releases the data-directory lock (lockDir).
	unlock func()

	stopBg chan struct{}
	bgDone sync.WaitGroup
}

// Durable implements locdb.Store.
var _ locdb.Store = (*Durable)(nil)

// Open recovers the store from dir (creating it when empty) and begins
// accepting writes. Recovery = newest readable checkpoint + replay of
// every intact WAL record after it.
func Open(opts Options) (*Durable, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	// One process per data directory: a second opener must fail loudly
	// instead of interleaving records into the same segments.
	unlock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	defer func() {
		if unlock != nil {
			unlock()
		}
	}()

	mem, err := locdb.NewSharded(opts.Shards, opts.HistoryLimit)
	if err != nil {
		return nil, err
	}
	d := &Durable{
		mem:    mem,
		dir:    opts.Dir,
		bufs:   make([][]record, mem.NumShards()),
		spares: make([][]record, mem.NumShards()),
		stopBg: make(chan struct{}),
	}

	snap, haveSnap, err := loadLatestSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	coveredSeq := uint64(0)
	if haveSnap {
		if err := mem.Restore(snap.Devices); err != nil {
			return nil, fmt.Errorf("storage: restore snapshot %d: %w", snap.Seq, err)
		}
		coveredSeq = snap.Seq
		d.restoredDevs = int64(len(snap.Devices))
	}

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	nextSeq := coveredSeq + 1
	for _, seq := range segs {
		if seq >= nextSeq {
			nextSeq = seq + 1
		}
		if seq <= coveredSeq {
			continue // already reflected in the checkpoint
		}
		n, err := replaySegment(segPath(opts.Dir, seq), func(r record) {
			switch r.op {
			case opPresence:
				mem.SetPresence(r.dev, r.room, r.at)
			case opAbsence:
				mem.SetAbsence(r.dev, r.room, r.at)
			case opDrop:
				mem.Drop(r.dev)
			}
		})
		if err != nil {
			return nil, err
		}
		d.replayedRecs += int64(n)
	}

	w, err := openWAL(opts.Dir, nextSeq, opts.Fsync)
	if err != nil {
		return nil, err
	}
	d.wal = w
	d.lastSnapSeq.Store(coveredSeq)
	d.unlock = unlock
	unlock = nil // ownership moves to the Durable; released on Close/crash

	// The journal hook is installed only after recovery, so replay
	// itself is never re-journaled.
	mem.SetJournal(d)

	d.bgDone.Add(2)
	go d.flushLoop(opts.FlushInterval)
	go d.snapshotLoop(opts.SnapshotInterval)
	return d, nil
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, segmentName(seq))
}

// Record implements locdb.Journal: it runs inside the mutated shard's
// write lock and appends one pending record to that shard's buffer.
func (d *Durable) Record(shard int, op locdb.JournalOp, dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) {
	if d.closed.Load() {
		return
	}
	var walOp byte
	switch op {
	case locdb.JournalPresence:
		walOp = opPresence
	case locdb.JournalAbsence:
		walOp = opAbsence
	case locdb.JournalDrop:
		walOp = opDrop
	default:
		return
	}
	d.bufs[shard] = append(d.bufs[shard], record{op: walOp, dev: dev, room: piconet, at: at})
}

// flushLoop is the group-commit pump.
func (d *Durable) flushLoop(interval time.Duration) {
	defer d.bgDone.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = d.flush(false)
		case <-d.stopBg:
			return
		}
	}
}

// flush drains every shard's pending records and writes them to the
// open segment as one group commit; sync additionally fsyncs. A write
// failure is sticky in the WAL: the store keeps serving from memory,
// but records drained after the failure are lost — the failure is
// logged once and reported in StorageStats (wal_failed) so operators
// see a store that is no longer durable.
func (d *Durable) flush(sync bool) error {
	d.walMu.Lock()
	defer d.walMu.Unlock()
	batches, owners := d.drainLocked(nil)
	if len(batches) == 0 && !sync {
		return nil
	}
	err := d.wal.writeRecords(batches, sync)
	d.recycle(batches, owners, err == nil)
	if err != nil {
		d.logFailureOnce(err)
	}
	return err
}

// logFailureOnce reports the first WAL failure to the operator log.
func (d *Durable) logFailureOnce(err error) {
	d.failOnce.Do(func() {
		logf := d.Logf
		if logf == nil {
			logf = log.Printf
		}
		logf("storage: WAL write failed, store is NO LONGER DURABLE (serving continues from memory): %v", err)
	})
}

// drainLocked detaches every non-empty shard buffer (each under its
// shard lock), swapping in the recycled spare. When dumps is non-nil it
// additionally checkpoints each shard in the same critical section,
// appending the shard's device dumps. Caller holds walMu.
func (d *Durable) drainLocked(dumps *[]locdb.DeviceDump) (batches [][]record, owners []int) {
	for i := range d.bufs {
		drain := func() {
			if len(d.bufs[i]) > 0 {
				batches = append(batches, d.bufs[i])
				owners = append(owners, i)
				d.bufs[i] = d.spares[i]
				d.spares[i] = nil
			}
		}
		if dumps == nil {
			d.mem.WithShard(i, drain)
		} else {
			*dumps = append(*dumps, d.mem.CheckpointShard(i, drain)...)
		}
	}
	return batches, owners
}

// recycle hands written batches back to their shards for reuse.
// written=false (the commit failed) still recycles the buffers but does
// not count the records as flushed — they were lost, not persisted.
func (d *Durable) recycle(batches [][]record, owners []int, written bool) {
	for i, idx := range owners {
		if written {
			d.flushedRecs.Add(int64(len(batches[i])))
		} else {
			d.lostRecs.Add(int64(len(batches[i])))
		}
		batch := batches[i][:0]
		d.mem.WithShard(idx, func() {
			if d.spares[idx] == nil {
				d.spares[idx] = batch
			}
		})
	}
}

func (d *Durable) snapshotLoop(interval time.Duration) {
	defer d.bgDone.Done()
	if interval < 0 {
		<-d.stopBg
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = d.Snapshot()
		case <-d.stopBg:
			return
		}
	}
}

// --- Store interface (mutations journal through the hook) -----------------

// SetPresence applies the delta; the journal hook makes it durable.
func (d *Durable) SetPresence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool {
	return d.mem.SetPresence(dev, piconet, at)
}

// SetAbsence applies the delta; the journal hook makes it durable.
func (d *Durable) SetAbsence(dev baseband.BDAddr, piconet graph.NodeID, at sim.Tick) bool {
	return d.mem.SetAbsence(dev, piconet, at)
}

// Drop erases the device in memory and on disk.
func (d *Durable) Drop(dev baseband.BDAddr) bool { return d.mem.Drop(dev) }

// ApplyBatch applies the batch; the journal hook records every changed
// mutation inside its shard's critical section, so the next group
// commit persists the whole batch as one coalesced write.
func (d *Durable) ApplyBatch(muts []locdb.Mutation) int { return d.mem.ApplyBatch(muts) }

// Locate returns the device's current fix.
func (d *Durable) Locate(dev baseband.BDAddr) (locdb.Fix, error) { return d.mem.Locate(dev) }

// LocateAt returns the fix whose run covers tick at.
func (d *Durable) LocateAt(dev baseband.BDAddr, at sim.Tick) (locdb.Fix, error) {
	return d.mem.LocateAt(dev, at)
}

// Trajectory returns the fixes overlapping [from, to].
func (d *Durable) Trajectory(dev baseband.BDAddr, from, to sim.Tick) []locdb.Fix {
	return d.mem.Trajectory(dev, from, to)
}

// History returns the device's recorded history.
func (d *Durable) History(dev baseband.BDAddr) []locdb.Fix { return d.mem.History(dev) }

// Occupants returns the devices currently in the piconet.
func (d *Durable) Occupants(piconet graph.NodeID) []baseband.BDAddr {
	return d.mem.Occupants(piconet)
}

// All returns every current fix. The slice is a shared immutable
// snapshot.
func (d *Durable) All() []locdb.Fix { return d.mem.All() }

// AllSince returns the changes since the snapshot identified by base.
func (d *Durable) AllSince(base locdb.SnapToken) locdb.AllDelta { return d.mem.AllSince(base) }

// SnapshotToken returns the token identifying the current full snapshot.
func (d *Durable) SnapshotToken() locdb.SnapToken { return d.mem.SnapshotToken() }

// Present returns the number of devices with a known position.
func (d *Durable) Present() int { return d.mem.Present() }

// Dump returns every device's full state from the memory store.
func (d *Durable) Dump() []locdb.DeviceDump { return d.mem.Dump() }

// HistoryLimit reports the memory store's per-device history bound.
func (d *Durable) HistoryLimit() int { return d.mem.HistoryLimit() }

// Stats returns the memory store's activity counters.
func (d *Durable) Stats() locdb.Stats { return d.mem.Stats() }

// NumShards reports the memory store's shard count.
func (d *Durable) NumShards() int { return d.mem.NumShards() }

// Subscribe registers fn for every presence change.
func (d *Durable) Subscribe(fn func(locdb.Event)) (cancel func()) { return d.mem.Subscribe(fn) }

// SubscribeSink registers a batch-capable delta consumer; whole ingest
// frames reach it as one OnEvents call.
func (d *Durable) SubscribeSink(s locdb.Sink) (cancel func()) { return d.mem.SubscribeSink(s) }

// --- Durability operations ------------------------------------------------

// Sync is the durability barrier: every mutation that returned before
// the call is on disk (flushed and fsynced) when it returns.
func (d *Durable) Sync() error { return d.flush(true) }

// Snapshot takes a checkpoint now. Shard by shard, the pending records
// are drained and the state is dumped in one critical section; the
// drained records are written to the closing segment, the WAL rotates,
// and the dump is persisted atomically. Everything the checkpoint
// covers is then compacted away. Queries and mutations of other shards
// keep running throughout.
func (d *Durable) Snapshot() error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if d.closed.Load() {
		return errors.New("storage: closed")
	}
	return d.checkpoint()
}

// checkpoint drains + dumps + rotates + persists. Caller holds snapMu.
func (d *Durable) checkpoint() error {
	var dumps []locdb.DeviceDump
	d.walMu.Lock()
	batches, owners := d.drainLocked(&dumps)
	// written tracks the write alone: records that reached the fsynced
	// segment are durable (recoverable by replay) even if the rotation
	// after them fails, and must not be reported as lost.
	werr := d.wal.writeRecords(batches, true)
	var coveredSeq uint64
	err := werr
	if err == nil {
		coveredSeq, err = d.wal.rotate()
	}
	d.walMu.Unlock()
	d.recycle(batches, owners, werr == nil)
	if err != nil {
		d.logFailureOnce(err)
		return err
	}
	locdb.SortDumps(dumps)
	snap := snapshot{
		Version:      snapshotVersion,
		Seq:          coveredSeq,
		HistoryLimit: d.mem.HistoryLimit(),
		Devices:      dumps,
	}
	if err := writeSnapshot(d.dir, snap); err != nil {
		return err
	}
	d.snapshots.Add(1)
	d.lastSnapSeq.Store(coveredSeq)
	return compact(d.dir, coveredSeq)
}

// StorageStats reports the durability-side counters (the memory-side
// activity counters come from Stats). The serving layer merges them
// into MsgStats under the "storage." prefix.
func (d *Durable) StorageStats() map[string]int64 {
	records := d.flushedRecs.Load()
	for i := range d.bufs {
		d.mem.WithShard(i, func() { records += int64(len(d.bufs[i])) })
	}
	failed := int64(0)
	d.walMu.Lock()
	if d.wal.err != nil {
		failed = 1
	}
	d.walMu.Unlock()
	return map[string]int64{
		"wal_records":      records,
		"wal_bytes":        records * recSize,
		"wal_failed":       failed,
		"wal_lost_records": d.lostRecs.Load(),
		"snapshots":        d.snapshots.Load(),
		"snapshot_seq":     int64(d.lastSnapSeq.Load()),
		"replayed_records": d.replayedRecs,
		"restored_devices": d.restoredDevs,
	}
}

// Close checkpoints the final state and closes the WAL. The data
// directory is left so a new Open recovers instantly from the snapshot.
// Mutations arriving during Close reach the memory store but are no
// longer made durable; stop the serving layer first.
//
// Shutdown ordering matters: the closed flag flips and the background
// goroutines are joined BEFORE snapMu is taken. Taking snapMu first
// would deadlock with a snapshotLoop tick blocked inside Snapshot()
// waiting for that same mutex; with the flag already set, such an
// in-flight Snapshot acquires snapMu, sees closed, and returns.
func (d *Durable) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.stopBg)
	d.bgDone.Wait()
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	// The final checkpoint drains everything journaled before the
	// closed flag flipped, so a clean shutdown loses nothing.
	err := d.checkpoint()
	d.walMu.Lock()
	if cerr := d.wal.close(); cerr != nil && err == nil {
		err = cerr
	}
	d.walMu.Unlock()
	d.unlock()
	return err
}

// crash simulates SIGKILL for tests: background goroutines stop, the
// pending shard buffers are lost, file handles close, and no final
// checkpoint is written. The next Open must recover from whatever
// already reached disk. It uses the same join-before-snapMu ordering
// as Close (see there).
func (d *Durable) crash() {
	if d.closed.Swap(true) {
		return
	}
	close(d.stopBg)
	d.bgDone.Wait()
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	d.walMu.Lock()
	d.wal.crash()
	d.walMu.Unlock()
	// A real SIGKILL drops the flock with the process; the in-process
	// simulation must drop it explicitly so tests can reopen the dir.
	d.unlock()
}
