package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// testOpts returns options with automatic snapshots disabled, so tests
// control exactly when checkpoints happen.
func testOpts(dir string) Options {
	return Options{
		Dir:              dir,
		Shards:           4,
		HistoryLimit:     8,
		SnapshotInterval: -1,
		FlushInterval:    time.Millisecond,
	}
}

func mustOpen(t *testing.T, opts Options) *Durable {
	t.Helper()
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sameState fails the test unless the two stores hold identical device
// state (current fixes, occupancy counts, and full histories).
func sameState(t *testing.T, want, got locdb.Store) {
	t.Helper()
	type dumper interface{ Dump() []locdb.DeviceDump }
	wd := want.(interface{ Dump() []locdb.DeviceDump })
	var gdumps []locdb.DeviceDump
	if g, ok := got.(dumper); ok {
		gdumps = g.Dump()
	} else {
		t.Fatalf("got store %T has no Dump", got)
	}
	wdumps := wd.Dump()
	if !reflect.DeepEqual(wdumps, gdumps) {
		t.Fatalf("state mismatch:\n want %+v\n  got %+v", wdumps, gdumps)
	}
	if w, g := want.Present(), got.Present(); w != g {
		t.Fatalf("Present: want %d, got %d", w, g)
	}
}

// applyScript walks devices through a deterministic move/absence/drop
// sequence and returns the store for chaining.
func applyScript(s locdb.Store, steps int) {
	for i := 0; i < steps; i++ {
		dev := baseband.BDAddr(0xD000 + uint64(i%23))
		room := graph.NodeID(i * 3 % 11)
		at := sim.Tick(i)
		switch i % 9 {
		case 7:
			s.SetAbsence(dev, room, at)
		case 8:
			if i%27 == 8 {
				s.Drop(dev)
			}
		default:
			s.SetPresence(dev, room, at)
		}
	}
}

// TestRecoverFromWALOnly: a synced store that dies without any
// checkpoint recovers its full state from WAL replay alone.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	applyScript(d, 500)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	want := d.Dump()
	d.crash()

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if got := re.Dump(); !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs:\n want %+v\n  got %+v", want, got)
	}
	if re.StorageStats()["replayed_records"] == 0 {
		t.Fatal("recovery claims zero replayed records after WAL-only crash")
	}
}

// TestRecoverFromSnapshotPlusWAL: state checkpointed mid-stream plus the
// WAL written after it recovers exactly, and compaction removed the
// segments the checkpoint covers.
func TestRecoverFromSnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	applyScript(d, 300)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	applyScript(d, 700) // overlaps and extends the pre-checkpoint script
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	want := d.Dump()
	d.crash()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] != 2 {
		t.Fatalf("compaction left segments %v, want first segment to be 2", segs)
	}

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if got := re.Dump(); !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs:\n want %+v\n  got %+v", want, got)
	}
	st := re.StorageStats()
	if st["restored_devices"] == 0 {
		t.Fatal("recovery did not use the checkpoint")
	}
}

// TestCleanCloseRecovery: Close writes a final checkpoint, so reopening
// replays nothing and still sees everything.
func TestCleanCloseRecovery(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	applyScript(d, 400)
	want := d.Dump()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if got := re.Dump(); !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state differs after clean close")
	}
	st := re.StorageStats()
	if st["replayed_records"] != 0 {
		t.Fatalf("clean close still replayed %d records", st["replayed_records"])
	}
	if st["restored_devices"] == 0 {
		t.Fatal("clean close recovery did not use the final checkpoint")
	}
}

// TestTornTailTolerated: garbage appended to the live segment (a crash
// mid-write) is detected by the per-record CRC and replay stops at the
// last intact record.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	applyScript(d, 200)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	want := d.Dump()
	d.crash()

	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segmentName(segs[len(segs)-1]))
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A half-record of plausible-looking garbage.
	if _, err := f.Write([]byte{opPresence, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if got := re.Dump(); !reflect.DeepEqual(want, got) {
		t.Fatal("torn tail changed recovered state")
	}
}

// TestUnflushedWritesLost documents the group-commit contract: what was
// never flushed is gone after a crash, and what Sync confirmed is not.
func TestUnflushedWritesLost(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.FlushInterval = time.Hour // flusher never fires on its own
	d := mustOpen(t, opts)
	d.SetPresence(1, 1, 10)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.SetPresence(2, 2, 20) // never synced
	d.crash()

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if _, err := re.Locate(1); err != nil {
		t.Fatal("synced write lost")
	}
	if _, err := re.Locate(2); err == nil {
		t.Fatal("unsynced write survived a crash — flusher contract broken?")
	}
}

// TestConcurrentLoadCrashRecovery: many goroutines hammer the store
// (same devices from competing writers), then the synced state must
// recover exactly. This is the per-device WAL/memory ordering property.
func TestConcurrentLoadCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				dev := baseband.BDAddr(0xE000 + uint64(i%17)) // shared across workers
				room := graph.NodeID((i + w) % 9)
				switch i % 11 {
				case 10:
					d.SetAbsence(dev, room, sim.Tick(i))
				default:
					d.SetPresence(dev, room, sim.Tick(i))
				}
				if i%13 == 0 {
					d.Locate(dev)
					d.LocateAt(dev, sim.Tick(i/2))
					d.Trajectory(dev, 0, sim.Tick(i))
				}
			}
		}()
	}
	wg.Wait()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	want := d.Dump()
	d.crash()

	re := mustOpen(t, testOpts(dir))
	defer re.Close()
	if got := re.Dump(); !reflect.DeepEqual(want, got) {
		t.Fatalf("concurrent-load recovery differs:\n want %+v\n  got %+v", want, got)
	}
}

// TestCloseRacesSnapshotTick: Close must never deadlock with a periodic
// snapshot tick (regression: Close used to hold snapMu while joining
// the loop that was itself blocked on snapMu). An aggressive interval
// plus many iterations makes the race land reliably.
func TestCloseRacesSnapshotTick(t *testing.T) {
	for i := 0; i < 30; i++ {
		opts := testOpts(t.TempDir())
		opts.SnapshotInterval = time.Millisecond
		d := mustOpen(t, opts)
		applyScript(d, 50)
		time.Sleep(time.Millisecond) // let a tick be in flight
		done := make(chan error, 1)
		go func() { done <- d.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iteration %d: Close: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: Close deadlocked against a snapshot tick", i)
		}
	}
}

// TestPeriodicSnapshots: the background loop checkpoints on its own and
// compacts the covered segments.
func TestPeriodicSnapshots(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SnapshotInterval = 20 * time.Millisecond
	d := mustOpen(t, opts)
	applyScript(d, 300)
	deadline := time.Now().Add(5 * time.Second)
	for d.StorageStats()["snapshots"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic snapshot within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableIsAStore: the durable backend answers the whole query
// surface like the memory backend fed the same deltas.
func TestDurableIsAStore(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	defer d.Close()
	mem, err := locdb.NewSharded(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(d, 500)
	applyScript(mem, 500)
	sameState(t, mem, d)

	for i := 0; i < 23; i++ {
		dev := baseband.BDAddr(0xD000 + uint64(i))
		f1, e1 := mem.Locate(dev)
		f2, e2 := d.Locate(dev)
		if (e1 == nil) != (e2 == nil) || f1 != f2 {
			t.Fatalf("Locate(%v) differs", dev)
		}
		for _, at := range []sim.Tick{0, 100, 499} {
			f1, e1 := mem.LocateAt(dev, at)
			f2, e2 := d.LocateAt(dev, at)
			if (e1 == nil) != (e2 == nil) || f1 != f2 {
				t.Fatalf("LocateAt(%v, %d) differs", dev, at)
			}
		}
		if !reflect.DeepEqual(mem.Trajectory(dev, 50, 450), d.Trajectory(dev, 50, 450)) {
			t.Fatalf("Trajectory(%v) differs", dev)
		}
		if !reflect.DeepEqual(mem.History(dev), d.History(dev)) {
			t.Fatalf("History(%v) differs", dev)
		}
	}
	if !reflect.DeepEqual(mem.All(), d.All()) {
		t.Fatal("All differs")
	}
	for r := graph.NodeID(0); r < 11; r++ {
		if !reflect.DeepEqual(mem.Occupants(r), d.Occupants(r)) {
			t.Fatalf("Occupants(%d) differs", r)
		}
	}

	// Events flow through the durable wrapper too.
	got := 0
	cancel := d.Subscribe(func(locdb.Event) { got++ })
	defer cancel()
	d.SetPresence(0xF0F0, 1, 1)
	if got != 1 {
		t.Fatalf("subscriber saw %d events, want 1", got)
	}
}

// TestOpenRejectsMissingDir: an empty Dir is a configuration error.
func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with no dir accepted")
	}
}

// TestSecondOpenerRejected: one data directory, one process — a second
// concurrent Open must fail loudly instead of interleaving WAL records,
// and the lock must be released by both Close and crash.
func TestSecondOpenerRejected(t *testing.T) {
	dir := t.TempDir()
	d1 := mustOpen(t, testOpts(dir))
	if _, err := Open(testOpts(dir)); err == nil {
		t.Fatal("second opener on a live data directory accepted")
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, testOpts(dir)) // lock released by Close
	d2.crash()
	d3 := mustOpen(t, testOpts(dir)) // and by crash (in-process simulation)
	defer d3.Close()
}

// TestFailedWALIsReported: after the WAL breaks, the store keeps
// serving but StorageStats flags the failure and counts the lost
// records instead of pretending they were flushed.
func TestFailedWALIsReported(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, testOpts(dir))
	defer d.crash()
	d.Logf = t.Logf
	d.SetPresence(1, 1, 10)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Break the WAL under it: close the segment file directly.
	d.walMu.Lock()
	d.wal.f.Close()
	d.walMu.Unlock()
	d.SetPresence(2, 2, 20)
	if err := d.Sync(); err == nil {
		t.Fatal("Sync on a broken WAL reported success")
	}
	st := d.StorageStats()
	if st["wal_failed"] != 1 {
		t.Errorf("wal_failed = %d, want 1", st["wal_failed"])
	}
	if st["wal_lost_records"] == 0 {
		t.Error("lost records not counted")
	}
	// Serving continues from memory.
	if _, err := d.Locate(2); err != nil {
		t.Errorf("Locate after WAL failure: %v", err)
	}
}
