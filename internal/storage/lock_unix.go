//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the data directory so two
// processes can never write the same WAL segments (the second opener
// would otherwise compute the same next segment sequence and interleave
// records). The flock is released automatically when the process dies —
// including SIGKILL — so crash recovery never meets a stale lock.
func lockDir(dir string) (unlock func(), err error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: data directory %s is locked by another process: %w", dir, err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
