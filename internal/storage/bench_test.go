package storage

import (
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// BenchmarkLocdbDelta measures the workstation delta hot path — the
// operation every cell performs for every moving device every cycle —
// against the two storage backends: the in-memory-only store and the
// durable store (history + group-committed WAL).
//
// ns/op here is the saturation throughput cost: the loop issues real
// moves as fast as the store absorbs them, so on a single-core host it
// charges the asynchronous group-commit work (record encode, the one
// write syscall per commit, GC of the record buffers) to the same core
// that issues the deltas. That is the worst case for the durable
// backend — any deployment with a second core runs the flusher beside
// the hot path and pays only the in-lock buffer append (~10 ns). The
// acceptance numbers are recorded by .github/bench.sh into
// BENCH_PR4.json and discussed in docs/OPERATIONS.md.
func BenchmarkLocdbDelta(b *testing.B) {
	const devices = 1024
	const rooms = 32

	run := func(b *testing.B, s locdb.Store) {
		// Pre-populate so every delta is a real move over warm state.
		for i := 0; i < devices; i++ {
			s.SetPresence(baseband.BDAddr(0xB000_0000_0001+uint64(i)), graph.NodeID(i%rooms), 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i*2654435761)%devices)
			// Advance the room on every revisit so the delta is a real
			// move (map + history mutation), never the unchanged no-op.
			room := graph.NodeID((i + i/devices) % rooms)
			s.SetPresence(dev, room, sim.Tick(i+1))
		}
		b.StopTimer()
	}

	b.Run("mem", func(b *testing.B) {
		db, err := locdb.NewSharded(locdb.DefaultShards, locdb.DefaultHistoryLimit)
		if err != nil {
			b.Fatal(err)
		}
		run(b, db)
	})

	b.Run("durable", func(b *testing.B) {
		d, err := Open(Options{
			Dir:              b.TempDir(),
			Shards:           locdb.DefaultShards,
			HistoryLimit:     locdb.DefaultHistoryLimit,
			SnapshotInterval: -1, // measure the WAL path, not checkpoint stalls
		})
		if err != nil {
			b.Fatal(err)
		}
		run(b, d)
		d.crash() // skip the final checkpoint; the tempdir is discarded
	})

	// journal isolates the foreground cost durability adds to the delta
	// hot path — the Record hook that runs inside the shard lock (one
	// closed-flag load plus one record append). The group commits happen
	// outside the timer, so this is exactly the latency a delta caller
	// blocks on beyond the mem path; the acceptance claim is
	// journal ns/op <= 20% of mem ns/op.
	b.Run("journal", func(b *testing.B) {
		d, err := Open(Options{
			Dir:              b.TempDir(),
			Shards:           locdb.DefaultShards,
			HistoryLimit:     locdb.DefaultHistoryLimit,
			SnapshotInterval: -1,
			FlushInterval:    time.Hour, // commits only at the manual drain points
		})
		if err != nil {
			b.Fatal(err)
		}
		const drainEvery = 1 << 16
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i*2654435761)%devices)
			d.Record(i&(locdb.DefaultShards-1), locdb.JournalPresence,
				dev, graph.NodeID((i+i/devices)%rooms), sim.Tick(i+1))
			if i&(drainEvery-1) == drainEvery-1 {
				b.StopTimer()
				if err := d.flush(false); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
		b.StopTimer()
		d.crash()
	})
}

// BenchmarkLocdbHistoryQueries measures the read side of the history
// surface on a populated store.
func BenchmarkLocdbHistoryQueries(b *testing.B) {
	db := locdb.New()
	const devices = 256
	for i := 0; i < devices; i++ {
		dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i))
		for m := 0; m < locdb.DefaultHistoryLimit; m++ {
			db.SetPresence(dev, graph.NodeID(m%32), sim.Tick(10*m))
		}
	}
	b.Run("locateAt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i%devices))
			if _, err := db.LocateAt(dev, sim.Tick(i%1280)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trajectory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := baseband.BDAddr(0xB000_0000_0001 + uint64(i%devices))
			from := sim.Tick(i % 640)
			if got := db.Trajectory(dev, from, from+320); len(got) == 0 {
				b.Fatal("empty trajectory")
			}
		}
	})
}

// BenchmarkRecordEncode isolates the marginal CPU cost one delta adds
// on the hot path: encoding a 29-byte CRC-protected record into the
// stripe's group-commit buffer.
func BenchmarkRecordEncode(b *testing.B) {
	buf := make([]byte, 0, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf) >= 1<<20-recSize {
			buf = buf[:0]
		}
		buf = record{op: opPresence, dev: baseband.BDAddr(i), room: graph.NodeID(i % 32), at: sim.Tick(i)}.encode(buf)
	}
}
