package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bips/internal/locdb"
)

// snapshot is the on-disk checkpoint format: the complete device state
// after applying WAL segments 1..Seq. Recovery loads the newest valid
// snapshot and replays only the segments after it; compaction deletes
// everything the snapshot covers.
type snapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	// HistoryLimit records the limit the state was captured under, for
	// operators inspecting the file; recovery applies the opener's own
	// limit.
	HistoryLimit int                `json:"historyLimit"`
	Devices      []locdb.DeviceDump `json:"devices"`
}

const snapshotVersion = 1

// snapshotName renders the on-disk name of the checkpoint covering WAL
// segments 1..seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.json", seq) }

// parseSnapshotName extracts the coverage sequence from a snapshot name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshot persists a checkpoint atomically: write to a temp file,
// fsync, rename. A crash mid-write leaves at worst a stale .tmp file
// that recovery ignores.
func writeSnapshot(dir string, snap snapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("storage: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotName(snap.Seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName(snap.Seq))); err != nil {
		return err
	}
	// Make the rename itself durable before anything the snapshot
	// supersedes may be deleted: without the directory fsync a power
	// loss could persist compaction's unlinks but not the rename,
	// leaving neither the snapshot nor the segments it covered.
	return syncDir(dir)
}

// syncDir fsyncs a directory so preceding renames/creates in it are
// ordered to disk.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadLatestSnapshot finds and parses the newest readable checkpoint in
// dir. A snapshot that fails to parse (torn by a crash despite the
// atomic rename, or hand-edited) is skipped in favor of the next-newest,
// so one bad file cannot brick recovery. ok is false when no usable
// snapshot exists.
func loadLatestSnapshot(dir string) (snap snapshot, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return snapshot{}, false, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, okName := parseSnapshotName(e.Name()); okName {
			seqs = append(seqs, seq)
		}
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		// Descending: seqs come from ReadDir's sorted names, so the
		// zero-padded encoding makes the last one the newest.
		raw, rerr := os.ReadFile(filepath.Join(dir, snapshotName(seqs[i])))
		if rerr != nil {
			continue
		}
		var s snapshot
		if json.Unmarshal(raw, &s) != nil || s.Version != snapshotVersion {
			continue
		}
		return s, true, nil
	}
	return snapshot{}, false, nil
}

// compact removes everything a checkpoint at coveredSeq supersedes: WAL
// segments <= coveredSeq, older snapshots, and stale temp files. Errors
// are returned but harmless — leftover files only cost disk, recovery
// skips them by sequence number.
func compact(dir string, coveredSeq uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	rm := func(name string) {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSegmentName(name); ok && seq <= coveredSeq {
			rm(name)
		}
		if seq, ok := parseSnapshotName(name); ok && seq < coveredSeq {
			rm(name)
		}
		if strings.HasSuffix(name, ".tmp") {
			rm(name)
		}
	}
	return firstErr
}
