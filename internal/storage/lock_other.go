//go:build !unix

package storage

// lockDir is a no-op on platforms without flock semantics: single-
// process use of a data directory is then the operator's contract, as
// it is for most embedded stores on such platforms.
func lockDir(dir string) (unlock func(), err error) {
	return func() {}, nil
}
