package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

// WAL segment format. A segment is an 8-byte magic header followed by
// fixed-size records. Every record carries its own CRC so a torn tail
// (the process died mid-write) is detected and replay stops cleanly at
// the last intact record instead of loading garbage.
const (
	segMagic = "BIPSWAL1"
	// recSize is op(1) + device(8) + room(8) + at(8) + crc32(4).
	recSize = 29
)

// Record operations.
const (
	opPresence = byte(1)
	opAbsence  = byte(2)
	opDrop     = byte(3)
)

// record is one decoded WAL entry.
type record struct {
	op   byte
	dev  baseband.BDAddr
	room graph.NodeID
	at   sim.Tick
}

// crcTable is the Castagnoli polynomial: hardware-accelerated on every
// deployment target, and the record CRC sits on the delta hot path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// zeroRec reserves record space in a buffer without a heap-escaping
// stack array.
var zeroRec [recSize]byte

// encode appends the record's wire form (including CRC) to buf. It
// encodes in place so encoding allocates nothing once the buffer has
// warmed up to its steady-state capacity.
func (r record) encode(buf []byte) []byte {
	n := len(buf)
	buf = append(buf, zeroRec[:]...)
	r.encodeAt(buf[n:])
	return buf
}

// encodeAt writes the record's wire form into b, which must hold at
// least recSize bytes.
func (r record) encodeAt(b []byte) {
	b[0] = r.op
	binary.BigEndian.PutUint64(b[1:], uint64(r.dev))
	binary.BigEndian.PutUint64(b[9:], uint64(int64(r.room)))
	binary.BigEndian.PutUint64(b[17:], uint64(int64(r.at)))
	binary.BigEndian.PutUint32(b[25:], crc32.Checksum(b[:25], crcTable))
}

// decodeRecord parses one record, reporting ok=false for a CRC mismatch
// or an unknown op (a torn or corrupt tail).
func decodeRecord(b []byte) (record, bool) {
	if len(b) < recSize {
		return record{}, false
	}
	if crc32.Checksum(b[:25], crcTable) != binary.BigEndian.Uint32(b[25:29]) {
		return record{}, false
	}
	r := record{
		op:   b[0],
		dev:  baseband.BDAddr(binary.BigEndian.Uint64(b[1:9])),
		room: graph.NodeID(int64(binary.BigEndian.Uint64(b[9:17]))),
		at:   sim.Tick(int64(binary.BigEndian.Uint64(b[17:25]))),
	}
	if r.op != opPresence && r.op != opAbsence && r.op != opDrop {
		return record{}, false
	}
	return r, true
}

// segmentName renders the on-disk name of WAL segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the WAL segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment streams the intact records of one segment into apply. A
// missing or short header, a torn tail, or a CRC mismatch ends the
// replay of this segment without error — that is exactly the crash
// tolerance the WAL is for. Only real I/O failures are returned.
func replaySegment(path string, apply func(record)) (replayed int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return 0, nil // empty or torn header: nothing recorded
	}
	if string(magic[:]) != segMagic {
		return 0, fmt.Errorf("storage: %s: bad WAL magic %q", filepath.Base(path), magic)
	}
	var b [recSize]byte
	for {
		if _, err := io.ReadFull(f, b[:]); err != nil {
			return replayed, nil // clean EOF or torn tail
		}
		rec, ok := decodeRecord(b[:])
		if !ok {
			return replayed, nil // corrupt tail
		}
		apply(rec)
		replayed++
	}
}

// wal is the file side of the log: one open segment that group commits
// are written to. It has no locking of its own — the Durable store's
// walMu serializes every caller, which is what guarantees a drained
// batch can never cross a segment rotation.
type wal struct {
	dir   string
	fsync bool

	f      *os.File
	seq    uint64
	err    error // sticky write failure
	closed bool
	// scratch holds one group commit's encoded records so a commit
	// costs a single write syscall; reused across commits.
	scratch []byte
}

// openWAL starts a fresh segment with the given sequence number.
func openWAL(dir string, seq uint64, fsync bool) (*wal, error) {
	w := &wal{dir: dir, fsync: fsync}
	if err := w.openSegment(seq); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment creates segment seq and writes its header.
func (w *wal) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.seq = seq
	return nil
}

// writeRecords encodes the drained shard batches and appends them to
// the segment as one group commit (a single write syscall). sync forces
// an fsync on top — the durability barrier; the periodic flusher passes
// the configured policy.
func (w *wal) writeRecords(batches [][]record, sync bool) error {
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return errors.New("storage: wal closed")
	}
	// Size the commit buffer once, then index-fill: no per-record
	// bounds bookkeeping inside the encode loop.
	total := 0
	for _, batch := range batches {
		total += len(batch)
	}
	if cap(w.scratch) < total*recSize {
		w.scratch = make([]byte, 0, total*recSize)
	}
	w.scratch = w.scratch[:total*recSize]
	off := 0
	for _, batch := range batches {
		for i := range batch {
			batch[i].encodeAt(w.scratch[off : off+recSize])
			off += recSize
		}
	}
	if len(w.scratch) > 0 {
		if _, err := w.f.Write(w.scratch); err != nil {
			w.err = fmt.Errorf("storage: wal write: %w", err)
			return w.err
		}
	}
	if sync || w.fsync {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("storage: wal fsync: %w", err)
			return w.err
		}
	}
	return nil
}

// rotate closes the current (already flushed and fsynced) segment and
// starts the next one. It returns the sequence number of the closed
// segment — the coverage point a snapshot taken after the rotation can
// claim.
func (w *wal) rotate() (closedSeq uint64, err error) {
	if w.closed {
		return w.seq, errors.New("storage: wal closed")
	}
	if err := w.f.Close(); err != nil {
		return w.seq, fmt.Errorf("storage: wal close segment: %w", err)
	}
	closedSeq = w.seq
	if err := w.openSegment(closedSeq + 1); err != nil {
		w.err = err
		w.f = nil
		return closedSeq, err
	}
	return closedSeq, nil
}

// close closes the segment cleanly (the caller has already flushed).
func (w *wal) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil {
		err = w.f.Close()
		w.f = nil
	}
	return err
}

// crash abandons the WAL the way SIGKILL would: the segment is closed
// without flushing anything more. Only what earlier group commits wrote
// survives on disk. Tests use it to simulate a dead process.
func (w *wal) crash() {
	w.closed = true
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
}
