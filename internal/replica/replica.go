// Package replica runs one whole-building BIPS deployment of walking
// users and samples tracking success along a timeline — the Monte-Carlo
// unit shared by bips-sim's -replicas mode and bips-experiment's
// floor-plan tracking comparison. It sits above the public bips API so
// both binaries measure exactly what a user of the service would see.
package replica

import (
	"fmt"
	"time"

	"bips"
)

// Config describes one deployment replica.
type Config struct {
	// Users is the number of walking users (user01, user02, ...).
	Users int
	// Duration is the simulated time to run; Step the sampling interval.
	Duration, Step time.Duration
	// Plan is the floor plan; nil deploys the built-in academic
	// department.
	Plan *bips.FloorPlan
}

// Result counts locate successes over all (user, step) timeline samples.
type Result struct {
	Located, Samples int
}

// Fraction is the tracking accuracy: Located/Samples, 0 when no samples
// were taken.
func (r Result) Fraction() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.Located) / float64(r.Samples)
}

// User is one deployed walking user.
type User struct {
	Name   string
	Start  string // starting room
	Device string // assigned handheld BD_ADDR
}

// New builds the deployment for one replica: a service with the given
// seed and plan, cfg.Users registered walking users started round-robin
// across the rooms.
func New(seed int64, cfg Config) (*bips.Service, []User, error) {
	opts := []bips.Option{bips.WithSeed(seed)}
	if cfg.Plan != nil {
		opts = append(opts, bips.WithBuilding(cfg.Plan))
	}
	svc, err := bips.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	rooms := svc.Rooms()
	users := make([]User, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		name := fmt.Sprintf("user%02d", i+1)
		if err := svc.Register(name, "pw"); err != nil {
			return nil, nil, err
		}
		start := rooms[i%len(rooms)]
		dev, err := svc.AddWalkingUser(name, "pw", start)
		if err != nil {
			return nil, nil, err
		}
		users = append(users, User{Name: name, Start: start, Device: dev})
	}
	return svc, users, nil
}

// Run deploys one replica and counts the timeline samples at which each
// user was locatable (queried on behalf of the first user).
func Run(seed int64, cfg Config) (Result, error) {
	svc, users, err := New(seed, cfg)
	if err != nil {
		return Result{}, err
	}
	svc.Start()
	defer svc.Stop()

	var out Result
	for elapsed := time.Duration(0); elapsed < cfg.Duration; elapsed += cfg.Step {
		svc.Run(cfg.Step)
		for _, u := range users {
			out.Samples++
			if _, err := svc.Locate(users[0].Name, u.Name); err == nil {
				out.Located++
			}
		}
	}
	return out, nil
}
