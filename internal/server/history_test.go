package server_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/storage"
	"bips/internal/wire"
)

// newDurableServer builds a server over the durable storage backend.
func newDurableServer(t *testing.T, dir string) (*server.Server, *storage.Durable) {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob"} {
		if err := reg.Register(registry.UserID(u), u, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	st, err := storage.Open(storage.Options{
		Dir: dir, Shards: 4, HistoryLimit: 32, SnapshotInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(reg, st, bld)
	s.Logf = t.Logf
	return s, st
}

// walkBob logs both users in and walks bob through a few rooms so the
// history surface has something to answer.
func walkBob(t *testing.T, s *server.Server) {
	t.Helper()
	for u, dev := range map[string]string{"alice": devA.String(), "bob": devB.String()} {
		if err := s.Login(wire.Login{User: u, Password: pw, Device: dev}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ApplyPresence(wire.Presence{Device: devA.String(), Room: 1, At: 50, Present: true}); err != nil {
		t.Fatal(err)
	}
	for i, room := range []graph.NodeID{2, 4, 6, 3} {
		err := s.ApplyPresence(wire.Presence{
			Device: devB.String(), Room: room, At: sim.Tick(100 * (i + 1)), Present: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHistoryQueriesOverWireMatchInProcess: the MsgLocateAt and
// MsgTrajectory answers served over wire v2 must byte-match the
// marshalled in-process LocateAt/Trajectory results — the serving layer
// adds transport, never data.
func TestHistoryQueriesOverWireMatchInProcess(t *testing.T) {
	s, st := newDurableServer(t, t.TempDir())
	defer st.Close()
	walkBob(t, s)

	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	client := wire.NewClient(wire.NewFrameCodec(conn))

	for _, at := range []sim.Tick{100, 150, 250, 400, 9999} {
		req := wire.LocateAt{Querier: "alice", Target: "bob", At: at}
		inProc, err := s.LocateAt(req)
		if err != nil {
			t.Fatalf("in-process LocateAt(%d): %v", at, err)
		}
		var overWire wire.LocateResult
		if err := client.Call(wire.MsgLocateAt, req, &overWire); err != nil {
			t.Fatalf("wire LocateAt(%d): %v", at, err)
		}
		wireRaw, _ := json.Marshal(overWire)
		procRaw, _ := json.Marshal(inProc)
		if string(wireRaw) != string(procRaw) {
			t.Fatalf("LocateAt(%d): wire %s != in-process %s", at, wireRaw, procRaw)
		}
	}

	windows := [][2]sim.Tick{{0, 1000}, {150, 350}, {401, 9999}, {0, 50}}
	for _, w := range windows {
		req := wire.TrajectoryQuery{Querier: "alice", Target: "bob", From: w[0], To: w[1]}
		inProc, err := s.Trajectory(req)
		if err != nil {
			t.Fatalf("in-process Trajectory(%v): %v", w, err)
		}
		var overWire wire.TrajectoryResult
		if err := client.Call(wire.MsgTrajectory, req, &overWire); err != nil {
			t.Fatalf("wire Trajectory(%v): %v", w, err)
		}
		wireRaw, _ := json.Marshal(overWire)
		procRaw, _ := json.Marshal(inProc)
		if string(wireRaw) != string(procRaw) {
			t.Fatalf("Trajectory(%v): wire %s != in-process %s", w, wireRaw, procRaw)
		}
	}

	// A query before any recorded history is a not-found error over the
	// wire, exactly like in-process.
	err := client.Call(wire.MsgLocateAt, wire.LocateAt{Querier: "alice", Target: "bob", At: 10}, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeNotFound {
		t.Fatalf("LocateAt before history = %v, want not-found", err)
	}
	client.Close()
}

// TestHistoryAccessChecks: the history queries enforce the same rights
// as Locate.
func TestHistoryAccessChecks(t *testing.T) {
	s, st := newDurableServer(t, t.TempDir())
	defer st.Close()
	walkBob(t, s)

	// Unknown querier.
	if _, err := s.LocateAt(wire.LocateAt{Querier: "mallory", Target: "bob", At: 100}); err == nil {
		t.Fatal("LocateAt with unknown querier succeeded")
	}
	if _, err := s.Trajectory(wire.TrajectoryQuery{Querier: "mallory", Target: "bob", From: 0, To: 100}); err == nil {
		t.Fatal("Trajectory with unknown querier succeeded")
	}
	// Logged-out target: logout drops history, so the queries fail like
	// Locate does.
	if err := s.Logout(wire.Logout{User: "bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LocateAt(wire.LocateAt{Querier: "alice", Target: "bob", At: 100}); err == nil {
		t.Fatal("LocateAt on logged-out target succeeded")
	}
}

// TestServerRestartServesIdenticalHistory: a server torn down cleanly
// and rebuilt on the same data directory answers the full history
// surface identically — the serving layer is restartable.
func TestServerRestartServesIdenticalHistory(t *testing.T) {
	dir := t.TempDir()
	s1, st1 := newDurableServer(t, dir)
	walkBob(t, s1)

	type answers struct {
		loc  wire.LocateResult
		at   []wire.LocateResult
		traj wire.TrajectoryResult
	}
	capture := func(s *server.Server) answers {
		var a answers
		var err error
		if a.loc, err = s.Locate(wire.Locate{Querier: "alice", Target: "bob"}); err != nil {
			t.Fatal(err)
		}
		for _, at := range []sim.Tick{100, 250, 400} {
			r, err := s.LocateAt(wire.LocateAt{Querier: "alice", Target: "bob", At: at})
			if err != nil {
				t.Fatal(err)
			}
			a.at = append(a.at, r)
		}
		if a.traj, err = s.Trajectory(wire.TrajectoryQuery{Querier: "alice", Target: "bob", From: 0, To: 9999}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	want := capture(s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh server process: new registry state (users log in again),
	// recovered location store.
	s2, st2 := newDurableServer(t, dir)
	defer st2.Close()
	for u, dev := range map[string]string{"alice": devA.String(), "bob": devB.String()} {
		if err := s2.Login(wire.Login{User: u, Password: pw, Device: dev}); err != nil {
			t.Fatal(err)
		}
	}
	got := capture(s2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restarted server answers differ:\n want %+v\n  got %+v", want, got)
	}

	// The stats surface reports the recovery.
	res := s2.StatsResult()
	if res.Counters["storage.restored_devices"] == 0 && res.Counters["storage.replayed_records"] == 0 {
		t.Fatalf("stats report no recovery: %v", res.Counters)
	}
}
