package server

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bips/internal/graph"
	"bips/internal/sim"
	"bips/internal/wire"
)

// TestPooledBufferAliasing hammers the pooled frame buffers from every
// direction at once: several pipelined connections issue concurrent
// Locate/LocateAt/Stats requests (the inline reader path and the
// handler-goroutine path) while a mover churns presence so pre-encoded
// event frames race down the same writers. Run under -race this is the
// aliasing detector for the buffer ownership rules — a buffer released
// while the writer still reads it, or reused while a push handler still
// holds the body, shows up as a data race. The semantic assertions
// catch the non-racing corruption mode: a response whose bytes were
// mutated after handoff no longer decodes to a plausible fix.
func TestPooledBufferAliasing(t *testing.T) {
	// Big event buffer and drop limit: the mover outruns net.Pipe
	// consumers by design, and a slow-consumer kill mid-test would turn
	// the hammering into connection errors instead of coverage.
	s := newSubServer(t, WithEventBuffer(4096), WithDropLimit(1<<30))
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Alice never moves, so LocateAt has a stable answer no matter how
	// far the mover's churn evicts bob's history.
	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devA), Room: 1, At: 1, Present: true,
	}); err != nil {
		t.Fatal(err)
	}

	const (
		conns   = 6
		workers = 4
		perWork = 150
		moves   = 800
	)

	var events atomic.Int64
	clients := make([]*wire.Client, 0, conns)
	for c := 0; c < conns; c++ {
		cliConn, srvConn := net.Pipe()
		go s.ServeConn(srvConn)
		client := wire.NewClient(wire.NewFrameCodec(cliConn))
		defer client.Close()

		// Push handler: env.Body aliases a pooled client receive buffer
		// that is reused the moment this returns, so everything we keep
		// must be decoded out, not retained. Validate the decode is a
		// plausible event, not garbage from a recycled buffer.
		client.SetPushHandler(func(env wire.Envelope) {
			var e wire.Event
			if err := wire.UnmarshalBody(env, &e); err != nil {
				t.Errorf("undecodable event push: %v", err)
				return
			}
			if e.Room != 5 && e.Room != 6 {
				t.Errorf("event in impossible room: %+v", e)
			}
			if e.Device != wire.FormatAddr(devB) {
				t.Errorf("event for impossible device: %+v", e)
			}
			events.Add(1)
		})
		if err := client.Call(wire.MsgSubscribe, &wire.Subscribe{
			ID: "track", Querier: "alice",
			Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"},
		}, nil); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, client)
	}

	// All connections are subscribed: start the churn. Bob bounces
	// between two adjacent rooms, so every event and every locate
	// answer must land in {5, 6}.
	moverDone := make(chan struct{})
	go func() {
		defer close(moverDone)
		for i := 0; i < moves; i++ {
			_ = s.ApplyPresence(wire.Presence{
				Device: wire.FormatAddr(devB), Room: graph.NodeID(5 + i%2), At: sim.Tick(2 + i), Present: true,
			})
		}
	}()

	var wg sync.WaitGroup
	for _, client := range clients {
		client := client
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				req := wire.Locate{Querier: "alice", Target: "bob"}
				reqAt := wire.LocateAt{Querier: "alice", Target: "alice", At: 1}
				for i := 0; i < perWork; i++ {
					switch i % 3 {
					case 0:
						var res wire.LocateResult
						if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
							t.Errorf("locate: %v", err)
							return
						}
						if res.Room != 5 && res.Room != 6 {
							t.Errorf("locate answered impossible room: %+v", res)
							return
						}
						if res.RoomName == "" || res.At < 1 {
							t.Errorf("locate result mangled: %+v", res)
							return
						}
					case 1:
						var res wire.LocateResult
						if err := client.Call(wire.MsgLocateAt, &reqAt, &res); err != nil {
							t.Errorf("locateAt: %v", err)
							return
						}
						if res.Room != 1 || res.At != 1 {
							t.Errorf("locateAt(1) = %+v, want room 1 at 1", res)
							return
						}
					case 2:
						var res wire.StatsResult
						if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
							t.Errorf("stats: %v", err)
							return
						}
						if len(res.Counters) == 0 {
							t.Errorf("stats mangled: %+v", res)
							return
						}
					}
				}
			}(w)
		}
	}

	wg.Wait()
	<-moverDone
	// Event delivery is asynchronous; give in-flight pushes a moment.
	deadline := time.Now().Add(5 * time.Second)
	for events.Load() == 0 {
		if time.Now().After(deadline) {
			t.Error("no events observed: the push path was never exercised")
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
}
