package server

import (
	"fmt"
	"net"
	"testing"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

// benchIngestSetup starts a real TCP server with devs logged-in devices
// and returns a connected v2 client. Cleanup tears both down.
func benchIngestSetup(b *testing.B, devs int) *wire.Client {
	b.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(locdb.DefaultShards, locdb.DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	s := New(reg, db, bld)
	s.Logf = nil
	for i := 0; i < devs; i++ {
		name := fmt.Sprintf("w%d", i)
		if err := reg.Register(registry.UserID(name), name, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			b.Fatal(err)
		}
		if err := s.Login(wire.Login{User: name, Password: pw, Device: benchDev(i).String()}); err != nil {
			b.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	c := wire.NewClient(wire.NewFrameCodec(conn))
	b.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return c
}

func benchDev(i int) baseband.BDAddr {
	return baseband.BDAddr(0xF000_0000_0000 + uint64(i+1))
}

func benchDelta(i, devs int) wire.Presence {
	return wire.Presence{
		Device:  benchDev(i % devs).String(),
		Room:    graph.NodeID(1 + i%7),
		At:      sim.Tick(i + 1),
		Present: true,
	}
}

// BenchmarkIngestDelta measures the workstation write path end to end
// over TCP, in ns per delta: "single" is the pre-ingest protocol (one
// MsgPresence envelope per delta, stop-and-wait, as bips-station shipped
// before the ingest subsystem), "batched" is the ingest session
// protocol (MsgPresenceBatch frames of DefaultMaxBatch*4 deltas,
// stop-and-wait per frame). .github/bench.sh derives the batched/single
// deltas-per-second ratio into BENCH_PR5.json — the PR 5 acceptance
// metric (bar: >= 5x).
func BenchmarkIngestDelta(b *testing.B) {
	const devs = 64
	const frame = 256

	b.Run("single", func(b *testing.B) {
		c := benchIngestSetup(b, devs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Call(wire.MsgPresence, benchDelta(i, devs), nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batched", func(b *testing.B) {
		c := benchIngestSetup(b, devs)
		var ack wire.IngestAck
		if err := c.Call(wire.MsgIngestHello,
			wire.IngestHello{Session: "bench", Station: "S", Room: 1}, &ack); err != nil {
			b.Fatal(err)
		}
		deltas := make([]wire.Presence, 0, frame)
		seq := uint64(0)
		b.ResetTimer()
		for i := 0; i < b.N; {
			deltas = deltas[:0]
			for len(deltas) < frame && i < b.N {
				deltas = append(deltas, benchDelta(i, devs))
				i++
			}
			seq++
			if err := c.Call(wire.MsgPresenceBatch,
				wire.PresenceBatch{Session: "bench", Seq: seq, Deltas: deltas}, &ack); err != nil {
				b.Fatal(err)
			}
		}
	})
}
