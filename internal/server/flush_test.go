// Flush-coalescing tests: the writer loop and the subscription pusher
// must batch queued frames into few underlying writes, the wire.*
// counters must surface the amortization through MsgStats, and none of
// it may change the bytes on the stream (the differential test for that
// lives in internal/wire; here the concern is the server loops).
package server

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

// newFlushServer is newServer with options and a seeded fixture: alice
// and bob logged in, bob present in room 6 (what Locate and the device
// watcher need).
func newFlushServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob"} {
		if err := reg.Register(registry.UserID(u), u, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	s := New(reg, locdb.New(), bld, opts...)
	s.Logf = nil
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	if err := s.ApplyPresence(wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true}); err != nil {
		t.Fatal(err)
	}
	return s
}

// countingConn counts the Write calls that actually reach the
// underlying connection — with buffered codecs, one per flush.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestWriterCoalescesPipelinedResponses drives a deeply pipelined
// workload and asserts the server answered with fewer write calls than
// responses — the point of the flush-on-idle writer — and that the
// wire.* counters account for every coalesced frame.
func TestWriterCoalescesPipelinedResponses(t *testing.T) {
	s := newFlushServer(t)
	cliConn, srvConn := net.Pipe()
	counted := &countingConn{Conn: srvConn}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		s.ServeConn(counted)
	}()
	client := wire.NewClient(wire.NewFrameCodec(cliConn))

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := wire.Locate{Querier: "alice", Target: "bob"}
			var res wire.LocateResult
			for i := 0; i < perWorker; i++ {
				if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = workers * perWorker
	writes := counted.writes.Load()
	if writes >= total {
		t.Errorf("server made %d writes for %d responses; want coalescing below one write per response", writes, total)
	}

	// The client can observe a response while the server is still inside
	// Flush (pipe writes rendezvous with reads), before the writer
	// settles the counters — wait for teardown before reading stats.
	if err := client.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	<-serveDone
	st := s.StatsResult()
	flushes, frames := st.Counters["wire.flushes"], st.Counters["wire.frames"]
	if frames != total {
		t.Errorf("wire.frames = %d, want %d", frames, total)
	}
	if flushes < 1 || flushes > writes {
		t.Errorf("wire.flushes = %d, want within [1, %d writes]", flushes, writes)
	}
	if st.Counters["wire.flush_bytes"] <= 0 {
		t.Errorf("wire.flush_bytes = %d, want > 0", st.Counters["wire.flush_bytes"])
	}
	if fpf, ok := st.Counters["wire.frames_per_flush"]; !ok {
		t.Error("wire.frames_per_flush missing from MsgStats")
	} else if fpf != frames/flushes {
		t.Errorf("wire.frames_per_flush = %d, want %d", fpf, frames/flushes)
	}
	t.Logf("%d responses in %d writes (%d flushes, frames/flush = %d)",
		total, writes, flushes, frames/flushes)
}

// TestFlushCountersPrinted asserts the satellite contract: everything
// MsgStats carries — including the new wire.* flush counters — reaches
// the terminal through wire.PrintStats (what bips-query -stats and
// bips-loadgen -stats render) once it is nonzero.
func TestFlushCountersPrinted(t *testing.T) {
	s := newFlushServer(t)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	req := wire.Locate{Querier: "alice", Target: "bob"}
	var res wire.LocateResult
	for i := 0; i < 4; i++ {
		if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	wire.PrintStats(&sb, s.StatsResult())
	out := sb.String()
	for _, name := range []string{"wire.flushes", "wire.frames", "wire.flush_bytes", "wire.frames_per_flush"} {
		if !strings.Contains(out, name) {
			t.Errorf("PrintStats output missing %q:\n%s", name, out)
		}
	}
}

// TestTinyFlushBytesStaysCorrect clamps the threshold to one byte —
// every staged frame immediately crosses it, so the writer degrades to
// flush-per-frame — and asserts the protocol still works end to end.
func TestTinyFlushBytesStaysCorrect(t *testing.T) {
	s := newFlushServer(t, WithFlushBytes(1))
	cliConn, srvConn := net.Pipe()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		s.ServeConn(srvConn)
	}()
	client := wire.NewClient(wire.NewFrameCodec(cliConn))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := wire.Locate{Querier: "alice", Target: "bob"}
			var res wire.LocateResult
			for i := 0; i < 25; i++ {
				if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := client.Close(); err != nil {
		t.Errorf("client close: %v", err)
	}
	<-serveDone
	st := s.StatsResult()
	if st.Counters["wire.frames"] != 100 {
		t.Errorf("wire.frames = %d, want 100", st.Counters["wire.frames"])
	}
}

// TestEventBurstCoalesced publishes a burst of presence deltas through
// a subscribed connection and asserts the pusher needed fewer writes
// than events: a batch fan-out leaves in few flushes, not one per
// event.
func TestEventBurstCoalesced(t *testing.T) {
	s := newFlushServer(t, WithEventBuffer(1024))
	cliConn, srvConn := net.Pipe()
	counted := &countingConn{Conn: srvConn}
	go s.ServeConn(counted)
	codec := wire.NewFrameCodec(cliConn)
	defer codec.Close()

	sub, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{
		ID: "track", Querier: "alice",
		Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(sub); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	ack, buf, err := codec.RecvBuf(buf)
	if err != nil || ack.Type != wire.MsgOK {
		t.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	// One ApplyBatch frame of alternating deltas: every mutation is one
	// event for the device watcher.
	const burst = 64
	muts := make([]locdb.Mutation, burst)
	for i := range muts {
		op := locdb.MutAbsence
		if i%2 == 1 {
			op = locdb.MutPresence
		}
		muts[i] = locdb.Mutation{Op: op, Dev: devB, Piconet: 6, At: sim.Tick(2 + i)}
	}
	before := counted.writes.Load()
	s.DB().ApplyBatch(muts)
	for i := 0; i < burst; i++ {
		var env wire.Envelope
		env, buf, err = codec.RecvBuf(buf)
		if err != nil {
			t.Fatal(err)
		}
		if env.Type != wire.MsgEvent {
			t.Fatalf("push %d type = %v", i, env.Type)
		}
	}
	writes := counted.writes.Load() - before
	if writes >= burst {
		t.Errorf("burst of %d events took %d writes; want coalescing below one write per event", burst, writes)
	}
	t.Logf("%d events in %d writes", burst, writes)
}
