package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

func benchServer(b *testing.B, shards int, opts ...Option) *Server {
	b.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(shards, locdb.DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	s := New(reg, db, bld, opts...)
	s.Logf = nil
	if err := reg.Register("alice", "alice", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("bob", "bob", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "bob", Password: pw, Device: wire.FormatAddr(devB)}); err != nil {
		b.Fatal(err)
	}
	if err := s.ApplyPresence(wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true}); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkDispatchLocate measures the pure request-execution path (no
// sockets) through the append-style hot path ServeConn uses: fast body
// decode, registry authorization, sharded locdb lookup, append-encode
// into a reused buffer.
func BenchmarkDispatchLocate(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	env, err := wire.MarshalBody(wire.MsgLocate, 1, wire.Locate{Querier: "alice", Target: "bob"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var buf []byte
		for pb.Next() {
			buf = s.DispatchBytes(env, buf[:0])
			if len(buf) == 0 || buf[0] != '{' {
				b.Fatalf("response = %q", buf)
			}
		}
	})
}

// benchServeConnPipelined measures the full per-connection pipeline —
// v2 framing, reader, bounded in-flight handlers, writer — over an
// in-memory connection with a client pipelining at the given depth.
func benchServeConnPipelined(b *testing.B, pipeline int) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / pipeline
	for w := 0; w < pipeline; w++ {
		n := per
		if w == 0 {
			n += b.N % pipeline
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Pointer bodies keep the client on the append-encode and
			// fast-decode paths (no per-call interface boxing).
			req := wire.Locate{Querier: "alice", Target: "bob"}
			var res wire.LocateResult
			for i := 0; i < n; i++ {
				if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkServeConnPipelined is the depth-16 configuration every
// BENCH_*.json record tracks.
func BenchmarkServeConnPipelined(b *testing.B) {
	benchServeConnPipelined(b, 16)
}

// BenchmarkServeConnPipelinedDepth sweeps the pipeline depth: d1 is the
// strictly synchronous client (request, response, request — flush
// coalescing cannot help), deeper pipelines give the group-commit
// client and the flush-on-idle writer room to amortize write(2) calls
// across queued frames.
func BenchmarkServeConnPipelinedDepth(b *testing.B) {
	for _, d := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			benchServeConnPipelined(b, d)
		})
	}
}

// BenchmarkFanoutEventPush measures the full event push path in the
// synchronous fan-out configuration (the in-process deployment's, and
// the only one comparable across records that predate the staged
// delivery ring): a presence change flows through locdb's subscriber
// notify, the fan-out tree's filters, and the connection pusher, and
// leaves as a pooled pre-encoded frame. The client drains with a raw
// frame codec and one reused receive buffer so the number reflects the
// server side. The staged configuration's write path is measured by
// BenchmarkFanoutWritePath, where the two modes are compared directly.
func BenchmarkFanoutEventPush(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards, WithSyncFanout())
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	codec := wire.NewFrameCodec(cliConn)
	defer codec.Close()

	sub, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{
		ID: "track", Querier: "alice",
		Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := codec.Send(sub); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	ack, buf, err := codec.RecvBuf(buf)
	if err != nil || ack.Type != wire.MsgOK {
		b.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate leave/enter so every mutation is exactly one event.
		p := wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 2 + sim.Tick(i), Present: i%2 == 1}
		if err := s.ApplyPresence(p); err != nil {
			b.Fatal(err)
		}
		var env wire.Envelope
		env, buf, err = codec.RecvBuf(buf)
		if err != nil {
			b.Fatal(err)
		}
		if env.Type != wire.MsgEvent {
			b.Fatalf("push type = %v", env.Type)
		}
	}
}

// BenchmarkFanoutWritePath measures what the MUTATING goroutine pays
// per event when a wire subscriber is attached — the number the staged
// delivery ring exists to shrink. Events are applied in bursts smaller
// than the buffers (no drops, no ring saturation) and the inter-burst
// drain runs off the timer, so the figure isolates the write path:
// sync pays matching plus the subscriber's encode-and-enqueue inline;
// staged pays matching plus a ring enqueue, with delivery off-thread.
func BenchmarkFanoutWritePath(b *testing.B) {
	const burst = 512
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		// The buffer holds a full burst times the per-event fan-out, so
		// the figure measures cost, not drops.
		{"sync", []Option{WithSyncFanout(), WithEventBuffer(8 * burst)}},
		{"staged", []Option{WithEventBuffer(8 * burst)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s := benchServer(b, locdb.DefaultShards, mode.opts...)
			cliConn, srvConn := net.Pipe()
			go s.ServeConn(srvConn)
			codec := wire.NewFrameCodec(cliConn)
			defer codec.Close()

			// Four matching subscriptions — a device watcher, a room
			// watcher and two catch-alls — so each event fans out the
			// way a watched corridor does, and the sync variant pays
			// four inline encodes per mutation.
			filters := []wire.SubFilter{
				{Kind: wire.FilterDevice, Target: "bob"},
				{Kind: wire.FilterRoom, Room: 6},
				{Kind: wire.FilterAll},
				{Kind: wire.FilterAll},
			}
			for i, f := range filters {
				sub, err := wire.MarshalBody(wire.MsgSubscribe, uint64(1+i), wire.Subscribe{
					ID: fmt.Sprintf("s%d", i), Querier: "alice", Filter: f,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := codec.Send(sub); err != nil {
					b.Fatal(err)
				}
				var ackBuf []byte
				ack, _, err := codec.RecvBuf(ackBuf)
				if err != nil || ack.Type != wire.MsgOK {
					b.Fatalf("subscribe ack = %+v, %v", ack, err)
				}
			}
			perEvent := int64(len(filters))

			// The drainer keeps the connection read, off the timer's
			// critical path, and counts deliveries so each burst can be
			// drained to completion before the next starts.
			var received atomic.Int64
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				var buf []byte
				for {
					env, nbuf, err := codec.RecvBuf(buf)
					if err != nil {
						return
					}
					buf = nbuf
					if env.Type == wire.MsgEvent {
						received.Add(1)
					}
				}
			}()

			tick := sim.Tick(1)
			sent := int64(0)
			b.ResetTimer()
			for n := 0; n < b.N; {
				k := burst
				if rem := b.N - n; rem < k {
					k = rem
				}
				for i := 0; i < k; i++ {
					tick++
					// Alternate leave/enter (the fixture seeds bob present
					// in room 6, so absence first): one event per mutation.
					p := wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: tick, Present: tick%2 == 1}
					if err := s.ApplyPresence(p); err != nil {
						b.Fatal(err)
					}
				}
				n += k
				sent += int64(k)
				b.StopTimer()
				for received.Load() < sent*perEvent {
					time.Sleep(50 * time.Microsecond)
				}
				b.StartTimer()
			}
			b.StopTimer()
			codec.Close()
			<-drained
		})
	}
}

// BenchmarkEventBurstFlush measures the subscription pusher under burst
// fan-out: one ApplyBatch produces a queue of events that the pusher
// stages and flushes together, so the per-event cost amortizes the
// write(2). The writes/event metric shows the coalescing directly — a
// flush-per-event pusher would report 1.0.
func BenchmarkEventBurstFlush(b *testing.B) {
	const burst = 64
	s := benchServer(b, locdb.DefaultShards, WithEventBuffer(4*burst))
	cliConn, srvConn := net.Pipe()
	counted := &countingConn{Conn: srvConn}
	go s.ServeConn(counted)
	codec := wire.NewFrameCodec(cliConn)
	defer codec.Close()

	sub, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{
		ID: "track", Querier: "alice",
		Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := codec.Send(sub); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	ack, buf, err := codec.RecvBuf(buf)
	if err != nil || ack.Type != wire.MsgOK {
		b.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	muts := make([]locdb.Mutation, burst)
	tick := sim.Tick(1)
	startWrites := counted.writes.Load()
	b.ResetTimer()
	for n := 0; n < b.N; {
		k := burst
		if rem := b.N - n; rem < k {
			k = rem
		}
		for i := 0; i < k; i++ {
			tick++
			// Alternate leave/enter (bob is seeded present): one event
			// per mutation for the device watcher.
			op := locdb.MutAbsence
			if tick%2 == 1 {
				op = locdb.MutPresence
			}
			muts[i] = locdb.Mutation{Op: op, Dev: devB, Piconet: 6, At: tick}
		}
		s.DB().ApplyBatch(muts[:k])
		for i := 0; i < k; i++ {
			var env wire.Envelope
			env, buf, err = codec.RecvBuf(buf)
			if err != nil {
				b.Fatal(err)
			}
			if env.Type != wire.MsgEvent {
				b.Fatalf("push type = %v", env.Type)
			}
		}
		n += k
	}
	b.StopTimer()
	b.ReportMetric(float64(counted.writes.Load()-startWrites)/float64(b.N), "writes/event")
}

// BenchmarkServeConnBatch measures the bulk path: one envelope carrying
// 32 batched locate requests. Reported per sub-request.
func BenchmarkServeConnBatch(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	const batch = 32
	var req wire.Batch
	for i := 0; i < batch; i++ {
		if err := req.Add(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		var res wire.BatchResult
		if err := client.Call(wire.MsgBatch, req, &res); err != nil {
			b.Fatal(err)
		}
	}
}
