package server

import (
	"net"
	"sync"
	"testing"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

func benchServer(b *testing.B, shards int) *Server {
	b.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(shards, locdb.DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	s := New(reg, db, bld)
	s.Logf = nil
	if err := reg.Register("alice", "alice", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("bob", "bob", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "bob", Password: pw, Device: wire.FormatAddr(devB)}); err != nil {
		b.Fatal(err)
	}
	if err := s.ApplyPresence(wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true}); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkDispatchLocate measures the pure request-execution path (no
// sockets) through the append-style hot path ServeConn uses: fast body
// decode, registry authorization, sharded locdb lookup, append-encode
// into a reused buffer.
func BenchmarkDispatchLocate(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	env, err := wire.MarshalBody(wire.MsgLocate, 1, wire.Locate{Querier: "alice", Target: "bob"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var buf []byte
		for pb.Next() {
			buf = s.DispatchBytes(env, buf[:0])
			if len(buf) == 0 || buf[0] != '{' {
				b.Fatalf("response = %q", buf)
			}
		}
	})
}

// BenchmarkServeConnPipelined measures the full per-connection pipeline —
// v2 framing, reader, bounded in-flight handlers, writer — over an
// in-memory connection with a deeply pipelining client.
func BenchmarkServeConnPipelined(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	const pipeline = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / pipeline
	for w := 0; w < pipeline; w++ {
		n := per
		if w == 0 {
			n += b.N % pipeline
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Pointer bodies keep the client on the append-encode and
			// fast-decode paths (no per-call interface boxing).
			req := wire.Locate{Querier: "alice", Target: "bob"}
			var res wire.LocateResult
			for i := 0; i < n; i++ {
				if err := client.Call(wire.MsgLocate, &req, &res); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkFanoutEventPush measures the full event push path: a
// presence change flows through locdb's subscriber notify, the fan-out
// tree's filters, and the connection pusher, and leaves as a pooled
// pre-encoded frame. The client drains with a raw frame codec and one
// reused receive buffer so the number reflects the server side.
func BenchmarkFanoutEventPush(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	codec := wire.NewFrameCodec(cliConn)
	defer codec.Close()

	sub, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{
		ID: "track", Querier: "alice",
		Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := codec.Send(sub); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	ack, buf, err := codec.RecvBuf(buf)
	if err != nil || ack.Type != wire.MsgOK {
		b.Fatalf("subscribe ack = %+v, %v", ack, err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate leave/enter so every mutation is exactly one event.
		p := wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 2 + sim.Tick(i), Present: i%2 == 1}
		if err := s.ApplyPresence(p); err != nil {
			b.Fatal(err)
		}
		var env wire.Envelope
		env, buf, err = codec.RecvBuf(buf)
		if err != nil {
			b.Fatal(err)
		}
		if env.Type != wire.MsgEvent {
			b.Fatalf("push type = %v", env.Type)
		}
	}
}

// BenchmarkServeConnBatch measures the bulk path: one envelope carrying
// 32 batched locate requests. Reported per sub-request.
func BenchmarkServeConnBatch(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	const batch = 32
	var req wire.Batch
	for i := 0; i < batch; i++ {
		if err := req.Add(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		var res wire.BatchResult
		if err := client.Call(wire.MsgBatch, req, &res); err != nil {
			b.Fatal(err)
		}
	}
}
