package server

import (
	"net"
	"sync"
	"testing"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/wire"
)

func benchServer(b *testing.B, shards int) *Server {
	b.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		b.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(shards, locdb.DefaultHistoryLimit)
	if err != nil {
		b.Fatal(err)
	}
	s := New(reg, db, bld)
	s.Logf = nil
	if err := reg.Register("alice", "alice", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("bob", "bob", pw, registry.RightLocate, registry.RightTrackable); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		b.Fatal(err)
	}
	if err := s.Login(wire.Login{User: "bob", Password: pw, Device: wire.FormatAddr(devB)}); err != nil {
		b.Fatal(err)
	}
	if err := s.ApplyPresence(wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true}); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkDispatchLocate measures the pure request-execution path (no
// sockets): decode, registry authorization, sharded locdb lookup, encode.
func BenchmarkDispatchLocate(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	env, err := wire.MarshalBody(wire.MsgLocate, 1, wire.Locate{Querier: "alice", Target: "bob"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp := s.dispatch(nil, env)
			if resp.Type != wire.MsgLocateResult {
				b.Fatalf("response = %+v", resp)
			}
		}
	})
}

// BenchmarkServeConnPipelined measures the full per-connection pipeline —
// v2 framing, reader, bounded in-flight handlers, writer — over an
// in-memory connection with a deeply pipelining client.
func BenchmarkServeConnPipelined(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	const pipeline = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / pipeline
	for w := 0; w < pipeline; w++ {
		n := per
		if w == 0 {
			n += b.N % pipeline
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var res wire.LocateResult
			for i := 0; i < n; i++ {
				if err := client.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}, &res); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkServeConnBatch measures the bulk path: one envelope carrying
// 32 batched locate requests. Reported per sub-request.
func BenchmarkServeConnBatch(b *testing.B) {
	s := benchServer(b, locdb.DefaultShards)
	cliConn, srvConn := net.Pipe()
	go s.ServeConn(srvConn)
	client := wire.NewClient(wire.NewFrameCodec(cliConn))
	defer client.Close()

	const batch = 32
	var req wire.Batch
	for i := 0; i < batch; i++ {
		if err := req.Add(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		var res wire.BatchResult
		if err := client.Call(wire.MsgBatch, req, &res); err != nil {
			b.Fatal(err)
		}
	}
}
