package server_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"bips/internal/graph"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
)

// crossPaths extends walkBob's movement so alice and bob actually share
// a room: alice joins bob in room 4 at tick 250 (bob is there over
// [200, 300)).
func crossPaths(t *testing.T, s *server.Server) {
	t.Helper()
	walkBob(t, s)
	if err := s.ApplyPresence(wire.Presence{Device: devA.String(), Room: 4, At: 250, Present: true}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticsQueriesOverWireMatchInProcess: the MsgContacts,
// MsgOccupancy and MsgDwell answers served over wire v2 must byte-match
// the marshalled in-process results — the serving layer adds transport,
// never data.
func TestAnalyticsQueriesOverWireMatchInProcess(t *testing.T) {
	s, st := newDurableServer(t, t.TempDir())
	defer st.Close()
	crossPaths(t, s)

	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	client := wire.NewClient(wire.NewFrameCodec(conn))
	defer client.Close()

	creq := wire.ContactsQuery{Querier: "alice", Target: "bob", From: 0, To: 500}
	inC, err := s.Contacts(creq)
	if err != nil {
		t.Fatalf("in-process Contacts: %v", err)
	}
	if len(inC.Contacts) != 1 || inC.Contacts[0].User != "alice" || inC.Contacts[0].Overlap != 50 {
		t.Fatalf("contacts fixture = %+v, want alice with overlap 50", inC.Contacts)
	}
	var overC wire.ContactsResult
	if err := client.Call(wire.MsgContacts, creq, &overC); err != nil {
		t.Fatalf("wire Contacts: %v", err)
	}
	wireRaw, _ := json.Marshal(overC)
	procRaw, _ := json.Marshal(inC)
	if string(wireRaw) != string(procRaw) {
		t.Fatalf("Contacts: wire %s != in-process %s", wireRaw, procRaw)
	}

	oreq := wire.OccupancyQuery{Querier: "alice", Rooms: []graph.NodeID{2, 4}, From: 0, To: 500, Bucket: 100}
	inO, err := s.Occupancy(oreq)
	if err != nil {
		t.Fatalf("in-process Occupancy: %v", err)
	}
	if len(inO.Buckets) != 5 {
		t.Fatalf("occupancy fixture = %+v, want 5 buckets", inO.Buckets)
	}
	var overO wire.OccupancyResult
	if err := client.Call(wire.MsgOccupancy, oreq, &overO); err != nil {
		t.Fatalf("wire Occupancy: %v", err)
	}
	wireRaw, _ = json.Marshal(overO)
	procRaw, _ = json.Marshal(inO)
	if string(wireRaw) != string(procRaw) {
		t.Fatalf("Occupancy: wire %s != in-process %s", wireRaw, procRaw)
	}

	for name, dreq := range map[string]wire.DwellQuery{
		"room":   {Querier: "alice", Kind: wire.DwellRoom, Room: 4, From: 0, To: 500},
		"device": {Querier: "alice", Kind: wire.DwellDevice, Target: "bob", From: 0, To: 500},
	} {
		inD, err := s.Dwell(dreq)
		if err != nil {
			t.Fatalf("in-process Dwell(%s): %v", name, err)
		}
		if inD.Samples == 0 {
			t.Fatalf("dwell %s fixture has no samples", name)
		}
		var overD wire.DwellResult
		if err := client.Call(wire.MsgDwell, dreq, &overD); err != nil {
			t.Fatalf("wire Dwell(%s): %v", name, err)
		}
		wireRaw, _ = json.Marshal(overD)
		procRaw, _ = json.Marshal(inD)
		if string(wireRaw) != string(procRaw) {
			t.Fatalf("Dwell(%s): wire %s != in-process %s", name, wireRaw, procRaw)
		}
	}
}

// TestAnalyticsAdversarial: every malformed or unauthorized analytics
// request is answered with the right MsgError code and the connection
// stays usable afterwards.
func TestAnalyticsAdversarial(t *testing.T) {
	s, st := newDurableServer(t, t.TempDir())
	defer st.Close()
	if err := s.Registry().Register("snoop", "snoop", pw); err != nil {
		t.Fatal(err)
	}
	crossPaths(t, s)
	if err := s.Login(wire.Login{User: "snoop", Password: pw, Device: "00:00:00:00:00:C3"}); err != nil {
		t.Fatal(err)
	}

	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	client := wire.NewClient(wire.NewFrameCodec(conn))
	defer client.Close()

	cases := []struct {
		name string
		typ  wire.MsgType
		req  any
		code string
	}{
		{"contacts inverted window", wire.MsgContacts,
			wire.ContactsQuery{Querier: "alice", Target: "bob", From: 100, To: 50}, wire.CodeBadRequest},
		{"contacts negative minOverlap", wire.MsgContacts,
			wire.ContactsQuery{Querier: "alice", Target: "bob", From: 0, To: 100, MinOverlap: -1}, wire.CodeBadRequest},
		{"contacts without target", wire.MsgContacts,
			wire.ContactsQuery{Querier: "alice", From: 0, To: 100}, wire.CodeBadRequest},
		{"contacts unknown querier", wire.MsgContacts,
			wire.ContactsQuery{Querier: "ghost", Target: "bob", From: 0, To: 100}, wire.CodeNotFound},
		{"contacts querier without right", wire.MsgContacts,
			wire.ContactsQuery{Querier: "snoop", Target: "bob", From: 0, To: 100}, wire.CodeDenied},
		{"occupancy without rooms", wire.MsgOccupancy,
			wire.OccupancyQuery{Querier: "alice", From: 0, To: 100, Bucket: 10}, wire.CodeBadRequest},
		{"occupancy zero bucket", wire.MsgOccupancy,
			wire.OccupancyQuery{Querier: "alice", Rooms: []graph.NodeID{4}, From: 0, To: 100}, wire.CodeBadRequest},
		{"occupancy series too long", wire.MsgOccupancy,
			wire.OccupancyQuery{Querier: "alice", Rooms: []graph.NodeID{4}, From: 0,
				To: sim.Tick(wire.MaxOccupancyBuckets) + 1, Bucket: 1}, wire.CodeBadRequest},
		{"occupancy unknown room", wire.MsgOccupancy,
			wire.OccupancyQuery{Querier: "alice", Rooms: []graph.NodeID{4, 999}, From: 0, To: 100, Bucket: 10}, wire.CodeNotFound},
		{"occupancy querier without right", wire.MsgOccupancy,
			wire.OccupancyQuery{Querier: "snoop", Rooms: []graph.NodeID{4}, From: 0, To: 100, Bucket: 10}, wire.CodeDenied},
		{"dwell unknown kind", wire.MsgDwell,
			wire.DwellQuery{Querier: "alice", Kind: "zone", Room: 4, From: 0, To: 100}, wire.CodeBadRequest},
		{"dwell device without target", wire.MsgDwell,
			wire.DwellQuery{Querier: "alice", Kind: wire.DwellDevice, From: 0, To: 100}, wire.CodeBadRequest},
		{"dwell unknown room", wire.MsgDwell,
			wire.DwellQuery{Querier: "alice", Kind: wire.DwellRoom, Room: 999, From: 0, To: 100}, wire.CodeNotFound},
		{"dwell offline target", wire.MsgDwell,
			wire.DwellQuery{Querier: "alice", Kind: wire.DwellDevice, Target: "ghost", From: 0, To: 100}, wire.CodeNotFound},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := client.Call(tt.typ, tt.req, nil)
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("error = %v, want wire.Error", err)
			}
			if werr.Code != tt.code {
				t.Errorf("code = %q, want %q", werr.Code, tt.code)
			}
		})
	}

	// The connection survived all of it: a valid query still answers.
	var res wire.ContactsResult
	if err := client.Call(wire.MsgContacts, wire.ContactsQuery{
		Querier: "alice", Target: "bob", From: 0, To: 500,
	}, &res); err != nil {
		t.Fatalf("valid contacts after adversarial input: %v", err)
	}
	if len(res.Contacts) != 1 {
		t.Fatalf("contacts after adversarial input = %+v", res.Contacts)
	}
}

// TestServerRestartServesIdenticalAnalytics: a server torn down cleanly
// and rebuilt on the same data directory answers the analytics surface
// identically — the engine reseeds from the restored location store.
func TestServerRestartServesIdenticalAnalytics(t *testing.T) {
	dir := t.TempDir()
	s1, st1 := newDurableServer(t, dir)
	crossPaths(t, s1)

	type answers struct {
		contacts wire.ContactsResult
		occ      wire.OccupancyResult
		dwellR   wire.DwellResult
		dwellD   wire.DwellResult
	}
	capture := func(s *server.Server) answers {
		var a answers
		var err error
		if a.contacts, err = s.Contacts(wire.ContactsQuery{Querier: "alice", Target: "bob", From: 0, To: 500}); err != nil {
			t.Fatal(err)
		}
		if a.occ, err = s.Occupancy(wire.OccupancyQuery{
			Querier: "alice", Rooms: []graph.NodeID{2, 4, 6}, From: 0, To: 500, Bucket: 50,
		}); err != nil {
			t.Fatal(err)
		}
		if a.dwellR, err = s.Dwell(wire.DwellQuery{Querier: "alice", Kind: wire.DwellRoom, Room: 4, From: 0, To: 500}); err != nil {
			t.Fatal(err)
		}
		if a.dwellD, err = s.Dwell(wire.DwellQuery{
			Querier: "alice", Kind: wire.DwellDevice, Target: "bob", From: 0, To: 500,
		}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	want := capture(s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2 := newDurableServer(t, dir)
	defer st2.Close()
	for u, dev := range map[string]string{"alice": devA.String(), "bob": devB.String()} {
		if err := s2.Login(wire.Login{User: u, Password: pw, Device: dev}); err != nil {
			t.Fatal(err)
		}
	}
	got := capture(s2)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restarted server analytics differ:\n want %+v\n  got %+v", want, got)
	}
}

// TestAnalyticsStats: the engine's counters surface through MsgStats
// under the analytics prefix, and analytics requests are counted like
// any other request type.
func TestAnalyticsStats(t *testing.T) {
	s, st := newDurableServer(t, t.TempDir())
	defer st.Close()
	crossPaths(t, s)
	if _, err := s.Contacts(wire.ContactsQuery{Querier: "alice", Target: "bob", From: 0, To: 500}); err != nil {
		t.Fatal(err)
	}
	res := s.StatsResult()
	if res.Counters["analytics.events"] == 0 {
		t.Fatalf("analytics.events = 0, counters %v", res.Counters)
	}
	if res.Counters["analytics.queries_contacts"] != 1 {
		t.Fatalf("analytics.queries_contacts = %d, want 1", res.Counters["analytics.queries_contacts"])
	}
	if res.Counters["analytics.hot_runs"] == 0 {
		t.Fatal("analytics.hot_runs = 0 after movement")
	}

	// Logout drops bob's hot tier, exactly like histdb.
	if err := s.Logout(wire.Logout{User: "bob"}); err != nil {
		t.Fatal(err)
	}
	if got := s.StatsResult().Counters["analytics.hot_devices"]; got != 1 {
		t.Fatalf("analytics.hot_devices after logout = %d, want 1 (alice)", got)
	}
}
