package server

import (
	"errors"
	"net"
	"testing"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/wire"
)

const pw = "pw"

var (
	devA = baseband.BDAddr(0xB1)
	devB = baseband.BDAddr(0xB2)
)

func newServer(t *testing.T) *Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob"} {
		if err := reg.Register(registry.UserID(u), u, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	s := New(reg, locdb.New(), bld)
	s.Logf = t.Logf
	return s
}

func login(t *testing.T, s *Server, user string, dev baseband.BDAddr) {
	t.Helper()
	if err := s.Login(wire.Login{User: user, Password: pw, Device: wire.FormatAddr(dev)}); err != nil {
		t.Fatal(err)
	}
}

func TestLoginLogout(t *testing.T) {
	s := newServer(t)
	login(t, s, "alice", devA)
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devB)}); err == nil {
		t.Error("double login accepted")
	}
	if err := s.Logout(wire.Logout{User: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Logout(wire.Logout{User: "alice"}); err == nil {
		t.Error("double logout accepted")
	}
}

func TestLoginBadDevice(t *testing.T) {
	s := newServer(t)
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: "junk"}); err == nil {
		t.Error("junk device accepted")
	}
}

func TestPresenceAndLocate(t *testing.T) {
	s := newServer(t)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)

	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devB), Room: 6, At: 100, Present: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Locate(wire.Locate{Querier: "alice", Target: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Room != 6 || res.RoomName != "Library" || res.At != 100 {
		t.Errorf("locate = %+v", res)
	}
}

func TestPresenceUnknownRoomRejected(t *testing.T) {
	s := newServer(t)
	err := s.ApplyPresence(wire.Presence{Device: wire.FormatAddr(devA), Room: 99, At: 1, Present: true})
	if !errors.Is(err, building.ErrUnknownRoom) {
		t.Errorf("error = %v", err)
	}
}

func TestPresenceAnonymousDeviceIgnored(t *testing.T) {
	s := newServer(t)
	// devA is not logged in: the delta is dropped without error.
	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devA), Room: 3, At: 1, Present: true,
	}); err != nil {
		t.Fatal(err)
	}
	if s.DB().Present() != 0 {
		t.Error("anonymous device tracked")
	}
}

func TestLogoutDropsLocation(t *testing.T) {
	s := newServer(t)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devB), Room: 6, At: 1, Present: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Logout(wire.Logout{User: "bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Locate(wire.Locate{Querier: "alice", Target: "bob"}); err == nil {
		t.Error("located a logged-out user")
	}
}

func TestPathQuery(t *testing.T) {
	s := newServer(t)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	for _, p := range []wire.Presence{
		{Device: wire.FormatAddr(devA), Room: 1, At: 10, Present: true},
		{Device: wire.FormatAddr(devB), Room: 10, At: 20, Present: true},
	} {
		if err := s.ApplyPresence(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Path(wire.PathQuery{Querier: "alice", Target: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMeters != 60 {
		t.Errorf("total = %v, want 60", res.TotalMeters)
	}
	if res.Rooms[0] != 1 || res.Rooms[len(res.Rooms)-1] != 10 {
		t.Errorf("rooms = %v", res.Rooms)
	}
	if res.Names[0] != "Lobby" || res.Names[len(res.Names)-1] != "Cafeteria" {
		t.Errorf("names = %v", res.Names)
	}
}

func TestPathRequiresBothPositions(t *testing.T) {
	s := newServer(t)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	// Neither located yet.
	if _, err := s.Path(wire.PathQuery{Querier: "alice", Target: "bob"}); err == nil {
		t.Error("path without querier position succeeded")
	}
	if err := s.ApplyPresence(wire.Presence{
		Device: wire.FormatAddr(devA), Room: 1, At: 10, Present: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Path(wire.PathQuery{Querier: "alice", Target: "bob"}); err == nil {
		t.Error("path without target position succeeded")
	}
}

// dialPipe wires a wire.Client to a served in-memory connection.
func dialPipe(t *testing.T, s *Server) *wire.Client {
	t.Helper()
	a, b := net.Pipe()
	go s.ServeConn(b)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return wire.NewClient(wire.NewCodec(a))
}

func TestWireEndToEnd(t *testing.T) {
	s := newServer(t)
	client := dialPipe(t, s)

	if err := client.Call(wire.MsgLogin, wire.Login{
		User: "alice", Password: pw, Device: wire.FormatAddr(devA),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Call(wire.MsgLogin, wire.Login{
		User: "bob", Password: pw, Device: wire.FormatAddr(devB),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Call(wire.MsgHello, wire.Hello{Station: "x", Room: 1}, nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range []wire.Presence{
		{Device: wire.FormatAddr(devA), Room: 1, At: 5, Present: true},
		{Device: wire.FormatAddr(devB), Room: 5, At: 6, Present: true},
	} {
		if err := client.Call(wire.MsgPresence, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	var loc wire.LocateResult
	if err := client.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}, &loc); err != nil {
		t.Fatal(err)
	}
	if loc.Room != 5 {
		t.Errorf("locate room = %d, want 5", loc.Room)
	}
	var path wire.PathResult
	if err := client.Call(wire.MsgPath, wire.PathQuery{Querier: "alice", Target: "bob"}, &path); err != nil {
		t.Fatal(err)
	}
	if path.TotalMeters != 48 { // four 12m hops along the north corridor
		t.Errorf("path total = %v, want 48", path.TotalMeters)
	}
}

func TestWireErrorCodes(t *testing.T) {
	s := newServer(t)
	client := dialPipe(t, s)

	cases := []struct {
		name string
		t    wire.MsgType
		body any
		code string
	}{
		{"bad password", wire.MsgLogin, wire.Login{User: "alice", Password: "x", Device: wire.FormatAddr(devA)}, wire.CodeAuth},
		{"unknown user", wire.MsgLogin, wire.Login{User: "ghost", Password: pw, Device: wire.FormatAddr(devA)}, wire.CodeNotFound},
		{"locate offline", wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}, wire.CodeNotFound},
		{"bad hello room", wire.MsgHello, wire.Hello{Station: "x", Room: 999}, wire.CodeNotFound},
		{"unknown type", wire.MsgType("bogus"), struct{}{}, wire.CodeInternal},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := client.Call(tt.t, tt.body, nil)
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("error = %v, want wire.Error", err)
			}
			if werr.Code != tt.code {
				t.Errorf("code = %q, want %q", werr.Code, tt.code)
			}
		})
	}
}

func TestServeOverTCP(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := wire.NewClient(wire.NewCodec(conn))
	if err := client.Call(wire.MsgLogin, wire.Login{
		User: "alice", Password: pw, Device: wire.FormatAddr(devA),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Logf("client close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned: %v", err)
	}
}
