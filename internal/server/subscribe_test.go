package server

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/sim"
	"bips/internal/wire"
)

var devC = baseband.BDAddr(0xB3)

// newSubServer builds a server for the subscription tests: alice and
// bob fully privileged, snoop registered with no rights, carol
// privileged but never logged in.
func newSubServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := reg.Register(registry.UserID(u), u, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Register("snoop", "snoop", pw); err != nil {
		t.Fatal(err)
	}
	s := New(reg, locdb.New(), bld, opts...)
	s.Logf = t.Logf
	return s
}

// eventSink collects pushed wire.Events from a client connection.
type eventSink struct {
	mu     sync.Mutex
	events []wire.Event
}

func (es *eventSink) attach(t *testing.T, c *wire.Client) {
	t.Helper()
	c.SetPushHandler(func(env wire.Envelope) {
		var e wire.Event
		if err := wire.UnmarshalBody(env, &e); err != nil {
			t.Errorf("undecodable push: %v", err)
			return
		}
		es.mu.Lock()
		es.events = append(es.events, e)
		es.mu.Unlock()
	})
}

// wait blocks until the sink holds at least n events (the pusher
// goroutine races the request/response stream) and returns them.
func (es *eventSink) wait(t *testing.T, n int) []wire.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		es.mu.Lock()
		got := append([]wire.Event(nil), es.events...)
		es.mu.Unlock()
		if len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d events, want %d: %+v", len(got), n, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (es *eventSink) forSub(t *testing.T, n int, sub string) []wire.Event {
	t.Helper()
	all := es.wait(t, n)
	var out []wire.Event
	for _, e := range all {
		if e.Sub == sub {
			out = append(out, e)
		}
	}
	return out
}

func subscribe(t *testing.T, c *wire.Client, id, querier string, f wire.SubFilter) {
	t.Helper()
	if err := c.Call(wire.MsgSubscribe, wire.Subscribe{ID: id, Querier: querier, Filter: f}, nil); err != nil {
		t.Fatalf("subscribe %s: %v", id, err)
	}
}

func move(t *testing.T, c *wire.Client, dev baseband.BDAddr, room graph.NodeID, at sim.Tick) {
	t.Helper()
	if err := c.Call(wire.MsgPresence, wire.Presence{
		Device: wire.FormatAddr(dev), Room: room, At: at, Present: true,
	}, nil); err != nil {
		t.Fatalf("presence: %v", err)
	}
}

// TestWireSubscribeDeviceLifecycle walks the full lifecycle of a
// per-device subscription over the wire: subscribe, receive enters and
// handover leave+enter pairs, unsubscribe, silence.
func TestWireSubscribeDeviceLifecycle(t *testing.T) {
	s := newSubServer(t)
	client := dialPipe(t, s)
	var sink eventSink
	sink.attach(t, client)

	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	subscribe(t, client, "track-bob", "alice", wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"})

	move(t, client, devB, 6, 100)
	got := sink.wait(t, 1)
	e := got[0]
	if e.Sub != "track-bob" || e.Kind != wire.EventEnter || e.Room != 6 ||
		e.RoomName != "Library" || e.User != "bob" || e.Device != wire.FormatAddr(devB) || e.At != 100 {
		t.Fatalf("enter event = %+v", e)
	}

	// A handover is pushed as the leave of the old room immediately
	// followed by the enter of the new one, same timestamp.
	move(t, client, devB, 5, 200)
	got = sink.wait(t, 3)
	if got[1].Kind != wire.EventLeave || got[1].Room != 6 || got[1].At != 200 {
		t.Fatalf("handover leave = %+v", got[1])
	}
	if got[2].Kind != wire.EventEnter || got[2].Room != 5 || got[2].At != 200 {
		t.Fatalf("handover enter = %+v", got[2])
	}

	if err := client.Call(wire.MsgUnsubscribe, wire.Unsubscribe{ID: "track-bob"}, nil); err != nil {
		t.Fatal(err)
	}
	// Prove the cancelled subscription is silent: a probe subscription
	// on the same device must see the next move while track-bob does
	// not. (The probe event arriving bounds how long we must look.)
	subscribe(t, client, "probe", "alice", wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"})
	move(t, client, devB, 3, 300)
	all := sink.wait(t, 5) // leave 5 + enter 3 for the probe
	for _, e := range all {
		if e.Sub == "track-bob" && e.At >= 300 {
			t.Fatalf("cancelled subscription still delivered %+v", e)
		}
	}
}

// TestWireSubscribeRoomZoneOccupancy drives the remaining filter kinds
// through one connection and checks each subscription sees exactly its
// own slice of the traffic.
func TestWireSubscribeRoomZoneOccupancy(t *testing.T) {
	s := newSubServer(t)
	client := dialPipe(t, s)
	var sink eventSink
	sink.attach(t, client)

	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	subscribe(t, client, "room6", "alice", wire.SubFilter{Kind: wire.FilterRoom, Room: 6})
	subscribe(t, client, "occ6", "alice", wire.SubFilter{Kind: wire.FilterOccupancy, Room: 6, Threshold: 2})
	subscribe(t, client, "zone", "alice", wire.SubFilter{Kind: wire.FilterZone, Target: "bob", Rooms: []graph.NodeID{2, 3}})

	move(t, client, devB, 6, 100) // room6: bob enters; occupancy 1
	move(t, client, devA, 6, 110) // room6: alice enters; occupancy 2: rise
	move(t, client, devB, 2, 120) // room6: bob leaves; occupancy 1: fall; zone-enter
	move(t, client, devB, 3, 130) // intra-zone handover: zone silent
	move(t, client, devB, 4, 140) // zone-exit

	// 7 events total: 3 for room6, 2 for occ6, 2 for zone.
	room6 := sink.forSub(t, 7, "room6")
	if len(room6) != 3 || room6[0].User != "bob" || room6[1].User != "alice" ||
		room6[2].Kind != wire.EventLeave || room6[2].User != "bob" {
		t.Fatalf("room6 events = %+v", room6)
	}
	occ6 := sink.forSub(t, 7, "occ6")
	if len(occ6) != 2 || occ6[0].Kind != wire.EventOccupancyRise || occ6[0].Occupancy != 2 ||
		occ6[1].Kind != wire.EventOccupancyFall || occ6[1].Occupancy != 1 {
		t.Fatalf("occ6 events = %+v", occ6)
	}
	zone := sink.forSub(t, 7, "zone")
	if len(zone) != 2 || zone[0].Kind != wire.EventZoneEnter || zone[0].Room != 2 ||
		zone[1].Kind != wire.EventZoneExit || zone[1].Room != 4 {
		t.Fatalf("zone events = %+v", zone)
	}
}

// TestSubscribeAccessAndErrors: every rejection path of the subscribe
// and unsubscribe handlers, with the wire code each must map to.
func TestSubscribeAccessAndErrors(t *testing.T) {
	s := newSubServer(t)
	client := dialPipe(t, s)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	login(t, s, "snoop", devC)

	room6 := wire.SubFilter{Kind: wire.FilterRoom, Room: 6}
	cases := []struct {
		name string
		req  wire.Subscribe
		code string
	}{
		{"querier without locate right (device)",
			wire.Subscribe{ID: "s1", Querier: "snoop", Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "bob"}},
			wire.CodeDenied},
		{"querier without locate right (room)",
			wire.Subscribe{ID: "s2", Querier: "snoop", Filter: room6},
			wire.CodeDenied},
		{"unknown target",
			wire.Subscribe{ID: "s3", Querier: "alice", Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "ghost"}},
			wire.CodeNotFound},
		{"offline target",
			wire.Subscribe{ID: "s4", Querier: "alice", Filter: wire.SubFilter{Kind: wire.FilterDevice, Target: "carol"}},
			wire.CodeNotFound},
		{"offline querier",
			wire.Subscribe{ID: "s5", Querier: "carol", Filter: room6},
			wire.CodeNotFound},
		{"unknown querier",
			wire.Subscribe{ID: "s6", Querier: "ghost", Filter: room6},
			wire.CodeNotFound},
		{"unknown room",
			wire.Subscribe{ID: "s7", Querier: "alice", Filter: wire.SubFilter{Kind: wire.FilterRoom, Room: 999}},
			wire.CodeNotFound},
		{"unknown occupancy room",
			wire.Subscribe{ID: "s8", Querier: "alice", Filter: wire.SubFilter{Kind: wire.FilterOccupancy, Room: 999, Threshold: 1}},
			wire.CodeNotFound},
		{"unknown zone room",
			wire.Subscribe{ID: "s9", Querier: "alice", Filter: wire.SubFilter{Kind: wire.FilterZone, Target: "bob", Rooms: []graph.NodeID{6, 999}}},
			wire.CodeNotFound},
		{"malformed: empty id",
			wire.Subscribe{Querier: "alice", Filter: room6},
			wire.CodeBadRequest},
		{"malformed: bad kind",
			wire.Subscribe{ID: "s10", Querier: "alice", Filter: wire.SubFilter{Kind: "proximity"}},
			wire.CodeBadRequest},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := client.Call(wire.MsgSubscribe, tt.req, nil)
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("error = %v, want wire.Error", err)
			}
			if werr.Code != tt.code {
				t.Errorf("code = %q, want %q", werr.Code, tt.code)
			}
		})
	}

	// Duplicate live id.
	subscribe(t, client, "dup", "alice", room6)
	err := client.Call(wire.MsgSubscribe, wire.Subscribe{ID: "dup", Querier: "alice", Filter: room6}, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBadRequest {
		t.Errorf("duplicate id error = %v, want %s", err, wire.CodeBadRequest)
	}
	// Unknown unsubscribe.
	err = client.Call(wire.MsgUnsubscribe, wire.Unsubscribe{ID: "never"}, nil)
	if !errors.As(err, &werr) || werr.Code != wire.CodeNotFound {
		t.Errorf("unknown unsubscribe error = %v, want %s", err, wire.CodeNotFound)
	}
	// Unsubscribing frees the id for reuse.
	if err := client.Call(wire.MsgUnsubscribe, wire.Unsubscribe{ID: "dup"}, nil); err != nil {
		t.Fatal(err)
	}
	subscribe(t, client, "dup", "alice", room6)
}

// TestSubscribeRejectedInsideBatch: a batch answers once and then is
// done; a subscription pushes forever. The combination is malformed.
func TestSubscribeRejectedInsideBatch(t *testing.T) {
	s := newSubServer(t)
	client := dialPipe(t, s)
	login(t, s, "alice", devA)

	var b wire.Batch
	if err := b.Add(wire.MsgSubscribe, wire.Subscribe{
		ID: "in-batch", Querier: "alice",
		Filter: wire.SubFilter{Kind: wire.FilterRoom, Room: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(wire.MsgUnsubscribe, wire.Unsubscribe{ID: "in-batch"}); err != nil {
		t.Fatal(err)
	}
	var res wire.BatchResult
	if err := client.Call(wire.MsgBatch, b, &res); err != nil {
		t.Fatal(err)
	}
	for i := range res.Responses {
		err := res.Decode(i, nil)
		var werr *wire.Error
		if !errors.As(err, &werr) {
			t.Fatalf("batched subscription op %d = %v, want wire.Error", i, err)
		}
		if werr.Code != wire.CodeBadRequest {
			t.Errorf("batched subscription op %d code = %q, want %q", i, werr.Code, wire.CodeBadRequest)
		}
	}
}

// TestSubscriptionLimit: the per-connection cap rejects the next
// subscribe, and unsubscribing makes room again.
func TestSubscriptionLimit(t *testing.T) {
	s := newSubServer(t, WithMaxSubsPerConn(2))
	client := dialPipe(t, s)
	login(t, s, "alice", devA)

	room6 := wire.SubFilter{Kind: wire.FilterRoom, Room: 6}
	subscribe(t, client, "a", "alice", room6)
	subscribe(t, client, "b", "alice", room6)
	err := client.Call(wire.MsgSubscribe, wire.Subscribe{ID: "c", Querier: "alice", Filter: room6}, nil)
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeBadRequest {
		t.Fatalf("over-limit subscribe = %v, want %s", err, wire.CodeBadRequest)
	}
	if err := client.Call(wire.MsgUnsubscribe, wire.Unsubscribe{ID: "a"}, nil); err != nil {
		t.Fatal(err)
	}
	subscribe(t, client, "c", "alice", room6)
}

// TestSlowConsumerKilled is the adversarial half of the fan-out
// contract. A subscriber that stops reading must cost a bounded buffer
// and an accounted drop count, then be severed with a slow-consumer
// error — while a well-behaved subscriber to the same traffic on
// another connection receives every event, and the ingest path (the
// presence calls driving the traffic) never blocks.
func TestSlowConsumerKilled(t *testing.T) {
	s := newSubServer(t, WithEventBuffer(2), WithDropLimit(4))

	// The fast subscriber: a normal client with a push handler.
	fast := dialPipe(t, s)
	var sink eventSink
	sink.attach(t, fast)
	login(t, s, "alice", devA)
	login(t, s, "bob", devB)
	room6 := wire.SubFilter{Kind: wire.FilterRoom, Room: 6}
	subscribe(t, fast, "fast", "alice", room6)

	// The slow subscriber: a raw codec the test refuses to read from.
	// net.Pipe has no buffering at all, so the server's pusher blocks on
	// the first unread event — the tightest possible backpressure.
	a, b := net.Pipe()
	go s.ServeConn(b)
	t.Cleanup(func() { a.Close() })
	slow := wire.NewFrameCodec(a)
	env, err := wire.MarshalBody(wire.MsgSubscribe, 1, wire.Subscribe{ID: "slow", Querier: "alice", Filter: room6})
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Send(env); err != nil {
		t.Fatal(err)
	}
	resp, err := slow.Recv()
	if err != nil || resp.Type != wire.MsgOK {
		t.Fatalf("slow subscribe response = %+v, %v", resp, err)
	}

	// Drive traffic without reading the slow connection: bob bounces in
	// and out of room 6. Every Call completing proves ingest never
	// waits on the wedged subscriber. 20 moves = 20 room-6 events,
	// far past buffer(2) + drop limit(4). A fast subscriber is one
	// that READS at the event rate: delivery is staged off the write
	// path, so pace the moves on the fast sink's progress — otherwise
	// the test would just prove that any 2-slot buffer overflows under
	// a decoupled burst.
	const moves = 20
	for i := 0; i < moves; i++ {
		room := graph.NodeID(6)
		if i%2 == 1 {
			room = 5
		}
		move(t, fast, devB, room, sim.Tick(100+i))
		sink.wait(t, i+1)
	}

	// The presence calls all completed, so the events are matched and
	// queued; delivery (and therefore the drop accounting) runs on the
	// tree's delivery goroutine, so poll for the condemnation instead
	// of asserting it synchronously.
	deadline := time.Now().Add(5 * time.Second)
	for s.slowKills.Value() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.slowKills.Value(); got != 1 {
		t.Fatalf("slow kills = %d, want 1", got)
	}
	if got := s.evDropped.Value(); got < 4 {
		t.Fatalf("dropped events = %d, want >= drop limit 4", got)
	}

	// Now drain the slow connection: buffered events, then the
	// slow-consumer error, then the severed socket.
	if err := a.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var sawError bool
	var delivered int
	for {
		env, err := slow.Recv()
		if err != nil {
			break // severed
		}
		switch env.Type {
		case wire.MsgEvent:
			delivered++
		case wire.MsgError:
			var werr wire.Error
			if err := wire.UnmarshalBody(env, &werr); err != nil {
				t.Fatal(err)
			}
			if werr.Code != wire.CodeSlowConsumer {
				t.Fatalf("kill error code = %q, want %q", werr.Code, wire.CodeSlowConsumer)
			}
			sawError = true
		default:
			t.Fatalf("unexpected envelope %+v", env)
		}
	}
	if !sawError {
		t.Error("slow consumer was severed without the slow-consumer MsgError")
	}
	// Bounded buffer: at most buffer(2) + the one event the pusher held.
	if delivered > 3 {
		t.Errorf("slow consumer drained %d events, want <= 3 (bounded buffer)", delivered)
	}

	// The fast subscriber saw every single event despite sharing the
	// traffic with a wedged peer.
	got := sink.wait(t, moves)
	if len(got) != moves {
		t.Fatalf("fast subscriber got %d events, want %d", len(got), moves)
	}
	for i, e := range got {
		if e.At != sim.Tick(100+i) {
			t.Fatalf("fast subscriber event %d out of order: %+v", i, e)
		}
	}
}

// TestConnectionTeardownCancelsSubscriptions: closing a subscribed
// connection must unregister its subscriptions from the shared tree, or
// the tree leaks dead callbacks forever.
func TestConnectionTeardownCancelsSubscriptions(t *testing.T) {
	s := newSubServer(t)
	login(t, s, "alice", devA)

	a, b := net.Pipe()
	done := make(chan struct{})
	go func() { s.ServeConn(b); close(done) }()
	client := wire.NewClient(wire.NewCodec(a))
	subscribe(t, client, "x", "alice", wire.SubFilter{Kind: wire.FilterRoom, Room: 6})
	if got := s.Fanout().Stats().Subscriptions; got != 1 {
		t.Fatalf("live subscriptions = %d, want 1", got)
	}
	client.Close()
	<-done
	if got := s.Fanout().Stats().Subscriptions; got != 0 {
		t.Fatalf("subscriptions after teardown = %d, want 0", got)
	}
}
