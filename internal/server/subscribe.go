// Wire-level subscriptions: per-connection subscription state, access
// checks, and the slow-consumer policy.
//
// Every connection owns a connSubs: the map from client-chosen
// subscription ids to fan-out registrations, plus one bounded event
// buffer drained by a pusher goroutine. Fan-out callbacks run on the
// tree's delivery goroutine (or inline on the publishing goroutine
// under WithSyncFanout) and must never block, so they enqueue
// non-blocking and count a drop when the buffer is full; ingest and
// other subscribers never wait on a slow consumer. A connection that keeps dropping past
// the drop limit is killed: a best-effort slow-consumer MsgError, then
// the socket is severed (with a timer backstop in case even the error
// cannot be written).
package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bips/internal/building"
	"bips/internal/fanout"
	"bips/internal/registry"
	"bips/internal/wire"
)

// DefaultEventBuffer is the per-connection event buffer capacity: how
// many pushed events may be queued between the fan-out tree and the
// socket before new ones are dropped.
const DefaultEventBuffer = 256

// DefaultDropLimit is how many dropped events a connection is allowed
// before it is declared a slow consumer and disconnected.
const DefaultDropLimit = 1024

// DefaultMaxSubsPerConn bounds the subscriptions of one connection.
const DefaultMaxSubsPerConn = 1024

// defaultKillGrace is how long the slow-consumer backstop waits for
// the best-effort MsgError to be written before severing the socket
// regardless.
const defaultKillGrace = 2 * time.Second

// Subscription errors.
var (
	// ErrUnknownSubscription reports an unsubscribe for an id this
	// connection never registered (or already cancelled).
	ErrUnknownSubscription = errors.New("server: unknown subscription")
	// ErrDuplicateSubscription reports a subscribe re-using a live id.
	ErrDuplicateSubscription = errors.New("server: subscription id already in use")
	// ErrSubscriptionLimit reports a connection at its subscription cap.
	ErrSubscriptionLimit = errors.New("server: per-connection subscription limit")
	// errSlowConsumer is the reason a never-reading subscriber is
	// disconnected; it maps to wire.CodeSlowConsumer.
	errSlowConsumer = errors.New("server: subscriber too slow: event buffer overflowed past the drop limit")
)

// WithEventBuffer overrides DefaultEventBuffer. Values below 1 are
// clamped to 1.
func WithEventBuffer(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.eventBuffer = n
	}
}

// WithDropLimit overrides DefaultDropLimit. Values below 1 are clamped
// to 1 (the first dropped event already disconnects).
func WithDropLimit(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.dropLimit = n
	}
}

// WithMaxSubsPerConn overrides DefaultMaxSubsPerConn. Values below 1
// are clamped to 1.
func WithMaxSubsPerConn(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.maxSubs = n
	}
}

// connSubs is one connection's subscription state. The subs map is
// mutated only by handler goroutines (dispatch) and the teardown path,
// which runs strictly after every handler finished; push is called
// from fan-out callbacks on arbitrary publishing goroutines.
type connSubs struct {
	srv *Server
	tr  wire.Transport
	// ps is the transport's pooled-payload send path (nil for foreign
	// transports); events are encoded once into a pooled buffer at
	// publish time and the pump writes the bytes straight out.
	ps wire.PayloadSender
	// raw severs the underlying connection without taking transport
	// locks — Transport.Close takes the write mutex, which a Send
	// stalled on a full socket holds, so the slow-consumer backstop
	// must bypass it.
	raw io.Closer

	events chan outMsg
	kill   chan struct{}

	startOnce sync.Once
	killOnce  sync.Once
	pumpDone  chan struct{}

	mu     sync.Mutex
	subs   map[string]*fanout.Subscription
	drops  int64
	killed bool
	closed bool
}

func newConnSubs(s *Server, tr wire.Transport, raw io.Closer) *connSubs {
	cs := &connSubs{
		srv:      s,
		tr:       tr,
		raw:      raw,
		events:   make(chan outMsg, s.eventBuffer),
		kill:     make(chan struct{}),
		pumpDone: make(chan struct{}),
		subs:     make(map[string]*fanout.Subscription),
	}
	cs.ps, _ = tr.(wire.PayloadSender)
	return cs
}

// add registers one subscription: reserve the id, register on the
// fan-out tree (outside cs.mu — a synchronous tree's callbacks take
// cs.mu under the tree's locks, so holding both here would invert the
// order), then bind the registration to the id.
func (cs *connSubs) add(id string, f fanout.Filter) error {
	cs.mu.Lock()
	if cs.killed || cs.subs == nil {
		cs.mu.Unlock()
		return errSlowConsumer
	}
	if _, dup := cs.subs[id]; dup {
		cs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateSubscription, id)
	}
	if len(cs.subs) >= cs.srv.maxSubs {
		cs.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrSubscriptionLimit, cs.srv.maxSubs)
	}
	cs.subs[id] = nil // reserve the id against concurrent handlers
	cs.mu.Unlock()

	cs.startOnce.Do(func() { go cs.pump() })
	fsub := cs.srv.tree.Subscribe(f, func(e fanout.Event) {
		cs.push(cs.eventMsg(id, e))
	})
	cs.mu.Lock()
	cs.subs[id] = fsub
	cs.mu.Unlock()
	return nil
}

// drop cancels one subscription by id.
func (cs *connSubs) drop(id string) error {
	cs.mu.Lock()
	fsub, ok := cs.subs[id]
	if ok {
		delete(cs.subs, id)
	}
	cs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscription, id)
	}
	if fsub != nil {
		fsub.Cancel()
	}
	return nil
}

// push enqueues one encoded event without ever blocking: it runs
// inside a fan-out callback — on the tree's delivery goroutine, or on
// whatever goroutine applied the presence delta when the tree is
// synchronous. A full buffer drops the event
// (accounted, never silent — and the pooled payload is released);
// crossing the drop limit declares the connection a slow consumer.
func (cs *connSubs) push(m outMsg) {
	cs.mu.Lock()
	if cs.closed || cs.killed {
		cs.mu.Unlock()
		if m.buf != nil {
			m.buf.Release()
		}
		return
	}
	select {
	case cs.events <- m:
		cs.mu.Unlock()
		cs.srv.evPushed.Inc()
	default:
		cs.drops++
		over := cs.drops >= int64(cs.srv.dropLimit)
		cs.mu.Unlock()
		if m.buf != nil {
			m.buf.Release()
		}
		cs.srv.evDropped.Inc()
		if over {
			cs.killSlow()
		}
	}
}

// killSlow declares the connection a slow consumer: the pusher is told
// to answer with a slow-consumer MsgError and sever the socket, and a
// timer backstop severs it regardless in case the pusher itself is
// wedged in a write the peer never drains.
func (cs *connSubs) killSlow() {
	cs.killOnce.Do(func() {
		cs.mu.Lock()
		cs.killed = true
		cs.mu.Unlock()
		cs.srv.slowKills.Inc()
		close(cs.kill)
		if cs.raw != nil {
			raw := cs.raw
			time.AfterFunc(cs.srv.killGrace, func() { _ = raw.Close() })
		}
	})
}

// pump is the pusher goroutine: the single reader of the event buffer,
// staging MsgEvent frames onto the transport (frame writes are safe
// against the response writer's concurrent sends) and flushing once per
// burst — a whole PublishBatch fan-out leaves in one write(2) instead
// of one per event. Started lazily with the connection's first
// subscription. A send failure just keeps it draining and releasing
// until teardown.
func (cs *connSubs) pump() {
	defer close(cs.pumpDone)
	fw := newFlushWriter(cs.srv, cs.tr)
	for {
		select {
		case m, ok := <-cs.events:
			for ok {
				fw.write(m)
				select {
				case m, ok = <-cs.events:
					continue
				case <-cs.kill:
					fw.flush()
					cs.pumpKill()
					return
				default:
				}
				break
			}
			// Burst over (or channel closed): flush the batch.
			fw.flush()
			if !ok {
				return
			}
		case <-cs.kill:
			fw.flush()
			cs.pumpKill()
			return
		}
	}
}

// pumpKill answers the slow-consumer condemnation with a best-effort
// MsgError, severs the socket, and drains the event buffer until
// shutdown closes it, releasing every queued payload.
func (cs *connSubs) pumpKill() {
	resp, merr := wire.MarshalBody(wire.MsgError, 0, wire.Error{
		Code:    wire.CodeSlowConsumer,
		Message: errSlowConsumer.Error(),
	})
	if merr == nil {
		_ = cs.tr.Send(resp)
	}
	if cs.raw != nil {
		_ = cs.raw.Close()
	}
	for m := range cs.events {
		if m.buf != nil {
			m.buf.Release()
		}
	}
}

// shutdown runs on connection teardown, strictly after every handler
// goroutine finished: cancel the fan-out registrations first (Cancel
// returning means no callback is running or will run), then close the
// buffer so the pusher exits.
func (cs *connSubs) shutdown() {
	cs.mu.Lock()
	subs := cs.subs
	cs.subs = nil
	cs.mu.Unlock()
	for _, fsub := range subs {
		if fsub != nil {
			fsub.Cancel()
		}
	}
	// Claim startOnce: if it was still unclaimed the pump never ran and
	// there is nothing to wait for; otherwise wait for it to drain out.
	neverStarted := false
	cs.startOnce.Do(func() { neverStarted = true })
	cs.mu.Lock()
	cs.closed = true
	cs.mu.Unlock()
	close(cs.events)
	if !neverStarted {
		<-cs.pumpDone
	}
}

// dropped reports the connection's drop count (tests).
func (cs *connSubs) dropped() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.drops
}

// resolveFilter applies the server's business validation and access
// checks to a subscribe request and returns the fan-out filter.
// Device and zone filters target a user and require exactly the
// access Locate requires (querier holds the locate right, target is
// trackable and online); room, occupancy and catch-all filters have no
// target user, so the querier must be logged in and hold the locate
// right. Rooms must exist in the building.
func (s *Server) resolveFilter(req wire.Subscribe) (fanout.Filter, error) {
	querier := registry.UserID(req.Querier)
	roomKnown := func(id building.RoomID) error {
		if _, ok := s.bld.Room(id); !ok {
			return fmt.Errorf("%w: room %d", building.ErrUnknownRoom, id)
		}
		return nil
	}
	switch req.Filter.Kind {
	case wire.FilterDevice, wire.FilterZone:
		dev, err := s.reg.Authorize(querier, registry.UserID(req.Filter.Target))
		if err != nil {
			return fanout.Filter{}, err
		}
		if req.Filter.Kind == wire.FilterDevice {
			return fanout.Filter{Kind: fanout.KindDevice, Device: dev}, nil
		}
		for _, r := range req.Filter.Rooms {
			if err := roomKnown(r); err != nil {
				return fanout.Filter{}, err
			}
		}
		return fanout.Filter{Kind: fanout.KindZone, Device: dev, Zone: req.Filter.Rooms}, nil
	default:
		// all / room / occupancy: no target user to authorize against,
		// so the querier itself must be online and allowed to locate.
		if _, err := s.reg.DeviceOf(querier); err != nil {
			return fanout.Filter{}, err
		}
		if !s.reg.HasRight(querier, registry.RightLocate) {
			return fanout.Filter{}, fmt.Errorf("%w: %s lacks %q", registry.ErrDenied, querier, registry.RightLocate)
		}
		switch req.Filter.Kind {
		case wire.FilterAll:
			return fanout.Filter{Kind: fanout.KindAll}, nil
		case wire.FilterRoom:
			if err := roomKnown(req.Filter.Room); err != nil {
				return fanout.Filter{}, err
			}
			return fanout.Filter{Kind: fanout.KindRoom, Room: req.Filter.Room}, nil
		default: // wire.FilterOccupancy, Validate ruled out the rest
			if err := roomKnown(req.Filter.Room); err != nil {
				return fanout.Filter{}, err
			}
			return fanout.Filter{
				Kind:      fanout.KindOccupancy,
				Room:      req.Filter.Room,
				Threshold: req.Filter.Threshold,
			}, nil
		}
	}
}

// eventBody renders one fan-out event as a MsgEvent body for the
// subscription with the given id. It runs inside the fan-out
// callback; the registry lookup is the only lock it takes, and the
// registry never calls into the tree.
func (s *Server) eventBody(id string, e fanout.Event) wire.Event {
	body := wire.Event{
		Sub:       id,
		Kind:      string(e.Kind),
		Room:      e.Room,
		RoomName:  s.roomName(e.Room),
		At:        e.At,
		Occupancy: e.Occupancy,
	}
	if e.Device != 0 {
		body.Device = wire.FormatAddr(e.Device)
		if user, err := s.reg.UserOf(e.Device); err == nil {
			body.User = string(user)
		}
	}
	return body
}

// eventMsg encodes one fan-out event as a queued push message. On the
// pooled path the MsgEvent envelope is appended straight into a pooled
// buffer owned by the event queue until the pump (or a drop/teardown
// path) releases it; foreign transports get a marshaled envelope.
func (cs *connSubs) eventMsg(id string, e fanout.Event) outMsg {
	body := cs.srv.eventBody(id, e)
	if cs.ps == nil {
		env, err := wire.MarshalBody(wire.MsgEvent, 0, body)
		if err != nil {
			// Marshalling a flat struct cannot fail; deliver an empty
			// event rather than nothing.
			return outMsg{env: wire.Envelope{Type: wire.MsgEvent}}
		}
		return outMsg{env: env}
	}
	buf := wire.GetBuf()
	buf.B = wire.AppendEnvelope(buf.B, wire.MsgEvent, 0, &body)
	return outMsg{buf: buf}
}
