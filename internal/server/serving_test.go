package server_test

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/building"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/server"
	"bips/internal/wire"
)

const pw = "pw"

var (
	devA = baseband.BDAddr(0xB1)
	devB = baseband.BDAddr(0xB2)
)

func newServer(t *testing.T, opts ...server.Option) *server.Server {
	t.Helper()
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, u := range []string{"alice", "bob"} {
		if err := reg.Register(registry.UserID(u), u, pw,
			registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(reg, locdb.New(), bld, opts...)
	s.Logf = t.Logf
	return s
}

// servePipe hands one end of an in-memory connection to the server and
// returns the client end.
func servePipe(t *testing.T, s *server.Server) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(b)
	}()
	t.Cleanup(func() {
		a.Close()
		b.Close()
		<-done
	})
	return a
}

// TestMalformedV1GetsErrorResponse: a line that is not JSON must be
// answered with MsgError (code bad-request) before the connection closes —
// not silently dropped.
func TestMalformedV1GetsErrorResponse(t *testing.T) {
	s := newServer(t)
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write([]byte("{this is not json}\n")); err != nil {
		t.Fatal(err)
	}
	codec := wire.NewCodec(conn)
	env, err := codec.Recv()
	if err != nil {
		t.Fatalf("expected an error response, got transport error %v", err)
	}
	if env.Type != wire.MsgError || env.Seq != 0 {
		t.Fatalf("response = %+v, want MsgError seq 0", env)
	}
	var werr wire.Error
	if err := wire.UnmarshalBody(env, &werr); err != nil {
		t.Fatal(err)
	}
	if werr.Code != wire.CodeBadRequest {
		t.Errorf("code = %q, want %q", werr.Code, wire.CodeBadRequest)
	}
	// The server closes its end after answering.
	if _, err := codec.Recv(); err == nil {
		t.Error("connection still open after malformed message")
	}
}

// TestMalformedV2GetsErrorResponse: a v2 frame with a hostile length
// prefix is rejected with MsgError over the v2 framing, then closed.
func TestMalformedV2GetsErrorResponse(t *testing.T) {
	s := newServer(t)
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	var hdr [wire.FrameHeaderLen]byte
	hdr[0] = wire.FrameMagic
	hdr[1] = wire.FrameVersion
	binary.BigEndian.PutUint32(hdr[2:], wire.MaxFramePayload+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	codec := wire.NewFrameCodec(conn)
	env, err := codec.Recv()
	if err != nil {
		t.Fatalf("expected an error response, got transport error %v", err)
	}
	if env.Type != wire.MsgError {
		t.Fatalf("response = %+v, want MsgError", env)
	}
	var werr wire.Error
	if err := wire.UnmarshalBody(env, &werr); err != nil {
		t.Fatal(err)
	}
	if werr.Code != wire.CodeBadRequest {
		t.Errorf("code = %q, want %q", werr.Code, wire.CodeBadRequest)
	}
	if _, err := codec.Recv(); err == nil {
		t.Error("connection still open after malformed frame")
	}
}

// TestUnknownProtocolByte: a first byte that is neither '{' (v1) nor the
// v2 magic gets a best-effort v1 error and a closed connection.
func TestUnknownProtocolByte(t *testing.T) {
	s := newServer(t)
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	codec := wire.NewCodec(conn)
	env, err := codec.Recv()
	if err != nil {
		t.Fatalf("expected an error response, got transport error %v", err)
	}
	if env.Type != wire.MsgError {
		t.Fatalf("response = %+v, want MsgError", env)
	}
}

// TestV1V2FallbackNegotiation: one server, one listener, both protocol
// versions on concurrent connections. This is the compatibility contract:
// deploying a v2 server must not strand a single v1 client.
func TestV1V2FallbackNegotiation(t *testing.T) {
	s := newServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	dial := func(v2 bool) *wire.Client {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if v2 {
			return wire.NewClient(wire.NewFrameCodec(conn))
		}
		return wire.NewClient(wire.NewCodec(conn))
	}
	v1 := dial(false)
	v2 := dial(true)

	if err := v1.Call(wire.MsgLogin, wire.Login{
		User: "alice", Password: pw, Device: wire.FormatAddr(devA),
	}, nil); err != nil {
		t.Fatalf("v1 login: %v", err)
	}
	if err := v2.Call(wire.MsgLogin, wire.Login{
		User: "bob", Password: pw, Device: wire.FormatAddr(devB),
	}, nil); err != nil {
		t.Fatalf("v2 login: %v", err)
	}
	// Cross-check: presence reported over v2, located over v1.
	if err := v2.Call(wire.MsgPresence, wire.Presence{
		Device: wire.FormatAddr(devB), Room: 6, At: 9, Present: true,
	}, nil); err != nil {
		t.Fatalf("v2 presence: %v", err)
	}
	var loc wire.LocateResult
	if err := v1.Call(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}, &loc); err != nil {
		t.Fatalf("v1 locate: %v", err)
	}
	if loc.Room != 6 {
		t.Errorf("locate room = %d, want 6", loc.Room)
	}
	v1.Close()
	v2.Close()
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned: %v", err)
	}
}

// TestPipelinedOutOfOrderCompletion: a stalled early request must not
// block a later request on the same connection, and both responses must
// carry their own correlation ids. The raw codec (not Client) is used so
// the on-wire response order is observable.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	s := newServer(t)
	release := make(chan struct{})
	s.SetBeforeHandle(func(mt wire.MsgType) {
		if mt == wire.MsgRooms {
			<-release
		}
	})
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	codec := wire.NewFrameCodec(conn)

	slow, err := wire.MarshalBody(wire.MsgRooms, 1, wire.RoomsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := wire.MarshalBody(wire.MsgHello, 2, wire.Hello{Station: "x", Room: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(slow); err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(fast); err != nil {
		t.Fatal(err)
	}

	// The fast request completes first even though it was sent second.
	first, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 2 || first.Type != wire.MsgOK {
		t.Fatalf("first response = type %q seq %d, want ok seq 2", first.Type, first.Seq)
	}
	close(release)
	second, err := codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 1 || second.Type != wire.MsgRoomsResult {
		t.Fatalf("second response = type %q seq %d, want rooms.result seq 1", second.Type, second.Seq)
	}
}

// TestMaxInFlightBoundsPipeline: with MaxInFlight(1) the pipeline is
// strictly serial, so a stalled request delays the next one — proving the
// bound is enforced.
func TestMaxInFlightBoundsPipeline(t *testing.T) {
	s := newServer(t, server.WithMaxInFlight(1))
	if got := s.MaxInFlight(); got != 1 {
		t.Fatalf("MaxInFlight = %d", got)
	}
	entered := make(chan wire.MsgType, 4)
	release := make(chan struct{})
	s.SetBeforeHandle(func(mt wire.MsgType) {
		entered <- mt
		if mt == wire.MsgRooms {
			<-release
		}
	})
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	codec := wire.NewFrameCodec(conn)

	slow, _ := wire.MarshalBody(wire.MsgRooms, 1, wire.RoomsQuery{})
	fast, _ := wire.MarshalBody(wire.MsgHello, 2, wire.Hello{Station: "x", Room: 1})
	if err := codec.Send(slow); err != nil {
		t.Fatal(err)
	}
	if err := codec.Send(fast); err != nil {
		t.Fatal(err)
	}
	if mt := <-entered; mt != wire.MsgRooms {
		t.Fatalf("first handled type = %q", mt)
	}
	select {
	case mt := <-entered:
		t.Fatalf("second request (%q) entered despite in-flight limit 1", mt)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if mt := <-entered; mt != wire.MsgHello {
		t.Fatalf("second handled type = %q", mt)
	}
	// Serial pipeline: responses come back in order.
	for wantSeq := uint64(1); wantSeq <= 2; wantSeq++ {
		env, err := codec.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Seq != wantSeq {
			t.Fatalf("response seq = %d, want %d", env.Seq, wantSeq)
		}
	}
}

// TestBatchRoundTrip: one MsgBatch envelope executes its requests in
// order, inner errors do not abort the batch, and nesting is rejected.
func TestBatchRoundTrip(t *testing.T) {
	s := newServer(t)
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	client := wire.NewClient(wire.NewFrameCodec(conn))

	var b wire.Batch
	if err := b.Add(wire.MsgLogin, wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(wire.MsgLogin, wire.Login{User: "bob", Password: pw, Device: wire.FormatAddr(devB)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(wire.MsgPresence, wire.Presence{Device: wire.FormatAddr(devB), Room: 6, At: 50, Present: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "bob"}); err != nil {
		t.Fatal(err)
	}
	// This one fails (ghost is unknown) but must not poison the batch.
	if err := b.Add(wire.MsgLocate, wire.Locate{Querier: "alice", Target: "ghost"}); err != nil {
		t.Fatal(err)
	}

	var res wire.BatchResult
	if err := client.Call(wire.MsgBatch, b, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("got %d responses, want 5", len(res.Responses))
	}
	for i := 0; i < 3; i++ {
		if err := res.Decode(i, nil); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	var loc wire.LocateResult
	if err := res.Decode(3, &loc); err != nil {
		t.Fatal(err)
	}
	if loc.Room != 6 {
		t.Errorf("batched locate room = %d, want 6", loc.Room)
	}
	var werr *wire.Error
	if err := res.Decode(4, nil); !errors.As(err, &werr) || werr.Code != wire.CodeNotFound {
		t.Errorf("inner error = %v, want not-found", err)
	}

	// Nested batches are rejected with an inner error.
	var nested wire.Batch
	if err := nested.Add(wire.MsgBatch, wire.Batch{}); err != nil {
		t.Fatal(err)
	}
	var nres wire.BatchResult
	if err := client.Call(wire.MsgBatch, nested, &nres); err != nil {
		t.Fatal(err)
	}
	if err := nres.Decode(0, nil); !errors.As(err, &werr) || werr.Code != wire.CodeBadRequest {
		t.Errorf("nested batch error = %v, want bad-request", err)
	}
}

// TestStatsQuery: MsgStats reports the request counters, the dispatch
// histogram and the location-database counters.
func TestStatsQuery(t *testing.T) {
	s := newServer(t)
	conn := servePipe(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	client := wire.NewClient(wire.NewFrameCodec(conn))

	if err := client.Call(wire.MsgLogin, wire.Login{
		User: "bob", Password: pw, Device: wire.FormatAddr(devB),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Call(wire.MsgPresence, wire.Presence{
		Device: wire.FormatAddr(devB), Room: 6, At: 9, Present: true,
	}, nil); err != nil {
		t.Fatal(err)
	}
	var res wire.StatsResult
	if err := client.Call(wire.MsgStats, wire.StatsQuery{}, &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Counters["server.requests.login"]; got != 1 {
		t.Errorf("login counter = %d, want 1", got)
	}
	if got := res.Counters["server.requests.presence"]; got != 1 {
		t.Errorf("presence counter = %d, want 1", got)
	}
	if got := res.Counters["locdb.updates"]; got != 1 {
		t.Errorf("locdb.updates = %d, want 1", got)
	}
	if got := res.Counters["locdb.present"]; got != 1 {
		t.Errorf("locdb.present = %d, want 1", got)
	}
	if got := res.Counters["server.connections"]; got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
	h, ok := res.Histograms["server.dispatch"]
	if !ok || h.Count < 2 {
		t.Errorf("dispatch histogram = %+v (ok=%v)", h, ok)
	}
	if h.P50 <= 0 || h.Max < h.P50 {
		t.Errorf("histogram percentiles inconsistent: %+v", h)
	}
}

// TestV2EOFMidFrame: a connection dropped mid-frame ends the connection
// without a response (it is indistinguishable from a crash, not a
// protocol violation worth answering — but it must not hang the server).
func TestV2EOFMidFrame(t *testing.T) {
	s := newServer(t)
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(b)
	}()
	var hdr [wire.FrameHeaderLen]byte
	hdr[0] = wire.FrameMagic
	hdr[1] = wire.FrameVersion
	binary.BigEndian.PutUint32(hdr[2:], 100)
	a.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := a.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("only half")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after mid-frame EOF")
	}
	b.Close()
}

// TestConcurrentConnectionsShardedDB drives many TCP connections against
// one server to exercise the reader/writer/handler machinery and the
// sharded database together under the race detector.
func TestConcurrentConnectionsShardedDB(t *testing.T) {
	bld, err := building.AcademicDepartment()
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	db, err := locdb.NewSharded(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	const users = 8
	for i := 0; i < users; i++ {
		id := registry.UserID(rune('a' + i))
		if err := reg.Register(id, string(id), pw, registry.RightLocate, registry.RightTrackable); err != nil {
			t.Fatal(err)
		}
	}
	s := server.New(reg, db, bld)
	s.Logf = t.Logf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	errc := make(chan error, users)
	for i := 0; i < users; i++ {
		i := i
		go func() {
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			var client *wire.Client
			if i%2 == 0 {
				client = wire.NewClient(wire.NewFrameCodec(conn))
			} else {
				client = wire.NewClient(wire.NewCodec(conn))
			}
			defer client.Close()
			user := string(rune('a' + i))
			dev := baseband.BDAddr(0xC00 + uint64(i))
			if err := client.Call(wire.MsgLogin, wire.Login{User: user, Password: pw, Device: wire.FormatAddr(dev)}, nil); err != nil {
				errc <- err
				return
			}
			for step := 0; step < 50; step++ {
				room := 1 + (i+step)%10
				if err := client.Call(wire.MsgPresence, wire.Presence{
					Device: wire.FormatAddr(dev), Room: graph.NodeID(room), At: 1, Present: true,
				}, nil); err != nil {
					errc <- err
					return
				}
				var loc wire.LocateResult
				if err := client.Call(wire.MsgLocate, wire.Locate{Querier: user, Target: user}, &loc); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < users; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
	<-serveDone
}
