// Package server implements the BIPS central server machine: it owns the
// user registry, the location database and the building topology, accepts
// presence deltas from workstations, and answers user queries — login,
// logout, locate, and the shortest-path navigation query that is the
// service's headline feature.
//
// The same business-logic methods back two transports: the wire protocol
// over TCP (the Ethernet LAN of the paper, v1 newline-JSON or v2
// length-prefixed frames, sniffed per connection) and direct in-process
// calls used by the simulation and the examples.
//
// # Connection pipeline
//
// Every connection is served by a reader/writer goroutine pair. The reader
// decodes requests and hands each to a handler goroutine, with at most
// MaxInFlight requests executing per connection; the writer serializes
// responses back onto the socket in completion order. Responses therefore
// may arrive out of request order — the envelope Seq is the correlation id
// that ties them back together — which is what lets one slow navigation
// query overlap hundreds of cheap presence deltas on the same persistent
// connection. Business state is safe under this concurrency: the registry
// and the sharded location database carry their own locks and the building
// is immutable after construction.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"bips/internal/analytics"
	"bips/internal/building"
	"bips/internal/fanout"
	"bips/internal/graph"
	"bips/internal/ingest"
	"bips/internal/locdb"
	"bips/internal/metrics"
	"bips/internal/registry"
	"bips/internal/wire"
)

// DefaultMaxInFlight bounds concurrently executing requests per
// connection. It trades per-connection memory (one goroutine plus one
// buffered response slot each) against pipeline depth; see
// docs/OPERATIONS.md for tuning guidance.
const DefaultMaxInFlight = 64

// DefaultFlushBytes bounds how many response/event bytes the writer
// stages between flushes: the writer drains its queue opportunistically
// and flushes when the queue goes idle or the staged bytes pass this
// threshold, whichever comes first. It is also the per-connection write
// buffer size, so the threshold is real — bufio cannot flush earlier on
// its own. See docs/OPERATIONS.md for tuning guidance.
const DefaultFlushBytes = 32 << 10

// Option configures a Server at construction.
type Option func(*Server)

// WithMaxInFlight overrides DefaultMaxInFlight. Values below 1 are
// clamped to 1 (strictly serial per-connection handling).
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.maxInFlight = n
	}
}

// WithFlushBytes overrides DefaultFlushBytes: the staged-bytes
// threshold at which the connection writer flushes even though its
// queue still holds work, and the connection's write-buffer size.
// Larger values coalesce more frames per write(2) under bursts at the
// cost of buffered latency and per-connection memory; values below 1
// select the default.
func WithFlushBytes(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.flushBytes = n
		}
	}
}

// WithIngestOptions passes options through to the ingest pipeline
// (reorder window, gap wait, session limit).
func WithIngestOptions(opts ...ingest.Option) Option {
	return func(s *Server) { s.ingestOpts = append(s.ingestOpts, opts...) }
}

// WithSyncFanout makes the fan-out tree deliver subscriber callbacks
// inline on the goroutine that applied the presence delta, instead of
// the default staged delivery goroutine. In-process deployments (the
// simulation facade) use it so events stay synchronous with the
// simulated clock; serving deployments should keep the default, which
// takes subscriber delivery off the write path.
func WithSyncFanout() Option {
	return func(s *Server) { s.syncFanout = true }
}

// WithFanoutRing overrides the delivery ring capacity
// (fanout.DefaultRing): how many matched (event, subscriber) pairs may
// sit between matching and delivery before publishers block. Ignored
// under WithSyncFanout. Values below 1 select the default; see
// docs/OPERATIONS.md for tuning guidance.
func WithFanoutRing(n int) Option {
	return func(s *Server) { s.fanoutRing = n }
}

// Server is the central BIPS server.
type Server struct {
	reg *registry.Registry
	db  locdb.Store
	bld *building.Building

	maxInFlight int
	flushBytes  int

	// ingest is the sessioned workstation write path (hello / batch /
	// ack); see internal/ingest and docs/PROTOCOL.md section 8.
	ingest     *ingest.Pipeline
	ingestOpts []ingest.Option

	// analytics is the room → presence-interval index behind the
	// contact-tracing, occupancy and dwell queries; like the fan-out
	// tree it consumes every locdb delta exactly once. ownAnalytics
	// records whether the server created it (and must close it) or it
	// was injected with WithAnalytics.
	analytics    *analytics.Engine
	ownAnalytics bool

	// tree is the shared subscription index behind wire-level and
	// in-process push notifications; every locdb delta is fed into it
	// exactly once. See internal/fanout and docs/PROTOCOL.md section 9.
	tree        *fanout.Tree
	syncFanout  bool
	fanoutRing  int
	eventBuffer int
	dropLimit   int
	maxSubs     int
	killGrace   time.Duration

	// Metrics. The hot-path counters are resolved once at construction;
	// everything is also reachable through the registry for MsgStats.
	metrics   *metrics.Registry
	reqCount  map[wire.MsgType]*metrics.Counter
	reqOther  *metrics.Counter
	errCount  *metrics.Counter
	malformed *metrics.Counter
	connTotal *metrics.Counter
	latency   *metrics.Histogram
	evPushed  *metrics.Counter
	evDropped *metrics.Counter
	slowKills *metrics.Counter
	// Flush-coalescing counters (see flushWriter): flushes issued,
	// frames and bytes that left in them. frames/flushes is the
	// syscall amortization MsgStats derives as wire.frames_per_flush.
	wireFlushes    *metrics.Counter
	wireFrames     *metrics.Counter
	wireFlushBytes *metrics.Counter

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	closed   bool

	// beforeHandle, when non-nil, runs in the handler goroutine before
	// dispatch. Tests use it to stall chosen message types and prove
	// out-of-order completion.
	beforeHandle func(wire.MsgType)

	// Logf logs connection-level failures; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// New assembles a server from its three state components. db is any
// location-store backend: the in-memory locdb.DB or the durable
// storage.Durable (WAL + snapshots) — the server is agnostic.
func New(reg *registry.Registry, db locdb.Store, bld *building.Building, opts ...Option) *Server {
	s := &Server{
		reg:         reg,
		db:          db,
		bld:         bld,
		maxInFlight: DefaultMaxInFlight,
		flushBytes:  DefaultFlushBytes,
		eventBuffer: DefaultEventBuffer,
		dropLimit:   DefaultDropLimit,
		maxSubs:     DefaultMaxSubsPerConn,
		killGrace:   defaultKillGrace,
		metrics:     metrics.NewRegistry(),
		conns:       make(map[net.Conn]bool),
		Logf:        log.Printf,
	}
	s.reqCount = make(map[wire.MsgType]*metrics.Counter)
	for _, t := range wire.AllMsgTypes {
		s.reqCount[t] = s.metrics.Counter("server.requests." + string(t))
	}
	s.reqOther = s.metrics.Counter("server.requests.unknown")
	s.errCount = s.metrics.Counter("server.errors")
	s.malformed = s.metrics.Counter("server.malformed")
	s.connTotal = s.metrics.Counter("server.connections")
	s.latency = s.metrics.Histogram("server.dispatch")
	s.evPushed = s.metrics.Counter("fanout.events_pushed")
	s.evDropped = s.metrics.Counter("fanout.events_dropped")
	s.slowKills = s.metrics.Counter("fanout.slow_kills")
	s.wireFlushes = s.metrics.Counter("wire.flushes")
	s.wireFrames = s.metrics.Counter("wire.frames")
	s.wireFlushBytes = s.metrics.Counter("wire.flush_bytes")
	for _, opt := range opts {
		opt(s)
	}
	s.ingest = ingest.NewPipeline(db, s.resolveDelta, s.ingestOpts...)
	// Feed every location delta into the fan-out tree exactly once —
	// batched, through the sink interface, so a whole ingest frame
	// reaches the tree as one PublishBatch — and prime the tree's room
	// view from a restored durable backend (no traffic can flow yet —
	// the caller has not started serving).
	s.tree = fanout.NewWithConfig(fanout.Config{Ring: s.fanoutRing, Sync: s.syncFanout})
	db.SubscribeSink(s.tree)
	s.tree.Seed(db.All())
	// The analytics engine rides the same delta stream; the sink
	// registration lets it ingest a whole frame under one lock. Seeding
	// from the store's dump restores a durable backend's history after
	// restart.
	if s.analytics == nil {
		s.analytics = analytics.NewMemory(db.HistoryLimit())
		s.ownAnalytics = true
	}
	db.SubscribeSink(s.analytics)
	s.analytics.Seed(db.Dump())
	return s
}

// Registry exposes the user registry (for administrative tooling).
func (s *Server) Registry() *registry.Registry { return s.reg }

// DB exposes the location store.
func (s *Server) DB() locdb.Store { return s.db }

// Building exposes the topology.
func (s *Server) Building() *building.Building { return s.bld }

// Metrics exposes the server's metric registry.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// MaxInFlight reports the per-connection pipeline depth limit.
func (s *Server) MaxInFlight() int { return s.maxInFlight }

// Ingest exposes the workstation ingestion pipeline (for tooling and
// tests observing session state).
func (s *Server) Ingest() *ingest.Pipeline { return s.ingest }

// Fanout exposes the shared subscription index, so in-process
// consumers (the simulation facade's event stream) ride the same tree
// as wire subscribers and observe deltas in the same order.
func (s *Server) Fanout() *fanout.Tree { return s.tree }

// --- Business logic -------------------------------------------------------

// Login authenticates and binds a user to a device.
func (s *Server) Login(req wire.Login) error {
	dev, err := wire.ParseAddr(req.Device)
	if err != nil {
		return err
	}
	return s.reg.Login(registry.UserID(req.User), req.Password, dev)
}

// Logout releases the user's binding and drops the device from the
// location database (BIPS stops tracking on logout).
func (s *Server) Logout(req wire.Logout) error {
	id := registry.UserID(req.User)
	dev, err := s.reg.DeviceOf(id)
	if err != nil {
		return err
	}
	if err := s.reg.Logout(id); err != nil {
		return err
	}
	s.db.Drop(dev)
	return nil
}

// resolveDelta is the per-delta business validation shared by the
// single-delta path (ApplyPresence) and the batched ingest pipeline: it
// parses the device address, checks the room against the building, and
// reports untracked devices (not logged in) as skip-silently.
func (s *Server) resolveDelta(p wire.Presence) (locdb.Mutation, bool, error) {
	dev, err := wire.ParseAddr(p.Device)
	if err != nil {
		return locdb.Mutation{}, false, err
	}
	if _, ok := s.bld.Room(p.Room); !ok {
		return locdb.Mutation{}, false, fmt.Errorf("%w: room %d", building.ErrUnknownRoom, p.Room)
	}
	// Only logged-in devices are tracked; silently ignore the rest
	// (anonymous devices may answer inquiries but BIPS does not track
	// them).
	if _, err := s.reg.UserOf(dev); err != nil {
		return locdb.Mutation{}, false, nil
	}
	op := locdb.MutPresence
	if !p.Present {
		op = locdb.MutAbsence
	}
	return locdb.Mutation{Op: op, Dev: dev, Piconet: p.Room, At: p.At}, true, nil
}

// ApplyPresence applies a workstation's presence/absence delta.
func (s *Server) ApplyPresence(p wire.Presence) error {
	m, track, err := s.resolveDelta(p)
	if err != nil {
		return err
	}
	if !track {
		return nil
	}
	if m.Op == locdb.MutPresence {
		s.db.SetPresence(m.Dev, m.Piconet, m.At)
	} else {
		s.db.SetAbsence(m.Dev, m.Piconet, m.At)
	}
	return nil
}

// Locate runs the paper's spatio-temporal query with its access checks:
// the querying user must hold the locate right, the target must be
// trackable and logged in.
func (s *Server) Locate(req wire.Locate) (wire.LocateResult, error) {
	dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
	if err != nil {
		return wire.LocateResult{}, err
	}
	fix, err := s.db.Locate(dev)
	if err != nil {
		return wire.LocateResult{}, err
	}
	return wire.LocateResult{Room: fix.Piconet, RoomName: s.roomName(fix.Piconet), At: fix.At}, nil
}

// LocateAt runs the historical spatio-temporal query with the same
// access checks as Locate: the piconet the target was in at tick At
// (more precisely, the presence run covering that tick, as far back as
// the bounded history reaches).
func (s *Server) LocateAt(req wire.LocateAt) (wire.LocateResult, error) {
	dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
	if err != nil {
		return wire.LocateResult{}, err
	}
	fix, err := s.db.LocateAt(dev, req.At)
	if err != nil {
		return wire.LocateResult{}, err
	}
	return wire.LocateResult{Room: fix.Piconet, RoomName: s.roomName(fix.Piconet), At: fix.At}, nil
}

// Trajectory runs the time-window spatio-temporal query with the same
// access checks as Locate: every presence run of the target overlapping
// [From, To], oldest first. A window before the recorded history yields
// an empty step list, not an error.
func (s *Server) Trajectory(req wire.TrajectoryQuery) (wire.TrajectoryResult, error) {
	dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
	if err != nil {
		return wire.TrajectoryResult{}, err
	}
	fixes := s.db.Trajectory(dev, req.From, req.To)
	out := wire.TrajectoryResult{Steps: make([]wire.TrajectoryStep, 0, len(fixes))}
	for _, fix := range fixes {
		out.Steps = append(out.Steps, wire.TrajectoryStep{
			Room: fix.Piconet, RoomName: s.roomName(fix.Piconet), At: fix.At,
		})
	}
	return out, nil
}

// roomName resolves a room id to its display name ("" when the id is
// not in the building — possible for history recorded under an older
// floor plan).
func (s *Server) roomName(id graph.NodeID) string {
	if r, ok := s.bld.Room(id); ok {
		return r.Name
	}
	return ""
}

// Path answers the navigation query: the shortest path from the querier's
// current piconet to the target's current piconet, as a room sequence.
func (s *Server) Path(req wire.PathQuery) (wire.PathResult, error) {
	// The querier must itself be logged in and located.
	qdev, err := s.reg.DeviceOf(registry.UserID(req.Querier))
	if err != nil {
		return wire.PathResult{}, err
	}
	qfix, err := s.db.Locate(qdev)
	if err != nil {
		return wire.PathResult{}, fmt.Errorf("querier position: %w", err)
	}
	loc, err := s.Locate(wire.Locate{Querier: req.Querier, Target: req.Target})
	if err != nil {
		return wire.PathResult{}, err
	}
	p, err := s.bld.ShortestPath(qfix.Piconet, loc.Room)
	if err != nil {
		return wire.PathResult{}, err
	}
	return wire.PathResult{
		Rooms:       p.Nodes,
		Names:       s.bld.PathNames(p),
		TotalMeters: float64(p.Total),
	}, nil
}

// RoomsInfo lists the building's rooms for the wire protocol's floor-plan
// query.
func (s *Server) RoomsInfo() wire.RoomsResult {
	rooms := s.bld.Rooms()
	out := wire.RoomsResult{Rooms: make([]wire.RoomInfo, 0, len(rooms))}
	for _, r := range rooms {
		out.Rooms = append(out.Rooms, wire.RoomInfo{
			ID: r.ID, Name: r.Name, X: r.Center.X, Y: r.Center.Y,
		})
	}
	return out
}

// StatsResult snapshots the server's metrics for the MsgStats query: the
// server's own counters and dispatch-latency histograms plus the location
// database's activity counters under the "locdb." prefix.
func (s *Server) StatsResult() wire.StatsResult {
	snap := s.metrics.Snapshot()
	out := wire.StatsResult{
		Counters:   snap.Counters,
		Histograms: make(map[string]wire.HistogramStats, len(snap.Histograms)),
	}
	for name, h := range snap.Histograms {
		out.Histograms[name] = wire.HistogramStats{
			Count: h.Count,
			Sum:   h.Sum,
			Min:   h.Min,
			Max:   h.Max,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	treeStats := s.tree.Stats()
	out.Counters["fanout.subscriptions"] = int64(treeStats.Subscriptions)
	out.Counters["fanout.published"] = treeStats.Published
	out.Counters["fanout.delivered"] = treeStats.Delivered
	out.Counters["fanout.backlog"] = int64(treeStats.Backlog)
	dbStats := s.db.Stats()
	out.Counters["locdb.updates"] = dbStats.Updates
	out.Counters["locdb.absences"] = dbStats.Absences
	out.Counters["locdb.queries"] = dbStats.Queries
	out.Counters["locdb.present"] = int64(dbStats.Present)
	out.Counters["locdb.shards"] = int64(dbStats.Shards)
	for name, v := range s.ingest.Stats() {
		out.Counters["ingest."+name] = v
	}
	for name, v := range s.analytics.Stats() {
		out.Counters["analytics."+name] = v
	}
	// A durable backend additionally reports its WAL/snapshot counters.
	if ss, ok := s.db.(interface{ StorageStats() map[string]int64 }); ok {
		for name, v := range ss.StorageStats() {
			out.Counters["storage."+name] = v
		}
	}
	// Derived syscall-amortization ratio: how many frames left per
	// flush on average. 1 means flush-per-frame (no coalescing win);
	// the mixed-workload bar is >= 4 (BENCH_PR10.json).
	if flushes := out.Counters["wire.flushes"]; flushes > 0 {
		out.Counters["wire.frames_per_flush"] = out.Counters["wire.frames"] / flushes
	}
	return out
}

// --- Wire transport -------------------------------------------------------

// errorCode maps business errors onto wire error codes.
func errorCode(err error) string {
	switch {
	case errors.Is(err, registry.ErrDenied):
		return wire.CodeDenied
	case errors.Is(err, registry.ErrBadPassword),
		errors.Is(err, registry.ErrAlreadyOnline),
		errors.Is(err, registry.ErrDeviceInUse):
		return wire.CodeAuth
	case errors.Is(err, registry.ErrUnknownUser),
		errors.Is(err, registry.ErrNotLoggedIn),
		errors.Is(err, locdb.ErrNotPresent),
		errors.Is(err, building.ErrUnknownRoom),
		errors.Is(err, ingest.ErrUnknownSession),
		errors.Is(err, ErrUnknownSubscription):
		return wire.CodeNotFound
	case errors.Is(err, registry.ErrBadDevice),
		errors.Is(err, registry.ErrEmptyUserID),
		errors.Is(err, ingest.ErrSeqGap),
		errors.Is(err, ingest.ErrSessionLimit),
		errors.Is(err, ErrDuplicateSubscription),
		errors.Is(err, ErrSubscriptionLimit),
		errors.Is(err, wire.ErrMalformed):
		return wire.CodeBadRequest
	case errors.Is(err, errSlowConsumer):
		return wire.CodeSlowConsumer
	default:
		return wire.CodeInternal
	}
}

// errorEnvelope builds a best-effort MsgError response.
func errorEnvelope(seq uint64, err error) wire.Envelope {
	resp, merr := wire.MarshalBody(wire.MsgError, seq, wire.Error{
		Code:    errorCode(err),
		Message: err.Error(),
	})
	if merr != nil {
		// Marshalling a flat struct cannot fail; fall back to an empty
		// error envelope.
		return wire.Envelope{Type: wire.MsgError, Seq: seq}
	}
	return resp
}

// outMsg is one response (or push event) queued for the writer: either a
// plain envelope or an already-encoded payload in a pooled buffer. When
// buf is set, the queue owns it until the writer (or the teardown drain)
// releases it after the send.
type outMsg struct {
	env wire.Envelope
	buf *wire.Buf
}

// flushWriter batches frame writes on one transport: pooled payloads
// are staged with SendPayloadNoFlush and leave in one write(2) when the
// owning goroutine observes its queue idle (flush-on-idle) or the
// staged bytes pass the server's flush threshold. On a transport
// without BatchSender (foreign Transport implementations) every write
// degrades to the flush-per-send path. After a send error it keeps
// accepting — and releasing — messages without touching the dead
// stream, so producers never block on a gone connection.
//
// A flushWriter belongs to one goroutine. The response writer and the
// subscription pusher each own one over the same transport; the codec's
// write mutex keeps concurrently staged frames atomic, and either
// side's Flush simply pushes out whatever both have staged (the
// counters still attribute every frame to exactly one flush).
type flushWriter struct {
	srv        *Server
	tr         wire.Transport
	ps         wire.PayloadSender
	bs         wire.BatchSender
	limit      int // flush threshold in staged bytes
	overhead   int // framing bytes added per staged payload
	sendFailed bool
	frames     int // frames staged since the last flush
	bytes      int // wire bytes staged since the last flush
}

func newFlushWriter(s *Server, tr wire.Transport) *flushWriter {
	fw := &flushWriter{srv: s, tr: tr, limit: s.flushBytes, overhead: 1}
	fw.ps, _ = tr.(wire.PayloadSender)
	fw.bs, _ = tr.(wire.BatchSender)
	if _, ok := tr.(*wire.FrameCodec); ok {
		fw.overhead = wire.FrameHeaderLen
	}
	return fw
}

// write sends one queued message, releasing its pooled buffer in every
// outcome. Encoded payloads are staged without flushing; envelope
// messages (foreign transports, pre-sniff errors) flush what is staged
// first so the stream order is preserved, then send-and-flush.
func (fw *flushWriter) write(m outMsg) {
	if m.buf != nil && fw.bs != nil {
		if !fw.sendFailed {
			if err := fw.bs.SendPayloadNoFlush(m.buf.B); err != nil {
				fw.sendFailed = true
			} else {
				fw.frames++
				fw.bytes += len(m.buf.B) + fw.overhead
			}
		}
		m.buf.Release()
		if fw.bytes >= fw.limit {
			fw.flush()
		}
		return
	}
	fw.flush()
	if !fw.sendFailed {
		var err error
		if m.buf != nil {
			err = fw.ps.SendPayload(m.buf.B)
		} else {
			err = fw.tr.Send(m.env)
		}
		if err != nil {
			fw.sendFailed = true
		}
	}
	if m.buf != nil {
		m.buf.Release()
	}
}

// flush pushes everything staged onto the stream and settles the
// coalescing counters. A no-op when nothing is staged.
func (fw *flushWriter) flush() {
	if fw.frames == 0 {
		return
	}
	frames, bytes := fw.frames, fw.bytes
	fw.frames, fw.bytes = 0, 0
	if fw.sendFailed {
		return
	}
	if err := fw.bs.Flush(); err != nil {
		fw.sendFailed = true
		return
	}
	fw.srv.wireFlushes.Inc()
	fw.srv.wireFrames.Add(int64(frames))
	fw.srv.wireFlushBytes.Add(int64(bytes))
}

// inlineRead reports whether a request type is dispatched inline on the
// reader goroutine: cheap read-mostly queries whose handling costs less
// than the goroutine handoff they would otherwise pay. Inline requests
// bypass the MaxInFlight bound (they cannot pile up — the reader handles
// at most one at a time) and never manage subscriptions, so they are
// safe without a handler goroutine.
func inlineRead(t wire.MsgType) bool {
	switch t {
	case wire.MsgLocate, wire.MsgLocateAt, wire.MsgStats:
		return true
	}
	return false
}

// ServeConn handles one protocol connection until EOF. It is exported so
// tests and in-memory deployments can drive the server over net.Pipe.
//
// The connection is served by this goroutine acting as the reader, one
// writer goroutine serializing responses, and up to MaxInFlight transient
// handler goroutines — except for the cheap read queries (inlineRead),
// which the reader dispatches itself to skip the per-request goroutine
// handoff. Requests arrive in pooled receive buffers and responses leave
// in pooled send buffers; see docs/ARCHITECTURE.md, "Buffer ownership
// and release rules". A malformed message is answered with a MsgError
// (correlation id 0, since a frame that failed to parse has no
// trustworthy sequence number) and then the connection is closed; a
// transport error just ends the connection.
func (s *Server) ServeConn(conn io.ReadWriter) {
	s.connTotal.Inc()
	tr, terr := wire.ServerTransportBuffered(conn, s.flushBytes)
	if tr == nil {
		// Peek failed before a single byte arrived: nothing to answer.
		return
	}

	// Both codecs ServerTransport builds implement the pooled fast
	// paths; the assertions keep a foreign Transport working through the
	// allocating envelope path.
	br, brOK := tr.(wire.BufRecver)
	_, psOK := tr.(wire.PayloadSender)
	fast := brOK && psOK

	// Writer goroutine: the single owner of response sends. It drains
	// the queue opportunistically — every queued response is staged
	// into the write buffer and the batch leaves in one flush when the
	// queue goes momentarily empty (or the staged bytes pass the
	// flush-bytes threshold), so a pipelined burst costs one write(2)
	// instead of one per response. It keeps draining (and releasing
	// pooled buffers) after a send failure so handler goroutines can
	// never block on a dead connection.
	out := make(chan outMsg, s.maxInFlight+1)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		fw := newFlushWriter(s, tr)
		for {
			m, ok := <-out
			for ok {
				fw.write(m)
				select {
				case m, ok = <-out:
					continue
				default:
				}
				break
			}
			// Queue idle (or closed): the whole batch leaves now.
			fw.flush()
			if !ok {
				return
			}
		}
	}()
	finish := func() {
		close(out)
		<-writerDone
		// Close the underlying stream (when closable) so peers see EOF
		// as soon as the final response is flushed — in particular after
		// a malformed message was answered.
		_ = tr.Close()
	}

	if terr != nil {
		// The very first byte already ruled out both protocol versions.
		s.malformed.Inc()
		out <- outMsg{env: errorEnvelope(0, terr)}
		finish()
		return
	}

	// Per-connection subscription state. The raw closer (when the stream
	// is closable at all) lets the slow-consumer backstop sever the
	// socket without taking transport locks.
	raw, _ := conn.(io.Closer)
	cs := newConnSubs(s, tr, raw)

	var handlers sync.WaitGroup
	sem := make(chan struct{}, s.maxInFlight)
	// The reader owns one receive buffer for the whole connection: an
	// inline request's body is dead once dispatchAppend returns, so the
	// buffer is simply reused. Only a request handed to a handler
	// goroutine takes the buffer with it (the handler releases it) and
	// the reader replaces its own from the pool.
	var readBuf *wire.Buf
	if fast {
		readBuf = wire.GetBuf()
	}
	for {
		var env wire.Envelope
		var err error
		if fast {
			env, readBuf.B, err = br.RecvBuf(readBuf.B)
		} else {
			env, err = tr.Recv()
		}
		if err != nil {
			if errors.Is(err, wire.ErrMalformed) {
				// Answer with a reason before closing instead of
				// silently dropping the connection.
				s.malformed.Inc()
				out <- outMsg{env: errorEnvelope(0, err)}
			}
			break
		}
		if fast && inlineRead(env.Type) {
			if s.beforeHandle != nil {
				s.beforeHandle(env.Type)
			}
			start := time.Now()
			resp := wire.GetBuf()
			resp.B = s.dispatchAppend(cs, env, resp.B)
			s.latency.ObserveDuration(time.Since(start))
			out <- outMsg{buf: resp}
			continue
		}
		var reqBuf *wire.Buf
		if fast {
			reqBuf, readBuf = readBuf, wire.GetBuf()
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(env wire.Envelope, reqBuf *wire.Buf) {
			defer handlers.Done()
			defer func() { <-sem }()
			if s.beforeHandle != nil {
				s.beforeHandle(env.Type)
			}
			start := time.Now()
			if fast {
				resp := wire.GetBuf()
				resp.B = s.dispatchAppend(cs, env, resp.B)
				s.latency.ObserveDuration(time.Since(start))
				// dispatchAppend decoded everything it needs out of
				// env.Body, so the request buffer can go back.
				reqBuf.Release()
				out <- outMsg{buf: resp}
				return
			}
			resp := s.dispatch(cs, env)
			s.latency.ObserveDuration(time.Since(start))
			out <- outMsg{env: resp}
		}(env, reqBuf)
	}
	if readBuf != nil {
		readBuf.Release()
	}
	handlers.Wait()
	// Handlers are done, so nobody can add subscriptions anymore: cancel
	// the connection's fan-out registrations and stop the pusher before
	// the writer flushes out.
	cs.shutdown()
	finish()
}

// dispatchAppend executes one request and appends the encoded response
// envelope to buf. The hot read and ingest types are decoded and encoded
// through the wire package's zero-allocation paths; everything else
// delegates to dispatch and re-encodes its envelope, which costs what it
// always did. env.Body may alias a pooled request buffer — it is dead
// once this function returns.
func (s *Server) dispatchAppend(cs *connSubs, env wire.Envelope, buf []byte) []byte {
	fail := func(err error) []byte {
		s.errCount.Inc()
		werr := wire.Error{Code: errorCode(err), Message: err.Error()}
		return wire.AppendEnvelope(buf, wire.MsgError, env.Seq, &werr)
	}
	switch env.Type {
	case wire.MsgLocate:
		s.reqCount[wire.MsgLocate].Inc()
		// The fallback decodes into its own variable so taking its
		// address for UnmarshalBody does not push the hot-path q (and
		// everything reachable from it) onto the heap; likewise the
		// response is spelled out through AppendEnvelopePrefix instead
		// of boxed into AppendEnvelope's Appender parameter.
		var q wire.Locate
		if !q.DecodeBody(env.Body) {
			var slow wire.Locate
			if err := wire.UnmarshalBody(env, &slow); err != nil {
				return fail(err)
			}
			q = slow
		}
		res, err := s.Locate(q)
		if err != nil {
			return fail(err)
		}
		buf = wire.AppendEnvelopePrefix(buf, wire.MsgLocateResult, env.Seq)
		buf = res.AppendTo(buf)
		return append(buf, '}')
	case wire.MsgLocateAt:
		s.reqCount[wire.MsgLocateAt].Inc()
		var q wire.LocateAt
		if !q.DecodeBody(env.Body) {
			var slow wire.LocateAt
			if err := wire.UnmarshalBody(env, &slow); err != nil {
				return fail(err)
			}
			q = slow
		}
		res, err := s.LocateAt(q)
		if err != nil {
			return fail(err)
		}
		buf = wire.AppendEnvelopePrefix(buf, wire.MsgLocateResult, env.Seq)
		buf = res.AppendTo(buf)
		return append(buf, '}')
	case wire.MsgPresenceBatch:
		s.reqCount[wire.MsgPresenceBatch].Inc()
		var b wire.PresenceBatch
		if err := wire.UnmarshalBody(env, &b); err != nil {
			return fail(err)
		}
		ack, err := s.ingest.Apply(b)
		if err != nil {
			return fail(err)
		}
		return wire.AppendEnvelope(buf, wire.MsgIngestAck, env.Seq, &ack)
	default:
		return wire.AppendEnvelopeRaw(buf, s.dispatch(cs, env))
	}
}

// DispatchBytes executes one decoded request envelope through the
// append-style dispatch path and returns buf extended with the encoded
// response envelope. It is the transport-free entry point the
// allocation-budget suite and benchmarks measure; ServeConn goes
// through the same code. env.Body may alias a caller-owned buffer — it
// is dead once the call returns. Subscription management types are not
// supported (they need per-connection state).
func (s *Server) DispatchBytes(env wire.Envelope, buf []byte) []byte {
	return s.dispatchAppend(nil, env, buf)
}

// dispatch executes one request envelope and returns the response
// envelope. It is called from handler goroutines and must stay safe for
// concurrent use; all mutable state it touches is behind the registry and
// location-database locks. cs carries the connection's subscription
// state; it is nil inside a batch, where subscription management is not
// allowed (a batch answers once, a subscription pushes forever).
func (s *Server) dispatch(cs *connSubs, env wire.Envelope) wire.Envelope {
	if c, ok := s.reqCount[env.Type]; ok {
		c.Inc()
	} else {
		s.reqOther.Inc()
	}
	fail := func(err error) wire.Envelope {
		s.errCount.Inc()
		return errorEnvelope(env.Seq, err)
	}
	ok := func(t wire.MsgType, body any) wire.Envelope {
		resp, err := wire.MarshalBody(t, env.Seq, body)
		if err != nil {
			return fail(err)
		}
		return resp
	}

	switch env.Type {
	case wire.MsgHello:
		var h wire.Hello
		if err := wire.UnmarshalBody(env, &h); err != nil {
			return fail(err)
		}
		if _, okRoom := s.bld.Room(h.Room); !okRoom {
			return fail(fmt.Errorf("%w: room %d", building.ErrUnknownRoom, h.Room))
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgPresence:
		var p wire.Presence
		if err := wire.UnmarshalBody(env, &p); err != nil {
			return fail(err)
		}
		if err := s.ApplyPresence(p); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLogin:
		var l wire.Login
		if err := wire.UnmarshalBody(env, &l); err != nil {
			return fail(err)
		}
		if err := s.Login(l); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLogout:
		var l wire.Logout
		if err := wire.UnmarshalBody(env, &l); err != nil {
			return fail(err)
		}
		if err := s.Logout(l); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLocate:
		var q wire.Locate
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Locate(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgLocateResult, res)
	case wire.MsgLocateAt:
		var q wire.LocateAt
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.LocateAt(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgLocateResult, res)
	case wire.MsgTrajectory:
		var q wire.TrajectoryQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Trajectory(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgTrajectoryResult, res)
	case wire.MsgPath:
		var q wire.PathQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Path(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgPathResult, res)
	case wire.MsgIngestHello:
		var h wire.IngestHello
		if err := wire.UnmarshalBody(env, &h); err != nil {
			return fail(err)
		}
		if _, okRoom := s.bld.Room(h.Room); !okRoom {
			return fail(fmt.Errorf("%w: room %d", building.ErrUnknownRoom, h.Room))
		}
		ackRes, err := s.ingest.Hello(h)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgIngestAck, ackRes)
	case wire.MsgPresenceBatch:
		var b wire.PresenceBatch
		if err := wire.UnmarshalBody(env, &b); err != nil {
			return fail(err)
		}
		ackRes, err := s.ingest.Apply(b)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgIngestAck, ackRes)
	case wire.MsgSubscribe:
		var sub wire.Subscribe
		if err := wire.UnmarshalBody(env, &sub); err != nil {
			return fail(err)
		}
		if err := sub.Validate(); err != nil {
			return fail(err)
		}
		if cs == nil {
			return fail(fmt.Errorf("%w: subscribe inside a batch", wire.ErrMalformed))
		}
		f, err := s.resolveFilter(sub)
		if err != nil {
			return fail(err)
		}
		if err := cs.add(sub.ID, f); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgUnsubscribe:
		var unsub wire.Unsubscribe
		if err := wire.UnmarshalBody(env, &unsub); err != nil {
			return fail(err)
		}
		if err := unsub.Validate(); err != nil {
			return fail(err)
		}
		if cs == nil {
			return fail(fmt.Errorf("%w: unsubscribe inside a batch", wire.ErrMalformed))
		}
		if err := cs.drop(unsub.ID); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgContacts:
		var q wire.ContactsQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Contacts(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgContactsResult, res)
	case wire.MsgOccupancy:
		var q wire.OccupancyQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Occupancy(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgOccupancyResult, res)
	case wire.MsgDwell:
		var q wire.DwellQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Dwell(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgDwellResult, res)
	case wire.MsgRooms:
		return ok(wire.MsgRoomsResult, s.RoomsInfo())
	case wire.MsgStats:
		return ok(wire.MsgStatsResult, s.StatsResult())
	case wire.MsgBatch:
		var b wire.Batch
		if err := wire.UnmarshalBody(env, &b); err != nil {
			return fail(err)
		}
		res := wire.BatchResult{Responses: make([]wire.Envelope, 0, len(b.Requests))}
		for _, req := range b.Requests {
			if req.Type == wire.MsgBatch {
				s.errCount.Inc()
				res.Responses = append(res.Responses,
					errorEnvelope(req.Seq, fmt.Errorf("%w: nested batch", wire.ErrMalformed)))
				continue
			}
			// Sequential execution in request order; inner failures
			// become inner MsgError responses without aborting the
			// batch. Subscription management is excluded (nil cs).
			res.Responses = append(res.Responses, s.dispatch(nil, req))
		}
		return ok(wire.MsgBatchResult, res)
	default:
		return fail(fmt.Errorf("unknown message type %q", env.Type))
	}
}

// Serve accepts connections until Close. It returns nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				// ServeConn already closed the transport; only report
				// unexpected close failures.
				if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) && s.Logf != nil {
					s.Logf("server: close conn: %v", err)
				}
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, closes open connections and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	// Connections are gone, so no subscriber callbacks remain; drain
	// and stop the tree's delivery stage before tearing down analytics.
	s.tree.Close()
	if s.ownAnalytics {
		if aerr := s.analytics.Close(); aerr != nil && err == nil {
			err = aerr
		}
	}
	return err
}
