// Package server implements the BIPS central server machine: it owns the
// user registry, the location database and the building topology, accepts
// presence deltas from workstations, and answers user queries — login,
// logout, locate, and the shortest-path navigation query that is the
// service's headline feature.
//
// The same business-logic methods back two transports: the newline-JSON
// TCP protocol of package wire (the Ethernet LAN of the paper) and direct
// in-process calls used by the simulation and the examples.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"bips/internal/building"
	"bips/internal/locdb"
	"bips/internal/registry"
	"bips/internal/wire"
)

// Server is the central BIPS server.
type Server struct {
	reg *registry.Registry
	db  *locdb.DB
	bld *building.Building

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	closed   bool

	// Logf logs connection-level failures; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// New assembles a server from its three state components.
func New(reg *registry.Registry, db *locdb.DB, bld *building.Building) *Server {
	return &Server{
		reg:   reg,
		db:    db,
		bld:   bld,
		conns: make(map[net.Conn]bool),
		Logf:  log.Printf,
	}
}

// Registry exposes the user registry (for administrative tooling).
func (s *Server) Registry() *registry.Registry { return s.reg }

// DB exposes the location database.
func (s *Server) DB() *locdb.DB { return s.db }

// Building exposes the topology.
func (s *Server) Building() *building.Building { return s.bld }

// --- Business logic -------------------------------------------------------

// Login authenticates and binds a user to a device.
func (s *Server) Login(req wire.Login) error {
	dev, err := wire.ParseAddr(req.Device)
	if err != nil {
		return err
	}
	return s.reg.Login(registry.UserID(req.User), req.Password, dev)
}

// Logout releases the user's binding and drops the device from the
// location database (BIPS stops tracking on logout).
func (s *Server) Logout(req wire.Logout) error {
	id := registry.UserID(req.User)
	dev, err := s.reg.DeviceOf(id)
	if err != nil {
		return err
	}
	if err := s.reg.Logout(id); err != nil {
		return err
	}
	s.db.Drop(dev)
	return nil
}

// ApplyPresence applies a workstation's presence/absence delta.
func (s *Server) ApplyPresence(p wire.Presence) error {
	dev, err := wire.ParseAddr(p.Device)
	if err != nil {
		return err
	}
	if _, ok := s.bld.Room(p.Room); !ok {
		return fmt.Errorf("%w: room %d", building.ErrUnknownRoom, p.Room)
	}
	// Only logged-in devices are tracked; silently ignore the rest
	// (anonymous devices may answer inquiries but BIPS does not track
	// them).
	if _, err := s.reg.UserOf(dev); err != nil {
		return nil
	}
	if p.Present {
		s.db.SetPresence(dev, p.Room, p.At)
	} else {
		s.db.SetAbsence(dev, p.Room, p.At)
	}
	return nil
}

// Locate runs the paper's spatio-temporal query with its access checks:
// the querying user must hold the locate right, the target must be
// trackable and logged in.
func (s *Server) Locate(req wire.Locate) (wire.LocateResult, error) {
	dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
	if err != nil {
		return wire.LocateResult{}, err
	}
	fix, err := s.db.Locate(dev)
	if err != nil {
		return wire.LocateResult{}, err
	}
	name := ""
	if r, ok := s.bld.Room(fix.Piconet); ok {
		name = r.Name
	}
	return wire.LocateResult{Room: fix.Piconet, RoomName: name, At: fix.At}, nil
}

// Path answers the navigation query: the shortest path from the querier's
// current piconet to the target's current piconet, as a room sequence.
func (s *Server) Path(req wire.PathQuery) (wire.PathResult, error) {
	// The querier must itself be logged in and located.
	qdev, err := s.reg.DeviceOf(registry.UserID(req.Querier))
	if err != nil {
		return wire.PathResult{}, err
	}
	qfix, err := s.db.Locate(qdev)
	if err != nil {
		return wire.PathResult{}, fmt.Errorf("querier position: %w", err)
	}
	loc, err := s.Locate(wire.Locate{Querier: req.Querier, Target: req.Target})
	if err != nil {
		return wire.PathResult{}, err
	}
	p, err := s.bld.ShortestPath(qfix.Piconet, loc.Room)
	if err != nil {
		return wire.PathResult{}, err
	}
	return wire.PathResult{
		Rooms:       p.Nodes,
		Names:       s.bld.PathNames(p),
		TotalMeters: float64(p.Total),
	}, nil
}

// RoomsInfo lists the building's rooms for the wire protocol's floor-plan
// query.
func (s *Server) RoomsInfo() wire.RoomsResult {
	rooms := s.bld.Rooms()
	out := wire.RoomsResult{Rooms: make([]wire.RoomInfo, 0, len(rooms))}
	for _, r := range rooms {
		out.Rooms = append(out.Rooms, wire.RoomInfo{
			ID: r.ID, Name: r.Name, X: r.Center.X, Y: r.Center.Y,
		})
	}
	return out
}

// --- Wire transport -------------------------------------------------------

// errorCode maps business errors onto wire error codes.
func errorCode(err error) string {
	switch {
	case errors.Is(err, registry.ErrDenied):
		return wire.CodeDenied
	case errors.Is(err, registry.ErrBadPassword),
		errors.Is(err, registry.ErrAlreadyOnline),
		errors.Is(err, registry.ErrDeviceInUse):
		return wire.CodeAuth
	case errors.Is(err, registry.ErrUnknownUser),
		errors.Is(err, registry.ErrNotLoggedIn),
		errors.Is(err, locdb.ErrNotPresent),
		errors.Is(err, building.ErrUnknownRoom):
		return wire.CodeNotFound
	case errors.Is(err, registry.ErrBadDevice),
		errors.Is(err, registry.ErrEmptyUserID):
		return wire.CodeBadRequest
	default:
		return wire.CodeInternal
	}
}

// ServeConn handles one protocol connection until EOF. It is exported so
// tests and in-memory deployments can drive the server over net.Pipe.
func (s *Server) ServeConn(conn io.ReadWriter) {
	codec := wire.NewCodec(conn)
	for {
		env, err := codec.Recv()
		if err != nil {
			return
		}
		resp := s.dispatch(env)
		if err := codec.Send(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(env wire.Envelope) wire.Envelope {
	fail := func(err error) wire.Envelope {
		resp, merr := wire.MarshalBody(wire.MsgError, env.Seq, wire.Error{
			Code:    errorCode(err),
			Message: err.Error(),
		})
		if merr != nil {
			// Marshalling a flat struct cannot fail; fall back to
			// an empty error envelope.
			return wire.Envelope{Type: wire.MsgError, Seq: env.Seq}
		}
		return resp
	}
	ok := func(t wire.MsgType, body any) wire.Envelope {
		resp, err := wire.MarshalBody(t, env.Seq, body)
		if err != nil {
			return fail(err)
		}
		return resp
	}

	switch env.Type {
	case wire.MsgHello:
		var h wire.Hello
		if err := wire.UnmarshalBody(env, &h); err != nil {
			return fail(err)
		}
		if _, okRoom := s.bld.Room(h.Room); !okRoom {
			return fail(fmt.Errorf("%w: room %d", building.ErrUnknownRoom, h.Room))
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgPresence:
		var p wire.Presence
		if err := wire.UnmarshalBody(env, &p); err != nil {
			return fail(err)
		}
		if err := s.ApplyPresence(p); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLogin:
		var l wire.Login
		if err := wire.UnmarshalBody(env, &l); err != nil {
			return fail(err)
		}
		if err := s.Login(l); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLogout:
		var l wire.Logout
		if err := wire.UnmarshalBody(env, &l); err != nil {
			return fail(err)
		}
		if err := s.Logout(l); err != nil {
			return fail(err)
		}
		return ok(wire.MsgOK, struct{}{})
	case wire.MsgLocate:
		var q wire.Locate
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Locate(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgLocateResult, res)
	case wire.MsgPath:
		var q wire.PathQuery
		if err := wire.UnmarshalBody(env, &q); err != nil {
			return fail(err)
		}
		res, err := s.Path(q)
		if err != nil {
			return fail(err)
		}
		return ok(wire.MsgPathResult, res)
	case wire.MsgRooms:
		return ok(wire.MsgRoomsResult, s.RoomsInfo())
	default:
		return fail(fmt.Errorf("unknown message type %q", env.Type))
	}
}

// Serve accepts connections until Close. It returns nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				if err := conn.Close(); err != nil && s.Logf != nil {
					s.Logf("server: close conn: %v", err)
				}
			}()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, closes open connections and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}
