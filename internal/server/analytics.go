// Analytics queries: the server side of MsgContacts, MsgOccupancy and
// MsgDwell, backed by the room → presence-interval index of
// internal/analytics. The engine subscribes to the location store's
// delta stream at construction (exactly like the fan-out tree) and is
// seeded from the store's dump, so a durable backend's restored history
// is queryable immediately after restart.
package server

import (
	"fmt"

	"bips/internal/analytics"
	"bips/internal/building"
	"bips/internal/registry"
	"bips/internal/wire"
)

// WithAnalytics installs a caller-owned analytics engine (typically one
// opened over a segment directory for durable retention). The server
// wires it to the location store but the caller keeps ownership: Close
// remains the caller's job. Without this option the server creates and
// owns a memory-only engine.
func WithAnalytics(e *analytics.Engine) Option {
	return func(s *Server) { s.analytics = e }
}

// Analytics exposes the analytics engine (for tooling and tests).
func (s *Server) Analytics() *analytics.Engine { return s.analytics }

// roomKnown rejects queries about rooms missing from the floor plan.
func (s *Server) roomKnown(id building.RoomID) error {
	if _, ok := s.bld.Room(id); !ok {
		return fmt.Errorf("%w: room %d", building.ErrUnknownRoom, id)
	}
	return nil
}

// authorizeRoomQuery is the access check for queries about rooms rather
// than people (occupancy, room dwell): the querier must be logged in
// and hold the locate right — the same bar a room subscription sets.
func (s *Server) authorizeRoomQuery(querier registry.UserID) error {
	if _, err := s.reg.DeviceOf(querier); err != nil {
		return err
	}
	if !s.reg.HasRight(querier, registry.RightLocate) {
		return fmt.Errorf("%w: %s lacks %q", registry.ErrDenied, querier, registry.RightLocate)
	}
	return nil
}

// Contacts runs the contact-tracing query with Locate's access checks:
// the querier must hold the locate right and the target must be
// trackable and logged in. Contact devices are resolved back to userids
// where a binding exists.
func (s *Server) Contacts(req wire.ContactsQuery) (wire.ContactsResult, error) {
	if err := req.Validate(); err != nil {
		return wire.ContactsResult{}, err
	}
	dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
	if err != nil {
		return wire.ContactsResult{}, err
	}
	contacts := s.analytics.Contacts(dev, req.From, req.To, req.MinOverlap)
	out := wire.ContactsResult{Contacts: make([]wire.Contact, 0, len(contacts))}
	for _, c := range contacts {
		wc := wire.Contact{
			Device: wire.FormatAddr(c.Device), Overlap: c.Overlap,
			Rooms: c.Rooms, First: c.First, Last: c.Last,
		}
		if user, uerr := s.reg.UserOf(c.Device); uerr == nil {
			wc.User = string(user)
		}
		out.Contacts = append(out.Contacts, wc)
	}
	return out, nil
}

// Occupancy runs the occupancy-time-series query. Every room of the
// zone must exist in the building.
func (s *Server) Occupancy(req wire.OccupancyQuery) (wire.OccupancyResult, error) {
	if err := req.Validate(); err != nil {
		return wire.OccupancyResult{}, err
	}
	if err := s.authorizeRoomQuery(registry.UserID(req.Querier)); err != nil {
		return wire.OccupancyResult{}, err
	}
	for _, room := range req.Rooms {
		if err := s.roomKnown(room); err != nil {
			return wire.OccupancyResult{}, err
		}
	}
	points := s.analytics.Occupancy(req.Rooms, req.From, req.To, req.Bucket)
	out := wire.OccupancyResult{Buckets: make([]wire.OccupancyPoint, 0, len(points))}
	for _, p := range points {
		out.Buckets = append(out.Buckets, wire.OccupancyPoint{At: p.Start, Count: p.Count})
	}
	return out, nil
}

// Dwell runs the dwell-time-distribution query: per room (locate right
// plus a known room) or per user device (Locate's per-target access
// check).
func (s *Server) Dwell(req wire.DwellQuery) (wire.DwellResult, error) {
	if err := req.Validate(); err != nil {
		return wire.DwellResult{}, err
	}
	var st analytics.DwellStats
	switch req.Kind {
	case wire.DwellRoom:
		if err := s.authorizeRoomQuery(registry.UserID(req.Querier)); err != nil {
			return wire.DwellResult{}, err
		}
		if err := s.roomKnown(req.Room); err != nil {
			return wire.DwellResult{}, err
		}
		st = s.analytics.DwellRoom(req.Room, req.From, req.To)
	case wire.DwellDevice:
		dev, err := s.reg.Authorize(registry.UserID(req.Querier), registry.UserID(req.Target))
		if err != nil {
			return wire.DwellResult{}, err
		}
		st = s.analytics.DwellDevice(dev, req.From, req.To)
	}
	return wire.DwellResult{
		Samples: st.Samples, Mean: st.Mean, Stddev: st.Stddev,
		Min: st.Min, Max: st.Max, P50: st.P50, P90: st.P90, P99: st.P99,
	}, nil
}
