package server

import "bips/internal/wire"

// SetBeforeHandle installs the test-only dispatch hook. It runs in the
// handler goroutine before the request executes, so a test can stall
// chosen message types and observe out-of-order completion.
func (s *Server) SetBeforeHandle(fn func(wire.MsgType)) { s.beforeHandle = fn }
