package server_test

import (
	"encoding/json"
	"testing"
	"time"

	"bips/internal/graph"
	"bips/internal/ingest"
	"bips/internal/locdb"
	"bips/internal/server"
	"bips/internal/sim"
	"bips/internal/wire"
)

// ingestClient dials a v2 client on an in-memory pipe.
func ingestClient(t *testing.T, s *server.Server) *wire.Client {
	t.Helper()
	conn := servePipe(t, s)
	c := wire.NewClient(wire.NewFrameCodec(conn))
	t.Cleanup(func() { c.Close() })
	return c
}

func ingestFrame(session string, seq uint64, deltas ...wire.Presence) wire.PresenceBatch {
	return wire.PresenceBatch{Session: session, Seq: seq, Deltas: deltas}
}

func presenceAt(dev string, room graph.NodeID, at sim.Tick, present bool) wire.Presence {
	return wire.Presence{Device: dev, Room: room, At: at, Present: present}
}

// TestIngestSessionEndToEnd drives the full hello/batch/ack state
// machine over the wire, including a duplicate replay and a resume on a
// second connection.
func TestIngestSessionEndToEnd(t *testing.T) {
	s := newServer(t)
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		t.Fatal(err)
	}
	c := ingestClient(t, s)

	var ack wire.IngestAck
	if err := c.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st-1", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Acked != 0 {
		t.Fatalf("fresh session ack = %+v", ack)
	}

	f1 := ingestFrame("st-1", 1,
		presenceAt(wire.FormatAddr(devA), 1, 10, true),
		presenceAt(wire.FormatAddr(devA), 6, 20, true),
	)
	if err := c.Call(wire.MsgPresenceBatch, f1, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Acked != 1 || ack.Applied != 2 {
		t.Fatalf("frame 1 ack = %+v, want acked=1 applied=2", ack)
	}

	// Replay of frame 1 (a reconnect resend): acknowledged, unapplied.
	if err := c.Call(wire.MsgPresenceBatch, f1, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Duplicate || ack.Acked != 1 || ack.Applied != 0 {
		t.Fatalf("replayed frame ack = %+v, want duplicate acked=1", ack)
	}
	fix, err := s.DB().Locate(devA)
	if err != nil || fix.Piconet != 6 || fix.At != 20 {
		t.Fatalf("fix after replay = %+v err=%v, want room 6 at 20", fix, err)
	}

	// Resume on a fresh connection: hello reports acked=1.
	c2 := ingestClient(t, s)
	if err := c2.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st-1", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Acked != 1 {
		t.Fatalf("resumed hello ack = %+v, want acked=1", ack)
	}
	if err := c2.Call(wire.MsgPresenceBatch, ingestFrame("st-1", 2,
		presenceAt(wire.FormatAddr(devA), 1, 30, true)), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Acked != 2 || ack.Applied != 1 {
		t.Fatalf("frame 2 ack = %+v", ack)
	}

	// The ingest counters surface in MsgStats.
	var stats wire.StatsResult
	if err := c2.Call(wire.MsgStats, wire.StatsQuery{}, &stats); err != nil {
		t.Fatal(err)
	}
	for counter, want := range map[string]int64{
		"ingest.sessions":         1,
		"ingest.frames":           3,
		"ingest.applied":          3,
		"ingest.duplicate_frames": 1,
		"ingest.resumes":          1,
	} {
		if got := stats.Counters[counter]; got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
}

// TestIngestAdversarial: every malformed or out-of-contract ingest
// request must be answered with a MsgError carrying the right code —
// and the connection must stay usable afterwards (never
// disconnect-without-reply).
func TestIngestAdversarial(t *testing.T) {
	s := newServer(t, server.WithIngestOptions(ingest.WithGapWait(50*time.Millisecond)))
	c := ingestClient(t, s)

	var ack wire.IngestAck
	if err := c.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}

	wantErr := func(name string, t_ wire.MsgType, body any, code string) {
		t.Helper()
		err := c.Call(t_, body, nil)
		werr, ok := err.(*wire.Error)
		if !ok {
			t.Fatalf("%s: err = %v, want *wire.Error", name, err)
		}
		if werr.Code != code {
			t.Errorf("%s: code = %q, want %q", name, werr.Code, code)
		}
		// The connection survives: a rooms query still answers.
		if err := c.Call(wire.MsgRooms, wire.RoomsQuery{}, nil); err != nil {
			t.Fatalf("%s: connection unusable after error: %v", name, err)
		}
	}

	wantErr("unknown session", wire.MsgPresenceBatch,
		ingestFrame("ghost", 1, presenceAt(wire.FormatAddr(devA), 1, 1, true)), wire.CodeNotFound)
	wantErr("empty batch", wire.MsgPresenceBatch,
		wire.PresenceBatch{Session: "st", Seq: 1}, wire.CodeBadRequest)
	wantErr("zero seq", wire.MsgPresenceBatch,
		ingestFrame("st", 0, presenceAt(wire.FormatAddr(devA), 1, 1, true)), wire.CodeBadRequest)
	wantErr("oversized batch", wire.MsgPresenceBatch,
		wire.PresenceBatch{Session: "st", Seq: 1, Deltas: make([]wire.Presence, wire.MaxBatchDeltas+1)},
		wire.CodeBadRequest)
	wantErr("sequence far ahead", wire.MsgPresenceBatch,
		ingestFrame("st", ingest.DefaultGapWindow+5, presenceAt(wire.FormatAddr(devA), 1, 1, true)),
		wire.CodeBadRequest)
	wantErr("sequence gap", wire.MsgPresenceBatch,
		ingestFrame("st", 3, presenceAt(wire.FormatAddr(devA), 1, 1, true)), wire.CodeBadRequest)
	wantErr("hello unknown room", wire.MsgIngestHello,
		wire.IngestHello{Session: "st", Station: "S", Room: 99999}, wire.CodeNotFound)
	wantErr("hello without session", wire.MsgIngestHello,
		wire.IngestHello{Station: "S", Room: 1}, wire.CodeBadRequest)

	// After all that abuse the session still works.
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(wire.MsgPresenceBatch,
		ingestFrame("st", 1, presenceAt(wire.FormatAddr(devA), 1, 1, true)), &ack); err != nil {
		t.Fatalf("valid frame after adversarial input: %v", err)
	}
	if ack.Acked != 1 || ack.Applied != 1 {
		t.Fatalf("ack = %+v", ack)
	}
}

// TestIngestRejectedDeltasDoNotWedge: a frame with a bad delta still
// advances the ack (the bad delta is counted, not retried forever).
func TestIngestRejectedDeltasDoNotWedge(t *testing.T) {
	s := newServer(t)
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		t.Fatal(err)
	}
	c := ingestClient(t, s)
	var ack wire.IngestAck
	if err := c.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	if err := c.Call(wire.MsgPresenceBatch, ingestFrame("st", 1,
		presenceAt(wire.FormatAddr(devA), 1, 1, true),
		presenceAt("not-an-address", 1, 2, true),
		presenceAt(wire.FormatAddr(devA), 99999, 3, true), // unknown room
	), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Acked != 1 || ack.Applied != 1 || ack.Rejected != 2 {
		t.Fatalf("ack = %+v, want acked=1 applied=1 rejected=2", ack)
	}
}

// TestIngestMatchesSingleDeltaPath: the batched pipeline must leave the
// location database byte-identical to the per-delta MsgPresence path.
func TestIngestMatchesSingleDeltaPath(t *testing.T) {
	deltas := make([]wire.Presence, 0, 200)
	for i := 0; i < 200; i++ {
		dev := devA
		if i%2 == 1 {
			dev = devB
		}
		room := graph.NodeID(1 + i%7)
		deltas = append(deltas, presenceAt(wire.FormatAddr(dev), room, sim.Tick(i+1), i%11 != 0))
	}

	dump := func(s *server.Server) string {
		t.Helper()
		type state struct {
			All  []locdb.Fix
			HidA []locdb.Fix
			HidB []locdb.Fix
		}
		raw, err := json.Marshal(state{All: s.DB().All(), HidA: s.DB().History(devA), HidB: s.DB().History(devB)})
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	login := func(s *server.Server) {
		t.Helper()
		if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Login(wire.Login{User: "bob", Password: pw, Device: wire.FormatAddr(devB)}); err != nil {
			t.Fatal(err)
		}
	}

	single := newServer(t)
	login(single)
	cs := ingestClient(t, single)
	for _, p := range deltas {
		if err := cs.Call(wire.MsgPresence, p, nil); err != nil {
			t.Fatal(err)
		}
	}

	batched := newServer(t)
	login(batched)
	cb := ingestClient(t, batched)
	var ack wire.IngestAck
	if err := cb.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for i := 0; i < len(deltas); i += 32 {
		end := i + 32
		if end > len(deltas) {
			end = len(deltas)
		}
		seq++
		if err := cb.Call(wire.MsgPresenceBatch,
			wire.PresenceBatch{Session: "st", Seq: seq, Deltas: deltas[i:end]}, &ack); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := dump(batched), dump(single); got != want {
		t.Errorf("batched ingest diverges from single-delta path\nbatched: %s\nsingle:  %s", got, want)
	}
}

// TestIngestPipelinedFrames: a station may pipeline frames on one
// connection; the reorder window absorbs handler-scheduling races and
// every frame is applied exactly once, in order.
func TestIngestPipelinedFrames(t *testing.T) {
	s := newServer(t)
	if err := s.Login(wire.Login{User: "alice", Password: pw, Device: wire.FormatAddr(devA)}); err != nil {
		t.Fatal(err)
	}
	c := ingestClient(t, s)
	var ack wire.IngestAck
	if err := c.Call(wire.MsgIngestHello, wire.IngestHello{Session: "st", Station: "S", Room: 1}, &ack); err != nil {
		t.Fatal(err)
	}
	const frames = 32
	errs := make(chan error, frames)
	for i := 1; i <= frames; i++ {
		go func(seq int) {
			var a wire.IngestAck
			errs <- c.Call(wire.MsgPresenceBatch, ingestFrame("st", uint64(seq),
				presenceAt(wire.FormatAddr(devA), graph.NodeID(1+seq%7), sim.Tick(seq), true)), &a)
		}(i)
		// Stagger launches so sends hit the socket in seq order, as a
		// real pipelining station's writes would.
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < frames; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("pipelined frame: %v", err)
		}
	}
	if acked, _ := s.Ingest().Acked("st"); acked != frames {
		t.Fatalf("session acked = %d, want %d", acked, frames)
	}
	if got := s.DB().Stats().Updates; got == 0 {
		t.Fatal("no updates applied")
	}
}
