// Package stats provides the small statistics toolkit the experiment
// harness uses: running summaries (mean, standard deviation, confidence
// intervals), empirical CDFs for the Figure 2 curves, and fixed-width table
// rendering matching the paper's presentation.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Summary accumulates samples and reports moments. The zero value is an
// empty summary ready for use.
type Summary struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
	min  float64
	max  float64
}

// Add accumulates one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s, as if every sample of o had been
// Added after s's own (Chan et al.'s parallel Welford update). It lets
// per-shard summaries accumulated independently be combined into one
// without retaining samples.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := float64(s.n + o.n)
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/n
	s.mean += d * float64(o.n) / n
	s.min = math.Min(s.min, o.min)
	s.max = math.Max(s.max, o.max)
	s.n += o.n
}

// AddAll accumulates all samples.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min and Max return the extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the unbiased sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(s.n))
}

// String renders "mean ± ci (n=...)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using the
// nearest-rank method. The input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx], nil
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
	// total is the denominator; it may exceed len(sorted) when some
	// trials never produced a sample (censored at infinity), which is
	// how the Figure 2 curves account for undiscovered slaves.
	total int
}

// NewCDF builds an empirical CDF from samples. total < len(samples) is
// clamped to len(samples).
func NewCDF(samples []float64, total int) *CDF {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if total < len(sorted) {
		total = len(sorted)
	}
	return &CDF{sorted: sorted, total: total}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(c.total)
}

// Points samples the CDF at n evenly spaced points over [lo, hi],
// returning (x, y) pairs — the series format of the Figure 2 plot.
func (c *CDF) Points(lo, hi float64, n int) [][2]float64 {
	if n < 2 || hi <= lo {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Table renders fixed-width text tables in the style of the paper.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
