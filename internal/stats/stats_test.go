package stats

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("zero-value summary not empty")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Known population: sum of squared deviations = 32, unbiased
	// variance = 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(-3)
	if s.Mean() != -3 || s.Min() != -3 || s.Max() != -3 {
		t.Errorf("single sample summary = %+v", s)
	}
	if s.Var() != 0 || s.CI95() != 0 {
		t.Error("variance of single sample should be 0")
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		var sum float64
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(raw)-1)
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Var()-wantVar) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCI95Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Summary
	for i := 0; i < 20; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v -> %v", small.CI95(), large.CI95())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		q    float64
		want float64
	}{{0, 1}, {0.2, 1}, {0.5, 3}, {0.9, 5}, {1, 5}}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty error = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4}, 4)
	cases := []struct {
		x    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1}}
	for _, tt := range cases {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFCensoredTotal(t *testing.T) {
	// 3 samples out of a population of 10 that mostly never finished:
	// the CDF saturates at 0.3, exactly how undiscovered slaves are
	// handled in the Figure 2 curves.
	c := NewCDF([]float64{1, 2, 3}, 10)
	if got := c.At(100); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("censored At(100) = %v, want 0.3", got)
	}
	// Total below len is clamped.
	c2 := NewCDF([]float64{1, 2, 3}, 1)
	if got := c2.At(100); got != 1 {
		t.Errorf("clamped total At(100) = %v, want 1", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil, 0)
	if c.At(1) != 0 {
		t.Error("empty CDF not 0")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2}, 2)
	pts := c.Points(0, 4, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[0][0] != 0 || pts[4][0] != 4 {
		t.Errorf("x range = %v..%v", pts[0][0], pts[4][0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Error("CDF not monotone")
		}
	}
	if got := c.Points(0, 4, 1); got != nil {
		t.Error("n<2 should return nil")
	}
	if got := c.Points(4, 0, 5); got != nil {
		t.Error("hi<=lo should return nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		c := NewCDF(clean, len(clean))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Starting Train", "Case No.", "Taverage")
	tb.AddRow("Same", "236", "1.6028s")
	tb.AddRow("Different", "264", "4.1320s")
	tb.AddRow("Mixed", "500") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Starting Train") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "Same") || !strings.Contains(lines[2], "1.6028s") {
		t.Errorf("row = %q", lines[2])
	}
	// Dropped extra cells don't panic.
	tb.AddRow("a", "b", "c", "d")
	_ = tb.String()
}

func TestSummaryMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
	}
	var whole Summary
	whole.AddAll(xs)
	for _, cut := range []int{0, 1, 500, 1000, 1001} {
		var a, b Summary
		a.AddAll(xs[:cut])
		b.AddAll(xs[cut:])
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: n = %d, want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
			t.Errorf("cut %d: mean = %v, want %v", cut, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Var()-whole.Var()) > 1e-9 {
			t.Errorf("cut %d: var = %v, want %v", cut, a.Var(), whole.Var())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("cut %d: extremes %v/%v, want %v/%v", cut, a.Min(), a.Max(), whole.Min(), whole.Max())
		}
	}
	// Merging into an empty summary copies.
	var empty Summary
	empty.Merge(whole)
	if empty != whole {
		t.Error("merge into empty summary not a copy")
	}
}
