package baseband

import (
	"testing"
	"testing/quick"

	"bips/internal/sim"
)

func TestParseBDAddr(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    BDAddr
		wantErr bool
	}{
		{name: "canonical", in: "00:11:22:33:44:55", want: 0x001122334455},
		{name: "all ff", in: "FF:FF:FF:FF:FF:FF", want: 0xFFFFFFFFFFFF},
		{name: "lower case", in: "aa:bb:cc:dd:ee:ff", want: 0xAABBCCDDEEFF},
		{name: "too few octets", in: "00:11:22:33:44", wantErr: true},
		{name: "too many octets", in: "00:11:22:33:44:55:66", wantErr: true},
		{name: "bad hex", in: "00:11:22:33:44:ZZ", wantErr: true},
		{name: "octet too long", in: "001:1:22:33:44:55", wantErr: true},
		{name: "empty", in: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseBDAddr(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseBDAddr(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if !tt.wantErr && got != tt.want {
				t.Errorf("ParseBDAddr(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestBDAddrStringRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := BDAddr(raw & 0xFFFFFFFFFFFF)
		parsed, err := ParseBDAddr(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBDAddrValid(t *testing.T) {
	if BDAddr(0).Valid() {
		t.Error("zero address reported valid")
	}
	if !BDAddr(0x001122334455).Valid() {
		t.Error("normal address reported invalid")
	}
	if BDAddr(1 << 48).Valid() {
		t.Error("49-bit address reported valid")
	}
}

func TestTimingConstants(t *testing.T) {
	// The paper's section 3.1 quantities.
	if got := TrainLengthTicks.Duration().Milliseconds(); got != 10 {
		t.Errorf("train length = %dms, want 10ms", got)
	}
	if got := TrainDwellTicks.Seconds(); got != 2.56 {
		t.Errorf("train dwell = %gs, want 2.56s", got)
	}
	if got := InquiryTimeoutTicks.Seconds(); got != 10.24 {
		t.Errorf("inquiry timeout = %gs, want 10.24s", got)
	}
	if got := TInquiryScanTicks.Seconds(); got != 1.28 {
		t.Errorf("T_inquiry_scan = %gs, want 1.28s", got)
	}
	if got := TwInquiryScanTicks.Duration().Microseconds(); got != 11250 {
		t.Errorf("T_w_inquiry_scan = %dus, want 11250us", got)
	}
	if TPageScanTicks != TInquiryScanTicks || TwPageScanTicks != TwInquiryScanTicks {
		t.Error("page scan defaults must equal inquiry scan defaults (paper 3.2)")
	}
}

func TestTrain(t *testing.T) {
	if TrainA.Other() != TrainB || TrainB.Other() != TrainA {
		t.Error("Train.Other is not an involution")
	}
	if TrainA.String() != "A" || TrainB.String() != "B" {
		t.Errorf("train names = %q, %q", TrainA.String(), TrainB.String())
	}
}

func TestFreqIndexTrain(t *testing.T) {
	for f := FreqIndex(0); f < TrainSize; f++ {
		if f.Train() != TrainA {
			t.Errorf("freq %d train = %v, want A", f, f.Train())
		}
	}
	for f := FreqIndex(TrainSize); f < NumInquiryFreqs; f++ {
		if f.Train() != TrainB {
			t.Errorf("freq %d train = %v, want B", f, f.Train())
		}
	}
	if FreqIndex(-1).Valid() || FreqIndex(32).Valid() {
		t.Error("out-of-range index reported valid")
	}
}

func TestMasterInquiryFreqsCoversTrainIn10ms(t *testing.T) {
	seen := map[FreqIndex]bool{}
	for clock := sim.Tick(0); clock < TrainLengthTicks; clock++ {
		transmit, _ := MasterSlotPhase(clock)
		if !transmit {
			continue
		}
		f1, f2, train := MasterInquiryFreqs(clock, TrainA)
		if train != TrainA {
			t.Fatalf("train switched inside first dwell: %v", train)
		}
		seen[f1] = true
		seen[f2] = true
	}
	if len(seen) != TrainSize {
		t.Fatalf("one 10ms pass covered %d distinct freqs, want %d", len(seen), TrainSize)
	}
	for f := range seen {
		if f.Train() != TrainA {
			t.Errorf("freq %d outside train A", f)
		}
	}
}

func TestMasterInquiryTrainSwitchEvery256Repetitions(t *testing.T) {
	_, _, train0 := MasterInquiryFreqs(0, TrainA)
	if train0 != TrainA {
		t.Fatalf("initial train = %v, want A", train0)
	}
	_, _, trainLast := MasterInquiryFreqs(TrainDwellTicks-1, TrainA)
	if trainLast != TrainA {
		t.Errorf("train at end of first dwell = %v, want A", trainLast)
	}
	_, _, trainNext := MasterInquiryFreqs(TrainDwellTicks, TrainA)
	if trainNext != TrainB {
		t.Errorf("train after first dwell = %v, want B", trainNext)
	}
	_, _, trainThird := MasterInquiryFreqs(2*TrainDwellTicks, TrainA)
	if trainThird != TrainA {
		t.Errorf("train after second dwell = %v, want A", trainThird)
	}
	// Starting on B mirrors the schedule.
	_, _, b0 := MasterInquiryFreqs(0, TrainB)
	if b0 != TrainB {
		t.Errorf("startTrain=B initial train = %v, want B", b0)
	}
}

func TestMasterSlotPhase(t *testing.T) {
	// Slot 0 (ticks 0,1) transmit; slot 1 (ticks 2,3) listen; repeating.
	cases := []struct {
		clock    sim.Tick
		transmit bool
		half     int
	}{
		{0, true, 0}, {1, true, 1}, {2, false, 0}, {3, false, 1},
		{4, true, 0}, {5, true, 1}, {6, false, 0}, {7, false, 1},
	}
	for _, c := range cases {
		tx, half := MasterSlotPhase(c.clock)
		if tx != c.transmit || half != c.half {
			t.Errorf("MasterSlotPhase(%d) = (%v,%d), want (%v,%d)",
				c.clock, tx, half, c.transmit, c.half)
		}
	}
}

func TestMasterFreqPairsDistinctPerHalfSlot(t *testing.T) {
	f := func(rawClock uint32, startB bool) bool {
		clock := sim.Tick(rawClock)
		start := TrainA
		if startB {
			start = TrainB
		}
		f1, f2, train := MasterInquiryFreqs(clock, start)
		return f1.Valid() && f2.Valid() && f2 == f1+1 &&
			f1.Train() == train && f2.Train() == train
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanFreqAdvancesEvery128s(t *testing.T) {
	phase := FreqIndex(5)
	if got := ScanFreq(0, phase); got != 5 {
		t.Errorf("ScanFreq(0) = %d, want 5", got)
	}
	if got := ScanFreq(ScanFreqDwellTicks-1, phase); got != 5 {
		t.Errorf("ScanFreq(dwell-1) = %d, want 5", got)
	}
	if got := ScanFreq(ScanFreqDwellTicks, phase); got != 6 {
		t.Errorf("ScanFreq(dwell) = %d, want 6", got)
	}
	// Wraps over the full 32-frequency set.
	if got := ScanFreq(ScanFreqDwellTicks*27, phase); got != 0 {
		t.Errorf("ScanFreq(27 dwells from 5) = %d, want 0 (wrap)", got)
	}
}

func TestScanFreqAlwaysValid(t *testing.T) {
	f := func(rawClock uint32, rawPhase uint8) bool {
		return ScanFreq(sim.Tick(rawClock), FreqIndex(rawPhase%32)).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockAt(t *testing.T) {
	c := Clock{Offset: 100}
	if got := c.At(50); got != 150 {
		t.Errorf("At(50) = %d, want 150", got)
	}
	// 28-bit wraparound.
	c = Clock{Offset: (1 << 28) - 1}
	if got := c.At(1); got != 0 {
		t.Errorf("wrap: At(1) = %d, want 0", got)
	}
}

func TestPacketTypeString(t *testing.T) {
	want := map[PacketType]string{
		PacketID: "ID", PacketFHS: "FHS", PacketPoll: "POLL",
		PacketNull: "NULL", PacketDM1: "DM1", PacketDH1: "DH1",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if PacketType(99).String() != "PacketType(99)" {
		t.Errorf("unknown packet name = %q", PacketType(99).String())
	}
}
