package baseband

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bips/internal/sim"
)

// FHSPayload is the information an FHS packet carries during inquiry
// response and page: the responder's device address, its native clock
// sample (CLKN), and its class of device. The paper's system uses the
// address to identify the mobile user (after login it maps one-to-one to a
// userid) and the clock to speed up the subsequent page.
type FHSPayload struct {
	Addr BDAddr
	// ClockNative is the responder's 28-bit native clock at
	// transmission time.
	ClockNative sim.Tick
	// Class is the 24-bit class-of-device field.
	Class uint32
}

// fhsWireSize is the encoded payload size: 6 bytes address + 4 bytes
// clock + 3 bytes class + 1 byte checksum.
const fhsWireSize = 14

// Errors reported by the FHS codec.
var (
	ErrFHSShort    = errors.New("baseband: FHS payload too short")
	ErrFHSChecksum = errors.New("baseband: FHS checksum mismatch")
	ErrFHSField    = errors.New("baseband: FHS field out of range")
)

// MarshalBinary encodes the payload into the 14-byte wire form.
func (f FHSPayload) MarshalBinary() ([]byte, error) {
	if !f.Addr.Valid() {
		return nil, fmt.Errorf("%w: address %v", ErrFHSField, f.Addr)
	}
	if f.ClockNative < 0 || f.ClockNative >= 1<<28 {
		return nil, fmt.Errorf("%w: clock %d", ErrFHSField, f.ClockNative)
	}
	if f.Class >= 1<<24 {
		return nil, fmt.Errorf("%w: class %#x", ErrFHSField, f.Class)
	}
	out := make([]byte, fhsWireSize)
	binary.BigEndian.PutUint64(out[:8], uint64(f.Addr)<<16)
	// The address occupies bytes 0..5; bytes 6..9 carry the clock.
	binary.BigEndian.PutUint32(out[6:10], uint32(f.ClockNative))
	out[10] = byte(f.Class >> 16)
	out[11] = byte(f.Class >> 8)
	out[12] = byte(f.Class)
	out[13] = checksum(out[:13])
	return out, nil
}

// UnmarshalBinary decodes the 14-byte wire form.
func (f *FHSPayload) UnmarshalBinary(data []byte) error {
	if len(data) < fhsWireSize {
		return fmt.Errorf("%w: %d bytes", ErrFHSShort, len(data))
	}
	if checksum(data[:13]) != data[13] {
		return ErrFHSChecksum
	}
	var addr uint64
	for i := 0; i < 6; i++ {
		addr = addr<<8 | uint64(data[i])
	}
	f.Addr = BDAddr(addr)
	f.ClockNative = sim.Tick(binary.BigEndian.Uint32(data[6:10]))
	f.Class = uint32(data[10])<<16 | uint32(data[11])<<8 | uint32(data[12])
	return nil
}

// checksum is a simple XOR-fold; the real baseband protects FHS with a
// 2/3 FEC and HEC, whose corruption-detection role this stands in for.
func checksum(data []byte) byte {
	var c byte = 0xA5
	for _, b := range data {
		c ^= b
		c = c<<1 | c>>7
	}
	return c
}

// ClockEstimate is a master's knowledge of a slave's clock, learned from
// an FHS response. The page procedure uses it to predict the slave's scan
// frequency; stale estimates (the slave's crystal drifts up to ±20 ppm)
// widen the page search.
type ClockEstimate struct {
	// Sample is the slave clock value carried by the FHS.
	Sample sim.Tick
	// At is the local time the FHS was received.
	At sim.Tick
}

// Predict returns the estimated slave clock at local time now.
func (e ClockEstimate) Predict(now sim.Tick) sim.Tick {
	const wrap = 1 << 28
	v := (e.Sample + (now - e.At)) % wrap
	if v < 0 {
		v += wrap
	}
	return v
}

// AgeSlots returns the estimate's age in slots at local time now, the
// quantity that determines the page search window in the standard.
func (e ClockEstimate) AgeSlots(now sim.Tick) int64 {
	if now < e.At {
		return 0
	}
	return int64((now - e.At) / SlotTicks)
}
