package baseband

import (
	"errors"
	"testing"
	"testing/quick"

	"bips/internal/sim"
)

func TestFHSRoundTrip(t *testing.T) {
	in := FHSPayload{Addr: 0x001122334455, ClockNative: 123456, Class: 0x5A020C}
	raw, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != fhsWireSize {
		t.Fatalf("wire size = %d, want %d", len(raw), fhsWireSize)
	}
	var out FHSPayload
	if err := out.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestFHSRoundTripProperty(t *testing.T) {
	f := func(rawAddr uint64, rawClock uint32, rawClass uint32) bool {
		in := FHSPayload{
			Addr:        BDAddr(rawAddr&0xFFFFFFFFFFFF | 1), // non-zero
			ClockNative: sim.Tick(rawClock % (1 << 28)),
			Class:       rawClass % (1 << 24),
		}
		raw, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out FHSPayload
		return out.UnmarshalBinary(raw) == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFHSMarshalValidation(t *testing.T) {
	cases := []struct {
		name string
		p    FHSPayload
	}{
		{"zero addr", FHSPayload{Addr: 0, ClockNative: 1}},
		{"clock too big", FHSPayload{Addr: 1, ClockNative: 1 << 28}},
		{"negative clock", FHSPayload{Addr: 1, ClockNative: -1}},
		{"class too big", FHSPayload{Addr: 1, Class: 1 << 24}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.p.MarshalBinary(); !errors.Is(err, ErrFHSField) {
				t.Errorf("error = %v, want ErrFHSField", err)
			}
		})
	}
}

func TestFHSUnmarshalErrors(t *testing.T) {
	var p FHSPayload
	if err := p.UnmarshalBinary(make([]byte, 5)); !errors.Is(err, ErrFHSShort) {
		t.Errorf("short error = %v", err)
	}
	good, err := FHSPayload{Addr: 1, ClockNative: 7}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit anywhere: the checksum must catch it.
	for i := range good {
		bad := make([]byte, len(good))
		copy(bad, good)
		bad[i] ^= 0x10
		if err := p.UnmarshalBinary(bad); err == nil {
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
}

func TestClockEstimatePredict(t *testing.T) {
	e := ClockEstimate{Sample: 1000, At: 500}
	if got := e.Predict(500); got != 1000 {
		t.Errorf("Predict(at) = %d, want 1000", got)
	}
	if got := e.Predict(600); got != 1100 {
		t.Errorf("Predict(+100) = %d, want 1100", got)
	}
	// Wraps at 2^28.
	e = ClockEstimate{Sample: (1 << 28) - 1, At: 0}
	if got := e.Predict(1); got != 0 {
		t.Errorf("wrap Predict = %d, want 0", got)
	}
}

func TestClockEstimateAge(t *testing.T) {
	e := ClockEstimate{Sample: 0, At: 100}
	if got := e.AgeSlots(100); got != 0 {
		t.Errorf("AgeSlots(at) = %d", got)
	}
	if got := e.AgeSlots(100 + 10*SlotTicks); got != 10 {
		t.Errorf("AgeSlots = %d, want 10", got)
	}
	if got := e.AgeSlots(50); got != 0 {
		t.Errorf("AgeSlots(before) = %d, want 0", got)
	}
}
