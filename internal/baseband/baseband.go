// Package baseband models the parts of the Bluetooth 1.1 baseband that
// govern device discovery and connection setup: device addresses, the
// native clock, the inquiry/page timing constants, packet types, and the
// inquiry hopping structure (the 32 dedicated inquiry frequencies split
// into trains A and B).
//
// The model is timing-faithful rather than RF-faithful: the real
// hop-selection kernel decides *which* of the 32 frequencies is used at a
// given clock value, but discovery latency — the quantity the BIPS paper
// measures — depends only on *when* a master transmission can coincide with
// a slave scan window on the same index. See DESIGN.md section 5.
package baseband

import (
	"errors"
	"fmt"

	"bips/internal/sim"
)

// BDAddr is a 48-bit Bluetooth device address.
type BDAddr uint64

// ParseBDAddr parses the canonical colon form "AA:BB:CC:DD:EE:FF"
// (hex digits in either case). It is on the ingest hot path — every
// workstation delta carries an address — so it scans the string in
// place instead of splitting it.
func ParseBDAddr(s string) (BDAddr, error) {
	if len(s) != 17 {
		return 0, fmt.Errorf("baseband: address %q: want 6 octets", s)
	}
	var v uint64
	for i := 0; i < 6; i++ {
		if i > 0 && s[i*3-1] != ':' {
			return 0, fmt.Errorf("baseband: address %q: want 6 octets", s)
		}
		hi := unhex(s[i*3])
		lo := unhex(s[i*3+1])
		if hi < 0 || lo < 0 {
			return 0, fmt.Errorf("baseband: address %q: octet %q malformed", s, s[i*3:i*3+2])
		}
		v = v<<8 | uint64(hi)<<4 | uint64(lo)
	}
	return BDAddr(v), nil
}

func unhex(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// String renders the address in canonical colon form. One allocation:
// the returned string.
func (a BDAddr) String() string {
	const hexUpper = "0123456789ABCDEF"
	var b [17]byte
	for i := 0; i < 6; i++ {
		if i > 0 {
			b[i*3-1] = ':'
		}
		o := byte(a >> uint(40-8*i))
		b[i*3] = hexUpper[o>>4]
		b[i*3+1] = hexUpper[o&0xF]
	}
	return string(b[:])
}

// Valid reports whether the address fits in 48 bits and is non-zero.
func (a BDAddr) Valid() bool {
	return a != 0 && a>>48 == 0
}

// Timing constants from the Bluetooth 1.1 specification, as cited by the
// paper (sections 3.1 and 3.2), expressed in sim ticks (312.5 us).
const (
	// SlotTicks is one 625 us slot.
	SlotTicks sim.Tick = 2
	// TrainLengthTicks is one 10 ms inquiry train: 16 frequencies sent
	// at two per even slot, interleaved with listen slots.
	TrainLengthTicks sim.Tick = 32
	// NInquiry is the minimum number of repetitions of a train before
	// the master may switch trains.
	NInquiry = 256
	// TrainDwellTicks is the time spent on one train before switching:
	// NInquiry * TrainLengthTicks = 2.56 s.
	TrainDwellTicks = sim.Tick(NInquiry) * TrainLengthTicks
	// InquiryTimeoutTicks is the canonical 10.24 s inquiry duration
	// (at least three train switches).
	InquiryTimeoutTicks = 4 * TrainDwellTicks
	// TInquiryScanTicks is the default interval between the starts of
	// two consecutive inquiry-scan windows: 1.28 s.
	TInquiryScanTicks sim.Tick = 4096
	// TwInquiryScanTicks is the default inquiry-scan window: 11.25 ms.
	TwInquiryScanTicks sim.Tick = 36
	// TPageScanTicks is the default page-scan interval (equal to the
	// inquiry-scan default, per the paper).
	TPageScanTicks sim.Tick = 4096
	// TwPageScanTicks is the default page-scan window.
	TwPageScanTicks sim.Tick = 36
	// ScanFreqDwellTicks is how long a scanning slave listens on the
	// same inquiry frequency index before advancing: 1.28 s.
	ScanFreqDwellTicks sim.Tick = 4096
	// MaxBackoffSlots is the upper bound (exclusive) of the uniform
	// random inquiry-response backoff, in slots: 0..1023.
	MaxBackoffSlots = 1024
	// NumInquiryFreqs is the number of dedicated inquiry frequencies.
	NumInquiryFreqs = 32
	// TrainSize is the number of frequencies per train.
	TrainSize = 16
)

// Train identifies one of the two 16-hop halves of the inquiry sequence.
type Train int

// The two inquiry trains.
const (
	TrainA Train = iota + 1
	TrainB
)

// String names the train.
func (t Train) String() string {
	switch t {
	case TrainA:
		return "A"
	case TrainB:
		return "B"
	default:
		return fmt.Sprintf("Train(%d)", int(t))
	}
}

// Other returns the opposite train.
func (t Train) Other() Train {
	if t == TrainA {
		return TrainB
	}
	return TrainA
}

// FreqIndex is an index into the 32 dedicated inquiry frequencies.
// Indices 0..15 belong to train A, 16..31 to train B.
type FreqIndex int

// Valid reports whether the index is within the inquiry hop set.
func (f FreqIndex) Valid() bool { return f >= 0 && f < NumInquiryFreqs }

// Train returns the train the frequency belongs to.
func (f FreqIndex) Train() Train {
	if f < TrainSize {
		return TrainA
	}
	return TrainB
}

// ErrBadFreq is returned for frequency indices outside 0..31.
var ErrBadFreq = errors.New("baseband: frequency index out of range")

// PacketType enumerates the baseband packets the discovery and connection
// procedures exchange.
type PacketType int

// Packet types used by the inquiry and page procedures.
const (
	// PacketID is the ID packet broadcast during inquiry and page.
	PacketID PacketType = iota + 1
	// PacketFHS carries the responder's address and clock (the inquiry
	// response and the page master's handshake).
	PacketFHS
	// PacketPoll is the master's poll in an established piconet.
	PacketPoll
	// PacketNull is the slave's empty acknowledgement.
	PacketNull
	// PacketDM1 is a 1-slot medium-rate data packet.
	PacketDM1
	// PacketDH1 is a 1-slot high-rate data packet.
	PacketDH1
)

var packetNames = map[PacketType]string{
	PacketID:   "ID",
	PacketFHS:  "FHS",
	PacketPoll: "POLL",
	PacketNull: "NULL",
	PacketDM1:  "DM1",
	PacketDH1:  "DH1",
}

// String names the packet type.
func (p PacketType) String() string {
	if s, ok := packetNames[p]; ok {
		return s
	}
	return fmt.Sprintf("PacketType(%d)", int(p))
}

// Packet is one over-the-air transmission at half-slot granularity.
type Packet struct {
	Type PacketType
	// Freq is the inquiry-hop index for ID/FHS during discovery; -1 for
	// packets on an established channel hopping sequence.
	Freq FreqIndex
	// Sender is the transmitting device.
	Sender BDAddr
	// Target is the intended receiver for directed packets (page ID,
	// POLL, data); zero for broadcasts (inquiry ID).
	Target BDAddr
	// Clock is the sender's native clock sample carried by FHS packets.
	Clock Clock
}

// Clock is a Bluetooth native clock: a free-running 28-bit counter ticking
// once per 312.5 us. Devices have independent phases.
type Clock struct {
	// Offset is the value of the counter at simulation tick zero.
	Offset sim.Tick
}

// At returns the (wrapped) native clock value at the given simulation time.
func (c Clock) At(now sim.Tick) sim.Tick {
	const wrap = 1 << 28
	v := (c.Offset + now) % wrap
	if v < 0 {
		v += wrap
	}
	return v
}

// CurrentTrain returns the train a master transmits at the given time
// elapsed since it entered the inquiry state: it repeats the starting train
// NInquiry times (2.56 s) and then alternates.
func CurrentTrain(elapsed sim.Tick, startTrain Train) Train {
	dwell := elapsed / TrainDwellTicks
	if dwell%2 == 1 {
		return startTrain.Other()
	}
	return startTrain
}

// TrainFreqPair returns the two frequency indices of the given train that a
// master transmits during the even slot containing the given elapsed time
// (one frequency per half slot). A 10 ms train pass has 8 transmit slots
// covering the train's 16 frequencies in order.
func TrainFreqPair(train Train, elapsed sim.Tick) (first, second FreqIndex) {
	base := FreqIndex(0)
	if train == TrainB {
		base = TrainSize
	}
	inTrain := elapsed % TrainLengthTicks
	slot := inTrain / SlotTicks // 0..15
	// Even slots transmit, odd slots listen; transmit slot n of the
	// pass (n = slot/2, 0..7) carries frequency pair n.
	pair := slot / 2
	return base + FreqIndex(2*pair), base + FreqIndex(2*pair+1)
}

// MasterInquiryFreqs returns the two frequency indices the master transmits
// during the even slot at the given time elapsed since inquiry entry, and
// the train it is currently sending. The master sends ID packets on two
// consecutive hop indices per even slot (one per half slot), walks the 16
// frequencies of the current train in 10 ms, repeats the train NInquiry
// times, and then switches trains.
func MasterInquiryFreqs(elapsed sim.Tick, startTrain Train) (first, second FreqIndex, train Train) {
	train = CurrentTrain(elapsed, startTrain)
	first, second = TrainFreqPair(train, elapsed)
	return first, second, train
}

// MasterSlotPhase reports, for the given native clock value, whether the
// master is in a transmit slot (even) or a listen slot (odd), and the half
// slot (0 or 1) within it.
func MasterSlotPhase(clock sim.Tick) (transmit bool, halfSlot int) {
	slot := (clock / SlotTicks) % 2
	return slot == 0, int(clock % SlotTicks)
}

// ScanFreq returns the inquiry frequency index a scanning slave listens on
// at the given native clock value. The listening frequency advances one
// index every ScanFreqDwellTicks (1.28 s), wrapping over all 32 inquiry
// frequencies; phase is the device-specific starting index.
func ScanFreq(clock sim.Tick, phase FreqIndex) FreqIndex {
	step := (clock / ScanFreqDwellTicks) % NumInquiryFreqs
	return FreqIndex((sim.Tick(phase) + step) % NumInquiryFreqs)
}

// RespondFreq returns the frequency index on which the master listens for
// the inquiry response to an ID sent on f. In the real baseband the
// response arrives 625 us after the ID on the corresponding response hop;
// the timing, not the index mapping, is what matters here, so the model
// uses the same index.
func RespondFreq(f FreqIndex) FreqIndex { return f }
