package hci

import (
	"errors"
	"math/rand"
	"testing"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/page"
	"bips/internal/piconet"
	"bips/internal/radio"
	"bips/internal/sim"
)

func testDevice(rng *rand.Rand, addr baseband.BDAddr) piconet.Device {
	offset := sim.Tick(rng.Int63n(int64(2 * baseband.TInquiryScanTicks)))
	return piconet.Device{
		Slave: inquiry.NewSlave(inquiry.SlaveConfig{
			Addr:        addr,
			ClockOffset: offset,
			ScanPhase:   baseband.FreqIndex(rng.Intn(baseband.NumInquiryFreqs)),
			Mode:        inquiry.ScanAlternating,
		}),
		Scanner: page.Scanner{
			Addr:                  addr,
			ClockOffset:           offset,
			AlternatesWithInquiry: true,
			Connectable:           true,
		},
	}
}

// harness wires an HCI with an event recorder.
type harness struct {
	k      *sim.Kernel
	h      *HCI
	events []Event
}

func newHarness(t *testing.T, seed int64, med *radio.Medium) *harness {
	t.Helper()
	k := sim.NewKernel(seed)
	h := New(k, Config{Addr: 1}, med)
	ha := &harness{k: k, h: h}
	h.OnEvent = func(e Event) { ha.events = append(ha.events, e) }
	return ha
}

func (ha *harness) count(t EventType) int {
	n := 0
	for _, e := range ha.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

func (ha *harness) last(t EventType) (Event, bool) {
	for i := len(ha.events) - 1; i >= 0; i-- {
		if ha.events[i].Type == t {
			return ha.events[i], true
		}
	}
	return Event{}, false
}

func TestInquiryDiscoversAndCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ha := newHarness(t, rng.Int63(), nil)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))

	if err := ha.h.Inquiry(10 * sim.TicksPerSecond); err != nil {
		t.Fatal(err)
	}
	if !ha.h.Inquiring() {
		t.Error("Inquiring() false during inquiry")
	}
	if err := ha.h.Inquiry(10); !errors.Is(err, ErrInquiryRunning) {
		t.Errorf("second inquiry error = %v", err)
	}
	ha.k.RunUntil(12 * sim.TicksPerSecond)
	if got := ha.count(EventInquiryResult); got != 1 {
		t.Errorf("inquiry results = %d, want 1", got)
	}
	if got := ha.count(EventInquiryComplete); got != 1 {
		t.Errorf("inquiry completes = %d, want 1", got)
	}
	if ha.h.Inquiring() {
		t.Error("Inquiring() true after completion")
	}
}

func TestInquiryCancel(t *testing.T) {
	ha := newHarness(t, 4, nil)
	defer ha.h.Close()
	if err := ha.h.Inquiry(10 * sim.TicksPerSecond); err != nil {
		t.Fatal(err)
	}
	ha.k.RunUntil(100)
	if err := ha.h.InquiryCancel(); err != nil {
		t.Fatal(err)
	}
	if ha.h.Inquiring() {
		t.Error("still inquiring after cancel")
	}
	if got := ha.count(EventInquiryComplete); got != 1 {
		t.Errorf("completes after cancel = %d, want 1", got)
	}
	// The deferred timeout must not emit a second complete.
	ha.k.RunUntil(20 * sim.TicksPerSecond)
	if got := ha.count(EventInquiryComplete); got != 1 {
		t.Errorf("completes after timeout tick = %d, want 1", got)
	}
	// Cancel when idle is a no-op.
	if err := ha.h.InquiryCancel(); err != nil {
		t.Errorf("idle cancel = %v", err)
	}
}

func TestRepeatInquiryReportsDeviceAgain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ha := newHarness(t, rng.Int63(), nil)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))
	for i := 0; i < 2; i++ {
		if err := ha.h.Inquiry(10 * sim.TicksPerSecond); err != nil {
			t.Fatal(err)
		}
		ha.k.RunUntil(ha.k.Now() + 11*sim.TicksPerSecond)
	}
	if got := ha.count(EventInquiryResult); got != 2 {
		t.Errorf("results over two inquiries = %d, want 2", got)
	}
}

func TestCreateConnectionLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ha := newHarness(t, rng.Int63(), nil)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))

	if err := ha.h.CreateConnection(0xB1); err != nil {
		t.Fatal(err)
	}
	ha.k.RunUntil(10 * sim.TicksPerSecond)
	ev, ok := ha.last(EventConnectionComplete)
	if !ok || ev.Status != StatusOK || ev.Addr != 0xB1 {
		t.Fatalf("connection event = %+v, %v", ev, ok)
	}
	if !ha.h.Connected(0xB1) || ha.h.NumConnections() != 1 {
		t.Error("link not registered")
	}
	if err := ha.h.CreateConnection(0xB1); !errors.Is(err, ErrConnected) {
		t.Errorf("reconnect error = %v", err)
	}
	if err := ha.h.Disconnect(0xB1); err != nil {
		t.Fatal(err)
	}
	if ha.h.Connected(0xB1) {
		t.Error("still connected after Disconnect")
	}
	if ev, ok := ha.last(EventDisconnectionComplete); !ok || ev.Status != StatusOK {
		t.Errorf("disconnection event = %+v, %v", ev, ok)
	}
	if err := ha.h.Disconnect(0xB1); !errors.Is(err, ErrNotConnected) {
		t.Errorf("double disconnect error = %v", err)
	}
}

func TestCreateConnectionUnknownDevice(t *testing.T) {
	ha := newHarness(t, 7, nil)
	defer ha.h.Close()
	if err := ha.h.CreateConnection(0xDEAD); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("error = %v", err)
	}
}

func TestCreateConnectionBusy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ha := newHarness(t, rng.Int63(), nil)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))
	ha.h.AttachDevice(testDevice(rng, 0xB2))
	if err := ha.h.CreateConnection(0xB1); err != nil {
		t.Fatal(err)
	}
	if err := ha.h.CreateConnection(0xB2); !errors.Is(err, ErrConnBusy) {
		t.Errorf("busy error = %v", err)
	}
}

func TestConnectionUnreachable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 0xB1, Pos: radio.Point{X: 99, Y: 0}})
	ha := newHarness(t, rng.Int63(), med)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))
	if err := ha.h.CreateConnection(0xB1); err != nil {
		t.Fatal(err)
	}
	ha.k.RunUntil(10 * sim.TicksPerSecond)
	ev, ok := ha.last(EventConnectionComplete)
	if !ok || ev.Status != StatusUnreachable {
		t.Errorf("event = %+v, %v; want unreachable", ev, ok)
	}
	if ha.h.Connected(0xB1) {
		t.Error("unreachable device connected")
	}
}

func TestSupervisionDropsLink(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 0xB1, Pos: radio.Point{X: 2, Y: 0}})
	ha := newHarness(t, rng.Int63(), med)
	defer ha.h.Close()
	ha.h.AttachDevice(testDevice(rng, 0xB1))
	if err := ha.h.CreateConnection(0xB1); err != nil {
		t.Fatal(err)
	}
	ha.k.RunUntil(10 * sim.TicksPerSecond)
	if !ha.h.Connected(0xB1) {
		t.Fatal("connection failed")
	}
	med.Move(0xB1, radio.Point{X: 99, Y: 0})
	ha.k.RunUntil(20 * sim.TicksPerSecond)
	if ha.h.Connected(0xB1) {
		t.Fatal("out-of-range link kept alive")
	}
	ev, ok := ha.last(EventDisconnectionComplete)
	if !ok || ev.Status != StatusSupervision {
		t.Errorf("event = %+v, %v; want supervision", ev, ok)
	}
}

func TestEventAndStatusStrings(t *testing.T) {
	names := map[string]string{
		EventInquiryResult.String():         "inquiry-result",
		EventInquiryComplete.String():       "inquiry-complete",
		EventConnectionComplete.String():    "connection-complete",
		EventDisconnectionComplete.String(): "disconnection-complete",
		StatusOK.String():                   "ok",
		StatusTimeout.String():              "timeout",
		StatusUnreachable.String():          "unreachable",
		StatusSupervision.String():          "supervision-timeout",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("%q != %q", got, want)
		}
	}
	if EventType(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enum names empty")
	}
}
