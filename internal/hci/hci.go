// Package hci provides a BlueZ-like Host Controller Interface facade over
// the simulated baseband: Inquiry / Inquiry_Cancel / Create_Connection /
// Disconnect commands and Inquiry_Result / Inquiry_Complete /
// Connection_Complete / Disconnection_Complete events. The BIPS
// workstation programs against this interface exactly as the paper's
// implementation programmed against the official Linux Bluetooth stack.
package hci

import (
	"errors"
	"fmt"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/page"
	"bips/internal/piconet"
	"bips/internal/radio"
	"bips/internal/sim"
)

// EventType enumerates HCI events.
type EventType int

// HCI events delivered to the host.
const (
	// EventInquiryResult reports one discovered device.
	EventInquiryResult EventType = iota + 1
	// EventInquiryComplete reports the end of an inquiry.
	EventInquiryComplete
	// EventConnectionComplete reports a finished Create_Connection
	// (inspect Status).
	EventConnectionComplete
	// EventDisconnectionComplete reports a closed connection.
	EventDisconnectionComplete
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventInquiryResult:
		return "inquiry-result"
	case EventInquiryComplete:
		return "inquiry-complete"
	case EventConnectionComplete:
		return "connection-complete"
	case EventDisconnectionComplete:
		return "disconnection-complete"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Status is the command status carried by completion events.
type Status int

// Statuses.
const (
	// StatusOK means success.
	StatusOK Status = iota
	// StatusTimeout means the operation timed out (page timeout).
	StatusTimeout
	// StatusUnreachable means the peer is out of radio coverage.
	StatusUnreachable
	// StatusSupervision means the link supervision timer expired.
	StatusSupervision
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTimeout:
		return "timeout"
	case StatusUnreachable:
		return "unreachable"
	case StatusSupervision:
		return "supervision-timeout"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Event is one HCI event.
type Event struct {
	Type   EventType
	Addr   baseband.BDAddr
	At     sim.Tick
	Status Status
}

// Errors returned by commands.
var (
	ErrInquiryRunning = errors.New("hci: inquiry already running")
	ErrConnBusy       = errors.New("hci: connection setup in progress")
	ErrUnknownDevice  = errors.New("hci: unknown device")
	ErrNotConnected   = errors.New("hci: not connected")
	ErrConnected      = errors.New("hci: already connected")
)

// Config configures an HCI controller.
type Config struct {
	// Addr is the local radio address.
	Addr baseband.BDAddr
	// StartTrain, Policy, Collision configure the inquiry engine.
	StartTrain baseband.Train
	Policy     inquiry.TrainPolicy
	Collision  radio.CollisionPolicy
	// PollInterval is the link-supervision probe interval (default
	// piconet.DefaultPollInterval).
	PollInterval sim.Tick
	// SupervisionMisses is the number of consecutive failed probes that
	// close a link (default piconet.DefaultSupervisionMisses).
	SupervisionMisses int
	// PageTimeout bounds Create_Connection (0 = page default).
	PageTimeout sim.Tick
}

// HCI is one simulated Bluetooth controller in master role.
type HCI struct {
	// OnEvent receives every event; it must be set before issuing
	// commands. Events fire synchronously on the simulation goroutine.
	OnEvent func(Event)

	kernel *sim.Kernel
	cfg    Config
	medium *radio.Medium
	master *inquiry.Master
	pager  *page.Pager

	devices map[baseband.BDAddr]piconet.Device
	conns   map[baseband.BDAddr]*connState

	inquiring   bool
	inquiryStop sim.Handle
	pollStop    func()
}

type connState struct{ misses int }

// New returns an idle controller. medium may be nil.
func New(k *sim.Kernel, cfg Config, medium *radio.Medium) *HCI {
	if cfg.PollInterval == 0 {
		cfg.PollInterval = piconet.DefaultPollInterval
	}
	if cfg.SupervisionMisses == 0 {
		cfg.SupervisionMisses = piconet.DefaultSupervisionMisses
	}
	h := &HCI{
		kernel:  k,
		cfg:     cfg,
		medium:  medium,
		devices: make(map[baseband.BDAddr]piconet.Device),
		conns:   make(map[baseband.BDAddr]*connState),
	}
	h.master = inquiry.NewMaster(k, inquiry.MasterConfig{
		Addr:       cfg.Addr,
		StartTrain: cfg.StartTrain,
		Policy:     cfg.Policy,
		Collision:  cfg.Collision,
	}, medium)
	h.master.OnDiscovered = func(addr baseband.BDAddr, at sim.Tick) {
		h.emit(Event{Type: EventInquiryResult, Addr: addr, At: at})
	}
	h.pager = page.NewPager(k, cfg.Addr, medium)
	h.pollStop = k.Ticker(cfg.PollInterval, h.superviseLinks)
	return h
}

// Close stops background supervision. The controller must not be used
// afterwards.
func (h *HCI) Close() {
	if h.pollStop != nil {
		h.pollStop()
		h.pollStop = nil
	}
	h.master.StopInquiry()
}

// Addr returns the controller address.
func (h *HCI) Addr() baseband.BDAddr { return h.cfg.Addr }

// AttachDevice registers a mobile device with the controller's radio
// environment (the simulation-world equivalent of the device being
// powered on nearby).
func (h *HCI) AttachDevice(d piconet.Device) {
	h.devices[d.Addr()] = d
	h.master.AddSlave(d.Slave)
}

// Connected returns whether a link to addr is open.
func (h *HCI) Connected(addr baseband.BDAddr) bool {
	_, ok := h.conns[addr]
	return ok
}

// NumConnections returns the number of open links.
func (h *HCI) NumConnections() int { return len(h.conns) }

// Inquiring reports whether an inquiry is in progress.
func (h *HCI) Inquiring() bool { return h.inquiring }

func (h *HCI) emit(e Event) {
	if h.OnEvent != nil {
		h.OnEvent(e)
	}
}

// Inquiry starts a device discovery of the given length (HCI Inquiry with
// Inquiry_Length). Results arrive as EventInquiryResult; the inquiry ends
// with EventInquiryComplete. Previously discovered devices are forgotten
// at the start of each inquiry, matching the HCI behaviour of reporting
// every device present during this inquiry.
func (h *HCI) Inquiry(length sim.Tick) error {
	if h.inquiring {
		return ErrInquiryRunning
	}
	if length <= 0 {
		length = baseband.InquiryTimeoutTicks
	}
	h.inquiring = true
	for addr := range h.devices {
		if !h.Connected(addr) {
			h.master.Forget(addr)
		}
	}
	h.master.StartInquiry()
	h.inquiryStop = h.kernel.Schedule(length, func(k *sim.Kernel) {
		h.finishInquiry(k.Now())
	})
	return nil
}

// InquiryCancel stops a running inquiry immediately (HCI Inquiry_Cancel).
func (h *HCI) InquiryCancel() error {
	if !h.inquiring {
		return nil
	}
	h.inquiryStop.Cancel()
	h.finishInquiry(h.kernel.Now())
	return nil
}

func (h *HCI) finishInquiry(at sim.Tick) {
	if !h.inquiring {
		return
	}
	h.inquiring = false
	h.master.StopInquiry()
	h.emit(Event{Type: EventInquiryComplete, At: at})
}

// CreateConnection pages the device (HCI Create_Connection). Completion is
// reported via EventConnectionComplete. A single page may be in flight at
// a time, matching the single radio.
func (h *HCI) CreateConnection(addr baseband.BDAddr) error {
	dev, ok := h.devices[addr]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownDevice, addr)
	}
	if h.Connected(addr) {
		return fmt.Errorf("%w: %v", ErrConnected, addr)
	}
	if h.pager.Busy() {
		return ErrConnBusy
	}
	return h.pager.Page(dev.Scanner, h.cfg.PageTimeout, func(r page.Result) {
		status := StatusOK
		switch {
		case r.Err == nil:
			h.conns[addr] = &connState{}
		case errors.Is(r.Err, page.ErrNotReachable):
			status = StatusUnreachable
		default:
			status = StatusTimeout
		}
		h.emit(Event{Type: EventConnectionComplete, Addr: addr, At: h.kernel.Now(), Status: status})
	})
}

// Disconnect closes the link (HCI Disconnect). EventDisconnectionComplete
// is emitted synchronously.
func (h *HCI) Disconnect(addr baseband.BDAddr) error {
	if !h.Connected(addr) {
		return fmt.Errorf("%w: %v", ErrNotConnected, addr)
	}
	delete(h.conns, addr)
	h.master.Forget(addr)
	h.emit(Event{Type: EventDisconnectionComplete, Addr: addr, At: h.kernel.Now(), Status: StatusOK})
	return nil
}

// superviseLinks probes every open link; consecutive failures close it
// with StatusSupervision.
func (h *HCI) superviseLinks(k *sim.Kernel) {
	for addr, c := range h.conns {
		ok := true
		if h.medium != nil {
			ok = h.medium.InRange(h.cfg.Addr, addr) && !h.medium.Lost()
		}
		if ok {
			c.misses = 0
			continue
		}
		c.misses++
		if c.misses >= h.cfg.SupervisionMisses {
			delete(h.conns, addr)
			h.master.Forget(addr)
			h.emit(Event{
				Type: EventDisconnectionComplete, Addr: addr,
				At: k.Now(), Status: StatusSupervision,
			})
		}
	}
}
