package analytics

// Benchmarks over a generated million-device-day history: 2,000 devices
// observed for 500 days, two room changes per device-day, with room
// locality (each device walks a small home zone of a 200-room
// building). Built once per test binary and shared.
//
// BenchmarkContactTrace reports the latency distribution of full-window
// contact traces (custom metrics p50-ms/p99-ms — the ISSUE gate is
// p99 < 1s on one core). BenchmarkSegmentCompression reports sealed
// bytes per presence run and the compression ratio against the
// uncompressed 29-byte storage WAL record each run would otherwise
// cost (a run is one presence delta).

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

const (
	benchDevices   = 2000
	benchDays      = 500
	benchMovesPday = 2
	benchRooms     = 200
	benchZone      = 5 // rooms per device's home zone
	benchDayTicks  = 86_400
	// Every presence delta costs one 29-byte record in the PR 4 WAL
	// (internal/storage writeRecord: 1 op + 8 seq + 8 addr + 4 room +
	// 8 tick). That is the uncompressed baseline sealed segments are
	// measured against.
	walRecordBytes = 29.0
)

var (
	benchOnce sync.Once
	benchEng  *Engine
)

// benchEngine ingests the synthetic history once: ~2M presence runs
// (1M device-days x 2 moves/day), sealed periodically so nearly all of
// it sits in compressed segments.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		e, err := Open(Options{HistoryLimit: 64, SealInterval: -1, SealMinRuns: 1})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(1))
		// Per-device home zone start and walk state.
		zone := make([]int, benchDevices+1)
		for d := 1; d <= benchDevices; d++ {
			zone[d] = rng.Intn(benchRooms)
		}
		for day := 0; day < benchDays; day++ {
			base := sim.Tick(day * benchDayTicks)
			for d := 1; d <= benchDevices; d++ {
				for m := 0; m < benchMovesPday; m++ {
					room := graph.NodeID(1 + (zone[d]+rng.Intn(benchZone))%benchRooms)
					at := base + sim.Tick(m*benchDayTicks/benchMovesPday+rng.Intn(1000))
					e.Apply(locdb.Event{
						Fix:     locdb.Fix{Device: baseband.BDAddr(d), Piconet: room, At: at},
						Present: true,
					})
				}
			}
			if day%25 == 24 {
				if err := e.Seal(); err != nil {
					panic(err)
				}
			}
		}
		if err := e.Seal(); err != nil {
			panic(err)
		}
		benchEng = e
	})
	return benchEng
}

func BenchmarkContactTrace(b *testing.B) {
	e := benchEngine(b)
	to := sim.Tick(benchDays * benchDayTicks)
	rng := rand.New(rand.NewSource(2))
	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := baseband.BDAddr(1 + rng.Intn(benchDevices))
		start := time.Now()
		got := e.Contacts(dev, 0, to, 0)
		lat = append(lat, float64(time.Since(start).Nanoseconds())/1e6)
		if len(got) == 0 {
			b.Fatalf("device %d has no contacts over %d device-days", dev, benchDevices*benchDays)
		}
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)/2], "p50-ms")
	b.ReportMetric(lat[len(lat)*99/100], "p99-ms")
	b.ReportMetric(float64(benchDevices*benchDays), "device-days")
}

func BenchmarkOccupancySeries(b *testing.B) {
	e := benchEngine(b)
	to := sim.Tick(benchDays * benchDayTicks)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		room := graph.NodeID(1 + rng.Intn(benchRooms))
		// One bucket per day over the full history.
		if pts := e.Occupancy([]graph.NodeID{room}, 0, to, benchDayTicks); len(pts) != benchDays {
			b.Fatalf("series length %d, want %d", len(pts), benchDays)
		}
	}
}

func BenchmarkDwellRoom(b *testing.B) {
	e := benchEngine(b)
	to := sim.Tick(benchDays * benchDayTicks)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		room := graph.NodeID(1 + rng.Intn(benchRooms))
		if st := e.DwellRoom(room, 0, to); st.Samples == 0 {
			b.Fatalf("room %d has no dwell samples", room)
		}
	}
}

// BenchmarkSegmentCompression measures bytes on disk per sealed
// presence run against the 29-byte uncompressed WAL record baseline.
// The loop re-reads the already-built engine's stats; the metrics are
// what matter.
func BenchmarkSegmentCompression(b *testing.B) {
	e := benchEngine(b)
	var bytesPerRun, ratio float64
	for i := 0; i < b.N; i++ {
		st := e.Stats()
		if st["sealed_runs"] == 0 {
			b.Fatal("nothing sealed")
		}
		bytesPerRun = float64(st["sealed_bytes"]) / float64(st["sealed_runs"])
		ratio = walRecordBytes / bytesPerRun
	}
	b.ReportMetric(bytesPerRun, "bytes/run")
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(float64(e.Stats()["sealed_runs"]), "sealed-runs")
}
