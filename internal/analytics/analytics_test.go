package analytics

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// memEngine returns an engine with no background sealer and no
// directory, wired to a fresh single-threaded locdb.
func memEngine(t *testing.T, limit int) (*Engine, *locdb.DB) {
	t.Helper()
	db, err := locdb.NewSharded(4, limit)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(Options{HistoryLimit: limit, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	db.Subscribe(e.Apply)
	e.Seed(db.Dump())
	return e, db
}

func TestContactsBasic(t *testing.T) {
	e, db := memEngine(t, 32)
	// dev1 in room 3 over [100, 300), dev2 overlaps [150, 300) there,
	// dev3 is in room 4 the whole time.
	db.SetPresence(1, 3, 100)
	db.SetPresence(2, 3, 150)
	db.SetPresence(3, 4, 100)
	db.SetPresence(1, 5, 300)
	db.SetPresence(2, 5, 320)

	got := e.Contacts(1, 0, 400, 0)
	if len(got) != 1 {
		t.Fatalf("contacts = %+v, want exactly dev2", got)
	}
	c := got[0]
	// Overlap: room 3 over [150,300) = 150, room 5 over [320,400) = 80.
	if c.Device != 2 || c.Overlap != 230 {
		t.Fatalf("contact = %+v, want dev2 overlap 230", c)
	}
	if len(c.Rooms) != 2 || c.Rooms[0] != 3 || c.Rooms[1] != 5 {
		t.Fatalf("contact rooms = %v, want [3 5]", c.Rooms)
	}
	if c.First != 150 || c.Last != 400 {
		t.Fatalf("contact span = [%d, %d], want [150, 400]", c.First, c.Last)
	}
	// minOverlap filters.
	if got := e.Contacts(1, 0, 400, 231); len(got) != 0 {
		t.Fatalf("minOverlap 231 still returned %+v", got)
	}
	if got := e.Contacts(1, 0, 400, 230); len(got) != 1 {
		t.Fatalf("minOverlap 230 dropped the contact: %+v", got)
	}
	// Empty and inverted windows.
	if got := e.Contacts(1, 200, 200, 0); got != nil {
		t.Fatalf("empty window returned %+v", got)
	}
	if got := e.Contacts(1, 300, 100, 0); got != nil {
		t.Fatalf("inverted window returned %+v", got)
	}
}

func TestOccupancySeries(t *testing.T) {
	e, db := memEngine(t, 32)
	db.SetPresence(1, 3, 0)
	db.SetPresence(2, 3, 100)
	db.SetPresence(1, 4, 150) // dev1 leaves room 3 at 150
	pts := e.Occupancy([]graph.NodeID{3}, 0, 200, 50)
	want := []int{1, 1, 2, 1} // [0,50) dev1; [50,100) dev1; [100,150) both; [150,200) dev2
	if len(pts) != len(want) {
		t.Fatalf("buckets = %+v, want %d", pts, len(want))
	}
	for i, w := range want {
		if pts[i].Count != w || pts[i].Start != sim.Tick(i*50) {
			t.Fatalf("bucket %d = %+v, want count %d at %d", i, pts[i], w, i*50)
		}
	}
	// Zone = union of rooms, devices counted once.
	zone := e.Occupancy([]graph.NodeID{3, 4}, 150, 200, 50)
	if len(zone) != 1 || zone[0].Count != 2 {
		t.Fatalf("zone bucket = %+v, want 2 distinct devices", zone)
	}
	// Degenerate shapes.
	if pts := e.Occupancy([]graph.NodeID{3}, 100, 100, 10); pts != nil {
		t.Fatalf("empty window gave %+v", pts)
	}
	if pts := e.Occupancy([]graph.NodeID{3}, 0, 100, 0); pts != nil {
		t.Fatalf("zero bucket gave %+v", pts)
	}
}

func TestDwellSummaries(t *testing.T) {
	e, db := memEngine(t, 32)
	db.SetPresence(1, 3, 0)
	db.SetPresence(1, 4, 100) // dwell 100 in room 3
	db.SetPresence(2, 3, 50)
	db.SetPresence(2, 4, 250) // dwell 200 in room 3
	room := e.DwellRoom(3, 0, 1000)
	if room.Samples != 2 || room.Min != 100 || room.Max != 200 || room.Mean != 150 {
		t.Fatalf("room dwell = %+v, want samples 2, min 100, max 200, mean 150", room)
	}
	dev := e.DwellDevice(1, 0, 1000)
	// Runs: room 3 [0,100), room 4 [100,1000) clipped.
	if dev.Samples != 2 || dev.Min != 100 || dev.Max != 900 {
		t.Fatalf("device dwell = %+v, want samples 2, min 100, max 900", dev)
	}
	if empty := e.DwellRoom(9, 0, 1000); empty.Samples != 0 {
		t.Fatalf("empty room dwell = %+v", empty)
	}
}

func TestOutOfOrderTicksClampLikeHistdb(t *testing.T) {
	e, db := memEngine(t, 32)
	db.SetPresence(1, 3, 100)
	db.SetPresence(1, 4, 50) // out of order: clamps to 100
	db.SetPresence(1, 5, 200)
	// Run structure must be room3 [100,100) zero, room4 [100,200), room5 open.
	d := e.DwellDevice(1, 0, 300)
	if d.Samples != 2 || d.Min != 100 || d.Max != 100 {
		t.Fatalf("dwell after clamp = %+v, want two 100-tick samples", d)
	}
	// The zero-length room-3 run contributes nothing anywhere.
	if got := e.DwellRoom(3, 0, 300); got.Samples != 0 {
		t.Fatalf("zero-length run produced dwell samples: %+v", got)
	}
}

func TestDropErasesHotKeepsSealed(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, HistoryLimit: 32, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	db, err := locdb.NewSharded(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	db.Subscribe(e.Apply)

	db.SetPresence(1, 3, 100)
	db.SetPresence(2, 3, 100)
	db.SetPresence(1, 4, 200)
	db.SetPresence(2, 4, 200)
	if err := e.Seal(); err != nil { // room 3 runs sealed
		t.Fatal(err)
	}
	sealedBefore := e.Contacts(1, 0, 150, 0)
	if len(sealedBefore) != 1 {
		t.Fatalf("pre-drop sealed contacts = %+v", sealedBefore)
	}
	db.Drop(1)
	// Hot co-location in room 4 is gone; sealed room-3 evidence stays.
	if got := e.Contacts(1, 200, 1000, 0); len(got) != 0 {
		t.Fatalf("post-drop hot contacts = %+v, want none", got)
	}
	if got := e.Contacts(1, 0, 150, 0); len(got) != 1 || got[0].Overlap != sealedBefore[0].Overlap {
		t.Fatalf("post-drop sealed contacts = %+v, want %+v", got, sealedBefore)
	}
}

// TestSealedAnswersMatchUnsealed: sealing must be invisible to every
// query family — an engine sealing aggressively under random ingest
// answers byte-identically to one that never seals.
func TestSealedAnswersMatchUnsealed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	sealed, err := Open(Options{Dir: dir, HistoryLimit: 512, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sealed.Close()
	plain, err := Open(Options{HistoryLimit: 512, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	const devices, rooms = 12, 6
	tick := sim.Tick(0)
	for i := 0; i < 2000; i++ {
		tick += sim.Tick(rng.Intn(5))
		ev := locdb.Event{
			Fix: locdb.Fix{
				Device:  baseband.BDAddr(1 + rng.Intn(devices)),
				Piconet: graph.NodeID(1 + rng.Intn(rooms)),
				At:      tick - sim.Tick(rng.Intn(3)), // mild disorder
			},
			Present: true,
		}
		sealed.Apply(ev)
		plain.Apply(ev)
		if i%257 == 0 {
			if err := sealed.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sealed.Seal(); err != nil {
		t.Fatal(err)
	}
	if n := sealed.Stats()["segments"]; n < 2 {
		t.Fatalf("test is vacuous: only %d segments", n)
	}

	for q := 0; q < 50; q++ {
		from := sim.Tick(rng.Intn(int(tick)))
		to := from + sim.Tick(1+rng.Intn(int(tick)))
		dev := baseband.BDAddr(1 + rng.Intn(devices))
		room := graph.NodeID(1 + rng.Intn(rooms))
		checkJSONEqual(t, "contacts", sealed.Contacts(dev, from, to, 0), plain.Contacts(dev, from, to, 0))
		bucket := 1 + sim.Tick(rng.Intn(50))
		checkJSONEqual(t, "occupancy",
			sealed.Occupancy([]graph.NodeID{room, room + 1}, from, to, bucket),
			plain.Occupancy([]graph.NodeID{room, room + 1}, from, to, bucket))
		checkJSONEqual(t, "dwellRoom", sealed.DwellRoom(room, from, to), plain.DwellRoom(room, from, to))
		checkJSONEqual(t, "dwellDev", sealed.DwellDevice(dev, from, to), plain.DwellDevice(dev, from, to))
	}
}

func checkJSONEqual(t *testing.T, what string, got, want any) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(w) {
		t.Fatalf("%s diverged:\n got %s\nwant %s", what, g, w)
	}
}

// TestCrashRecoveryIdenticalAnswers: abandoning an engine without Close
// (the SIGKILL case — hot state lost, sealed segments on disk) and
// reopening over the same directory with a locdb dump seed must restore
// byte-identical answers for every query family.
func TestCrashRecoveryIdenticalAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	db, err := locdb.NewSharded(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Open(Options{Dir: dir, HistoryLimit: 256, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	cancel := db.Subscribe(e1.Apply)
	tick := sim.Tick(0)
	for i := 0; i < 3000; i++ {
		tick += sim.Tick(rng.Intn(4))
		dev := baseband.BDAddr(1 + rng.Intn(20))
		switch rng.Intn(10) {
		case 8:
			db.SetAbsence(dev, graph.NodeID(1+rng.Intn(8)), tick)
		case 9:
			if rng.Intn(4) == 0 {
				db.Drop(dev)
			}
		default:
			db.SetPresence(dev, graph.NodeID(1+rng.Intn(8)), tick)
		}
		if i == 1000 || i == 2000 {
			if err := e1.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}

	type answers struct {
		Contacts []Contact
		Occ      []OccupancyPoint
		Dwell    DwellStats
		DwellDev DwellStats
	}
	capture := func(e *Engine) []answers {
		var out []answers
		for d := 1; d <= 20; d++ {
			out = append(out, answers{
				Contacts: e.Contacts(baseband.BDAddr(d), 0, tick+1, 0),
				Occ:      e.Occupancy([]graph.NodeID{graph.NodeID(1 + d%8)}, 0, tick+1, 97),
				Dwell:    e.DwellRoom(graph.NodeID(1+d%8), 0, tick+1),
				DwellDev: e.DwellDevice(baseband.BDAddr(d), 0, tick+1),
			})
		}
		return out
	}
	before := capture(e1)
	cancel()
	// No Close: e1's hot tier dies with it, like a SIGKILL.

	e2, err := Open(Options{Dir: dir, HistoryLimit: 256, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	db.Subscribe(e2.Apply)
	e2.Seed(db.Dump())
	checkJSONEqual(t, "post-crash answers", capture(e2), before)

	// And the recovered engine keeps working: new traffic lands. Rooms
	// 100/101 are untouched by the random phase, so no open-ended run of
	// an older device reaches into this window.
	db.SetPresence(99, 100, tick+100)
	db.SetPresence(98, 100, tick+150)
	db.SetPresence(99, 101, tick+200)
	if got := e2.Contacts(99, tick+100, tick+300, 0); len(got) != 1 || got[0].Device != 98 {
		t.Fatalf("post-recovery ingest: contacts = %+v", got)
	}
}

func TestCorruptAndStraySegmentFiles(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, HistoryLimit: 32, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 3, At: 10}, Present: true})
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 4, At: 20}, Present: true})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// A stale tmp file (crash mid-seal) is ignored.
	if err := os.WriteFile(filepath.Join(dir, "seg-0000000000000009.seg.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Dir: dir, HistoryLimit: 32, SealInterval: -1})
	if err != nil {
		t.Fatalf("stale tmp file broke open: %v", err)
	}
	if n := e2.Stats()["segments"]; n != 1 {
		t.Fatalf("segments = %d, want 1", n)
	}
	e2.Close()

	// A corrupt .seg file fails the open loudly.
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(names) != 1 {
		t.Fatalf("segment files = %v", names)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, HistoryLimit: 32, SealInterval: -1}); err == nil {
		t.Fatal("corrupt segment opened without error")
	}
}

func TestRetentionExpiresOldSegments(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, HistoryLimit: 64, SealInterval: -1, Retain: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Old era: runs ending by tick 50.
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 3, At: 10}, Present: true})
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 4, At: 50}, Present: true})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if n := e.Stats()["segments"]; n != 1 {
		t.Fatalf("segments = %d, want 1", n)
	}
	// New era far past the retention window.
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 5, At: 500}, Present: true})
	e.Apply(locdb.Event{Fix: locdb.Fix{Device: 1, Piconet: 6, At: 600}, Present: true})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st["expired_segments"] != 1 {
		t.Fatalf("expired = %d, want 1 (stats %v)", st["expired_segments"], st)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(files) != int(st["segments"]) {
		t.Fatalf("files on disk %d != live segments %d", len(files), st["segments"])
	}
}

// TestBackgroundSealer: the seal loop cuts a segment once the threshold
// is crossed, without an explicit Seal call.
func TestBackgroundSealer(t *testing.T) {
	e, err := Open(Options{HistoryLimit: 64, SealInterval: 5 * time.Millisecond, SealMinRuns: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 30; i++ {
		e.Apply(locdb.Event{
			Fix:     locdb.Fix{Device: 1, Piconet: graph.NodeID(1 + i%5), At: sim.Tick(i * 10)},
			Present: true,
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Stats()["segments"] > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background sealer never sealed: stats %v", e.Stats())
}

// TestContactTraceSmoke is the CI gate on the query path: a
// moderate-scale generated history (hundreds of devices, sealed
// segments) must answer contact traces correctly in well under a
// second. The million-device-day version lives in the benchmarks.
func TestContactTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, HistoryLimit: 128, SealInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const devices, rooms, moves = 200, 20, 40
	rng := rand.New(rand.NewSource(1))
	for m := 0; m < moves; m++ {
		for d := 1; d <= devices; d++ {
			// Device d walks a home zone of 4 rooms.
			room := graph.NodeID(1 + (d+rng.Intn(4))%rooms)
			e.Apply(locdb.Event{
				Fix:     locdb.Fix{Device: baseband.BDAddr(d), Piconet: room, At: sim.Tick(m * 100)},
				Present: true,
			})
		}
		if m == moves/2 {
			if err := e.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	start := time.Now()
	traced := 0
	for d := 1; d <= devices; d += 7 {
		got := e.Contacts(baseband.BDAddr(d), 0, moves*100, 0)
		if len(got) == 0 {
			t.Fatalf("device %d traced no contacts in a crowded building", d)
		}
		traced++
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("%d traces took %v — contact tracing is not interactive", traced, elapsed)
	}
}
