// Package analytics is the cross-device history engine of the BIPS
// location service: an inverted room → presence-interval index
// maintained beside the per-device history (histdb), answering the
// three query families that per-device logs cannot answer without an
// O(devices) scan — contact tracing (which devices shared a room with
// device X, and for how long), room/zone occupancy time series, and
// dwell-time distributions.
//
// # Interval semantics
//
// The engine consumes the same presence-delta stream the fan-out tree
// does (locdb.Store.Subscribe) and mirrors histdb's run semantics
// exactly: every presence report opens a run in the reported room, the
// run closes when the device's next report arrives (or extends to the
// query horizon for the newest one), ticks arriving out of order are
// clamped forward, duplicate reports are no-ops, and the per-device
// hot log is bounded by the same history limit. Plain absences do not
// close runs — the paper's delta protocol makes absences invisible to
// history (LocateAt after an absence still answers the last room) —
// but a Drop (logout) erases the device's hot state, matching
// locdb.Drop erasing its history. Because the hot store is a pure
// function of the same inputs histdb sees, its answers are
// byte-comparable against a recomputation from the per-device logs,
// and it can be rebuilt from a locdb dump after a crash.
//
// # Sealed segments and retention
//
// A bounded hot log alone caps how far back analytics can see, so the
// engine periodically seals closed runs into immutable, CRC-guarded,
// delta/varint-compressed segment files (the same
// write-temp/fsync/rename discipline as internal/storage snapshots)
// and trims them from the hot store. Data then lives in three tiers:
// hot (mutable, in memory, bounded per device), sealed (immutable,
// compressed, on disk when a directory is configured), and expired
// (segments older than the retention window are deleted). Sealing is
// tracked with a per-device watermark — the end of the device's last
// sealed run — so recovery seeding from a locdb dump skips exactly the
// runs the segments already hold. Queries answer from the union of the
// sealed and hot tiers, which by construction hold disjoint runs.
//
// The engine additionally mirrors the fan-out tree's live-occupancy
// view (current room per device, fed by presences, absences and
// drops), so OccupancyNow agrees with fanout.Occupancy instead of with
// the history semantics, where a run extends until the next report.
package analytics

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/histdb"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// DefaultSealInterval is how often the background sealer checks whether
// enough closed runs accumulated to be worth a segment.
const DefaultSealInterval = 30 * time.Second

// DefaultSealMinRuns is the default sealing threshold: a segment is cut
// once at least this many closed runs sit in the hot tier. Small enough
// to keep the hot tier bounded, large enough that segments amortize
// their header.
const DefaultSealMinRuns = 4096

// MaxContacts bounds one contact-trace answer: the strongest contacts
// by total overlap are kept. A device that shared rooms with more peers
// than this is an aggregate question (occupancy), not a trace.
const MaxContacts = 256

// maxBuckets is the engine-side backstop on occupancy series length;
// the wire layer enforces its own (smaller) bound before a query gets
// here.
const maxBuckets = 1 << 16

// Options configures an Engine.
type Options struct {
	// Dir is where sealed segments live; empty keeps sealed segments in
	// memory only (they are still compressed, but do not survive the
	// process).
	Dir string
	// HistoryLimit is the per-device hot-run bound and must mirror the
	// location store's history limit so eviction stays in lockstep
	// (locdb.Store.HistoryLimit). Zero or negative disables interval
	// indexing entirely — only the live occupancy view remains.
	HistoryLimit int
	// SealInterval is the background sealer's period. Zero means
	// DefaultSealInterval; negative disables the background sealer
	// (Seal must then be called explicitly).
	SealInterval time.Duration
	// SealMinRuns is the sealing threshold. Zero means
	// DefaultSealMinRuns.
	SealMinRuns int
	// Retain is the retention window in ticks: after a seal, segments
	// whose newest run ended more than Retain ticks before the newest
	// tick seen are deleted. Zero keeps everything forever.
	Retain sim.Tick
}

// devState is one device's hot visit log, mirroring its histdb log
// (possibly minus a sealed-and-trimmed prefix).
type devState struct {
	visits []histdb.Visit
}

// Engine is the analytics engine. One instance subscribes to a
// locdb.Store and serves Contacts, Occupancy and Dwell queries.
type Engine struct {
	dir      string
	limit    int
	interval time.Duration
	sealMin  int
	retain   sim.Tick

	mu        sync.RWMutex
	devs      map[baseband.BDAddr]*devState
	roomDevs  map[graph.NodeID]map[baseband.BDAddr]int // hot visit refcounts
	watermark map[baseband.BDAddr]sim.Tick             // end of last sealed run
	segs      []*segment
	nextSeq   uint64
	sealable  int // positive closed unsealed runs across the hot tier
	maxSeen   sim.Tick

	// Live occupancy view, mirroring fanout's devRoom/occupancy.
	devRoom   map[baseband.BDAddr]graph.NodeID
	occupancy map[graph.NodeID]int

	events     atomic.Int64
	qContacts  atomic.Int64
	qOccupancy atomic.Int64
	qDwell     atomic.Int64
	sealedRuns int64 // under mu
	sealedB    int64 // under mu
	expired    int64 // under mu

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewMemory returns a memory-only engine (no segment directory) with
// the given history limit and default sealing policy. It cannot fail.
func NewMemory(historyLimit int) *Engine {
	e, err := Open(Options{HistoryLimit: historyLimit})
	if err != nil { // unreachable: no directory, nothing to open
		panic(err)
	}
	return e
}

// Open creates an engine and, when a directory is configured, loads
// every sealed segment in it (verifying magic and CRC — a corrupt
// segment fails the open rather than silently narrowing history).
func Open(opts Options) (*Engine, error) {
	e := &Engine{
		dir:       opts.Dir,
		limit:     opts.HistoryLimit,
		interval:  opts.SealInterval,
		sealMin:   opts.SealMinRuns,
		retain:    opts.Retain,
		devs:      make(map[baseband.BDAddr]*devState),
		roomDevs:  make(map[graph.NodeID]map[baseband.BDAddr]int),
		watermark: make(map[baseband.BDAddr]sim.Tick),
		devRoom:   make(map[baseband.BDAddr]graph.NodeID),
		occupancy: make(map[graph.NodeID]int),
	}
	if e.interval == 0 {
		e.interval = DefaultSealInterval
	}
	if e.sealMin <= 0 {
		e.sealMin = DefaultSealMinRuns
	}
	if e.dir != "" {
		if err := os.MkdirAll(e.dir, 0o755); err != nil {
			return nil, fmt.Errorf("analytics: %w", err)
		}
		if err := e.loadSegments(); err != nil {
			return nil, err
		}
	}
	if e.interval > 0 {
		e.stop = make(chan struct{})
		e.done = make(chan struct{})
		go e.sealLoop()
	}
	return e, nil
}

// loadSegments loads every seg-*.seg file in the directory, rebuilding
// the per-device watermarks and the seal sequence counter.
func (e *Engine) loadSegments() error {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(e.dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("analytics: %w", err)
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%016d.seg", &seq); err != nil {
			return fmt.Errorf("analytics: segment name %q: %w", name, err)
		}
		seg, err := parseSegment(raw, path, seq)
		if err != nil {
			return fmt.Errorf("analytics: segment %s: %w", name, err)
		}
		e.segs = append(e.segs, seg)
		if seq >= e.nextSeq {
			e.nextSeq = seq + 1
		}
		for dev, end := range seg.devMax {
			if end > e.watermark[dev] {
				e.watermark[dev] = end
			}
		}
		if seg.maxEnd > e.maxSeen {
			e.maxSeen = seg.maxEnd
		}
		e.sealedRuns += seg.runs
		e.sealedB += int64(len(seg.raw))
	}
	return nil
}

// Apply consumes one presence change. It is the locdb subscription
// callback: wire it with store.Subscribe(engine.Apply) — or, batch-
// aware, store.SubscribeSink(engine) — and then Seed the engine from
// the store's dump before traffic flows.
func (e *Engine) Apply(ev locdb.Event) {
	e.events.Add(1)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.applyLocked(ev)
}

// OnEvent implements locdb.Sink: one delta from the single-mutation
// paths.
func (e *Engine) OnEvent(ev locdb.Event) { e.Apply(ev) }

// OnEvents implements locdb.Sink: a whole ApplyBatch frame ingested
// under one lock acquisition instead of one per delta, so the hot
// tier's cost on the batched write path is per frame, not per event.
func (e *Engine) OnEvents(evs []locdb.Event) {
	if len(evs) == 0 {
		return
	}
	e.events.Add(int64(len(evs)))
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ev := range evs {
		e.applyLocked(ev)
	}
}

// applyLocked folds one presence change into the live view and the hot
// tier. The caller holds e.mu.
func (e *Engine) applyLocked(ev locdb.Event) {
	if ev.At > e.maxSeen {
		e.maxSeen = ev.At
	}
	switch {
	case ev.Dropped:
		e.dropLocked(ev.Device)
		if room, ok := e.devRoom[ev.Device]; ok {
			delete(e.devRoom, ev.Device)
			e.decOccupancy(room)
		}
	case ev.Present:
		e.appendLocked(ev.Device, ev.Piconet, ev.At)
		if old, ok := e.devRoom[ev.Device]; !ok || old != ev.Piconet {
			if ok {
				e.decOccupancy(old)
			}
			e.devRoom[ev.Device] = ev.Piconet
			e.occupancy[ev.Piconet]++
		}
	default: // absence: history keeps the run open, only the live view moves
		if old, ok := e.devRoom[ev.Device]; ok && old == ev.Piconet {
			delete(e.devRoom, ev.Device)
			e.decOccupancy(old)
		}
	}
}

func (e *Engine) decOccupancy(room graph.NodeID) {
	if n := e.occupancy[room] - 1; n > 0 {
		e.occupancy[room] = n
	} else {
		delete(e.occupancy, room)
	}
}

// appendLocked mirrors histdb.Log.Append byte for byte: clamp the tick
// forward, drop exact duplicates, append, evict past the limit.
func (e *Engine) appendLocked(dev baseband.BDAddr, room graph.NodeID, at sim.Tick) {
	if e.limit <= 0 {
		return
	}
	ds := e.devs[dev]
	if ds == nil {
		ds = &devState{}
		e.devs[dev] = ds
	}
	v := histdb.Visit{Piconet: room, At: at}
	if n := len(ds.visits); n > 0 {
		last := ds.visits[n-1]
		if v.At < last.At {
			v.At = last.At
		}
		if last == v {
			return
		}
		if v.At > last.At {
			e.sealable++ // the run starting at last just closed, positively
		}
	}
	ds.visits = append(ds.visits, v)
	e.roomRef(room, dev, +1)
	if len(ds.visits) > e.limit {
		evicted := ds.visits[:len(ds.visits)-e.limit]
		for i, ev := range evicted {
			e.roomRef(ev.Piconet, dev, -1)
			if ds.visits[i+1].At > ev.At {
				e.sealable--
			}
		}
		ds.visits = ds.visits[len(ds.visits)-e.limit:]
	}
}

// dropLocked erases the device's hot tier (sealed segments keep their
// runs: retention outlives logout).
func (e *Engine) dropLocked(dev baseband.BDAddr) {
	ds := e.devs[dev]
	if ds == nil {
		return
	}
	e.sealable -= positiveClosed(ds.visits)
	for _, v := range ds.visits {
		e.roomRef(v.Piconet, dev, -1)
	}
	delete(e.devs, dev)
	delete(e.watermark, dev)
}

// positiveClosed counts the closed runs with positive length in a
// visit log (zero-length runs contribute to no query and are never
// sealed).
func positiveClosed(visits []histdb.Visit) int {
	n := 0
	for i := 0; i+1 < len(visits); i++ {
		if visits[i+1].At > visits[i].At {
			n++
		}
	}
	return n
}

// roomRef adjusts the hot visit refcount of (room, dev).
func (e *Engine) roomRef(room graph.NodeID, dev baseband.BDAddr, d int) {
	m := e.roomDevs[room]
	if m == nil {
		if d <= 0 {
			return
		}
		m = make(map[baseband.BDAddr]int)
		e.roomDevs[room] = m
	}
	if c := m[dev] + d; c > 0 {
		m[dev] = c
	} else {
		delete(m, dev)
		if len(m) == 0 {
			delete(e.roomDevs, room)
		}
	}
}

// Seed primes the engine from a locdb dump (locdb.Store.Dump): the
// live view from the current fixes, the hot tier from the recorded
// histories, minus the prefix the sealed segments already hold (the
// per-device watermark). Call it once, after Subscribe and before
// traffic flows, exactly like fanout.Tree.Seed; devices the engine
// already knows are left untouched.
func (e *Engine) Seed(dumps []locdb.DeviceDump) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, d := range dumps {
		if d.Present {
			if _, ok := e.devRoom[d.Device]; !ok {
				e.devRoom[d.Device] = d.Current.Piconet
				e.occupancy[d.Current.Piconet]++
			}
			if d.Current.At > e.maxSeen {
				e.maxSeen = d.Current.At
			}
		}
		if e.limit <= 0 || len(d.History) == 0 {
			continue
		}
		if _, ok := e.devs[d.Device]; ok {
			continue
		}
		visits := make([]histdb.Visit, len(d.History))
		for i, f := range d.History {
			visits[i] = histdb.Visit{Piconet: f.Piconet, At: f.At}
		}
		wm := e.watermark[d.Device]
		for len(visits) >= 2 && visits[1].At <= wm {
			visits = visits[1:]
		}
		e.devs[d.Device] = &devState{visits: visits}
		for _, v := range visits {
			e.roomRef(v.Piconet, d.Device, +1)
		}
		e.sealable += positiveClosed(visits)
		if last := visits[len(visits)-1].At; last > e.maxSeen {
			e.maxSeen = last
		}
	}
}

// OccupancyNow reports how many devices are currently in the room,
// from the live view — the same number fanout.Occupancy reports, not
// the history semantics where a run lasts until the next report.
func (e *Engine) OccupancyNow(room graph.NodeID) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.occupancy[room]
}

// sealLoop is the background sealer: every interval, cut a segment if
// the threshold is reached, and apply retention either way.
func (e *Engine) sealLoop() {
	defer close(e.done)
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			e.mu.Lock()
			if e.sealable >= e.sealMin {
				_ = e.sealLocked() // failure keeps runs hot; next tick retries
			} else {
				e.expireLocked()
			}
			e.mu.Unlock()
		}
	}
}

// Seal cuts a segment from every closed hot run immediately,
// regardless of the threshold.
func (e *Engine) Seal() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked()
}

// Close stops the background sealer and, when a directory is
// configured, seals the remaining closed runs so a clean restart
// starts from full segments.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		if e.stop != nil {
			close(e.stop)
			<-e.done
		}
		if e.dir != "" {
			e.mu.Lock()
			if e.sealable > 0 {
				e.closeErr = e.sealLocked()
			}
			e.mu.Unlock()
		}
	})
	return e.closeErr
}

// Stats returns the engine's counters, merged into MsgStats under the
// "analytics." prefix by the server.
func (e *Engine) Stats() map[string]int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	hotRuns := 0
	for _, ds := range e.devs {
		hotRuns += len(ds.visits)
	}
	return map[string]int64{
		"events":            e.events.Load(),
		"queries_contacts":  e.qContacts.Load(),
		"queries_occupancy": e.qOccupancy.Load(),
		"queries_dwell":     e.qDwell.Load(),
		"hot_devices":       int64(len(e.devs)),
		"hot_runs":          int64(hotRuns),
		"sealable_runs":     int64(e.sealable),
		"segments":          int64(len(e.segs)),
		"sealed_runs":       e.sealedRuns,
		"sealed_bytes":      e.sealedB,
		"expired_segments":  e.expired,
	}
}
