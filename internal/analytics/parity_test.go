package analytics

// Parity properties: with sealing disabled the engine's hot tier is a
// pure function of the event stream, mirroring histdb, so every answer
// must byte-match (as JSON) a naive recomputation straight from the
// per-device histories in locdb.Dump — under randomized ingest with
// out-of-order ticks, absences, drops and history eviction. The live
// view must likewise agree with the fan-out tree at every instant.

import (
	"math/rand"
	"sort"
	"testing"

	"bips/internal/baseband"
	"bips/internal/fanout"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/sim"
)

// intervalsOf derives the presence runs from one device's dumped
// history: run i spans [v_i, v_{i+1}) in v_i's room, the newest run is
// open-ended and clips to the horizon `to`.
type devIv struct {
	room graph.NodeID
	runIv
}

func intervalsOf(h []locdb.Fix, to sim.Tick) []devIv {
	out := make([]devIv, 0, len(h))
	for i, f := range h {
		end := to
		if i+1 < len(h) {
			end = h[i+1].At
		}
		out = append(out, devIv{room: f.Piconet, runIv: runIv{start: f.At, end: end}})
	}
	return out
}

func naiveContacts(dumps []locdb.DeviceDump, dev baseband.BDAddr, from, to, minOverlap sim.Tick) []Contact {
	if to <= from {
		return nil
	}
	if minOverlap < 1 {
		minOverlap = 1
	}
	var target []devIv
	others := make(map[baseband.BDAddr][]devIv)
	for _, d := range dumps {
		ivs := intervalsOf(d.History, to)
		if d.Device == dev {
			target = ivs
		} else {
			others[d.Device] = ivs
		}
	}
	acc := make(map[baseband.BDAddr]*contactAcc)
	for other, ivs := range others {
		for _, a := range target {
			ar, ok := clip(a.runIv, from, to)
			if !ok {
				continue
			}
			for _, b := range ivs {
				if b.room != a.room {
					continue
				}
				br, ok := clip(b.runIv, from, to)
				if !ok {
					continue
				}
				s, en := ar.start, ar.end
				if br.start > s {
					s = br.start
				}
				if br.end < en {
					en = br.end
				}
				if en <= s {
					continue
				}
				ca := acc[other]
				if ca == nil {
					ca = &contactAcc{rooms: make(map[graph.NodeID]struct{}), first: s, last: en}
					acc[other] = ca
				}
				ca.overlap += en - s
				ca.rooms[a.room] = struct{}{}
				if s < ca.first {
					ca.first = s
				}
				if en > ca.last {
					ca.last = en
				}
			}
		}
	}
	out := make([]Contact, 0, len(acc))
	for other, a := range acc {
		if a.overlap < minOverlap {
			continue
		}
		rooms := make([]graph.NodeID, 0, len(a.rooms))
		for r := range a.rooms {
			rooms = append(rooms, r)
		}
		sort.Slice(rooms, func(i, j int) bool { return rooms[i] < rooms[j] })
		out = append(out, Contact{Device: other, Overlap: a.overlap, Rooms: rooms, First: a.first, Last: a.last})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].Device < out[j].Device
	})
	if len(out) > MaxContacts {
		out = out[:MaxContacts]
	}
	return out
}

func naiveOccupancy(dumps []locdb.DeviceDump, rooms []graph.NodeID, from, to, bucket sim.Tick) []OccupancyPoint {
	if to <= from || bucket <= 0 {
		return nil
	}
	nb64 := (int64(to-from) + int64(bucket) - 1) / int64(bucket)
	if nb64 <= 0 || nb64 > maxBuckets {
		return nil
	}
	nb := int(nb64)
	want := make(map[graph.NodeID]struct{}, len(rooms))
	for _, r := range rooms {
		want[r] = struct{}{}
	}
	sets := make([]map[baseband.BDAddr]struct{}, nb)
	for _, d := range dumps {
		for _, ivd := range intervalsOf(d.History, to) {
			if _, ok := want[ivd.room]; !ok {
				continue
			}
			r, ok := clip(ivd.runIv, from, to)
			if !ok {
				continue
			}
			lo := int((r.start - from) / bucket)
			hi := int((r.end - 1 - from) / bucket)
			for k := lo; k <= hi; k++ {
				if sets[k] == nil {
					sets[k] = make(map[baseband.BDAddr]struct{})
				}
				sets[k][d.Device] = struct{}{}
			}
		}
	}
	out := make([]OccupancyPoint, nb)
	for k := range out {
		out[k] = OccupancyPoint{Start: from + sim.Tick(k)*bucket, Count: len(sets[k])}
	}
	return out
}

func naiveDwellRoom(dumps []locdb.DeviceDump, room graph.NodeID, from, to sim.Tick) DwellStats {
	if to <= from {
		return DwellStats{}
	}
	var durs []float64
	for _, d := range dumps {
		for _, ivd := range intervalsOf(d.History, to) {
			if ivd.room != room {
				continue
			}
			if r, ok := clip(ivd.runIv, from, to); ok {
				durs = append(durs, float64(r.end-r.start))
			}
		}
	}
	return summarize(durs)
}

func naiveDwellDevice(dumps []locdb.DeviceDump, dev baseband.BDAddr, from, to sim.Tick) DwellStats {
	if to <= from {
		return DwellStats{}
	}
	var durs []float64
	for _, d := range dumps {
		if d.Device != dev {
			continue
		}
		for _, ivd := range intervalsOf(d.History, to) {
			if r, ok := clip(ivd.runIv, from, to); ok {
				durs = append(durs, float64(r.end-r.start))
			}
		}
	}
	return summarize(durs)
}

// TestParityWithPerDeviceLogs drives randomized ingest — out-of-order
// ticks, absences, drops, eviction past the history limit — through a
// real locdb with the engine and the fan-out tree subscribed, then
// byte-compares every query family against the naive recomputation and
// the live view against the tree.
func TestParityWithPerDeviceLogs(t *testing.T) {
	const (
		devices = 16
		rooms   = 8
		limit   = 24 // small: forces eviction parity to matter
		events  = 4000
	)
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db, err := locdb.NewSharded(4, limit)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Open(Options{HistoryLimit: db.HistoryLimit(), SealInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		tree := fanout.New()
		db.Subscribe(e.Apply)
		db.Subscribe(tree.Publish)
		e.Seed(db.Dump())
		tree.Seed(db.All())

		tick := sim.Tick(50)
		for i := 0; i < events; i++ {
			tick += sim.Tick(rng.Intn(6))
			dev := baseband.BDAddr(1 + rng.Intn(devices))
			at := tick
			if rng.Intn(8) == 0 {
				at -= sim.Tick(rng.Intn(40)) // out-of-order report
			}
			switch rng.Intn(20) {
			case 18: // absence from the current room (when present)
				if fix, err := db.Locate(dev); err == nil {
					db.SetAbsence(dev, fix.Piconet, at)
				}
			case 19:
				if rng.Intn(3) == 0 {
					db.Drop(dev)
				}
			default:
				db.SetPresence(dev, graph.NodeID(1+rng.Intn(rooms)), at)
			}
			if i%500 == 0 {
				for r := graph.NodeID(0); r <= rooms+1; r++ {
					if got, want := e.OccupancyNow(r), tree.Occupancy(r); got != want {
						t.Fatalf("seed %d event %d: OccupancyNow(%d) = %d, fanout says %d", seed, i, r, got, want)
					}
				}
			}
		}

		dumps := db.Dump()
		for q := 0; q < 8; q++ {
			from := sim.Tick(rng.Intn(int(tick)))
			to := from + sim.Tick(1+rng.Intn(int(tick)))
			minOv := sim.Tick(rng.Intn(3) * rng.Intn(20))
			bucket := sim.Tick(1 + rng.Intn(60))
			zone := []graph.NodeID{graph.NodeID(1 + rng.Intn(rooms)), graph.NodeID(1 + rng.Intn(rooms))}
			for d := 1; d <= devices; d++ {
				dev := baseband.BDAddr(d)
				checkJSONEqual(t, "contacts",
					e.Contacts(dev, from, to, minOv), naiveContacts(dumps, dev, from, to, minOv))
				checkJSONEqual(t, "dwellDevice",
					e.DwellDevice(dev, from, to), naiveDwellDevice(dumps, dev, from, to))
			}
			for r := graph.NodeID(1); r <= rooms; r++ {
				checkJSONEqual(t, "dwellRoom",
					e.DwellRoom(r, from, to), naiveDwellRoom(dumps, r, from, to))
			}
			checkJSONEqual(t, "occupancy",
				e.Occupancy(zone, from, to, bucket), naiveOccupancy(dumps, zone, from, to, bucket))
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
