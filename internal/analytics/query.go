// The three analytics query families. All of them answer from the
// union of the sealed and hot tiers — disjoint by the watermark
// invariant — with every interval clipped to the query window first,
// and all of them are deterministic: iteration over internal maps never
// leaks into result order or floating-point accumulation order.
package analytics

import (
	"sort"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
	"bips/internal/stats"
)

// Contact is one contact-trace answer: a device that shared rooms with
// the traced device, with the total co-location time, the rooms it
// happened in (ascending) and the first/last instants of co-location
// inside the window.
type Contact struct {
	Device  baseband.BDAddr
	Overlap sim.Tick
	Rooms   []graph.NodeID
	First   sim.Tick
	Last    sim.Tick
}

// OccupancyPoint is one bucket of an occupancy time series: the number
// of distinct devices present at some instant of [Start, Start+bucket).
type OccupancyPoint struct {
	Start sim.Tick
	Count int
}

// DwellStats summarizes a dwell-time distribution: one sample per
// presence run clipped to the window, positive-length only.
type DwellStats struct {
	Samples int
	Mean    float64
	Stddev  float64
	Min     sim.Tick
	Max     sim.Tick
	P50     sim.Tick
	P90     sim.Tick
	P99     sim.Tick
}

// clip bounds a run to the half-open window [from, to); ok is false
// when nothing positive remains.
func clip(r runIv, from, to sim.Tick) (runIv, bool) {
	if r.start < from {
		r.start = from
	}
	if r.end > to {
		r.end = to
	}
	return r, r.end > r.start
}

// hotRuns appends the device's hot runs — optionally only those in
// room (anyRoom false) — clipped to [from, to). The newest visit's run
// is open-ended and clips to the window end. Caller holds e.mu.
func (e *Engine) hotRuns(dst []runIv, dev baseband.BDAddr, room graph.NodeID, anyRoom bool, from, to sim.Tick) []runIv {
	ds := e.devs[dev]
	if ds == nil {
		return dst
	}
	v := ds.visits
	for i, vis := range v {
		if !anyRoom && vis.Piconet != room {
			continue
		}
		end := to
		if i+1 < len(v) {
			end = v[i+1].At
		}
		if r, ok := clip(runIv{start: vis.At, end: end}, from, to); ok {
			dst = append(dst, r)
		}
	}
	return dst
}

// contactAcc accumulates one peer device's co-location evidence.
type contactAcc struct {
	overlap sim.Tick
	rooms   map[graph.NodeID]struct{}
	first   sim.Tick
	last    sim.Tick
}

// Contacts traces co-location: every device that spent time in the same
// room as dev inside the half-open window [from, to), with at least
// minOverlap ticks of total overlap (always > 0). Answers are sorted by
// overlap descending, then device ascending, and capped at MaxContacts.
func (e *Engine) Contacts(dev baseband.BDAddr, from, to, minOverlap sim.Tick) []Contact {
	e.qContacts.Add(1)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if to <= from {
		return nil
	}
	if minOverlap < 1 {
		minOverlap = 1
	}

	// The rooms dev visited inside the window: hot log plus the sealed
	// device index.
	roomSet := make(map[graph.NodeID]struct{})
	if ds := e.devs[dev]; ds != nil {
		v := ds.visits
		for i, vis := range v {
			end := to
			if i+1 < len(v) {
				end = v[i+1].At
			}
			if _, ok := clip(runIv{start: vis.At, end: end}, from, to); ok {
				roomSet[vis.Piconet] = struct{}{}
			}
		}
	}
	for _, seg := range e.segs {
		if !seg.overlaps(from, to) {
			continue
		}
		for _, room := range seg.devRooms[dev] {
			roomSet[room] = struct{}{}
		}
	}

	acc := make(map[baseband.BDAddr]*contactAcc)
	var truns []runIv
	for room := range roomSet {
		truns = e.hotRuns(truns[:0], dev, room, false, from, to)
		others := make(map[baseband.BDAddr][]runIv)
		for other := range e.roomDevs[room] {
			if other == dev {
				continue
			}
			if runs := e.hotRuns(nil, other, room, false, from, to); len(runs) > 0 {
				others[other] = runs
			}
		}
		for _, seg := range e.segs {
			if !seg.overlaps(from, to) {
				continue
			}
			for _, sr := range seg.decodeRoom(room) {
				r, ok := clip(sr.runIv, from, to)
				if !ok {
					continue
				}
				if sr.dev == dev {
					truns = append(truns, r)
				} else {
					others[sr.dev] = append(others[sr.dev], r)
				}
			}
		}
		if len(truns) == 0 {
			continue
		}
		sortRuns(truns)
		for other, runs := range others {
			sortRuns(runs)
			intersect(acc, other, room, truns, runs)
		}
	}

	out := make([]Contact, 0, len(acc))
	for other, a := range acc {
		if a.overlap < minOverlap {
			continue
		}
		rooms := make([]graph.NodeID, 0, len(a.rooms))
		for r := range a.rooms {
			rooms = append(rooms, r)
		}
		sort.Slice(rooms, func(i, j int) bool { return rooms[i] < rooms[j] })
		out = append(out, Contact{
			Device: other, Overlap: a.overlap, Rooms: rooms,
			First: a.first, Last: a.last,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap != out[j].Overlap {
			return out[i].Overlap > out[j].Overlap
		}
		return out[i].Device < out[j].Device
	})
	if len(out) > MaxContacts {
		out = out[:MaxContacts]
	}
	return out
}

func sortRuns(runs []runIv) {
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].start != runs[j].start {
			return runs[i].start < runs[j].start
		}
		return runs[i].end < runs[j].end
	})
}

// intersect merges two start-sorted run lists of one room and adds
// every positive pairwise overlap to the peer's accumulator.
func intersect(acc map[baseband.BDAddr]*contactAcc, other baseband.BDAddr, room graph.NodeID, truns, oruns []runIv) {
	i, j := 0, 0
	for i < len(truns) && j < len(oruns) {
		a, b := truns[i], oruns[j]
		s, en := a.start, a.end
		if b.start > s {
			s = b.start
		}
		if b.end < en {
			en = b.end
		}
		if en > s {
			ca := acc[other]
			if ca == nil {
				ca = &contactAcc{rooms: make(map[graph.NodeID]struct{}), first: s, last: en}
				acc[other] = ca
			}
			ca.overlap += en - s
			ca.rooms[room] = struct{}{}
			if s < ca.first {
				ca.first = s
			}
			if en > ca.last {
				ca.last = en
			}
		}
		if a.end < b.end {
			i++
		} else {
			j++
		}
	}
}

// Occupancy builds a distinct-device occupancy time series over the
// union of rooms (a zone), bucketed at bucket ticks from `from`. The
// final bucket may be shorter when the window is not a multiple of the
// bucket. Invalid shapes (empty window, non-positive bucket) and
// series longer than the engine backstop yield nil.
func (e *Engine) Occupancy(rooms []graph.NodeID, from, to, bucket sim.Tick) []OccupancyPoint {
	e.qOccupancy.Add(1)
	if to <= from || bucket <= 0 {
		return nil
	}
	nb64 := (int64(to-from) + int64(bucket) - 1) / int64(bucket)
	if nb64 <= 0 || nb64 > maxBuckets {
		return nil
	}
	nb := int(nb64)
	e.mu.RLock()
	defer e.mu.RUnlock()

	sets := make([]map[baseband.BDAddr]struct{}, nb)
	mark := func(dev baseband.BDAddr, r runIv) {
		lo := int((r.start - from) / bucket)
		hi := int((r.end - 1 - from) / bucket)
		for k := lo; k <= hi; k++ {
			if sets[k] == nil {
				sets[k] = make(map[baseband.BDAddr]struct{})
			}
			sets[k][dev] = struct{}{}
		}
	}
	seen := make(map[graph.NodeID]struct{}, len(rooms))
	var runs []runIv
	for _, room := range rooms {
		if _, dup := seen[room]; dup {
			continue
		}
		seen[room] = struct{}{}
		for dev := range e.roomDevs[room] {
			runs = e.hotRuns(runs[:0], dev, room, false, from, to)
			for _, r := range runs {
				mark(dev, r)
			}
		}
		for _, seg := range e.segs {
			if !seg.overlaps(from, to) {
				continue
			}
			for _, sr := range seg.decodeRoom(room) {
				if r, ok := clip(sr.runIv, from, to); ok {
					mark(sr.dev, r)
				}
			}
		}
	}
	out := make([]OccupancyPoint, nb)
	for k := range out {
		out[k] = OccupancyPoint{Start: from + sim.Tick(k)*bucket, Count: len(sets[k])}
	}
	return out
}

// DwellRoom summarizes how long devices dwell in one room inside the
// window: one sample per presence run of any device in the room,
// clipped to [from, to).
func (e *Engine) DwellRoom(room graph.NodeID, from, to sim.Tick) DwellStats {
	e.qDwell.Add(1)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if to <= from {
		return DwellStats{}
	}
	var durs []float64
	var runs []runIv
	for dev := range e.roomDevs[room] {
		runs = e.hotRuns(runs[:0], dev, room, false, from, to)
		for _, r := range runs {
			durs = append(durs, float64(r.end-r.start))
		}
	}
	for _, seg := range e.segs {
		if !seg.overlaps(from, to) {
			continue
		}
		for _, sr := range seg.decodeRoom(room) {
			if r, ok := clip(sr.runIv, from, to); ok {
				durs = append(durs, float64(r.end-r.start))
			}
		}
	}
	return summarize(durs)
}

// DwellDevice summarizes how long one device dwells per room visit
// inside the window, across every room it was in.
func (e *Engine) DwellDevice(dev baseband.BDAddr, from, to sim.Tick) DwellStats {
	e.qDwell.Add(1)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if to <= from {
		return DwellStats{}
	}
	var durs []float64
	for _, r := range e.hotRuns(nil, dev, 0, true, from, to) {
		durs = append(durs, float64(r.end-r.start))
	}
	for _, seg := range e.segs {
		if !seg.overlaps(from, to) {
			continue
		}
		for _, room := range seg.devRooms[dev] {
			for _, sr := range seg.decodeRoom(room) {
				if sr.dev != dev {
					continue
				}
				if r, ok := clip(sr.runIv, from, to); ok {
					durs = append(durs, float64(r.end-r.start))
				}
			}
		}
	}
	return summarize(durs)
}

// summarize folds dwell durations into a DwellStats. Samples are sorted
// first so the floating-point accumulation order — and therefore every
// bit of the answer — is independent of map iteration order.
func summarize(durs []float64) DwellStats {
	if len(durs) == 0 {
		return DwellStats{}
	}
	sort.Float64s(durs)
	var sum stats.Summary
	sum.AddAll(durs)
	q := func(p float64) sim.Tick {
		v, err := stats.Quantile(durs, p)
		if err != nil {
			return 0
		}
		return sim.Tick(v)
	}
	return DwellStats{
		Samples: sum.N(),
		Mean:    sum.Mean(),
		Stddev:  sum.Stddev(),
		Min:     sim.Tick(sum.Min()),
		Max:     sim.Tick(sum.Max()),
		P50:     q(0.50),
		P90:     q(0.90),
		P99:     q(0.99),
	}
}
