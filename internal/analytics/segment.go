// Sealed segments: the immutable, compressed tier of the analytics
// engine.
//
// A segment holds every positive closed run that was hot when the seal
// was cut, inverted by room. The encoding is delta/varint throughout:
// absolute ticks appear once in the header (signed varint), run starts
// are deltas from the previous start of the same (room, device) posting
// list, run lengths are deltas from their own start, and device
// addresses — 48-bit values with high shared prefixes — are ascending
// deltas. A typical presence run costs a handful of bytes against the
// 29-byte fixed WAL record it originated from.
//
// Layout (all multi-byte integers are varints; "u" = unsigned):
//
//	magic "BIPSEG1\n"
//	minStart, maxEnd                 signed
//	u totalRuns, u roomCount
//	roomCount × { room signed, u sectionLen }
//	roomCount × section:
//	    u devCount
//	    devCount × { u devDelta, u runCount,
//	                 runCount × { u startDelta, u length } }
//	device index: u devCount,
//	    devCount × { u devDelta, u maxEndDelta, u roomCount,
//	                 roomCount × room signed }
//	crc32(IEEE) of everything above, little-endian
//
// The room directory makes one room's posting list decodable without
// touching the rest of the file; the device index answers "which rooms
// did this device seal into" (the contact-trace entry point) and
// carries the per-device watermark recovery needs. Sections are decoded
// on demand per query; only the directory and the device index stay
// decoded in memory.
package analytics

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/sim"
)

const segMagic = "BIPSEG1\n"

// ErrCorruptSegment reports a sealed segment that fails its magic,
// structure or CRC check.
var ErrCorruptSegment = errors.New("analytics: corrupt segment")

// runIv is one presence interval, half-open [start, end).
type runIv struct {
	start, end sim.Tick
}

// sealedRun is one decoded interval of a room's posting list.
type sealedRun struct {
	dev baseband.BDAddr
	runIv
}

// segment is one loaded sealed segment.
type segment struct {
	seq      uint64
	path     string // "" when memory-only
	raw      []byte
	minStart sim.Tick
	maxEnd   sim.Tick
	runs     int64
	roomOff  map[graph.NodeID][2]int // offset, length of the room's section
	devRooms map[baseband.BDAddr][]graph.NodeID
	devMax   map[baseband.BDAddr]sim.Tick
}

// overlaps reports whether any run in the segment can intersect the
// half-open window [from, to) positively.
func (s *segment) overlaps(from, to sim.Tick) bool {
	return s.minStart < to && s.maxEnd > from
}

// sealLocked cuts one segment from every positive closed hot run,
// advances the per-device watermarks, trims the sealed prefix from the
// hot tier and applies retention. Caller holds e.mu.
func (e *Engine) sealLocked() error {
	rooms := make(map[graph.NodeID]map[baseband.BDAddr][]runIv)
	total := 0
	for dev, ds := range e.devs {
		v := ds.visits
		for i := 0; i+1 < len(v); i++ {
			if v[i+1].At <= v[i].At {
				continue
			}
			m := rooms[v[i].Piconet]
			if m == nil {
				m = make(map[baseband.BDAddr][]runIv)
				rooms[v[i].Piconet] = m
			}
			m[dev] = append(m[dev], runIv{start: v[i].At, end: v[i+1].At})
			total++
		}
	}
	if total == 0 {
		e.expireLocked()
		return nil
	}
	raw := encodeSegment(rooms, total)
	seq := e.nextSeq
	path := ""
	if e.dir != "" {
		path = filepath.Join(e.dir, fmt.Sprintf("seg-%016d.seg", seq))
		if err := writeFileAtomic(e.dir, path, raw); err != nil {
			return err
		}
	}
	seg, err := parseSegment(raw, path, seq)
	if err != nil {
		// Decoding our own encoding cannot fail; if it does, the file
		// must not be trusted either.
		if path != "" {
			os.Remove(path)
		}
		return err
	}
	e.nextSeq++
	e.segs = append(e.segs, seg)
	e.sealedRuns += int64(total)
	e.sealedB += int64(len(raw))

	// Advance watermarks and trim: after a full seal every closed run is
	// sealed, so each device keeps only its newest (open) run — plus
	// nothing below its watermark survives a recovery seed either.
	for dev, ds := range e.devs {
		v := ds.visits
		if len(v) < 2 {
			continue
		}
		if end := v[len(v)-1].At; end > e.watermark[dev] {
			e.watermark[dev] = end
		}
		wm := e.watermark[dev]
		for len(v) >= 2 && v[1].At <= wm {
			e.roomRef(v[0].Piconet, dev, -1)
			v = v[1:]
		}
		ds.visits = v
	}
	e.sealable = 0
	e.expireLocked()
	return nil
}

// expireLocked deletes segments entirely older than the retention
// window. Caller holds e.mu.
func (e *Engine) expireLocked() {
	if e.retain <= 0 {
		return
	}
	cutoff := e.maxSeen - e.retain
	kept := e.segs[:0]
	for _, seg := range e.segs {
		if seg.maxEnd >= cutoff {
			kept = append(kept, seg)
			continue
		}
		if seg.path != "" {
			_ = os.Remove(seg.path) // best effort; reloading it is harmless
		}
		e.sealedRuns -= seg.runs
		e.sealedB -= int64(len(seg.raw))
		e.expired++
	}
	e.segs = kept
}

// encodeSegment renders the sealed runs into the segment byte layout.
// Ordering is fully deterministic: rooms ascending, devices ascending,
// runs by (start, end).
func encodeSegment(rooms map[graph.NodeID]map[baseband.BDAddr][]runIv, total int) []byte {
	minStart, maxEnd := sim.Tick(0), sim.Tick(0)
	first := true
	for _, m := range rooms {
		for _, runs := range m {
			for _, r := range runs {
				if first || r.start < minStart {
					minStart = r.start
				}
				if first || r.end > maxEnd {
					maxEnd = r.end
				}
				first = false
			}
		}
	}
	roomIDs := make([]graph.NodeID, 0, len(rooms))
	for r := range rooms {
		roomIDs = append(roomIDs, r)
	}
	sort.Slice(roomIDs, func(i, j int) bool { return roomIDs[i] < roomIDs[j] })

	// Per-device aggregates for the index.
	devMax := make(map[baseband.BDAddr]sim.Tick)
	devRooms := make(map[baseband.BDAddr][]graph.NodeID)
	sections := make([][]byte, len(roomIDs))
	for i, room := range roomIDs {
		m := rooms[room]
		devs := make([]baseband.BDAddr, 0, len(m))
		for d := range m {
			devs = append(devs, d)
		}
		sort.Slice(devs, func(a, b int) bool { return devs[a] < devs[b] })
		var sec []byte
		sec = binary.AppendUvarint(sec, uint64(len(devs)))
		prevDev := uint64(0)
		for _, d := range devs {
			runs := m[d]
			sort.Slice(runs, func(a, b int) bool {
				if runs[a].start != runs[b].start {
					return runs[a].start < runs[b].start
				}
				return runs[a].end < runs[b].end
			})
			sec = binary.AppendUvarint(sec, uint64(d)-prevDev)
			prevDev = uint64(d)
			sec = binary.AppendUvarint(sec, uint64(len(runs)))
			prevStart := minStart
			for _, r := range runs {
				sec = binary.AppendUvarint(sec, uint64(r.start-prevStart))
				prevStart = r.start
				sec = binary.AppendUvarint(sec, uint64(r.end-r.start))
				if r.end > devMax[d] {
					devMax[d] = r.end
				}
			}
			devRooms[d] = append(devRooms[d], room)
		}
		sections[i] = sec
	}

	buf := make([]byte, 0, 64)
	buf = append(buf, segMagic...)
	buf = binary.AppendVarint(buf, int64(minStart))
	buf = binary.AppendVarint(buf, int64(maxEnd))
	buf = binary.AppendUvarint(buf, uint64(total))
	buf = binary.AppendUvarint(buf, uint64(len(roomIDs)))
	for i, room := range roomIDs {
		buf = binary.AppendVarint(buf, int64(room))
		buf = binary.AppendUvarint(buf, uint64(len(sections[i])))
	}
	for _, sec := range sections {
		buf = append(buf, sec...)
	}
	devs := make([]baseband.BDAddr, 0, len(devMax))
	for d := range devMax {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(a, b int) bool { return devs[a] < devs[b] })
	buf = binary.AppendUvarint(buf, uint64(len(devs)))
	prevDev := uint64(0)
	for _, d := range devs {
		buf = binary.AppendUvarint(buf, uint64(d)-prevDev)
		prevDev = uint64(d)
		buf = binary.AppendUvarint(buf, uint64(devMax[d]-minStart))
		rs := devRooms[d]
		buf = binary.AppendUvarint(buf, uint64(len(rs)))
		for _, r := range rs {
			buf = binary.AppendVarint(buf, int64(r))
		}
	}
	crc := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// segReader is a bounds-checked varint cursor over segment bytes.
type segReader struct {
	b   []byte
	off int
	err error
}

func (r *segReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = ErrCorruptSegment
		return 0
	}
	r.off += n
	return v
}

func (r *segReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = ErrCorruptSegment
		return 0
	}
	r.off += n
	return v
}

// parseSegment verifies and indexes a segment: header, room directory
// and device index are decoded; room sections are only located.
func parseSegment(raw []byte, path string, seq uint64) (*segment, error) {
	if len(raw) < len(segMagic)+4 || string(raw[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptSegment)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorruptSegment)
	}
	r := &segReader{b: body, off: len(segMagic)}
	seg := &segment{
		seq:      seq,
		path:     path,
		raw:      raw,
		minStart: sim.Tick(r.varint()),
		maxEnd:   sim.Tick(r.varint()),
		runs:     int64(r.uvarint()),
		roomOff:  make(map[graph.NodeID][2]int),
		devRooms: make(map[baseband.BDAddr][]graph.NodeID),
		devMax:   make(map[baseband.BDAddr]sim.Tick),
	}
	roomCount := int(r.uvarint())
	if r.err != nil || roomCount < 0 || roomCount > len(body) {
		return nil, fmt.Errorf("%w: header", ErrCorruptSegment)
	}
	type dirEnt struct {
		room graph.NodeID
		n    int
	}
	dir := make([]dirEnt, roomCount)
	for i := range dir {
		dir[i] = dirEnt{room: graph.NodeID(r.varint()), n: int(r.uvarint())}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: room directory", ErrCorruptSegment)
	}
	off := r.off
	for _, d := range dir {
		if d.n < 0 || off+d.n > len(body) {
			return nil, fmt.Errorf("%w: section bounds", ErrCorruptSegment)
		}
		seg.roomOff[d.room] = [2]int{off, d.n}
		off += d.n
	}
	r.off = off
	devCount := int(r.uvarint())
	if r.err != nil || devCount < 0 || devCount > len(body) {
		return nil, fmt.Errorf("%w: device index", ErrCorruptSegment)
	}
	prevDev := uint64(0)
	for i := 0; i < devCount; i++ {
		prevDev += r.uvarint()
		dev := baseband.BDAddr(prevDev)
		seg.devMax[dev] = seg.minStart + sim.Tick(r.uvarint())
		nRooms := int(r.uvarint())
		if r.err != nil || nRooms < 0 || nRooms > len(body) {
			return nil, fmt.Errorf("%w: device index", ErrCorruptSegment)
		}
		rs := make([]graph.NodeID, nRooms)
		for j := range rs {
			rs[j] = graph.NodeID(r.varint())
		}
		seg.devRooms[dev] = rs
	}
	if r.err != nil || r.off != len(body) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorruptSegment)
	}
	return seg, nil
}

// decodeRoom decodes one room's posting list: every sealed run in the
// room, devices ascending, runs by start. Returns nil when the segment
// has no runs for the room.
func (s *segment) decodeRoom(room graph.NodeID) []sealedRun {
	loc, ok := s.roomOff[room]
	if !ok {
		return nil
	}
	r := &segReader{b: s.raw, off: loc[0]}
	devCount := int(r.uvarint())
	out := make([]sealedRun, 0, devCount)
	prevDev := uint64(0)
	for i := 0; i < devCount && r.err == nil; i++ {
		prevDev += r.uvarint()
		dev := baseband.BDAddr(prevDev)
		nRuns := int(r.uvarint())
		prevStart := s.minStart
		for j := 0; j < nRuns && r.err == nil; j++ {
			start := prevStart + sim.Tick(r.uvarint())
			prevStart = start
			end := start + sim.Tick(r.uvarint())
			out = append(out, sealedRun{dev: dev, runIv: runIv{start: start, end: end}})
		}
	}
	if r.err != nil {
		return nil // CRC passed at load; unreachable in practice
	}
	return out
}

// writeFileAtomic writes raw to path via a temp file, fsync, rename and
// directory fsync — the snapshot discipline of internal/storage, so a
// crash mid-seal leaves at worst a stale .tmp file that loading
// ignores.
func writeFileAtomic(dir, path string, raw []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("analytics: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("analytics: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("analytics: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	f, err = os.Open(dir)
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("analytics: %w", err)
	}
	return nil
}
