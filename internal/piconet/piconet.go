// Package piconet implements the BIPS master's operational cycle: the
// workstation alternates a device-discovery slot (inquiry) with connection
// management — paging newly discovered devices into the piconet and polling
// enrolled slaves — exactly the scheduling problem the paper's Sections 4
// and 5 study. The paper's final policy dedicates a continuous 3.84 s slot
// of every 15.4 s cycle to discovery (~24% load) and the remainder to
// serving slaves.
package piconet

import (
	"errors"
	"fmt"
	"sort"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/page"
	"bips/internal/radio"
	"bips/internal/sim"
)

// MaxActiveSlaves is the Bluetooth limit of active slaves in a piconet.
const MaxActiveSlaves = 7

// Defaults for connection management.
const (
	// DefaultPollInterval is how often each enrolled slave is polled.
	DefaultPollInterval = sim.Tick(320) // 100 ms
	// DefaultSupervisionMisses is how many consecutive failed polls
	// drop a slave (link supervision timeout).
	DefaultSupervisionMisses = 3
)

// Device bundles the two radio roles of one mobile device: the inquiry-scan
// behaviour that makes it discoverable and the page-scan behaviour that
// makes it connectable.
type Device struct {
	Slave   *inquiry.Slave
	Scanner page.Scanner
}

// Addr returns the device address.
func (d Device) Addr() baseband.BDAddr { return d.Slave.Addr() }

// Config configures a piconet master.
type Config struct {
	// Addr is the master (workstation) address.
	Addr baseband.BDAddr
	// Cycle is the operational duty cycle. Required.
	Cycle inquiry.DutyCycle
	// StartTrain, Policy and Collision configure the inquiry engine.
	StartTrain baseband.Train
	Policy     inquiry.TrainPolicy
	Collision  radio.CollisionPolicy
	// PollInterval overrides DefaultPollInterval when non-zero.
	PollInterval sim.Tick
	// SupervisionMisses overrides DefaultSupervisionMisses when
	// non-zero.
	SupervisionMisses int
	// PageTimeout bounds each page attempt (0 = page.DefaultPageTimeout).
	PageTimeout sim.Tick
}

// Stats are the piconet activity counters.
type Stats struct {
	Cycles      int
	Discoveries int
	Enrolled    int
	Departed    int
	Polls       int64
	PageFails   int
}

// Piconet is one workstation cell: an inquiry master, a pager, and the set
// of enrolled slaves.
type Piconet struct {
	// OnEnrolled, if non-nil, fires when a device joins the piconet.
	OnEnrolled func(addr baseband.BDAddr, at sim.Tick)
	// OnDeparted, if non-nil, fires when an enrolled device is dropped
	// by link supervision or Disconnect.
	OnDeparted func(addr baseband.BDAddr, at sim.Tick)

	kernel *sim.Kernel
	cfg    Config
	medium *radio.Medium
	master *inquiry.Master
	pager  *page.Pager

	devices   map[baseband.BDAddr]Device
	enrolled  map[baseband.BDAddr]*link
	pageQueue []baseband.BDAddr
	queued    map[baseband.BDAddr]bool

	running  bool
	stopFns  []func()
	stats    Stats
	inPhase  bool
	pollStop func()
}

type link struct {
	dev    Device
	misses int
}

// ErrNotRunning is returned by operations that need a started piconet.
var ErrNotRunning = errors.New("piconet: not running")

// New creates a piconet master. medium may be nil (all devices reachable).
func New(k *sim.Kernel, cfg Config, medium *radio.Medium) (*Piconet, error) {
	if err := cfg.Cycle.Validate(); err != nil {
		return nil, err
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.SupervisionMisses == 0 {
		cfg.SupervisionMisses = DefaultSupervisionMisses
	}
	p := &Piconet{
		kernel:   k,
		cfg:      cfg,
		medium:   medium,
		devices:  make(map[baseband.BDAddr]Device),
		enrolled: make(map[baseband.BDAddr]*link),
		queued:   make(map[baseband.BDAddr]bool),
	}
	p.master = inquiry.NewMaster(k, inquiry.MasterConfig{
		Addr:       cfg.Addr,
		StartTrain: cfg.StartTrain,
		Policy:     cfg.Policy,
		Collision:  cfg.Collision,
	}, medium)
	p.master.OnDiscovered = p.onDiscovered
	p.pager = page.NewPager(k, cfg.Addr, medium)
	return p, nil
}

// Addr returns the master address.
func (p *Piconet) Addr() baseband.BDAddr { return p.cfg.Addr }

// Stats returns a snapshot of the activity counters.
func (p *Piconet) Stats() Stats { return p.stats }

// AddDevice makes a mobile device visible to this cell's radio procedures.
func (p *Piconet) AddDevice(d Device) {
	p.devices[d.Addr()] = d
	p.master.AddSlave(d.Slave)
}

// Enrolled returns the addresses of currently enrolled slaves in ascending
// order.
func (p *Piconet) Enrolled() []baseband.BDAddr {
	out := make([]baseband.BDAddr, 0, len(p.enrolled))
	for a := range p.enrolled {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsEnrolled reports whether the device is currently in the piconet.
func (p *Piconet) IsEnrolled(addr baseband.BDAddr) bool {
	_, ok := p.enrolled[addr]
	return ok
}

// Start begins the operational cycle.
func (p *Piconet) Start() {
	if p.running {
		return
	}
	p.running = true
	p.cycleStart(p.kernel)
	stop := p.kernel.Ticker(p.cfg.Cycle.Period, p.cycleStart)
	p.stopFns = append(p.stopFns, stop)
	p.pollStop = p.kernel.Ticker(p.cfg.PollInterval, p.pollAll)
}

// Stop halts the cycle and polling. Enrolled slaves stay enrolled.
func (p *Piconet) Stop() {
	if !p.running {
		return
	}
	p.running = false
	p.master.StopInquiry()
	for _, fn := range p.stopFns {
		fn()
	}
	p.stopFns = nil
	if p.pollStop != nil {
		p.pollStop()
		p.pollStop = nil
	}
}

// cycleStart opens the discovery slot of a new operational cycle.
func (p *Piconet) cycleStart(k *sim.Kernel) {
	if !p.running {
		return
	}
	p.stats.Cycles++
	p.inPhase = true
	p.master.StartInquiry()
	k.Schedule(p.cfg.Cycle.Inquiry, func(*sim.Kernel) {
		if !p.running {
			return
		}
		p.inPhase = false
		p.master.StopInquiry()
		p.drainPageQueue()
	})
}

// onDiscovered queues a newly discovered device for paging in the next
// connection-management phase.
func (p *Piconet) onDiscovered(addr baseband.BDAddr, at sim.Tick) {
	p.stats.Discoveries++
	if p.queued[addr] || p.IsEnrolled(addr) {
		return
	}
	p.queued[addr] = true
	p.pageQueue = append(p.pageQueue, addr)
	if !p.inPhase {
		p.drainPageQueue()
	}
}

// drainPageQueue pages queued devices one at a time while the master is in
// its connection-management phase and has active-slave capacity.
func (p *Piconet) drainPageQueue() {
	if !p.running || p.inPhase || p.pager.Busy() {
		return
	}
	if len(p.pageQueue) == 0 || len(p.enrolled) >= MaxActiveSlaves {
		return
	}
	addr := p.pageQueue[0]
	p.pageQueue = p.pageQueue[1:]
	delete(p.queued, addr)
	dev, ok := p.devices[addr]
	if !ok {
		p.drainPageQueue()
		return
	}
	err := p.pager.Page(dev.Scanner, p.cfg.PageTimeout, func(r page.Result) {
		if r.Err != nil {
			p.stats.PageFails++
		} else if !p.IsEnrolled(addr) && len(p.enrolled) < MaxActiveSlaves {
			p.enrolled[addr] = &link{dev: dev}
			p.stats.Enrolled++
			if p.OnEnrolled != nil {
				p.OnEnrolled(addr, r.ConnectedAt)
			}
		}
		p.drainPageQueue()
	})
	if err != nil {
		// Pager busy: retry when the in-flight page completes.
		return
	}
}

// pollAll polls every enrolled slave; repeated failures (device out of
// coverage) trigger link supervision and the departure callback.
func (p *Piconet) pollAll(k *sim.Kernel) {
	if !p.running {
		return
	}
	for _, addr := range p.Enrolled() {
		l := p.enrolled[addr]
		p.stats.Polls++
		ok := true
		if p.medium != nil {
			ok = p.medium.InRange(p.cfg.Addr, addr) && !p.medium.Lost()
		}
		if ok {
			l.misses = 0
			continue
		}
		l.misses++
		if l.misses >= p.cfg.SupervisionMisses {
			p.drop(addr, k.Now())
		}
	}
}

// Disconnect removes a slave from the piconet explicitly.
func (p *Piconet) Disconnect(addr baseband.BDAddr) error {
	if !p.IsEnrolled(addr) {
		return fmt.Errorf("piconet: %v not enrolled", addr)
	}
	p.drop(addr, p.kernel.Now())
	return nil
}

func (p *Piconet) drop(addr baseband.BDAddr, at sim.Tick) {
	delete(p.enrolled, addr)
	p.master.Forget(addr)
	p.stats.Departed++
	if p.OnDeparted != nil {
		p.OnDeparted(addr, at)
	}
	// A freed slot may unblock the page queue.
	p.drainPageQueue()
}
