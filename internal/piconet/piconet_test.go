package piconet

import (
	"math/rand"
	"testing"

	"bips/internal/baseband"
	"bips/internal/inquiry"
	"bips/internal/page"
	"bips/internal/radio"
	"bips/internal/sim"
)

func paperCycle() inquiry.DutyCycle {
	return inquiry.DutyCycle{
		Inquiry: sim.FromSeconds(3.84),
		Period:  sim.FromSeconds(15.4),
	}
}

func newDevice(rng *rand.Rand, addr baseband.BDAddr) Device {
	offset := sim.Tick(rng.Int63n(int64(2 * baseband.TInquiryScanTicks)))
	return Device{
		Slave: inquiry.NewSlave(inquiry.SlaveConfig{
			Addr:        addr,
			ClockOffset: offset,
			ScanPhase:   baseband.FreqIndex(rng.Intn(baseband.NumInquiryFreqs)),
			Mode:        inquiry.ScanAlternating,
		}),
		Scanner: page.Scanner{
			Addr:                  addr,
			ClockOffset:           offset,
			AlternatesWithInquiry: true,
			Connectable:           true,
		},
	}
}

func TestNewValidatesCycle(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := New(k, Config{Addr: 1}, nil); err == nil {
		t.Error("zero cycle accepted")
	}
	if _, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil); err != nil {
		t.Errorf("paper cycle rejected: %v", err)
	}
}

func TestDiscoverPageEnroll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := sim.NewKernel(rng.Int63())
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var enrolledAt sim.Tick
	p.OnEnrolled = func(addr baseband.BDAddr, at sim.Tick) {
		if addr != 0xB1 {
			t.Errorf("enrolled %v", addr)
		}
		enrolledAt = at
	}
	p.AddDevice(newDevice(rng, 0xB1))
	p.Start()
	k.RunUntil(40 * sim.TicksPerSecond)
	p.Stop()

	st := p.Stats()
	if st.Discoveries == 0 {
		t.Fatal("device never discovered")
	}
	if st.Enrolled != 1 {
		t.Fatalf("enrolled = %d, want 1 (stats %+v)", st.Enrolled, st)
	}
	if !p.IsEnrolled(0xB1) {
		t.Error("device not reported enrolled")
	}
	if enrolledAt == 0 {
		t.Error("enrollment callback not fired")
	}
	if st.Polls == 0 {
		t.Error("no polls recorded")
	}
}

func TestEnrollManyDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	k := sim.NewKernel(rng.Int63())
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		p.AddDevice(newDevice(rng, baseband.BDAddr(0xB1+i)))
	}
	p.Start()
	k.RunUntil(90 * sim.TicksPerSecond)
	p.Stop()
	if got := len(p.Enrolled()); got != n {
		t.Errorf("enrolled %d of %d devices: %v (stats %+v)",
			got, n, p.Enrolled(), p.Stats())
	}
}

func TestActiveSlaveCap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := sim.NewKernel(rng.Int63())
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10 // more than MaxActiveSlaves
	for i := 0; i < n; i++ {
		p.AddDevice(newDevice(rng, baseband.BDAddr(0xB1+i)))
	}
	p.Start()
	k.RunUntil(120 * sim.TicksPerSecond)
	if got := len(p.Enrolled()); got != MaxActiveSlaves {
		t.Errorf("enrolled = %d, want cap %d", got, MaxActiveSlaves)
	}
	// Freeing a slot lets a queued device in.
	victim := p.Enrolled()[0]
	if err := p.Disconnect(victim); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(160 * sim.TicksPerSecond)
	p.Stop()
	if got := len(p.Enrolled()); got != MaxActiveSlaves {
		t.Errorf("after free slot enrolled = %d, want %d", got, MaxActiveSlaves)
	}
	if p.IsEnrolled(victim) && p.Stats().Departed == 0 {
		t.Error("disconnect did not register")
	}
}

func TestLinkSupervisionDropsOutOfRangeDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k := sim.NewKernel(rng.Int63())
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 0xB1, Pos: radio.Point{X: 2, Y: 0}})
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, med)
	if err != nil {
		t.Fatal(err)
	}
	var departed []baseband.BDAddr
	p.OnDeparted = func(addr baseband.BDAddr, _ sim.Tick) {
		departed = append(departed, addr)
	}
	p.AddDevice(newDevice(rng, 0xB1))
	p.Start()
	k.RunUntil(40 * sim.TicksPerSecond)
	if !p.IsEnrolled(0xB1) {
		t.Fatalf("device not enrolled (stats %+v)", p.Stats())
	}
	// Walk out of coverage: supervision must drop the link.
	med.Move(0xB1, radio.Point{X: 99, Y: 0})
	k.RunUntil(50 * sim.TicksPerSecond)
	p.Stop()
	if p.IsEnrolled(0xB1) {
		t.Error("out-of-range device still enrolled")
	}
	if len(departed) != 1 || departed[0] != 0xB1 {
		t.Errorf("departures = %v", departed)
	}
}

func TestDisconnectUnknown(t *testing.T) {
	k := sim.NewKernel(1)
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Disconnect(0xDEAD); err == nil {
		t.Error("disconnect of unknown device succeeded")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start()
	k.RunUntil(sim.TicksPerSecond)
	p.Stop()
	p.Stop()
	cycles := p.Stats().Cycles
	k.RunUntil(60 * sim.TicksPerSecond)
	if p.Stats().Cycles != cycles {
		t.Error("cycles advanced after Stop")
	}
}

func TestRediscoveryAfterDeparture(t *testing.T) {
	// A device that leaves and comes back must be re-enrolled: the
	// tracking loop of the paper.
	rng := rand.New(rand.NewSource(11))
	k := sim.NewKernel(rng.Int63())
	med := radio.NewMedium()
	med.Place(radio.Station{Addr: 1, Pos: radio.Point{X: 0, Y: 0}})
	med.Place(radio.Station{Addr: 0xB1, Pos: radio.Point{X: 2, Y: 0}})
	p, err := New(k, Config{Addr: 1, Cycle: paperCycle()}, med)
	if err != nil {
		t.Fatal(err)
	}
	// Re-enable discovery after departure by keeping the device's
	// inquiry slave responding.
	dev := newDevice(rng, 0xB1)
	dev.Slave = inquiry.NewSlave(inquiry.SlaveConfig{
		Addr:           0xB1,
		ClockOffset:    dev.Scanner.ClockOffset,
		ScanPhase:      3,
		Mode:           inquiry.ScanAlternating,
		KeepResponding: true,
	})
	p.AddDevice(dev)
	p.Start()
	k.RunUntil(40 * sim.TicksPerSecond)
	if !p.IsEnrolled(0xB1) {
		t.Fatalf("initial enrollment failed (stats %+v)", p.Stats())
	}
	med.Move(0xB1, radio.Point{X: 99, Y: 0})
	k.RunUntil(60 * sim.TicksPerSecond)
	if p.IsEnrolled(0xB1) {
		t.Fatal("device not dropped")
	}
	med.Move(0xB1, radio.Point{X: 2, Y: 0})
	k.RunUntil(130 * sim.TicksPerSecond)
	p.Stop()
	if !p.IsEnrolled(0xB1) {
		t.Errorf("device not re-enrolled after return (stats %+v)", p.Stats())
	}
}
