package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestEmitAndEvents(t *testing.T) {
	tr := New()
	tr.Emit(10, KindDiscovery, "ws-1", "device %s", "B1")
	tr.Emit(20, KindEnroll, "ws-1", "device %s", "B1")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindDiscovery || evs[0].At != 10 || evs[0].Detail != "device B1" {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindEnroll {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, KindQuery, "x", "y") // must not panic
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer dropped")
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewWithCapacity(3)
	for i := 0; i < 5; i++ {
		tr.Emit(0, KindPage, "a", "%d", i)
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	// Oldest two were overwritten: 2, 3, 4 remain in order.
	for i, want := range []string{"2", "3", "4"} {
		if evs[i].Detail != want {
			t.Errorf("evs[%d] = %q, want %q", i, evs[i].Detail, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestCapacityClamped(t *testing.T) {
	tr := NewWithCapacity(0)
	tr.Emit(1, KindQuery, "a", "x")
	if len(tr.Events()) != 1 {
		t.Error("capacity-0 tracer unusable")
	}
}

func TestFilter(t *testing.T) {
	tr := New()
	tr.Emit(1, KindDiscovery, "a", "one")
	tr.Emit(2, KindCollision, "a", "boom")
	tr.Emit(3, KindDiscovery, "b", "two")
	got := tr.Filter(KindDiscovery)
	if len(got) != 2 || got[0].Detail != "one" || got[1].Detail != "two" {
		t.Errorf("filter = %+v", got)
	}
	if got := tr.Filter(KindDepart); got != nil {
		t.Errorf("empty filter = %+v", got)
	}
}

func TestDump(t *testing.T) {
	tr := New()
	tr.Emit(3200, KindPresence, "ws-2", "B1 present")
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"presence", "ws-2", "B1 present", "1.0000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q: %q", want, out)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewWithCapacity(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Emit(0, KindQuery, "g", "x")
				tr.Events()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != 128 {
		t.Errorf("retained = %d, want 128", got)
	}
	if tr.Dropped() != 800-128 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 800-128)
	}
}
