// Package trace is a lightweight structured event tracer for the BIPS
// simulations: components append timestamped events to a bounded ring, and
// experiments dump or filter them afterwards. It exists so that a failed
// reproduction run can be diagnosed from the protocol events (inquiry
// start/stop, discovery, enrollment, presence delta) without re-running
// under a debugger.
package trace

import (
	"fmt"
	"io"
	"sync"

	"bips/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds used across the system.
const (
	KindInquiryStart Kind = "inquiry.start"
	KindInquiryStop  Kind = "inquiry.stop"
	KindDiscovery    Kind = "discovery"
	KindCollision    Kind = "collision"
	KindPage         Kind = "page"
	KindEnroll       Kind = "enroll"
	KindDepart       Kind = "depart"
	KindPresence     Kind = "presence"
	KindQuery        Kind = "query"
)

// Event is one trace record.
type Event struct {
	At   sim.Tick
	Kind Kind
	// Actor identifies the emitting component ("ws-3", "master", ...).
	Actor string
	// Detail is free-form context.
	Detail string
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%-10s %-14s %-8s %s", e.At, e.Kind, e.Actor, e.Detail)
}

// DefaultCapacity bounds a Tracer constructed with New.
const DefaultCapacity = 4096

// Tracer is a bounded in-memory event ring. It is safe for concurrent
// use. A nil *Tracer is valid and discards everything, so components can
// hold an optional tracer without nil checks.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	dropped int64
}

// New returns a tracer holding the last DefaultCapacity events.
func New() *Tracer { return NewWithCapacity(DefaultCapacity) }

// NewWithCapacity returns a tracer holding the last cap events.
func NewWithCapacity(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Emit appends an event. Emit on a nil tracer is a no-op.
func (t *Tracer) Emit(at sim.Tick, kind Kind, actor, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = Event{At: at, Kind: kind, Actor: actor, Detail: fmt.Sprintf(format, args...)}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Filter returns the retained events of the given kind, in order.
func (t *Tracer) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Dump writes every retained event to w, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}
