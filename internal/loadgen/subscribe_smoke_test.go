package loadgen

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"bips/internal/graph"
	"bips/internal/sim"
	"bips/internal/wire"
)

// TestSubscribeWorkload: the subscribe op toggles per-worker room
// subscriptions while presence deltas generate matching events; a clean
// run proves the registration path holds up as part of a request mix.
func TestSubscribeWorkload(t *testing.T) {
	addr := startServer(t, 4)
	rep, err := Run(context.Background(), Config{
		Addr:     addr,
		Clients:  2,
		Pipeline: 2,
		Mix:      "subscribe=1,presence=4",
		Users:    4,
		Duration: 400 * time.Millisecond,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("report:\n%s", rep)
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
}

// TestSubscribeIncompatibleWithBatch: subscription management is
// per-connection state and cannot ride inside MsgBatch envelopes.
func TestSubscribeIncompatibleWithBatch(t *testing.T) {
	if _, err := Run(context.Background(), Config{Addr: "x", Mix: "subscribe", Batch: 8}); err == nil {
		t.Error("subscribe + Batch>1 accepted")
	}
}

// TestFanOutSmoke5000Subscriptions is the fan-out scale acceptance run:
// 5,000 live subscriptions on one server, ingest traffic from the load
// generator in the background, and a probe mover whose events must
// reach every subscribed connection with a p99 delivery latency under a
// generous bound — with zero dropped events, because every consumer
// here keeps up.
func TestFanOutSmoke5000Subscriptions(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out smoke run skipped in -short mode")
	}
	const (
		conns       = 25
		subsPerConn = 200 // conns * subsPerConn = 5,000
		probeRoom   = graph.NodeID(6)
		parkRoom    = graph.NodeID(5)
		probeMoves  = 40
		probeUser   = 7
	)
	addr := startServer(t, 8)

	// The driver logs in the probe user and later reads server stats.
	driverConn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	driver := wire.NewClient(wire.NewFrameCodec(driverConn))
	t.Cleanup(func() { driver.Close() })
	if err := driver.Call(wire.MsgLogin, wire.Login{
		User: UserName(probeUser), Password: "loadgen",
		Device: wire.FormatAddr(UserDevice(probeUser)),
	}, nil); err != nil {
		t.Fatal(err)
	}

	// Latency samples: send wall time per probe tick, matched against
	// arrival time in each connection's push handler.
	probeDev := wire.FormatAddr(UserDevice(probeUser))
	var lat struct {
		mu      sync.Mutex
		sent    map[sim.Tick]time.Time
		samples []time.Duration
	}
	lat.sent = make(map[sim.Tick]time.Time, probeMoves)

	// Fan out the subscription population: each connection holds one
	// probe-room subscription (the measured fan-out path) plus a bulk of
	// occupancy subscriptions with unreachable thresholds — live index
	// entries the tree must carry and skip past on every single delta.
	clients := make([]*wire.Client, conns)
	var setup sync.WaitGroup
	setupErr := make(chan error, conns)
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c := wire.NewClient(wire.NewFrameCodec(conn))
		clients[i] = c
		c.SetPushHandler(func(env wire.Envelope) {
			var e wire.Event
			if wire.UnmarshalBody(env, &e) != nil {
				return
			}
			if e.Sub != "probe" || e.Device != probeDev {
				return // background ingest traffic, not the probe
			}
			now := time.Now()
			lat.mu.Lock()
			if sent, ok := lat.sent[e.At]; ok {
				lat.samples = append(lat.samples, now.Sub(sent))
			}
			lat.mu.Unlock()
		})
		setup.Add(1)
		go func(c *wire.Client, i int) {
			defer setup.Done()
			if err := c.Call(wire.MsgSubscribe, wire.Subscribe{
				ID: "probe", Querier: UserName(probeUser),
				Filter: wire.SubFilter{Kind: wire.FilterRoom, Room: probeRoom},
			}, nil); err != nil {
				setupErr <- fmt.Errorf("conn %d probe subscribe: %w", i, err)
				return
			}
			for s := 1; s < subsPerConn; s++ {
				if err := c.Call(wire.MsgSubscribe, wire.Subscribe{
					ID: fmt.Sprintf("bulk-%d", s), Querier: UserName(probeUser),
					Filter: wire.SubFilter{
						Kind:      wire.FilterOccupancy,
						Room:      graph.NodeID(1 + s%10),
						Threshold: 1000, // never crossed: pure index weight
					},
				}, nil); err != nil {
					setupErr <- fmt.Errorf("conn %d bulk subscribe %d: %w", i, s, err)
					return
				}
			}
		}(c, i)
	}
	setup.Wait()
	close(setupErr)
	for err := range setupErr {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})

	var stats wire.StatsResult
	if err := driver.Call(wire.MsgStats, wire.StatsQuery{}, &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.Counters["fanout.subscriptions"]; got != conns*subsPerConn {
		t.Fatalf("live subscriptions = %d, want %d", got, conns*subsPerConn)
	}

	// Background ingest load for the duration of the probing, paced so
	// "keeping up" is what we are actually asserting about consumers.
	loadDone := make(chan error, 1)
	go func() {
		rep, err := Run(context.Background(), Config{
			Addr: addr, Clients: 2, Pipeline: 2,
			Mix: "ingest", IngestBatch: 32, QPS: 2000,
			Users: 4, Duration: 1500 * time.Millisecond, Seed: 7,
		})
		if err == nil && rep.Errors != 0 {
			err = fmt.Errorf("background ingest saw %d errors", rep.Errors)
		}
		loadDone <- err
	}()

	// The probe: bounce the probe user in and out of the probe room.
	// Every move produces exactly one probe-room event fanned out to
	// all connections.
	time.Sleep(100 * time.Millisecond) // let the generator spin up
	for i := 0; i < probeMoves; i++ {
		room := probeRoom
		if i%2 == 1 {
			room = parkRoom
		}
		at := sim.Tick(1_000_000 + i)
		lat.mu.Lock()
		lat.sent[at] = time.Now()
		lat.mu.Unlock()
		if err := driver.Call(wire.MsgPresence, wire.Presence{
			Device: probeDev, Room: room, At: at, Present: true,
		}, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	// Every connection must receive every probe event.
	wantSamples := conns * probeMoves
	deadline := time.Now().Add(15 * time.Second)
	for {
		lat.mu.Lock()
		n := len(lat.samples)
		lat.mu.Unlock()
		if n >= wantSamples {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d probe deliveries arrived", n, wantSamples)
		}
		time.Sleep(10 * time.Millisecond)
	}

	lat.mu.Lock()
	samples := append([]time.Duration(nil), lat.samples...)
	lat.mu.Unlock()
	if len(samples) != wantSamples {
		t.Fatalf("probe deliveries = %d, want exactly %d (duplicates?)", len(samples), wantSamples)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[len(samples)*99/100]
	t.Logf("probe delivery latency: p50=%v p99=%v max=%v",
		samples[len(samples)/2], p99, samples[len(samples)-1])
	bound := 1 * time.Second
	if raceEnabled {
		bound = 3 * time.Second
	}
	if p99 > bound {
		t.Errorf("p99 delivery latency %v exceeds %v", p99, bound)
	}

	// Nobody fell behind: every consumer kept up, so the server dropped
	// nothing and killed nobody.
	if err := driver.Call(wire.MsgStats, wire.StatsQuery{}, &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.Counters["fanout.events_dropped"]; got != 0 {
		t.Errorf("fanout.events_dropped = %d, want 0", got)
	}
	if got := stats.Counters["fanout.slow_kills"]; got != 0 {
		t.Errorf("fanout.slow_kills = %d, want 0", got)
	}
	if got := stats.Counters["fanout.events_pushed"]; got < int64(wantSamples) {
		t.Errorf("fanout.events_pushed = %d, want >= %d", got, wantSamples)
	}
}
