// Package loadgen is the BIPS load-generator client: it drives a central
// server with K concurrent connections at a target aggregate request rate
// and reports throughput and latency percentiles. It exists so every
// scaling change to the serving layer can measure itself against the same
// workload; cmd/bips-loadgen is the command-line wrapper and
// docs/OPERATIONS.md holds the benchmark recipe.
//
// The generator opens Clients persistent connections (wire v2 frames by
// default, v1 JSON lines with V1), runs Pipeline concurrent callers per
// connection so requests are pipelined on the socket, and paces each
// caller to its share of the aggregate QPS target. Latency is measured
// per envelope round trip; with Batch > 1 each envelope carries that many
// batched sub-requests, which all count toward the request total.
//
// The request mix is either a preset Mode (rooms, locate, mixed) or an
// explicit weighted Mix such as "locate=60,presence=20,at=10,
// trajectory=10" (`bips-loadgen -mix`), which adds the storage engine's
// history workload: presence deltas advance a shared simulated clock
// and the at/trajectory queries read random instants and windows of it.
// The "ingest" op drives the sessioned batched write path: each worker
// streams sequenced MsgPresenceBatch frames of IngestBatch deltas on
// its own ingest session, so write throughput is measured with the same
// tool (and counted per delta, like batched sub-requests). The
// "subscribe" op churns the push-notification path: each worker toggles
// a room subscription of its own on and off, exercising the server's
// fan-out registration indexes under load.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bips/internal/baseband"
	"bips/internal/graph"
	"bips/internal/locdb"
	"bips/internal/metrics"
	"bips/internal/sim"
	"bips/internal/wire"
)

// Mode selects a preset request mix.
type Mode string

// Request mixes.
const (
	// ModeRooms issues floor-plan queries: pure reads with no setup
	// requirements, the simplest smoke workload.
	ModeRooms Mode = "rooms"
	// ModeLocate issues locate queries between the synthetic users; the
	// generator logs them in and places them during setup.
	ModeLocate Mode = "locate"
	// ModeMixed interleaves presence deltas (one third) with locate
	// queries (two thirds) — the paper's serving mix at campus scale.
	ModeMixed Mode = "mixed"
)

// Mix operation names, usable in Config.Mix weight lists.
const (
	OpRooms      = "rooms"
	OpLocate     = "locate"
	OpPresence   = "presence"
	OpAt         = "at"         // MsgLocateAt: historical point query
	OpTrajectory = "trajectory" // MsgTrajectory: time-window query
	OpIngest     = "ingest"     // MsgPresenceBatch: one sequenced ingest frame of IngestBatch deltas
	OpSubscribe  = "subscribe"  // MsgSubscribe/MsgUnsubscribe: toggle a per-worker room subscription
	OpContacts   = "contacts"   // MsgContacts: contact trace over a recent window
	OpOccupancy  = "occupancy"  // MsgOccupancy: occupancy time series over a small random zone
	OpDwell      = "dwell"      // MsgDwell: dwell-time distribution, alternating room/device form
)

// mixEntry is one weighted operation of the request mix.
type mixEntry struct {
	op     string
	weight int
}

// parseMix parses a weight list like "locate=60,presence=20,at=10,
// trajectory=10". A bare op name means weight 1. Weights must be
// positive integers.
func parseMix(s string) ([]mixEntry, error) {
	known := map[string]bool{
		OpRooms: true, OpLocate: true, OpPresence: true,
		OpAt: true, OpTrajectory: true, OpIngest: true, OpSubscribe: true,
		OpContacts: true, OpOccupancy: true, OpDwell: true,
	}
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !known[name] {
			return nil, fmt.Errorf("loadgen: unknown mix op %q (want %s|%s|%s|%s|%s|%s|%s|%s|%s|%s)",
				name, OpRooms, OpLocate, OpPresence, OpAt, OpTrajectory, OpIngest, OpSubscribe,
				OpContacts, OpOccupancy, OpDwell)
		}
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: bad mix weight %q for %s", weightStr, name)
			}
			weight = w
		}
		out = append(out, mixEntry{op: name, weight: weight})
	}
	if len(out) == 0 {
		return nil, errors.New("loadgen: empty mix")
	}
	return out, nil
}

// needsUsers reports whether the mix touches the synthetic users (and
// therefore needs login + placement setup).
func needsUsers(mix []mixEntry) bool {
	for _, e := range mix {
		if e.op != OpRooms {
			return true
		}
	}
	return false
}

// Config parameterizes a load-generation run.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Clients is the number of persistent connections (default 4).
	Clients int
	// Pipeline is the number of concurrent callers per connection
	// (default 8); each caller keeps one request in flight, so
	// Clients*Pipeline bounds total in-flight requests.
	Pipeline int
	// QPS is the target aggregate request rate; 0 runs unthrottled.
	QPS float64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Mode is a preset request mix (default ModeRooms). Ignored when
	// Mix is set.
	Mode Mode
	// Mix selects an explicit weighted request mix, overriding Mode: a
	// comma list of op[=weight] over rooms | locate | presence | at |
	// trajectory | ingest | subscribe | contacts | occupancy | dwell,
	// e.g. "locate=60,presence=20,at=10,trajectory=10" — the
	// read/history serving mix of the storage engine. The history and
	// analytics ops query random instants/windows of the simulated time
	// the run's own presence deltas have advanced through.
	Mix string

	// mix is the resolved weight table (from Mix or Mode).
	mix      []mixEntry
	mixTotal int
	// Batch > 1 wraps that many sub-requests into each MsgBatch
	// envelope. Incompatible with the ingest op, whose frames are
	// already batches (size IngestBatch).
	Batch int
	// IngestBatch is the deltas-per-frame size of the ingest op
	// (default 64, max wire.MaxBatchDeltas). Every worker drawing
	// ingest ops streams frames on its own ingest session, so write
	// throughput is measured with the same sessioned protocol
	// bips-station uses.
	IngestBatch int
	// V1 selects the newline-JSON protocol instead of v2 frames.
	V1 bool
	// Users is the number of synthetic users for ModeLocate/ModeMixed
	// (default 8). They must be pre-registered on the server as
	// "user0".."userN-1" with Password — bips-server's -loadgen-users
	// flag does exactly that.
	Users int
	// Password is the synthetic users' password (default "loadgen").
	Password string
	// Seed drives the request randomness (which user locates whom).
	Seed int64
}

func (c *Config) fill() error {
	if c.Addr == "" {
		return errors.New("loadgen: no server address")
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mode == "" {
		c.Mode = ModeRooms
	}
	if c.Mix != "" {
		mix, err := parseMix(c.Mix)
		if err != nil {
			return err
		}
		c.mix = mix
	} else {
		switch c.Mode {
		case ModeRooms:
			c.mix = []mixEntry{{OpRooms, 1}}
		case ModeLocate:
			c.mix = []mixEntry{{OpLocate, 1}}
		case ModeMixed:
			c.mix = []mixEntry{{OpLocate, 2}, {OpPresence, 1}}
		default:
			return fmt.Errorf("loadgen: unknown mode %q", c.Mode)
		}
	}
	for _, e := range c.mix {
		c.mixTotal += e.weight
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 64
	}
	if c.IngestBatch > wire.MaxBatchDeltas {
		c.IngestBatch = wire.MaxBatchDeltas
	}
	if c.Batch > 1 && c.hasOp(OpIngest) {
		return errors.New("loadgen: -batch is incompatible with the ingest op (ingest frames are already batched; size them with IngestBatch)")
	}
	if c.Batch > 1 && c.hasOp(OpSubscribe) {
		return errors.New("loadgen: -batch is incompatible with the subscribe op (subscription management is per-connection and not batchable)")
	}
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.Password == "" {
		c.Password = "loadgen"
	}
	return nil
}

// hasOp reports whether the resolved mix contains the op.
func (c *Config) hasOp(op string) bool {
	for _, e := range c.mix {
		if e.op == op {
			return true
		}
	}
	return false
}

// requestsPerIssue is the expected number of requests one issue() call
// completes: Batch for MsgBatch envelopes, and the mix-weighted mean
// when ingest frames (IngestBatch deltas each) are in play — the
// scaling factor that keeps -qps pacing honest for the write path.
func (c *Config) requestsPerIssue() float64 {
	if !c.hasOp(OpIngest) {
		return float64(c.Batch)
	}
	var sum float64
	for _, e := range c.mix {
		if e.op == OpIngest {
			sum += float64(e.weight * c.IngestBatch)
		} else {
			sum += float64(e.weight)
		}
	}
	return sum / float64(c.mixTotal)
}

// UserName returns the i-th synthetic user id, the naming contract
// between the generator and server-side registration.
func UserName(i int) string { return fmt.Sprintf("user%d", i) }

// UserDevice returns the i-th synthetic user's device address.
func UserDevice(i int) baseband.BDAddr {
	return baseband.BDAddr(0xE000_0000_0000 + uint64(i+1))
}

// Report is the outcome of a run.
type Report struct {
	// Requests counts completed requests; batched sub-requests count
	// individually.
	Requests int64
	// Errors counts failed calls (transport or MsgError).
	Errors int64
	// Elapsed is the measured wall time of the request phase.
	Elapsed time.Duration
	// QPS is Requests/Elapsed.
	QPS float64
	// Latency percentiles of the envelope round trip.
	P50, P90, P99, Max, Mean time.Duration
}

// String renders the report as the one block bips-loadgen prints.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests   %d\n", r.Requests)
	fmt.Fprintf(&sb, "errors     %d\n", r.Errors)
	fmt.Fprintf(&sb, "elapsed    %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "throughput %.0f req/s\n", r.QPS)
	fmt.Fprintf(&sb, "latency    p50=%v p90=%v p99=%v max=%v mean=%v",
		r.P50, r.P90, r.P99, r.Max, r.Mean)
	return sb.String()
}

// setupGrace bounds how long setup plus final drain may take on top of
// the configured Duration before a wedged server is given up on. A var
// so tests can shrink it.
var setupGrace = 15 * time.Second

// Run executes one load-generation run against the server at cfg.Addr.
// Setup (login + initial placement for the locate modes) happens before
// the clock starts; cancelling the context aborts the run. Run always
// returns within roughly Duration + 2*setupGrace even against a server
// that accepts connections but never answers: past that hard deadline
// (or on ctx cancellation) the connections are force-closed, which
// unblocks every pending call.
func Run(ctx context.Context, cfg Config) (Report, error) {
	if err := cfg.fill(); err != nil {
		return Report{}, err
	}

	clients := make([]*wire.Client, cfg.Clients)
	for i := range clients {
		c, err := dial(cfg)
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return Report{}, err
		}
		clients[i] = c
	}
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, c := range clients {
				c.Close()
			}
		})
	}
	defer closeAll()
	// Abort watcher: caller cancellation or the hard deadline closes the
	// connections while setup or workers may be blocked in calls.
	hardCtx, hardCancel := context.WithTimeout(ctx, cfg.Duration+2*setupGrace)
	defer hardCancel()
	go func() {
		<-hardCtx.Done()
		closeAll()
	}()

	rooms, err := setup(cfg, clients[0])
	if err != nil {
		if hErr := hardCtx.Err(); hErr != nil {
			return Report{}, fmt.Errorf("loadgen: setup aborted (%v): %w", hErr, err)
		}
		return Report{}, err
	}

	var (
		requests atomic.Int64
		errCount atomic.Int64
		hist     metrics.Histogram
		// simTick is the run's shared simulated clock for presence
		// deltas and the history queries over them.
		simTick atomic.Int64
	)
	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	workers := cfg.Clients * cfg.Pipeline
	// Each worker paces itself to its share of the aggregate target:
	// worker w's n-th issue is due at start + n*interval, where one
	// issue completes requestsPerIssue requests (batched sub-requests
	// and ingest-frame deltas both count individually, so pacing must
	// scale by the same factor the report does).
	var interval time.Duration
	if cfg.QPS > 0 {
		perWorker := cfg.QPS / float64(workers)
		interval = time.Duration(float64(time.Second) * cfg.requestsPerIssue() / perWorker)
	}

	start := time.Now()
	runNonce := start.UnixNano()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		client := clients[w%cfg.Clients]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			// Each worker streams ingest frames on its own session
			// (sessions are ordered channels; workers must not share
			// one). The session id carries a per-run nonce: reusing a
			// session across runs would make the server duplicate-skip
			// every frame number the previous run already acked, and
			// the report would measure duplicate-ack round trips
			// instead of ingestion.
			ing := &ingestState{session: fmt.Sprintf("loadgen-%x-%d", runNonce, w)}
			// Each worker toggles one subscription of its own: its id is
			// connection-scoped on the server, so it carries the worker
			// index to stay unique among the Pipeline workers sharing a
			// connection.
			sub := &subState{id: fmt.Sprintf("loadgen-sub-%d", w), user: UserName(w % cfg.Users)}
			for n := int64(0); ; n++ {
				if interval > 0 {
					due := start.Add(time.Duration(n) * interval)
					if d := time.Until(due); d > 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(d):
						}
					}
				}
				if runCtx.Err() != nil {
					return
				}
				t0 := time.Now()
				done, err := issue(cfg, client, rng, rooms, &simTick, ing, sub)
				hist.ObserveDuration(time.Since(t0))
				requests.Add(done)
				if err != nil {
					errCount.Add(1)
					// A top-level *wire.Error is a served response; any
					// other error is transport-level (EOF, closed, write
					// failure) and the connection is dead — every further
					// call would fail instantly, turning the rest of the
					// run into a busy error loop. Stop this worker.
					var werr *wire.Error
					if !errors.As(err, &werr) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	toDur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	rep := Report{
		Requests: requests.Load(),
		Errors:   errCount.Load(),
		Elapsed:  elapsed,
		P50:      toDur(snap.Quantile(0.50)),
		P90:      toDur(snap.Quantile(0.90)),
		P99:      toDur(snap.Quantile(0.99)),
		Max:      toDur(snap.Max),
		Mean:     toDur(snap.Mean()),
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

func dial(cfg Config) (*wire.Client, error) {
	conn, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if cfg.V1 {
		return wire.NewClient(wire.NewCodec(conn)), nil
	}
	return wire.NewClient(wire.NewFrameCodec(conn)), nil
}

// setup fetches the room list and, for the locate modes, logs the
// synthetic users in and places each in a room. It returns the room ids.
func setup(cfg Config, client *wire.Client) ([]wire.RoomInfo, error) {
	var rooms wire.RoomsResult
	if err := client.Call(wire.MsgRooms, wire.RoomsQuery{}, &rooms); err != nil {
		return nil, fmt.Errorf("loadgen: rooms query: %w", err)
	}
	if len(rooms.Rooms) == 0 {
		return nil, errors.New("loadgen: server has no rooms")
	}
	if !needsUsers(cfg.mix) {
		return rooms.Rooms, nil
	}
	for i := 0; i < cfg.Users; i++ {
		// Logout first so back-to-back runs against the same server
		// work: a previous run leaves the synthetic users logged in.
		// The error (not logged in, on a fresh server) is expected.
		_ = client.Call(wire.MsgLogout, wire.Logout{User: UserName(i)}, nil)
		if err := client.Call(wire.MsgLogin, wire.Login{
			User:     UserName(i),
			Password: cfg.Password,
			Device:   wire.FormatAddr(UserDevice(i)),
		}, nil); err != nil {
			return nil, fmt.Errorf("loadgen: login %s (is the server registered with matching -loadgen-users?): %w", UserName(i), err)
		}
		room := rooms.Rooms[i%len(rooms.Rooms)]
		if err := client.Call(wire.MsgPresence, wire.Presence{
			Device:  wire.FormatAddr(UserDevice(i)),
			Room:    room.ID,
			At:      0,
			Present: true,
		}, nil); err != nil {
			return nil, fmt.Errorf("loadgen: place %s: %w", UserName(i), err)
		}
	}
	return rooms.Rooms, nil
}

// ingestState is one worker's ingest session: its id, its frame
// sequence, and whether the hello handshake has run.
type ingestState struct {
	session string
	seq     uint64
	helloed bool
}

// subState is one worker's subscription toggle for the subscribe op:
// the worker-scoped subscription id, the querying user, and whether the
// subscription is currently registered (the op alternates subscribe and
// unsubscribe, churning the server's fan-out indexes).
type subState struct {
	id     string
	user   string
	active bool
}

// issue sends one envelope (a single request, a MsgBatch of cfg.Batch
// sub-requests, or one ingest frame) and returns how many requests
// completed (each delta of an ingest frame counts, like batched
// sub-requests do).
func issue(cfg Config, client *wire.Client, rng *rand.Rand, rooms []wire.RoomInfo, tick *atomic.Int64, ing *ingestState, sub *subState) (int64, error) {
	if cfg.Batch <= 1 {
		t, body := nextRequest(cfg, rng, rooms, tick, ing, sub)
		if t == wire.MsgPresenceBatch {
			return issueIngest(cfg, client, rooms, body.(*wire.PresenceBatch), ing)
		}
		return 1, call(client, t, body)
	}
	var b wire.Batch
	for i := 0; i < cfg.Batch; i++ {
		// The ingest and subscribe ops never reach this path: fill
		// rejects Batch > 1 together with either in the mix.
		t, body := nextRequest(cfg, rng, rooms, tick, ing, sub)
		if err := b.Add(t, body); err != nil {
			return 0, err
		}
	}
	var res wire.BatchResult
	if err := client.Call(wire.MsgBatch, b, &res); err != nil {
		return 0, err
	}
	// Inner errors (e.g. a locate racing a presence move) count as
	// completed requests; the serving layer answered them.
	return int64(len(res.Responses)), nil
}

// issueIngest delivers one sequenced frame on the worker's session,
// opening the session on first use. The frame's sequence number only
// advances on success, so a served error is retried with the next draw
// under the same number (the protocol's idempotent-resend rule).
func issueIngest(cfg Config, client *wire.Client, rooms []wire.RoomInfo, frame *wire.PresenceBatch, ing *ingestState) (int64, error) {
	if !ing.helloed {
		var ack wire.IngestAck
		if err := client.Call(wire.MsgIngestHello, wire.IngestHello{
			Session: ing.session,
			Station: ing.session,
			Room:    rooms[0].ID,
		}, &ack); err != nil {
			return 0, err
		}
		ing.helloed = true
		ing.seq = ack.Acked
	}
	var ack wire.IngestAck
	if err := client.Call(wire.MsgPresenceBatch, frame, &ack); err != nil {
		return 0, err
	}
	if frame.Seq > ing.seq {
		ing.seq = frame.Seq
	}
	if ack.Duplicate {
		// Per-run session nonces make this unreachable; if it fires
		// anyway, the deltas were skipped, not ingested.
		return 0, fmt.Errorf("loadgen: frame %d on session %s duplicate-skipped", frame.Seq, ing.session)
	}
	return int64(len(frame.Deltas)), nil
}

// nextRequest draws one request from the weighted mix. tick is the
// run's shared simulated clock: presence deltas (single or batched)
// advance it, history queries ask about random instants or windows of
// the time it has covered, so at/trajectory exercise real recorded
// runs.
func nextRequest(cfg Config, rng *rand.Rand, rooms []wire.RoomInfo, tick *atomic.Int64, ing *ingestState, sub *subState) (wire.MsgType, any) {
	n := rng.Intn(cfg.mixTotal)
	op := cfg.mix[len(cfg.mix)-1].op
	for _, e := range cfg.mix {
		if n < e.weight {
			op = e.op
			break
		}
		n -= e.weight
	}
	switch op {
	case OpLocate:
		return locateRequest(cfg, rng)
	case OpPresence:
		u := rng.Intn(cfg.Users)
		room := rooms[rng.Intn(len(rooms))]
		// Pointer bodies ride the client's append-encode fast path
		// (wire.Appender), so the generator itself stays off the
		// allocating marshal path for the hot mix entries.
		return wire.MsgPresence, &wire.Presence{
			Device:  wire.FormatAddr(UserDevice(u)),
			Room:    room.ID,
			At:      sim.Tick(tick.Add(1)),
			Present: true,
		}
	case OpIngest:
		frame := wire.PresenceBatch{Session: ing.session, Seq: ing.seq + 1}
		frame.Deltas = make([]wire.Presence, 0, cfg.IngestBatch)
		for i := 0; i < cfg.IngestBatch; i++ {
			room := rooms[rng.Intn(len(rooms))]
			frame.Deltas = append(frame.Deltas, wire.Presence{
				Device:  wire.FormatAddr(UserDevice(rng.Intn(cfg.Users))),
				Room:    room.ID,
				At:      sim.Tick(tick.Add(1)),
				Present: true,
			})
		}
		return wire.MsgPresenceBatch, &frame
	case OpSubscribe:
		// Alternate subscribe/unsubscribe so the run churns the fan-out
		// registration path, not just one static registration. The
		// toggle flips optimistically: a served error desynchronizes one
		// round trip, which the next toggle absorbs.
		if sub.active {
			sub.active = false
			return wire.MsgUnsubscribe, wire.Unsubscribe{ID: sub.id}
		}
		sub.active = true
		room := rooms[rng.Intn(len(rooms))]
		return wire.MsgSubscribe, wire.Subscribe{
			ID:      sub.id,
			Querier: sub.user,
			Filter:  wire.SubFilter{Kind: wire.FilterRoom, Room: room.ID},
		}
	case OpAt:
		lo, upper := historyWindow(cfg, tick)
		return wire.MsgLocateAt, &wire.LocateAt{
			Querier: UserName(rng.Intn(cfg.Users)),
			Target:  UserName(rng.Intn(cfg.Users)),
			At:      sim.Tick(lo + rng.Int63n(upper-lo+1)),
		}
	case OpTrajectory:
		lo, upper := historyWindow(cfg, tick)
		from := lo + rng.Int63n(upper-lo+1)
		to := from + rng.Int63n(upper-from+1)
		return wire.MsgTrajectory, wire.TrajectoryQuery{
			Querier: UserName(rng.Intn(cfg.Users)),
			Target:  UserName(rng.Intn(cfg.Users)),
			From:    sim.Tick(from),
			To:      sim.Tick(to),
		}
	case OpContacts:
		lo, upper := historyWindow(cfg, tick)
		from := lo + rng.Int63n(upper-lo+1)
		return wire.MsgContacts, wire.ContactsQuery{
			Querier: UserName(rng.Intn(cfg.Users)),
			Target:  UserName(rng.Intn(cfg.Users)),
			From:    sim.Tick(from),
			To:      sim.Tick(upper + 1),
		}
	case OpOccupancy:
		lo, upper := historyWindow(cfg, tick)
		// A zone of 1-3 random rooms; the bucket width keeps the series
		// comfortably inside the wire limit whatever the window is.
		zone := make([]graph.NodeID, 0, 3)
		for i := 0; i < 1+rng.Intn(3); i++ {
			zone = append(zone, rooms[rng.Intn(len(rooms))].ID)
		}
		from, to := lo, upper+1
		bucket := (to - from + 15) / 16
		if bucket < 1 {
			bucket = 1
		}
		return wire.MsgOccupancy, wire.OccupancyQuery{
			Querier: UserName(rng.Intn(cfg.Users)),
			Rooms:   zone,
			From:    sim.Tick(from),
			To:      sim.Tick(to),
			Bucket:  sim.Tick(bucket),
		}
	case OpDwell:
		lo, upper := historyWindow(cfg, tick)
		req := wire.DwellQuery{
			Querier: UserName(rng.Intn(cfg.Users)),
			From:    sim.Tick(lo),
			To:      sim.Tick(upper + 1),
		}
		if rng.Intn(2) == 0 {
			req.Kind = wire.DwellRoom
			req.Room = rooms[rng.Intn(len(rooms))].ID
		} else {
			req.Kind = wire.DwellDevice
			req.Target = UserName(rng.Intn(cfg.Users))
		}
		return wire.MsgDwell, req
	default:
		return wire.MsgRooms, wire.RoomsQuery{}
	}
}

// historyWindow returns the tick range [lo, hi] the history queries
// draw from. The per-device history is bounded, so old ticks would hit
// evicted runs and measure only the not-found path: the window is
// bounded to roughly the span the retained runs still cover (each delta
// advances the clock by one tick and lands on one of Users devices, so
// a device's newest ~HistoryLimit runs span ~Users*HistoryLimit recent
// ticks; half that keeps the draws safely inside).
func historyWindow(cfg Config, tick *atomic.Int64) (lo, hi int64) {
	hi = tick.Load()
	if hi < 1 {
		hi = 1
	}
	span := int64(cfg.Users) * int64(locdb.DefaultHistoryLimit) / 2
	lo = hi - span
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

func locateRequest(cfg Config, rng *rand.Rand) (wire.MsgType, any) {
	querier := rng.Intn(cfg.Users)
	target := rng.Intn(cfg.Users)
	return wire.MsgLocate, &wire.Locate{
		Querier: UserName(querier),
		Target:  UserName(target),
	}
}

// call issues one non-batch request, tolerating business-level MsgError
// responses (the request completed; the answer was an error body).
func call(client *wire.Client, t wire.MsgType, body any) error {
	err := client.Call(t, body, nil)
	var werr *wire.Error
	if errors.As(err, &werr) {
		return nil
	}
	return err
}
